// kgacc_store -- admin tool for annotation-store logs.
//
// Subcommands:
//
//   kgacc_store verify  STORE.wal   read-only structural check: walks the
//                                   raw frames, re-checks every CRC, decodes
//                                   each payload, and re-derives a compacted
//                                   log's trailer (counts + chained live
//                                   CRC). Never modifies the file. Exit 0 on
//                                   a clean log, 1 on corruption.
//   kgacc_store inspect STORE.wal   opens the store (performing normal
//                                   recovery: torn tails are truncated,
//                                   stale .compact temps deleted) and prints
//                                   the index summary -- labels, audits with
//                                   checkpoints, garbage ratio.
//   kgacc_store compact STORE.wal   opens the store and compacts it,
//                                   printing the before/after sizes.
//
// A torn tail is reported but is not corruption (recovery handles it); a
// frame whose CRC passes but whose payload decodes to garbage, or a
// compaction trailer that disagrees with the frames before it, is.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "kgacc/store/annotation_store.h"
#include "kgacc/store/compaction.h"
#include "kgacc/util/arg_parser.h"

namespace kgacc {
namespace {

int Usage(const ArgParser& parser) {
  std::fprintf(stderr,
               "usage: kgacc_store <verify|inspect|compact> <store.wal>\n%s",
               parser.HelpText().c_str());
  return 2;
}

int RunVerify(const std::string& path) {
  const auto info = VerifyStoreLog(path);
  if (!info.ok()) {
    std::fprintf(stderr, "kgacc_store: %s: CORRUPT: %s\n", path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %" PRIu64 " records, %" PRIu64 " checkpoints, %" PRIu64
              " tenant ledgers%s, %" PRIu64 " valid bytes (%s)%s\n",
              path.c_str(), info->records, info->checkpoints, info->ledgers,
              info->compacted ? ", compacted (trailer verified)" : "",
              info->bytes_valid, info->used_mmap ? "mmap" : "streamed",
              info->clean_tail
                  ? ""
                  : (", torn tail: " + std::to_string(info->bytes_torn) +
                     " bytes (recovery will truncate)")
                        .c_str());
  return 0;
}

int RunInspect(const std::string& path) {
  auto store = AnnotationStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "kgacc_store: cannot open %s: %s\n", path.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  const AnnotationStoreStats& stats = (*store)->stats();
  if (stats.recovery.truncated_tail) {
    std::fprintf(stderr,
                 "%s: discarded %" PRIu64 " torn/corrupt tail bytes\n",
                 path.c_str(), stats.recovery.bytes_discarded);
  }
  std::printf("%s:\n", path.c_str());
  std::printf("  labels          %" PRIu64 "\n", (*store)->num_labeled());
  std::printf("  records         %" PRIu64 " replayed\n",
              stats.records_replayed);
  std::printf("  checkpoints     %" PRIu64 " replayed\n",
              stats.checkpoints_replayed);
  std::printf("  tenant ledgers  %" PRIu64 " replayed\n",
              stats.ledgers_replayed);
  std::printf("  compacted       %s\n",
              stats.trailers_replayed > 0 ? "yes" : "no");
  std::printf("  replay          %s\n",
              stats.recovery.used_mmap ? "mmap" : "streamed");
  std::printf("  file bytes      %" PRIu64 "\n", (*store)->file_bytes());
  std::printf("  live bytes      %" PRIu64 "\n", (*store)->live_bytes());
  std::printf("  garbage ratio   %.3f\n", (*store)->garbage_ratio());
  std::printf("  next seq        %" PRIu64 "\n", (*store)->next_seq());
  // Tenant quota balances (present in ledger logs; empty elsewhere). The
  // byte-exact output here is what restart tests diff to prove budgets
  // survived a SIGKILL.
  for (const TenantBalance& balance : (*store)->TenantBalances()) {
    std::printf("  tenant %s: oracle_spent=%" PRIu64 " store_bytes=%" PRIu64
                "\n",
                balance.tenant.c_str(), balance.oracle_spent,
                balance.store_bytes);
  }
  return 0;
}

int RunCompact(const std::string& path) {
  auto store = AnnotationStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "kgacc_store: cannot open %s: %s\n", path.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  const uint64_t before = (*store)->file_bytes();
  const Status compacted = (*store)->Compact();
  if (!compacted.ok()) {
    std::fprintf(stderr, "kgacc_store: compaction failed: %s\n",
                 compacted.ToString().c_str());
    return 1;
  }
  const CompactionStats cs = (*store)->compaction_stats();
  std::printf("%s: %" PRIu64 " -> %" PRIu64 " bytes (%" PRIu64
              " live records, %" PRIu64 " checkpoints kept)\n",
              path.c_str(), before, cs.last_bytes_after, cs.last_records,
              cs.last_checkpoints);
  return 0;
}

int RunMain(int argc, char** argv) {
  ArgParser parser;
  parser.AddFlag("help", "show this help");
  const auto parsed = parser.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return Usage(parser);
  }
  if (parsed->Has("help")) return Usage(parser);
  if (parsed->positional().size() != 2) return Usage(parser);
  const std::string& op = parsed->positional()[0];
  const std::string& path = parsed->positional()[1];
  if (op == "verify") return RunVerify(path);
  if (op == "inspect") return RunInspect(path);
  if (op == "compact") return RunCompact(path);
  std::fprintf(stderr, "kgacc_store: unknown subcommand '%s'\n", op.c_str());
  return Usage(parser);
}

}  // namespace
}  // namespace kgacc

int main(int argc, char** argv) { return kgacc::RunMain(argc, argv); }
