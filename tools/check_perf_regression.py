#!/usr/bin/env python3
"""Perf-regression gate over machine-independent bench metrics.

Compares a freshly measured BENCH_step.json against the checked-in record
and fails when either of two algorithmic properties regressed by more than
the allowed factor (default 2x):

* the 50k/1k per-step latency *ratio* per design — flatness of the per-step
  cost as the accumulated sample grows (streaming estimators, incremental
  rehash). A ratio that doubles means someone reintroduced an O(sample)
  term into Step().
* the HPD incomplete-beta *evaluations per solve* per design — the solver
  efficiency of the interval layer (2x2 Newton KKT primary path, warm
  starts). A jump means solves fell back off the Newton path or the warm
  carry broke.

With --service-fresh/--service-record it additionally gates the
`service_hpd_summary` record of BENCH_service.json — the same
evals-per-solve property, but aggregated across every worker thread of the
parallel EvaluationService sweep. The step bench is single-threaded; a
warm-carry or solver-path regression that only manifests under worker
pinning (e.g. shared state resets between jobs) is only visible here.

--service-fresh also arms the *thread-scaling* gate: the
`service_thread_scaling` record carries the 4-thread / 1-thread audits/s
ratio of the largest (>= 100 ms) sweep cell, and the gate fails when it
falls below --min-scaling (default 2.0) — the service must actually use
the hardware, not just stay deterministic on it. The ratio is absolute
(not relative to the checked-in record) because it is a property the
service owes on any adequate machine; on hosts with fewer than 4 hardware
threads the ratio measures the OS scheduler instead of the service, so
the gate reports and skips there (the record's own hardware_threads field
decides). A missing record is still a hard error: the instrumentation a
blocking gate rests on must not vanish silently.

Ratios and counts, not absolute latencies: CI runners differ wildly in
clock speed and noise, but every gated metric is a property of the
algorithm, not of the machine.

--net-fresh arms the *tenant fairness* gate over BENCH_net.json: the
`net_tenant_fairness` record carries the heavy tenant's share of served
annotation steps from a two-tenant (3:1 weights) window against a
single-worker daemon, and the gate fails when the share drifts more than
--fairness-tolerance from the weight-implied 0.75. Like thread scaling
the bound is absolute — the share is a ratio between two identical
workloads on one host, so the machine divides out — and the gate
report-and-skips when the window completed too few audits to judge.

Usage:
    check_perf_regression.py <fresh BENCH_step.json> <checked-in record>
        [--service-fresh BENCH_service.json]
        [--service-record BENCH_service.json]
        [--net-fresh BENCH_net.json]
        [--max-regression 2.0]

Exit code 0 = within bounds, 1 = regression, 2 = unusable input.

Stdlib only — runs anywhere a python3 exists.
"""

import argparse
import json
import sys


def load_summaries(path):
    """Returns {design: summary-record} from a bench record."""
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    summaries = {}
    for record in records:
        if record.get("bench") == "step_latency_summary":
            design = record.get("design")
            if design is not None:
                summaries[design] = record
    if not summaries:
        print(f"error: no step_latency_summary records in {path}",
              file=sys.stderr)
        sys.exit(2)
    return summaries


def check_metric(fresh, record, key, label, max_regression, floor):
    """Prints one comparison line per design; returns True on regression.

    Exits 2 when any fresh design lacks the metric: the fresh record comes
    from the current bench binary, which emits every metric for every
    design, so a hole means the instrumentation the gate guards broke — a
    blocking gate must fail loudly, not pass vacuously. (A *checked-in*
    record without the metric is still skipped per design, so new metrics
    can land before the record is refreshed.)
    """
    missing = [d for d, s in sorted(fresh.items())
               if not isinstance(s.get(key), (int, float))]
    if missing:
        print(f"error: fresh record lacks '{key}' for "
              f"{', '.join(missing)} (instrumentation missing?)",
              file=sys.stderr)
        sys.exit(2)
    failed = False
    for design, summary in sorted(fresh.items()):
        value = summary[key]
        recorded = record.get(design, {}).get(key)
        if not isinstance(recorded, (int, float)):
            print(f"  {design:>6} {label}: fresh {value:.3f} "
                  f"(no checked-in record, skipped)")
            continue
        # Floor the baseline: a tiny recorded value is measurement luck (or
        # a cache-heavy window), and the gate should not demand it forever.
        budget = max(recorded, floor) * max_regression
        verdict = "OK" if value <= budget else "REGRESSION"
        print(f"  {design:>6} {label}: fresh {value:.3f} vs recorded "
              f"{recorded:.3f} (budget {budget:.3f}) {verdict}")
        if value > budget:
            failed = True
    return failed


def load_service_record(path, bench):
    """Returns the named summary record from BENCH_service.json."""
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for record in records:
        if record.get("bench") == bench:
            return record
    return None


def load_service_summary(path):
    """Returns the service_hpd_summary record from BENCH_service.json."""
    return load_service_record(path, "service_hpd_summary")


def check_thread_scaling(fresh_path, min_scaling):
    """Gates the 4t/1t audits/s ratio; returns True on failure.

    Absolute threshold, not record-relative: multi-core speedup is a
    property the service owes outright. Skips (with a printed reason) when
    the measuring host had fewer than 4 hardware threads — there the ratio
    reflects the OS scheduler, not the service.
    """
    record = load_service_record(fresh_path, "service_thread_scaling")
    if record is None or not isinstance(
            record.get("threads_scaling_ratio"), (int, float)):
        print(f"error: no usable service_thread_scaling record in "
              f"{fresh_path} (bench summary missing?)", file=sys.stderr)
        sys.exit(2)
    ratio = record["threads_scaling_ratio"]
    hardware = record.get("hardware_threads")
    jobs = record.get("jobs")
    if not isinstance(hardware, int) or hardware < 4:
        print(f"  threads scaling ratio: {ratio:.3f} on {jobs} jobs "
              f"(host has {hardware} hardware threads < 4, gate skipped)")
        return False
    verdict = "OK" if ratio >= min_scaling else "REGRESSION"
    print(f"  threads scaling ratio (4t/1t, {jobs} jobs): {ratio:.3f} "
          f"(minimum {min_scaling:.1f}, {hardware} hardware threads) "
          f"{verdict}")
    return ratio < min_scaling


def check_store_compaction(fresh_path, max_amplification):
    """Gates post-compaction space amplification; returns True on failure.

    Absolute and machine-independent: `bytes_after / live_before` comes
    from the store's exact byte accounting, so it is a structural property
    of the rewritten log (trailer + header overhead only), identical on
    every host. A compaction that leaves superseded frames behind — or a
    rewrite that pads the live set — pushes it past the bound. The same
    record's multi-writer cell must also report zero degraded jobs: the
    unarmed-failpoint default never downgrades durability.
    """
    record = load_service_record(fresh_path, "store_compaction")
    if record is None or not isinstance(
            record.get("space_amplification_after"), (int, float)):
        print(f"error: no usable store_compaction record in {fresh_path} "
              "(bench compaction cell missing?)", file=sys.stderr)
        sys.exit(2)
    amp = record["space_amplification_after"]
    verdict = "OK" if amp <= max_amplification else "REGRESSION"
    print(f"  post-compaction space amplification: {amp:.4f} "
          f"(maximum {max_amplification:.2f}) {verdict}")
    failed = amp > max_amplification
    writers = load_service_record(fresh_path, "store_multi_writer")
    if writers is None:
        print(f"error: no store_multi_writer record in {fresh_path} "
              "(durable bench cell missing?)", file=sys.stderr)
        sys.exit(2)
    degraded = writers.get("degraded_jobs")
    replayed = writers.get("replay_identical")
    healthy = degraded == 0 and replayed is True
    print(f"  durable multi-writer cell: degraded_jobs={degraded} "
          f"replay_identical={replayed} "
          f"{'OK' if healthy else 'REGRESSION'}")
    return failed or not healthy


def check_net_fairness(fresh_path, tolerance):
    """Gates the two-tenant DRR share from BENCH_net.json; True on failure.

    The bench runs heavy (weight 3) and light (weight 1) tenants flat out
    against a single-worker daemon and reports heavy's share of served
    annotation steps. The share is a property of the DRR dispatch, not of
    the machine — both tenants run identical audits on the same host, so
    clock speed divides out — which makes an absolute tolerance around the
    weight-implied share portable. Skips (with a printed reason) when the
    window completed too few audits for the share to have converged.
    """
    record = load_service_record(fresh_path, "net_tenant_fairness")
    if record is None or not isinstance(
            record.get("heavy_share"), (int, float)) or not isinstance(
            record.get("expected_share"), (int, float)):
        print(f"error: no usable net_tenant_fairness record in {fresh_path} "
              "(bench fairness window missing?)", file=sys.stderr)
        sys.exit(2)
    share = record["heavy_share"]
    expected = record["expected_share"]
    completions = record.get("completions")
    if not isinstance(completions, int) or completions < 8:
        print(f"  tenant fairness share: {share:.3f} on {completions} "
              f"completed audits (< 8, window too short, gate skipped)")
        return False
    drift = abs(share - expected)
    verdict = "OK" if drift <= tolerance else "REGRESSION"
    print(f"  tenant fairness share (weights 3:1): {share:.3f} vs expected "
          f"{expected:.3f} (tolerance {tolerance:.2f}, {completions} "
          f"audits) {verdict}")
    return drift > tolerance


def check_service(fresh_path, record_path, max_regression):
    """Gates the service-level evals/solve; returns True on regression."""
    fresh = load_service_summary(fresh_path)
    if fresh is None or not isinstance(
            fresh.get("hpd_beta_evals_per_solve"), (int, float)):
        # The fresh record comes from the current bench binary: a missing
        # summary means the aggregation broke, and a blocking gate must not
        # pass vacuously.
        print(f"error: no usable service_hpd_summary in {fresh_path} "
              "(BatchResult HPD aggregation missing?)", file=sys.stderr)
        sys.exit(2)
    value = fresh["hpd_beta_evals_per_solve"]
    recorded_rec = load_service_summary(record_path)
    recorded = (recorded_rec or {}).get("hpd_beta_evals_per_solve")
    if not isinstance(recorded, (int, float)):
        print(f"  service beta evals/solve: fresh {value:.3f} "
              "(no checked-in record, skipped)")
        return False
    budget = max(recorded, 4.0) * max_regression
    verdict = "OK" if value <= budget else "REGRESSION"
    print(f"  service beta evals/solve: fresh {value:.3f} vs recorded "
          f"{recorded:.3f} (budget {budget:.3f}) {verdict}")
    return value > budget


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured BENCH_step.json")
    parser.add_argument("record", help="checked-in BENCH_step.json")
    parser.add_argument("--service-fresh",
                        help="freshly measured BENCH_service.json")
    parser.add_argument("--service-record",
                        help="checked-in BENCH_service.json")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed factor between fresh and recorded "
                             "metrics (default 2.0)")
    parser.add_argument("--min-scaling", type=float, default=2.0,
                        help="minimum 4-thread/1-thread audits/s ratio on "
                             "the largest service cell (default 2.0; "
                             "enforced only on >= 4-hardware-thread hosts)")
    parser.add_argument("--max-space-amplification", type=float, default=1.1,
                        help="maximum post-compaction store size over live "
                             "bytes (default 1.1; absolute, byte-exact)")
    parser.add_argument("--net-fresh",
                        help="freshly measured BENCH_net.json (arms the "
                             "two-tenant DRR fairness gate)")
    parser.add_argument("--fairness-tolerance", type=float, default=0.15,
                        help="allowed absolute drift of the heavy tenant's "
                             "served-step share from its weight-implied "
                             "share (default 0.15)")
    args = parser.parse_args()

    fresh = load_summaries(args.fresh)
    record = load_summaries(args.record)

    # Every design in the checked-in record must appear in the fresh run:
    # a design silently dropping out of the bench would otherwise skip its
    # comparisons entirely and pass vacuously. (Fresh-only designs are
    # fine — they are new, and get gated once the record is refreshed.)
    lost = sorted(set(record) - set(fresh))
    if lost:
        print(f"error: fresh record is missing designs recorded in "
              f"{args.record}: {', '.join(lost)}", file=sys.stderr)
        sys.exit(2)

    failed = check_metric(fresh, record, "latency_ratio_50k_over_1k",
                          "50k/1k ratio", args.max_regression, floor=1.0)
    failed |= check_metric(fresh, record, "hpd_beta_evals_per_solve",
                           "beta evals/solve", args.max_regression,
                           floor=4.0)
    if args.service_fresh and args.service_record:
        failed |= check_service(args.service_fresh, args.service_record,
                                args.max_regression)
    if args.service_fresh:
        failed |= check_thread_scaling(args.service_fresh, args.min_scaling)
        failed |= check_store_compaction(args.service_fresh,
                                         args.max_space_amplification)
    if args.net_fresh:
        failed |= check_net_fairness(args.net_fresh, args.fairness_tolerance)

    if failed:
        print("\nstep-latency ratio, HPD evals-per-solve, thread-scaling "
              "ratio, store compaction, or tenant fairness out of bounds "
              "(see lines above)", file=sys.stderr)
        return 1
    print("\nstep-latency ratios, HPD evals-per-solve, thread scaling, "
          "store compaction, and tenant fairness within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
