#!/usr/bin/env python3
"""Perf-regression gate over BENCH_step.json latency *ratios*.

Compares a freshly measured BENCH_step.json against the checked-in record
and fails when any design's 50k/1k per-step latency ratio regressed by more
than the allowed factor (default 2x).

Ratios, not absolute latencies: CI runners differ wildly in clock speed and
noise, but the *flatness* of per-step cost as the accumulated sample grows
is a property of the algorithm (streaming estimators, incremental rehash),
not of the machine. A ratio that doubles means someone reintroduced an
O(sample) term into Step().

Usage:
    check_perf_regression.py <fresh BENCH_step.json> <checked-in record>
        [--max-regression 2.0]

Exit code 0 = within bounds, 1 = regression, 2 = unusable input.

Stdlib only — runs anywhere a python3 exists.
"""

import argparse
import json
import sys


def load_ratios(path):
    """Returns {design: latency_ratio_50k_over_1k} from a bench record."""
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    ratios = {}
    for record in records:
        if record.get("bench") == "step_latency_summary":
            design = record.get("design")
            ratio = record.get("latency_ratio_50k_over_1k")
            if design is not None and isinstance(ratio, (int, float)):
                ratios[design] = float(ratio)
    if not ratios:
        print(f"error: no step_latency_summary records in {path}",
              file=sys.stderr)
        sys.exit(2)
    return ratios


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured BENCH_step.json")
    parser.add_argument("record", help="checked-in BENCH_step.json")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed factor between fresh and recorded "
                             "50k/1k ratios (default 2.0)")
    args = parser.parse_args()

    fresh = load_ratios(args.fresh)
    record = load_ratios(args.record)

    failed = False
    for design, fresh_ratio in sorted(fresh.items()):
        recorded = record.get(design)
        if recorded is None:
            print(f"  {design:>6}: fresh {fresh_ratio:.3f}x "
                  f"(no checked-in record, skipped)")
            continue
        # Floor the baseline at 1.0: a recorded ratio below 1 is measurement
        # luck, and the gate should not demand sub-flat scaling forever.
        budget = max(recorded, 1.0) * args.max_regression
        verdict = "OK" if fresh_ratio <= budget else "REGRESSION"
        print(f"  {design:>6}: fresh {fresh_ratio:.3f}x vs recorded "
              f"{recorded:.3f}x (budget {budget:.3f}x) {verdict}")
        if fresh_ratio > budget:
            failed = True

    if failed:
        print("\nper-step latency ratio regressed >"
              f"{args.max_regression}x against the checked-in record",
              file=sys.stderr)
        return 1
    print("\nstep-latency ratios within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
