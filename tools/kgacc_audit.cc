// kgacc_audit — command-line KG accuracy auditing.
//
// Loads a labeled TSV knowledge graph (subject<TAB>predicate<TAB>object
// <TAB>label) and runs the paper's iterative evaluation framework with the
// chosen sampling design and interval method. In `--annotator=oracle` mode
// the file's labels are replayed (simulation / regression testing); in
// `--annotator=human` mode the tool prompts the analyst for each sampled
// triple on stdin — a genuine audit where the label column can be all
// zeros.
//
// With `--methods=a,b,...` the tool compares several interval methods on
// the same audit task in one parallel pass: one EvaluationService job per
// method (cloned samplers, shared population), reports in list order.
//
// With `--store=PATH` the audit becomes durable: every judgment is written
// to a write-ahead annotation log before the evaluation loop consumes it,
// and the session checkpoints itself into the same log (every
// `--checkpoint-every` steps). A killed audit restarted with `--resume`
// continues from the last checkpoint — the steps since replay their labels
// from the store at zero oracle/human cost — and lands on the report the
// uninterrupted run would have produced, byte for byte. A later audit of
// the same KG pointed at the same store reuses every overlapping label.
//
// `--failpoints=SPEC` (or the KGACC_FAILPOINTS environment variable) arms
// deterministic fault injection for chaos testing; see failpoint.h for the
// grammar (`wal.sync=once;store.append=prob:0.25:seed:7`). Transient store
// failures are retried with bounded backoff; an exhausted budget degrades
// the audit to read-only persistence (`--store-errors=degrade`, the
// default) or aborts it (`--store-errors=fail`).
//
// Examples:
//   kgacc_audit --kg=facts.tsv
//   kgacc_audit --kg=facts.tsv --design=twcs --method=ahpd --alpha=0.01
//   kgacc_audit --kg=facts.tsv --methods=ahpd,wilson,cp --threads=4
//   kgacc_audit --kg=facts.tsv --annotator=human --json
//   kgacc_audit --kg=facts.tsv --store=audit.wal            # durable
//   kgacc_audit --kg=facts.tsv --store=audit.wal --resume   # after a crash
//   kgacc_audit --kg=facts.tsv --store=audit.wal \
//       --failpoints=store.append=every:5                   # chaos

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "kgacc/eval/report.h"
#include "kgacc/kgacc.h"
#include "kgacc/util/arg_parser.h"

namespace {

using namespace kgacc;

ArgParser BuildParser() {
  ArgParser parser;
  parser.AddFlag("kg", "path to the labeled TSV knowledge graph (required)")
      .AddFlag("design",
               "sampling design: srs|twcs|wcs|rcs|ssrs|sys (default srs)")
      .AddFlag("method",
               "interval method: ahpd|hpd|et|wilson|wald|cp (default ahpd)")
      .AddFlag("methods",
               "comma-separated method list; compares them in one parallel "
               "EvaluationService pass (oracle annotator only)")
      .AddFlag("threads",
               "worker threads for --methods (default: hardware)")
      .AddFlag("alpha", "significance level (default 0.05)")
      .AddFlag("epsilon", "margin-of-error budget (default 0.05)")
      .AddFlag("m", "TWCS second-stage size (default 3)")
      .AddFlag("seed", "random seed (default 42)")
      .AddFlag("budget-hours", "manual-effort budget in hours (0 = none)")
      .AddFlag("annotator", "oracle|human (default oracle)")
      .AddFlag("prior",
               "extra informative prior as accuracy:weight (repeatable via "
               "comma list)")
      .AddFlag("fpc", "apply the finite-population correction (srs only)")
      .AddFlag("json", "emit a JSON record instead of the text report")
      .AddFlag("plan",
               "forecast the audit instead of running it (needs --mu-guess)")
      .AddFlag("mu-guess", "anticipated accuracy for --plan (default 0.8)")
      .AddFlag("store",
               "write-ahead annotation store path; labels are durable and "
               "reused across audits of this KG")
      .AddFlag("resume",
               "resume from the store's last checkpoint for this audit id")
      .AddFlag("audit-id",
               "audit identity inside the store (default: the seed)")
      .AddFlag("checkpoint-every",
               "session snapshot cadence in steps (default 1)")
      .AddFlag("crash-after-steps",
               "SIGKILL the process after N steps of this run (crash-"
               "recovery testing)")
      .AddFlag("failpoints",
               "fault-injection spec, name=policy;... with policy off|once|"
               "times:N|every:N|prob:P[:seed:S]|sleep:MS (also read from "
               "KGACC_FAILPOINTS)")
      .AddFlag("compact",
               "compact the store after the audit: rewrite live labels and "
               "the latest checkpoints into a fresh log, reclaiming "
               "superseded frames")
      .AddFlag("compact-threshold",
               "auto-compact once this fraction of the store log is garbage "
               "(default 0 = off)")
      .AddFlag("store-errors",
               "exhausted store-write retries: degrade (read-only "
               "persistence, audit continues) or fail (default degrade)")
      .AddFlag("help", "show this help");
  return parser;
}

Result<IntervalMethod> ParseMethod(const std::string& name) {
  if (name == "ahpd") return IntervalMethod::kAhpd;
  if (name == "hpd") return IntervalMethod::kHpd;
  if (name == "et") return IntervalMethod::kEqualTailed;
  if (name == "wilson") return IntervalMethod::kWilson;
  if (name == "wald") return IntervalMethod::kWald;
  if (name == "cp") return IntervalMethod::kClopperPearson;
  return Status::InvalidArgument("unknown method: " + name);
}

std::vector<std::string> SplitCsv(const std::string& spec) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    if (end > start) items.push_back(spec.substr(start, end - start));
    start = end + 1;
  }
  return items;
}

Result<std::vector<BetaPrior>> ParseExtraPriors(const std::string& spec) {
  std::vector<BetaPrior> priors;
  for (const std::string& item : SplitCsv(spec)) {
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "prior must be accuracy:weight, got '" + item + "'");
    }
    const double accuracy = std::atof(item.substr(0, colon).c_str());
    const double weight = std::atof(item.substr(colon + 1).c_str());
    KGACC_ASSIGN_OR_RETURN(BetaPrior prior,
                           InformativePrior(accuracy, weight));
    priors.push_back(std::move(prior));
  }
  return priors;
}

Result<std::vector<IntervalMethod>> ParseMethodList(const std::string& spec) {
  std::vector<IntervalMethod> methods;
  for (const std::string& item : SplitCsv(spec)) {
    KGACC_ASSIGN_OR_RETURN(const IntervalMethod method, ParseMethod(item));
    methods.push_back(method);
  }
  if (methods.empty()) {
    return Status::InvalidArgument("--methods lists no methods");
  }
  return methods;
}

int RunMain(int argc, char** argv) {
  const ArgParser parser = BuildParser();
  const auto parsed = parser.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 parser.HelpText().c_str());
    return 2;
  }
  if (parsed->Has("help")) {
    std::printf("%s", parser.HelpText().c_str());
    return 0;
  }

  // Fault injection arms before anything touches the store, so even the
  // opening replay runs under the schedule. The flag wins over the
  // environment (a CI matrix sets the env; a shell overrides per run).
  std::string failpoints = parsed->GetString("failpoints");
  if (failpoints.empty()) {
    const char* env = std::getenv("KGACC_FAILPOINTS");
    if (env != nullptr) failpoints = env;
  }
  if (!failpoints.empty()) {
    const Status armed = FailpointRegistry::Instance().Arm(failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "bad --failpoints: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "[failpoints] armed: %s\n", failpoints.c_str());
  }

  const std::string kg_path = parsed->GetString("kg");
  if (kg_path.empty()) {
    std::fprintf(stderr, "--kg is required\n%s", parser.HelpText().c_str());
    return 2;
  }

  const auto kg = LoadKgFromTsv(kg_path);
  if (!kg.ok()) {
    std::fprintf(stderr, "failed to load KG: %s\n",
                 kg.status().ToString().c_str());
    return 1;
  }

  EvaluationConfig config;
  const auto method = ParseMethod(parsed->GetString("method", "ahpd"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 2;
  }
  config.method = *method;
  const auto alpha = parsed->GetDouble("alpha", 0.05);
  const auto epsilon = parsed->GetDouble("epsilon", 0.05);
  const auto m = parsed->GetInt("m", 3);
  const auto seed = parsed->GetInt("seed", 42);
  const auto budget = parsed->GetDouble("budget-hours", 0.0);
  const auto fpc = parsed->GetBool("fpc", false);
  const auto json = parsed->GetBool("json", false);
  for (const Status& s :
       {alpha.status(), epsilon.status(), m.status(), seed.status(),
        budget.status(), fpc.status(), json.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }
  config.alpha = *alpha;
  config.moe_threshold = *epsilon;
  config.max_cost_seconds = *budget * 3600.0;
  config.finite_population_correction = *fpc;
  if (parsed->Has("prior")) {
    const auto extra = ParseExtraPriors(parsed->GetString("prior"));
    if (!extra.ok()) {
      std::fprintf(stderr, "%s\n", extra.status().ToString().c_str());
      return 2;
    }
    for (const BetaPrior& p : *extra) config.priors.push_back(p);
  }

  const std::string design = parsed->GetString("design", "srs");

  if (parsed->GetBool("plan", false).value_or(false)) {
    // Forecast mode: no annotations spent. Entity sharing depends on the
    // design (TWCS amortizes identification across the second stage).
    const auto mu_guess = parsed->GetDouble("mu-guess", 0.8);
    if (!mu_guess.ok()) {
      std::fprintf(stderr, "%s\n", mu_guess.status().ToString().c_str());
      return 2;
    }
    const double avg_cluster =
        static_cast<double>(kg->num_triples()) /
        static_cast<double>(kg->num_clusters());
    const double entities_per_triple =
        design == "twcs"
            ? 1.0 / std::min<double>(static_cast<double>(*m),
                                     std::max(1.0, avg_cluster))
            : 1.0;
    const auto plan =
        PlanAhpdAudit(config.priors, *mu_guess, config.alpha,
                      config.moe_threshold, 0.0, 0.0, entities_per_triple);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    const auto wilson_n = WilsonRequiredSampleSize(*mu_guess, config.alpha,
                                                   config.moe_threshold);
    std::printf("Audit forecast for %s (anticipated accuracy %.2f, "
                "alpha=%.2f, eps=%.3f):\n", kg_path.c_str(), *mu_guess,
                config.alpha, config.moe_threshold);
    std::printf("  aHPD under %s: ~%llu annotations, ~%.2f h of manual "
                "effort\n", design.c_str(),
                static_cast<unsigned long long>(plan->total_triples),
                plan->additional_cost_hours);
    if (wilson_n.ok()) {
      std::printf("  Wilson baseline would need ~%llu annotations\n",
                  static_cast<unsigned long long>(*wilson_n));
    }
    return 0;
  }

  std::unique_ptr<Sampler> sampler;
  if (design == "srs") {
    sampler = std::make_unique<SrsSampler>(
        *kg, SrsConfig{.without_replacement = *fpc});
  } else if (design == "twcs") {
    sampler = std::make_unique<TwcsSampler>(
        *kg, TwcsConfig{.second_stage_size = static_cast<int>(*m)});
  } else if (design == "wcs") {
    sampler = std::make_unique<WcsSampler>(*kg, ClusterConfig{});
  } else if (design == "rcs") {
    sampler = std::make_unique<RcsSampler>(*kg, ClusterConfig{});
  } else if (design == "ssrs") {
    sampler = std::make_unique<StratifiedSampler>(*kg, StratifiedConfig{});
  } else if (design == "sys") {
    sampler = std::make_unique<SystematicSampler>(*kg, SystematicConfig{});
  } else {
    std::fprintf(stderr, "unknown design: %s\n", design.c_str());
    return 2;
  }

  std::unique_ptr<Annotator> annotator;
  const std::string annotator_name = parsed->GetString("annotator", "oracle");
  if (annotator_name == "oracle") {
    annotator = std::make_unique<OracleAnnotator>();
  } else if (annotator_name == "human") {
    annotator = std::make_unique<InteractiveAnnotator>(&std::cin, &std::cout);
  } else {
    std::fprintf(stderr, "unknown annotator: %s\n", annotator_name.c_str());
    return 2;
  }

  ReportContext context;
  context.dataset_name = kg_path;
  context.design_name = sampler->name();

  if (parsed->Has("methods")) {
    // Multi-method comparison: one EvaluationService job per method, all
    // executed in a single parallel pass over cloned samplers.
    if (parsed->Has("store")) {
      std::fprintf(stderr, "--store is single-audit (the annotation store "
                   "is not shared between concurrent jobs); drop --methods "
                   "or run the methods sequentially against the same "
                   "store\n");
      return 2;
    }
    if (annotator_name != "oracle") {
      std::fprintf(stderr, "--methods requires --annotator=oracle (human "
                   "judgments cannot fan out in parallel)\n");
      return 2;
    }
    const auto methods = ParseMethodList(parsed->GetString("methods"));
    if (!methods.ok()) {
      std::fprintf(stderr, "%s\n", methods.status().ToString().c_str());
      return 2;
    }
    const auto threads = parsed->GetInt("threads", 0);
    if (!threads.ok()) {
      std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
      return 2;
    }
    EvaluationService service(EvaluationService::Options{
        .num_threads = static_cast<int>(*threads)});
    std::vector<EvaluationJob> jobs;
    for (const IntervalMethod method : *methods) {
      EvaluationJob job;
      job.sampler = sampler.get();
      job.annotator = annotator.get();
      job.config = config;
      job.config.method = method;
      job.seed = static_cast<uint64_t>(*seed);
      job.label = IntervalMethodName(method);
      jobs.push_back(std::move(job));
    }
    const EvaluationBatchResult batch = service.RunBatch(jobs);
    bool all_converged = true;
    size_t json_records = 0;
    if (*json) std::printf("[");  // One parseable array, not N documents.
    for (size_t i = 0; i < batch.outcomes.size(); ++i) {
      const EvaluationJobOutcome& outcome = batch.outcomes[i];
      if (!outcome.status.ok()) {
        std::fprintf(stderr, "[%s] evaluation failed: %s\n",
                     outcome.label.c_str(),
                     outcome.status.ToString().c_str());
        all_converged = false;
        continue;
      }
      all_converged = all_converged && outcome.result.converged;
      if (*json) {
        std::printf("%s\n%s", json_records == 0 ? "" : ",",
                    RenderJsonReport(context, jobs[i].config,
                                     outcome.result).c_str());
        ++json_records;
      } else {
        std::printf("=== %s ===\n%s\n", outcome.label.c_str(),
                    RenderTextReport(context, jobs[i].config,
                                     outcome.result).c_str());
      }
    }
    if (*json) {
      std::printf("%s]\n", json_records == 0 ? "" : "\n");
    } else {
      std::printf("[service] %zu audits, %d threads, %.2fs wall, "
                  "%.1f audits/s, %.0f triples/s\n", batch.stats.jobs,
                  batch.stats.num_threads, batch.stats.wall_seconds,
                  batch.stats.audits_per_second,
                  batch.stats.triples_per_second);
    }
    return all_converged ? 0 : 3;
  }

  if (parsed->Has("store")) {
    // Durable audit: labels flow through the write-ahead annotation store
    // and the session checkpoints itself into the same log.
    const auto audit_id = parsed->GetInt("audit-id", *seed);
    const auto every = parsed->GetInt("checkpoint-every", 1);
    const auto crash_after = parsed->GetInt("crash-after-steps", 0);
    const auto resume = parsed->GetBool("resume", false);
    const auto compact_threshold =
        parsed->GetDouble("compact-threshold", 0.0);
    for (const Status& s : {audit_id.status(), every.status(),
                            crash_after.status(), resume.status(),
                            compact_threshold.status()}) {
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    }
    // The CLI opts into fsynced checkpoint frames: a tool whose whole job
    // is surviving kill -9 should not leave its resume points in the page
    // cache. (Annotation records are flushed per append either way.)
    AnnotationStore::Options store_open_options;
    store_open_options.sync_checkpoints = true;
    store_open_options.auto_compact_garbage_ratio = *compact_threshold;
    if (*compact_threshold > 0.0) {
      // CLI-scale stores are small; let auto-compaction actually trigger.
      store_open_options.auto_compact_min_bytes = 1 << 12;
    }
    auto store =
        AnnotationStore::Open(parsed->GetString("store"), store_open_options);
    if (!store.ok()) {
      std::fprintf(stderr, "cannot open annotation store: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    if ((*store)->stats().recovery.truncated_tail) {
      std::fprintf(stderr,
                   "[store] discarded %llu torn/corrupt tail bytes; "
                   "recovered to the last consistent frame\n",
                   static_cast<unsigned long long>(
                       (*store)->stats().recovery.bytes_discarded));
    }
    const std::string store_errors =
        parsed->GetString("store-errors", "degrade");
    if (store_errors != "degrade" && store_errors != "fail") {
      std::fprintf(stderr, "--store-errors must be degrade or fail, got "
                   "'%s'\n", store_errors.c_str());
      return 2;
    }
    StoredAnnotator::Options stored_options;
    stored_options.write_error_mode =
        store_errors == "fail" ? StoredAnnotator::WriteErrorMode::kFailFast
                               : StoredAnnotator::WriteErrorMode::kDegrade;
    StoredAnnotator stored(annotator.get(), store->get(),
                           static_cast<uint64_t>(*audit_id), stored_options);
    EvaluationSession session(*sampler, stored, config,
                              static_cast<uint64_t>(*seed));
    CheckpointOptions manager_options;
    manager_options.every_steps = static_cast<uint64_t>(*every);
    manager_options.on_error = store_errors == "fail"
                                   ? CheckpointOptions::OnError::kFail
                                   : CheckpointOptions::OnError::kDegrade;
    CheckpointManager manager(store->get(), static_cast<uint64_t>(*audit_id),
                              manager_options);
    if (*resume && manager.CanResume()) {
      const Status restored = manager.Resume(&session);
      if (!restored.ok()) {
        std::fprintf(stderr, "cannot resume: %s\n",
                     restored.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "[store] resumed at step %d (%llu labels on "
                   "file)\n", session.iterations(),
                   static_cast<unsigned long long>((*store)->num_labeled()));
    }
    uint64_t steps_this_run = 0;
    while (!session.done()) {
      const auto outcome = session.Step();
      if (!outcome.ok()) {
        std::fprintf(stderr, "evaluation failed: %s\n",
                     outcome.status().ToString().c_str());
        return 1;
      }
      ++steps_this_run;
      // Crash injection for recovery testing: die *between* the step and
      // its checkpoint — the hard case, where the tail step's labels are
      // already on file but its snapshot is not.
      if (*crash_after > 0 &&
          steps_this_run >= static_cast<uint64_t>(*crash_after)) {
        std::raise(SIGKILL);
      }
      const Status checkpointed = manager.OnStep(session);
      if (!checkpointed.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     checkpointed.ToString().c_str());
        return 1;
      }
    }
    if (!stored.status().ok()) {
      std::fprintf(stderr, "annotation store append failed: %s\n",
                   stored.status().ToString().c_str());
      return 1;
    }
    const auto result = session.Finish();
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (stored.degraded()) {
      std::fprintf(stderr,
                   "[store] DEGRADED: persistence stopped after retries "
                   "(%s); %llu labels served but not stored — a resumed run "
                   "re-judges them\n",
                   stored.degraded_cause().ToString().c_str(),
                   static_cast<unsigned long long>(stored.labels_dropped()));
    }
    if (manager.degraded()) {
      std::fprintf(stderr,
                   "[store] DEGRADED: checkpointing stopped after retries "
                   "(%s); recovery recomputes from the last good snapshot\n",
                   manager.degraded_cause().ToString().c_str());
    }
    if (*json) {
      std::printf("%s\n", RenderJsonReport(context, config, *result).c_str());
    } else {
      std::printf("%s", RenderTextReport(context, config, *result).c_str());
      std::printf("[store] %s: %llu labels on file, %llu served from store, "
                  "%llu new oracle judgments, %llu checkpoints this run, "
                  "%llu write retries%s\n",
                  (*store)->path().c_str(),
                  static_cast<unsigned long long>((*store)->num_labeled()),
                  static_cast<unsigned long long>(stored.store_hits()),
                  static_cast<unsigned long long>(stored.oracle_calls()),
                  static_cast<unsigned long long>(
                      manager.checkpoints_written()),
                  static_cast<unsigned long long>(stored.retries() +
                                                  manager.retries()),
                  stored.degraded() || manager.degraded() ? ", DEGRADED"
                                                          : "");
    }
    if (parsed->Has("compact")) {
      const unsigned long long before = (*store)->file_bytes();
      const Status compacted = (*store)->Compact();
      if (!compacted.ok()) {
        std::fprintf(stderr, "compaction failed: %s\n",
                     compacted.ToString().c_str());
        return 1;
      }
      const CompactionStats cs = (*store)->compaction_stats();
      std::fprintf(stderr,
                   "[store] compacted: %llu -> %llu bytes (%llu live "
                   "records, %llu checkpoints kept)\n",
                   before,
                   static_cast<unsigned long long>(cs.last_bytes_after),
                   static_cast<unsigned long long>(cs.last_records),
                   static_cast<unsigned long long>(cs.last_checkpoints));
    } else if ((*store)->compaction_stats().auto_compactions > 0) {
      const CompactionStats cs = (*store)->compaction_stats();
      std::fprintf(stderr,
                   "[store] auto-compacted %llu time(s); log now %llu "
                   "bytes\n",
                   static_cast<unsigned long long>(cs.auto_compactions),
                   static_cast<unsigned long long>((*store)->file_bytes()));
    }
    return result->converged ? 0 : 3;
  }

  const auto result = RunEvaluation(*sampler, *annotator, config,
                                    static_cast<uint64_t>(*seed));
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (*json) {
    std::printf("%s\n", RenderJsonReport(context, config, *result).c_str());
  } else {
    std::printf("%s", RenderTextReport(context, config, *result).c_str());
  }
  return result->converged ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
