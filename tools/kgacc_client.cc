// kgacc_client — networked audit client for kgaccd.
//
// Opens (or resumes) one audit on a running kgaccd, streams step batches,
// prints per-step interval updates with --progress, and renders the final
// report exactly as a local `kgacc_audit` run would — the daemon ships the
// full bit-exact EvaluationResult, so the text/JSON output diffs byte for
// byte against an uninterrupted run. The transport is disposable: kill the
// daemon mid-audit (or cut the connection) and this client backs off,
// reconnects, and resumes from the daemon's durable checkpoint without
// re-paying a single already-labeled triple.
//
// Store accounting goes to stderr as one machine-grepped line:
//   [client] oracle_calls=... store_hits=... reconnects=...
//
// Examples:
//   kgacc_client --port 7471 --kg demo --audit-id 42
//   kgacc_client --port-file port.txt --kg demo --audit-id 42 --json
//   kgacc_client --port 7471 --kg demo --audit-id 7 --max-steps 50 \
//       --deadline-seconds 30

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "kgacc/eval/report.h"
#include "kgacc/kgacc.h"
#include "kgacc/net/client.h"
#include "kgacc/util/arg_parser.h"

namespace {

using namespace kgacc;

ArgParser BuildParser() {
  ArgParser parser;
  parser.AddFlag("port", "daemon port on 127.0.0.1")
      .AddFlag("port-file",
               "read the daemon port from this file (waits up to "
               "--port-wait-ms for it to appear)")
      .AddFlag("port-wait-ms",
               "how long to wait for --port-file (default 10000)")
      .AddFlag("kg", "daemon-registered population name (required)")
      .AddFlag("tenant",
               "tenant id announced at Hello (default: the daemon's "
               "'default' tenant)")
      .AddFlag("audit-id",
               "audit identity: the unit of durability and resume "
               "(default: the seed)")
      .AddFlag("design",
               "sampling design: srs|twcs|wcs|rcs|ssrs|sys (default srs)")
      .AddFlag("method",
               "interval method: ahpd|hpd|et|wilson|wald|cp (default ahpd)")
      .AddFlag("alpha", "significance level (default 0.05)")
      .AddFlag("epsilon", "margin-of-error budget (default 0.05)")
      .AddFlag("seed", "random seed (default 42)")
      .AddFlag("m", "TWCS second-stage size (default 3)")
      .AddFlag("checkpoint-every",
               "daemon snapshot cadence in steps (default 1)")
      .AddFlag("max-steps", "session step budget (default 0 = unlimited)")
      .AddFlag("deadline-seconds",
               "session wall-clock deadline (default 0 = none)")
      .AddFlag("no-resume",
               "do not resume from an existing checkpoint on first open "
               "(reconnects always resume)")
      .AddFlag("batch-steps", "steps per StepBatch frame (default 4)")
      .AddFlag("reconnects",
               "reconnect-and-resume budget after transport failures "
               "(default 8)")
      .AddFlag("recv-timeout-ms",
               "read timeout / heartbeat cadence (default 2000)")
      .AddFlag("heartbeat-miss-limit",
               "unanswered heartbeats before reconnecting (default 3)")
      .AddFlag("progress", "print each interval update to stderr")
      .AddFlag("json", "emit a JSON record instead of the text report")
      .AddFlag("help", "show this help");
  return parser;
}

Result<IntervalMethod> ParseMethod(const std::string& name) {
  if (name == "ahpd") return IntervalMethod::kAhpd;
  if (name == "hpd") return IntervalMethod::kHpd;
  if (name == "et") return IntervalMethod::kEqualTailed;
  if (name == "wilson") return IntervalMethod::kWilson;
  if (name == "wald") return IntervalMethod::kWald;
  if (name == "cp") return IntervalMethod::kClopperPearson;
  return Status::InvalidArgument("unknown method: " + name);
}

Result<uint16_t> ReadPortFile(const std::string& port_file,
                              int64_t wait_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  while (true) {
    FILE* f = std::fopen(port_file.c_str(), "r");
    if (f != nullptr) {
      unsigned port = 0;
      const int scanned = std::fscanf(f, "%u", &port);
      std::fclose(f);
      if (scanned == 1 && port > 0 && port < 65536) {
        return static_cast<uint16_t>(port);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("no daemon port in " + port_file +
                                      " after " + std::to_string(wait_ms) +
                                      "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int RunMain(int argc, char** argv) {
  const ArgParser parser = BuildParser();
  const auto parsed = parser.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 parser.HelpText().c_str());
    return 2;
  }
  if (parsed->Has("help")) {
    std::printf("%s", parser.HelpText().c_str());
    return 0;
  }

  const std::string kg_name = parsed->GetString("kg");
  if (kg_name.empty()) {
    std::fprintf(stderr, "--kg is required\n%s", parser.HelpText().c_str());
    return 2;
  }
  const std::string port_file = parsed->GetString("port-file");
  const auto port_wait_ms = parsed->GetInt("port-wait-ms", 10000);
  if (!port_wait_ms.ok()) {
    std::fprintf(stderr, "%s\n", port_wait_ms.status().ToString().c_str());
    return 2;
  }
  Result<uint16_t> port = Status::InvalidArgument(
      "one of --port / --port-file is required");
  if (parsed->Has("port")) {
    const auto flag = parsed->GetInt("port", 0);
    if (!flag.ok()) {
      std::fprintf(stderr, "%s\n", flag.status().ToString().c_str());
      return 2;
    }
    port = static_cast<uint16_t>(*flag);
  } else if (!port_file.empty()) {
    port = ReadPortFile(port_file, *port_wait_ms);
  }
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n", port.status().ToString().c_str());
    return 2;
  }
  const auto method = ParseMethod(parsed->GetString("method", "ahpd"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 2;
  }
  const auto alpha = parsed->GetDouble("alpha", 0.05);
  const auto epsilon = parsed->GetDouble("epsilon", 0.05);
  const auto seed = parsed->GetInt("seed", 42);
  const auto m = parsed->GetInt("m", 3);
  const auto audit_id = parsed->GetInt("audit-id", seed.value_or(42));
  const auto checkpoint_every = parsed->GetInt("checkpoint-every", 1);
  const auto max_steps = parsed->GetInt("max-steps", 0);
  const auto deadline = parsed->GetDouble("deadline-seconds", 0.0);
  const auto no_resume = parsed->GetBool("no-resume", false);
  const auto batch_steps = parsed->GetInt("batch-steps", 4);
  const auto reconnects = parsed->GetInt("reconnects", 8);
  const auto recv_timeout = parsed->GetInt("recv-timeout-ms", 2000);
  const auto miss_limit = parsed->GetInt("heartbeat-miss-limit", 3);
  const auto progress = parsed->GetBool("progress", false);
  const auto json = parsed->GetBool("json", false);
  for (const Status& s :
       {alpha.status(), epsilon.status(), seed.status(), m.status(),
        audit_id.status(), checkpoint_every.status(), max_steps.status(),
        deadline.status(), no_resume.status(), batch_steps.status(),
        reconnects.status(), recv_timeout.status(), miss_limit.status(),
        progress.status(), json.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }

  OpenAuditMsg open;
  open.audit_id = static_cast<uint64_t>(*audit_id);
  open.kg_name = kg_name;
  open.design = parsed->GetString("design", "srs");
  open.method = parsed->GetString("method", "ahpd");
  open.alpha = *alpha;
  open.epsilon = *epsilon;
  open.seed = static_cast<uint64_t>(*seed);
  open.twcs_m = static_cast<uint64_t>(*m);
  open.checkpoint_every = static_cast<uint64_t>(*checkpoint_every);
  open.max_steps = static_cast<uint64_t>(*max_steps);
  open.deadline_seconds = *deadline;
  open.resume = !*no_resume;

  AuditClientOptions options;
  options.port = *port;
  if (!parsed->Has("port") && !port_file.empty()) {
    // Re-resolve on every reconnect: a restarted daemon on an ephemeral
    // port rewrites its --port-file, and the client must chase it.
    const int64_t wait = *port_wait_ms;
    options.resolve_port = [port_file, wait]() {
      return ReadPortFile(port_file, wait);
    };
  }
  options.batch_steps = static_cast<uint64_t>(*batch_steps);
  options.recv_timeout_ms = static_cast<uint64_t>(*recv_timeout);
  options.heartbeat_miss_limit = static_cast<int>(*miss_limit);
  options.max_reconnects = static_cast<int>(*reconnects);
  options.tenant = parsed->GetString("tenant");

  AuditClient client(options);
  const bool show_progress = *progress;
  const auto report = client.RunAudit(open, [&](const IntervalUpdateMsg& u) {
    if (show_progress) {
      std::fprintf(stderr,
                   "[step %llu] n=%llu mu=%.4f [%.4f, %.4f] moe=%.4f%s\n",
                   static_cast<unsigned long long>(u.step),
                   static_cast<unsigned long long>(u.annotated_triples),
                   u.mu, u.lower, u.upper, u.moe,
                   u.degraded ? " DEGRADED" : "");
    }
  });
  if (!report.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 report.status().ToString().c_str());
    if (client.stats().quota_exceeded_frames != 0) {
      const QuotaExceededMsg& q = client.stats().last_quota_exceeded;
      std::fprintf(stderr, "[client] quota_exceeded=%s remaining=%llu\n",
                   q.quota.c_str(),
                   static_cast<unsigned long long>(q.remaining));
    }
    return 1;
  }

  // Render the report with the daemon-shipped result: identical inputs to
  // what a local run feeds the renderer, hence identical bytes.
  ReportContext context;
  context.dataset_name = report->dataset_name;
  context.design_name = report->design_name;
  EvaluationConfig config;
  config.method = *method;
  config.alpha = *alpha;
  config.moe_threshold = *epsilon;
  if (*json) {
    std::printf("%s\n",
                RenderJsonReport(context, config, report->result).c_str());
  } else {
    std::printf("%s",
                RenderTextReport(context, config, report->result).c_str());
  }
  const AuditClientStats& stats = client.stats();
  std::fprintf(stderr,
               "[client] audit_id=%llu oracle_calls=%llu store_hits=%llu "
               "checkpoints=%llu retries=%llu resumed=%d start_step=%llu "
               "labels_on_file=%llu updates=%llu reconnects=%llu "
               "busy_retries=%llu heartbeats=%llu degraded=%d\n",
               static_cast<unsigned long long>(report->audit_id),
               static_cast<unsigned long long>(report->oracle_calls),
               static_cast<unsigned long long>(report->store_hits),
               static_cast<unsigned long long>(report->checkpoints_written),
               static_cast<unsigned long long>(report->store_retries),
               stats.opened.resumed ? 1 : 0,
               static_cast<unsigned long long>(stats.opened.start_step),
               static_cast<unsigned long long>(stats.opened.labels_on_file),
               static_cast<unsigned long long>(stats.updates_received),
               static_cast<unsigned long long>(stats.reconnects),
               static_cast<unsigned long long>(stats.busy_retries),
               static_cast<unsigned long long>(stats.heartbeats_sent),
               report->degraded ? 1 : 0);
  return report->result.converged ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
