// kgaccd — the crash-tolerant networked audit daemon.
//
// Serves the kgacc audit protocol (net/protocol.h) over loopback TCP:
// clients open audits against registered knowledge graphs, stream
// annotation step batches, and receive per-step interval updates plus a
// final report that renders byte-identically to a local `kgacc_audit` run.
// Every judgment lands in a per-audit write-ahead annotation store before
// it is consumed, and sessions checkpoint into the same log, so a SIGKILL
// of this process loses *nothing*: restart it, reconnect the client, and
// the audit resumes from the last checkpoint to the identical report —
// already-labeled triples are never re-paid.
//
// Robustness surface: per-connection heartbeats with idle reaping, session
// step budgets and wall-clock deadlines, admission control with explicit
// Busy push-back, degrade-vs-fail store taxonomy, and graceful drain on
// SIGTERM/SIGINT (stop admitting, checkpoint every live session, flush,
// exit 0). Chaos hooks: `--failpoints` (or KGACC_FAILPOINTS) arms the
// `net.*` and store failpoints; `--crash-after-steps` SIGKILLs the daemon
// between a step and its checkpoint.
//
// Examples:
//   kgaccd --kg demo=facts.tsv --store-dir /var/lib/kgacc
//   kgaccd --kg a=a.tsv,b=b.tsv --port 7471 --workers 4
//   kgaccd --kg demo=facts.tsv --store-dir s --port 0 --port-file port.txt
//   kgaccd --kg demo=facts.tsv --store-dir s --failpoints net.accept=once

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "kgacc/kgacc.h"
#include "kgacc/net/server.h"
#include "kgacc/util/arg_parser.h"

namespace {

using namespace kgacc;

AuditDaemon* g_daemon = nullptr;

// Signal path: an atomic flag flip plus one write() on the wake pipe —
// both async-signal-safe. The poll loop does the actual drain.
void HandleDrainSignal(int) {
  if (g_daemon != nullptr) g_daemon->RequestDrain();
}

ArgParser BuildParser() {
  ArgParser parser;
  parser
      .AddFlag("kg",
               "registered populations as name=path.tsv[,name=path...] "
               "(required)")
      .AddFlag("store-dir",
               "directory for per-audit annotation stores (required)")
      .AddFlag("port", "listen port on 127.0.0.1 (default 0 = ephemeral)")
      .AddFlag("port-file",
               "write the bound port here once listening (for scripts "
               "using --port=0)")
      .AddFlag("workers", "step-execution workers (default: hardware)")
      .AddFlag("max-sessions", "admission: live session cap (default 64)")
      .AddFlag("max-inflight",
               "admission: in-flight step batches per connection "
               "(default 4)")
      .AddFlag("max-connections", "admission: connection cap (default 64)")
      .AddFlag("heartbeat-interval-ms",
               "advertised client heartbeat cadence (default 5000)")
      .AddFlag("idle-timeout-ms",
               "reap connections silent this long (default 30000)")
      .AddFlag("default-max-steps",
               "step budget when the client requests none (default 0 = "
               "unlimited)")
      .AddFlag("checkpoint-every",
               "session snapshot cadence floor in steps (default 1)")
      .AddFlag("compact-threshold",
               "auto-compact a KG store once this fraction of its log is "
               "garbage (default 0 = drain-time compaction only)")
      .AddFlag("tenants",
               "tenants file: one 'id key=value...' line per tenant "
               "(oracle_budget, store_quota, weight, max_sessions, "
               "max_inflight_steps; '*' = fallback). Omitted = open "
               "single-tenant mode with unlimited budgets")
      .AddFlag("crash-after-steps",
               "SIGKILL the daemon after N total steps, between a step and "
               "its checkpoint (crash-recovery testing)")
      .AddFlag("failpoints",
               "fault-injection spec, name=policy;... (also read from "
               "KGACC_FAILPOINTS); see failpoint.h for the grammar")
      .AddFlag("help", "show this help");
  return parser;
}

std::vector<std::pair<std::string, std::string>> ParseKgSpec(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::string>> kgs;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    if (end > start) {
      const std::string item = spec.substr(start, end - start);
      const size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
        return {};
      }
      kgs.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    start = end + 1;
  }
  return kgs;
}

int RunMain(int argc, char** argv) {
  const ArgParser parser = BuildParser();
  const auto parsed = parser.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 parser.HelpText().c_str());
    return 2;
  }
  if (parsed->Has("help")) {
    std::printf("%s", parser.HelpText().c_str());
    return 0;
  }

  std::string failpoints = parsed->GetString("failpoints");
  if (failpoints.empty()) {
    const char* env = std::getenv("KGACC_FAILPOINTS");
    if (env != nullptr) failpoints = env;
  }
  if (!failpoints.empty()) {
    const Status armed = FailpointRegistry::Instance().Arm(failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "bad --failpoints: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "[kgaccd] failpoints armed: %s\n",
                 failpoints.c_str());
  }

  const std::string kg_spec = parsed->GetString("kg");
  const std::string store_dir = parsed->GetString("store-dir");
  if (kg_spec.empty() || store_dir.empty()) {
    std::fprintf(stderr, "--kg and --store-dir are required\n%s",
                 parser.HelpText().c_str());
    return 2;
  }
  const auto named = ParseKgSpec(kg_spec);
  if (named.empty()) {
    std::fprintf(stderr, "--kg must be name=path[,name=path...], got "
                 "'%s'\n", kg_spec.c_str());
    return 2;
  }

  const auto port = parsed->GetInt("port", 0);
  const auto workers = parsed->GetInt("workers", 0);
  const auto max_sessions = parsed->GetInt("max-sessions", 64);
  const auto max_inflight = parsed->GetInt("max-inflight", 4);
  const auto max_connections = parsed->GetInt("max-connections", 64);
  const auto heartbeat_ms = parsed->GetInt("heartbeat-interval-ms", 5000);
  const auto idle_ms = parsed->GetInt("idle-timeout-ms", 30000);
  const auto default_max_steps = parsed->GetInt("default-max-steps", 0);
  const auto checkpoint_every = parsed->GetInt("checkpoint-every", 1);
  const auto crash_after = parsed->GetInt("crash-after-steps", 0);
  const auto compact_threshold = parsed->GetDouble("compact-threshold", 0.0);
  for (const Status& s :
       {port.status(), workers.status(), max_sessions.status(),
        max_inflight.status(), max_connections.status(),
        heartbeat_ms.status(), idle_ms.status(), default_max_steps.status(),
        checkpoint_every.status(), crash_after.status(),
        compact_threshold.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }

  AuditDaemon::Options options;
  options.port = static_cast<uint16_t>(*port);
  options.store_dir = store_dir;
  options.workers = static_cast<int>(*workers);
  options.max_sessions = static_cast<size_t>(*max_sessions);
  options.max_inflight_batches_per_conn = static_cast<size_t>(*max_inflight);
  options.max_connections = static_cast<size_t>(*max_connections);
  options.heartbeat_interval_ms = static_cast<uint64_t>(*heartbeat_ms);
  options.idle_timeout_ms = static_cast<uint64_t>(*idle_ms);
  options.default_max_steps = static_cast<uint64_t>(*default_max_steps);
  options.checkpoint_every = static_cast<uint64_t>(*checkpoint_every);
  options.crash_after_steps = static_cast<uint64_t>(*crash_after);
  options.auto_compact_garbage_ratio = *compact_threshold;

  const std::string tenants_file = parsed->GetString("tenants");
  if (!tenants_file.empty()) {
    auto registry = TenantRegistry::LoadFile(tenants_file);
    if (!registry.ok()) {
      std::fprintf(stderr, "bad --tenants %s: %s\n", tenants_file.c_str(),
                   registry.status().ToString().c_str());
      return 2;
    }
    options.tenants = std::move(*registry);
    std::fprintf(stderr, "[kgaccd] tenants loaded: %zu explicit%s\n",
                 options.tenants.tenants().size(),
                 options.tenants.open() ? "" : " (closed registry)");
  }

  AuditDaemon daemon(options);

  // The populations must outlive the daemon; a deque never reallocates
  // already-emplaced elements, so registered pointers stay stable.
  std::deque<KnowledgeGraph> kgs;
  for (const auto& [name, path] : named) {
    auto kg = LoadKgFromTsv(path);
    if (!kg.ok()) {
      std::fprintf(stderr, "cannot load --kg %s=%s: %s\n", name.c_str(),
                   path.c_str(), kg.status().ToString().c_str());
      return 1;
    }
    kgs.push_back(std::move(*kg));
    daemon.RegisterKg(name, &kgs.back());
    std::fprintf(stderr, "[kgaccd] registered %s: %llu triples\n",
                 name.c_str(),
                 static_cast<unsigned long long>(kgs.back().num_triples()));
  }

  const Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start daemon: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);

  std::fprintf(stderr, "[kgaccd] listening on 127.0.0.1:%u (store-dir %s)\n",
               daemon.port(), store_dir.c_str());
  const std::string port_file = parsed->GetString("port-file");
  if (!port_file.empty()) {
    // Write-then-rename so a polling script never reads a partial file.
    const std::string tmp = port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", daemon.port());
    std::fclose(f);
    std::rename(tmp.c_str(), port_file.c_str());
  }

  daemon.Wait();
  g_daemon = nullptr;
  std::fprintf(stderr, "[kgaccd] drained: %s\n",
               daemon.StatsLine().c_str());
  if (daemon.ledger() != nullptr) {
    for (const TenantBalance& balance : daemon.ledger()->Balances()) {
      std::fprintf(stderr,
                   "[kgaccd] tenant %s: oracle_spent=%llu store_bytes=%llu\n",
                   balance.tenant.c_str(),
                   static_cast<unsigned long long>(balance.oracle_spent),
                   static_cast<unsigned long long>(balance.store_bytes));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
