// Quickstart: audit the accuracy of a small in-memory knowledge graph with
// the adaptive HPD algorithm.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "kgacc/kgacc.h"

int main() {
  using namespace kgacc;

  // 1. Assemble a labeled KG. In a real audit the labels are unknown and
  //    produced on demand by human annotators; here they are gold labels
  //    the simulation oracle replays.
  KnowledgeGraphBuilder builder;
  Rng rng(7);
  for (int e = 0; e < 400; ++e) {
    const std::string subject = "entity/" + std::to_string(e);
    const int facts = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < facts; ++f) {
      builder.Add(subject, "predicate/" + std::to_string(f),
                  "object/" + std::to_string(e * 7 + f),
                  /*correct=*/rng.Bernoulli(0.88));
    }
  }
  const auto kg_result = builder.Build();
  if (!kg_result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 kg_result.status().ToString().c_str());
    return 1;
  }
  const KnowledgeGraph& kg = *kg_result;
  std::printf("KG: %llu facts across %llu entities (true accuracy %.4f)\n",
              static_cast<unsigned long long>(kg.num_triples()),
              static_cast<unsigned long long>(kg.num_clusters()),
              kg.TrueAccuracy());

  // 2. Pick a sampling design (TWCS is the recommended default) and an
  //    annotator. OracleAnnotator stands in for the human loop.
  TwcsSampler sampler(kg, TwcsConfig{.second_stage_size = 3});
  OracleAnnotator annotator;

  // 3. Run the iterative evaluation: aHPD over the Kerman/Jeffreys/Uniform
  //    priors, 95% credible interval, stop when the margin of error is
  //    within ±0.05.
  EvaluationConfig config;
  config.alpha = 0.05;
  config.moe_threshold = 0.05;
  const auto result = RunEvaluation(sampler, annotator, config, /*seed=*/46);
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Read the audit report.
  std::printf("\nEstimated accuracy: %.4f\n", result->mu);
  std::printf("95%% credible interval: [%.4f, %.4f]  (MoE %.4f)\n",
              result->interval.lower, result->interval.upper,
              result->interval.Moe());
  std::printf("Winning prior: %s\n",
              config.priors[result->winning_prior].name.c_str());
  std::printf("Annotated %llu triples over %llu entities in %d rounds\n",
              static_cast<unsigned long long>(result->distinct_triples),
              static_cast<unsigned long long>(result->distinct_entities),
              result->iterations);
  std::printf("Estimated manual effort: %.2f hours\n", result->cost_hours);
  std::printf("\nBecause this is a credible interval, the statement \"the\n"
              "accuracy lies in the interval with 95%% probability\" is a\n"
              "valid post-data claim — unlike a confidence interval.\n");
  return 0;
}
