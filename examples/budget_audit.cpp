// Budget-constrained auditing — the §6.5 scenario: "Depending on the
// available annotation budget, the cost reduction introduced by aHPD can
// make the difference between an evaluation process that concludes
// successfully (due to convergence) and one that terminates prematurely
// (due to budget exhaustion)." This example sweeps a fixed manual-effort
// budget and counts, for Wilson vs aHPD, how many of 200 audits finish
// inside it.

#include <cstdio>

#include "kgacc/kgacc.h"

int main() {
  using namespace kgacc;
  const auto kg = *MakeKg(NellProfile(), /*seed=*/11);
  std::printf("Budget-constrained audits of a NELL-like KG "
              "(true accuracy %.3f, alpha=0.01)\n\n", kg.TrueAccuracy());

  OracleAnnotator annotator;
  const int runs = 200;
  std::printf("%10s %22s %22s\n", "budget(h)", "Wilson finished",
              "aHPD finished");
  for (const double budget_hours : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    int finished[2] = {0, 0};
    double mean_moe[2] = {0.0, 0.0};
    const IntervalMethod methods[] = {IntervalMethod::kWilson,
                                      IntervalMethod::kAhpd};
    for (int m = 0; m < 2; ++m) {
      SrsSampler sampler(kg, SrsConfig{});
      EvaluationConfig config;
      config.method = methods[m];
      config.alpha = 0.01;  // High-precision regime of Fig. 4.
      config.max_cost_seconds = budget_hours * 3600.0;
      for (int r = 0; r < runs; ++r) {
        const auto result = *RunEvaluation(sampler, annotator, config,
                                           1000 + r);
        if (result.converged) ++finished[m];
        mean_moe[m] += result.interval.Moe();
      }
      mean_moe[m] /= runs;
    }
    char wilson_cell[48], ahpd_cell[48];
    std::snprintf(wilson_cell, sizeof(wilson_cell), "%3d/%d (MoE %.3f)",
                  finished[0], runs, mean_moe[0]);
    std::snprintf(ahpd_cell, sizeof(ahpd_cell), "%3d/%d (MoE %.3f)",
                  finished[1], runs, mean_moe[1]);
    std::printf("%10.1f %22s %22s\n", budget_hours, wilson_cell, ahpd_cell);
  }
  std::printf("\nWhere the budget bites, aHPD completes audits Wilson "
              "cannot; when neither\nfinishes, aHPD still leaves the "
              "analyst a tighter (and honestly interpretable)\ninterval "
              "for the money spent.\n");
  return 0;
}
