// Continuous accuracy monitoring of an evolving KG — the future-work
// scenario of §8: batches of new content arrive over time; each re-audit
// feeds the previous audit's result to aHPD as an informative prior, so the
// evaluation converges with a fraction of the annotations a cold audit
// needs. The final act demonstrates the limitation the paper warns about:
// after a massive update with a very different accuracy, the carried-over
// prior is *deceptive* — aHPD's shortest-interval rule happily keeps it —
// and the honest mitigation is a fresh audit with uninformative priors.

#include <cstdio>
#include <vector>

#include "kgacc/kgacc.h"

namespace {

using namespace kgacc;

SyntheticKg MakeEpoch(double accuracy, uint64_t clusters, uint64_t seed) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.label_model = LabelModel::kBetaMixture;
  cfg.intra_cluster_rho = 0.2;
  cfg.seed = seed;
  return *SyntheticKg::Create(cfg);
}

EvaluationResult Audit(const KgView& kg, const std::vector<BetaPrior>& priors,
                       uint64_t seed) {
  TwcsSampler sampler(kg, TwcsConfig{.second_stage_size = 3});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.priors = priors;
  return *RunEvaluation(sampler, annotator, config, seed);
}

void Report(const char* label, const EvaluationResult& audit,
            const std::vector<BetaPrior>& priors, double truth) {
  std::printf("%-15s mu_hat=%.3f CrI=[%.3f, %.3f] triples=%4llu cost=%.2fh"
              "  winner=%-16s truth=%.2f%s\n",
              label, audit.mu, audit.interval.lower, audit.interval.upper,
              static_cast<unsigned long long>(audit.annotated_triples),
              audit.cost_hours, priors[audit.winning_prior].name.c_str(),
              truth, audit.interval.Contains(truth) ? "" : "  <-- MISSED");
}

}  // namespace

int main() {
  std::printf("Continuous monitoring of an evolving KG (aHPD + TWCS)\n\n");

  // Epoch 0: cold audit with the uninformative trio.
  const auto epoch0 = MakeEpoch(0.86, 4000, 1);
  auto priors = DefaultUninformativePriors();
  const auto audit0 = Audit(epoch0, priors, 100);
  Report("Epoch 0 (cold)", audit0, priors, epoch0.TrueAccuracy());

  // Epochs 1-3: content grows, accuracy drifts slowly. Carry the center of
  // the previous credible interval forward as an informative prior with a
  // deliberately modest weight — strong enough to converge in ~1/6 of the
  // annotations, weak enough that fresh data can still move the posterior.
  const double kCarryWeight = 100.0;
  double carried_mu =
      0.5 * (audit0.interval.lower + audit0.interval.upper);
  const double drift[] = {0.86, 0.85, 0.87};
  double warm_cost = 0.0;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    const auto kg = MakeEpoch(drift[epoch - 1], 4000 + 800 * epoch,
                              static_cast<uint64_t>(epoch + 1));
    priors = DefaultUninformativePriors();
    priors.push_back(*InformativePrior(
        carried_mu, kCarryWeight,
        "carry-over(e" + std::to_string(epoch - 1) + ")"));
    const auto audit = Audit(kg, priors, 100 + epoch);
    warm_cost += audit.cost_hours;
    char label[32];
    std::snprintf(label, sizeof(label), "Epoch %d (warm)", epoch);
    Report(label, audit, priors, kg.TrueAccuracy());
    carried_mu = 0.5 * (audit.interval.lower + audit.interval.upper);
  }

  // Epoch 4: a massive noisy ingestion halves the accuracy. The carried
  // prior is now plain wrong — and because its posterior is the *tightest*,
  // aHPD's shortest-interval rule keeps selecting it and stops early with a
  // deceptive interval. This is the §8 limitation, reproduced live.
  const auto shocked = MakeEpoch(0.45, 9000, 17);
  priors = DefaultUninformativePriors();
  priors.push_back(*InformativePrior(carried_mu, kCarryWeight, "stale"));
  const auto audit4 = Audit(shocked, priors, 104);
  std::printf("\nEpoch 4: accuracy shock to 0.45 with the stale prior in "
              "the race:\n");
  Report("Epoch 4 (warm)", audit4, priors, shocked.TrueAccuracy());

  // Mitigation: when an update is large relative to the audited KG (here
  // more than doubling it), drop carried priors and audit cold.
  priors = DefaultUninformativePriors();
  const auto audit4_cold = Audit(shocked, priors, 105);
  Report("Epoch 4 (cold)", audit4_cold, priors, shocked.TrueAccuracy());

  std::printf("\nLesson: carried priors cut the average re-audit cost to "
              "%.2fh vs the %.2fh cold\naudit while the KG drifts slowly, "
              "but a massive update makes them deceptive —\nthe stale "
              "prior's tight, wrong posterior wins the shortest-interval "
              "race. Gate\ncarry-over priors on the relative size of the "
              "update (the paper's §8 caveat).\n",
              warm_cost / 3.0, audit0.cost_hours);
  return 0;
}
