// Choosing a sampling design from structural diagnostics, before spending
// a single annotation. `ComputeKgStatistics` estimates the intra-cluster
// label correlation and predicts the TWCS design effect; combined with the
// cost model this yields a recommendation — then we verify it empirically.

#include <cstdio>

#include "kgacc/kgacc.h"

namespace {

using namespace kgacc;

void Advise(const char* label, const SyntheticKg& kg) {
  const auto stats = *ComputeKgStatistics(kg, /*twcs_second_stage=*/3);
  std::printf("%s\n", label);
  std::printf("  facts=%llu clusters=%llu avg size=%.2f (sd %.2f, gini "
              "%.2f, max %llu)\n",
              static_cast<unsigned long long>(stats.num_triples),
              static_cast<unsigned long long>(stats.num_clusters),
              stats.avg_cluster_size, stats.cluster_size_stddev,
              stats.cluster_size_gini,
              static_cast<unsigned long long>(stats.max_cluster_size));
  std::printf("  accuracy=%.3f  ICC=%.3f  predicted TWCS deff=%.2f\n",
              stats.accuracy, stats.intra_cluster_correlation,
              stats.predicted_design_effect);

  // Cost heuristic: TWCS needs ~deff times the SRS triples but pays the
  // entity-identification cost only once per cluster (m=3 second stage).
  const CostModel cost;
  const double srs_per_triple = cost.entity_identification_seconds +
                                cost.fact_verification_seconds;
  const double m_eff = std::min(3.0, stats.avg_cluster_size);
  const double twcs_per_triple =
      cost.entity_identification_seconds / m_eff +
      cost.fact_verification_seconds;
  const double twcs_relative =
      stats.predicted_design_effect * twcs_per_triple / srs_per_triple;
  const char* advice = twcs_relative < 1.0 ? "TWCS" : "SRS";
  std::printf("  predicted TWCS/SRS cost ratio=%.2f -> recommend %s\n",
              twcs_relative, advice);

  // Verify with 100 replicated audits per design.
  OracleAnnotator annotator;
  EvaluationConfig config;
  SrsSampler srs(kg, SrsConfig{});
  const auto srs_summary = *RunReplications(srs, annotator, config, 100, 5);
  TwcsSampler twcs(kg, TwcsConfig{.second_stage_size = 3});
  const auto twcs_summary = *RunReplications(twcs, annotator, config, 100, 5);
  std::printf("  measured: SRS %.2fh vs TWCS %.2fh (ratio %.2f)\n\n",
              srs_summary.cost_summary.mean, twcs_summary.cost_summary.mean,
              twcs_summary.cost_summary.mean / srs_summary.cost_summary.mean);
}

SyntheticKg MakeCase(LabelModel model, double rho, double mean_size,
                     ClusterSizeModel sizes) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 3000;
  cfg.mean_cluster_size = mean_size;
  cfg.size_model = sizes;
  cfg.accuracy = 0.85;
  cfg.label_model = model;
  cfg.intra_cluster_rho = rho;
  cfg.seed = 77;
  return *SyntheticKg::Create(cfg);
}

}  // namespace

int main() {
  std::printf("Design advisor: pick SRS vs TWCS from pre-annotation "
              "diagnostics\n\n");
  Advise("Case 1: curated KG, mild error clustering, mid-size clusters",
         MakeCase(LabelModel::kBetaMixture, 0.15, 4.0,
                  ClusterSizeModel::kGeometric));
  Advise("Case 2: heavy error clustering (noisy extraction pipeline)",
         MakeCase(LabelModel::kBetaMixture, 0.6, 4.0,
                  ClusterSizeModel::kGeometric));
  Advise("Case 3: singleton-dominated KG (clusters barely help)",
         MakeCase(LabelModel::kBetaMixture, 0.15, 1.2,
                  ClusterSizeModel::kGeometric));
  Advise("Case 4: hub-dominated Zipf KG with iid labels",
         MakeCase(LabelModel::kIid, 0.0, 5.0, ClusterSizeModel::kZipf));
  return 0;
}
