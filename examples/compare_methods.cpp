// Compare every interval method on the same audit task — the "which
// interval should my pipeline use?" question the paper answers. Builds one
// EvaluationJob per method and hands the whole comparison to the
// EvaluationService, which runs the audits concurrently and returns the
// results in submission order; a replication study (also one parallel
// batch per method) shows the differences are not one-off luck.

#include <cstdio>

#include "kgacc/kgacc.h"

int main() {
  using namespace kgacc;
  const auto kg = *MakeKg(NellProfile(), /*seed=*/2024);
  std::printf("Auditing a NELL-like KG: %llu facts, true accuracy %.4f\n",
              static_cast<unsigned long long>(kg.num_triples()),
              kg.TrueAccuracy());

  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  const IntervalMethod methods[] = {
      IntervalMethod::kWald,         IntervalMethod::kWilson,
      IntervalMethod::kAgrestiCoull, IntervalMethod::kClopperPearson,
      IntervalMethod::kEqualTailed,  IntervalMethod::kHpd,
      IntervalMethod::kAhpd,
  };

  // One job per method: same population, same seed, same design — the
  // interval choice is the only difference between the columns.
  EvaluationService service;
  std::vector<EvaluationJob> jobs;
  for (const IntervalMethod method : methods) {
    EvaluationJob job;
    job.sampler = &sampler;
    job.annotator = &annotator;
    job.config.method = method;
    job.seed = 7;
    job.label = IntervalMethodName(method);
    jobs.push_back(std::move(job));
  }
  const EvaluationBatchResult batch = service.RunBatch(jobs);

  std::printf("(%zu audits on %d service threads, %.0f ms wall)\n\n",
              batch.stats.jobs, batch.stats.num_threads,
              batch.stats.wall_seconds * 1e3);
  std::printf("%-16s %8s %22s %9s %9s\n", "Method", "mu_hat", "95% interval",
              "triples", "cost(h)");
  for (const EvaluationJobOutcome& outcome : batch.outcomes) {
    if (!outcome.status.ok()) {
      std::printf("%-16s failed: %s\n", outcome.label.c_str(),
                  outcome.status.ToString().c_str());
      continue;
    }
    const EvaluationResult& result = outcome.result;
    char interval[32];
    std::snprintf(interval, sizeof(interval), "[%.4f, %.4f]",
                  result.interval.lower, result.interval.upper);
    std::printf("%-16s %8.4f %22s %9llu %9.2f\n", outcome.label.c_str(),
                result.mu, interval,
                static_cast<unsigned long long>(result.annotated_triples),
                result.cost_hours);
  }

  // Replication study: one run can be lucky; 200 repetitions show the
  // systematic ordering (aHPD cheapest among the reliable methods).
  std::printf("\nMean annotated triples over 200 repetitions:\n");
  for (const IntervalMethod method :
       {IntervalMethod::kWald, IntervalMethod::kWilson,
        IntervalMethod::kClopperPearson, IntervalMethod::kAhpd}) {
    EvaluationConfig config;
    config.method = method;
    const auto summary =
        RunReplicationsParallel(service, sampler, annotator, config, 200, 77);
    std::printf("  %-16s %7.1f ± %-6.1f  (zero-width runs: %d)\n",
                IntervalMethodName(method), summary->triples_summary.mean,
                summary->triples_summary.stddev, summary->zero_width);
  }
  std::printf("\nTakeaway: Wald is cheap but degenerate on skewed KGs;\n"
              "Clopper-Pearson is safe but conservative; aHPD is both\n"
              "reliable (valid post-data probability) and the cheapest.\n");
  return 0;
}
