// Compare every interval method on the same audit task — the "which
// interval should my pipeline use?" question the paper answers. Runs the
// full iterative framework on a NELL-like automatically-extracted KG with
// each method and prints annotations, cost, and the final interval, plus a
// short replication study so the differences are not one-off luck.

#include <cstdio>

#include "kgacc/kgacc.h"

int main() {
  using namespace kgacc;
  const auto kg = *MakeKg(NellProfile(), /*seed=*/2024);
  std::printf("Auditing a NELL-like KG: %llu facts, true accuracy %.4f\n\n",
              static_cast<unsigned long long>(kg.num_triples()),
              kg.TrueAccuracy());

  OracleAnnotator annotator;
  const IntervalMethod methods[] = {
      IntervalMethod::kWald,         IntervalMethod::kWilson,
      IntervalMethod::kAgrestiCoull, IntervalMethod::kClopperPearson,
      IntervalMethod::kEqualTailed,  IntervalMethod::kHpd,
      IntervalMethod::kAhpd,
  };

  std::printf("%-16s %8s %22s %9s %9s\n", "Method", "mu_hat", "95% interval",
              "triples", "cost(h)");
  for (const IntervalMethod method : methods) {
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationConfig config;
    config.method = method;
    const auto result = RunEvaluation(sampler, annotator, config, 7);
    if (!result.ok()) {
      std::printf("%-16s failed: %s\n", IntervalMethodName(method),
                  result.status().ToString().c_str());
      continue;
    }
    char interval[32];
    std::snprintf(interval, sizeof(interval), "[%.4f, %.4f]",
                  result->interval.lower, result->interval.upper);
    std::printf("%-16s %8.4f %22s %9llu %9.2f\n", IntervalMethodName(method),
                result->mu, interval,
                static_cast<unsigned long long>(result->annotated_triples),
                result->cost_hours);
  }

  // Replication study: one run can be lucky; 200 repetitions show the
  // systematic ordering (aHPD cheapest among the reliable methods).
  std::printf("\nMean annotated triples over 200 repetitions:\n");
  for (const IntervalMethod method :
       {IntervalMethod::kWald, IntervalMethod::kWilson,
        IntervalMethod::kClopperPearson, IntervalMethod::kAhpd}) {
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationConfig config;
    config.method = method;
    const auto summary = RunReplications(sampler, annotator, config, 200, 77);
    std::printf("  %-16s %7.1f ± %-6.1f  (zero-width runs: %d)\n",
                IntervalMethodName(method), summary->triples_summary.mean,
                summary->triples_summary.stddev, summary->zero_width);
  }
  std::printf("\nTakeaway: Wald is cheap but degenerate on skewed KGs;\n"
              "Clopper-Pearson is safe but conservative; aHPD is both\n"
              "reliable (valid post-data probability) and the cheapest.\n");
  return 0;
}
