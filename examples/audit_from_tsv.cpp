// Audit a knowledge graph loaded from a labeled TSV file — the workflow a
// practitioner follows with their own annotated sample:
//
//     subject<TAB>predicate<TAB>object<TAB>label(0|1)
//
// Usage: audit_from_tsv [path/to/kg.tsv]
// Without an argument the example writes a demo file first and audits it.

#include <cstdio>
#include <string>

#include "kgacc/kgacc.h"

namespace {

kgacc::Status WriteDemoFile(const std::string& path) {
  using namespace kgacc;
  KnowledgeGraphBuilder builder;
  Rng rng(99);
  // A DBpedia-flavored mix: people, places and works, 85% accurate with
  // errors concentrated in a few noisy entities.
  const char* kinds[] = {"person", "place", "work"};
  for (int e = 0; e < 600; ++e) {
    const std::string subject =
        std::string(kinds[e % 3]) + "/" + std::to_string(e);
    const bool noisy_entity = rng.Bernoulli(0.1);
    const int facts = 2 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < facts; ++f) {
      const double p_correct = noisy_entity ? 0.4 : 0.92;
      builder.Add(subject, "prop/" + std::to_string(f),
                  "value/" + std::to_string(e) + "_" + std::to_string(f),
                  rng.Bernoulli(p_correct));
    }
  }
  KGACC_ASSIGN_OR_RETURN(const KnowledgeGraph kg, builder.Build());
  return WriteKgToTsv(kg, path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgacc;
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/kgacc_demo_kg.tsv";
    const Status written = WriteDemoFile(path);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write demo file: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("No input given; wrote a demo KG to %s\n\n", path.c_str());
  }

  const auto kg = LoadKgFromTsv(path);
  if (!kg.ok()) {
    std::fprintf(stderr, "load failed: %s\n", kg.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %llu facts / %llu entities from %s\n",
              static_cast<unsigned long long>(kg->num_triples()),
              static_cast<unsigned long long>(kg->num_clusters()),
              path.c_str());

  // Audit under both designs and report the cheaper one.
  OracleAnnotator annotator;
  EvaluationConfig config;

  SrsSampler srs(*kg, SrsConfig{});
  const auto srs_result = RunEvaluation(srs, annotator, config, 1);
  TwcsSampler twcs(*kg, TwcsConfig{.second_stage_size = 3});
  const auto twcs_result = RunEvaluation(twcs, annotator, config, 1);
  if (!srs_result.ok() || !twcs_result.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  std::printf("\n%-8s %10s %22s %10s %10s\n", "Design", "mu_hat", "95% CrI",
              "triples", "cost(h)");
  for (const auto* r : {&*srs_result, &*twcs_result}) {
    char interval[32];
    std::snprintf(interval, sizeof(interval), "[%.4f, %.4f]",
                  r->interval.lower, r->interval.upper);
    std::printf("%-8s %10.4f %22s %10llu %10.2f\n",
                r == &*srs_result ? "SRS" : "TWCS", r->mu, interval,
                static_cast<unsigned long long>(r->distinct_triples),
                r->cost_hours);
  }
  std::printf("\nTrue accuracy of the file: %.4f\n", kg->TrueAccuracy());
  const double saving =
      100.0 * (1.0 - twcs_result->cost_hours / srs_result->cost_hours);
  if (saving >= 1.0) {
    std::printf("TWCS saves %.0f%% of the manual effort on this KG.\n",
                saving);
  } else {
    // Clustered errors inflate the TWCS design effect; on such KGs the
    // entity-identification savings may not pay for the extra triples.
    std::printf("TWCS does not pay off here (%.0f%% more effort): errors "
                "cluster by entity,\nso the design effect outweighs the "
                "shared entity-identification cost.\n", -saving);
  }
  return 0;
}
