#ifndef KGACC_TENANT_DRR_H_
#define KGACC_TENANT_DRR_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

/// \file drr.h
/// Weighted deficit-round-robin over per-tenant FIFO queues — the fairness
/// half of the tenant subsystem (quotas live in tenant.h). Replaces the
/// daemon's per-worker FIFO dispatch: a heavy tenant's backlog no longer
/// delays a light tenant's next batch by the whole backlog, only by at
/// most one batch in flight plus the rotation.
///
/// Classic DRR (Shreedhar & Varghese): each tenant queue holds a *deficit*
/// counter; when the rotation reaches a backlogged tenant for a fresh
/// visit, the counter grows by `quantum x weight`; the tenant then serves
/// items while the deficit covers each item's cost, and yields the
/// rotation once the head costs more than the remaining deficit. An
/// emptied queue forfeits its deficit (standard DRR — credit never
/// accumulates while idle, so a sleeping tenant cannot burst past its
/// weight later). Costs are caller-defined (the daemon uses steps per
/// batch); weighted long-run shares converge to weight ratios whenever
/// every tenant stays backlogged.
///
/// Not thread-safe: the daemon instantiates one scheduler per worker and
/// drives it from the poll thread only.

namespace kgacc {

/// One schedulable unit: an opaque caller id plus its service cost.
struct DrrItem {
  uint64_t id = 0;
  uint64_t cost = 1;
};

/// What `DrrScheduler::RemoveId` dropped.
struct DrrRemoved {
  size_t items = 0;
  uint64_t cost = 0;
};

class DrrScheduler {
 public:
  /// `quantum` is the per-visit credit a weight-1 tenant earns; pick the
  /// typical item cost so one visit usually serves about `weight` items.
  explicit DrrScheduler(uint64_t quantum) : quantum_(quantum < 1 ? 1 : quantum) {}
  DrrScheduler() : DrrScheduler(1) {}

  /// Enqueues an item on `tenant`'s queue (FIFO within the tenant).
  /// `weight` updates the tenant's weight (normally constant per tenant).
  void Push(const std::string& tenant, uint32_t weight, DrrItem item);

  /// The next item under the DRR policy, or nullopt when idle.
  std::optional<DrrItem> Pop();

  /// Queued items across all tenants.
  size_t size() const { return total_items_; }
  bool empty() const { return total_items_ == 0; }

  /// Queued items for one tenant (0 when unknown).
  size_t QueuedFor(const std::string& tenant) const;

  /// Sum of queued costs for one tenant — the daemon's inflight-step
  /// accounting counts queued work as inflight.
  uint64_t QueuedCostFor(const std::string& tenant) const;

  /// Drops every queued item with the given id (a detached or evicted
  /// session's batches), reporting what was removed so the caller can
  /// return admission slots.
  DrrRemoved RemoveId(uint64_t id);

  /// Drops every queued item (daemon drain).
  void Clear();

 private:
  struct TenantQueue {
    std::string tenant;
    uint32_t weight = 1;
    std::deque<DrrItem> ready;
    /// Unspent service credit, valid only while backlogged.
    int64_t deficit = 0;
    /// True when the next visit should add `quantum x weight` — set on
    /// first arrival and whenever the rotation yields past this tenant.
    bool fresh = true;
  };

  TenantQueue* FindOrCreate(const std::string& tenant, uint32_t weight);
  void Advance() { cursor_ = (cursor_ + 1) % rotation_.size(); }

  uint64_t quantum_;
  /// Stable-ordered tenant queues; rotation_ indexes into it. Tenants are
  /// never removed (a daemon hosts a bounded handful).
  std::vector<TenantQueue> queues_;
  std::vector<size_t> rotation_;
  size_t cursor_ = 0;
  size_t total_items_ = 0;
};

}  // namespace kgacc

#endif  // KGACC_TENANT_DRR_H_
