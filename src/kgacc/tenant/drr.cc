#include "kgacc/tenant/drr.h"

namespace kgacc {

DrrScheduler::TenantQueue* DrrScheduler::FindOrCreate(
    const std::string& tenant, uint32_t weight) {
  for (TenantQueue& q : queues_) {
    if (q.tenant == tenant) {
      q.weight = weight < 1 ? 1 : weight;
      return &q;
    }
  }
  TenantQueue q;
  q.tenant = tenant;
  q.weight = weight < 1 ? 1 : weight;
  queues_.push_back(std::move(q));
  rotation_.push_back(queues_.size() - 1);
  return &queues_.back();
}

void DrrScheduler::Push(const std::string& tenant, uint32_t weight,
                        DrrItem item) {
  TenantQueue* q = FindOrCreate(tenant, weight);
  if (q->ready.empty()) {
    // Waking from idle: stale credit was forfeited, start a fresh visit.
    q->deficit = 0;
    q->fresh = true;
  }
  q->ready.push_back(item);
  ++total_items_;
}

std::optional<DrrItem> DrrScheduler::Pop() {
  if (total_items_ == 0) return std::nullopt;
  // Terminates: some queue is backlogged, and every fresh visit to it adds
  // quantum x weight >= 1 to its deficit, which eventually covers any
  // finite head cost.
  for (;;) {
    TenantQueue& q = queues_[rotation_[cursor_]];
    if (q.ready.empty()) {
      q.deficit = 0;  // Idle queues forfeit credit.
      q.fresh = true;
      Advance();
      continue;
    }
    if (q.fresh) {
      q.deficit += static_cast<int64_t>(quantum_) * q.weight;
      q.fresh = false;
    }
    const DrrItem head = q.ready.front();
    if (q.deficit >= static_cast<int64_t>(head.cost)) {
      q.deficit -= static_cast<int64_t>(head.cost);
      q.ready.pop_front();
      --total_items_;
      if (q.ready.empty()) {
        // Forfeit on empty and leave the rotation slot: if the queue
        // refills before our next visit it must wait its turn, not spend
        // a fresh quantum ahead of everyone it just outran.
        q.deficit = 0;
        q.fresh = true;
        Advance();
      }
      return head;
    }
    // Head costs more than the remaining credit: yield the rotation; the
    // next visit is fresh and earns another quantum.
    q.fresh = true;
    Advance();
  }
}

size_t DrrScheduler::QueuedFor(const std::string& tenant) const {
  for (const TenantQueue& q : queues_) {
    if (q.tenant == tenant) return q.ready.size();
  }
  return 0;
}

DrrRemoved DrrScheduler::RemoveId(uint64_t id) {
  DrrRemoved removed;
  for (TenantQueue& q : queues_) {
    for (auto it = q.ready.begin(); it != q.ready.end();) {
      if (it->id == id) {
        ++removed.items;
        removed.cost += it->cost;
        it = q.ready.erase(it);
      } else {
        ++it;
      }
    }
    if (q.ready.empty()) q.deficit = 0;
  }
  total_items_ -= removed.items;
  return removed;
}

void DrrScheduler::Clear() {
  for (TenantQueue& q : queues_) {
    q.ready.clear();
    q.deficit = 0;
    q.fresh = true;
  }
  total_items_ = 0;
}

uint64_t DrrScheduler::QueuedCostFor(const std::string& tenant) const {
  uint64_t total = 0;
  for (const TenantQueue& q : queues_) {
    if (q.tenant == tenant) {
      for (const DrrItem& item : q.ready) total += item.cost;
      return total;
    }
  }
  return 0;
}

}  // namespace kgacc
