#ifndef KGACC_TENANT_TENANT_H_
#define KGACC_TENANT_TENANT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kgacc/store/annotation_store.h"
#include "kgacc/util/status.h"

/// \file tenant.h
/// Multi-tenant quota accounting for the audit daemon. Two pieces:
///
/// **`TenantRegistry`** — the static side: tenant id → configuration
/// (oracle-call budget, store-byte quota, scheduling weight, session and
/// inflight-step caps), loaded from a plain-text tenants file or left
/// *open* (any tenant admitted with unlimited defaults — the
/// single-tenant compatibility mode a daemon without `--tenants` runs in).
///
/// **`QuotaLedger`** — the dynamic side: durable per-tenant spend,
/// metered as typed `kTenantLedgerFrame` frames in a CRC-framed store log
/// (the same format annotation records use, byte-accounted the same way).
/// Every frame carries the tenant's *cumulative* totals, so replay is
/// latest-wins and compaction folds a tenant's history into one live
/// frame; a SIGKILL'd daemon reopens the ledger and resumes with bitwise
/// identical balances. Budget *checks* belong to the caller (the daemon's
/// admission path) — the ledger only answers "what has this tenant spent".
///
/// The weighted deficit-round-robin scheduler that consumes the registry's
/// weights lives next door in `tenant/drr.h`.

namespace kgacc {

/// Per-tenant limits. Zero means unlimited for every cap — a default
/// constructed config admits everything, which is exactly what the open
/// registry hands out.
struct TenantConfig {
  std::string id;
  /// Total oracle (human/simulated annotator) calls this tenant may buy
  /// across all audits and KGs. Spend survives restarts via the ledger.
  uint64_t oracle_budget = 0;
  /// Total store bytes (annotation + checkpoint frames) this tenant may
  /// append across all per-KG stores.
  uint64_t store_byte_quota = 0;
  /// Deficit-round-robin weight: a weight-3 tenant gets 3x the step
  /// throughput of a weight-1 tenant on a contended worker. Minimum 1.
  uint32_t weight = 1;
  /// Concurrent open sessions (0 = bounded only by the daemon-wide cap).
  uint32_t max_sessions = 0;
  /// Steps queued or running at once across the tenant's sessions
  /// (0 = unbounded). Exceeding it is transient back-pressure (`Busy`),
  /// not a budget violation.
  uint32_t max_inflight_steps = 0;
};

/// Remaining allowance under a cap where 0 budget means unlimited.
inline uint64_t RemainingAllowance(uint64_t budget, uint64_t spent) {
  if (budget == 0) return std::numeric_limits<uint64_t>::max();
  return budget > spent ? budget - spent : 0;
}

/// Immutable tenant-id → config table. Thread-safe after construction.
class TenantRegistry {
 public:
  /// An *open* registry: every tenant id (after normalization) resolves to
  /// an unlimited default config. Daemon compatibility mode.
  TenantRegistry() = default;

  /// Parses a tenants file. One tenant per line:
  ///
  ///     # comment
  ///     alice  oracle_budget=500 store_quota=1048576 weight=3
  ///     bob    weight=1 max_sessions=2 max_inflight_steps=64
  ///     *      weight=1
  ///
  /// The first token is the tenant id (`[A-Za-z0-9_.-]+`, or `*` for the
  /// fallback config handed to tenants not listed); the rest are
  /// `key=value` pairs with unlisted keys rejected. Omitted caps are
  /// unlimited; `weight` defaults to 1 and must be >= 1. Without a `*`
  /// line, unknown tenants are rejected at Hello.
  static Result<TenantRegistry> Parse(const std::string& text);

  /// `Parse` over the contents of `path`.
  static Result<TenantRegistry> LoadFile(const std::string& path);

  /// Maps the empty tenant id (a client that never asked for one) to the
  /// reserved id "default", so ledger frames always carry a real id.
  static std::string Normalize(const std::string& tenant);

  /// The config governing `tenant` (normalized by the caller): an explicit
  /// entry, else the `*` fallback, else — in an open registry — the
  /// unlimited default. nullptr when the registry is closed and the tenant
  /// is unknown (admission must reject).
  const TenantConfig* Lookup(const std::string& tenant) const;

  /// Explicitly listed tenants (excludes the `*` fallback).
  const std::vector<TenantConfig>& tenants() const { return tenants_; }
  bool open() const { return open_; }

 private:
  std::vector<TenantConfig> tenants_;
  std::optional<TenantConfig> fallback_;
  /// True for the default-constructed compatibility registry.
  bool open_ = true;
  /// Returned by Lookup in an open registry; id patched per call is not
  /// needed — budget fields are what admission reads.
  TenantConfig open_default_;
};

/// Durable per-tenant spend over a dedicated `AnnotationStore` log. All
/// methods are thread-safe (the store serializes ledger appends). The
/// ledger file is an ordinary store log — `kgacc_store inspect` and
/// `verify` work on it unchanged.
class QuotaLedger {
 public:
  /// Opens (creating if absent) the ledger log at `path` and replays
  /// existing balances.
  static Result<std::unique_ptr<QuotaLedger>> Open(
      const std::string& path, const AnnotationStore::Options& options);
  static Result<std::unique_ptr<QuotaLedger>> Open(const std::string& path) {
    return Open(path, AnnotationStore::Options{});
  }

  /// Durably charges spend. The append is acknowledged only once the
  /// cumulative frame is settled in the log, so a balance the ledger
  /// reports is always one a restart reproduces.
  Status Charge(const std::string& tenant, uint64_t oracle_delta,
                uint64_t store_bytes_delta) {
    return store_->AppendTenantSpend(tenant, oracle_delta, store_bytes_delta);
  }

  /// Current balance; zeros when the tenant never spent.
  TenantBalance Balance(const std::string& tenant) const {
    return store_->TenantBalanceFor(tenant).value_or(
        TenantBalance{tenant, 0, 0});
  }

  /// Every tenant with recorded spend, id-sorted.
  std::vector<TenantBalance> Balances() const {
    return store_->TenantBalances();
  }

  Status Flush() { return store_->Flush(); }
  Status Sync() { return store_->Sync(); }
  /// Folds the ledger to one live frame per tenant.
  Status Compact() { return store_->Compact(); }

  AnnotationStore* store() { return store_.get(); }
  const AnnotationStore* store() const { return store_.get(); }

 private:
  explicit QuotaLedger(std::unique_ptr<AnnotationStore> store)
      : store_(std::move(store)) {}

  std::unique_ptr<AnnotationStore> store_;
};

}  // namespace kgacc

#endif  // KGACC_TENANT_TENANT_H_
