#include "kgacc/tenant/tenant.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace kgacc {

namespace {

bool ValidTenantId(const std::string& id) {
  if (id.empty()) return false;
  for (const char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  if (value.empty()) {
    return Status::InvalidArgument("tenants file: empty value for '" + key +
                                   "'");
  }
  uint64_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("tenants file: non-numeric value '" +
                                     value + "' for '" + key + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (parsed > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return Status::InvalidArgument("tenants file: value overflows for '" +
                                     key + "'");
    }
    parsed = parsed * 10 + digit;
  }
  *out = parsed;
  return Status::OK();
}

Status ApplyKeyValue(TenantConfig* config, const std::string& key,
                     const std::string& value) {
  uint64_t v = 0;
  KGACC_RETURN_IF_ERROR(ParseU64(key, value, &v));
  if (key == "oracle_budget") {
    config->oracle_budget = v;
  } else if (key == "store_quota") {
    config->store_byte_quota = v;
  } else if (key == "weight") {
    if (v < 1 || v > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument(
          "tenants file: weight must be in [1, 2^32) for tenant '" +
          config->id + "'");
    }
    config->weight = static_cast<uint32_t>(v);
  } else if (key == "max_sessions") {
    if (v > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("tenants file: max_sessions too large");
    }
    config->max_sessions = static_cast<uint32_t>(v);
  } else if (key == "max_inflight_steps") {
    if (v > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument(
          "tenants file: max_inflight_steps too large");
    }
    config->max_inflight_steps = static_cast<uint32_t>(v);
  } else {
    return Status::InvalidArgument("tenants file: unknown key '" + key + "'");
  }
  return Status::OK();
}

}  // namespace

std::string TenantRegistry::Normalize(const std::string& tenant) {
  return tenant.empty() ? std::string("default") : tenant;
}

Result<TenantRegistry> TenantRegistry::Parse(const std::string& text) {
  TenantRegistry registry;
  registry.open_ = false;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string id;
    if (!(fields >> id)) continue;  // Blank or comment-only line.
    TenantConfig config;
    const bool fallback = (id == "*");
    if (!fallback && !ValidTenantId(id)) {
      return Status::InvalidArgument(
          "tenants file line " + std::to_string(line_no) +
          ": invalid tenant id '" + id + "' (want [A-Za-z0-9_.-]+ or '*')");
    }
    config.id = fallback ? "*" : id;
    std::string pair;
    while (fields >> pair) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            "tenants file line " + std::to_string(line_no) +
            ": expected key=value, got '" + pair + "'");
      }
      KGACC_RETURN_IF_ERROR(
          ApplyKeyValue(&config, pair.substr(0, eq), pair.substr(eq + 1)));
    }
    if (fallback) {
      if (registry.fallback_.has_value()) {
        return Status::InvalidArgument("tenants file line " +
                                       std::to_string(line_no) +
                                       ": duplicate '*' fallback entry");
      }
      registry.fallback_ = std::move(config);
      continue;
    }
    for (const TenantConfig& existing : registry.tenants_) {
      if (existing.id == config.id) {
        return Status::InvalidArgument(
            "tenants file line " + std::to_string(line_no) +
            ": duplicate tenant '" + config.id + "'");
      }
    }
    registry.tenants_.push_back(std::move(config));
  }
  return registry;
}

Result<TenantRegistry> TenantRegistry::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open tenants file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

const TenantConfig* TenantRegistry::Lookup(const std::string& tenant) const {
  for (const TenantConfig& config : tenants_) {
    if (config.id == tenant) return &config;
  }
  if (fallback_.has_value()) return &*fallback_;
  if (open_) return &open_default_;
  return nullptr;
}

Result<std::unique_ptr<QuotaLedger>> QuotaLedger::Open(
    const std::string& path, const AnnotationStore::Options& options) {
  KGACC_ASSIGN_OR_RETURN(std::unique_ptr<AnnotationStore> store,
                         AnnotationStore::Open(path, options));
  return std::unique_ptr<QuotaLedger>(new QuotaLedger(std::move(store)));
}

}  // namespace kgacc
