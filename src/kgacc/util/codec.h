#ifndef KGACC_UTIL_CODEC_H_
#define KGACC_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kgacc/util/status.h"

/// \file codec.h
/// Binary serialization primitives for the durable-store layer: LEB128
/// varints, zigzag signed encoding, fixed-width little-endian words, and
/// CRC32C (Castagnoli) checksums. `ByteWriter` appends to a growable
/// buffer; `ByteReader` consumes a read-only span with bounds checking —
/// every read returns a `Result`, so a truncated or malformed record
/// surfaces as a status instead of undefined behavior.
///
/// Doubles travel as their IEEE-754 bit pattern (fixed 64-bit words), so a
/// round trip is bit-exact — the property the checkpoint/resume machinery
/// rests on: a restored session must replay the identical floating-point
/// path, not one that agrees to a few ulps.

namespace kgacc {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) over `n` bytes,
/// chainable through `seed` (pass a previous call's return value to extend
/// the checksum across fragments). The WAL frames every record with it.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Incremental CRC32C over a sequence of fragments — the running-checksum
/// form of the `seed` chaining above. A compacted store log seals itself
/// with one of these in its trailer frame: the rewriter extends the chain
/// over every live payload it writes, and replay re-derives the same chain
/// to prove the rewrite arrived complete and in order (per-frame CRCs catch
/// bit flips; the chain catches a lost, duplicated, or reordered frame).
class Crc32cChain {
 public:
  void Extend(const void* data, size_t n) { value_ = Crc32c(data, n, value_); }
  void Extend(std::span<const uint8_t> data) {
    Extend(data.data(), data.size());
  }
  uint32_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint32_t value_ = 0;
};

/// Append-only serialization buffer.
class ByteWriter {
 public:
  void Clear() { buf_.clear(); }
  bool empty() const { return buf_.empty(); }
  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::span<const uint8_t> span() const { return {buf_.data(), buf_.size()}; }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutBool(bool v) { buf_.push_back(v ? 1 : 0); }

  /// Fixed-width little-endian words.
  void PutFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }
  void PutFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }

  /// IEEE-754 bit pattern as a fixed 64-bit word (bit-exact round trip).
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(bits);
  }

  /// Unsigned LEB128 (7 bits per byte, high bit = continuation).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(uint8_t(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(uint8_t(v));
  }

  /// Zigzag-mapped signed varint (small magnitudes stay small either sign).
  void PutZigzag(int64_t v) {
    PutVarint((uint64_t(v) << 1) ^ uint64_t(v >> 63));
  }

  void PutBytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Varint length prefix followed by the raw bytes.
  void PutLengthPrefixed(std::span<const uint8_t> data) {
    PutVarint(data.size());
    PutBytes(data.data(), data.size());
  }
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutBytes(s.data(), s.size());
  }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked consumer over a serialized byte span. The span is not
/// owned; it must outlive the reader (and any span returned by `Bytes`).
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ == data_.size(); }

  Result<uint8_t> U8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }
  Result<bool> Bool() {
    KGACC_ASSIGN_OR_RETURN(const uint8_t v, U8());
    return v != 0;
  }
  Result<uint32_t> Fixed32() {
    if (remaining() < 4) return Truncated("fixed32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> Fixed64() {
    if (remaining() < 8) return Truncated("fixed64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  Result<double> Double() {
    KGACC_ASSIGN_OR_RETURN(const uint64_t bits, Fixed64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<uint64_t> Varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return Truncated("varint");
      const uint8_t byte = data_[pos_++];
      v |= uint64_t(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical overlong encodings of the final group.
        if (shift == 63 && byte > 1) {
          return Status::OutOfRange("codec: varint overflows 64 bits");
        }
        return v;
      }
    }
    return Status::OutOfRange("codec: varint longer than 10 bytes");
  }
  Result<int64_t> Zigzag() {
    KGACC_ASSIGN_OR_RETURN(const uint64_t v, Varint());
    return int64_t(v >> 1) ^ -int64_t(v & 1);
  }
  /// A view of the next `n` raw bytes (no copy).
  Result<std::span<const uint8_t>> Bytes(size_t n) {
    if (remaining() < n) return Truncated("bytes");
    const std::span<const uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  Result<std::span<const uint8_t>> LengthPrefixed() {
    KGACC_ASSIGN_OR_RETURN(const uint64_t n, Varint());
    if (n > remaining()) return Truncated("length-prefixed bytes");
    return Bytes(size_t(n));
  }
  Result<std::string> String() {
    KGACC_ASSIGN_OR_RETURN(const std::span<const uint8_t> raw,
                           LengthPrefixed());
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

 private:
  static Status Truncated(const char* what) {
    return Status::OutOfRange(std::string("codec: truncated input reading ") +
                              what);
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_CODEC_H_
