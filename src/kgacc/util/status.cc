#include "kgacc/util/status.h"

namespace kgacc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kQuotaExceeded:
      return "QuotaExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kgacc
