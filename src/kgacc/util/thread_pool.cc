#include "kgacc/util/thread_pool.h"

#include <chrono>
#include <utility>

#include "kgacc/util/check.h"

namespace kgacc {

namespace {

/// Which pool (if any) the calling thread belongs to, and its worker index
/// there. Lets tasks ask "am I on my home shard?" without any shared state.
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_worker = -1;

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void TaskRing::PushBack(std::function<void()> task) {
  if (count_ == slots_.size()) {
    // Full (or never allocated): rebuild at double capacity with the live
    // window rotated to the front.
    std::vector<std::function<void()>> grown(
        NextPowerOfTwo(std::max<size_t>(slots_.size() * 2, 8)));
    for (size_t i = 0; i < count_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(grown);
    head_ = 0;
  }
  slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(task);
  ++count_;
}

std::function<void()> TaskRing::PopFront() {
  KGACC_CHECK(count_ > 0);
  std::function<void()> task = std::move(slots_[head_]);
  head_ = (head_ + 1) & (slots_.size() - 1);
  --count_;
  return task;
}

std::function<void()> TaskRing::PopBack() {
  KGACC_CHECK(count_ > 0);
  --count_;
  return std::move(slots_[(head_ + count_) & (slots_.size() - 1)]);
}

ThreadPool::ThreadPool(int num_threads) {
  KGACC_CHECK(num_threads >= 1);
  shards_ = std::make_unique<Shard[]>(num_threads);
  workers_.reserve(num_threads);
  const auto spawn_start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  spawn_seconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - spawn_start)
                       .count();
}

ThreadPool::~ThreadPool() {
  shutting_down_.store(true);
  {
    // Taking the sleep lock orders the flag store against any worker that
    // is between its dry-run check and actually blocking.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  for (int i = 0; i < num_threads(); ++i) shards_[i].cv.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::NotifyIfSleepers(int home) {
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  Shard* target = nullptr;
  {
    // Choosing the target under sleep_mu_ closes the lost-wakeup gap: a
    // worker that already saw an empty pool holds sleep_mu_ until it is
    // actually blocked, so either we see its asleep flag here (and notify
    // its condvar), or it has not set the flag yet — in which case its
    // wait predicate will see the queued_ increment that preceded this
    // call and it never blocks at all. Finding no sleeper despite the
    // lockless sleepers_ hint means every worker is awake and will drain
    // the rings before parking; skipping the notify is then safe.
    std::lock_guard<std::mutex> lock(sleep_mu_);
    const int n = num_threads();
    for (int i = 0; i < n; ++i) {
      Shard& candidate = shards_[(home + i) % n];
      if (candidate.asleep) {
        target = &candidate;
        break;
      }
    }
  }
  // Only the shard's owner ever waits on its condvar, so this wakes
  // exactly the chosen worker — the home worker when it was asleep.
  if (target != nullptr) target->cv.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitTo(static_cast<int>(next_home_.fetch_add(1, std::memory_order_relaxed) %
                            workers_.size()),
           std::move(task));
}

void ThreadPool::SubmitTo(int worker, std::function<void()> task) {
  KGACC_CHECK(!shutting_down_.load());
  KGACC_CHECK(worker >= 0 && worker < num_threads());
  // unfinished_ rises before the task is visible so a worker can never
  // finish it (and decrement) first; queued_ rises after the push so a
  // woken worker always finds the task it was woken for.
  unfinished_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(shards_[worker].mu);
    shards_[worker].ring.PushBack(std::move(task));
  }
  queued_.fetch_add(1);
  NotifyIfSleepers(worker);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] { return unfinished_.load() == 0; });
}

int ThreadPool::current_worker_index() const {
  return t_pool == this ? t_worker : -1;
}

uint64_t ThreadPool::stolen_tasks() const {
  uint64_t total = 0;
  for (int i = 0; i < num_threads(); ++i) {
    total += shards_[i].stolen.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ThreadPool::executed_tasks() const {
  uint64_t total = 0;
  for (int i = 0; i < num_threads(); ++i) {
    total += shards_[i].executed.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ThreadPool::task_exceptions() const {
  uint64_t total = 0;
  for (int i = 0; i < num_threads(); ++i) {
    total += shards_[i].exceptions.load(std::memory_order_relaxed);
  }
  return total;
}

bool ThreadPool::TryRunOne(int self) {
  const int n = num_threads();
  std::function<void()> task;
  bool stolen = false;
  {
    // Own ring first: the only lock touched in the balanced steady state,
    // and contended only while a thief is mid-steal on this shard.
    Shard& home = shards_[self];
    std::lock_guard<std::mutex> lock(home.mu);
    if (!home.ring.empty()) task = home.ring.PopFront();
  }
  if (!task) {
    // Dry: scan the other shards and steal one whole task off a victim's
    // tail. Starting at self + 1 spreads concurrent thieves apart.
    for (int i = 1; i < n && !task; ++i) {
      Shard& victim = shards_[(self + i) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.ring.empty()) {
        task = victim.ring.PopBack();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1);
  Shard& self_shard = shards_[self];
  try {
    task();
  } catch (...) {
    // A task that slips an exception past its own guards must not take the
    // worker (and via std::terminate the process) down with it: swallow,
    // count, and keep the completion accounting exact so Wait() still
    // returns. Callers that care wrap their work in Result/Status; the
    // counter is the tripwire for ones that forgot.
    self_shard.exceptions.fetch_add(1, std::memory_order_relaxed);
  }
  self_shard.executed.fetch_add(1, std::memory_order_relaxed);
  if (stolen) self_shard.stolen.fetch_add(1, std::memory_order_relaxed);
  if (unfinished_.fetch_sub(1) == 1) {
    // Same lock-before-notify discipline as NotifyIfSleepers, against a
    // Wait() caller between its predicate check and blocking.
    {
      std::lock_guard<std::mutex> lock(done_mu_);
    }
    done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(int self) {
  t_pool = this;
  t_worker = self;
  Shard& shard = shards_[self];
  for (;;) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    shard.asleep = true;
    sleepers_.fetch_add(1);
    shard.cv.wait(lock, [this] {
      return shutting_down_.load() || queued_.load() > 0;
    });
    shard.asleep = false;
    sleepers_.fetch_sub(1);
    if (shutting_down_.load() && queued_.load() == 0) return;
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = n;
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&, i] {
      fn(i);
      std::unique_lock<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace kgacc
