#include "kgacc/util/thread_pool.h"

#include "kgacc/util/check.h"

namespace kgacc {

ThreadPool::ThreadPool(int num_threads) {
  KGACC_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    KGACC_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = n;
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&, i] {
      fn(i);
      std::unique_lock<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace kgacc
