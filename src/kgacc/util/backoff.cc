#include "kgacc/util/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace kgacc {

ExponentialBackoff::ExponentialBackoff(const BackoffPolicy& policy)
    : policy_(policy), rng_(policy.seed) {
  policy_.max_attempts = std::max(policy_.max_attempts, 1);
  policy_.initial_delay_ms = std::max(policy_.initial_delay_ms, 0.0);
  policy_.multiplier = std::max(policy_.multiplier, 1.0);
  policy_.max_delay_ms = std::max(policy_.max_delay_ms,
                                  policy_.initial_delay_ms);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  next_nominal_ms_ = policy_.initial_delay_ms;
}

double ExponentialBackoff::NextDelayMs() {
  const double nominal = std::min(next_nominal_ms_, policy_.max_delay_ms);
  next_nominal_ms_ = std::min(next_nominal_ms_ * policy_.multiplier,
                              policy_.max_delay_ms);
  ++delays_issued_;
  // Uniform factor in [1 - jitter, 1 + jitter]; one draw per delay keeps
  // the schedule a pure function of (seed, delay index).
  const double factor =
      1.0 + policy_.jitter * (2.0 * rng_.Uniform() - 1.0);
  return nominal * factor;
}

void ExponentialBackoff::Reset() {
  rng_.Reseed(policy_.seed);
  next_nominal_ms_ = policy_.initial_delay_ms;
  delays_issued_ = 0;
}

Status RetryWithBackoff(const BackoffPolicy& policy,
                        const std::function<Status()>& op,
                        uint64_t* retries) {
  ExponentialBackoff backoff(policy);
  const int attempts = std::max(policy.max_attempts, 1);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const double delay_ms = backoff.NextDelayMs();
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      if (retries != nullptr) ++*retries;
    }
    last = op();
    if (last.ok() || !IsTransientError(last)) return last;
  }
  return last;
}

}  // namespace kgacc
