#include "kgacc/util/codec.h"

#include <array>

namespace kgacc {

namespace {

/// Byte-at-a-time CRC32C table for the reflected Castagnoli polynomial.
/// Built once at first use; 1 KB, shared process-wide.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kgacc
