#ifndef KGACC_UTIL_ARG_PARSER_H_
#define KGACC_UTIL_ARG_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "kgacc/util/status.h"

/// \file arg_parser.h
/// A minimal command-line flag parser for the kgacc tools. Supports
/// `--name=value`, `--name value`, boolean `--name`, and positional
/// arguments; unknown flags are errors so typos do not silently change an
/// audit's configuration.

namespace kgacc {

/// Parsed command line: flag values by name plus positional arguments.
class ParsedArgs {
 public:
  /// True when the flag was present (with or without a value).
  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// String value of a flag, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Numeric accessors; error when present but unparsable.
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Boolean flag: present without value or with "true"/"1" is true;
  /// "false"/"0" is false.
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  friend class ArgParser;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Declarative flag schema + parser.
class ArgParser {
 public:
  /// Declares a legal flag with a help string.
  ArgParser& AddFlag(const std::string& name, const std::string& help);

  /// Parses argv (excluding argv[0]). Unknown flags are errors. A bare `--`
  /// ends flag parsing; everything after is positional.
  Result<ParsedArgs> Parse(int argc, const char* const* argv) const;

  /// Renders the declared flags as a usage block.
  std::string HelpText() const;

 private:
  std::vector<std::pair<std::string, std::string>> declared_;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_ARG_PARSER_H_
