#ifndef KGACC_UTIL_THREAD_POOL_H_
#define KGACC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.h
/// A fixed-size worker pool with one job ring per worker (shard-per-core).
/// The paper's framework is embarrassingly parallel at the audit level, so
/// the pool's job is to stay out of the way: `SubmitTo` hands a task to a
/// specific worker's private ring (one uncontended per-shard lock), the
/// owner drains its ring FIFO, and only a worker that runs dry takes the
/// slow path of stealing whole tasks from another shard's tail. In the
/// steady state of a balanced batch there is no shared mutable state
/// between workers at all — the global counters below are touched once per
/// task, not once per audit.
///
/// `AhpdSelectParallel` dispatches one task per prior through this pool so
/// wall-clock cost stays flat as the prior set grows; `EvaluationService`
/// routes whole pinning groups to their home workers via `SubmitTo`.

namespace kgacc {

/// Grow-on-demand FIFO ring of tasks — the per-worker queue unit. Backed by
/// a power-of-two slot array addressed modulo capacity; `PushBack`/
/// `PopFront` are the owner's FIFO protocol and `PopBack` is the thief's
/// end, so stealing never reorders the owner's upcoming work. Not
/// internally synchronized: the owning shard's mutex serializes access.
class TaskRing {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t capacity() const { return slots_.size(); }

  /// Appends a task, growing (doubling) when full. Growth is rare and
  /// amortized; submissions are per pinning group, not per audit.
  void PushBack(std::function<void()> task);

  /// Removes and returns the oldest task. Ring must be non-empty.
  std::function<void()> PopFront();

  /// Removes and returns the newest task (steal end). Must be non-empty.
  std::function<void()> PopBack();

 private:
  /// Power-of-two slot array; live tasks occupy [head_, head_ + count_).
  std::vector<std::function<void()>> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
};

/// Fixed-size sharded thread pool. Tasks should not throw — fallible work
/// belongs in Status/Result — but a task that does is contained at the
/// worker boundary and counted (`task_exceptions`), never std::terminate.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1), one job ring each.
  explicit ThreadPool(int num_threads);
  /// Drains every ring (outstanding tasks still run), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on some worker's ring (round-robin home assignment).
  void Submit(std::function<void()> task);

  /// Enqueues a task on `worker`'s ring — the shard-per-core handoff. The
  /// home worker runs it unless it is still busy when another worker runs
  /// dry, in which case the whole task is stolen (never split).
  void SubmitTo(int worker, std::function<void()> task);

  /// Enqueues a value-returning task and hands back a future for its
  /// result. The task must not throw (pool invariant); use `Result<T>`
  /// return types for fallible work.
  template <typename F>
  auto SubmitWithResult(F func) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(func));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the pool worker the calling thread is, or -1 when the caller
  /// is not one of this pool's workers.
  int current_worker_index() const;

  /// Wall-clock cost of spawning the workers (paid once, at construction).
  /// A persistent pool amortizes this across every batch it ever runs; the
  /// `EvaluationService` batch stats surface it so short benchmark cells
  /// cannot silently charge spin-up to throughput.
  double spawn_seconds() const { return spawn_seconds_; }

  /// Tasks executed by a worker other than their submitted home shard
  /// (cumulative). Zero in a perfectly balanced steady state; a high rate
  /// means home assignment is fighting the workload's skew.
  uint64_t stolen_tasks() const;

  /// Tasks executed in total (cumulative, all workers).
  uint64_t executed_tasks() const;

  /// Tasks that threw (cumulative, all workers). The worker boundary
  /// catches everything — a throwing task is counted here and the pool
  /// carries on, instead of std::terminate tearing the process down.
  /// Non-zero means some task violated the tasks-must-not-throw contract.
  uint64_t task_exceptions() const;

  /// Workers currently parked on their shard condvar (instantaneous;
  /// test/diagnostic use).
  int sleeping_workers() const {
    return sleepers_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker queue + counters, padded to a cache line so one worker's
  /// bookkeeping writes never invalidate a neighbour's line (the
  /// false-sharing fix: these are the only per-worker fields written on
  /// the task path).
  struct alignas(64) Shard {
    std::mutex mu;
    TaskRing ring;
    /// This worker's private wakeup channel: it is the only thread that
    /// ever waits on this condvar (guarded by the global sleep_mu_, which
    /// keeps the lost-wakeup proof in one place). `SubmitTo` notifies the
    /// home shard's condvar directly, so a targeted submission wakes the
    /// worker that owns the ring instead of whichever sleeper the OS picks
    /// off a shared condvar — the woken worker starts with an uncontended
    /// PopFront, not a steal.
    std::condition_variable cv;
    /// True while the owner is blocked on `cv`. Guarded by sleep_mu_;
    /// submitters use it to pick a wake target (home first, then any
    /// sleeper, so stealing still gets parked-home work running).
    bool asleep = false;
    /// Tasks this worker executed / executed-but-stolen-from-elsewhere.
    /// Written (relaxed) by the owning worker only; the aggregate
    /// accessors read them lockless — monotone counters, staleness is
    /// benign. The alignas keeps one worker's increments off its
    /// neighbours' cache lines.
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> stolen{0};
    /// Tasks that escaped with an exception (caught at the worker
    /// boundary; see `task_exceptions`).
    std::atomic<uint64_t> exceptions{0};
  };

  /// Pops own ring or steals; runs at most one task. False = pool is dry.
  bool TryRunOne(int self);
  void WorkerLoop(int self);
  /// Wakes one sleeping worker for a task just queued on `home`'s ring:
  /// the home worker when it is asleep, else the nearest other sleeper
  /// (scan from home) so parked-home work is still picked up by a thief.
  void NotifyIfSleepers(int home);

  std::unique_ptr<Shard[]> shards_;
  std::vector<std::thread> workers_;
  /// Tasks sitting in rings (not yet popped). The sleep predicate.
  std::atomic<size_t> queued_{0};
  /// Tasks submitted but not yet finished executing. The Wait predicate.
  std::atomic<size_t> unfinished_{0};
  /// Round-robin cursor for home assignment of plain Submit calls.
  std::atomic<uint64_t> next_home_{0};
  /// Workers currently blocked on their shard condvar; lets submitters
  /// skip the lock + notify entirely while everyone is busy. Modified
  /// only under sleep_mu_ (alongside Shard::asleep); read lockless on the
  /// submit fast path.
  std::atomic<int> sleepers_{0};
  std::atomic<bool> shutting_down_{false};
  /// One global sleep lock for every shard's asleep flag and condvar:
  /// sleeping is the cold path, and a single lock keeps the
  /// no-lost-wakeup argument identical to the old single-condvar design —
  /// only the notification target became per-worker.
  std::mutex sleep_mu_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  double spawn_seconds_ = 0.0;
};

/// Runs `fn(0), ..., fn(n - 1)` on the pool and blocks until all calls have
/// completed. Tracks its own completion count, so it is safe to use while
/// unrelated tasks are in flight on the same pool — unlike `pool.Wait()`,
/// which waits for everything. Must not be called from inside a pool task
/// (the waiting thread would occupy a worker slot and can deadlock).
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace kgacc

#endif  // KGACC_UTIL_THREAD_POOL_H_
