#ifndef KGACC_UTIL_THREAD_POOL_H_
#define KGACC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.h
/// A small fixed-size worker pool. The paper notes that aHPD's per-prior
/// posterior updates and interval constructions (Alg. 1 lines 14-21) are
/// embarrassingly parallel; `AhpdSelectParallel` dispatches one task per
/// prior through this pool so wall-clock cost stays flat as the prior set
/// grows. `EvaluationService` fans whole evaluation jobs out through the
/// same pool via `SubmitWithResult` / `ParallelFor`.

namespace kgacc {

/// Fixed-size thread pool with a FIFO task queue. Tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Enqueues a value-returning task and hands back a future for its
  /// result. The task must not throw (pool invariant); use `Result<T>`
  /// return types for fallible work.
  template <typename F>
  auto SubmitWithResult(F func) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(func));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(0), ..., fn(n - 1)` on the pool and blocks until all calls have
/// completed. Tracks its own completion count, so it is safe to use while
/// unrelated tasks are in flight on the same pool — unlike `pool.Wait()`,
/// which waits for everything. Must not be called from inside a pool task
/// (the waiting thread would occupy a worker slot and can deadlock).
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace kgacc

#endif  // KGACC_UTIL_THREAD_POOL_H_
