#ifndef KGACC_UTIL_THREAD_POOL_H_
#define KGACC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A small fixed-size worker pool. The paper notes that aHPD's per-prior
/// posterior updates and interval constructions (Alg. 1 lines 14-21) are
/// embarrassingly parallel; `AhpdSelectParallel` dispatches one task per
/// prior through this pool so wall-clock cost stays flat as the prior set
/// grows.

namespace kgacc {

/// Fixed-size thread pool with a FIFO task queue. Tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_THREAD_POOL_H_
