#ifndef KGACC_UTIL_BACKOFF_H_
#define KGACC_UTIL_BACKOFF_H_

#include <cstdint>
#include <functional>

#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file backoff.h
/// Bounded, *seeded* exponential backoff with jitter — the retry discipline
/// of the durability layer (`StoredAnnotator`, `CheckpointManager`). Seeded
/// jitter keeps retried runs reproducible: the whole delay schedule is a
/// pure function of the policy, so a chaos test that injects transient
/// store errors replays the identical retry pattern every time.
///
/// Only I/O errors are treated as transient (`IsTransientError`): a
/// FailedPrecondition (label conflict, sticky-WAL refusal) or
/// InvalidArgument is a caller bug or a permanent state and retrying it
/// would just burn the budget.

namespace kgacc {

/// Retry budget and delay curve. Delays grow `initial_delay_ms *
/// multiplier^k`, capped at `max_delay_ms`, each scaled by a uniform jitter
/// factor in [1 - jitter, 1 + jitter] drawn from a private Rng seeded with
/// `seed`.
struct BackoffPolicy {
  /// Total attempts including the first (>= 1); `max_attempts - 1` retries.
  int max_attempts = 4;
  double initial_delay_ms = 1.0;
  double multiplier = 2.0;
  double max_delay_ms = 100.0;
  /// Jitter fraction in [0, 1): 0.5 means each delay lands in [50%, 150%]
  /// of its nominal value.
  double jitter = 0.5;
  /// Seed of the jitter stream (deterministic schedules).
  uint64_t seed = 0xb0ff;
};

/// Transient = worth retrying. I/O errors only; everything else is either
/// a caller bug (InvalidArgument, FailedPrecondition) or a state no retry
/// can repair.
inline bool IsTransientError(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

/// The delay sequence of one retry loop. Stateless callers use
/// `RetryWithBackoff`; this class is exposed for tests and for call sites
/// that need to interleave the delays with their own logic.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(const BackoffPolicy& policy);

  /// Jittered delay (milliseconds) before the next retry; advances the
  /// sequence.
  double NextDelayMs();

  /// Restarts the sequence (delay curve and jitter stream).
  void Reset();

  /// Delays handed out since construction/Reset.
  int delays_issued() const { return delays_issued_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  double next_nominal_ms_ = 0.0;
  int delays_issued_ = 0;
};

/// Runs `op` up to `policy.max_attempts` times, sleeping a jittered
/// exponential delay between attempts. Retries only while `op` keeps
/// returning a transient error (`IsTransientError`); the first OK or
/// permanent status is returned as-is, and an exhausted budget returns the
/// last transient error. `*retries`, when given, is *incremented* by the
/// number of retries performed (callers aggregate across many operations).
Status RetryWithBackoff(const BackoffPolicy& policy,
                        const std::function<Status()>& op,
                        uint64_t* retries = nullptr);

}  // namespace kgacc

#endif  // KGACC_UTIL_BACKOFF_H_
