#ifndef KGACC_UTIL_STATUS_H_
#define KGACC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "kgacc/util/check.h"

/// \file status.h
/// Error handling primitives in the Arrow/RocksDB style: public kgacc APIs
/// never throw; fallible operations return `Status` or `Result<T>`.

namespace kgacc {

/// Machine-readable error category attached to every non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kIoError,
  kNumericError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kQuotaExceeded,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK, or a code plus a diagnostic message.
///
/// Statuses are cheap to copy (the OK case stores no message). Typical use:
///
///     Status s = DoThing();
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status QuotaExceeded(std::string msg) {
    return Status(StatusCode::kQuotaExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// `absl::StatusOr<T>` / `arrow::Result<T>`.
///
///     Result<double> r = BetaQuantile(...);
///     if (!r.ok()) return r.status();
///     double q = *r;
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    KGACC_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  /// The error; `Status::OK()` when a value is present.
  const Status& status() const { return status_; }

  /// The held value; must only be called when `ok()`.
  const T& value() const& {
    KGACC_CHECK(value_.has_value());
    return *value_;
  }
  T& value() & {
    KGACC_CHECK(value_.has_value());
    return *value_;
  }
  T&& value() && {
    KGACC_CHECK(value_.has_value());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define KGACC_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::kgacc::Status kgacc_status_ = (expr);      \
    if (!kgacc_status_.ok()) return kgacc_status_; \
  } while (0)

/// Evaluates a `Result<T>` expression, propagating errors and otherwise
/// binding the value to `lhs`.
#define KGACC_ASSIGN_OR_RETURN(lhs, expr)                 \
  KGACC_ASSIGN_OR_RETURN_IMPL_(                           \
      KGACC_STATUS_CONCAT_(kgacc_result_, __LINE__), lhs, expr)

#define KGACC_STATUS_CONCAT_INNER_(a, b) a##b
#define KGACC_STATUS_CONCAT_(a, b) KGACC_STATUS_CONCAT_INNER_(a, b)
#define KGACC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace kgacc

#endif  // KGACC_UTIL_STATUS_H_
