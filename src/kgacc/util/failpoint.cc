#include "kgacc/util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "kgacc/util/random.h"

namespace kgacc {

namespace failpoint_internal {
std::atomic<uint32_t> g_armed_count{0};
}  // namespace failpoint_internal

namespace {

enum class PolicyKind { kOff, kTimes, kEvery, kProb, kSleep };

/// One armed point: policy parameters plus counters. The `prob` policy
/// carries its own Rng so schedules replay deterministically and never
/// perturb any evaluation-path random stream.
struct Point {
  PolicyKind kind = PolicyKind::kOff;
  uint64_t n = 0;           // times:N / every:N
  double p = 0.0;           // prob:P
  double sleep_ms = 0.0;    // sleep:MS
  Rng rng{0};               // prob only
  FailpointStats stats;
  bool armed = false;
};

struct Registry {
  mutable std::mutex mu;
  std::map<std::string, Point> points;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // Leaked: lives for the process.
  return *r;
}

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

Status ParseCount(const std::string& token, const std::string& policy,
                  uint64_t* out) {
  // strtoull silently wraps a leading '-' to a huge value; reject signs.
  if (!token.empty() && (token[0] == '-' || token[0] == '+')) {
    return Status::InvalidArgument("failpoint policy '" + policy +
                                   "' needs a positive integer, got '" +
                                   token + "'");
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || v == 0) {
    return Status::InvalidArgument("failpoint policy '" + policy +
                                   "' needs a positive integer, got '" +
                                   token + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseNumber(const std::string& token, const std::string& policy,
                   double* out) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("failpoint policy '" + policy +
                                   "' needs a number, got '" + token + "'");
  }
  *out = v;
  return Status::OK();
}

/// Parses one policy string into `*out` (counters untouched). The name is
/// only used to derive the default `prob` seed.
Status ParsePolicy(const std::string& name, const std::string& policy,
                   Point* out) {
  const std::vector<std::string> tokens = Split(policy, ':');
  if (tokens.empty()) {
    return Status::InvalidArgument("empty failpoint policy for '" + name +
                                   "'");
  }
  const std::string& kind = tokens[0];
  if (kind == "off" && tokens.size() == 1) {
    out->kind = PolicyKind::kOff;
    out->armed = false;
    return Status::OK();
  }
  if (kind == "once" && tokens.size() == 1) {
    out->kind = PolicyKind::kTimes;
    out->n = 1;
  } else if (kind == "times" && tokens.size() == 2) {
    out->kind = PolicyKind::kTimes;
    KGACC_RETURN_IF_ERROR(ParseCount(tokens[1], policy, &out->n));
  } else if (kind == "every" && tokens.size() == 2) {
    out->kind = PolicyKind::kEvery;
    KGACC_RETURN_IF_ERROR(ParseCount(tokens[1], policy, &out->n));
  } else if (kind == "prob" &&
             (tokens.size() == 2 ||
              (tokens.size() == 4 && tokens[2] == "seed"))) {
    out->kind = PolicyKind::kProb;
    KGACC_RETURN_IF_ERROR(ParseNumber(tokens[1], policy, &out->p));
    if (out->p < 0.0 || out->p > 1.0) {
      return Status::InvalidArgument("failpoint probability must be in "
                                     "[0, 1], got '" + tokens[1] + "'");
    }
    uint64_t seed = 0;
    if (tokens.size() == 4) {
      KGACC_RETURN_IF_ERROR(ParseCount(tokens[3], policy, &seed));
    } else {
      // Default seed: a stable hash of the point name, so two prob points
      // armed without explicit seeds still draw decorrelated streams.
      seed = 0xfa11;
      for (const char c : name) seed = Mix64(seed ^ uint64_t(uint8_t(c)));
    }
    out->rng.Reseed(seed);
  } else if (kind == "sleep" && tokens.size() == 2) {
    out->kind = PolicyKind::kSleep;
    KGACC_RETURN_IF_ERROR(ParseNumber(tokens[1], policy, &out->sleep_ms));
    if (out->sleep_ms < 0.0) {
      return Status::InvalidArgument("failpoint sleep must be >= 0 ms, got '" +
                                     tokens[1] + "'");
    }
  } else {
    return Status::InvalidArgument("unknown failpoint policy '" + policy +
                                   "' for '" + name +
                                   "' (expected off|once|times:N|every:N|"
                                   "prob:P[:seed:S]|sleep:MS)");
  }
  out->armed = true;
  return Status::OK();
}

/// Recomputes the fast-path armed counter after any registry mutation.
/// Called with the registry lock held.
void RefreshArmedCount(const Registry& registry) {
  uint32_t armed = 0;
  for (const auto& [name, point] : registry.points) {
    if (point.armed) ++armed;
  }
  failpoint_internal::g_armed_count.store(armed, std::memory_order_relaxed);
}

}  // namespace

namespace failpoint_internal {

bool EvaluateSlow(const char* name) {
  Registry& registry = TheRegistry();
  double sleep_ms = 0.0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    const auto it = registry.points.find(name);
    if (it == registry.points.end() || !it->second.armed) return false;
    Point& point = it->second;
    ++point.stats.evaluations;
    switch (point.kind) {
      case PolicyKind::kOff:
        break;
      case PolicyKind::kTimes:
        // Fire on the first N evaluations, then stay healed (the count
        // keeps ticking so tests can see the point was still consulted).
        fire = point.stats.evaluations <= point.n;
        break;
      case PolicyKind::kEvery:
        fire = point.stats.evaluations % point.n == 0;
        break;
      case PolicyKind::kProb:
        fire = point.rng.Uniform() < point.p;
        break;
      case PolicyKind::kSleep:
        sleep_ms = point.sleep_ms;
        break;
    }
    if (fire) ++point.stats.failures;
  }
  // Sleep outside the lock: injected latency must stall the *site*, not
  // every other failpoint evaluation in the process.
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        sleep_ms));
  }
  return fire;
}

}  // namespace failpoint_internal

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* instance = new FailpointRegistry();
  return *instance;
}

Status FailpointRegistry::Arm(const std::string& spec) {
  // Parse everything first so a malformed tail cannot leave a half-armed
  // schedule behind.
  std::vector<std::pair<std::string, Point>> parsed;
  for (const std::string& entry : Split(spec, ';')) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("failpoint spec entry '" + entry +
                                     "' is not name=policy");
    }
    const std::string name = entry.substr(0, eq);
    Point point;
    KGACC_RETURN_IF_ERROR(ParsePolicy(name, entry.substr(eq + 1), &point));
    parsed.emplace_back(name, std::move(point));
  }
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, point] : parsed) {
    registry.points[name] = std::move(point);
  }
  RefreshArmedCount(registry);
  return Status::OK();
}

Status FailpointRegistry::ArmOne(const std::string& name,
                                 const std::string& policy) {
  return Arm(name + "=" + policy);
}

void FailpointRegistry::Disarm(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(name);
  if (it != registry.points.end()) it->second.armed = false;
  RefreshArmedCount(registry);
}

void FailpointRegistry::DisarmAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  RefreshArmedCount(registry);
}

FailpointStats FailpointRegistry::Stats(const std::string& name) const {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(name);
  return it == registry.points.end() ? FailpointStats{} : it->second.stats;
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  for (const auto& [name, point] : registry.points) {
    if (point.armed) names.push_back(name);
  }
  return names;  // std::map iteration is already sorted.
}

}  // namespace kgacc
