#ifndef KGACC_UTIL_CHECK_H_
#define KGACC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Internal invariant checking. `KGACC_CHECK` aborts the process on
/// violation and is kept in all build types; `KGACC_DCHECK` compiles away in
/// NDEBUG builds. These macros are for programmer errors only — recoverable
/// conditions must be reported through `kgacc::Status` instead.

#define KGACC_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "KGACC_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define KGACC_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define KGACC_DCHECK(cond) KGACC_CHECK(cond)
#endif

#endif  // KGACC_UTIL_CHECK_H_
