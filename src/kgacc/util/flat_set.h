#ifndef KGACC_UTIL_FLAT_SET_H_
#define KGACC_UTIL_FLAT_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kgacc/util/random.h"

/// \file flat_set.h
/// Open-addressing hash set for 64-bit keys: power-of-two capacity, linear
/// probing, SplitMix64-mixed keys. One flat allocation, no per-node boxes,
/// cache-friendly probes — built for the distinct-triple/entity tracking on
/// the annotation hot path, where `std::unordered_set<uint64_t>` pays a node
/// allocation and a pointer chase per insert.
///
/// Growth is *incremental*: when the table doubles, the old slots are kept
/// aside and a handful of them migrates on every subsequent insert, so no
/// single insert pays an O(size) reinsertion. BENCH_step.json used to show
/// the rehash spikes directly — 50k-triple sessions with a median step of
/// ~170 us and a mean of ~1270 us, the gap being the steps that rehashed a
/// distinct-set of tens of thousands of keys at once.

namespace kgacc {

/// A set of uint64 keys. Insert-only plus clear(): the evaluation loop only
/// ever adds members and resets between runs, so erase is deliberately
/// unsupported (tombstones would slow every probe).
class FlatSet64 {
 public:
  FlatSet64() = default;

  /// Pre-sizes the table for `expected` keys without rehashing.
  explicit FlatSet64(size_t expected) { reserve(expected); }

  /// Inserts `key`; returns true when it was not already a member.
  /// Amortized O(1) with a worst-case single-insert cost of one table
  /// allocation plus `kMigrateBuckets` bucket moves — never a full rehash.
  bool insert(uint64_t key) {
    // Slot value 0 marks "empty", so the zero key lives in a side flag.
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if (slots_.empty() || (used_ + pending_ + 1) * 4 > slots_.size() * 3) {
      Grow();
    }
    if (pending_ > 0) MigrateSome();
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    // Keys not yet migrated still live in the retired table.
    if (pending_ > 0) {
      size_t j = Mix64(key) & old_mask_;
      while (old_[j] != 0) {
        if (old_[j] == key) return false;
        j = (j + 1) & old_mask_;
      }
    }
    slots_[i] = key;
    ++used_;
    ++size_;
    return true;
  }

  /// True when `key` is a member.
  bool contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    if (pending_ > 0) {
      size_t j = Mix64(key) & old_mask_;
      while (old_[j] != 0) {
        if (old_[j] == key) return true;
        j = (j + 1) & old_mask_;
      }
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes every member; keeps the current capacity.
  void clear() {
    std::fill(slots_.begin(), slots_.end(), 0);
    old_.clear();
    old_mask_ = 0;
    pending_ = 0;
    cursor_ = 0;
    used_ = 0;
    size_ = 0;
    has_zero_ = false;
  }

  /// Ensures capacity for `expected` keys under the 3/4 load ceiling. An
  /// explicit reserve pays its one rehash up front; inserts that stay below
  /// `expected` then never rehash (asserted by the flat_set tests).
  void reserve(size_t expected) {
    size_t capacity = 16;
    while (capacity * 3 < (expected + 1) * 4) capacity *= 2;
    if (capacity > slots_.size()) Rehash(capacity);
  }

  /// Current table capacity (always a power of two once allocated).
  size_t capacity() const { return slots_.size(); }

  /// True while a retired table still holds unmigrated keys (exposed for
  /// tests; growth leaves this state, a reserve or clear drains it).
  bool migrating() const { return pending_ > 0; }

 private:
  /// Old-table buckets examined per insert during a migration. At 8, a
  /// retired table of C buckets drains within C/8 inserts, well before the
  /// next doubling (which is at least C/2 inserts away).
  static constexpr size_t kMigrateBuckets = 8;

  void Grow() {
    if (slots_.empty()) {
      slots_.assign(16, 0);
      mask_ = 15;
      return;
    }
    // Backstop: a second growth before the previous migration finished
    // (cannot happen at kMigrateBuckets = 8, see above).
    DrainOld();
    old_ = std::move(slots_);
    old_mask_ = mask_;
    pending_ = used_;
    cursor_ = 0;
    used_ = 0;
    slots_.assign(old_.size() * 2, 0);
    mask_ = slots_.size() - 1;
    if (pending_ == 0) old_.clear();
  }

  void MigrateSome() {
    size_t budget = kMigrateBuckets;
    while (budget-- > 0 && cursor_ < old_.size()) {
      const uint64_t key = old_[cursor_++];
      if (key == 0) continue;
      size_t i = Mix64(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
      ++used_;
      --pending_;
      if (pending_ == 0) break;
    }
    if (pending_ == 0) {
      old_.clear();
      cursor_ = 0;
    }
  }

  void DrainOld() {
    while (pending_ > 0) MigrateSome();
    old_.clear();
    cursor_ = 0;
  }

  /// Full (non-incremental) rehash to `capacity`; only reached through
  /// reserve(), where the caller asked to pay the cost up front.
  void Rehash(size_t capacity) {
    DrainOld();
    std::vector<uint64_t> retired = std::move(slots_);
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (uint64_t key : retired) {
      if (key == 0) continue;
      size_t i = Mix64(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<uint64_t> slots_;  // 0 = empty slot.
  size_t mask_ = 0;
  std::vector<uint64_t> old_;    // Retired table, draining into slots_.
  size_t old_mask_ = 0;
  size_t pending_ = 0;  // Keys still waiting in old_.
  size_t cursor_ = 0;   // Next old_ bucket to migrate.
  size_t used_ = 0;     // Non-zero keys stored in slots_.
  size_t size_ = 0;     // Members, including the zero key.
  bool has_zero_ = false;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_FLAT_SET_H_
