#ifndef KGACC_UTIL_FLAT_SET_H_
#define KGACC_UTIL_FLAT_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kgacc/util/random.h"

/// \file flat_set.h
/// Open-addressing hash set for 64-bit keys: power-of-two capacity, linear
/// probing, SplitMix64-mixed keys. One flat allocation, no per-node boxes,
/// cache-friendly probes — built for the distinct-triple/entity tracking on
/// the annotation hot path, where `std::unordered_set<uint64_t>` pays a node
/// allocation and a pointer chase per insert.

namespace kgacc {

/// A set of uint64 keys. Insert-only plus clear(): the evaluation loop only
/// ever adds members and resets between runs, so erase is deliberately
/// unsupported (tombstones would slow every probe).
class FlatSet64 {
 public:
  FlatSet64() = default;

  /// Pre-sizes the table for `expected` keys without rehashing.
  explicit FlatSet64(size_t expected) { reserve(expected); }

  /// Inserts `key`; returns true when it was not already a member.
  bool insert(uint64_t key) {
    // Slot value 0 marks "empty", so the zero key lives in a side flag.
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if (slots_.empty() || (used_ + 1) * 4 > slots_.size() * 3) {
      Grow();
    }
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++used_;
    ++size_;
    return true;
  }

  /// True when `key` is a member.
  bool contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes every member; keeps the current capacity.
  void clear() {
    std::fill(slots_.begin(), slots_.end(), 0);
    used_ = 0;
    size_ = 0;
    has_zero_ = false;
  }

  /// Ensures capacity for `expected` keys under the 3/4 load ceiling.
  void reserve(size_t expected) {
    size_t capacity = 16;
    while (capacity * 3 < (expected + 1) * 4) capacity *= 2;
    if (capacity > slots_.size()) Rehash(capacity);
  }

  /// Current table capacity (always a power of two once allocated).
  size_t capacity() const { return slots_.size(); }

 private:
  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t capacity) {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (uint64_t key : old) {
      if (key == 0) continue;
      size_t i = Mix64(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<uint64_t> slots_;  // 0 = empty slot.
  size_t mask_ = 0;
  size_t used_ = 0;  // Non-zero keys stored in slots_.
  size_t size_ = 0;  // Members, including the zero key.
  bool has_zero_ = false;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_FLAT_SET_H_
