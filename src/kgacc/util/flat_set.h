#ifndef KGACC_UTIL_FLAT_SET_H_
#define KGACC_UTIL_FLAT_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "kgacc/util/codec.h"
#include "kgacc/util/random.h"

/// \file flat_set.h
/// Open-addressing hash set for 64-bit keys: power-of-two capacity, linear
/// probing, SplitMix64-mixed keys. One flat allocation, no per-node boxes,
/// cache-friendly probes — built for the distinct-triple/entity tracking on
/// the annotation hot path, where `std::unordered_set<uint64_t>` pays a node
/// allocation and a pointer chase per insert.
///
/// Growth is *incremental twice over*. When the load ceiling is hit, the
/// doubled table is first allocated raw and zeroed a few cache lines per
/// insert (a 2M-bucket table used to pay its ~2 ms memset inside one insert
/// — the last p99 spike in BENCH_step.json); only once fully zeroed does it
/// become the active table, at which point the retired table drains a
/// handful of buckets per insert into it. No single insert ever pays an
/// O(capacity) zeroing or an O(size) reinsertion.

namespace kgacc {

/// A set of uint64 keys. Insert-only plus clear(): the evaluation loop only
/// ever adds members and resets between runs, so erase is deliberately
/// unsupported (tombstones would slow every probe).
class FlatSet64 {
 public:
  FlatSet64() = default;

  /// Pre-sizes the table for `expected` keys without rehashing.
  explicit FlatSet64(size_t expected) { reserve(expected); }

  FlatSet64(const FlatSet64& other) { CopyFrom(other); }
  FlatSet64& operator=(const FlatSet64& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  // Moves must leave the source in a *usable* empty state: the raw-buffer
  // tables would otherwise strand non-zero capacity_/size_ fields pointing
  // at null storage (the previous std::vector storage reset itself).
  FlatSet64(FlatSet64&& other) noexcept { MoveFrom(other); }
  FlatSet64& operator=(FlatSet64&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Inserts `key`; returns true when it was not already a member.
  /// Amortized O(1) with a worst-case single-insert cost of one raw table
  /// allocation plus `kZeroChunkBuckets` zeroed buckets plus
  /// `kMigrateBuckets` bucket moves — never a full memset or rehash.
  bool insert(uint64_t key) {
    // Slot value 0 marks "empty", so the zero key lives in a side flag.
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if (capacity_ == 0) {
      slots_.reset(new uint64_t[kInitialCapacity]());
      capacity_ = kInitialCapacity;
      mask_ = kInitialCapacity - 1;
    } else if (staging_cap_ != 0) {
      AdvanceStagingZeroing();
    } else if ((used_ + pending_ + 1) * 4 > capacity_ * 3) {
      BeginStaging();
      AdvanceStagingZeroing();
    }
    if (pending_ > 0) MigrateSome();
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    // Keys not yet migrated still live in the retired table.
    if (pending_ > 0) {
      size_t j = Mix64(key) & old_mask_;
      while (old_[j] != 0) {
        if (old_[j] == key) return false;
        j = (j + 1) & old_mask_;
      }
    }
    slots_[i] = key;
    ++used_;
    ++size_;
    return true;
  }

  /// True when `key` is a member.
  bool contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    if (capacity_ == 0) return false;
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    if (pending_ > 0) {
      size_t j = Mix64(key) & old_mask_;
      while (old_[j] != 0) {
        if (old_[j] == key) return true;
        j = (j + 1) & old_mask_;
      }
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every member exactly once, in unspecified order (table order,
  /// which depends on the insertion history). Members still waiting in a
  /// retired mid-migration table are visited too — a key lives in exactly
  /// one of the two tables, and unmigrated keys sit at stored buckets the
  /// migration cursor has not reached yet. Used by the snapshot layer,
  /// which re-inserts the keys on restore (membership, not layout, is the
  /// serialized state).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(uint64_t{0});
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i] != 0) fn(slots_[i]);
    }
    if (pending_ > 0) {
      for (size_t j = cursor_; j < old_cap_; ++j) {
        if (old_[j] != 0) fn(old_[j]);
      }
    }
  }

  /// Removes every member; keeps the current capacity. This is a deliberate
  /// bulk operation (one memset of the active table) — it runs between
  /// audits, not inside the per-insert hot path. A doubling in flight is
  /// abandoned: its buckets held no members yet.
  void clear() {
    if (capacity_ != 0) std::fill_n(slots_.get(), capacity_, uint64_t{0});
    old_.reset();
    old_cap_ = 0;
    old_mask_ = 0;
    pending_ = 0;
    cursor_ = 0;
    DiscardStaging();
    used_ = 0;
    size_ = 0;
    has_zero_ = false;
  }

  /// Ensures capacity for `expected` keys under the 3/4 load ceiling. An
  /// explicit reserve pays its one zeroing + rehash up front; inserts that
  /// stay below `expected` then never rehash (asserted by the flat_set
  /// tests).
  void reserve(size_t expected) {
    size_t target = kInitialCapacity;
    while (target * 3 < (expected + 1) * 4) target *= 2;
    if (target > capacity_) Rehash(target);
  }

  /// Current table capacity (always a power of two once allocated).
  size_t capacity() const { return capacity_; }

  /// True while a retired table still holds unmigrated keys (exposed for
  /// tests; growth leaves this state, a reserve or clear drains it).
  bool migrating() const { return pending_ > 0; }

  /// True while the next doubled table is still being zeroed chunk by
  /// chunk (exposed for tests; it becomes the active table once zeroed).
  bool zeroing() const { return staging_cap_ != 0; }

 private:
  static constexpr size_t kInitialCapacity = 16;

  /// Old-table buckets examined per insert during a migration. At 8, a
  /// retired table of C buckets drains within C/8 inserts, well before the
  /// next doubling (which is at least C/2 inserts away).
  static constexpr size_t kMigrateBuckets = 8;

  /// Staged-table buckets zeroed per insert while a doubling is being
  /// prepared: 512 buckets = one 4 KB page per insert. Zeroing the doubled
  /// table (2C buckets) therefore spans 2C/512 inserts, during which the
  /// active table's load rises at most 1/256 past the 3/4 ceiling — far
  /// from full, and the table stays probe-correct throughout.
  static constexpr size_t kZeroChunkBuckets = 512;

  /// Allocates the doubled table *uninitialized*; `AdvanceStagingZeroing`
  /// pays the memset in per-insert chunks.
  void BeginStaging() {
    staging_.reset(new uint64_t[capacity_ * 2]);
    staging_cap_ = capacity_ * 2;
    staging_zeroed_ = 0;
  }

  void AdvanceStagingZeroing() {
    size_t budget = kZeroChunkBuckets;
    // Backstop: should inserts somehow outpace the chunk schedule, finish
    // the zeroing now rather than let the active table approach full (a
    // full open-addressing table never terminates its probe loop).
    if (used_ + pending_ + 2 >= capacity_) budget = staging_cap_;
    const size_t chunk = std::min(budget, staging_cap_ - staging_zeroed_);
    std::fill_n(staging_.get() + staging_zeroed_, chunk, uint64_t{0});
    staging_zeroed_ += chunk;
    if (staging_zeroed_ == staging_cap_) Promote();
  }

  /// Swaps the fully zeroed staged table in: the active table retires and
  /// starts draining into the new one, `kMigrateBuckets` per insert.
  void Promote() {
    DrainOld();  // Backstop; a retired table normally drained long ago.
    old_ = std::move(slots_);
    old_cap_ = capacity_;
    old_mask_ = mask_;
    pending_ = used_;
    cursor_ = 0;
    used_ = 0;
    slots_ = std::move(staging_);
    capacity_ = staging_cap_;
    mask_ = capacity_ - 1;
    staging_cap_ = 0;
    staging_zeroed_ = 0;
    if (pending_ == 0) {
      old_.reset();
      old_cap_ = 0;
    }
  }

  void MigrateSome() {
    size_t budget = kMigrateBuckets;
    while (budget-- > 0 && cursor_ < old_cap_) {
      const uint64_t key = old_[cursor_++];
      if (key == 0) continue;
      size_t i = Mix64(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
      ++used_;
      --pending_;
      if (pending_ == 0) break;
    }
    if (pending_ == 0) {
      old_.reset();
      old_cap_ = 0;
      cursor_ = 0;
    }
  }

  void DrainOld() {
    while (pending_ > 0) MigrateSome();
    old_.reset();
    old_cap_ = 0;
    cursor_ = 0;
  }

  void DiscardStaging() {
    staging_.reset();
    staging_cap_ = 0;
    staging_zeroed_ = 0;
  }

  /// Full (non-incremental) rehash to `target`; only reached through
  /// reserve(), where the caller asked to pay the cost up front.
  void Rehash(size_t target) {
    DrainOld();
    DiscardStaging();
    std::unique_ptr<uint64_t[]> retired = std::move(slots_);
    const size_t retired_cap = capacity_;
    slots_.reset(new uint64_t[target]());
    capacity_ = target;
    mask_ = target - 1;
    for (size_t idx = 0; idx < retired_cap; ++idx) {
      const uint64_t key = retired[idx];
      if (key == 0) continue;
      size_t i = Mix64(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  void MoveFrom(FlatSet64& other) noexcept {
    slots_ = std::move(other.slots_);
    capacity_ = other.capacity_;
    mask_ = other.mask_;
    old_ = std::move(other.old_);
    old_cap_ = other.old_cap_;
    old_mask_ = other.old_mask_;
    pending_ = other.pending_;
    cursor_ = other.cursor_;
    staging_ = std::move(other.staging_);
    staging_cap_ = other.staging_cap_;
    staging_zeroed_ = other.staging_zeroed_;
    used_ = other.used_;
    size_ = other.size_;
    has_zero_ = other.has_zero_;
    other.capacity_ = 0;
    other.mask_ = 0;
    other.old_cap_ = 0;
    other.old_mask_ = 0;
    other.pending_ = 0;
    other.cursor_ = 0;
    other.staging_cap_ = 0;
    other.staging_zeroed_ = 0;
    other.used_ = 0;
    other.size_ = 0;
    other.has_zero_ = false;
  }

  void CopyFrom(const FlatSet64& other) {
    // Allocate both replacement tables before mutating any member, so an
    // allocation failure mid-copy leaves this set in its pre-copy state
    // instead of stranding live counters over surrendered storage.
    std::unique_ptr<uint64_t[]> new_slots;
    if (other.capacity_ != 0) {
      new_slots.reset(new uint64_t[other.capacity_]);
      std::copy_n(other.slots_.get(), other.capacity_, new_slots.get());
    }
    std::unique_ptr<uint64_t[]> new_old;
    if (other.old_cap_ != 0) {
      new_old.reset(new uint64_t[other.old_cap_]);
      std::copy_n(other.old_.get(), other.old_cap_, new_old.get());
    }
    slots_ = std::move(new_slots);
    capacity_ = other.capacity_;
    mask_ = other.mask_;
    old_ = std::move(new_old);
    old_cap_ = other.old_cap_;
    old_mask_ = other.old_mask_;
    pending_ = other.pending_;
    cursor_ = other.cursor_;
    // A staged table holds no members (and is partially uninitialized);
    // the copy simply restarts the doubling preparation when it next hits
    // the load ceiling.
    DiscardStaging();
    used_ = other.used_;
    size_ = other.size_;
    has_zero_ = other.has_zero_;
  }

  std::unique_ptr<uint64_t[]> slots_;  // Active table; 0 = empty slot.
  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<uint64_t[]> old_;  // Retired table, draining into slots_.
  size_t old_cap_ = 0;
  size_t old_mask_ = 0;
  size_t pending_ = 0;  // Keys still waiting in old_.
  size_t cursor_ = 0;   // Next old_ bucket to migrate.
  std::unique_ptr<uint64_t[]> staging_;  // Doubled table being zeroed.
  size_t staging_cap_ = 0;
  size_t staging_zeroed_ = 0;
  size_t used_ = 0;  // Non-zero keys stored in slots_.
  size_t size_ = 0;  // Members, including the zero key.
  bool has_zero_ = false;
};

/// Serializes the set's *membership* (count + raw keys); the table layout
/// is not part of the state — `LoadFlatSet64` rebuilds it by re-insertion.
/// Shared by every snapshotting owner of a FlatSet64 (distinct-triple
/// tracking, SRS without-replacement bookkeeping, ...).
inline void SaveFlatSet64(const FlatSet64& set, ByteWriter* w) {
  w->PutVarint(set.size());
  set.ForEach([w](uint64_t key) { w->PutFixed64(key); });
}

inline Status LoadFlatSet64(ByteReader* r, FlatSet64* set) {
  KGACC_ASSIGN_OR_RETURN(const uint64_t count, r->Varint());
  set->clear();
  set->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    KGACC_ASSIGN_OR_RETURN(const uint64_t key, r->Fixed64());
    set->insert(key);
  }
  if (set->size() != count) {
    return Status::InvalidArgument(
        "flat-set snapshot held duplicate keys (corrupt payload)");
  }
  return Status::OK();
}

}  // namespace kgacc

#endif  // KGACC_UTIL_FLAT_SET_H_
