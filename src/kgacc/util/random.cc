#include "kgacc/util/random.h"

#include <cmath>

#include "kgacc/util/codec.h"
#include "kgacc/util/flat_set.h"

namespace kgacc {

void Rng::SaveState(ByteWriter* w) const {
  for (int i = 0; i < 4; ++i) w->PutFixed64(s_[i]);
  w->PutBool(has_spare_normal_);
  w->PutDouble(spare_normal_);
}

Status Rng::LoadState(ByteReader* r) {
  uint64_t s[4];
  for (int i = 0; i < 4; ++i) {
    KGACC_ASSIGN_OR_RETURN(s[i], r->Fixed64());
  }
  if ((s[0] | s[1] | s[2] | s[3]) == 0) {
    return Status::InvalidArgument("Rng state is all-zero (corrupt snapshot)");
  }
  KGACC_ASSIGN_OR_RETURN(const bool has_spare, r->Bool());
  KGACC_ASSIGN_OR_RETURN(const double spare, r->Double());
  for (int i = 0; i < 4; ++i) s_[i] = s[i];
  has_spare_normal_ = has_spare;
  spare_normal_ = spare;
  return Status::OK();
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * Uniform() - 1.0;
    v = 2.0 * Uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * f;
  has_spare_normal_ = true;
  return u * f;
}

double Rng::Gamma(double shape) {
  KGACC_DCHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia & Tsang, section 6).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  return x / (x + y);
}

std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Rng* rng) {
  std::vector<uint64_t> out;
  FlatSet64 chosen;
  SampleWithoutReplacementInto(n, k, rng, &out, &chosen);
  return out;
}

void SampleWithoutReplacementInto(uint64_t n, uint64_t k, Rng* rng,
                                  std::vector<uint64_t>* out,
                                  FlatSet64* scratch) {
  out->clear();
  SampleWithoutReplacementAppend(n, k, rng, out, scratch);
}

void SampleWithoutReplacementAppend(uint64_t n, uint64_t k, Rng* rng,
                                    std::vector<uint64_t>* out,
                                    FlatSet64* scratch) {
  KGACC_CHECK(k <= n);
  out->reserve(out->size() + k);
  if (k == 0) return;
  // Robert Floyd's algorithm: for j = n-k .. n-1 draw t in [0, j]; insert t
  // unless already chosen, in which case insert j. Each subset of size k is
  // equally likely.
  scratch->clear();
  scratch->reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = rng->UniformInt(j + 1);
    if (scratch->insert(t)) {
      out->push_back(t);
    } else {
      scratch->insert(j);
      out->push_back(j);
    }
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  KGACC_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    KGACC_CHECK(w >= 0.0);
    total += w;
  }
  KGACC_CHECK(total > 0.0);

  prob_.resize(n);
  alias_.resize(n);
  normalized_.resize(n);

  // Scale so the average bucket holds probability 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Residuals are exactly-1 buckets up to floating point error.
  for (uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

uint64_t AliasTable::Sample(Rng* rng) const {
  const uint64_t bucket = rng->UniformInt(prob_.size());
  return rng->Uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace kgacc
