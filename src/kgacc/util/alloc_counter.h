#ifndef KGACC_UTIL_ALLOC_COUNTER_H_
#define KGACC_UTIL_ALLOC_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

/// \file alloc_counter.h
/// Process-wide heap-allocation counter for allocation-accounting tests and
/// benches: defines the replaceable global operator new/delete to tick
/// `kgacc::alloc_counter::count` on every allocation.
///
/// Include from exactly ONE translation unit per binary (it *defines* the
/// operators). Library code must never include it — it exists for the
/// zero-allocation steady-state test (tests/eval/session_alloc_test.cc) and
/// the allocations-per-audit column of bench_service_throughput.

namespace kgacc::alloc_counter {

inline std::atomic<uint64_t> count{0};

/// Current process-wide allocation count.
inline uint64_t Current() { return count.load(std::memory_order_relaxed); }

}  // namespace kgacc::alloc_counter

void* operator new(std::size_t size) {
  kgacc::alloc_counter::count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  kgacc::alloc_counter::count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // KGACC_UTIL_ALLOC_COUNTER_H_
