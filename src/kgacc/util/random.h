#ifndef KGACC_UTIL_RANDOM_H_
#define KGACC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "kgacc/util/check.h"
#include "kgacc/util/status.h"

/// \file random.h
/// Deterministic, explicitly seeded randomness used across the library.
/// Every stochastic component in kgacc takes a 64-bit seed so that every
/// experiment replication is exactly reproducible.

namespace kgacc {

class ByteWriter;
class ByteReader;

/// SplitMix64 finalizer step: a high-quality 64-bit mix function. Used both
/// to expand seeds and as a stateless counter-based hash (`SyntheticKg`
/// derives triple labels from `Mix64(seed ^ triple_id)`).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps a 64-bit word to a double uniformly distributed in [0, 1).
inline double ToUnitDouble(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// xoshiro256** pseudo-random generator (Blackman & Vigna). Small state,
/// excellent statistical quality, and — unlike std::mt19937 — identical
/// output across standard library implementations.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Resets the state as if freshly constructed with `seed`.
  void Reseed(uint64_t seed) {
    // Expand the single word into four via SplitMix64, per Vigna's advice.
    for (int i = 0; i < 4; ++i) {
      seed += 0x9e3779b97f4a7c15ULL;
      s_[i] = Mix64(seed);
    }
    // Guard against the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  /// Next raw 64-bit word.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return ToUnitDouble(Next()); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). `n` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t n) {
    KGACC_DCHECK(n > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal deviate (Marsaglia polar method).
  double Normal();

  /// Gamma(shape, 1) deviate (Marsaglia & Tsang). `shape` must be positive.
  double Gamma(double shape);

  /// Beta(a, b) deviate via two gamma draws.
  double Beta(double a, double b);

  /// Serializes the complete generator state — the four xoshiro words plus
  /// the polar-method spare-normal cache — so a restored Rng continues the
  /// *identical* stream (checkpoint/resume must replay the same stochastic
  /// path bit for bit, including a buffered half of a normal pair).
  void SaveState(ByteWriter* w) const;
  Status LoadState(ByteReader* r);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  // Spare value cache for the polar method.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

class FlatSet64;

/// Draws `k` distinct indices uniformly from {0, ..., n-1} (sampling without
/// replacement) using Robert Floyd's algorithm: O(k) expected time and O(k)
/// memory, independent of `n`. The returned order is unspecified.
std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Rng* rng);

/// Allocation-free variant for hot loops: writes the draw into `*out`
/// (cleared first) and tracks chosen indices in `*scratch` (cleared first),
/// both reused across calls. Consumes the identical Rng stream — and
/// returns the identical draw — as `SampleWithoutReplacement`.
void SampleWithoutReplacementInto(uint64_t n, uint64_t k, Rng* rng,
                                  std::vector<uint64_t>* out,
                                  FlatSet64* scratch);

/// Appending variant: leaves existing elements of `*out` untouched and
/// writes the k drawn indices at its tail (the flat `SampleBatch` offset
/// buffer, where every unit's draw lands behind the previous one's).
/// `*scratch` is cleared first. Identical Rng stream and draw as the other
/// two variants.
void SampleWithoutReplacementAppend(uint64_t n, uint64_t k, Rng* rng,
                                    std::vector<uint64_t>* out,
                                    FlatSet64* scratch);

/// Walker/Vose alias table for O(1) sampling from a discrete distribution
/// with fixed weights. Used for the probability-proportional-to-size first
/// stage of TWCS, where the number of clusters can be in the millions.
class AliasTable {
 public:
  /// Builds the table from non-negative `weights`; at least one weight must
  /// be positive. O(n) time and memory.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  uint64_t Sample(Rng* rng) const;

  /// Number of outcomes.
  size_t size() const { return prob_.size(); }

  /// Normalized selection probability of outcome `i` (weights_i / sum).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;      // Acceptance threshold per bucket.
  std::vector<uint32_t> alias_;   // Fallback outcome per bucket.
  std::vector<double> normalized_;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_RANDOM_H_
