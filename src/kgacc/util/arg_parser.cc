#include "kgacc/util/arg_parser.h"

#include <algorithm>
#include <cstdlib>

namespace kgacc {

std::string ParsedArgs::GetString(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

Result<double> ParsedArgs::GetDouble(const std::string& name,
                                     double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return value;
}

Result<int64_t> ParsedArgs::GetInt(const std::string& name,
                                   int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got '" + it->second +
                                   "'");
  }
  return static_cast<int64_t>(value);
}

Result<bool> ParsedArgs::GetBool(const std::string& name,
                                 bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  return Status::InvalidArgument("flag --" + name +
                                 " expects true/false, got '" + v + "'");
}

ArgParser& ArgParser::AddFlag(const std::string& name,
                              const std::string& help) {
  declared_.emplace_back(name, help);
  return *this;
}

Result<ParsedArgs> ArgParser::Parse(int argc, const char* const* argv) const {
  ParsedArgs out;
  bool flags_done = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || arg.empty() || arg[0] != '-' || arg == "-") {
      out.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      return Status::InvalidArgument("unrecognized argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    const size_t eq = name.find('=');
    bool has_value = false;
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const bool known =
        std::any_of(declared_.begin(), declared_.end(),
                    [&](const auto& d) { return d.first == name; });
    if (!known) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!has_value && i + 1 < argc && argv[i + 1][0] != '-') {
      value = argv[++i];
    }
    out.flags_[name] = value;
  }
  return out;
}

std::string ArgParser::HelpText() const {
  std::string out = "Flags:\n";
  for (const auto& [name, help] : declared_) {
    out += "  --" + name;
    out.append(name.size() < 18 ? 18 - name.size() : 1, ' ');
    out += help + "\n";
  }
  return out;
}

}  // namespace kgacc
