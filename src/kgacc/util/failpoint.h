#ifndef KGACC_UTIL_FAILPOINT_H_
#define KGACC_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "kgacc/util/status.h"

/// \file failpoint.h
/// Deterministic fault injection. A *failpoint* is a named site in the code
/// ("wal.append", "store.checkpoint", ...) that asks `FailpointHit(name)`
/// whether this particular execution should fail; a central registry maps
/// names to *policies* armed at runtime from a spec string:
///
///   spec    := point (';' point)*
///   point   := name '=' policy
///   policy  := 'off'                 never fires (disarms the point)
///            | 'once'                fire on the first evaluation, then heal
///            | 'times:N'             fire on the first N evaluations
///            | 'every:N'             fire on every Nth evaluation (N >= 1)
///            | 'prob:P[:seed:S]'     fire with probability P from a private
///                                    seeded RNG (default seed: name hash)
///            | 'sleep:MS'            inject MS milliseconds of latency,
///                                    never fire
///
/// e.g. `wal.sync=once;store.append=prob:0.25:seed:7;service.step=sleep:2`.
/// Policies are deterministic given the spec (the `prob` RNG is private and
/// seeded), so a chaos schedule replays exactly — the property the chaos
/// tests' byte-identical-resume assertions rest on.
///
/// Cost model: when nothing is armed anywhere, `FailpointHit` is one
/// relaxed atomic load and a branch — cheap enough for the durability hot
/// paths (per-annotation WAL appends). Armed evaluations take a registry
/// mutex; fault-injection runs are not performance runs.
///
/// The registry is process-global. Tests must disarm what they arm
/// (`ScopedFailpoints` does it via RAII); sites evaluate through the
/// registry only while at least one point is armed.

namespace kgacc {

namespace failpoint_internal {
/// Number of currently armed failpoints, kept by the registry. The fast
/// path reads it relaxed: arming strictly precedes the run that should
/// observe the faults (same thread or externally synchronized).
extern std::atomic<uint32_t> g_armed_count;
/// Slow path: policy evaluation under the registry lock.
bool EvaluateSlow(const char* name);
}  // namespace failpoint_internal

/// True when the armed policy for `name` says this evaluation fails.
/// Injected latency (`sleep:MS`) is applied here. Unarmed points — and
/// processes with no failpoints at all — return false in a branch.
inline bool FailpointHit(const char* name) {
  if (failpoint_internal::g_armed_count.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return failpoint_internal::EvaluateSlow(name);
}

/// Evaluation/fire counters for one failpoint, for tests and telemetry.
struct FailpointStats {
  uint64_t evaluations = 0;
  uint64_t failures = 0;
};

/// The process-wide failpoint table. All members are thread-safe.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Parses and arms a full spec string (see the file comment for the
  /// grammar). Arming is transactional: on a malformed spec nothing
  /// changes and a descriptive InvalidArgument is returned.
  Status Arm(const std::string& spec);

  /// Arms a single point with a single policy string ("once", "every:3",
  /// ...). `off` disarms it.
  Status ArmOne(const std::string& name, const std::string& policy);

  /// Disarms one point (keeps its counters until DisarmAll).
  void Disarm(const std::string& name);

  /// Disarms everything and clears all counters — what test teardown calls.
  void DisarmAll();

  /// Counters for `name`; zeros when the point was never armed.
  FailpointStats Stats(const std::string& name) const;

  /// Names of the currently armed points, sorted.
  std::vector<std::string> ArmedNames() const;

 private:
  FailpointRegistry() = default;
};

/// RAII arming for tests: arms the spec on construction, disarms everything
/// on destruction, so a failed assertion cannot leak an armed schedule into
/// the next test.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec) {
    status_ = FailpointRegistry::Instance().Arm(spec);
  }
  ~ScopedFailpoints() { FailpointRegistry::Instance().DisarmAll(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

  /// Arm outcome — assert ok() before relying on the schedule.
  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace kgacc

#endif  // KGACC_UTIL_FAILPOINT_H_
