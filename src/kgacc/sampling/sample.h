#ifndef KGACC_SAMPLING_SAMPLE_H_
#define KGACC_SAMPLING_SAMPLE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "kgacc/kg/triple.h"
#include "kgacc/util/check.h"
#include "kgacc/util/flat_set.h"
#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file sample.h
/// Accumulated annotated sample (the `sample` variable of Algorithm 1).
/// Grows batch by batch across the iterations of the evaluation framework
/// and feeds the estimators, the interval constructors, and the cost model.

namespace kgacc {

class ByteWriter;
class ByteReader;

/// One sampled unit: either a single SRS triple or one first-stage cluster
/// occurrence with its second-stage offsets (TWCS/WCS). Produced by the
/// samplers *before* annotation — offsets are chosen from structure only.
/// Units do not own their offsets: they index a span of the enclosing
/// `SampleBatch`'s shared offset buffer.
struct SampledUnit {
  uint64_t cluster = 0;
  /// Cluster population size M_i (needed by cluster estimators).
  uint64_t cluster_population = 0;
  /// Span of this unit's second-stage offsets in the batch's shared buffer
  /// (one element for SRS units).
  uint64_t offset_begin = 0;
  uint32_t offset_count = 0;
  /// Stratum index for stratified designs; 0 for unstratified ones.
  uint32_t stratum = 0;
};

/// A batch of sampled units (phase 1 of the framework), stored
/// structure-of-arrays: one flat unit array plus one shared offset buffer
/// the units carve spans out of. Drawing a batch therefore performs no
/// per-unit heap allocation, and a batch object reused across steps (the
/// `EvaluationSession` hot loop) reaches steady state with zero
/// allocations per step.
class SampleBatch {
 public:
  size_t size() const { return units_.size(); }
  bool empty() const { return units_.empty(); }

  /// Units in draw order.
  const SampledUnit& unit(size_t i) const { return units_[i]; }
  const std::vector<SampledUnit>& units() const { return units_; }

  /// The unit's second-stage offsets within its cluster.
  std::span<const uint64_t> offsets(const SampledUnit& u) const {
    KGACC_DCHECK(u.offset_begin + u.offset_count <= offsets_.size());
    return {offsets_.data() + u.offset_begin, u.offset_count};
  }
  std::span<const uint64_t> offsets(size_t i) const {
    return offsets(units_[i]);
  }

  /// The shared offset buffer (the concatenation of every unit's span).
  const std::vector<uint64_t>& offset_buffer() const { return offsets_; }

  /// Drops all units and offsets, keeping both buffers' capacity.
  void Clear() {
    units_.clear();
    offsets_.clear();
  }

  /// Pre-sizes the buffers for `units` units carrying `offsets` offsets.
  void Reserve(size_t units, size_t offsets) {
    units_.reserve(units);
    offsets_.reserve(offsets);
  }

  // -- Producer API (samplers) ---------------------------------------------

  /// Appends a one-triple unit (SRS-like designs).
  void AddSingleton(uint64_t cluster, uint64_t cluster_population,
                    uint32_t stratum, uint64_t offset) {
    SampledUnit& u = OpenUnit(cluster, cluster_population, stratum);
    offsets_.push_back(offset);
    u.offset_count = 1;
  }

  /// Starts a multi-offset unit; append its offsets with `AppendOffset` /
  /// `AppendIota` (or directly into `mutable_offset_buffer()`), then seal
  /// the span with `CloseUnit`. Units must be produced one at a time.
  SampledUnit& OpenUnit(uint64_t cluster, uint64_t cluster_population,
                        uint32_t stratum) {
    SampledUnit u;
    u.cluster = cluster;
    u.cluster_population = cluster_population;
    u.stratum = stratum;
    u.offset_begin = offsets_.size();
    u.offset_count = 0;
    units_.push_back(u);
    return units_.back();
  }

  /// Appends one offset to the currently open unit.
  void AppendOffset(uint64_t offset) { offsets_.push_back(offset); }

  /// Appends the identity range 0..count-1 (whole-cluster designs).
  void AppendIota(uint64_t count) {
    const size_t base = offsets_.size();
    offsets_.resize(base + count);
    for (uint64_t i = 0; i < count; ++i) offsets_[base + i] = i;
  }

  /// Seals the open unit's span at the current end of the offset buffer.
  void CloseUnit() {
    SampledUnit& u = units_.back();
    KGACC_DCHECK(offsets_.size() - u.offset_begin <=
                 std::numeric_limits<uint32_t>::max());
    u.offset_count = static_cast<uint32_t>(offsets_.size() - u.offset_begin);
  }

  /// Raw offset buffer for bulk producers (`SampleWithoutReplacementAppend`
  /// writes the second-stage draw straight into the open unit's tail).
  std::vector<uint64_t>* mutable_offset_buffer() { return &offsets_; }

 private:
  std::vector<SampledUnit> units_;
  std::vector<uint64_t> offsets_;
};

/// A sampled unit after annotation: how many of the drawn triples were
/// annotated correct.
struct AnnotatedUnit {
  uint64_t cluster = 0;
  uint64_t cluster_population = 0;
  uint32_t stratum = 0;
  uint32_t drawn = 0;
  uint32_t correct = 0;
};

/// The running annotated sample. Tracks totals (n_S, tau_S), per-unit
/// records for cluster estimators, and the *distinct* entities/triples
/// touched, which is what the annotation cost function charges for
/// (Eq. 12: identifying an already-identified entity is free).
class AnnotatedSample {
 public:
  /// Appends an annotated unit.
  void Add(const AnnotatedUnit& unit);

  /// Restores the freshly constructed state while keeping every buffer's
  /// capacity (the unit history and both distinct-set tables). This is what
  /// lets a worker context recycle one sample across thousands of audits:
  /// after the first few jobs the flat sets are sized for the workload and
  /// later sessions never rehash.
  void Clear();

  /// Number of annotated triples n_S (duplicates from with-replacement
  /// designs count, matching the estimator's sample size).
  uint64_t num_triples() const { return num_triples_; }

  /// Number of correct annotations tau_S.
  uint64_t num_correct() const { return num_correct_; }

  /// Units accumulated so far (including ones dropped from `units()` when
  /// retention is off).
  uint64_t num_units() const { return num_units_; }

  /// Sampled units in arrival order (the first-stage units for cluster
  /// designs; one unit per triple for SRS). Empty when unit retention is
  /// disabled — check `retain_units()` before replaying.
  const std::vector<AnnotatedUnit>& units() const { return units_; }

  /// Controls whether `Add` keeps the per-unit history. The batch
  /// estimators in estimate/estimators.h replay `units()`, but the
  /// streaming `EstimatorAccumulator` does not — sessions that feed an
  /// accumulator can opt out and hold O(1) memory per design instead of
  /// O(units). Totals and distinct-set tracking are unaffected. Disabling
  /// retention mid-run keeps what was already recorded.
  void set_retain_units(bool retain) { retain_units_ = retain; }
  bool retain_units() const { return retain_units_; }

  /// Arms the diagnostic reservoir: while unit retention is *off*, `Add`
  /// maintains a fixed-capacity uniform subsample of the dropped units
  /// (Vitter's Algorithm R over its own seeded Rng), so bootstrap and
  /// design-effect diagnostics still have per-unit data after an O(1)-memory
  /// audit. Inactive while retention is on — `units()` is already complete.
  /// The reservoir and its Rng ride through `SaveState`/`LoadState`, so a
  /// resumed audit continues the same subsampling stream.
  void EnableReservoir(uint64_t capacity, uint64_t seed);

  /// The reservoir's units (arrival order is *not* preserved past the first
  /// `reservoir_capacity()` entries — it is a uniform subset, not a prefix).
  const std::vector<AnnotatedUnit>& reservoir_units() const {
    return reservoir_;
  }
  uint64_t reservoir_capacity() const { return reservoir_capacity_; }

  /// Distinct entities |E_S| identified so far.
  uint64_t num_distinct_entities() const { return entities_.size(); }

  /// Distinct triples |T_S| annotated so far (a re-drawn triple is only
  /// manually verified once).
  uint64_t num_distinct_triples() const { return triples_.size(); }

  /// Records a triple as manually annotated (updates the distinct sets).
  /// Returns true when the triple had not been seen before.
  bool MarkAnnotated(const TripleRef& ref);

  bool empty() const { return num_units_ == 0; }

  /// Serializes totals, the retained unit history (when enabled), and the
  /// members of both distinct sets. Restore rebuilds the sets by
  /// re-insertion — membership is the state; the table layout is not.
  void SaveState(ByteWriter* w) const;
  Status LoadState(ByteReader* r);

 private:
  static uint64_t TripleKey(const TripleRef& ref);

  std::vector<AnnotatedUnit> units_;
  bool retain_units_ = true;
  /// Algorithm-R state; active only when `reservoir_capacity_ > 0` and
  /// retention is off.
  std::vector<AnnotatedUnit> reservoir_;
  uint64_t reservoir_capacity_ = 0;
  Rng reservoir_rng_{0};
  uint64_t num_units_ = 0;
  uint64_t num_triples_ = 0;
  uint64_t num_correct_ = 0;
  FlatSet64 entities_;
  FlatSet64 triples_;
};

}  // namespace kgacc

#endif  // KGACC_SAMPLING_SAMPLE_H_
