#ifndef KGACC_SAMPLING_SAMPLE_H_
#define KGACC_SAMPLING_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "kgacc/kg/triple.h"
#include "kgacc/util/flat_set.h"
#include "kgacc/util/status.h"

/// \file sample.h
/// Accumulated annotated sample (the `sample` variable of Algorithm 1).
/// Grows batch by batch across the iterations of the evaluation framework
/// and feeds the estimators, the interval constructors, and the cost model.

namespace kgacc {

/// One sampled unit: either a single SRS triple or one first-stage cluster
/// occurrence with its second-stage offsets (TWCS/WCS). Produced by the
/// samplers *before* annotation — offsets are chosen from structure only.
struct SampledUnit {
  uint64_t cluster = 0;
  /// Cluster population size M_i (needed by cluster estimators).
  uint64_t cluster_population = 0;
  /// Stratum index for stratified designs; 0 for unstratified ones.
  uint32_t stratum = 0;
  /// Second-stage offsets within the cluster (one element for SRS units).
  std::vector<uint64_t> offsets;
};

/// A batch of sampled units (phase 1 of the framework).
using SampleBatch = std::vector<SampledUnit>;

/// A sampled unit after annotation: how many of the drawn triples were
/// annotated correct.
struct AnnotatedUnit {
  uint64_t cluster = 0;
  uint64_t cluster_population = 0;
  uint32_t stratum = 0;
  uint32_t drawn = 0;
  uint32_t correct = 0;
};

/// The running annotated sample. Tracks totals (n_S, tau_S), per-unit
/// records for cluster estimators, and the *distinct* entities/triples
/// touched, which is what the annotation cost function charges for
/// (Eq. 12: identifying an already-identified entity is free).
class AnnotatedSample {
 public:
  /// Appends an annotated unit.
  void Add(const AnnotatedUnit& unit);

  /// Number of annotated triples n_S (duplicates from with-replacement
  /// designs count, matching the estimator's sample size).
  uint64_t num_triples() const { return num_triples_; }

  /// Number of correct annotations tau_S.
  uint64_t num_correct() const { return num_correct_; }

  /// Units accumulated so far (including ones dropped from `units()` when
  /// retention is off).
  uint64_t num_units() const { return num_units_; }

  /// Sampled units in arrival order (the first-stage units for cluster
  /// designs; one unit per triple for SRS). Empty when unit retention is
  /// disabled — check `retain_units()` before replaying.
  const std::vector<AnnotatedUnit>& units() const { return units_; }

  /// Controls whether `Add` keeps the per-unit history. The batch
  /// estimators in estimate/estimators.h replay `units()`, but the
  /// streaming `EstimatorAccumulator` does not — sessions that feed an
  /// accumulator can opt out and hold O(1) memory per design instead of
  /// O(units). Totals and distinct-set tracking are unaffected. Disabling
  /// retention mid-run keeps what was already recorded.
  void set_retain_units(bool retain) { retain_units_ = retain; }
  bool retain_units() const { return retain_units_; }

  /// Distinct entities |E_S| identified so far.
  uint64_t num_distinct_entities() const { return entities_.size(); }

  /// Distinct triples |T_S| annotated so far (a re-drawn triple is only
  /// manually verified once).
  uint64_t num_distinct_triples() const { return triples_.size(); }

  /// Records a triple as manually annotated (updates the distinct sets).
  /// Returns true when the triple had not been seen before.
  bool MarkAnnotated(const TripleRef& ref);

  bool empty() const { return num_units_ == 0; }

 private:
  static uint64_t TripleKey(const TripleRef& ref);

  std::vector<AnnotatedUnit> units_;
  bool retain_units_ = true;
  uint64_t num_units_ = 0;
  uint64_t num_triples_ = 0;
  uint64_t num_correct_ = 0;
  FlatSet64 entities_;
  FlatSet64 triples_;
};

}  // namespace kgacc

#endif  // KGACC_SAMPLING_SAMPLE_H_
