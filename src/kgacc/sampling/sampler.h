#ifndef KGACC_SAMPLING_SAMPLER_H_
#define KGACC_SAMPLING_SAMPLER_H_

#include <memory>

#include "kgacc/kg/kg_view.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file sampler.h
/// Sampling-strategy interface (the S of the constrained minimization
/// problem, §2.2). A sampler is bound to one population at construction and
/// produces batches of structural sampling decisions; annotation happens
/// downstream in the evaluation framework.

namespace kgacc {

class ByteWriter;
class ByteReader;

/// Which unbiased estimator matches the units a sampler emits.
enum class EstimatorKind {
  /// Sample proportion (Eq. 2) on per-triple units.
  kSrs,
  /// Mean of per-cluster accuracies (Eq. 3) on first-stage cluster units.
  kCluster,
  /// Combined ratio estimator sum tau_i / sum M_i on *uniformly* drawn
  /// whole clusters (RCS) — the per-cluster mean is biased there when
  /// cluster size correlates with accuracy.
  kRcs,
  /// Stratum-weighted proportion on stratified per-triple units; requires
  /// the sampler to expose stratum weights.
  kStratified,
};

/// Abstract sampling strategy. Implementations are deterministic functions
/// of the Rng stream, so replications are reproducible by reseeding.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Draws the next batch of units into `*batch` (cleared first; its
  /// capacity is reused, so a caller that passes the same batch every step
  /// reaches an allocation-free steady state). May produce fewer units than
  /// the batch size when a without-replacement design nears exhaustion, and
  /// an empty batch when the population is fully consumed.
  virtual Status NextBatch(Rng* rng, SampleBatch* batch) = 0;

  /// Clears any without-replacement bookkeeping for a fresh run.
  virtual void Reset() = 0;

  /// The estimator family matching this design.
  virtual EstimatorKind estimator() const = 0;

  /// The population this sampler is bound to.
  virtual const KgView& kg() const = 0;

  /// Human-readable design name ("SRS", "TWCS", ...).
  virtual const char* name() const = 0;

  /// Population shares W_h of each stratum, for kStratified designs;
  /// nullptr otherwise.
  virtual const std::vector<double>* stratum_weights() const {
    return nullptr;
  }

  /// Serializes the design's mutable across-batch state (without-
  /// replacement bookkeeping, sweep positions, allocation carries) for
  /// checkpoint/resume. The default is empty: most designs draw each batch
  /// purely from the Rng stream and population structure, so a Reset()
  /// sampler plus a restored Rng already replays identically. Stateful
  /// designs (SRS-WOR, systematic, stratified) override both methods;
  /// `LoadState` is always called on a freshly Reset() sampler.
  virtual void SaveState(ByteWriter* w) const { (void)w; }
  virtual Status LoadState(ByteReader* r) {
    (void)r;
    return Status::OK();
  }

  /// Creates an independent sampler of the same design bound to the same
  /// population, in freshly Reset() state. Implementations share their
  /// immutable precomputed structures (PPS alias tables, strata indexes)
  /// with the clone, so cloning is cheap — this is what lets
  /// `EvaluationService` give every concurrent job its own mutable sampler
  /// without re-paying the O(#clusters) setup. Returns nullptr when the
  /// design does not support cloning.
  virtual std::unique_ptr<Sampler> Clone() const { return nullptr; }
};

}  // namespace kgacc

#endif  // KGACC_SAMPLING_SAMPLER_H_
