#include "kgacc/sampling/sample.h"

#include "kgacc/util/check.h"
#include "kgacc/util/codec.h"

namespace kgacc {

void AnnotatedSample::SaveState(ByteWriter* w) const {
  w->PutBool(retain_units_);
  w->PutVarint(num_units_);
  w->PutVarint(num_triples_);
  w->PutVarint(num_correct_);
  w->PutVarint(units_.size());
  for (const AnnotatedUnit& unit : units_) {
    w->PutVarint(unit.cluster);
    w->PutVarint(unit.cluster_population);
    w->PutVarint(unit.stratum);
    w->PutVarint(unit.drawn);
    w->PutVarint(unit.correct);
  }
  SaveFlatSet64(entities_, w);
  SaveFlatSet64(triples_, w);
  w->PutVarint(reservoir_capacity_);
  if (reservoir_capacity_ > 0) {
    reservoir_rng_.SaveState(w);
    w->PutVarint(reservoir_.size());
    for (const AnnotatedUnit& unit : reservoir_) {
      w->PutVarint(unit.cluster);
      w->PutVarint(unit.cluster_population);
      w->PutVarint(unit.stratum);
      w->PutVarint(unit.drawn);
      w->PutVarint(unit.correct);
    }
  }
}

Status AnnotatedSample::LoadState(ByteReader* r) {
  Clear();
  KGACC_ASSIGN_OR_RETURN(retain_units_, r->Bool());
  KGACC_ASSIGN_OR_RETURN(num_units_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(num_triples_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(num_correct_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(const uint64_t history, r->Varint());
  units_.reserve(history);
  for (uint64_t i = 0; i < history; ++i) {
    AnnotatedUnit unit;
    KGACC_ASSIGN_OR_RETURN(unit.cluster, r->Varint());
    KGACC_ASSIGN_OR_RETURN(unit.cluster_population, r->Varint());
    KGACC_ASSIGN_OR_RETURN(const uint64_t stratum, r->Varint());
    KGACC_ASSIGN_OR_RETURN(const uint64_t drawn, r->Varint());
    KGACC_ASSIGN_OR_RETURN(const uint64_t correct, r->Varint());
    unit.stratum = static_cast<uint32_t>(stratum);
    unit.drawn = static_cast<uint32_t>(drawn);
    unit.correct = static_cast<uint32_t>(correct);
    units_.push_back(unit);
  }
  KGACC_RETURN_IF_ERROR(LoadFlatSet64(r, &entities_));
  KGACC_RETURN_IF_ERROR(LoadFlatSet64(r, &triples_));
  KGACC_ASSIGN_OR_RETURN(reservoir_capacity_, r->Varint());
  if (reservoir_capacity_ > 0) {
    KGACC_RETURN_IF_ERROR(reservoir_rng_.LoadState(r));
    KGACC_ASSIGN_OR_RETURN(const uint64_t kept, r->Varint());
    if (kept > reservoir_capacity_) {
      return Status::InvalidArgument("reservoir larger than its capacity");
    }
    reservoir_.reserve(kept);
    for (uint64_t i = 0; i < kept; ++i) {
      AnnotatedUnit unit;
      KGACC_ASSIGN_OR_RETURN(unit.cluster, r->Varint());
      KGACC_ASSIGN_OR_RETURN(unit.cluster_population, r->Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t stratum, r->Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t drawn, r->Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t correct, r->Varint());
      unit.stratum = static_cast<uint32_t>(stratum);
      unit.drawn = static_cast<uint32_t>(drawn);
      unit.correct = static_cast<uint32_t>(correct);
      reservoir_.push_back(unit);
    }
  }
  return Status::OK();
}

void AnnotatedSample::EnableReservoir(uint64_t capacity, uint64_t seed) {
  reservoir_capacity_ = capacity;
  reservoir_.clear();
  reservoir_.reserve(capacity);
  reservoir_rng_.Reseed(seed);
}

void AnnotatedSample::Clear() {
  units_.clear();
  retain_units_ = true;
  reservoir_.clear();
  reservoir_capacity_ = 0;
  num_units_ = 0;
  num_triples_ = 0;
  num_correct_ = 0;
  entities_.clear();
  triples_.clear();
}

void AnnotatedSample::Add(const AnnotatedUnit& unit) {
  KGACC_DCHECK(unit.correct <= unit.drawn);
  if (retain_units_) {
    units_.push_back(unit);
  } else if (reservoir_capacity_ > 0) {
    // Algorithm R: unit i (0-based, = num_units_ pre-increment) enters a
    // full reservoir with probability capacity/(i+1), evicting a uniform
    // victim — every unit seen so far is in the reservoir equiprobably.
    if (reservoir_.size() < reservoir_capacity_) {
      reservoir_.push_back(unit);
    } else {
      const uint64_t j = reservoir_rng_.UniformInt(num_units_ + 1);
      if (j < reservoir_capacity_) reservoir_[j] = unit;
    }
  }
  ++num_units_;
  num_triples_ += unit.drawn;
  num_correct_ += unit.correct;
}

uint64_t AnnotatedSample::TripleKey(const TripleRef& ref) {
  // Clusters stay far below 2^40 and offsets below 2^24 in every supported
  // population (SYN 100M: 5M clusters, geometric sizes).
  KGACC_DCHECK(ref.offset < (uint64_t{1} << 24));
  KGACC_DCHECK(ref.cluster < (uint64_t{1} << 40));
  return (ref.cluster << 24) | ref.offset;
}

bool AnnotatedSample::MarkAnnotated(const TripleRef& ref) {
  entities_.insert(ref.cluster);
  return triples_.insert(TripleKey(ref));
}

}  // namespace kgacc
