#include "kgacc/sampling/sample.h"

#include "kgacc/util/check.h"

namespace kgacc {

void AnnotatedSample::Clear() {
  units_.clear();
  retain_units_ = true;
  num_units_ = 0;
  num_triples_ = 0;
  num_correct_ = 0;
  entities_.clear();
  triples_.clear();
}

void AnnotatedSample::Add(const AnnotatedUnit& unit) {
  KGACC_DCHECK(unit.correct <= unit.drawn);
  if (retain_units_) units_.push_back(unit);
  ++num_units_;
  num_triples_ += unit.drawn;
  num_correct_ += unit.correct;
}

uint64_t AnnotatedSample::TripleKey(const TripleRef& ref) {
  // Clusters stay far below 2^40 and offsets below 2^24 in every supported
  // population (SYN 100M: 5M clusters, geometric sizes).
  KGACC_DCHECK(ref.offset < (uint64_t{1} << 24));
  KGACC_DCHECK(ref.cluster < (uint64_t{1} << 40));
  return (ref.cluster << 24) | ref.offset;
}

bool AnnotatedSample::MarkAnnotated(const TripleRef& ref) {
  entities_.insert(ref.cluster);
  return triples_.insert(TripleKey(ref));
}

}  // namespace kgacc
