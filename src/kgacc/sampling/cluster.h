#ifndef KGACC_SAMPLING_CLUSTER_H_
#define KGACC_SAMPLING_CLUSTER_H_

#include <memory>

#include "kgacc/sampling/sampler.h"
#include "kgacc/util/flat_set.h"

/// \file cluster.h
/// Cluster sampling designs (§2.4 and the online-appendix extras):
///
/// * **TWCS** — Two-stage Weighted Cluster Sampling, the state of the art
///   for KG accuracy evaluation: stage 1 draws clusters with probability
///   proportional to size (PPS, with replacement); stage 2 draws
///   min{M_i, m} triples per sampled cluster by SRS without replacement.
/// * **WCS** — single-stage PPS cluster sampling that annotates whole
///   clusters (TWCS with m = infinity).
/// * **RCS** — uniform cluster sampling annotating whole clusters.
///
/// All three emit first-stage cluster units consumed by the Hansen-Hurwitz
/// style mean-of-cluster-accuracies estimator (Eq. 3).

namespace kgacc {

/// Configuration for `TwcsSampler`.
struct TwcsConfig {
  /// Clusters drawn per batch (first stage).
  int batch_clusters = 3;
  /// Second-stage cap m; each sampled cluster contributes min{M_i, m}
  /// triples. Gao et al. recommend m in {3, 5}.
  int second_stage_size = 3;
};

/// Two-stage weighted (PPS) cluster sampler.
class TwcsSampler final : public Sampler {
 public:
  /// Binds to `kg` and precomputes the PPS alias table (O(#clusters), done
  /// once and shared across Reset() calls).
  TwcsSampler(const KgView& kg, const TwcsConfig& config);
  ~TwcsSampler() override;

  Status NextBatch(Rng* rng, SampleBatch* batch) override;
  void Reset() override {}
  EstimatorKind estimator() const override { return EstimatorKind::kCluster; }
  const KgView& kg() const override { return kg_; }
  const char* name() const override { return "TWCS"; }
  /// Cheap: the clone shares the immutable PPS alias table.
  std::unique_ptr<Sampler> Clone() const override;

 private:
  TwcsSampler(const TwcsSampler&) = default;

  const KgView& kg_;
  TwcsConfig config_;
  std::shared_ptr<const AliasTable> alias_;
  FlatSet64 scratch_;  // Second-stage Floyd bookkeeping, reused per unit.
};

/// Configuration for the single-stage cluster samplers.
struct ClusterConfig {
  /// Clusters drawn per batch.
  int batch_clusters = 2;
};

/// Single-stage PPS cluster sampler annotating whole clusters (WCS).
class WcsSampler final : public Sampler {
 public:
  WcsSampler(const KgView& kg, const ClusterConfig& config);
  ~WcsSampler() override;

  Status NextBatch(Rng* rng, SampleBatch* batch) override;
  void Reset() override {}
  EstimatorKind estimator() const override { return EstimatorKind::kCluster; }
  const KgView& kg() const override { return kg_; }
  const char* name() const override { return "WCS"; }
  /// Cheap: the clone shares the immutable PPS alias table.
  std::unique_ptr<Sampler> Clone() const override;

 private:
  WcsSampler(const WcsSampler&) = default;

  const KgView& kg_;
  ClusterConfig config_;
  std::shared_ptr<const AliasTable> alias_;
};

/// Uniform (unweighted) cluster sampler annotating whole clusters (RCS).
/// Emitted units carry whole-cluster counts and advertise the unequal-size
/// ratio estimator (`EstimateRcs` / `EstimatorKind::kRcs`): the
/// per-cluster-accuracy mean is biased when cluster size correlates with
/// accuracy under uniform selection.
class RcsSampler final : public Sampler {
 public:
  RcsSampler(const KgView& kg, const ClusterConfig& config);

  Status NextBatch(Rng* rng, SampleBatch* batch) override;
  void Reset() override {}
  EstimatorKind estimator() const override { return EstimatorKind::kRcs; }
  const KgView& kg() const override { return kg_; }
  const char* name() const override { return "RCS"; }
  std::unique_ptr<Sampler> Clone() const override {
    return std::make_unique<RcsSampler>(kg_, config_);
  }

 private:
  const KgView& kg_;
  ClusterConfig config_;
};

namespace internal {

/// Builds the PPS alias table over cluster sizes. Shared by TWCS/WCS.
std::unique_ptr<AliasTable> BuildSizeAliasTable(const KgView& kg);

/// Draws min{M_i, m} second-stage offsets from a cluster by SRS without
/// replacement (the whole cluster when m >= M_i).
std::vector<uint64_t> DrawSecondStage(uint64_t cluster_size, int m, Rng* rng);

/// Allocation-lean variant for the samplers' hot loop: fills `*out`
/// (cleared first) and reuses `*scratch` across units instead of building
/// fresh containers per sampled unit. Identical Rng consumption and draw as
/// `DrawSecondStage`.
void DrawSecondStageInto(uint64_t cluster_size, int m, Rng* rng,
                         std::vector<uint64_t>* out, FlatSet64* scratch);

/// Appending variant for the flat `SampleBatch` representation: leaves the
/// existing elements of `*out` (the batch's shared offset buffer) in place
/// and writes the unit's draw at the tail. Identical Rng consumption and
/// draw as the other two.
void DrawSecondStageAppend(uint64_t cluster_size, int m, Rng* rng,
                           std::vector<uint64_t>* out, FlatSet64* scratch);

}  // namespace internal

}  // namespace kgacc

#endif  // KGACC_SAMPLING_CLUSTER_H_
