#ifndef KGACC_SAMPLING_STRATIFIED_H_
#define KGACC_SAMPLING_STRATIFIED_H_

#include <memory>
#include <vector>

#include "kgacc/sampling/sampler.h"

/// \file stratified.h
/// Stratified Simple Random Sampling (SSRS) over triples — one of the
/// additional designs of the paper's online appendix. Clusters are bucketed
/// into strata by size (a cheap structural proxy: extraction noise
/// correlates with entity degree), a fixed share of each batch is drawn
/// uniformly *within* each stratum (proportional allocation), and the
/// stratified estimator reweights by the population shares:
///
///   mu = sum_h W_h mu_h,   V = sum_h W_h^2 mu_h (1 - mu_h) / n_h,
///
/// with W_h = (stratum triples) / M. With proportional allocation the
/// variance never exceeds SRS and shrinks with between-stratum separation.

namespace kgacc {

/// Configuration for `StratifiedSampler`.
struct StratifiedConfig {
  /// Triples drawn per batch, split across strata proportionally.
  int batch_size = 10;
  /// Cluster-size boundaries separating strata: a cluster of size s belongs
  /// to stratum h where h is the first boundary with s <= boundary (the
  /// last stratum is unbounded). Default: singletons / small / large.
  std::vector<uint64_t> size_boundaries = {1, 3};
};

/// Stratified uniform triple sampler with proportional allocation.
class StratifiedSampler final : public Sampler {
 public:
  /// Binds to `kg` and builds the per-stratum triple index (O(#clusters)).
  StratifiedSampler(const KgView& kg, const StratifiedConfig& config);

  Status NextBatch(Rng* rng, SampleBatch* batch) override;
  /// Restores fresh-construction state (clears the fractional allocation
  /// carry-over, so a reset sampler replays the same stream as a clone).
  void Reset() override { carry_.assign(index_->strata.size(), 0.0); }
  EstimatorKind estimator() const override {
    return EstimatorKind::kStratified;
  }
  const KgView& kg() const override { return kg_; }
  const char* name() const override { return "SSRS"; }
  const std::vector<double>* stratum_weights() const override {
    return &index_->weights;
  }
  /// Cheap: the clone shares the immutable per-stratum triple index.
  std::unique_ptr<Sampler> Clone() const override;
  /// The fractional allocation carry per stratum.
  void SaveState(ByteWriter* w) const override;
  Status LoadState(ByteReader* r) override;

  /// Number of non-empty strata.
  size_t num_strata() const { return index_->strata.size(); }

 private:
  struct Stratum {
    /// Clusters in this stratum.
    std::vector<uint64_t> clusters;
    /// Prefix sums of cluster sizes for uniform triple draws.
    std::vector<uint64_t> prefix;
    uint64_t total_triples = 0;
  };
  /// The immutable stratification, shared across clones.
  struct Index {
    std::vector<Stratum> strata;
    std::vector<double> weights;   // W_h = stratum triples / M.
  };

  StratifiedSampler(const StratifiedSampler&) = default;

  const KgView& kg_;
  StratifiedConfig config_;
  std::shared_ptr<const Index> index_;
  std::vector<double> carry_;      // Fractional allocation carry-over.
};

}  // namespace kgacc

#endif  // KGACC_SAMPLING_STRATIFIED_H_
