#include "kgacc/sampling/cluster.h"

#include <algorithm>
#include <numeric>

#include "kgacc/util/check.h"

namespace kgacc {

namespace internal {

std::unique_ptr<AliasTable> BuildSizeAliasTable(const KgView& kg) {
  const uint64_t n = kg.num_clusters();
  std::vector<double> weights(n);
  for (uint64_t c = 0; c < n; ++c) {
    weights[c] = static_cast<double>(kg.cluster_size(c));
  }
  return std::make_unique<AliasTable>(weights);
}

std::vector<uint64_t> DrawSecondStage(uint64_t cluster_size, int m, Rng* rng) {
  std::vector<uint64_t> out;
  FlatSet64 scratch;
  DrawSecondStageInto(cluster_size, m, rng, &out, &scratch);
  return out;
}

void DrawSecondStageInto(uint64_t cluster_size, int m, Rng* rng,
                         std::vector<uint64_t>* out, FlatSet64* scratch) {
  out->clear();
  DrawSecondStageAppend(cluster_size, m, rng, out, scratch);
}

void DrawSecondStageAppend(uint64_t cluster_size, int m, Rng* rng,
                           std::vector<uint64_t>* out, FlatSet64* scratch) {
  KGACC_DCHECK(cluster_size >= 1);
  if (m <= 0 || static_cast<uint64_t>(m) >= cluster_size) {
    const size_t base = out->size();
    out->resize(base + cluster_size);
    std::iota(out->begin() + base, out->end(), 0);
    return;
  }
  SampleWithoutReplacementAppend(cluster_size, static_cast<uint64_t>(m), rng,
                                 out, scratch);
}

}  // namespace internal

TwcsSampler::TwcsSampler(const KgView& kg, const TwcsConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_clusters > 0);
  KGACC_CHECK(config_.second_stage_size > 0);
  alias_ = internal::BuildSizeAliasTable(kg_);
}

TwcsSampler::~TwcsSampler() = default;

std::unique_ptr<Sampler> TwcsSampler::Clone() const {
  return std::unique_ptr<Sampler>(new TwcsSampler(*this));
}

Status TwcsSampler::NextBatch(Rng* rng, SampleBatch* batch) {
  batch->Clear();
  batch->Reserve(config_.batch_clusters,
                 static_cast<size_t>(config_.batch_clusters) *
                     static_cast<size_t>(config_.second_stage_size));
  for (int i = 0; i < config_.batch_clusters; ++i) {
    const uint64_t cluster = alias_->Sample(rng);
    const uint64_t size = kg_.cluster_size(cluster);
    batch->OpenUnit(cluster, size, 0);
    internal::DrawSecondStageAppend(size, config_.second_stage_size, rng,
                                    batch->mutable_offset_buffer(), &scratch_);
    batch->CloseUnit();
  }
  return Status::OK();
}

WcsSampler::WcsSampler(const KgView& kg, const ClusterConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_clusters > 0);
  alias_ = internal::BuildSizeAliasTable(kg_);
}

WcsSampler::~WcsSampler() = default;

std::unique_ptr<Sampler> WcsSampler::Clone() const {
  return std::unique_ptr<Sampler>(new WcsSampler(*this));
}

Status WcsSampler::NextBatch(Rng* rng, SampleBatch* batch) {
  batch->Clear();
  for (int i = 0; i < config_.batch_clusters; ++i) {
    const uint64_t cluster = alias_->Sample(rng);
    const uint64_t size = kg_.cluster_size(cluster);
    batch->OpenUnit(cluster, size, 0);
    // Whole-cluster annotation: the offsets are the identity range.
    batch->AppendIota(size);
    batch->CloseUnit();
  }
  return Status::OK();
}

RcsSampler::RcsSampler(const KgView& kg, const ClusterConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_clusters > 0);
}

Status RcsSampler::NextBatch(Rng* rng, SampleBatch* batch) {
  batch->Clear();
  for (int i = 0; i < config_.batch_clusters; ++i) {
    const uint64_t cluster = rng->UniformInt(kg_.num_clusters());
    const uint64_t size = kg_.cluster_size(cluster);
    batch->OpenUnit(cluster, size, 0);
    // Whole-cluster annotation: the offsets are the identity range.
    batch->AppendIota(size);
    batch->CloseUnit();
  }
  return Status::OK();
}

}  // namespace kgacc
