#include "kgacc/sampling/cluster.h"

#include <algorithm>
#include <numeric>

#include "kgacc/util/check.h"

namespace kgacc {

namespace internal {

std::unique_ptr<AliasTable> BuildSizeAliasTable(const KgView& kg) {
  const uint64_t n = kg.num_clusters();
  std::vector<double> weights(n);
  for (uint64_t c = 0; c < n; ++c) {
    weights[c] = static_cast<double>(kg.cluster_size(c));
  }
  return std::make_unique<AliasTable>(weights);
}

std::vector<uint64_t> DrawSecondStage(uint64_t cluster_size, int m, Rng* rng) {
  std::vector<uint64_t> out;
  FlatSet64 scratch;
  DrawSecondStageInto(cluster_size, m, rng, &out, &scratch);
  return out;
}

void DrawSecondStageInto(uint64_t cluster_size, int m, Rng* rng,
                         std::vector<uint64_t>* out, FlatSet64* scratch) {
  KGACC_DCHECK(cluster_size >= 1);
  if (m <= 0 || static_cast<uint64_t>(m) >= cluster_size) {
    out->resize(cluster_size);
    std::iota(out->begin(), out->end(), 0);
    return;
  }
  SampleWithoutReplacementInto(cluster_size, static_cast<uint64_t>(m), rng,
                               out, scratch);
}

}  // namespace internal

TwcsSampler::TwcsSampler(const KgView& kg, const TwcsConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_clusters > 0);
  KGACC_CHECK(config_.second_stage_size > 0);
  alias_ = internal::BuildSizeAliasTable(kg_);
}

TwcsSampler::~TwcsSampler() = default;

std::unique_ptr<Sampler> TwcsSampler::Clone() const {
  return std::unique_ptr<Sampler>(new TwcsSampler(*this));
}

Result<SampleBatch> TwcsSampler::NextBatch(Rng* rng) {
  SampleBatch batch;
  batch.reserve(config_.batch_clusters);
  for (int i = 0; i < config_.batch_clusters; ++i) {
    const uint64_t cluster = alias_->Sample(rng);
    SampledUnit unit;
    unit.cluster = cluster;
    unit.cluster_population = kg_.cluster_size(cluster);
    unit.offsets.reserve(std::min<uint64_t>(
        unit.cluster_population,
        static_cast<uint64_t>(config_.second_stage_size)));
    internal::DrawSecondStageInto(unit.cluster_population,
                                  config_.second_stage_size, rng,
                                  &unit.offsets, &scratch_);
    batch.push_back(std::move(unit));
  }
  return batch;
}

WcsSampler::WcsSampler(const KgView& kg, const ClusterConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_clusters > 0);
  alias_ = internal::BuildSizeAliasTable(kg_);
}

WcsSampler::~WcsSampler() = default;

std::unique_ptr<Sampler> WcsSampler::Clone() const {
  return std::unique_ptr<Sampler>(new WcsSampler(*this));
}

Result<SampleBatch> WcsSampler::NextBatch(Rng* rng) {
  SampleBatch batch;
  batch.reserve(config_.batch_clusters);
  for (int i = 0; i < config_.batch_clusters; ++i) {
    const uint64_t cluster = alias_->Sample(rng);
    SampledUnit unit;
    unit.cluster = cluster;
    unit.cluster_population = kg_.cluster_size(cluster);
    // Whole-cluster annotation: the offsets are the identity range.
    unit.offsets.resize(unit.cluster_population);
    std::iota(unit.offsets.begin(), unit.offsets.end(), 0);
    batch.push_back(std::move(unit));
  }
  return batch;
}

RcsSampler::RcsSampler(const KgView& kg, const ClusterConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_clusters > 0);
}

Result<SampleBatch> RcsSampler::NextBatch(Rng* rng) {
  SampleBatch batch;
  batch.reserve(config_.batch_clusters);
  for (int i = 0; i < config_.batch_clusters; ++i) {
    const uint64_t cluster = rng->UniformInt(kg_.num_clusters());
    SampledUnit unit;
    unit.cluster = cluster;
    unit.cluster_population = kg_.cluster_size(cluster);
    // Whole-cluster annotation: the offsets are the identity range.
    unit.offsets.resize(unit.cluster_population);
    std::iota(unit.offsets.begin(), unit.offsets.end(), 0);
    batch.push_back(std::move(unit));
  }
  return batch;
}

}  // namespace kgacc
