#include "kgacc/sampling/stratified.h"

#include <algorithm>

#include "kgacc/util/check.h"
#include "kgacc/util/codec.h"

namespace kgacc {

void StratifiedSampler::SaveState(ByteWriter* w) const {
  w->PutVarint(carry_.size());
  for (const double c : carry_) w->PutDouble(c);
}

Status StratifiedSampler::LoadState(ByteReader* r) {
  KGACC_ASSIGN_OR_RETURN(const uint64_t strata, r->Varint());
  if (strata != index_->strata.size()) {
    return Status::InvalidArgument(
        "SSRS snapshot carries a different stratum count than the bound "
        "population");
  }
  carry_.assign(strata, 0.0);
  for (uint64_t h = 0; h < strata; ++h) {
    KGACC_ASSIGN_OR_RETURN(carry_[h], r->Double());
  }
  return Status::OK();
}

StratifiedSampler::StratifiedSampler(const KgView& kg,
                                     const StratifiedConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_size > 0);
  KGACC_CHECK(std::is_sorted(config_.size_boundaries.begin(),
                             config_.size_boundaries.end()));

  std::vector<Stratum> raw(config_.size_boundaries.size() + 1);
  for (uint64_t c = 0; c < kg_.num_clusters(); ++c) {
    const uint64_t size = kg_.cluster_size(c);
    size_t h = 0;
    while (h < config_.size_boundaries.size() &&
           size > config_.size_boundaries[h]) {
      ++h;
    }
    raw[h].clusters.push_back(c);
  }
  // Drop empty strata (their weight is zero and they cannot be sampled).
  auto index = std::make_shared<Index>();
  for (Stratum& s : raw) {
    if (s.clusters.empty()) continue;
    s.prefix.reserve(s.clusters.size() + 1);
    s.prefix.push_back(0);
    for (uint64_t c : s.clusters) {
      s.prefix.push_back(s.prefix.back() + kg_.cluster_size(c));
    }
    s.total_triples = s.prefix.back();
    index->strata.push_back(std::move(s));
  }
  KGACC_CHECK(!index->strata.empty());
  const double total = static_cast<double>(kg_.num_triples());
  index->weights.reserve(index->strata.size());
  for (const Stratum& s : index->strata) {
    index->weights.push_back(static_cast<double>(s.total_triples) / total);
  }
  index_ = std::move(index);
  carry_.assign(index_->strata.size(), 0.0);
}

std::unique_ptr<Sampler> StratifiedSampler::Clone() const {
  auto clone = std::unique_ptr<StratifiedSampler>(new StratifiedSampler(*this));
  clone->Reset();
  return clone;
}

Status StratifiedSampler::NextBatch(Rng* rng, SampleBatch* batch) {
  batch->Clear();
  batch->Reserve(config_.batch_size, config_.batch_size);
  for (size_t h = 0; h < index_->strata.size(); ++h) {
    // Proportional allocation with fractional carry-over so small strata
    // still receive their fair long-run share at small batch sizes.
    carry_[h] += index_->weights[h] * static_cast<double>(config_.batch_size);
    int draws = static_cast<int>(carry_[h]);
    carry_[h] -= draws;
    const Stratum& stratum = index_->strata[h];
    for (int i = 0; i < draws; ++i) {
      const uint64_t t = rng->UniformInt(stratum.total_triples);
      const auto it =
          std::upper_bound(stratum.prefix.begin(), stratum.prefix.end(), t);
      const size_t idx = static_cast<size_t>(it - stratum.prefix.begin()) - 1;
      const uint64_t cluster = stratum.clusters[idx];
      batch->AddSingleton(cluster, kg_.cluster_size(cluster),
                          static_cast<uint32_t>(h), t - stratum.prefix[idx]);
    }
  }
  return Status::OK();
}

}  // namespace kgacc
