#ifndef KGACC_SAMPLING_SYSTEMATIC_H_
#define KGACC_SAMPLING_SYSTEMATIC_H_

#include "kgacc/sampling/sampler.h"

/// \file systematic.h
/// Systematic sampling over the global triple order: a random start in
/// [0, skip) followed by equally spaced draws. A classic low-variance
/// alternative to SRS when the frame order is uncorrelated with the
/// response; since our frame enumerates triples cluster by cluster,
/// systematic draws also spread across entities, which depresses the
/// entity-identification cost slightly less than TWCS but more than SRS
/// with replacement. Uses the SRS estimator (standard practice; the true
/// systematic variance is not identifiable from one pass).

namespace kgacc {

/// Configuration for `SystematicSampler`.
struct SystematicConfig {
  /// Triples emitted per batch.
  int batch_size = 10;
  /// Sampling interval; each pass over the population draws every skip-th
  /// triple. Must be >= 1.
  uint64_t skip = 97;
};

/// Equal-interval triple sampler. Each Reset() draws a fresh random start;
/// consecutive batches continue the same sweep and wrap around with a new
/// random offset after exhausting a pass.
class SystematicSampler final : public Sampler {
 public:
  SystematicSampler(const KgView& kg, const SystematicConfig& config);

  Status NextBatch(Rng* rng, SampleBatch* batch) override;
  void Reset() override { position_ = kNotStarted; }
  EstimatorKind estimator() const override { return EstimatorKind::kSrs; }
  const KgView& kg() const override { return kg_; }
  const char* name() const override { return "SYS"; }
  std::unique_ptr<Sampler> Clone() const override {
    return std::make_unique<SystematicSampler>(kg_, config_);
  }
  /// The sweep position (kNotStarted before the first batch).
  void SaveState(ByteWriter* w) const override;
  Status LoadState(ByteReader* r) override;

 private:
  static constexpr uint64_t kNotStarted = ~uint64_t{0};

  const KgView& kg_;
  SystematicConfig config_;
  uint64_t position_ = kNotStarted;
};

}  // namespace kgacc

#endif  // KGACC_SAMPLING_SYSTEMATIC_H_
