#include "kgacc/sampling/systematic.h"

#include "kgacc/util/check.h"

namespace kgacc {

SystematicSampler::SystematicSampler(const KgView& kg,
                                     const SystematicConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_size > 0);
  KGACC_CHECK(config_.skip >= 1);
}

Result<SampleBatch> SystematicSampler::NextBatch(Rng* rng) {
  const uint64_t population = kg_.num_triples();
  SampleBatch batch;
  batch.reserve(config_.batch_size);
  for (int i = 0; i < config_.batch_size; ++i) {
    if (position_ == kNotStarted) {
      position_ = rng->UniformInt(std::min(config_.skip, population));
    } else {
      position_ += config_.skip;
      if (position_ >= population) {
        // New pass with a fresh random phase to stay unbiased.
        position_ = rng->UniformInt(std::min(config_.skip, population));
      }
    }
    const TripleRef ref = kg_.TripleAt(position_);
    SampledUnit unit;
    unit.cluster = ref.cluster;
    unit.cluster_population = kg_.cluster_size(ref.cluster);
    unit.offsets.push_back(ref.offset);
    batch.push_back(std::move(unit));
  }
  return batch;
}

}  // namespace kgacc
