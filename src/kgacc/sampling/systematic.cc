#include "kgacc/sampling/systematic.h"

#include "kgacc/util/check.h"
#include "kgacc/util/codec.h"

namespace kgacc {

void SystematicSampler::SaveState(ByteWriter* w) const {
  w->PutFixed64(position_);
}

Status SystematicSampler::LoadState(ByteReader* r) {
  KGACC_ASSIGN_OR_RETURN(position_, r->Fixed64());
  return Status::OK();
}

SystematicSampler::SystematicSampler(const KgView& kg,
                                     const SystematicConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_size > 0);
  KGACC_CHECK(config_.skip >= 1);
}

Status SystematicSampler::NextBatch(Rng* rng, SampleBatch* batch) {
  const uint64_t population = kg_.num_triples();
  batch->Clear();
  batch->Reserve(config_.batch_size, config_.batch_size);
  for (int i = 0; i < config_.batch_size; ++i) {
    if (position_ == kNotStarted) {
      position_ = rng->UniformInt(std::min(config_.skip, population));
    } else {
      position_ += config_.skip;
      if (position_ >= population) {
        // New pass with a fresh random phase to stay unbiased.
        position_ = rng->UniformInt(std::min(config_.skip, population));
      }
    }
    const TripleRef ref = kg_.TripleAt(position_);
    batch->AddSingleton(ref.cluster, kg_.cluster_size(ref.cluster), 0,
                        ref.offset);
  }
  return Status::OK();
}

}  // namespace kgacc
