#include "kgacc/sampling/srs.h"

#include "kgacc/util/check.h"
#include "kgacc/util/codec.h"

namespace kgacc {

void SrsSampler::SaveState(ByteWriter* w) const {
  SaveFlatSet64(drawn_, w);
}

Status SrsSampler::LoadState(ByteReader* r) {
  return LoadFlatSet64(r, &drawn_);
}

SrsSampler::SrsSampler(const KgView& kg, const SrsConfig& config)
    : kg_(kg), config_(config) {
  KGACC_CHECK(config_.batch_size > 0);
}

Status SrsSampler::NextBatch(Rng* rng, SampleBatch* batch) {
  batch->Clear();
  const uint64_t population = kg_.num_triples();
  for (int i = 0; i < config_.batch_size; ++i) {
    uint64_t index;
    if (config_.without_replacement) {
      if (drawn_.size() >= population) break;  // Exhausted.
      // Rejection sampling is cheap while the sampled fraction stays small;
      // evaluation runs sample far below 50% of any population.
      do {
        index = rng->UniformInt(population);
      } while (!drawn_.insert(index));
    } else {
      index = rng->UniformInt(population);
    }
    const TripleRef ref = kg_.TripleAt(index);
    batch->AddSingleton(ref.cluster, kg_.cluster_size(ref.cluster), 0,
                        ref.offset);
  }
  return Status::OK();
}

}  // namespace kgacc
