#ifndef KGACC_SAMPLING_SRS_H_
#define KGACC_SAMPLING_SRS_H_

#include "kgacc/sampling/sampler.h"
#include "kgacc/util/flat_set.h"

/// \file srs.h
/// Simple Random Sampling over triples (§2.4). Defaults to sampling with
/// replacement — for large KGs "a good approximation to sampling without
/// replacement and a practical solution" (the paper, citing Casella &
/// Berger) — with an optional exact without-replacement mode.

namespace kgacc {

/// Configuration for `SrsSampler`.
struct SrsConfig {
  /// Triples drawn per batch (phase 1 of the framework).
  int batch_size = 10;
  /// When true, previously drawn triples are excluded from future batches.
  bool without_replacement = false;
};

/// Uniform triple sampler.
class SrsSampler final : public Sampler {
 public:
  /// Binds to `kg`; the view must outlive the sampler.
  SrsSampler(const KgView& kg, const SrsConfig& config);

  Status NextBatch(Rng* rng, SampleBatch* batch) override;
  void Reset() override { drawn_.clear(); }
  EstimatorKind estimator() const override { return EstimatorKind::kSrs; }
  const KgView& kg() const override { return kg_; }
  const char* name() const override { return "SRS"; }
  std::unique_ptr<Sampler> Clone() const override {
    return std::make_unique<SrsSampler>(kg_, config_);
  }
  /// WOR bookkeeping: the set of already-drawn global indices.
  void SaveState(ByteWriter* w) const override;
  Status LoadState(ByteReader* r) override;

 private:
  const KgView& kg_;
  SrsConfig config_;
  FlatSet64 drawn_;  // Global indices (WOR mode only).
};

}  // namespace kgacc

#endif  // KGACC_SAMPLING_SRS_H_
