#include "kgacc/opt/newton_kkt.h"

#include <algorithm>
#include <cmath>

namespace kgacc {

namespace {

/// Residual-norm merit. The two equations should be scaled comparably by
/// the caller (the HPD system uses a probability-scale coverage residual
/// and a log-density-scale equality residual, both O(1) on the basin).
double Merit(const double r[2]) { return r[0] * r[0] + r[1] * r[1]; }

bool Finite2(const double r[2]) {
  return std::isfinite(r[0]) && std::isfinite(r[1]);
}

bool Finite4(const double j[4]) {
  return std::isfinite(j[0]) && std::isfinite(j[1]) && std::isfinite(j[2]) &&
         std::isfinite(j[3]);
}

}  // namespace

const char* NewtonKktStopName(NewtonKktStop reason) {
  switch (reason) {
    case NewtonKktStop::kConverged:
      return "converged";
    case NewtonKktStop::kMaxIterations:
      return "max-iterations";
    case NewtonKktStop::kSingularJacobian:
      return "singular-jacobian";
    case NewtonKktStop::kNonFinite:
      return "non-finite";
    case NewtonKktStop::kResidualGrowth:
      return "residual-growth";
    case NewtonKktStop::kPinnedAtBox:
      return "pinned-at-box";
  }
  return "unknown";
}

Result<NewtonKkt2Solve> SolveNewtonKkt2(const KktSystem2Fn& system, double x0,
                                        double x1,
                                        const NewtonKkt2Options& options) {
  if (!system) {
    return Status::InvalidArgument("NewtonKkt2: system callback is required");
  }
  if (!(options.lo < options.hi)) {
    return Status::InvalidArgument("NewtonKkt2: empty safeguarding box");
  }
  NewtonKkt2Solve out;
  out.x0 = std::clamp(x0, options.lo, options.hi);
  out.x1 = std::clamp(x1, options.lo, options.hi);
  if (!(out.x0 < out.x1)) {
    return Status::InvalidArgument(
        "NewtonKkt2: start does not satisfy x0 < x1 inside the box");
  }

  double r[2];
  double jac[4];
  system(out.x0, out.x1, r, jac);
  ++out.system_evals;
  double merit = Merit(r);
  int growth_iterations = 0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    out.iterations = iter;
    out.r0 = r[0];
    out.r1 = r[1];
    if (!Finite2(r) || !Finite4(jac) || !std::isfinite(merit)) {
      out.reason = NewtonKktStop::kNonFinite;
      return out;
    }
    if (std::fabs(r[0]) <= options.r0_tol &&
        std::fabs(r[1]) <= options.r1_tol) {
      out.converged = true;
      out.reason = NewtonKktStop::kConverged;
      return out;
    }

    // Newton step: J d = -r, solved in closed form.
    const double det = jac[0] * jac[3] - jac[1] * jac[2];
    const double scale =
        std::max({std::fabs(jac[0]) * std::fabs(jac[3]),
                  std::fabs(jac[1]) * std::fabs(jac[2]), 1e-300});
    if (std::fabs(det) <= 1e-14 * scale) {
      out.reason = NewtonKktStop::kSingularJacobian;
      return out;
    }
    const double d0 = (-r[0] * jac[3] + r[1] * jac[1]) / det;
    const double d1 = (-r[1] * jac[0] + r[0] * jac[2]) / det;
    if (!std::isfinite(d0) || !std::isfinite(d1)) {
      out.reason = NewtonKktStop::kNonFinite;
      return out;
    }

    // Damped acceptance: halve the step until the residual norm drops.
    // Trials are clamped into the box and must keep x0 < x1.
    double t = 1.0;
    bool accepted = false;
    double best_x0 = out.x0, best_x1 = out.x1;
    double trial_r[2];
    double trial_jac[4];
    bool clamped = false;
    for (int bt = 0; bt <= options.max_backtracks; ++bt, t *= 0.5) {
      const double raw0 = out.x0 + t * d0;
      const double raw1 = out.x1 + t * d1;
      const double c0 = std::clamp(raw0, options.lo, options.hi);
      const double c1 = std::clamp(raw1, options.lo, options.hi);
      if (!(c0 < c1)) continue;  // Endpoints crossed; shorten further.
      system(c0, c1, trial_r, trial_jac);
      ++out.system_evals;
      const double trial_merit = Merit(trial_r);
      if (std::isfinite(trial_merit) && trial_merit < merit) {
        best_x0 = c0;
        best_x1 = c1;
        clamped = (c0 != raw0) || (c1 != raw1);
        std::copy(trial_r, trial_r + 2, r);
        std::copy(trial_jac, trial_jac + 4, jac);
        merit = trial_merit;
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      if (++growth_iterations >= options.max_growth_iterations) {
        out.reason = NewtonKktStop::kResidualGrowth;
        return out;
      }
      // Retry from the same iterate with a perturbed (bisected) step: take
      // the smallest backtracked trial even though it grew, so the next
      // iteration sees a fresh Jacobian. Without movement the next round
      // would recompute the identical step, so this is the last chance
      // before kResidualGrowth fires above.
      const double tiny = std::ldexp(1.0, -options.max_backtracks);
      const double c0 =
          std::clamp(out.x0 + tiny * d0, options.lo, options.hi);
      const double c1 =
          std::clamp(out.x1 + tiny * d1, options.lo, options.hi);
      if (!(c0 < c1)) {
        out.reason = NewtonKktStop::kResidualGrowth;
        return out;
      }
      system(c0, c1, r, jac);
      ++out.system_evals;
      merit = Merit(r);
      out.x0 = c0;
      out.x1 = c1;
      continue;
    }
    growth_iterations = 0;
    out.x0 = best_x0;
    out.x1 = best_x1;
    out.r0 = r[0];
    out.r1 = r[1];
    // Re-test convergence on the accepted step: the final allowed
    // iteration (and a tolerant step that brushed the box) must not be
    // thrown away just because the loop is about to exit.
    if (std::fabs(r[0]) <= options.r0_tol &&
        std::fabs(r[1]) <= options.r1_tol) {
      out.converged = true;
      out.reason = NewtonKktStop::kConverged;
      return out;
    }
    // A step that ended on the box wall means the interior solution is not
    // reachable along this path; let the globalized fallback handle it.
    if (clamped &&
        (out.x0 <= options.lo || out.x1 >= options.hi)) {
      out.reason = NewtonKktStop::kPinnedAtBox;
      return out;
    }
  }
  out.r0 = r[0];
  out.r1 = r[1];
  // A growth-path (perturbed) step taken on the last iteration skips the
  // in-loop test; give its residuals the same final chance.
  if (Finite2(r) && std::fabs(r[0]) <= options.r0_tol &&
      std::fabs(r[1]) <= options.r1_tol) {
    out.converged = true;
    out.reason = NewtonKktStop::kConverged;
  } else {
    out.reason = NewtonKktStop::kMaxIterations;
  }
  return out;
}

}  // namespace kgacc
