#include "kgacc/opt/newton_kkt.h"

namespace kgacc {

const char* NewtonKktStopName(NewtonKktStop reason) {
  switch (reason) {
    case NewtonKktStop::kConverged:
      return "converged";
    case NewtonKktStop::kMaxIterations:
      return "max-iterations";
    case NewtonKktStop::kSingularJacobian:
      return "singular-jacobian";
    case NewtonKktStop::kNonFinite:
      return "non-finite";
    case NewtonKktStop::kResidualGrowth:
      return "residual-growth";
    case NewtonKktStop::kPinnedAtBox:
      return "pinned-at-box";
  }
  return "unknown";
}

Result<NewtonKkt2Solve> SolveNewtonKkt2(const KktSystem2Fn& system, double x0,
                                        double x1,
                                        const NewtonKkt2Options& options) {
  if (!system) {
    return Status::InvalidArgument("NewtonKkt2: system callback is required");
  }
  return internal::SolveNewtonKkt2Impl(system, x0, x1, options);
}

}  // namespace kgacc
