#ifndef KGACC_OPT_BRENT_H_
#define KGACC_OPT_BRENT_H_

#include <functional>

#include "kgacc/util/status.h"

/// \file brent.h
/// Derivative-free 1-D root finding and minimization (Brent's methods).
/// Used by the reference HPD solver (`HpdOneDim`), which reduces the
/// two-variable HPD problem to a 1-D width minimization, and as a fallback
/// inside the interval library.

namespace kgacc {

/// Result of a 1-D solve.
struct ScalarSolve {
  double x = 0.0;       ///< Located root / minimizer.
  double fx = 0.0;      ///< Function value at `x`.
  int iterations = 0;   ///< Iterations consumed.
};

/// Finds a root of `f` in [a, b] with Brent's method (inverse quadratic
/// interpolation + secant + bisection). Requires f(a) and f(b) to have
/// opposite signs (or one of them to be an exact root).
Result<ScalarSolve> FindRootBrent(const std::function<double(double)>& f,
                                  double a, double b, double tol = 1e-12,
                                  int max_iter = 200);

/// Minimizes `f` over [a, b] with Brent's parabolic-interpolation /
/// golden-section method. `f` should be unimodal on [a, b] for a global
/// guarantee; otherwise a local minimum is returned.
Result<ScalarSolve> MinimizeBrent(const std::function<double(double)>& f,
                                  double a, double b, double tol = 1e-10,
                                  int max_iter = 200);

}  // namespace kgacc

#endif  // KGACC_OPT_BRENT_H_
