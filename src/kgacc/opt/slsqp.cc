#include "kgacc/opt/slsqp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kgacc/util/check.h"

namespace kgacc {

namespace internal {

namespace {

/// Gaussian elimination with partial pivoting, consuming `a` and `b` in
/// place. The solvers below rebuild the KKT system every round anyway, so
/// destroying it here saves the two copies the value-parameter public
/// wrapper pays.
bool SolveLinearSystemDestructive(std::vector<double>& a,
                                  std::vector<double>& b, int n,
                                  std::vector<double>* x) {
  KGACC_DCHECK(static_cast<int>(a.size()) == n * n);
  KGACC_DCHECK(static_cast<int>(b.size()) == n);
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (int row = col + 1; row < n; ++row) {
      const double v = std::fabs(a[row * n + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (int j = 0; j < n; ++j) std::swap(a[col * n + j], a[pivot * n + j]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (int row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (int j = col; j < n; ++j) a[row * n + j] -= factor * a[col * n + j];
      b[row] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (int row = n - 1; row >= 0; --row) {
    double sum = b[row];
    for (int j = row + 1; j < n; ++j) sum -= a[row * n + j] * (*x)[j];
    (*x)[row] = sum / a[row * n + row];
  }
  return true;
}

}  // namespace

bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, int n,
                       std::vector<double>* x) {
  return SolveLinearSystemDestructive(a, b, n, x);
}

}  // namespace internal

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> NumericGradient(const VectorFn& f,
                                    const std::vector<double>& x, double h,
                                    const std::vector<double>& lo,
                                    const std::vector<double>& hi) {
  const int n = static_cast<int>(x.size());
  std::vector<double> g(n);
  std::vector<double> xp = x;
  for (int i = 0; i < n; ++i) {
    const double step = h * std::max(1.0, std::fabs(x[i]));
    double fwd = std::min(x[i] + step, hi.empty() ? kInf : hi[i]);
    double bwd = std::max(x[i] - step, lo.empty() ? -kInf : lo[i]);
    if (fwd == bwd) {  // Degenerate bound; widen inward.
      fwd = x[i];
    }
    xp[i] = fwd;
    const double f_fwd = f(xp);
    xp[i] = bwd;
    const double f_bwd = f(xp);
    xp[i] = x[i];
    g[i] = (f_fwd - f_bwd) / (fwd - bwd);
  }
  return g;
}

/// Scratch buffers for SolveQp, reused across QP rounds and outer SQP
/// iterations. The solver runs once per interval on the evaluation hot
/// path; without this every 2-variable QP round paid half a dozen small
/// heap allocations.
struct QpWorkspace {
  std::vector<char> pinned;
  std::vector<int> free_idx;
  std::vector<double> kkt;
  std::vector<double> rhs;
  std::vector<double> sol;
};

/// Computes the SQP search direction from the equality-constrained QP
///   min 0.5 d' B d + g' d   s.t.  A d = -c
/// with box handling suited to SQP globalization: variables sitting on a
/// bound whose unconstrained step points outward are *pinned* (d_i = 0) and
/// the system is re-solved; the caller additionally receives `alpha_cap`,
/// the largest step fraction keeping x + alpha d inside the box (ratio
/// test), so the line search never has to clamp and the direction stays a
/// true tangent direction of the linearized constraints.
///
/// `dl`/`du` are the step bounds lo - x / hi - x. `d_out`/`lambda_out` are
/// resized to n/m. Returns false when every KKT system encountered was
/// singular (caller falls back to steepest descent).
bool SolveQp(const std::vector<double>& bmat, const std::vector<double>& g,
             const std::vector<double>& amat, const std::vector<double>& c,
             const std::vector<double>& dl, const std::vector<double>& du,
             int n, int m, QpWorkspace* ws, std::vector<double>* d_out,
             std::vector<double>* lambda_out, double* alpha_cap) {
  constexpr double kAtBound = 1e-14;
  ws->pinned.assign(n, 0);
  std::vector<double>& d = *d_out;
  std::vector<double>& lambda = *lambda_out;
  d.assign(n, 0.0);
  lambda.assign(m, 0.0);

  for (int round = 0; round <= n; ++round) {
    ws->free_idx.clear();
    for (int i = 0; i < n; ++i) {
      if (!ws->pinned[i]) ws->free_idx.push_back(i);
    }
    const std::vector<int>& free_idx = ws->free_idx;
    const int nf = static_cast<int>(free_idx.size());
    const int dim = nf + m;
    std::fill(d.begin(), d.end(), 0.0);
    std::fill(lambda.begin(), lambda.end(), 0.0);

    if (nf == 0) {
      // Every variable is blocked by a bound: no feasible descent direction
      // from this iterate within the box.
      *alpha_cap = 1.0;
      return true;
    }

    ws->kkt.assign(dim * dim, 0.0);
    ws->rhs.assign(dim, 0.0);
    std::vector<double>& kkt = ws->kkt;
    std::vector<double>& rhs = ws->rhs;
    for (int r = 0; r < nf; ++r) {
      const int i = free_idx[r];
      for (int s = 0; s < nf; ++s) {
        kkt[r * dim + s] = bmat[i * n + free_idx[s]];
      }
      for (int k = 0; k < m; ++k) {
        kkt[r * dim + (nf + k)] = amat[k * n + i];
      }
      rhs[r] = -g[i];
    }
    for (int k = 0; k < m; ++k) {
      for (int s = 0; s < nf; ++s) {
        kkt[(nf + k) * dim + s] = amat[k * n + free_idx[s]];
      }
      rhs[nf + k] = -c[k];
    }
    if (!internal::SolveLinearSystemDestructive(kkt, rhs, dim, &ws->sol)) {
      if (round == 0 || nf == n) return false;
      // Pinning made the constraint rows rank-deficient; fall back to the
      // unpinned solution direction with a conservative cap.
      ws->pinned.assign(n, 0);
      continue;
    }
    const std::vector<double>& sol = ws->sol;
    for (int r = 0; r < nf; ++r) d[free_idx[r]] = sol[r];
    for (int k = 0; k < m; ++k) lambda[k] = sol[nf + k];

    // Pin any free variable that sits on a bound and pushes outward.
    bool newly_pinned = false;
    for (int r = 0; r < nf; ++r) {
      const int i = free_idx[r];
      if ((dl[i] >= -kAtBound && d[i] < 0.0) ||
          (du[i] <= kAtBound && d[i] > 0.0)) {
        ws->pinned[i] = 1;
        newly_pinned = true;
      }
    }
    if (newly_pinned) continue;

    // Ratio test: largest alpha with dl <= alpha d <= du for all i.
    double cap = 1.0;
    for (int i = 0; i < n; ++i) {
      if (d[i] > 0.0 && du[i] < d[i]) {
        cap = std::min(cap, du[i] / d[i]);
      } else if (d[i] < 0.0 && dl[i] > d[i]) {
        cap = std::min(cap, dl[i] / d[i]);
      }
    }
    *alpha_cap = std::max(cap, 0.0);
    return true;
  }
  return false;
}

}  // namespace

Result<SlsqpSolve> MinimizeSlsqp(const SlsqpProblem& problem,
                                 std::vector<double> x0,
                                 const SlsqpOptions& options) {
  if (!problem.objective) {
    return Status::InvalidArgument("SLSQP: objective is required");
  }
  const int n = static_cast<int>(x0.size());
  if (n == 0) return Status::InvalidArgument("SLSQP: empty start point");
  const int m = static_cast<int>(problem.eq_constraints.size());
  if (!problem.lower.empty() && static_cast<int>(problem.lower.size()) != n) {
    return Status::InvalidArgument("SLSQP: lower bound size mismatch");
  }
  if (!problem.upper.empty() && static_cast<int>(problem.upper.size()) != n) {
    return Status::InvalidArgument("SLSQP: upper bound size mismatch");
  }
  if (!problem.eq_gradients.empty() &&
      static_cast<int>(problem.eq_gradients.size()) != m) {
    return Status::InvalidArgument("SLSQP: constraint gradient count mismatch");
  }
  std::vector<double> lo(n, -kInf), hi(n, kInf);
  if (!problem.lower.empty()) lo = problem.lower;
  if (!problem.upper.empty()) hi = problem.upper;
  for (int i = 0; i < n; ++i) {
    if (lo[i] > hi[i]) {
      return Status::InvalidArgument("SLSQP: lower bound exceeds upper bound");
    }
    x0[i] = std::clamp(x0[i], lo[i], hi[i]);
  }

  auto eval_constraints_into = [&](const std::vector<double>& x,
                                   std::vector<double>* c) {
    c->resize(m);
    for (int k = 0; k < m; ++k) (*c)[k] = problem.eq_constraints[k](x);
  };
  auto eval_gradient = [&](const std::vector<double>& x) {
    if (problem.gradient) return problem.gradient(x);
    return NumericGradient(problem.objective, x, options.fd_step, lo, hi);
  };
  auto eval_jacobian = [&](const std::vector<double>& x) {
    std::vector<double> a(m * n);
    for (int k = 0; k < m; ++k) {
      std::vector<double> row;
      if (!problem.eq_gradients.empty() && problem.eq_gradients[k]) {
        row = problem.eq_gradients[k](x);
      } else {
        row = NumericGradient(problem.eq_constraints[k], x, options.fd_step,
                              lo, hi);
      }
      KGACC_CHECK(static_cast<int>(row.size()) == n);
      for (int i = 0; i < n; ++i) a[k * n + i] = row[i];
    }
    return a;
  };
  auto max_violation = [&](const std::vector<double>& c) {
    double v = 0.0;
    for (double ci : c) v = std::max(v, std::fabs(ci));
    return v;
  };

  std::vector<double> x = x0;
  double fx = problem.objective(x);
  std::vector<double> g = eval_gradient(x);
  std::vector<double> c;
  eval_constraints_into(x, &c);
  std::vector<double> amat = eval_jacobian(x);

  // Projected KKT stationarity ||g + A'lambda||_inf: a component blocked by
  // an active bound whose multiplier sign is consistent (pushing outward)
  // is stationary regardless of its raw value.
  auto kkt_residual = [&](const std::vector<double>& grad,
                          const std::vector<double>& jac,
                          const std::vector<double>& mult,
                          const std::vector<double>& at) {
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      double ri = grad[i];
      for (int k = 0; k < m; ++k) ri += mult[k] * jac[k * n + i];
      const bool at_lo = std::isfinite(lo[i]) &&
                         at[i] - lo[i] <= 1e-12 * (1.0 + std::fabs(lo[i]));
      const bool at_hi = std::isfinite(hi[i]) &&
                         hi[i] - at[i] <= 1e-12 * (1.0 + std::fabs(hi[i]));
      if ((at_lo && ri > 0.0) || (at_hi && ri < 0.0)) ri = 0.0;
      worst = std::max(worst, std::fabs(ri));
    }
    return worst;
  };

  // BFGS model of the Lagrangian Hessian: the caller's warm-started model
  // when one was supplied (and well-formed), identity otherwise.
  std::vector<double> bmat(n * n, 0.0);
  bool warm_hessian = false;
  if (options.initial_hessian != nullptr &&
      static_cast<int>(options.initial_hessian->size()) == n * n) {
    warm_hessian = true;
    for (double v : *options.initial_hessian) {
      if (!std::isfinite(v)) {
        warm_hessian = false;
        break;
      }
    }
    if (warm_hessian) bmat = *options.initial_hessian;
  }
  if (!warm_hessian) {
    for (int i = 0; i < n; ++i) bmat[i * n + i] = 1.0;
  }

  double penalty = 1.0;
  SlsqpSolve out;

  // Iteration-invariant buffers, hoisted so the loop below (and the QP
  // solves inside it) run allocation-free after the first pass.
  QpWorkspace qp_ws;
  // `lambda` starts zeroed so the stationarity report at the exits below
  // stays well-defined even when the loop never runs (max_iterations <= 0).
  std::vector<double> dl(n), du(n), d, lambda(m, 0.0);
  std::vector<double> x_new(n), c_new;
  std::vector<double> s(n), y(n), bs(n);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // QP step bounds: keep x + d inside the box.
    for (int i = 0; i < n; ++i) {
      dl[i] = lo[i] - x[i];
      du[i] = hi[i] - x[i];
    }
    double alpha_cap = 1.0;
    if (!SolveQp(bmat, g, amat, c, dl, du, n, m, &qp_ws, &d, &lambda,
                 &alpha_cap)) {
      // Degenerate model: take a small feasible steepest-descent step.
      d.assign(n, 0.0);
      for (int i = 0; i < n; ++i) {
        d[i] = std::clamp(-0.1 * g[i], dl[i], du[i]);
      }
      lambda.assign(m, 0.0);
    }

    double step_norm = 0.0;
    for (double di : d) step_norm = std::max(step_norm, std::fabs(di));
    const double viol = max_violation(c);
    const double kkt = kkt_residual(g, amat, lambda, x);
    if (step_norm < options.step_tol && viol < options.constraint_tol &&
        (options.stationarity_tol <= 0.0 ||
         kkt < options.stationarity_tol)) {
      out.x = x;
      out.fx = fx;
      out.max_violation = viol;
      out.kkt_residual = kkt;
      out.iterations = iter;
      out.converged = true;
      out.hessian = std::move(bmat);
      return out;
    }

    // L1 exact-penalty merit with Powell's penalty update.
    double lambda_max = 0.0;
    for (double lk : lambda) lambda_max = std::max(lambda_max, std::fabs(lk));
    penalty = std::max(penalty, 2.0 * lambda_max + 1.0);

    auto merit = [&](double f_val, const std::vector<double>& c_val) {
      double phi = f_val;
      for (double ci : c_val) phi += penalty * std::fabs(ci);
      return phi;
    };
    const double phi0 = merit(fx, c);
    // Directional-derivative upper bound: g'd - penalty * ||c||_1.
    double dphi = 0.0;
    for (int i = 0; i < n; ++i) dphi += g[i] * d[i];
    for (double ci : c) dphi -= penalty * std::fabs(ci);

    double alpha = alpha_cap > 0.0 ? alpha_cap : 1.0;
    double f_new = fx;
    c_new = c;
    bool accepted = false;
    for (int ls = 0; ls < 30; ++ls) {
      for (int i = 0; i < n; ++i) {
        x_new[i] = std::clamp(x[i] + alpha * d[i], lo[i], hi[i]);
      }
      f_new = problem.objective(x_new);
      eval_constraints_into(x_new, &c_new);
      const double phi_new = merit(f_new, c_new);
      if (phi_new <= phi0 + 1e-4 * alpha * std::min(dphi, 0.0) ||
          phi_new < phi0 - 1e-16) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      // Line search failed: either we are at a merit-stationary point or the
      // model is bad. Report what we have; a merit-stationary iterate only
      // counts as converged when it is feasible, near-stationary in step,
      // AND (when enabled) KKT-stationary — short-step alone is not a
      // certificate.
      out.x = x;
      out.fx = fx;
      out.max_violation = viol;
      out.kkt_residual = kkt;
      out.iterations = iter;
      out.converged = viol < options.constraint_tol && step_norm < 1e-6 &&
                      (options.stationarity_tol <= 0.0 ||
                       kkt < options.stationarity_tol);
      out.hessian = std::move(bmat);
      return out;
    }

    // Damped BFGS update with the Lagrangian gradient difference.
    std::vector<double> g_new = eval_gradient(x_new);
    std::vector<double> a_new = eval_jacobian(x_new);
    for (int i = 0; i < n; ++i) s[i] = x_new[i] - x[i];
    for (int i = 0; i < n; ++i) {
      double grad_l_new = g_new[i];
      double grad_l_old = g[i];
      for (int k = 0; k < m; ++k) {
        grad_l_new += lambda[k] * a_new[k * n + i];
        grad_l_old += lambda[k] * amat[k * n + i];
      }
      y[i] = grad_l_new - grad_l_old;
    }
    double sy = 0.0, s_bs = 0.0;
    std::fill(bs.begin(), bs.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) bs[i] += bmat[i * n + j] * s[j];
    }
    for (int i = 0; i < n; ++i) {
      sy += s[i] * y[i];
      s_bs += s[i] * bs[i];
    }
    if (s_bs > 1e-16) {
      if (sy < 0.2 * s_bs) {
        const double theta = 0.8 * s_bs / (s_bs - sy);
        for (int i = 0; i < n; ++i) {
          y[i] = theta * y[i] + (1.0 - theta) * bs[i];
        }
        sy = 0.0;
        for (int i = 0; i < n; ++i) sy += s[i] * y[i];
      }
      if (sy > 1e-16) {
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < n; ++j) {
            bmat[i * n + j] +=
                y[i] * y[j] / sy - bs[i] * bs[j] / s_bs;
          }
        }
      }
    }

    x = x_new;
    fx = f_new;
    g = std::move(g_new);
    std::swap(c, c_new);
    amat = std::move(a_new);
  }

  out.x = x;
  out.fx = fx;
  out.max_violation = max_violation(c);
  // The loop's lambda belongs to the QP solved at the *previous* iterate;
  // report stationarity at the final x with the least-squares multiplier
  // estimate argmin ||g + A'lambda|| instead (solve (A A') lambda = -A g).
  if (m > 0) {
    std::vector<double> aat(m * m, 0.0);
    std::vector<double> rhs(m, 0.0);
    for (int k = 0; k < m; ++k) {
      for (int j = 0; j < m; ++j) {
        for (int i = 0; i < n; ++i) {
          aat[k * m + j] += amat[k * n + i] * amat[j * n + i];
        }
      }
      for (int i = 0; i < n; ++i) rhs[k] -= amat[k * n + i] * g[i];
    }
    std::vector<double> ls_lambda;
    if (internal::SolveLinearSystem(std::move(aat), std::move(rhs), m,
                                    &ls_lambda)) {
      lambda = std::move(ls_lambda);
    }
  }
  out.kkt_residual = kkt_residual(g, amat, lambda, x);
  out.iterations = options.max_iterations;
  out.converged = false;
  out.hessian = std::move(bmat);
  return out;
}

}  // namespace kgacc
