#ifndef KGACC_OPT_NEWTON_KKT_H_
#define KGACC_OPT_NEWTON_KKT_H_

#include <functional>

#include "kgacc/util/status.h"

/// \file newton_kkt.h
/// A damped Newton solver for 2-equation KKT systems R(x0, x1) = 0 with an
/// analytic Jacobian, box safeguarding, and a convergence certificate.
///
/// Built for the unimodal HPD program of §4.3: the minimizer of
/// {min u - l s.t. F(u) - F(l) = 1 - alpha} is characterized by the
/// first-order system {F(u) - F(l) = 1 - alpha, f(l) = f(u)}, whose
/// Jacobian entries are ±f and ±(log f)' — both cheap for a Beta
/// posterior. Newton on that system converges in a handful of iterations
/// (two CDF and two PDF evaluations each) where the general SQP pays
/// ~25 coverage-constraint evaluations per solve. The solver itself is
/// problem-agnostic: callers supply the residual/Jacobian evaluation.
///
/// It is a *basin* method, not a globalized one: when the iteration leaves
/// the basin (non-finite step, repeated residual growth, an endpoint
/// pinned at the box) it reports the reason instead of grinding, and the
/// caller falls back to a globalized solver (SLSQP for HPD).

namespace kgacc {

/// Evaluates the system at (x0, x1): writes the two residuals into `r` and
/// the row-major 2x2 Jacobian dR_i/dx_j into `jac`.
using KktSystem2Fn =
    std::function<void(double x0, double x1, double* r, double* jac)>;

/// Why the iteration stopped.
enum class NewtonKktStop {
  kConverged,
  /// Residual tolerances unmet after `max_iterations`.
  kMaxIterations,
  /// The 2x2 Jacobian was singular to working precision.
  kSingularJacobian,
  /// A residual, Jacobian entry, or step turned non-finite.
  kNonFinite,
  /// The damped step failed to reduce the residual norm for
  /// `max_growth_iterations` consecutive iterations.
  kResidualGrowth,
  /// An endpoint sat on the safeguarding box after a step — the solution
  /// of the intended (interior) problem is not in reach from here.
  kPinnedAtBox,
};

const char* NewtonKktStopName(NewtonKktStop reason);

struct NewtonKkt2Options {
  int max_iterations = 32;
  /// Per-equation absolute residual tolerances (the certificate below
  /// reports the final residuals against these).
  double r0_tol = 1e-12;
  double r1_tol = 1e-9;
  /// Safeguarding box applied to both variables; iterates additionally
  /// keep x0 < x1.
  double lo = 0.0;
  double hi = 1.0;
  /// Backtracking halvings per iteration before the step counts as a
  /// residual-growth iteration.
  int max_backtracks = 10;
  /// Consecutive no-decrease iterations tolerated before giving up.
  int max_growth_iterations = 2;
};

/// Outcome of a solve. `converged` iff both residual tolerances were met;
/// (r0, r1) are the residuals at (x0, x1) either way — the convergence
/// certificate a caller can audit instead of trusting the flag.
struct NewtonKkt2Solve {
  double x0 = 0.0;
  double x1 = 0.0;
  double r0 = 0.0;
  double r1 = 0.0;
  int iterations = 0;
  /// System (residual + Jacobian) evaluations consumed, including line
  /// search trials.
  int system_evals = 0;
  bool converged = false;
  NewtonKktStop reason = NewtonKktStop::kMaxIterations;
};

/// Runs the damped Newton iteration from (x0, x1), clamped into the box
/// first. Returns an error only for malformed input (no system, empty box,
/// x0 >= x1 after clamping); leaving the basin is reported through
/// `NewtonKkt2Solve::reason`, not as an error.
Result<NewtonKkt2Solve> SolveNewtonKkt2(const KktSystem2Fn& system, double x0,
                                        double x1,
                                        const NewtonKkt2Options& options = {});

}  // namespace kgacc

#endif  // KGACC_OPT_NEWTON_KKT_H_
