#ifndef KGACC_OPT_NEWTON_KKT_H_
#define KGACC_OPT_NEWTON_KKT_H_

#include <algorithm>
#include <cmath>
#include <concepts>
#include <functional>

#include "kgacc/util/status.h"

/// \file newton_kkt.h
/// A damped Newton solver for 2-equation KKT systems R(x0, x1) = 0 with an
/// analytic Jacobian, box safeguarding, and a convergence certificate.
///
/// Built for the unimodal HPD program of §4.3: the minimizer of
/// {min u - l s.t. F(u) - F(l) = 1 - alpha} is characterized by the
/// first-order system {F(u) - F(l) = 1 - alpha, f(l) = f(u)}, whose
/// Jacobian entries are ±f and ±(log f)' — both cheap for a Beta
/// posterior. Newton on that system converges in a handful of iterations
/// (two CDF and two PDF evaluations each) where the general SQP pays
/// ~25 coverage-constraint evaluations per solve. The solver itself is
/// problem-agnostic: callers supply the residual/Jacobian evaluation.
///
/// The solver is a template over that callable, so the hot path passes a
/// lambda directly and the iteration inlines with zero heap allocations —
/// this is what extends the evaluation session's steady-state
/// zero-allocation contract into the interval layer (a `std::function`
/// here cost one type-erasure allocation per HPD solve). A `KktSystem2Fn`
/// overload remains for callers that want runtime polymorphism.
///
/// It is a *basin* method, not a globalized one: when the iteration leaves
/// the basin (non-finite step, repeated residual growth, an endpoint
/// pinned at the box) it reports the reason instead of grinding, and the
/// caller falls back to a globalized solver (SLSQP for HPD).

namespace kgacc {

/// Evaluates the system at (x0, x1): writes the two residuals into `r` and
/// the row-major 2x2 Jacobian dR_i/dx_j into `jac`. Type-erased form; the
/// template entry point accepts any callable with this signature.
using KktSystem2Fn =
    std::function<void(double x0, double x1, double* r, double* jac)>;

/// Why the iteration stopped.
enum class NewtonKktStop {
  kConverged,
  /// Residual tolerances unmet after `max_iterations`.
  kMaxIterations,
  /// The 2x2 Jacobian was singular to working precision.
  kSingularJacobian,
  /// A residual, Jacobian entry, or step turned non-finite.
  kNonFinite,
  /// The damped step failed to reduce the residual norm for
  /// `max_growth_iterations` consecutive iterations.
  kResidualGrowth,
  /// An endpoint sat on the safeguarding box after a step — the solution
  /// of the intended (interior) problem is not in reach from here.
  kPinnedAtBox,
};

const char* NewtonKktStopName(NewtonKktStop reason);

struct NewtonKkt2Options {
  int max_iterations = 32;
  /// Per-equation absolute residual tolerances (the certificate below
  /// reports the final residuals against these).
  double r0_tol = 1e-12;
  double r1_tol = 1e-9;
  /// Safeguarding box applied to both variables; iterates additionally
  /// keep x0 < x1.
  double lo = 0.0;
  double hi = 1.0;
  /// Backtracking halvings per iteration before the step counts as a
  /// residual-growth iteration.
  int max_backtracks = 10;
  /// Consecutive no-decrease iterations tolerated before giving up.
  int max_growth_iterations = 2;
};

/// Outcome of a solve. `converged` iff both residual tolerances were met;
/// (r0, r1) are the residuals at (x0, x1) either way — the convergence
/// certificate a caller can audit instead of trusting the flag.
struct NewtonKkt2Solve {
  double x0 = 0.0;
  double x1 = 0.0;
  double r0 = 0.0;
  double r1 = 0.0;
  int iterations = 0;
  /// System (residual + Jacobian) evaluations consumed, including line
  /// search trials.
  int system_evals = 0;
  bool converged = false;
  NewtonKktStop reason = NewtonKktStop::kMaxIterations;
};

namespace internal {

/// Residual-norm merit. The two equations should be scaled comparably by
/// the caller (the HPD system uses a probability-scale coverage residual
/// and a log-density-scale equality residual, both O(1) on the basin).
inline double NewtonKktMerit(const double r[2]) {
  return r[0] * r[0] + r[1] * r[1];
}

inline bool NewtonKktFinite2(const double r[2]) {
  return std::isfinite(r[0]) && std::isfinite(r[1]);
}

inline bool NewtonKktFinite4(const double j[4]) {
  return std::isfinite(j[0]) && std::isfinite(j[1]) && std::isfinite(j[2]) &&
         std::isfinite(j[3]);
}

/// The damped Newton iteration, generic over the system callable. Direct
/// calls go through the public entry points below.
template <typename SystemFn>
Result<NewtonKkt2Solve> SolveNewtonKkt2Impl(const SystemFn& system, double x0,
                                            double x1,
                                            const NewtonKkt2Options& options) {
  if (!(options.lo < options.hi)) {
    return Status::InvalidArgument("NewtonKkt2: empty safeguarding box");
  }
  NewtonKkt2Solve out;
  out.x0 = std::clamp(x0, options.lo, options.hi);
  out.x1 = std::clamp(x1, options.lo, options.hi);
  if (!(out.x0 < out.x1)) {
    return Status::InvalidArgument(
        "NewtonKkt2: start does not satisfy x0 < x1 inside the box");
  }

  double r[2];
  double jac[4];
  system(out.x0, out.x1, r, jac);
  ++out.system_evals;
  double merit = NewtonKktMerit(r);
  int growth_iterations = 0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    out.iterations = iter;
    out.r0 = r[0];
    out.r1 = r[1];
    if (!NewtonKktFinite2(r) || !NewtonKktFinite4(jac) ||
        !std::isfinite(merit)) {
      out.reason = NewtonKktStop::kNonFinite;
      return out;
    }
    if (std::fabs(r[0]) <= options.r0_tol &&
        std::fabs(r[1]) <= options.r1_tol) {
      out.converged = true;
      out.reason = NewtonKktStop::kConverged;
      return out;
    }

    // Newton step: J d = -r, solved in closed form.
    const double det = jac[0] * jac[3] - jac[1] * jac[2];
    const double scale =
        std::max({std::fabs(jac[0]) * std::fabs(jac[3]),
                  std::fabs(jac[1]) * std::fabs(jac[2]), 1e-300});
    if (std::fabs(det) <= 1e-14 * scale) {
      out.reason = NewtonKktStop::kSingularJacobian;
      return out;
    }
    const double d0 = (-r[0] * jac[3] + r[1] * jac[1]) / det;
    const double d1 = (-r[1] * jac[0] + r[0] * jac[2]) / det;
    if (!std::isfinite(d0) || !std::isfinite(d1)) {
      out.reason = NewtonKktStop::kNonFinite;
      return out;
    }

    // Damped acceptance: halve the step until the residual norm drops.
    // Trials are clamped into the box and must keep x0 < x1.
    double t = 1.0;
    bool accepted = false;
    double best_x0 = out.x0, best_x1 = out.x1;
    double trial_r[2];
    double trial_jac[4];
    bool clamped = false;
    for (int bt = 0; bt <= options.max_backtracks; ++bt, t *= 0.5) {
      const double raw0 = out.x0 + t * d0;
      const double raw1 = out.x1 + t * d1;
      const double c0 = std::clamp(raw0, options.lo, options.hi);
      const double c1 = std::clamp(raw1, options.lo, options.hi);
      if (!(c0 < c1)) continue;  // Endpoints crossed; shorten further.
      system(c0, c1, trial_r, trial_jac);
      ++out.system_evals;
      const double trial_merit = NewtonKktMerit(trial_r);
      if (std::isfinite(trial_merit) && trial_merit < merit) {
        best_x0 = c0;
        best_x1 = c1;
        clamped = (c0 != raw0) || (c1 != raw1);
        std::copy(trial_r, trial_r + 2, r);
        std::copy(trial_jac, trial_jac + 4, jac);
        merit = trial_merit;
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      if (++growth_iterations >= options.max_growth_iterations) {
        out.reason = NewtonKktStop::kResidualGrowth;
        return out;
      }
      // Retry from the same iterate with a perturbed (bisected) step: take
      // the smallest backtracked trial even though it grew, so the next
      // iteration sees a fresh Jacobian. Without movement the next round
      // would recompute the identical step, so this is the last chance
      // before kResidualGrowth fires above.
      const double tiny = std::ldexp(1.0, -options.max_backtracks);
      const double c0 =
          std::clamp(out.x0 + tiny * d0, options.lo, options.hi);
      const double c1 =
          std::clamp(out.x1 + tiny * d1, options.lo, options.hi);
      if (!(c0 < c1)) {
        out.reason = NewtonKktStop::kResidualGrowth;
        return out;
      }
      system(c0, c1, r, jac);
      ++out.system_evals;
      merit = NewtonKktMerit(r);
      out.x0 = c0;
      out.x1 = c1;
      continue;
    }
    growth_iterations = 0;
    out.x0 = best_x0;
    out.x1 = best_x1;
    out.r0 = r[0];
    out.r1 = r[1];
    // Re-test convergence on the accepted step: the final allowed
    // iteration (and a tolerant step that brushed the box) must not be
    // thrown away just because the loop is about to exit.
    if (std::fabs(r[0]) <= options.r0_tol &&
        std::fabs(r[1]) <= options.r1_tol) {
      out.converged = true;
      out.reason = NewtonKktStop::kConverged;
      return out;
    }
    // A step that ended on the box wall means the interior solution is not
    // reachable along this path; let the globalized fallback handle it.
    if (clamped &&
        (out.x0 <= options.lo || out.x1 >= options.hi)) {
      out.reason = NewtonKktStop::kPinnedAtBox;
      return out;
    }
  }
  out.r0 = r[0];
  out.r1 = r[1];
  // A growth-path (perturbed) step taken on the last iteration skips the
  // in-loop test; give its residuals the same final chance.
  if (NewtonKktFinite2(r) && std::fabs(r[0]) <= options.r0_tol &&
      std::fabs(r[1]) <= options.r1_tol) {
    out.converged = true;
    out.reason = NewtonKktStop::kConverged;
  } else {
    out.reason = NewtonKktStop::kMaxIterations;
  }
  return out;
}

}  // namespace internal

/// Runs the damped Newton iteration from (x0, x1), clamped into the box
/// first. Returns an error only for malformed input (no system, empty box,
/// x0 >= x1 after clamping); leaving the basin is reported through
/// `NewtonKkt2Solve::reason`, not as an error.
///
/// Generic entry point: `system` is any callable `void(double x0, double
/// x1, double* r, double* jac)`, invoked directly (no type erasure, no
/// allocation). Exact-signature `KktSystem2Fn` arguments resolve to the
/// non-template overload below instead, which adds a null check.
template <typename SystemFn>
  requires std::invocable<const SystemFn&, double, double, double*, double*>
Result<NewtonKkt2Solve> SolveNewtonKkt2(const SystemFn& system, double x0,
                                        double x1,
                                        const NewtonKkt2Options& options = {}) {
  return internal::SolveNewtonKkt2Impl(system, x0, x1, options);
}

/// Type-erased overload (rejects an empty `std::function`).
Result<NewtonKkt2Solve> SolveNewtonKkt2(const KktSystem2Fn& system, double x0,
                                        double x1,
                                        const NewtonKkt2Options& options = {});

}  // namespace kgacc

#endif  // KGACC_OPT_NEWTON_KKT_H_
