#ifndef KGACC_OPT_SLSQP_H_
#define KGACC_OPT_SLSQP_H_

#include <functional>
#include <vector>

#include "kgacc/util/status.h"

/// \file slsqp.h
/// A dense Sequential Least-SQuares Programming (SLSQP-style) solver for
/// small smooth problems with equality constraints and box bounds:
///
///     minimize    f(x)
///     subject to  c_i(x) = 0,  lo <= x <= hi
///
/// This is the optimizer the paper prescribes for computing HPD credible
/// intervals (§4.3, Kraft 1988): each outer iteration solves a quadratic
/// subproblem whose objective is a damped-BFGS second-order model of the
/// Lagrangian and whose constraints are linearizations of the originals,
/// globalized with an L1 exact-penalty merit line search.
///
/// Designed for the low-dimensional problems arising here (n <= ~16); all
/// linear algebra is dense with partial pivoting.

namespace kgacc {

/// A scalar function of a vector argument.
using VectorFn = std::function<double(const std::vector<double>&)>;

/// Problem definition for MinimizeSlsqp. Gradients/Jacobians are optional;
/// when absent they are approximated with central finite differences.
struct SlsqpProblem {
  VectorFn objective;
  /// Optional analytic gradient of the objective.
  std::function<std::vector<double>(const std::vector<double>&)> gradient;
  /// Equality constraints c_i(x) = 0.
  std::vector<VectorFn> eq_constraints;
  /// Optional analytic gradients of each equality constraint.
  std::vector<std::function<std::vector<double>(const std::vector<double>&)>>
      eq_gradients;
  /// Box bounds; empty means unbounded in that direction.
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Tuning knobs for the solver.
struct SlsqpOptions {
  int max_iterations = 100;
  /// Step-size convergence threshold (infinity norm of the step).
  double step_tol = 1e-11;
  /// Feasibility threshold on max |c_i(x)|.
  double constraint_tol = 1e-10;
  /// KKT stationarity threshold on the projected Lagrangian gradient
  /// ||g + A'lambda||_inf (components blocked by an active bound with a
  /// correctly signed multiplier are projected out). When positive,
  /// convergence additionally requires stationarity — a short step alone
  /// no longer counts, which matters when a warm start lands the first
  /// iterate within `step_tol` of itself without being a solution.
  /// 0 disables the test (legacy short-step behavior); leave it disabled
  /// for finite-difference gradients, whose noise floor sits near any
  /// useful threshold.
  double stationarity_tol = 0.0;
  /// Relative step for finite-difference derivatives.
  double fd_step = 1e-7;
  /// Optional warm start for the BFGS model of the Lagrangian Hessian
  /// (row-major n x n, symmetric positive definite); identity when null.
  /// Pair with `SlsqpSolve::hessian` to carry curvature across a sequence
  /// of slowly moving solves instead of rebuilding it from scratch each
  /// time. Not owned; must outlive the call.
  const std::vector<double>* initial_hessian = nullptr;
};

/// Outcome of an SLSQP solve.
struct SlsqpSolve {
  std::vector<double> x;          ///< Final iterate.
  double fx = 0.0;                ///< Objective at `x`.
  double max_violation = 0.0;     ///< max |c_i(x)| at `x`.
  double kkt_residual = 0.0;      ///< Projected ||g + A'lambda||_inf at `x`.
  int iterations = 0;             ///< Outer iterations used.
  bool converged = false;         ///< True if every enabled tolerance was met.
  /// Final BFGS model of the Lagrangian Hessian (row-major n x n); feed it
  /// to `SlsqpOptions::initial_hessian` of a nearby follow-up solve.
  std::vector<double> hessian;
};

/// Runs the SQP iteration from `x0` (clamped into the bounds first).
/// Returns an error for malformed problems (no objective, inconsistent
/// bound sizes); an unconverged-but-finite run is reported through
/// `SlsqpSolve::converged`, not as an error.
Result<SlsqpSolve> MinimizeSlsqp(const SlsqpProblem& problem,
                                 std::vector<double> x0,
                                 const SlsqpOptions& options = {});

namespace internal {

/// Solves the dense linear system `a * x = b` (row-major n x n) in place
/// with partial pivoting. Returns false when the matrix is singular to
/// working precision. Exposed for unit testing.
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, int n,
                       std::vector<double>* x);

}  // namespace internal

}  // namespace kgacc

#endif  // KGACC_OPT_SLSQP_H_
