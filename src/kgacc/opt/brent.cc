#include "kgacc/opt/brent.h"

#include <cmath>

namespace kgacc {

Result<ScalarSolve> FindRootBrent(const std::function<double(double)>& f,
                                  double a, double b, double tol,
                                  int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return ScalarSolve{a, 0.0, 0};
  if (fb == 0.0) return ScalarSolve{b, 0.0, 0};
  if ((fa > 0.0) == (fb > 0.0)) {
    return Status::InvalidArgument("FindRootBrent: f(a), f(b) same sign");
  }

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 1; iter <= max_iter; ++iter) {
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = e = b - a;
    }
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::fabs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) {
      return ScalarSolve{b, fb, iter};
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      double p, q, r;
      const double s = fb / fa;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        q = fa / fc;
        r = fb / fc;
        p = s * (2.0 * xm * q * (q - r) - (b - a) * (r - 1.0));
        q = (q - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < (min1 < min2 ? min1 : min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::fabs(d) > tol1) {
      b += d;
    } else {
      b += (xm > 0.0 ? tol1 : -tol1);
    }
    fb = f(b);
  }
  return ScalarSolve{b, fb, max_iter};
}

Result<ScalarSolve> MinimizeBrent(const std::function<double(double)>& f,
                                  double a, double b, double tol,
                                  int max_iter) {
  if (!(a < b)) {
    return Status::InvalidArgument("MinimizeBrent: requires a < b");
  }
  const double golden = 0.3819660112501051;
  double x = a + golden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (int iter = 1; iter <= max_iter; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = tol * std::fabs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) {
      return ScalarSolve{x, fx, iter};
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Fit a parabola through (x, fx), (w, fw), (v, fv).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double etemp = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * etemp) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (xm - x >= 0.0 ? tol1 : -tol1);
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm ? a - x : b - x);
      d = golden * e;
    }
    const double u =
        (std::fabs(d) >= tol1 ? x + d : x + (d >= 0.0 ? tol1 : -tol1));
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  return ScalarSolve{x, fx, max_iter};
}

}  // namespace kgacc
