#include "kgacc/store/annotation_store.h"

#include <algorithm>

#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

namespace kgacc {

namespace {

/// WAL frame types owned by the annotation store.
constexpr uint8_t kAnnotationFrame = 1;
constexpr uint8_t kCheckpointFrame = 2;

}  // namespace

uint64_t AnnotationStore::Key(uint64_t cluster, uint64_t offset) {
  // Same packing invariant as AnnotatedSample::TripleKey: offsets stay
  // below 2^24 and clusters below 2^40 in every supported population.
  KGACC_DCHECK(offset < (uint64_t{1} << 24));
  KGACC_DCHECK(cluster < (uint64_t{1} << 40));
  return (cluster << 24) | offset;
}

Status AnnotationStore::Replay(uint8_t type,
                               std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  switch (type) {
    case kAnnotationFrame: {
      KGACC_ASSIGN_OR_RETURN(const uint64_t audit_id, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t seq, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t cluster, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t offset, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const bool label, reader.Bool());
      (void)audit_id;
      const uint64_t key = Key(cluster, offset);
      if (labeled_.insert(key) && label) correct_.insert(key);
      next_seq_ = std::max(next_seq_, seq + 1);
      ++stats_.records_replayed;
      return Status::OK();
    }
    case kCheckpointFrame: {
      KGACC_ASSIGN_OR_RETURN(const uint64_t audit_id, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const std::span<const uint8_t> snapshot,
                             reader.LengthPrefixed());
      std::vector<uint8_t> copy(snapshot.begin(), snapshot.end());
      for (auto& [id, bytes] : checkpoints_) {
        if (id == audit_id) {
          bytes = std::move(copy);
          ++stats_.checkpoints_replayed;
          return Status::OK();
        }
      }
      checkpoints_.emplace_back(audit_id, std::move(copy));
      ++stats_.checkpoints_replayed;
      return Status::OK();
    }
    default:
      return Status::IoError("annotation store: unknown WAL frame type " +
                             std::to_string(int(type)));
  }
}

Result<std::unique_ptr<AnnotationStore>> AnnotationStore::Open(
    const std::string& path, const Options& options) {
  std::unique_ptr<AnnotationStore> store(new AnnotationStore(options));
  KGACC_ASSIGN_OR_RETURN(
      store->log_,
      WriteAheadLog::Open(
          path,
          [&store](uint8_t type, std::span<const uint8_t> payload) {
            return store->Replay(type, payload);
          },
          &store->stats_.recovery));
  return store;
}

std::optional<bool> AnnotationStore::Lookup(uint64_t cluster,
                                            uint64_t offset) const {
  const uint64_t key = Key(cluster, offset);
  if (!labeled_.contains(key)) return std::nullopt;
  return correct_.contains(key);
}

Status AnnotationStore::Append(uint64_t audit_id, uint64_t cluster,
                               uint64_t offset, bool label) {
  const uint64_t key = Key(cluster, offset);
  if (labeled_.contains(key)) {
    if (correct_.contains(key) == label) return Status::OK();  // Idempotent.
    return Status::FailedPrecondition(
        "annotation store: conflicting label for an already-stored triple "
        "(stored judgments are immutable)");
  }
  // Transient-injection site: fires *before* the WAL write, so unlike a
  // real sticky WAL failure the store heals when the policy does.
  if (FailpointHit("store.append")) {
    return Status::IoError(
        "injected annotation append failure (failpoint store.append)");
  }
  ByteWriter record;
  record.PutVarint(audit_id);
  record.PutVarint(next_seq_);
  record.PutVarint(cluster);
  record.PutVarint(offset);
  record.PutBool(label);
  // Log first, index second: the WAL is the source of truth, and an append
  // failure must leave the index claiming nothing the log cannot replay.
  KGACC_RETURN_IF_ERROR(log_->Append(kAnnotationFrame, record.span()));
  ++next_seq_;
  labeled_.insert(key);
  if (label) correct_.insert(key);
  return Status::OK();
}

Status AnnotationStore::AppendCheckpoint(uint64_t audit_id,
                                         std::span<const uint8_t> snapshot) {
  if (FailpointHit("store.checkpoint")) {
    return Status::IoError(
        "injected checkpoint append failure (failpoint store.checkpoint)");
  }
  ByteWriter record;
  record.PutVarint(audit_id);
  record.PutLengthPrefixed(snapshot);
  KGACC_RETURN_IF_ERROR(log_->Append(kCheckpointFrame, record.span()));
  if (options_.sync_checkpoints) KGACC_RETURN_IF_ERROR(log_->Sync());
  std::vector<uint8_t> copy(snapshot.begin(), snapshot.end());
  for (auto& [id, bytes] : checkpoints_) {
    if (id == audit_id) {
      bytes = std::move(copy);
      return Status::OK();
    }
  }
  checkpoints_.emplace_back(audit_id, std::move(copy));
  return Status::OK();
}

const std::vector<uint8_t>* AnnotationStore::LatestCheckpoint(
    uint64_t audit_id) const {
  for (const auto& [id, bytes] : checkpoints_) {
    if (id == audit_id) return &bytes;
  }
  return nullptr;
}

bool StoredAnnotator::Annotate(const KgView& kg, const TripleRef& ref,
                               Rng* rng) {
  const std::optional<bool> stored = store_->Lookup(ref.cluster, ref.offset);
  if (stored.has_value()) {
    ++store_hits_;
    // Opt-in Rng parity: consume what the inner annotator would have
    // drawn, so stored and bare runs share one random path bit for bit.
    if (options_.burn_rng_on_hits) inner_->BurnRngDraws(rng);
    return *stored;
  }
  const bool label = inner_->Annotate(kg, ref, rng);
  ++oracle_calls_;
  PersistLabel(ref, label);
  return label;
}

void StoredAnnotator::PersistLabel(const TripleRef& ref, bool label) {
  if (degraded_) {
    // Read-only mode: the label was still served to the evaluation, it
    // just is not durable. A resumed run re-judges it identically.
    ++labels_dropped_;
    return;
  }
  if (!status_.ok()) return;  // Fail-fast already tripped; stop appending.
  const Status append = RetryWithBackoff(
      options_.backoff,
      [&] { return store_->Append(audit_id_, ref.cluster, ref.offset, label); },
      &retries_);
  if (append.ok()) return;
  if (IsTransientError(append) &&
      options_.write_error_mode == WriteErrorMode::kDegrade) {
    degraded_ = true;
    degraded_cause_ = append;
    ++labels_dropped_;
    return;
  }
  // Fail-fast mode, or a permanent error (conflicting label) in any mode.
  status_ = append;
}

uint32_t StoredAnnotator::AnnotateUnit(const KgView& kg, uint64_t cluster,
                                       std::span<const uint64_t> offsets,
                                       Rng* rng) {
  // Per-triple loop (the base-class contract): each offset is individually
  // a store hit or an inner judgment — a unit can be half-stored when a
  // previous audit drew an overlapping second stage.
  uint32_t correct = 0;
  for (const uint64_t offset : offsets) {
    correct += Annotate(kg, TripleRef{cluster, offset}, rng) ? 1 : 0;
  }
  return correct;
}

}  // namespace kgacc
