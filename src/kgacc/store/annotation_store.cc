#include "kgacc/store/annotation_store.h"

#include <unistd.h>

#include <algorithm>

#include "kgacc/store/log_format.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"
#include "kgacc/util/random.h"

namespace kgacc {

uint64_t AnnotationStore::Key(uint64_t cluster, uint64_t offset) {
  // Same packing invariant as AnnotatedSample::TripleKey: offsets stay
  // below 2^24 and clusters below 2^40 in every supported population.
  KGACC_DCHECK(offset < (uint64_t{1} << 24));
  KGACC_DCHECK(cluster < (uint64_t{1} << 40));
  return (cluster << 24) | offset;
}

AnnotationStore::Shard& AnnotationStore::ShardFor(uint64_t key) {
  return shards_[Mix64(key) & (kNumShards - 1)];
}

const AnnotationStore::Shard& AnnotationStore::ShardFor(uint64_t key) const {
  return shards_[Mix64(key) & (kNumShards - 1)];
}

Status AnnotationStore::Replay(uint8_t type,
                               std::span<const uint8_t> payload) {
  // Open-time only: single-threaded, so the shard locks are not taken. The
  // byte accounting mirrors what the live append path records.
  const uint64_t frame_bytes = walfmt::FrameBytesOnDisk(payload.size());
  file_bytes_ += frame_bytes;
  ByteReader reader(payload);
  switch (type) {
    case walfmt::kAnnotationFrame: {
      KGACC_ASSIGN_OR_RETURN(const uint64_t audit_id, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t seq, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t cluster, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t offset, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const bool label, reader.Bool());
      (void)audit_id;
      const uint64_t key = Key(cluster, offset);
      Shard& shard = ShardFor(key);
      if (shard.labeled.insert(key)) {
        if (label) shard.correct.insert(key);
      } else {
        // A duplicate record (benign append race); its bytes are garbage.
        garbage_bytes_ += frame_bytes;
      }
      next_seq_ = std::max(next_seq_.load(std::memory_order_relaxed), seq + 1);
      ++stats_.records_replayed;
      break;
    }
    case walfmt::kCheckpointFrame: {
      KGACC_ASSIGN_OR_RETURN(const uint64_t audit_id, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const std::span<const uint8_t> snapshot,
                             reader.LengthPrefixed());
      std::vector<uint8_t> copy(snapshot.begin(), snapshot.end());
      ++stats_.checkpoints_replayed;
      for (CheckpointEntry& entry : checkpoints_) {
        if (entry.audit_id == audit_id) {
          garbage_bytes_ += entry.frame_bytes;  // The old frame is dead.
          entry.snapshot = std::move(copy);
          entry.frame_bytes = frame_bytes;
          replay_crc_.Extend(payload);
          return Status::OK();
        }
      }
      checkpoints_.push_back({audit_id, std::move(copy), frame_bytes});
      break;
    }
    case walfmt::kTenantLedgerFrame: {
      // Cumulative totals, latest-wins per tenant: a superseded frame's
      // bytes are garbage, exactly like a replaced checkpoint.
      KGACC_ASSIGN_OR_RETURN(const std::string tenant, reader.String());
      KGACC_ASSIGN_OR_RETURN(const uint64_t oracle_spent, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t store_bytes, reader.Varint());
      ++stats_.ledgers_replayed;
      for (LedgerEntry& entry : ledgers_) {
        if (entry.balance.tenant == tenant) {
          garbage_bytes_ += entry.frame_bytes;  // The old frame is dead.
          entry.balance.oracle_spent = oracle_spent;
          entry.balance.store_bytes = store_bytes;
          entry.frame_bytes = frame_bytes;
          replay_crc_.Extend(payload);
          return Status::OK();
        }
      }
      ledgers_.push_back({{tenant, oracle_spent, store_bytes}, frame_bytes});
      break;
    }
    case walfmt::kCompactionTrailerFrame: {
      // The trailer seals a compacted log: every frame before it must be
      // exactly the live set the rewrite emitted, in order. Verify the
      // counts and the chained payload CRC — a lost, duplicated, or
      // reordered frame in the rewritten region fails loudly here instead
      // of resurfacing as a silently different resume.
      KGACC_ASSIGN_OR_RETURN(const uint64_t version, reader.Varint());
      if (version != 1 && version != 2) {
        return Status::IoError(
            "annotation store: unknown compaction trailer version " +
            std::to_string(version));
      }
      KGACC_ASSIGN_OR_RETURN(const uint64_t records, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint64_t checkpoints, reader.Varint());
      // v2 adds the tenant-ledger count; a v1 trailer was written before
      // ledger frames existed, so its rewritten region holds none.
      uint64_t ledgers = 0;
      if (version >= 2) {
        KGACC_ASSIGN_OR_RETURN(ledgers, reader.Varint());
      }
      KGACC_ASSIGN_OR_RETURN(const uint64_t carried_next_seq, reader.Varint());
      KGACC_ASSIGN_OR_RETURN(const uint32_t live_crc, reader.Fixed32());
      if (records != stats_.records_replayed ||
          checkpoints != stats_.checkpoints_replayed ||
          ledgers != stats_.ledgers_replayed) {
        return Status::IoError(
            "annotation store: compaction trailer frame counts disagree with "
            "the rewritten log (incomplete or reordered rewrite)");
      }
      if (live_crc != replay_crc_.value()) {
        return Status::IoError(
            "annotation store: compaction trailer live-CRC mismatch "
            "(rewritten log corrupted)");
      }
      next_seq_ = std::max(next_seq_.load(std::memory_order_relaxed),
                           carried_next_seq);
      ++stats_.trailers_replayed;
      break;
    }
    default:
      return Status::IoError("annotation store: unknown WAL frame type " +
                             std::to_string(int(type)));
  }
  replay_crc_.Extend(payload);
  return Status::OK();
}

Result<std::unique_ptr<AnnotationStore>> AnnotationStore::Open(
    const std::string& path, const Options& options) {
  // A `.compact` temp means a compaction died before its rename: the old
  // log at `path` is authoritative and the partial rewrite is trash.
  ::unlink((path + ".compact").c_str());

  std::unique_ptr<AnnotationStore> store(new AnnotationStore(options));
  store->path_ = path;
  KGACC_ASSIGN_OR_RETURN(
      store->log_,
      WriteAheadLog::Open(
          path,
          [&store](uint8_t type, std::span<const uint8_t> payload) {
            return store->Replay(type, payload);
          },
          &store->stats_.recovery));
  // The header is counted from the recovered size, not per-frame replay.
  store->file_bytes_ = store->log_->size_bytes();
  return store;
}

AnnotationStore::~AnnotationStore() = default;

std::optional<bool> AnnotationStore::Lookup(uint64_t cluster,
                                            uint64_t offset) const {
  const uint64_t key = Key(cluster, offset);
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.labeled.contains(key)) return std::nullopt;
  return shard.correct.contains(key);
}

Status AnnotationStore::CommitFrame(uint8_t type,
                                    std::span<const uint8_t> payload,
                                    bool sync,
                                    const std::function<void()>& apply) {
  Commit req;
  req.type = type;
  req.payload = payload;
  req.sync = sync;
  req.apply = &apply;

  std::unique_lock<std::mutex> lock(commit_mu_);
  if (!log_lost_.ok()) return log_lost_;
  commit_queue_.push_back(&req);
  // Wait until a leader settles this frame, or until this thread is the
  // queue head with no leader active — then it *is* the leader.
  while (!req.done &&
         (leader_active_ || commit_queue_.front() != &req)) {
    commit_cv_.wait(lock);
  }
  if (!req.done) {
    leader_active_ = true;
    std::vector<Commit*> batch;
    batch.swap(commit_queue_);
    lock.unlock();

    // Write the whole batch, then settle it under one flush — and one
    // fsync when any member asked for media durability. Later writers keep
    // enqueueing meanwhile; the next leader picks them up.
    bool want_sync = false;
    for (Commit* c : batch) {
      c->status = log_->AppendFrame(c->type, c->payload);
      if (c->status.ok() && c->sync) want_sync = true;
    }
    const Status settle = want_sync ? log_->Sync() : log_->Flush();

    lock.lock();
    ++gc_stats_.batches;
    ++gc_stats_.flushes;
    if (want_sync) ++gc_stats_.syncs;
    gc_stats_.frames += batch.size();
    gc_stats_.max_batch_frames =
        std::max(gc_stats_.max_batch_frames, uint64_t{batch.size()});
    // The leader runs every member's index/accounting apply itself, still
    // under the commit lock, in batch (= log frame) order, before marking
    // anything done. Two invariants hang on this:
    //
    //  * apply order is exactly replay order — when two frames race the
    //    same key, the one the log will replay first is also the one the
    //    in-memory index keeps, so callers are told the same winner a
    //    post-crash reopen would produce;
    //  * once `leader_active_` clears with an empty queue the index is in
    //    step with the log, so that is a sufficient quiesce predicate for
    //    `Compact()`. Deferring apply to each follower would leave a
    //    window where a settled frame is in the log but not the index —
    //    a compaction sneaking in there would rewrite a log omitting a
    //    durably acknowledged record.
    //
    // Each member's stack (and thus its apply closure) stays alive while
    // this runs: followers are still blocked waiting for `done`.
    for (Commit* c : batch) {
      // An unflushed frame is not durable: a failed settle fails every
      // member whose write "succeeded" into the stdio buffer.
      if (c->status.ok() && !settle.ok()) c->status = settle;
      if (c->status.ok() && c->apply != nullptr && *c->apply) (*c->apply)();
      c->done = true;
    }
    leader_active_ = false;
    commit_cv_.notify_all();
  }
  return req.status;
}

Status AnnotationStore::Append(uint64_t audit_id, uint64_t cluster,
                               uint64_t offset, bool label,
                               uint64_t* appended_bytes) {
  if (appended_bytes != nullptr) *appended_bytes = 0;
  const uint64_t key = Key(cluster, offset);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.labeled.contains(key)) {
      if (shard.correct.contains(key) == label) {
        return Status::OK();  // Idempotent.
      }
      return Status::FailedPrecondition(
          "annotation store: conflicting label for an already-stored triple "
          "(stored judgments are immutable)");
    }
  }
  // Transient-injection site: fires *before* the WAL write, so unlike a
  // real sticky WAL failure the store heals when the policy does.
  if (FailpointHit("store.append")) {
    return Status::IoError(
        "injected annotation append failure (failpoint store.append)");
  }
  ByteWriter record;
  record.PutVarint(audit_id);
  record.PutVarint(next_seq_.fetch_add(1, std::memory_order_relaxed));
  record.PutVarint(cluster);
  record.PutVarint(offset);
  record.PutBool(label);
  // Log first, index second: the WAL is the source of truth, and an append
  // failure must leave the index claiming nothing the log cannot replay.
  const uint64_t frame_bytes = walfmt::FrameBytesOnDisk(record.size());
  Status conflict;
  KGACC_RETURN_IF_ERROR(CommitFrame(
      walfmt::kAnnotationFrame, record.span(), options_.sync_appends, [&] {
        file_bytes_ += frame_bytes;
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.labeled.insert(key)) {
          if (label) shard.correct.insert(key);
        } else {
          // Two writers raced the same novel key past the pre-check; both
          // frames are in the log, the first apply won and replay agrees
          // (first record wins), so this frame is garbage bytes. If the
          // winner stored the *opposite* label this caller must not be
          // told OK — what replay produces is the winner's label — so the
          // race surfaces the same FailedPrecondition serial callers get.
          garbage_bytes_ += frame_bytes;
          if (shard.correct.contains(key) != label) {
            conflict = Status::FailedPrecondition(
                "annotation store: conflicting label for an already-stored "
                "triple (stored judgments are immutable)");
          }
        }
      }));
  KGACC_RETURN_IF_ERROR(conflict);
  // The frame hit the log even when a racing writer won the index (the
  // loser's bytes are garbage but they are still this caller's bytes).
  if (appended_bytes != nullptr) *appended_bytes = frame_bytes;
  MaybeAutoCompact();
  return Status::OK();
}

Status AnnotationStore::AppendCheckpoint(uint64_t audit_id,
                                         std::span<const uint8_t> snapshot,
                                         uint64_t* appended_bytes) {
  if (appended_bytes != nullptr) *appended_bytes = 0;
  if (FailpointHit("store.checkpoint")) {
    return Status::IoError(
        "injected checkpoint append failure (failpoint store.checkpoint)");
  }
  ByteWriter record;
  record.PutVarint(audit_id);
  record.PutLengthPrefixed(snapshot);
  const uint64_t frame_bytes = walfmt::FrameBytesOnDisk(record.size());
  KGACC_RETURN_IF_ERROR(CommitFrame(
      walfmt::kCheckpointFrame, record.span(), options_.sync_checkpoints,
      [&] {
        file_bytes_ += frame_bytes;
        std::vector<uint8_t> copy(snapshot.begin(), snapshot.end());
        std::lock_guard<std::mutex> lock(checkpoints_mu_);
        for (CheckpointEntry& entry : checkpoints_) {
          if (entry.audit_id == audit_id) {
            garbage_bytes_ += entry.frame_bytes;  // Superseded frame.
            entry.snapshot = std::move(copy);
            entry.frame_bytes = frame_bytes;
            return;
          }
        }
        checkpoints_.push_back({audit_id, std::move(copy), frame_bytes});
      }));
  if (appended_bytes != nullptr) *appended_bytes = frame_bytes;
  MaybeAutoCompact();
  return Status::OK();
}

Status AnnotationStore::AppendTenantSpend(const std::string& tenant,
                                          uint64_t oracle_delta,
                                          uint64_t store_bytes_delta) {
  // Serialized per store: the frame carries the cumulative total, so the
  // read-balance → encode → commit sequence must not interleave with a
  // concurrent spend for the same tenant (see ledger_append_mu_).
  std::lock_guard<std::mutex> append_lock(ledger_append_mu_);
  // Shares the annotation-append failpoint: a ledger append *is* an
  // append, and the chaos tests arm one site to hit both.
  if (FailpointHit("store.append")) {
    return Status::IoError(
        "injected tenant ledger append failure (failpoint store.append)");
  }
  uint64_t oracle_total = oracle_delta;
  uint64_t bytes_total = store_bytes_delta;
  {
    std::lock_guard<std::mutex> lock(ledgers_mu_);
    for (const LedgerEntry& entry : ledgers_) {
      if (entry.balance.tenant == tenant) {
        oracle_total += entry.balance.oracle_spent;
        bytes_total += entry.balance.store_bytes;
        break;
      }
    }
  }
  ByteWriter record;
  record.PutString(tenant);
  record.PutVarint(oracle_total);
  record.PutVarint(bytes_total);
  const uint64_t frame_bytes = walfmt::FrameBytesOnDisk(record.size());
  KGACC_RETURN_IF_ERROR(CommitFrame(
      walfmt::kTenantLedgerFrame, record.span(), options_.sync_appends, [&] {
        file_bytes_ += frame_bytes;
        std::lock_guard<std::mutex> lock(ledgers_mu_);
        for (LedgerEntry& entry : ledgers_) {
          if (entry.balance.tenant == tenant) {
            garbage_bytes_ += entry.frame_bytes;  // Superseded frame.
            entry.balance.oracle_spent = oracle_total;
            entry.balance.store_bytes = bytes_total;
            entry.frame_bytes = frame_bytes;
            return;
          }
        }
        ledgers_.push_back({{tenant, oracle_total, bytes_total}, frame_bytes});
      }));
  MaybeAutoCompact();
  return Status::OK();
}

std::vector<TenantBalance> AnnotationStore::TenantBalances() const {
  std::vector<TenantBalance> out;
  {
    std::lock_guard<std::mutex> lock(ledgers_mu_);
    out.reserve(ledgers_.size());
    for (const LedgerEntry& entry : ledgers_) out.push_back(entry.balance);
  }
  std::sort(out.begin(), out.end(),
            [](const TenantBalance& a, const TenantBalance& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

std::optional<TenantBalance> AnnotationStore::TenantBalanceFor(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(ledgers_mu_);
  for (const LedgerEntry& entry : ledgers_) {
    if (entry.balance.tenant == tenant) return entry.balance;
  }
  return std::nullopt;
}

std::optional<std::vector<uint8_t>> AnnotationStore::LatestCheckpoint(
    uint64_t audit_id) const {
  // Copied out under the lock: any audit's first AppendCheckpoint can grow
  // `checkpoints_` and reallocate, so a pointer into an entry is unsafe to
  // hand across the lock boundary.
  std::lock_guard<std::mutex> lock(checkpoints_mu_);
  for (const CheckpointEntry& entry : checkpoints_) {
    if (entry.audit_id == audit_id) return entry.snapshot;
  }
  return std::nullopt;
}

double AnnotationStore::GarbageRatioLocked() const {
  if (file_bytes_ == 0) return 0.0;
  return static_cast<double>(garbage_bytes_) /
         static_cast<double>(file_bytes_);
}

double AnnotationStore::garbage_ratio() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return GarbageRatioLocked();
}

uint64_t AnnotationStore::file_bytes() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return file_bytes_;
}

uint64_t AnnotationStore::live_bytes() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return file_bytes_ - garbage_bytes_;
}

GroupCommitStats AnnotationStore::group_commit_stats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return gc_stats_;
}

CompactionStats AnnotationStore::compaction_stats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return compaction_stats_;
}

uint64_t AnnotationStore::num_labeled() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.labeled.size();
  }
  return total;
}

void AnnotationStore::MaybeAutoCompact() {
  if (options_.auto_compact_garbage_ratio <= 0.0) return;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    if (file_bytes_ < options_.auto_compact_min_bytes) return;
    if (GarbageRatioLocked() < options_.auto_compact_garbage_ratio) return;
  }
  // Best-effort: a failed compaction (injected or real) must never fail
  // the append that happened to trip the threshold — the store keeps
  // running on whichever log the failure left installed, and the next
  // threshold crossing retries.
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    ++compaction_stats_.auto_compactions;
  }
  (void)Compact();
}

Status AnnotationStore::Flush() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!log_lost_.ok()) return log_lost_;
  return log_->Flush();
}

Status AnnotationStore::Sync() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!log_lost_.ok()) return log_lost_;
  return log_->Sync();
}

Status AnnotationStore::wal_error() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!log_lost_.ok()) return log_lost_;
  return log_->sticky_error();
}

bool StoredAnnotator::Annotate(const KgView& kg, const TripleRef& ref,
                               Rng* rng) {
  const std::optional<bool> stored = store_->Lookup(ref.cluster, ref.offset);
  if (stored.has_value()) {
    ++store_hits_;
    // Opt-in Rng parity: consume what the inner annotator would have
    // drawn, so stored and bare runs share one random path bit for bit.
    if (options_.burn_rng_on_hits) inner_->BurnRngDraws(rng);
    return *stored;
  }
  const bool label = inner_->Annotate(kg, ref, rng);
  ++oracle_calls_;
  PersistLabel(ref, label);
  return label;
}

void StoredAnnotator::PersistLabel(const TripleRef& ref, bool label) {
  if (degraded_) {
    // Read-only mode: the label was still served to the evaluation, it
    // just is not durable. A resumed run re-judges it identically.
    ++labels_dropped_;
    return;
  }
  if (!status_.ok()) return;  // Fail-fast already tripped; stop appending.
  uint64_t appended = 0;
  const Status append = RetryWithBackoff(
      options_.backoff,
      [&] {
        return store_->Append(audit_id_, ref.cluster, ref.offset, label,
                              &appended);
      },
      &retries_);
  if (append.ok()) {
    bytes_appended_ += appended;
    return;
  }
  if (IsTransientError(append) &&
      options_.write_error_mode == WriteErrorMode::kDegrade) {
    degraded_ = true;
    degraded_cause_ = append;
    ++labels_dropped_;
    return;
  }
  // Fail-fast mode, or a permanent error (conflicting label) in any mode.
  status_ = append;
}

uint32_t StoredAnnotator::AnnotateUnit(const KgView& kg, uint64_t cluster,
                                       std::span<const uint64_t> offsets,
                                       Rng* rng) {
  // Per-triple loop (the base-class contract): each offset is individually
  // a store hit or an inner judgment — a unit can be half-stored when a
  // previous audit drew an overlapping second stage.
  uint32_t correct = 0;
  for (const uint64_t offset : offsets) {
    correct += Annotate(kg, TripleRef{cluster, offset}, rng) ? 1 : 0;
  }
  return correct;
}

}  // namespace kgacc
