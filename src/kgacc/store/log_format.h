#ifndef KGACC_STORE_LOG_FORMAT_H_
#define KGACC_STORE_LOG_FORMAT_H_

#include <cstdint>
#include <span>

#include "kgacc/util/codec.h"

/// \file log_format.h
/// The one definition of the store's on-disk frame format, shared by the
/// live appender (`WriteAheadLog`), the compaction rewriter (which builds a
/// whole replacement log outside the WAL object), and the offline verifier
/// (`kgacc_store verify`). A log file is:
///
///   [8-byte magic "kgacWAL1"]
///   frame*   where frame = [type u8][payload_len varint][payload][crc32c]
///
/// and the CRC covers type + length + payload. Keeping the encoder here —
/// instead of private to wal.cc — is what lets compaction write a
/// byte-compatible file that `WriteAheadLog::Open` replays with no special
/// cases.

namespace kgacc::walfmt {

/// File magic: identifies the format and its version in the first 8 bytes.
inline constexpr char kMagic[8] = {'k', 'g', 'a', 'c', 'W', 'A', 'L', '1'};
inline constexpr size_t kMagicSize = sizeof(kMagic);

/// Upper bound on one frame's payload. Snapshots of audit sessions are
/// kilobytes; anything near this limit in a length prefix is corruption,
/// not data, and must not drive a giant allocation during recovery.
inline constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 30;

/// Frame types owned by the annotation store. The trailer frame is written
/// only by compaction, as the last frame of a rewritten log: it seals the
/// live set with counts, the carried next_seq, and a chained CRC over every
/// preceding payload, so replay can prove the rewrite is complete and
/// untampered (frames appended *after* it are ordinary post-compaction
/// traffic).
inline constexpr uint8_t kAnnotationFrame = 1;
inline constexpr uint8_t kCheckpointFrame = 2;
inline constexpr uint8_t kCompactionTrailerFrame = 3;
/// Tenant quota-ledger frame: `string(tenant_id), varint(oracle_spent),
/// varint(store_bytes)`. Totals are *cumulative*, so replay is latest-wins
/// per tenant and a frame lost to a torn tail is healed by the next one.
inline constexpr uint8_t kTenantLedgerFrame = 4;

/// Encoded size of a varint, needed for exact on-disk byte accounting
/// (space-amplification tracking) without re-encoding.
inline constexpr uint64_t VarintLength(uint64_t v) {
  uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Exact bytes one frame with `payload_size` payload occupies on disk:
/// type byte + length varint + payload + fixed32 CRC.
inline constexpr uint64_t FrameBytesOnDisk(uint64_t payload_size) {
  return 1 + VarintLength(payload_size) + payload_size + 4;
}

/// Appends one complete frame (type, length, payload, CRC) to `out` —
/// the same bytes `WriteAheadLog::Append` writes.
inline void AppendFrame(ByteWriter* out, uint8_t type,
                        std::span<const uint8_t> payload) {
  const size_t frame_start = out->size();
  out->PutU8(type);
  out->PutVarint(payload.size());
  out->PutBytes(payload.data(), payload.size());
  out->PutFixed32(
      Crc32c(out->bytes().data() + frame_start, out->size() - frame_start));
}

}  // namespace kgacc::walfmt

#endif  // KGACC_STORE_LOG_FORMAT_H_
