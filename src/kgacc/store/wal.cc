#include "kgacc/store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

namespace kgacc {

namespace {

/// File magic: identifies the format and its version in the first 8 bytes.
constexpr char kMagic[8] = {'k', 'g', 'a', 'c', 'W', 'A', 'L', '1'};

/// Upper bound on one frame's payload. Snapshots of audit sessions are
/// kilobytes; anything near this limit in a length prefix is corruption,
/// not data, and must not drive a giant allocation during recovery.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 30;

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// Fsyncs the directory containing `path`, making a just-created file's
/// directory entry (or a just-truncated file's metadata) durable. Creating
/// or resizing a file only becomes crash-safe once its parent directory is
/// synced too.
Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return IoError("cannot open WAL parent dir", dir);
  if (::fsync(dfd) != 0) {
    const Status status = IoError("cannot fsync WAL parent dir", dir);
    ::close(dfd);
    return status;
  }
  ::close(dfd);
  return Status::OK();
}

/// Scans `data` (past the magic) frame by frame. Returns the byte offset
/// one past the last intact frame; everything after is a torn/corrupt tail.
/// Replays intact frames through `replay`; a callback error is surfaced
/// through `callback_status` and stops the scan.
size_t ScanFrames(std::span<const uint8_t> data, size_t start,
                  const WriteAheadLog::ReplayFn& replay,
                  uint64_t* frames_replayed, Status* callback_status) {
  size_t valid_end = start;
  while (valid_end < data.size()) {
    ByteReader reader(data.subspan(valid_end));
    const size_t frame_start_remaining = reader.remaining();
    const Result<uint8_t> type = reader.U8();
    if (!type.ok()) break;
    const Result<uint64_t> len = reader.Varint();
    if (!len.ok() || *len > kMaxPayloadBytes) break;
    const Result<std::span<const uint8_t>> payload = reader.Bytes(*len);
    if (!payload.ok()) break;
    const Result<uint32_t> stored_crc = reader.Fixed32();
    if (!stored_crc.ok()) break;
    // The checksum covers everything before it: type, length, payload.
    const size_t covered = frame_start_remaining - reader.remaining() - 4;
    const uint32_t computed =
        Crc32c(data.data() + valid_end, covered);
    if (computed != *stored_crc) break;
    if (replay) {
      const Status status = replay(*type, *payload);
      if (!status.ok()) {
        *callback_status = status;
        return valid_end;
      }
    }
    ++*frames_replayed;
    valid_end += covered + 4;
  }
  return valid_end;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const ReplayFn& replay, WalRecoveryInfo* info) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return IoError("cannot open WAL", path);

  // Read the whole file: audit logs are small (annotation records plus
  // periodic snapshots), and whole-file recovery keeps the scan simple and
  // the torn-tail decision exact.
  std::vector<uint8_t> data;
  {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return IoError("cannot stat WAL", path);
    }
    data.resize(static_cast<size_t>(st.st_size));
    size_t read_so_far = 0;
    while (read_so_far < data.size()) {
      const ssize_t n = ::pread(fd, data.data() + read_so_far,
                                data.size() - read_so_far,
                                static_cast<off_t>(read_so_far));
      if (n < 0) {
        ::close(fd);
        return IoError("cannot read WAL", path);
      }
      if (n == 0) break;  // Raced truncation; treat the shortfall as tail.
      read_so_far += static_cast<size_t>(n);
    }
    data.resize(read_so_far);
  }

  WalRecoveryInfo recovery;
  size_t valid_end = 0;
  if (data.empty()) {
    // Fresh log: stamp the magic, then make the file itself and its
    // directory entry durable before handing out a writable log.
    if (::pwrite(fd, kMagic, sizeof(kMagic), 0) !=
        static_cast<ssize_t>(sizeof(kMagic))) {
      ::close(fd);
      return IoError("cannot initialize WAL", path);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return IoError("cannot fsync new WAL", path);
    }
    const Status dir_status = FsyncParentDir(path);
    if (!dir_status.ok()) {
      ::close(fd);
      return dir_status;
    }
    valid_end = sizeof(kMagic);
  } else if (data.size() < sizeof(kMagic) ||
             std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    ::close(fd);
    return Status::IoError("'" + path +
                           "' is not a kgacc WAL (bad or truncated magic)");
  } else {
    Status callback_status;
    valid_end = ScanFrames({data.data(), data.size()}, sizeof(kMagic), replay,
                           &recovery.frames_replayed, &callback_status);
    if (!callback_status.ok()) {
      ::close(fd);
      return callback_status;
    }
    if (valid_end < data.size()) {
      recovery.truncated_tail = true;
      recovery.bytes_discarded = data.size() - valid_end;
      if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
        ::close(fd);
        return IoError("cannot truncate torn WAL tail", path);
      }
      // The truncation must be durable before new frames land after it: a
      // crash that resurrects the torn tail under fresh appends would
      // interleave garbage mid-log.
      if (::fsync(fd) != 0) {
        ::close(fd);
        return IoError("cannot fsync truncated WAL", path);
      }
      const Status dir_status = FsyncParentDir(path);
      if (!dir_status.ok()) {
        ::close(fd);
        return dir_status;
      }
    }
  }
  recovery.bytes_kept = valid_end;
  if (info != nullptr) *info = recovery;

  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return IoError("cannot seek WAL", path);
  }
  std::FILE* file = ::fdopen(fd, "r+b");
  if (file == nullptr) {
    ::close(fd);
    return IoError("cannot buffer WAL", path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return IoError("cannot seek WAL", path);
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, file));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::MarkSticky(Status status) {
  if (sticky_.ok()) sticky_ = status;
  return status;
}

Status WriteAheadLog::Append(uint8_t type, std::span<const uint8_t> payload) {
  if (!sticky_.ok()) return sticky_;
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL frame payload exceeds 1 GiB");
  }
  if (FailpointHit("wal.append")) {
    return MarkSticky(
        Status::IoError("injected WAL append failure (failpoint wal.append)"));
  }
  // Assemble the whole frame first so a partial write can only tear the
  // file at a frame boundary the CRC scan detects, never interleave.
  ByteWriter frame;
  frame.PutU8(type);
  frame.PutVarint(payload.size());
  frame.PutBytes(payload.data(), payload.size());
  frame.PutFixed32(Crc32c(frame.bytes().data(), frame.size()));
  if (FailpointHit("wal.append.torn")) {
    // Write a genuine partial frame so recovery exercises the torn-tail
    // truncation path, then sticky-fail like a real mid-write crash.
    const size_t torn = frame.size() / 2;
    std::fwrite(frame.bytes().data(), 1, torn, file_);
    std::fflush(file_);
    return MarkSticky(Status::IoError(
        "injected torn WAL append (failpoint wal.append.torn)"));
  }
  if (std::fwrite(frame.bytes().data(), 1, frame.size(), file_) !=
      frame.size()) {
    return MarkSticky(IoError("short write to WAL", path_));
  }
  const Status flushed = Flush();
  if (!flushed.ok()) return flushed;  // Flush already marked the log sticky.
  ++frames_appended_;
  return Status::OK();
}

Status WriteAheadLog::Flush() {
  if (!sticky_.ok()) return sticky_;
  if (std::fflush(file_) != 0) {
    return MarkSticky(IoError("cannot flush WAL", path_));
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (!sticky_.ok()) return sticky_;
  KGACC_RETURN_IF_ERROR(Flush());
  if (FailpointHit("wal.sync")) {
    return MarkSticky(
        Status::IoError("injected WAL fsync failure (failpoint wal.sync)"));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return MarkSticky(IoError("cannot fsync WAL", path_));
  }
  return Status::OK();
}

}  // namespace kgacc
