#include "kgacc/store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "kgacc/store/log_format.h"
#include "kgacc/store/log_reader.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

namespace kgacc {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// Scans `data` (past the magic) frame by frame. Returns the byte offset
/// one past the last intact frame; everything after is a torn/corrupt tail.
/// Replays intact frames through `replay`; a callback error is surfaced
/// through `callback_status` and stops the scan.
size_t ScanFrames(std::span<const uint8_t> data, size_t start,
                  const WriteAheadLog::ReplayFn& replay,
                  uint64_t* frames_replayed, Status* callback_status) {
  size_t valid_end = start;
  while (valid_end < data.size()) {
    ByteReader reader(data.subspan(valid_end));
    const size_t frame_start_remaining = reader.remaining();
    const Result<uint8_t> type = reader.U8();
    if (!type.ok()) break;
    const Result<uint64_t> len = reader.Varint();
    if (!len.ok() || *len > walfmt::kMaxPayloadBytes) break;
    const Result<std::span<const uint8_t>> payload = reader.Bytes(*len);
    if (!payload.ok()) break;
    const Result<uint32_t> stored_crc = reader.Fixed32();
    if (!stored_crc.ok()) break;
    // The checksum covers everything before it: type, length, payload.
    const size_t covered = frame_start_remaining - reader.remaining() - 4;
    const uint32_t computed =
        Crc32c(data.data() + valid_end, covered);
    if (computed != *stored_crc) break;
    if (replay) {
      const Status status = replay(*type, *payload);
      if (!status.ok()) {
        *callback_status = status;
        return valid_end;
      }
    }
    ++*frames_replayed;
    valid_end += covered + 4;
  }
  return valid_end;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const ReplayFn& replay, WalRecoveryInfo* info) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return IoError("cannot open WAL", path);

  WalRecoveryInfo recovery;
  size_t valid_end = 0;
  size_t file_size = 0;
  {
    // Map (or stream-read) the whole file for recovery: the scan walks the
    // page cache directly on the mmap path, so replay-heavy resumes pay no
    // copy of the log. The reader is released before the tail truncation
    // below — recovery never touches discarded bytes afterwards.
    Result<LogReader> reader = LogReader::Open(fd, path);
    if (!reader.ok()) {
      ::close(fd);
      return reader.status();
    }
    const std::span<const uint8_t> data = reader->data();
    file_size = data.size();
    recovery.used_mmap = reader->mapped();

    if (data.empty()) {
      // Fresh log: stamp the magic, then make the file itself and its
      // directory entry durable before handing out a writable log.
      if (::pwrite(fd, walfmt::kMagic, walfmt::kMagicSize, 0) !=
          static_cast<ssize_t>(walfmt::kMagicSize)) {
        ::close(fd);
        return IoError("cannot initialize WAL", path);
      }
      if (::fsync(fd) != 0) {
        ::close(fd);
        return IoError("cannot fsync new WAL", path);
      }
      const Status dir_status = FsyncParentDir(path);
      if (!dir_status.ok()) {
        ::close(fd);
        return dir_status;
      }
      valid_end = walfmt::kMagicSize;
      file_size = valid_end;
    } else if (data.size() < walfmt::kMagicSize ||
               std::memcmp(data.data(), walfmt::kMagic, walfmt::kMagicSize) !=
                   0) {
      ::close(fd);
      return Status::IoError("'" + path +
                             "' is not a kgacc WAL (bad or truncated magic)");
    } else {
      Status callback_status;
      valid_end = ScanFrames(data, walfmt::kMagicSize, replay,
                             &recovery.frames_replayed, &callback_status);
      if (!callback_status.ok()) {
        ::close(fd);
        return callback_status;
      }
    }
  }
  if (valid_end < file_size) {
    recovery.truncated_tail = true;
    recovery.bytes_discarded = file_size - valid_end;
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      ::close(fd);
      return IoError("cannot truncate torn WAL tail", path);
    }
    // The truncation must be durable before new frames land after it: a
    // crash that resurrects the torn tail under fresh appends would
    // interleave garbage mid-log.
    if (::fsync(fd) != 0) {
      ::close(fd);
      return IoError("cannot fsync truncated WAL", path);
    }
    const Status dir_status = FsyncParentDir(path);
    if (!dir_status.ok()) {
      ::close(fd);
      return dir_status;
    }
  }
  recovery.bytes_kept = valid_end;
  if (info != nullptr) *info = recovery;

  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return IoError("cannot seek WAL", path);
  }
  std::FILE* file = ::fdopen(fd, "r+b");
  if (file == nullptr) {
    ::close(fd);
    return IoError("cannot buffer WAL", path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return IoError("cannot seek WAL", path);
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, file, valid_end));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::MarkSticky(Status status) {
  if (sticky_.ok()) sticky_ = status;
  return status;
}

Status WriteAheadLog::AppendFrame(uint8_t type,
                                  std::span<const uint8_t> payload) {
  if (!sticky_.ok()) return sticky_;
  if (payload.size() > walfmt::kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL frame payload exceeds 1 GiB");
  }
  if (FailpointHit("wal.append")) {
    return MarkSticky(
        Status::IoError("injected WAL append failure (failpoint wal.append)"));
  }
  // Assemble the whole frame first so a partial write can only tear the
  // file at a frame boundary the CRC scan detects, never interleave.
  ByteWriter frame;
  walfmt::AppendFrame(&frame, type, payload);
  if (FailpointHit("wal.append.torn")) {
    // Write a genuine partial frame so recovery exercises the torn-tail
    // truncation path, then sticky-fail like a real mid-write crash.
    const size_t torn = frame.size() / 2;
    std::fwrite(frame.bytes().data(), 1, torn, file_);
    std::fflush(file_);
    return MarkSticky(Status::IoError(
        "injected torn WAL append (failpoint wal.append.torn)"));
  }
  if (std::fwrite(frame.bytes().data(), 1, frame.size(), file_) !=
      frame.size()) {
    return MarkSticky(IoError("short write to WAL", path_));
  }
  ++unflushed_frames_;
  size_bytes_ += frame.size();
  return Status::OK();
}

Status WriteAheadLog::Append(uint8_t type, std::span<const uint8_t> payload) {
  KGACC_RETURN_IF_ERROR(AppendFrame(type, payload));
  return Flush();  // A failed flush already marked the log sticky.
}

Status WriteAheadLog::Flush() {
  if (!sticky_.ok()) return sticky_;
  if (std::fflush(file_) != 0) {
    return MarkSticky(IoError("cannot flush WAL", path_));
  }
  // Buffered frames are settled: they now survive a process crash.
  frames_appended_ += unflushed_frames_;
  unflushed_frames_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (!sticky_.ok()) return sticky_;
  KGACC_RETURN_IF_ERROR(Flush());
  if (FailpointHit("wal.sync")) {
    return MarkSticky(
        Status::IoError("injected WAL fsync failure (failpoint wal.sync)"));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return MarkSticky(IoError("cannot fsync WAL", path_));
  }
  return Status::OK();
}

}  // namespace kgacc
