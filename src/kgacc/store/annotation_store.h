#ifndef KGACC_STORE_ANNOTATION_STORE_H_
#define KGACC_STORE_ANNOTATION_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "kgacc/eval/annotator.h"
#include "kgacc/store/wal.h"
#include "kgacc/util/backoff.h"
#include "kgacc/util/flat_set.h"
#include "kgacc/util/status.h"

/// \file annotation_store.h
/// Durable annotation storage. Human labels are the expensive resource of
/// the whole framework — they arrive over days and cost real money — yet
/// the in-memory evaluation state forfeits them on any restart. The
/// `AnnotationStore` writes every judgment to a write-ahead log as a
/// `(triple, label, audit_id, seq)` record *before* the evaluation loop
/// consumes it, and keeps a `FlatSet64`-backed index over the labeled
/// triples, so:
///
/// * a crashed audit resumes without re-paying a single judgment — the
///   resumed steps replay their labels from the store;
/// * a *second* audit over the same KG (different design, alpha, or seed)
///   reuses every overlapping label: already-labeled triples cost zero
///   oracle/human calls (`StoredAnnotator` hit counters assert this).
///
/// Session snapshots interleave with the annotation records in the same
/// log (`AppendCheckpoint`), giving one self-contained durable artifact per
/// audit store — the classic log-structured WAL + snapshot design.
///
/// Fault-injection sites (chaos tests): `store.append` fails an annotation
/// append and `store.checkpoint` a checkpoint append, both *before* the WAL
/// write — unlike a sticky WAL-level failure these heal when the armed
/// policy heals, which is what the retry/degradation machinery in
/// `StoredAnnotator` and `CheckpointManager` is built to absorb.

namespace kgacc {

/// Replayed-store accounting from `AnnotationStore::Open`.
struct AnnotationStoreStats {
  /// Annotation records replayed from the log.
  uint64_t records_replayed = 0;
  /// Checkpoint frames replayed (all audits).
  uint64_t checkpoints_replayed = 0;
  /// WAL-level recovery accounting (torn-tail truncation).
  WalRecoveryInfo recovery;
};

/// A durable, shareable label store over one WAL file. Single-threaded by
/// design: one audit session appends at a time (concurrent audits over the
/// same KG should share a store between runs, not within one — the
/// in-memory index is not synchronized).
class AnnotationStore {
 public:
  struct Options {
    /// fsync checkpoint frames (annotation records are always flushed to
    /// the OS per append; media durability for snapshots is opt-in).
    bool sync_checkpoints = false;
  };

  /// Opens (creating if absent) the store at `path`, replaying the log into
  /// the in-memory index and retaining the latest checkpoint per audit id.
  /// Torn or corrupt tails are truncated per WAL semantics; a frame of
  /// unknown type is rejected (the store owns its log exclusively).
  static Result<std::unique_ptr<AnnotationStore>> Open(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<AnnotationStore>> Open(
      const std::string& path) {
    return Open(path, Options{});
  }

  /// The stored label for a triple, or nullopt when it was never annotated.
  std::optional<bool> Lookup(uint64_t cluster, uint64_t offset) const;

  /// Durably records one judgment. Idempotent on the index (a re-appended
  /// triple keeps its first label; the framework never re-judges a stored
  /// triple, so a conflicting append indicates a caller bug and is
  /// rejected).
  Status Append(uint64_t audit_id, uint64_t cluster, uint64_t offset,
                bool label);

  /// Interleaves a session snapshot into the log, replacing this audit's
  /// previous checkpoint as the resume point.
  Status AppendCheckpoint(uint64_t audit_id,
                          std::span<const uint8_t> snapshot);

  /// The latest replayed-or-appended checkpoint for `audit_id`; nullptr
  /// when the audit never checkpointed (fresh start).
  const std::vector<uint8_t>* LatestCheckpoint(uint64_t audit_id) const;

  /// Distinct triples with a stored label.
  uint64_t num_labeled() const { return labeled_.size(); }
  /// Next record sequence number (monotone across reopens).
  uint64_t next_seq() const { return next_seq_; }
  const AnnotationStoreStats& stats() const { return stats_; }
  const std::string& path() const { return log_->path(); }

  Status Flush() { return log_->Flush(); }
  Status Sync() { return log_->Sync(); }

  /// The WAL's sticky error — non-OK once the underlying log fails
  /// permanently (every subsequent append will fail). Long-lived drivers
  /// (the audit daemon) distinguish this from transient degradation: a
  /// sticky WAL fails the session, never the process.
  const Status& wal_error() const { return log_->sticky_error(); }

 private:
  explicit AnnotationStore(const Options& options) : options_(options) {}

  static uint64_t Key(uint64_t cluster, uint64_t offset);

  Status Replay(uint8_t type, std::span<const uint8_t> payload);

  Options options_;
  std::unique_ptr<WriteAheadLog> log_;
  /// Membership = "this triple has a stored label"; `correct_` holds the
  /// subset labeled correct — together a boolean map without per-entry
  /// boxes, probed once per annotation on the hot path.
  FlatSet64 labeled_;
  FlatSet64 correct_;
  /// Latest checkpoint per audit id (a handful of audits per store; linear
  /// scan beats a map).
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> checkpoints_;
  uint64_t next_seq_ = 0;
  AnnotationStoreStats stats_;
};

/// Annotator decorator that consults the store before paying the inner
/// oracle/human: stored triples are answered from the index (zero inner
/// calls — the saved judgments are exactly what the store exists to avoid
/// re-buying); misses are delegated and durably appended before being
/// returned. Wrap the production annotator with it and pass the result to
/// the session/service as usual.
///
/// Stream caveat: by default a hit consumes no Rng, so with *stochastic*
/// simulation annotators (Noisy, MajorityVote) a store-backed run follows a
/// different random path than a bare one — semantically right (a human does
/// not re-judge a triple), but not bitwise comparable. Opt in to
/// `burn_rng_on_hits` for bitwise store/no-store comparability: every hit
/// then consumes the inner annotator's equivalent draws
/// (`Annotator::BurnRngDraws`), so the downstream stream is exactly what a
/// bare run would have seen. The deterministic annotators (Oracle,
/// Interactive/human) never touch the Rng and need no burning; those are
/// the resume-exactness cases the checkpoint tests assert.
///
/// Failure semantics: a transient append failure (I/O error) is retried
/// with bounded seeded backoff. When the budget is exhausted the behavior
/// is governed by `Options::write_error_mode`:
///
/// * `kDegrade` (default): the annotator enters *degraded read-only mode* —
///   stored labels keep serving from the index, new judgments still
///   delegate to the inner annotator but are no longer appended
///   (`labels_dropped` counts them), and the audit continues. `status()`
///   stays OK; `degraded()` / `degraded_cause()` report the downgrade so
///   drivers can surface it in the outcome.
/// * `kFailFast`: the first exhausted failure sticks in `status()` and the
///   durable driver aborts the audit.
///
/// Permanent errors (a conflicting label → FailedPrecondition) are caller
/// bugs: never retried, always sticky in `status()` regardless of mode.
class StoredAnnotator final : public Annotator {
 public:
  /// What to do when an append's retry budget is exhausted.
  enum class WriteErrorMode {
    /// Continue in degraded read-only mode (see the class comment).
    kDegrade,
    /// Sticky-fail `status()`; durable drivers abort.
    kFailFast,
  };

  struct Options {
    /// Consume the inner annotator's Rng draws on store hits (see above).
    bool burn_rng_on_hits = false;
    /// Exhausted-retry policy for store writes.
    WriteErrorMode write_error_mode = WriteErrorMode::kDegrade;
    /// Retry schedule for transient append failures.
    BackoffPolicy backoff;
  };

  /// All three pointers must outlive the annotator.
  StoredAnnotator(Annotator* inner, AnnotationStore* store, uint64_t audit_id,
                  const Options& options)
      : inner_(inner),
        store_(store),
        audit_id_(audit_id),
        options_(options) {}
  StoredAnnotator(Annotator* inner, AnnotationStore* store, uint64_t audit_id)
      : StoredAnnotator(inner, store, audit_id, Options{}) {}

  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
  uint32_t AnnotateUnit(const KgView& kg, uint64_t cluster,
                        std::span<const uint64_t> offsets, Rng* rng) override;
  int JudgmentsPerTriple() const override {
    return inner_->JudgmentsPerTriple();
  }

  /// Triples answered from the store (no inner call).
  uint64_t store_hits() const { return store_hits_; }
  /// Triples delegated to the inner annotator (and appended).
  uint64_t oracle_calls() const { return oracle_calls_; }

  /// First store-append failure, sticky (the `Annotator` interface cannot
  /// surface a Status per judgment; durable drivers check this after the
  /// run — a non-OK value means the reported labels outran the log). Stays
  /// OK in degrade mode; check `degraded()` too.
  const Status& status() const { return status_; }

  /// True once the annotator dropped into degraded read-only mode.
  bool degraded() const override { return degraded_; }
  /// The degradation cause as the uniform `Annotator` surface, so sessions
  /// and reports describe the downgrade without knowing about stores.
  std::string degradation_note() const override {
    return degraded_ ? degraded_cause_.ToString() : std::string();
  }
  /// The exhausted error that triggered degradation (OK when healthy).
  const Status& degraded_cause() const { return degraded_cause_; }
  /// Append retries performed across all judgments.
  uint64_t retries() const { return retries_; }
  /// Judgments delegated but not persisted because the store was degraded.
  uint64_t labels_dropped() const { return labels_dropped_; }

 private:
  /// Persists one miss's label, applying retry/degradation policy.
  void PersistLabel(const TripleRef& ref, bool label);

  Annotator* inner_;
  AnnotationStore* store_;
  uint64_t audit_id_;
  Options options_;
  uint64_t store_hits_ = 0;
  uint64_t oracle_calls_ = 0;
  Status status_;
  bool degraded_ = false;
  Status degraded_cause_;
  uint64_t retries_ = 0;
  uint64_t labels_dropped_ = 0;
};

}  // namespace kgacc

#endif  // KGACC_STORE_ANNOTATION_STORE_H_
