#ifndef KGACC_STORE_ANNOTATION_STORE_H_
#define KGACC_STORE_ANNOTATION_STORE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "kgacc/eval/annotator.h"
#include "kgacc/store/wal.h"
#include "kgacc/util/backoff.h"
#include "kgacc/util/flat_set.h"
#include "kgacc/util/status.h"

/// \file annotation_store.h
/// Durable annotation storage. Human labels are the expensive resource of
/// the whole framework — they arrive over days and cost real money — yet
/// the in-memory evaluation state forfeits them on any restart. The
/// `AnnotationStore` writes every judgment to a write-ahead log as a
/// `(triple, label, audit_id, seq)` record *before* the evaluation loop
/// consumes it, and keeps a sharded `FlatSet64`-backed index over the
/// labeled triples, so:
///
/// * a crashed audit resumes without re-paying a single judgment — the
///   resumed steps replay their labels from the store;
/// * a *second* audit over the same KG (different design, alpha, or seed)
///   reuses every overlapping label: already-labeled triples cost zero
///   oracle/human calls (`StoredAnnotator` hit counters assert this).
///
/// Session snapshots interleave with the annotation records in the same
/// log (`AppendCheckpoint`), giving one self-contained durable artifact per
/// audit store — an LSM-lite log + snapshot design with three structural
/// pieces on top of the plain WAL:
///
/// **Sharded index + group commit (concurrent writers).** The label index
/// is split across `kNumShards` lock-striped shards (hash of the packed
/// `(cluster, offset)` key), and every WAL write funnels through a
/// group-commit queue: writers enqueue their frame and block; one of them
/// becomes the commit leader, drains the queue, writes the whole batch
/// through `WriteAheadLog::AppendFrame`, and settles it under a single
/// flush — and a single fsync when any member asked for durability. A batch
/// of N concurrent appends therefore pays one fsync, not N, and multiple
/// `EvaluationService` jobs in one `RunBatch` can share one store. Index
/// and byte accounting updates are run by the leader under the commit
/// lock, in log frame order, after the log write succeeds — preserving the
/// log-first-index-second invariant and keeping in-memory state bitwise in
/// step with what replay would rebuild at every instant.
///
/// **Size-tiered compaction (bounded file size).** Checkpoints supersede
/// each other and duplicate appends can race into the log, so a long-lived
/// store accumulates garbage; `garbage_ratio()` tracks it bytewise.
/// `Compact()` (store/compaction.cc) rewrites the live label set plus the
/// latest checkpoint per audit into a fresh log sealed with a trailer
/// frame, fsyncs it, atomically renames it over the old file, fsyncs the
/// directory, and swaps the live WAL handle — the store's contents and
/// `next_seq` are byte-equivalent across the swap, so a post-compaction
/// resume is identical to an uncompacted one. Crash-safe at every phase:
/// before the rename the old log is untouched (a stale `.compact` temp is
/// deleted at the next `Open`); after it the new log is complete and
/// fsynced. Set `Options::auto_compact_garbage_ratio` to trigger it
/// automatically once enough garbage accumulates.
///
/// **mmap'd replay (fast resumes).** `Open` maps the log through
/// `LogReader` and rebuilds the index from the mapping, falling back to a
/// streaming read where mmap fails (`stats().recovery.used_mmap`).
///
/// Fault-injection sites (chaos tests): `store.append` fails an annotation
/// append and `store.checkpoint` a checkpoint append, both *before* the WAL
/// write — unlike a sticky WAL-level failure these heal when the armed
/// policy heals, which is what the retry/degradation machinery in
/// `StoredAnnotator` and `CheckpointManager` is built to absorb. Compaction
/// phases have their own sites (`store.compact.write`, `store.compact.sync`,
/// `store.compact.rename`, `store.compact.dirsync`); a failed compaction is
/// transient — the store keeps running on whichever log the failure left
/// installed. `store.mmap` forces the replay fallback.

namespace kgacc {

/// Replayed-store accounting from `AnnotationStore::Open`.
struct AnnotationStoreStats {
  /// Annotation records replayed from the log.
  uint64_t records_replayed = 0;
  /// Checkpoint frames replayed (all audits).
  uint64_t checkpoints_replayed = 0;
  /// Tenant quota-ledger frames replayed (all tenants).
  uint64_t ledgers_replayed = 0;
  /// Compaction trailer frames replayed (1 when the log was last written
  /// by `Compact()`, 0 for a never-compacted log).
  uint64_t trailers_replayed = 0;
  /// WAL-level recovery accounting (torn-tail truncation, mmap use).
  WalRecoveryInfo recovery;
};

/// Group-commit telemetry (cumulative since open). `syncs`/`batches` is the
/// fsync-per-batch figure the multi-writer bench records: well below 1.0
/// per frame means the queue is coalescing concurrent writers as designed.
struct GroupCommitStats {
  /// Leader rounds (each settles one batch of queued frames).
  uint64_t batches = 0;
  /// Frames committed through the queue.
  uint64_t frames = 0;
  /// Flush calls (one per batch).
  uint64_t flushes = 0;
  /// fsync calls (at most one per batch, only when a member asked).
  uint64_t syncs = 0;
  /// Largest single batch settled so far.
  uint64_t max_batch_frames = 0;
};

/// Compaction telemetry (cumulative since open).
struct CompactionStats {
  /// Completed compactions (manual + automatic).
  uint64_t compactions = 0;
  /// The subset triggered by `auto_compact_garbage_ratio`.
  uint64_t auto_compactions = 0;
  /// File size before/after the most recent completed compaction.
  uint64_t last_bytes_before = 0;
  uint64_t last_bytes_after = 0;
  /// Live records / checkpoints / tenant ledgers the most recent compaction
  /// rewrote.
  uint64_t last_records = 0;
  uint64_t last_checkpoints = 0;
  uint64_t last_ledgers = 0;
};

/// One tenant's durable spend totals, as replayed/appended. Cumulative
/// since the tenant's first ledger frame (compaction preserves the totals
/// in a single live frame per tenant).
struct TenantBalance {
  std::string tenant;
  /// Oracle (inner-annotator) calls charged to this tenant.
  uint64_t oracle_spent = 0;
  /// Store bytes (annotation + checkpoint frames) charged to this tenant.
  uint64_t store_bytes = 0;
};

/// A durable, shareable label store over one WAL file. Thread-safe: lookups
/// probe a lock-striped shard, appends serialize through the group-commit
/// queue, so concurrent `EvaluationService` jobs may share one store within
/// a batch. Checkpoint frames are keyed by audit id; concurrent audits must
/// use distinct ids (`LatestCheckpoint` hands back a copy, so it is safe
/// against any concurrent checkpoint append, same audit or not).
class AnnotationStore {
 public:
  struct Options {
    /// fsync checkpoint frames (annotation records are always flushed to
    /// the OS per append; media durability for snapshots is opt-in).
    bool sync_checkpoints = false;
    /// fsync annotation appends too. Under concurrent writers the
    /// group-commit queue coalesces a whole batch under one fsync, so this
    /// buys media durability per label at far less than one fsync per
    /// label.
    bool sync_appends = false;
    /// When positive, `Compact()` runs automatically after an append pushes
    /// `garbage_ratio()` past this fraction (checked once the file exceeds
    /// `auto_compact_min_bytes`). A failed auto-compaction never fails the
    /// append that triggered it; the next trigger retries.
    double auto_compact_garbage_ratio = 0.0;
    /// Floor below which auto-compaction never bothers.
    uint64_t auto_compact_min_bytes = 1 << 16;
  };

  /// Opens (creating if absent) the store at `path`, replaying the log into
  /// the in-memory index and retaining the latest checkpoint per audit id.
  /// Torn or corrupt tails are truncated per WAL semantics; a frame of
  /// unknown type is rejected (the store owns its log exclusively). A stale
  /// `.compact` temp file from a compaction the process died inside is
  /// deleted — the rename never happened, so the old log is authoritative.
  static Result<std::unique_ptr<AnnotationStore>> Open(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<AnnotationStore>> Open(
      const std::string& path) {
    return Open(path, Options{});
  }

  ~AnnotationStore();

  /// The stored label for a triple, or nullopt when it was never annotated.
  std::optional<bool> Lookup(uint64_t cluster, uint64_t offset) const;

  /// Durably records one judgment. Idempotent on the index (a re-appended
  /// triple keeps its first label; the framework never re-judges a stored
  /// triple, so a conflicting append indicates a caller bug and is
  /// rejected). When `appended_bytes` is non-null it receives the exact
  /// on-disk bytes this call added to the log (0 for an idempotent no-op),
  /// so callers can meter store-byte quotas without re-deriving the frame
  /// encoding.
  Status Append(uint64_t audit_id, uint64_t cluster, uint64_t offset,
                bool label, uint64_t* appended_bytes = nullptr);

  /// Interleaves a session snapshot into the log, replacing this audit's
  /// previous checkpoint as the resume point. `appended_bytes` as in
  /// `Append`.
  Status AppendCheckpoint(uint64_t audit_id, std::span<const uint8_t> snapshot,
                          uint64_t* appended_bytes = nullptr);

  /// Durably charges spend to a tenant by writing one cumulative ledger
  /// frame (`deltas` are added to the tenant's current balance and the new
  /// *totals* are what hits the log — replay is latest-wins, so a frame
  /// lost to a crash is healed by the next append rather than silently
  /// double-counted). Routed through the same group-commit queue as
  /// annotation appends and gated on the same `store.append` failpoint;
  /// the in-memory balance is updated only after the frame is settled, so
  /// `TenantBalances()` never reports spend the log cannot replay.
  Status AppendTenantSpend(const std::string& tenant, uint64_t oracle_delta,
                           uint64_t store_bytes_delta);

  /// Current balances for every tenant with at least one ledger frame,
  /// sorted by tenant id (copy — safe against concurrent appends).
  std::vector<TenantBalance> TenantBalances() const;

  /// The current balance for one tenant; nullopt when it never spent.
  std::optional<TenantBalance> TenantBalanceFor(const std::string& tenant) const;

  /// The latest replayed-or-appended checkpoint for `audit_id`; nullopt
  /// when the audit never checkpointed (fresh start). Returned by value —
  /// a copy taken under the checkpoint lock — so it stays valid whatever
  /// concurrent audits append (a pointer into the registry would dangle
  /// the moment another audit's first checkpoint grew the vector).
  std::optional<std::vector<uint8_t>> LatestCheckpoint(uint64_t audit_id) const;

  /// Rewrites the live label set plus the latest checkpoint per audit into
  /// a fresh log and atomically installs it (see the file comment). On
  /// failure before the rename the store keeps running on the old log; a
  /// post-rename directory-sync failure is reported but the new log is
  /// already installed and in use. Blocks new commits for the duration;
  /// safe to call concurrently with appends and lookups.
  Status Compact();

  /// Fraction of the log file occupied by superseded frames (old
  /// checkpoints, duplicate appends): 0 right after compaction, growing
  /// toward 1 as checkpoints replace each other.
  double garbage_ratio() const;

  /// Exact on-disk log size (header + every frame appended).
  uint64_t file_bytes() const;
  /// Bytes of the file still live (file_bytes - superseded frames).
  uint64_t live_bytes() const;

  GroupCommitStats group_commit_stats() const;
  CompactionStats compaction_stats() const;

  /// Distinct triples with a stored label.
  uint64_t num_labeled() const;
  /// Next record sequence number (monotone across reopens — compaction
  /// carries it through the trailer frame).
  uint64_t next_seq() const { return next_seq_; }
  const AnnotationStoreStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

  Status Flush();
  Status Sync();

  /// The WAL's sticky error — non-OK once the underlying log fails
  /// permanently (every subsequent append will fail). Long-lived drivers
  /// (the audit daemon) distinguish this from transient degradation: a
  /// sticky WAL fails the session, never the process. A successful
  /// `Compact()` installs a fresh log and clears the condition — the index
  /// only ever holds acknowledged records, so rewriting it is a recovery.
  Status wal_error() const;

 private:
  /// Lock-striped index shards: a power of two so the mixed key selects a
  /// shard with a mask. 16 stripes keep cross-writer contention negligible
  /// at service-batch concurrency while staying cheap to enumerate.
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    /// Membership = "this triple has a stored label"; `correct` holds the
    /// subset labeled correct — together a boolean map without per-entry
    /// boxes, probed once per annotation on the hot path.
    FlatSet64 labeled;
    FlatSet64 correct;
  };

  struct CheckpointEntry {
    uint64_t audit_id = 0;
    std::vector<uint8_t> snapshot;
    /// On-disk size of the frame currently holding this checkpoint, so a
    /// replacement knows how many bytes it turned into garbage.
    uint64_t frame_bytes = 0;
  };

  struct LedgerEntry {
    TenantBalance balance;
    /// On-disk size of the live frame holding this balance (for garbage
    /// accounting when a newer cumulative frame supersedes it).
    uint64_t frame_bytes = 0;
  };

  /// One queued WAL write: the requester blocks until a commit leader
  /// settles it and reports the per-frame status. The leader also runs
  /// `apply` (the requester's index/accounting update) under the commit
  /// lock, in batch order — see CommitFrame for why the leader, not the
  /// requester, must do this. The pointer targets a live stack frame: the
  /// requester cannot unblock before `done` is set.
  struct Commit {
    uint8_t type = 0;
    std::span<const uint8_t> payload;
    bool sync = false;
    const std::function<void()>* apply = nullptr;
    Status status;
    bool done = false;
  };

  explicit AnnotationStore(const Options& options) : options_(options) {}

  static uint64_t Key(uint64_t cluster, uint64_t offset);
  Shard& ShardFor(uint64_t key);
  const Shard& ShardFor(uint64_t key) const;

  Status Replay(uint8_t type, std::span<const uint8_t> payload);

  /// Routes one frame through the group-commit queue. On success the
  /// commit *leader* runs `apply` (index/accounting update) under the
  /// commit lock, in log frame order, before any batch member unblocks —
  /// so the in-memory winner of a racing key always matches what replay
  /// produces, and a concurrent `Compact()` (which drains the queue and
  /// takes the same lock) always observes index and accounting in step
  /// with the log.
  Status CommitFrame(uint8_t type, std::span<const uint8_t> payload,
                     bool sync, const std::function<void()>& apply);

  /// Runs `Compact()` when auto-compaction is configured and the garbage
  /// ratio crossed the threshold. Never surfaces a failure.
  void MaybeAutoCompact();

  double GarbageRatioLocked() const;

  Options options_;
  std::string path_;
  std::unique_ptr<WriteAheadLog> log_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<uint64_t> next_seq_{0};

  /// Latest checkpoint per audit id (a handful of audits per store; linear
  /// scan beats a map). Guarded by `checkpoints_mu_`.
  mutable std::mutex checkpoints_mu_;
  std::vector<CheckpointEntry> checkpoints_;

  /// Latest cumulative balance per tenant (same shape as the checkpoint
  /// registry: a handful of tenants per store, linear scan). Guarded by
  /// `ledgers_mu_`.
  mutable std::mutex ledgers_mu_;
  std::vector<LedgerEntry> ledgers_;
  /// Serializes AppendTenantSpend calls: a ledger frame carries the *total*
  /// balance, so read-balance → encode → commit must be atomic per store or
  /// two concurrent spends for one tenant would both encode the same base
  /// and one delta would be lost.
  std::mutex ledger_append_mu_;

  /// Group-commit queue state; `commit_mu_` also guards `log_` itself
  /// between leader rounds and the byte accounting below.
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::vector<Commit*> commit_queue_;
  bool leader_active_ = false;
  /// Set only if compaction installed a new log but could not reopen it
  /// (fd exhaustion class): the store then refuses every later write
  /// instead of acknowledging labels into nothing.
  Status log_lost_;
  GroupCommitStats gc_stats_;
  CompactionStats compaction_stats_;
  /// Exact on-disk bytes (header + all frames) and the subset superseded.
  uint64_t file_bytes_ = 0;
  uint64_t garbage_bytes_ = 0;

  /// Running chained CRC over replayed frame payloads, consumed by the
  /// compaction-trailer integrity check during `Open` replay.
  Crc32cChain replay_crc_;

  AnnotationStoreStats stats_;
};

/// Annotator decorator that consults the store before paying the inner
/// oracle/human: stored triples are answered from the index (zero inner
/// calls — the saved judgments are exactly what the store exists to avoid
/// re-buying); misses are delegated and durably appended before being
/// returned. Wrap the production annotator with it and pass the result to
/// the session/service as usual. Distinct `StoredAnnotator` instances (one
/// per job) may share one `AnnotationStore` concurrently; the instance
/// itself belongs to its job's thread.
///
/// Stream caveat: by default a hit consumes no Rng, so with *stochastic*
/// simulation annotators (Noisy, MajorityVote) a store-backed run follows a
/// different random path than a bare one — semantically right (a human does
/// not re-judge a triple), but not bitwise comparable. Opt in to
/// `burn_rng_on_hits` for bitwise store/no-store comparability: every hit
/// then consumes the inner annotator's equivalent draws
/// (`Annotator::BurnRngDraws`), so the downstream stream is exactly what a
/// bare run would have seen. The deterministic annotators (Oracle,
/// Interactive/human) never touch the Rng and need no burning; those are
/// the resume-exactness cases the checkpoint tests assert.
///
/// Failure semantics: a transient append failure (I/O error) is retried
/// with bounded seeded backoff. When the budget is exhausted the behavior
/// is governed by `Options::write_error_mode`:
///
/// * `kDegrade` (default): the annotator enters *degraded read-only mode* —
///   stored labels keep serving from the index, new judgments still
///   delegate to the inner annotator but are no longer appended
///   (`labels_dropped` counts them), and the audit continues. `status()`
///   stays OK; `degraded()` / `degraded_cause()` report the downgrade so
///   drivers can surface it in the outcome.
/// * `kFailFast`: the first exhausted failure sticks in `status()` and the
///   durable driver aborts the audit.
///
/// Permanent errors (a conflicting label → FailedPrecondition) are caller
/// bugs: never retried, always sticky in `status()` regardless of mode.
class StoredAnnotator final : public Annotator {
 public:
  /// What to do when an append's retry budget is exhausted.
  enum class WriteErrorMode {
    /// Continue in degraded read-only mode (see the class comment).
    kDegrade,
    /// Sticky-fail `status()`; durable drivers abort.
    kFailFast,
  };

  struct Options {
    /// Consume the inner annotator's Rng draws on store hits (see above).
    bool burn_rng_on_hits = false;
    /// Exhausted-retry policy for store writes.
    WriteErrorMode write_error_mode = WriteErrorMode::kDegrade;
    /// Retry schedule for transient append failures.
    BackoffPolicy backoff;
  };

  /// All three pointers must outlive the annotator.
  StoredAnnotator(Annotator* inner, AnnotationStore* store, uint64_t audit_id,
                  const Options& options)
      : inner_(inner),
        store_(store),
        audit_id_(audit_id),
        options_(options) {}
  StoredAnnotator(Annotator* inner, AnnotationStore* store, uint64_t audit_id)
      : StoredAnnotator(inner, store, audit_id, Options{}) {}

  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
  uint32_t AnnotateUnit(const KgView& kg, uint64_t cluster,
                        std::span<const uint64_t> offsets, Rng* rng) override;
  int JudgmentsPerTriple() const override {
    return inner_->JudgmentsPerTriple();
  }

  /// Triples answered from the store (no inner call).
  uint64_t store_hits() const { return store_hits_; }
  /// Triples delegated to the inner annotator (and appended).
  uint64_t oracle_calls() const { return oracle_calls_; }

  /// First store-append failure, sticky (the `Annotator` interface cannot
  /// surface a Status per judgment; durable drivers check this after the
  /// run — a non-OK value means the reported labels outran the log). Stays
  /// OK in degrade mode; check `degraded()` too.
  const Status& status() const { return status_; }

  /// True once the annotator dropped into degraded read-only mode.
  bool degraded() const override { return degraded_; }
  /// The degradation cause as the uniform `Annotator` surface, so sessions
  /// and reports describe the downgrade without knowing about stores.
  std::string degradation_note() const override {
    return degraded_ ? degraded_cause_.ToString() : std::string();
  }
  /// The exhausted error that triggered degradation (OK when healthy).
  const Status& degraded_cause() const { return degraded_cause_; }
  /// Append retries performed across all judgments.
  uint64_t retries() const { return retries_; }
  /// Judgments delegated but not persisted because the store was degraded.
  uint64_t labels_dropped() const { return labels_dropped_; }
  /// Exact on-disk bytes this annotator's appends added to the store —
  /// what a per-tenant store-byte quota meters.
  uint64_t bytes_appended() const { return bytes_appended_; }

  /// Drops the annotator into the same degraded read-only mode an
  /// exhausted write-retry budget produces, from the outside: used when a
  /// tenant's store-byte quota runs out mid-audit — stored labels keep
  /// serving, misses still delegate but are no longer persisted
  /// (`labels_dropped` counts them), and the audit continues. Idempotent.
  void ForceDegrade(const Status& cause) {
    if (degraded_) return;
    degraded_ = true;
    degraded_cause_ = cause;
  }

 private:
  /// Persists one miss's label, applying retry/degradation policy.
  void PersistLabel(const TripleRef& ref, bool label);

  Annotator* inner_;
  AnnotationStore* store_;
  uint64_t audit_id_;
  Options options_;
  uint64_t store_hits_ = 0;
  uint64_t oracle_calls_ = 0;
  Status status_;
  bool degraded_ = false;
  Status degraded_cause_;
  uint64_t retries_ = 0;
  uint64_t labels_dropped_ = 0;
  uint64_t bytes_appended_ = 0;
};

}  // namespace kgacc

#endif  // KGACC_STORE_ANNOTATION_STORE_H_
