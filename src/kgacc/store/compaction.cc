#include "kgacc/store/compaction.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "kgacc/store/annotation_store.h"
#include "kgacc/store/log_format.h"
#include "kgacc/store/log_reader.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

/// \file compaction.cc
/// Size-tiered compaction for the annotation store, plus the offline log
/// verifier. `Compact()` is a member of `AnnotationStore` (declared in
/// annotation_store.h) but lives here with the rest of the rewrite
/// machinery.
///
/// The rewrite protocol, crash-safe at every phase:
///
///   1. quiesce   — take the commit lock and wait out the group-commit
///                  queue, so the index, checkpoints, and byte accounting
///                  are exactly in step with the log;
///   2. rewrite   — emit magic + every live annotation record (key-sorted,
///                  deterministic) + the latest checkpoint per audit id
///                  (id-sorted) + a trailer frame sealing counts, the
///                  carried next_seq, and a chained CRC over every payload,
///                  into `<path>.compact`;
///   3. sync      — fsync the temp file (a rename may not reorder ahead of
///                  the data it installs);
///   4. rename    — atomically install the rewrite over the live path;
///   5. dirsync   — fsync the parent directory, making the rename itself
///                  durable (the same reason WAL creation syncs the parent:
///                  a crash may otherwise resurrect the old directory entry
///                  — the pre-compaction log — under a store that already
///                  acknowledged the rewrite);
///   6. swap      — close the old (now anonymous) file and reopen the WAL
///                  handle over the installed log.
///
/// A crash or injected failure in phases 1-4 leaves the old log installed
/// and untouched (the stale temp is deleted at the next `Open`); from phase
/// 5 on the new log is installed and complete, so the swap proceeds even
/// when the directory sync fails (the error is still reported — the rename
/// durability hole is real — but the store keeps running on the new log).
/// Failpoints cover each failable phase: `store.compact.write`,
/// `store.compact.sync`, `store.compact.rename`, `store.compact.dirsync`.

namespace kgacc {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// Splits the packed index key back into (cluster, offset) — the inverse
/// of `AnnotationStore::Key`.
constexpr uint64_t KeyCluster(uint64_t key) { return key >> 24; }
constexpr uint64_t KeyOffset(uint64_t key) {
  return key & ((uint64_t{1} << 24) - 1);
}

}  // namespace

Status AnnotationStore::Compact() {
  std::unique_lock<std::mutex> lock(commit_mu_);
  // Phase 1: quiesce. New writers block enqueueing (they need commit_mu_);
  // an in-flight leader finishes its batch and drains the queue. This
  // predicate is sufficient only because the *leader* runs every batch
  // member's index apply under the lock before clearing `leader_active_`
  // (see CommitFrame): there is no window where a settled frame is in the
  // log but missing from the index, so the snapshot below is always
  // exactly in step with the log. Were apply deferred to each follower, a
  // settled-but-unapplied record could be silently dropped from the
  // rewrite here — durably written, acknowledged, and gone on restart.
  commit_cv_.wait(lock,
                  [&] { return !leader_active_ && commit_queue_.empty(); });
  if (!log_lost_.ok()) return log_lost_;

  // Snapshot the live label set, key-sorted so the rewrite is
  // deterministic (byte-identical across runs and thread counts).
  struct LiveRecord {
    uint64_t key;
    bool label;
  };
  std::vector<LiveRecord> live;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.labeled.ForEach([&](uint64_t key) {
      live.push_back({key, shard.correct.contains(key)});
    });
  }
  std::sort(live.begin(), live.end(),
            [](const LiveRecord& a, const LiveRecord& b) {
              return a.key < b.key;
            });

  // Checkpoints are stable here (mutations run under commit_mu_): collect
  // the latest per audit, id-sorted.
  std::vector<const CheckpointEntry*> live_checkpoints;
  live_checkpoints.reserve(checkpoints_.size());
  for (const CheckpointEntry& entry : checkpoints_) {
    live_checkpoints.push_back(&entry);
  }
  std::sort(live_checkpoints.begin(), live_checkpoints.end(),
            [](const CheckpointEntry* a, const CheckpointEntry* b) {
              return a->audit_id < b->audit_id;
            });

  // Tenant ledgers likewise: one live cumulative frame per tenant,
  // id-sorted for a deterministic rewrite. Stable under commit_mu_ for the
  // same reason checkpoints are (AppendTenantSpend applies under it).
  std::vector<const LedgerEntry*> live_ledgers;
  {
    std::lock_guard<std::mutex> ledger_lock(ledgers_mu_);
    live_ledgers.reserve(ledgers_.size());
    for (const LedgerEntry& entry : ledgers_) live_ledgers.push_back(&entry);
  }
  std::sort(live_ledgers.begin(), live_ledgers.end(),
            [](const LedgerEntry* a, const LedgerEntry* b) {
              return a->balance.tenant < b->balance.tenant;
            });

  // Phase 2: build the rewrite. Records carry audit id 0 (the rewrite owns
  // them) and fresh dense seqs; the pre-compaction next_seq travels in the
  // trailer so sequence numbers stay monotone across the swap.
  const uint64_t bytes_before = file_bytes_;
  const uint64_t carried_next_seq = next_seq_.load(std::memory_order_relaxed);
  ByteWriter out;
  out.PutBytes(walfmt::kMagic, walfmt::kMagicSize);
  Crc32cChain chain;
  ByteWriter payload;
  uint64_t seq = 0;
  for (const LiveRecord& record : live) {
    payload.Clear();
    payload.PutVarint(0);
    payload.PutVarint(seq++);
    payload.PutVarint(KeyCluster(record.key));
    payload.PutVarint(KeyOffset(record.key));
    payload.PutBool(record.label);
    chain.Extend(payload.span());
    walfmt::AppendFrame(&out, walfmt::kAnnotationFrame, payload.span());
  }
  for (const CheckpointEntry* entry : live_checkpoints) {
    payload.Clear();
    payload.PutVarint(entry->audit_id);
    payload.PutLengthPrefixed(
        {entry->snapshot.data(), entry->snapshot.size()});
    chain.Extend(payload.span());
    walfmt::AppendFrame(&out, walfmt::kCheckpointFrame, payload.span());
  }
  for (const LedgerEntry* entry : live_ledgers) {
    payload.Clear();
    payload.PutString(entry->balance.tenant);
    payload.PutVarint(entry->balance.oracle_spent);
    payload.PutVarint(entry->balance.store_bytes);
    chain.Extend(payload.span());
    walfmt::AppendFrame(&out, walfmt::kTenantLedgerFrame, payload.span());
  }
  payload.Clear();
  payload.PutVarint(2);  // Trailer version (2 = tenant-ledger count added).
  payload.PutVarint(live.size());
  payload.PutVarint(live_checkpoints.size());
  payload.PutVarint(live_ledgers.size());
  payload.PutVarint(carried_next_seq);
  payload.PutFixed32(chain.value());
  walfmt::AppendFrame(&out, walfmt::kCompactionTrailerFrame, payload.span());

  // Phases 2b-3: write and fsync the temp file. Any failure here deletes
  // the temp and leaves the old log the undisturbed source of truth.
  const std::string tmp = path_ + ".compact";
  ::unlink(tmp.c_str());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("cannot create compaction temp", tmp);
  Status phase;
  if (FailpointHit("store.compact.write")) {
    phase = Status::IoError(
        "injected compaction write failure (failpoint store.compact.write)");
  } else {
    size_t written = 0;
    while (written < out.size()) {
      const ssize_t n = ::write(fd, out.bytes().data() + written,
                                out.size() - written);
      if (n < 0) {
        phase = IoError("cannot write compaction temp", tmp);
        break;
      }
      written += static_cast<size_t>(n);
    }
  }
  if (phase.ok()) {
    if (FailpointHit("store.compact.sync")) {
      phase = Status::IoError(
          "injected compaction fsync failure (failpoint store.compact.sync)");
    } else if (::fsync(fd) != 0) {
      phase = IoError("cannot fsync compaction temp", tmp);
    }
  }
  ::close(fd);
  if (!phase.ok()) {
    ::unlink(tmp.c_str());
    return phase;
  }

  // Phase 4: atomic install.
  if (FailpointHit("store.compact.rename")) {
    ::unlink(tmp.c_str());
    return Status::IoError(
        "injected compaction rename failure (failpoint store.compact.rename)");
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const Status status = IoError("cannot install compacted log over", path_);
    ::unlink(tmp.c_str());
    return status;
  }

  // Phase 5: make the rename durable. Past the rename there is no going
  // back — the new log is what the path names — so a dirsync failure is
  // reported but the swap below still proceeds.
  Status dirsync;
  if (FailpointHit("store.compact.dirsync")) {
    dirsync = Status::IoError(
        "injected compaction dirsync failure (failpoint "
        "store.compact.dirsync)");
  } else {
    dirsync = FsyncParentDir(path_);
  }

  // Phase 6: swap the live WAL handle onto the installed log. The old
  // handle points at the unlinked pre-compaction inode; appending there
  // would acknowledge frames no future Open can see.
  log_.reset();
  Result<std::unique_ptr<WriteAheadLog>> reopened =
      WriteAheadLog::Open(path_, nullptr);
  if (!reopened.ok()) {
    // Should-not-happen (fd exhaustion class): the store has no log to
    // append to. Refuse every later write instead of losing labels.
    log_lost_ = Status::IoError(
        "compaction installed a new log but could not reopen it: " +
        reopened.status().ToString());
    return log_lost_;
  }
  log_ = std::move(*reopened);
  file_bytes_ = log_->size_bytes();
  garbage_bytes_ = 0;
  ++compaction_stats_.compactions;
  compaction_stats_.last_bytes_before = bytes_before;
  compaction_stats_.last_bytes_after = file_bytes_;
  compaction_stats_.last_records = live.size();
  compaction_stats_.last_checkpoints = live_checkpoints.size();
  compaction_stats_.last_ledgers = live_ledgers.size();
  return dirsync;
}

Result<StoreVerifyInfo> VerifyStoreLog(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("cannot open store log", path);
  Result<LogReader> reader = LogReader::Open(fd, path);
  if (!reader.ok()) {
    ::close(fd);
    return reader.status();
  }
  const std::span<const uint8_t> data = reader->data();

  StoreVerifyInfo info;
  info.used_mmap = reader->mapped();
  if (data.size() < walfmt::kMagicSize ||
      std::memcmp(data.data(), walfmt::kMagic, walfmt::kMagicSize) != 0) {
    ::close(fd);
    return Status::IoError("'" + path +
                           "' is not a kgacc WAL (bad or truncated magic)");
  }

  Crc32cChain chain;
  uint64_t frames_before_trailer = 0;
  size_t valid_end = walfmt::kMagicSize;
  Status defect;
  while (valid_end < data.size()) {
    ByteReader frame(data.subspan(valid_end));
    const size_t frame_start_remaining = frame.remaining();
    const Result<uint8_t> type = frame.U8();
    if (!type.ok()) break;
    const Result<uint64_t> len = frame.Varint();
    if (!len.ok() || *len > walfmt::kMaxPayloadBytes) break;
    const Result<std::span<const uint8_t>> payload = frame.Bytes(*len);
    if (!payload.ok()) break;
    const Result<uint32_t> stored_crc = frame.Fixed32();
    if (!stored_crc.ok()) break;
    const size_t covered = frame_start_remaining - frame.remaining() - 4;
    if (Crc32c(data.data() + valid_end, covered) != *stored_crc) break;

    // The frame is intact; its payload must now decode. A valid CRC over
    // garbage is a writer bug, not bit rot — report it as a defect.
    ByteReader body(*payload);
    switch (*type) {
      case walfmt::kAnnotationFrame: {
        Status decode;
        for (int field = 0; field < 4 && decode.ok(); ++field) {
          decode = body.Varint().status();
        }
        if (decode.ok()) decode = body.Bool().status();
        if (!decode.ok()) {
          defect = Status::IoError(
              "store log: annotation frame with valid CRC fails to decode");
        }
        ++info.records;
        break;
      }
      case walfmt::kCheckpointFrame: {
        Status decode = body.Varint().status();
        if (decode.ok()) decode = body.LengthPrefixed().status();
        if (!decode.ok()) {
          defect = Status::IoError(
              "store log: checkpoint frame with valid CRC fails to decode");
        }
        ++info.checkpoints;
        break;
      }
      case walfmt::kTenantLedgerFrame: {
        Status decode = body.String().status();
        if (decode.ok()) decode = body.Varint().status();
        if (decode.ok()) decode = body.Varint().status();
        if (!decode.ok()) {
          defect = Status::IoError(
              "store log: tenant ledger frame with valid CRC fails to decode");
        }
        ++info.ledgers;
        break;
      }
      case walfmt::kCompactionTrailerFrame: {
        const Result<uint64_t> version = body.Varint();
        const Result<uint64_t> records = body.Varint();
        const Result<uint64_t> checkpoints = body.Varint();
        // v2 inserts the tenant-ledger count here; v1 predates ledgers.
        Result<uint64_t> ledgers(uint64_t{0});
        if (version.ok() && *version >= 2) ledgers = body.Varint();
        const Result<uint64_t> next_seq = body.Varint();
        const Result<uint32_t> live_crc = body.Fixed32();
        if (!version.ok() || !records.ok() || !checkpoints.ok() ||
            !ledgers.ok() || !next_seq.ok() || !live_crc.ok() ||
            (*version != 1 && *version != 2)) {
          defect = Status::IoError(
              "store log: malformed compaction trailer frame");
        } else if (*records + *checkpoints + *ledgers !=
                       frames_before_trailer ||
                   *records != info.records ||
                   *checkpoints != info.checkpoints ||
                   *ledgers != info.ledgers) {
          defect = Status::IoError(
              "store log: compaction trailer frame counts disagree with the "
              "rewritten log");
        } else if (*live_crc != chain.value()) {
          defect = Status::IoError(
              "store log: compaction trailer live-CRC mismatch (rewritten "
              "log corrupted)");
        } else {
          info.compacted = true;
        }
        ++info.trailers;
        break;
      }
      default:
        defect = Status::IoError("store log: unknown WAL frame type " +
                                 std::to_string(int(*type)));
        break;
    }
    if (!defect.ok()) break;
    chain.Extend(*payload);
    ++frames_before_trailer;
    valid_end += covered + 4;
  }
  ::close(fd);
  if (!defect.ok()) return defect;

  info.bytes_valid = valid_end;
  info.bytes_torn = data.size() - valid_end;
  info.clean_tail = info.bytes_torn == 0;
  return info;
}

}  // namespace kgacc
