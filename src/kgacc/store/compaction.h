#ifndef KGACC_STORE_COMPACTION_H_
#define KGACC_STORE_COMPACTION_H_

#include <cstdint>
#include <string>

#include "kgacc/util/status.h"

/// \file compaction.h
/// Offline companions to `AnnotationStore::Compact()` (whose implementation
/// lives in compaction.cc next to these): structural verification of a
/// store log without opening it for writing — the `kgacc_store verify`
/// admin path. The verifier walks the raw frames, re-checks every per-frame
/// CRC, decodes each payload, and — when the log was written by compaction
/// — re-derives the trailer's chained live-CRC and frame counts, so a
/// corrupted, truncated, or tampered rewrite is reported without touching
/// the file.

namespace kgacc {

/// What `VerifyStoreLog` found.
struct StoreVerifyInfo {
  /// Intact frames of each kind.
  uint64_t records = 0;
  uint64_t checkpoints = 0;
  uint64_t ledgers = 0;
  uint64_t trailers = 0;
  /// Bytes of valid log (header + intact frames) and of torn/corrupt tail.
  uint64_t bytes_valid = 0;
  uint64_t bytes_torn = 0;
  /// False when the file ends in a torn or corrupt tail (`Open` would
  /// truncate it; the data before it is fine).
  bool clean_tail = true;
  /// True when the log carries a verified compaction trailer.
  bool compacted = false;
  /// True when the verifier read the file through mmap.
  bool used_mmap = false;
};

/// Structurally verifies the store log at `path` read-only. Returns the
/// accounting above; fails with a status when the file is unreadable, is
/// not a store log, a frame decodes to garbage despite a valid CRC, or a
/// compaction trailer's counts/chained CRC disagree with the frames before
/// it (a torn tail alone is *not* an error — recovery truncates it).
Result<StoreVerifyInfo> VerifyStoreLog(const std::string& path);

}  // namespace kgacc

#endif  // KGACC_STORE_COMPACTION_H_
