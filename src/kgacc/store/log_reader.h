#ifndef KGACC_STORE_LOG_READER_H_
#define KGACC_STORE_LOG_READER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kgacc/util/status.h"

/// \file log_reader.h
/// Read-side access to a store log file for recovery and replay. `Open`
/// memory-maps the whole file read-only — replay-heavy resumes then walk
/// the page cache directly instead of copying the log through a buffered
/// read — and falls back to one streaming `pread` pass into an owned buffer
/// when mmap is unavailable (empty files, platforms without it, or the
/// `store.mmap` failpoint, which forces the fallback so its equivalence is
/// testable). Either way the caller sees one contiguous span of the file's
/// bytes; `mapped()` reports which path served it.
///
/// The reader holds no file descriptor: the caller keeps its own fd for the
/// subsequent truncate/append positioning. Truncating the tail while a
/// mapping is alive is safe here because recovery only reads bytes it has
/// already validated as living *before* the truncation point.

namespace kgacc {

/// One open log file's contents, mmap'd or buffered.
class LogReader {
 public:
  /// Reads the whole file behind `fd` (regular file, opened readable).
  /// Never fails just because mmap does — the streaming path is the
  /// fallback, not an error.
  static Result<LogReader> Open(int fd, const std::string& path);

  LogReader() = default;
  ~LogReader();
  LogReader(LogReader&& other) noexcept { MoveFrom(other); }
  LogReader& operator=(LogReader&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// The file's bytes, valid for the reader's lifetime.
  std::span<const uint8_t> data() const { return {data_, size_}; }

  /// True when the bytes are served by an mmap'd region (false = the
  /// streaming fallback buffered them).
  bool mapped() const { return mapped_; }

 private:
  void Release();
  void MoveFrom(LogReader& other) noexcept;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> buffer_;  // Backing storage for the fallback path.
};

/// Fsyncs the directory containing `path`, making a just-created, renamed,
/// or truncated file's directory entry durable. Shared by WAL open (file
/// creation, torn-tail truncation) and compaction (the rename that installs
/// a rewritten log must itself survive power loss).
Status FsyncParentDir(const std::string& path);

}  // namespace kgacc

#endif  // KGACC_STORE_LOG_READER_H_
