#ifndef KGACC_STORE_CHECKPOINT_H_
#define KGACC_STORE_CHECKPOINT_H_

#include <cstdint>

#include "kgacc/eval/session.h"
#include "kgacc/store/annotation_store.h"
#include "kgacc/util/status.h"

/// \file checkpoint.h
/// Durable audits: `CheckpointManager` interleaves periodic
/// `EvaluationSession` snapshots with the annotation WAL, and restores the
/// latest one on recovery. The division of labor with the store:
///
/// * every judgment is in the WAL the moment it is made (never lost);
/// * snapshots bound the *recompute* after a crash — the session resumes
///   from the last checkpoint and re-executes the few steps since, whose
///   labels replay from the store at zero oracle cost, landing on the
///   byte-identical report the uninterrupted run would have produced.
///
/// Snapshot cadence is therefore a pure compute/log-size trade: even
/// `every_steps = 1` only appends a few-KB frame per batch, and a cadence
/// of N merely re-runs at most N-1 cheap, already-labeled steps on resume.

namespace kgacc {

/// Snapshot cadence and durability for one audit's checkpoints.
struct CheckpointOptions {
  /// What to do when a snapshot append exhausts its retry budget.
  enum class OnError {
    /// Stop checkpointing, keep auditing: every judgment is still in the
    /// WAL, so the only loss is resume granularity — recovery recomputes
    /// from the last good snapshot at zero oracle cost. `degraded()`
    /// reports the downgrade.
    kDegrade,
    /// Surface the error from `OnStep`/`Checkpoint`; durable drivers abort.
    kFail,
  };

  /// Snapshot after every N-th completed step (>= 1).
  uint64_t every_steps = 1;
  /// Exhausted-retry policy for snapshot appends.
  OnError on_error = OnError::kDegrade;
  /// Retry schedule for transient snapshot-append failures.
  BackoffPolicy backoff;
};

/// Drives checkpointing for one (session, store, audit_id) binding. The
/// session and store must outlive the manager.
class CheckpointManager {
 public:
  CheckpointManager(AnnotationStore* store, uint64_t audit_id,
                    const CheckpointOptions& options = {});

  /// Step hook: snapshots the session when its step count hits the cadence.
  /// Call after every successful `Step()` (or install via
  /// `EvaluationJob::on_step`).
  Status OnStep(const EvaluationSession& session);

  /// Unconditionally snapshots the session now.
  Status Checkpoint(const EvaluationSession& session);

  /// True when the store holds a checkpoint for this audit id.
  bool CanResume() const;

  /// Restores the stored checkpoint into `session` (constructed over the
  /// same design, configuration, and seed — the snapshot fingerprint is
  /// verified). FailedPrecondition when there is nothing to resume from.
  Status Resume(EvaluationSession* session) const;

  uint64_t audit_id() const { return audit_id_; }
  uint64_t checkpoints_written() const { return checkpoints_written_; }
  /// Exact on-disk bytes this manager's snapshot appends added to the
  /// store — the checkpoint half of a tenant's store-byte metering.
  uint64_t bytes_appended() const { return bytes_appended_; }

  /// True once snapshotting was abandoned after an exhausted retry budget
  /// (OnError::kDegrade only). The audit keeps running without it.
  bool degraded() const { return degraded_; }
  /// The exhausted error that stopped checkpointing (OK while healthy).
  const Status& degraded_cause() const { return degraded_cause_; }
  /// Snapshot-append retries performed over the manager's lifetime.
  uint64_t retries() const { return retries_; }

 private:
  AnnotationStore* store_;
  uint64_t audit_id_;
  CheckpointOptions options_;
  uint64_t checkpoints_written_ = 0;
  uint64_t bytes_appended_ = 0;
  bool degraded_ = false;
  Status degraded_cause_;
  uint64_t retries_ = 0;
};

/// Drives a session to completion under checkpoint protection: resumes from
/// the store when a checkpoint exists (unless the session already stepped),
/// then steps with `manager.OnStep` after every batch and finalizes. The
/// one-call durable equivalent of `EvaluationSession::Run`.
///
/// Pass the session's `StoredAnnotator` so its sticky append status is
/// checked every step: a judgment the WAL refused (I/O failure, label
/// conflict) fails the audit instead of letting the report silently outrun
/// its log. Omit it only when the annotator is not store-backed.
Result<EvaluationResult> RunDurableAudit(
    EvaluationSession& session, CheckpointManager& manager,
    const StoredAnnotator* annotator = nullptr);

}  // namespace kgacc

#endif  // KGACC_STORE_CHECKPOINT_H_
