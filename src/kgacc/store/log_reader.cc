#include "kgacc/store/log_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "kgacc/util/failpoint.h"

namespace kgacc {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<LogReader> LogReader::Open(int fd, const std::string& path) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return IoError("cannot stat log", path);
  const size_t size = static_cast<size_t>(st.st_size);

  LogReader reader;
  if (size == 0) return reader;  // Nothing to map or read.

  // Preferred path: map the file read-only. MAP_PRIVATE suffices — recovery
  // never writes through the mapping, and the later tail truncation only
  // shrinks past bytes the scan has already rejected.
  if (!FailpointHit("store.mmap")) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      reader.data_ = static_cast<const uint8_t*>(addr);
      reader.size_ = size;
      reader.mapped_ = true;
      return reader;
    }
  }

  // Fallback: one streaming pread pass into an owned buffer. Identical
  // bytes, identical recovery decisions — just a copy instead of a map.
  reader.buffer_.resize(size);
  size_t read_so_far = 0;
  while (read_so_far < reader.buffer_.size()) {
    const ssize_t n =
        ::pread(fd, reader.buffer_.data() + read_so_far,
                reader.buffer_.size() - read_so_far,
                static_cast<off_t>(read_so_far));
    if (n < 0) return IoError("cannot read log", path);
    if (n == 0) break;  // Raced truncation; treat the shortfall as tail.
    read_so_far += static_cast<size_t>(n);
  }
  reader.buffer_.resize(read_so_far);
  reader.data_ = reader.buffer_.data();
  reader.size_ = reader.buffer_.size();
  reader.mapped_ = false;
  return reader;
}

LogReader::~LogReader() { Release(); }

void LogReader::Release() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  buffer_.clear();
}

void LogReader::MoveFrom(LogReader& other) noexcept {
  buffer_ = std::move(other.buffer_);
  mapped_ = other.mapped_;
  size_ = other.size_;
  // The fallback buffer's address changes when the vector moves.
  data_ = mapped_ ? other.data_ : (size_ == 0 ? nullptr : buffer_.data());
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return IoError("cannot open log parent dir", dir);
  if (::fsync(dfd) != 0) {
    const Status status = IoError("cannot fsync log parent dir", dir);
    ::close(dfd);
    return status;
  }
  ::close(dfd);
  return Status::OK();
}

}  // namespace kgacc
