#ifndef KGACC_STORE_WAL_H_
#define KGACC_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "kgacc/util/status.h"

/// \file wal.h
/// Append-only write-ahead log of typed, CRC-framed records — the durable
/// substrate of the annotation store (the `SimpleKvStore`-style WAL +
/// snapshot pattern). One file holds a magic header followed by frames:
///
///   [type u8][payload_len varint][payload bytes][crc32c fixed32]
///
/// where the checksum covers the type byte, the length prefix, and the
/// payload, so a flipped bit anywhere in a frame is detected (the encoding
/// lives in store/log_format.h, shared with the compaction rewriter).
/// `Open` memory-maps the file (store/log_reader.h; streaming fallback on
/// platforms or failpoints where mmap fails), replays every valid frame
/// through a caller callback, then *physically truncates* a torn or corrupt
/// tail so the next append starts at a clean frame boundary — everything
/// before the first bad byte is kept, everything after is discarded
/// (standard WAL recovery: a corrupt frame severs the chain, later frames
/// are unreachable).
///
/// Two append granularities serve the store's group-commit queue:
/// `Append` writes one frame and flushes it (the single-writer path), while
/// `AppendFrame` only buffers the frame — a commit leader strings many
/// `AppendFrame`s together and settles them under one `Flush`/`Sync`, so a
/// batch of concurrent writers pays one fsync, not one each. Frames are
/// only counted as appended once flushed.
///
/// Failure semantics: any write, flush, or fsync failure puts the log in a
/// *sticky error state* — every later `Append`/`Flush`/`Sync` returns the
/// original error without touching the file. A WAL whose write path failed
/// once cannot be trusted to hold a frame boundary, so it refuses to append
/// rather than risk interleaving good frames after a torn one; callers
/// reopen (which truncates any torn tail) to recover. Fault-injection sites
/// for the chaos tests: `wal.append` (fail before writing), `wal.append.torn`
/// (write a partial frame, then fail), `wal.sync` (fail the fsync),
/// `store.mmap` (force the streaming read fallback in `Open`).

namespace kgacc {

/// What `WriteAheadLog::Open` found and did during recovery.
struct WalRecoveryInfo {
  /// Valid frames replayed to the callback.
  uint64_t frames_replayed = 0;
  /// Bytes of valid log kept (header + intact frames).
  uint64_t bytes_kept = 0;
  /// Torn/corrupt tail bytes discarded (0 for a clean log).
  uint64_t bytes_discarded = 0;
  /// True when a torn or corrupt tail was truncated away.
  bool truncated_tail = false;
  /// True when recovery read the log through the mmap path (false: the
  /// streaming fallback, or a freshly created empty log).
  bool used_mmap = false;
};

/// An append-only typed-record log bound to one file. Not internally
/// synchronized: the annotation store serializes writers through its
/// group-commit queue (exactly one commit leader touches the log at a
/// time), and standalone users keep the old one-writer discipline.
class WriteAheadLog {
 public:
  /// Replay callback: one call per valid frame, in log order. The payload
  /// span is only valid for the duration of the call. A non-OK return
  /// aborts the open (the log file is left untouched).
  using ReplayFn =
      std::function<Status(uint8_t type, std::span<const uint8_t> payload)>;

  /// Opens (creating if absent) the log at `path`, replays every intact
  /// frame through `replay`, truncates any torn/corrupt tail, and positions
  /// for appending. `info`, when given, receives the recovery accounting.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const ReplayFn& replay,
      WalRecoveryInfo* info = nullptr);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one frame and flushes it to the operating system (a crash of
  /// this process can no longer lose it; media durability needs `Sync`).
  /// After any failure the log is sticky-failed and every later call
  /// returns the original error.
  Status Append(uint8_t type, std::span<const uint8_t> payload);

  /// Appends one frame into the stdio buffer *without* flushing — the
  /// group-commit building block. The frame is not durable (and not counted
  /// in `frames_appended`) until the next successful `Flush`/`Sync`.
  Status AppendFrame(uint8_t type, std::span<const uint8_t> payload);

  /// Flushes the stdio buffer to the OS.
  Status Flush();

  /// Flush + fsync: the frame survives power loss, not just a process kill.
  Status Sync();

  /// The error that sticky-failed this log; OK while the log is healthy.
  const Status& sticky_error() const { return sticky_; }

  const std::string& path() const { return path_; }
  uint64_t frames_appended() const { return frames_appended_; }

  /// Logical file size: recovered bytes plus every frame appended since
  /// (exact on-disk bytes — the store's space-amplification numerator).
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, uint64_t size_bytes)
      : path_(std::move(path)), file_(file), size_bytes_(size_bytes) {}

  /// Records the first write-path failure and returns it.
  Status MarkSticky(Status status);

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t frames_appended_ = 0;
  /// Frames written into the stdio buffer but not yet settled by a flush.
  uint64_t unflushed_frames_ = 0;
  uint64_t size_bytes_ = 0;
  Status sticky_;
};

}  // namespace kgacc

#endif  // KGACC_STORE_WAL_H_
