#include "kgacc/store/checkpoint.h"

#include <algorithm>

#include "kgacc/util/codec.h"

namespace kgacc {

CheckpointManager::CheckpointManager(AnnotationStore* store, uint64_t audit_id,
                                     const CheckpointOptions& options)
    : store_(store), audit_id_(audit_id), options_(options) {
  options_.every_steps = std::max<uint64_t>(options_.every_steps, 1);
}

Status CheckpointManager::OnStep(const EvaluationSession& session) {
  const uint64_t steps = static_cast<uint64_t>(session.iterations());
  if (steps == 0 || steps % options_.every_steps != 0) return Status::OK();
  return Checkpoint(session);
}

Status CheckpointManager::Checkpoint(const EvaluationSession& session) {
  if (degraded_) return Status::OK();  // Snapshotting was abandoned.
  ByteWriter snapshot;
  session.SaveState(&snapshot);
  uint64_t frame_bytes = 0;
  const Status appended = RetryWithBackoff(
      options_.backoff,
      [&] {
        return store_->AppendCheckpoint(audit_id_, snapshot.span(),
                                        &frame_bytes);
      },
      &retries_);
  if (appended.ok()) {
    ++checkpoints_written_;
    bytes_appended_ += frame_bytes;
    return Status::OK();
  }
  if (IsTransientError(appended) &&
      options_.on_error == CheckpointOptions::OnError::kDegrade) {
    degraded_ = true;
    degraded_cause_ = appended;
    return Status::OK();
  }
  return appended;
}

bool CheckpointManager::CanResume() const {
  return store_->LatestCheckpoint(audit_id_).has_value();
}

Status CheckpointManager::Resume(EvaluationSession* session) const {
  // The snapshot arrives by value: other audits on a shared store (daemon
  // worker threads) may append their own checkpoints while this one loads.
  const std::optional<std::vector<uint8_t>> snapshot =
      store_->LatestCheckpoint(audit_id_);
  if (!snapshot.has_value()) {
    return Status::FailedPrecondition(
        "no checkpoint stored for this audit id");
  }
  ByteReader reader({snapshot->data(), snapshot->size()});
  return session->LoadState(&reader);
}

Result<EvaluationResult> RunDurableAudit(EvaluationSession& session,
                                         CheckpointManager& manager,
                                         const StoredAnnotator* annotator) {
  if (manager.CanResume() && session.iterations() == 0 && !session.done()) {
    KGACC_RETURN_IF_ERROR(manager.Resume(&session));
  }
  while (!session.done()) {
    KGACC_ASSIGN_OR_RETURN(const StepOutcome outcome, session.Step());
    (void)outcome;
    // Fail before checkpointing a step whose labels never reached the log:
    // a snapshot must not certify state the WAL cannot replay.
    if (annotator != nullptr) {
      KGACC_RETURN_IF_ERROR(annotator->status());
    }
    KGACC_RETURN_IF_ERROR(manager.OnStep(session));
  }
  if (annotator != nullptr) {
    KGACC_RETURN_IF_ERROR(annotator->status());
  }
  return session.Finish();
}

}  // namespace kgacc
