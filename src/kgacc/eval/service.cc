#include "kgacc/eval/service.h"

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "kgacc/util/random.h"

namespace kgacc {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

EvaluationService::EvaluationService() : EvaluationService(Options{}) {}

EvaluationService::EvaluationService(const Options& options)
    : pool_(ResolveThreads(options.num_threads)) {}

uint64_t EvaluationService::DeriveJobSeed(uint64_t base_seed,
                                          uint64_t job_index) {
  // Two SplitMix64 rounds over the (base, index) pair: adjacent indices map
  // to decorrelated streams, and index 0 does not collapse to Mix64(base).
  return Mix64(base_seed ^ Mix64(job_index + 0x9e3779b97f4a7c15ULL));
}

EvaluationBatchResult EvaluationService::RunBatch(
    const std::vector<EvaluationJob>& jobs) {
  EvaluationBatchResult batch;
  batch.outcomes.resize(jobs.size());

  const auto start = std::chrono::steady_clock::now();
  ParallelFor(pool_, jobs.size(), [&](size_t i) {
    const EvaluationJob& job = jobs[i];
    EvaluationJobOutcome& out = batch.outcomes[i];
    out.label = job.label;
    out.seed = job.seed;
    if (job.sampler == nullptr) {
      out.status = Status::InvalidArgument("job has no sampler");
      return;
    }
    if (job.annotator == nullptr) {
      out.status = Status::InvalidArgument("job has no annotator");
      return;
    }
    std::unique_ptr<Sampler> sampler = job.sampler->Clone();
    if (sampler == nullptr) {
      out.status = Status::Unimplemented(
          std::string(job.sampler->name()) +
          " sampler does not support Clone(); jobs need per-job isolation");
      return;
    }
    EvaluationSession session(*sampler, *job.annotator, job.config, job.seed);
    Result<EvaluationResult> result = session.Run();
    if (result.ok()) {
      out.result = std::move(result).value();
    } else {
      out.status = result.status();
    }
  });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  ServiceBatchStats& stats = batch.stats;
  stats.num_threads = pool_.num_threads();
  stats.jobs = jobs.size();
  stats.wall_seconds = elapsed.count();
  for (const EvaluationJobOutcome& out : batch.outcomes) {
    if (!out.status.ok()) {
      ++stats.failed;
      continue;
    }
    stats.annotated_triples += out.result.annotated_triples;
  }
  if (stats.wall_seconds > 0.0) {
    stats.audits_per_second =
        static_cast<double>(stats.jobs - stats.failed) / stats.wall_seconds;
    stats.triples_per_second =
        static_cast<double>(stats.annotated_triples) / stats.wall_seconds;
  }
  return batch;
}

}  // namespace kgacc
