#include "kgacc/eval/service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "kgacc/util/random.h"

namespace kgacc {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

/// Per-pinning-group execution state. Everything in here is touched by one
/// pool task at a time (a group's jobs run sequentially), so no locking.
struct EvaluationService::WorkerContext {
  struct CachedSampler {
    const Sampler* prototype = nullptr;
    std::unique_ptr<Sampler> clone;
  };

  /// Cloned samplers keyed by prototype pointer. Batches mix a handful of
  /// designs, so a linear scan beats a hash map here.
  std::vector<CachedSampler> samplers;
  /// Reused batch buffers and annotated-sample storage; survives across
  /// batches so the distinct-set tables stay sized for the workload.
  SessionScratch scratch;

  /// Returns this context's clone for `prototype`. The clone may carry
  /// state from the previous job; EvaluationSession's constructor Reset()s
  /// its sampler, which is the invariant job isolation rests on.
  /// Nullptr when the design does not support cloning.
  Sampler* GetSampler(const Sampler* prototype) {
    for (CachedSampler& entry : samplers) {
      if (entry.prototype == prototype) {
        return entry.clone.get();
      }
    }
    std::unique_ptr<Sampler> clone = prototype->Clone();
    if (clone == nullptr) return nullptr;
    samplers.push_back(CachedSampler{prototype, std::move(clone)});
    return samplers.back().clone.get();
  }

  /// Drops the cached clones (they reference the prototypes' populations,
  /// which are only guaranteed to live for the duration of one RunBatch).
  void ReleaseSamplers() { samplers.clear(); }
};

EvaluationService::EvaluationService() : EvaluationService(Options{}) {}

EvaluationService::EvaluationService(const Options& options)
    : options_(options), pool_(ResolveThreads(options.num_threads)) {
  options_.groups_per_thread = std::max(options_.groups_per_thread, 1);
}

EvaluationService::~EvaluationService() = default;

uint64_t EvaluationService::DeriveJobSeed(uint64_t base_seed,
                                          uint64_t job_index) {
  // Two SplitMix64 rounds over the (base, index) pair: adjacent indices map
  // to decorrelated streams, and index 0 does not collapse to Mix64(base).
  return Mix64(base_seed ^ Mix64(job_index + 0x9e3779b97f4a7c15ULL));
}

void EvaluationService::RunJob(const EvaluationJob& job,
                               WorkerContext* context,
                               EvaluationJobOutcome* out) {
  out->label = job.label;
  out->seed = job.seed;
  if (job.sampler == nullptr) {
    out->status = Status::InvalidArgument("job has no sampler");
    return;
  }
  if (job.annotator == nullptr) {
    out->status = Status::InvalidArgument("job has no annotator");
    return;
  }
  Sampler* sampler = nullptr;
  std::unique_ptr<Sampler> owned;
  if (context != nullptr) {
    sampler = context->GetSampler(job.sampler);
  } else {
    owned = job.sampler->Clone();
    sampler = owned.get();
  }
  if (sampler == nullptr) {
    out->status = Status::Unimplemented(
        std::string(job.sampler->name()) +
        " sampler does not support Clone(); jobs need per-job isolation");
    return;
  }
  EvaluationSession session(*sampler, *job.annotator, job.config, job.seed,
                            context != nullptr ? &context->scratch : nullptr);
  Result<EvaluationResult> result = session.Run();
  if (result.ok()) {
    out->result = std::move(result).value();
  } else {
    out->status = result.status();
  }
}

EvaluationBatchResult EvaluationService::RunBatch(
    const std::vector<EvaluationJob>& jobs) {
  EvaluationBatchResult batch;
  batch.outcomes.resize(jobs.size());

  const auto start = std::chrono::steady_clock::now();
  if (options_.reuse_contexts && !jobs.empty()) {
    // Deterministic pinning: job i belongs to group i % G. Each group is
    // one pool task that walks its jobs in submission order on one warm
    // context; with G > workers, a thread finishing early pulls the next
    // whole group off the queue (stealing across pinning groups only).
    const size_t groups = std::min(
        jobs.size(), static_cast<size_t>(pool_.num_threads()) *
                         static_cast<size_t>(options_.groups_per_thread));
    while (contexts_.size() < groups) {
      contexts_.push_back(std::make_unique<WorkerContext>());
    }
    ParallelFor(pool_, groups, [&](size_t g) {
      WorkerContext& context = *contexts_[g];
      for (size_t i = g; i < jobs.size(); i += groups) {
        RunJob(jobs[i], &context, &batch.outcomes[i]);
      }
      context.ReleaseSamplers();
    });
  } else {
    ParallelFor(pool_, jobs.size(), [&](size_t i) {
      RunJob(jobs[i], nullptr, &batch.outcomes[i]);
    });
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  ServiceBatchStats& stats = batch.stats;
  stats.num_threads = pool_.num_threads();
  stats.jobs = jobs.size();
  stats.wall_seconds = elapsed.count();
  for (const EvaluationJobOutcome& out : batch.outcomes) {
    if (!out.status.ok()) {
      ++stats.failed;
      continue;
    }
    stats.annotated_triples += out.result.annotated_triples;
  }
  if (stats.wall_seconds > 0.0) {
    stats.audits_per_second =
        static_cast<double>(stats.jobs - stats.failed) / stats.wall_seconds;
    stats.triples_per_second =
        static_cast<double>(stats.annotated_triples) / stats.wall_seconds;
  }
  return batch;
}

}  // namespace kgacc
