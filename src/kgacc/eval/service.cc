#include "kgacc/eval/service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kgacc/util/failpoint.h"
#include "kgacc/util/random.h"

namespace kgacc {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

/// Per-pinning-group execution state. Everything in here is touched by one
/// pool task at a time (a group's jobs run sequentially), so no locking.
struct EvaluationService::WorkerContext {
  struct CachedSampler {
    const Sampler* prototype = nullptr;
    std::unique_ptr<Sampler> clone;
  };

  /// Cloned samplers keyed by prototype pointer. Batches mix a handful of
  /// designs, so a linear scan beats a hash map here.
  std::vector<CachedSampler> samplers;
  /// Reused batch buffers and annotated-sample storage; survives across
  /// batches so the distinct-set tables stay sized for the workload.
  SessionScratch scratch;
  /// Clones this context ever minted (summed into
  /// `sampler_clones_created`); only its own task touches it.
  uint64_t clones_created = 0;

  /// Returns this context's clone for `prototype`. The clone may carry
  /// state from the previous job; EvaluationSession's constructor Reset()s
  /// its sampler, which is the invariant job isolation rests on.
  /// Nullptr when the design does not support cloning.
  Sampler* GetSampler(const Sampler* prototype) {
    for (CachedSampler& entry : samplers) {
      if (entry.prototype == prototype) {
        return entry.clone.get();
      }
    }
    std::unique_ptr<Sampler> clone = prototype->Clone();
    if (clone == nullptr) return nullptr;
    ++clones_created;
    samplers.push_back(CachedSampler{prototype, std::move(clone)});
    return samplers.back().clone.get();
  }

  /// Drops the cached clones whose prototype is not in `keep`: unregistered
  /// prototypes' populations are only guaranteed to live for the duration
  /// of one RunBatch, while registered ones carry a caller lifetime promise
  /// and their clones amortize across batches.
  void ReleaseSamplers(const std::vector<const Sampler*>& keep) {
    std::erase_if(samplers, [&keep](const CachedSampler& entry) {
      return std::find(keep.begin(), keep.end(), entry.prototype) ==
             keep.end();
    });
  }
};

EvaluationService::EvaluationService() : EvaluationService(Options{}) {}

EvaluationService::EvaluationService(const Options& options)
    : options_(options), pool_(ResolveThreads(options.num_threads)) {
  options_.groups_per_thread = std::max(options_.groups_per_thread, 1);
  options_.min_jobs_per_group = std::max(options_.min_jobs_per_group, 1);
}

EvaluationService::~EvaluationService() = default;

void EvaluationService::RegisterPrototype(const Sampler* prototype) {
  if (prototype == nullptr) return;
  if (std::find(registered_prototypes_.begin(), registered_prototypes_.end(),
                prototype) != registered_prototypes_.end()) {
    return;
  }
  registered_prototypes_.push_back(prototype);
}

void EvaluationService::UnregisterPrototype(const Sampler* prototype) {
  std::erase(registered_prototypes_, prototype);
  // Drop the now-unpromised clones immediately: the caller may destroy the
  // prototype's population right after this call.
  for (const std::unique_ptr<WorkerContext>& context : contexts_) {
    std::erase_if(context->samplers,
                  [prototype](const WorkerContext::CachedSampler& entry) {
                    return entry.prototype == prototype;
                  });
  }
}

void EvaluationService::ClearPrototypes() {
  registered_prototypes_.clear();
  for (const std::unique_ptr<WorkerContext>& context : contexts_) {
    context->samplers.clear();
  }
}

uint64_t EvaluationService::sampler_clones_created() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerContext>& context : contexts_) {
    total += context->clones_created;
  }
  return total;
}

uint64_t EvaluationService::DeriveJobSeed(uint64_t base_seed,
                                          uint64_t job_index) {
  // Two SplitMix64 rounds over the (base, index) pair: adjacent indices map
  // to decorrelated streams, and index 0 does not collapse to Mix64(base).
  return Mix64(base_seed ^ Mix64(job_index + 0x9e3779b97f4a7c15ULL));
}

void EvaluationService::RunJob(const EvaluationJob& job,
                               WorkerContext* context,
                               EvaluationJobOutcome* out) {
  out->label = job.label;
  out->tenant = job.tenant;
  out->seed = job.seed;
  if (job.sampler == nullptr) {
    out->status = Status::InvalidArgument("job has no sampler");
    return;
  }
  if (job.annotator == nullptr) {
    out->status = Status::InvalidArgument("job has no annotator");
    return;
  }
  Sampler* sampler = nullptr;
  std::unique_ptr<Sampler> owned;
  if (context != nullptr) {
    sampler = context->GetSampler(job.sampler);
  } else {
    owned = job.sampler->Clone();
    sampler = owned.get();
  }
  if (sampler == nullptr) {
    out->status = Status::Unimplemented(
        std::string(job.sampler->name()) +
        " sampler does not support Clone(); jobs need per-job isolation");
    return;
  }
  // Store-backed job: wrap the annotator in a per-job StoredAnnotator so
  // this job reads the shared label pool and appends its fresh judgments
  // through the store's group-commit queue. The wrapper is per-job state on
  // this worker thread; only the store underneath is shared.
  std::optional<StoredAnnotator> stored;
  Annotator* annotator = job.annotator;
  if (job.store != nullptr) {
    stored.emplace(job.annotator, job.store, job.audit_id, job.store_options);
    annotator = &*stored;
  }
  // The whole job body runs behind a catch-all: an annotator or hook that
  // throws must cost its own job an Internal outcome, never the process
  // (the pool's workers are shared by the entire batch).
  Result<EvaluationResult> result = [&]() -> Result<EvaluationResult> {
    try {
      EvaluationSession session(*sampler, *annotator, job.config, job.seed,
                                context != nullptr ? &context->scratch
                                                   : nullptr);
      const bool budgeted = job.max_steps > 0 || job.deadline_seconds > 0.0;
      if (!job.on_step && !budgeted) return session.Run();
      // Hooked or budgeted jobs step explicitly so every iteration is
      // observed (checkpointing, progress, budget checks). A hook failure
      // aborts this job only.
      const auto job_start = std::chrono::steady_clock::now();
      uint64_t steps = 0;
      while (!session.done()) {
        if (FailpointHit("service.step")) {
          return Status::Internal(
              "injected step failure (failpoint service.step)");
        }
        KGACC_ASSIGN_OR_RETURN(const StepOutcome outcome, session.Step());
        (void)outcome;
        ++steps;
        if (job.on_step) KGACC_RETURN_IF_ERROR(job.on_step(session));
        if (job.max_steps > 0 && steps >= job.max_steps && !session.done()) {
          out->deadline_exceeded = true;
          return Status::DeadlineExceeded(
              "job cancelled: step budget of " +
              std::to_string(job.max_steps) + " exhausted");
        }
        if (job.deadline_seconds > 0.0 && !session.done()) {
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - job_start;
          if (elapsed.count() > job.deadline_seconds) {
            out->deadline_exceeded = true;
            return Status::DeadlineExceeded(
                "job cancelled: wall-clock deadline of " +
                std::to_string(job.deadline_seconds) + "s exceeded");
          }
        }
      }
      return session.Finish();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("job threw: ") + e.what());
    } catch (...) {
      return Status::Internal("job threw a non-standard exception");
    }
  }();
  if (result.ok()) {
    out->result = std::move(result).value();
  } else {
    out->status = result.status();
  }
  if (job.robustness) {
    const JobRobustness robustness = job.robustness();
    out->degraded = robustness.degraded;
    out->retries = robustness.retries;
  }
  if (stored) {
    out->store_hits = stored->store_hits();
    out->store_oracle_calls = stored->oracle_calls();
    if (stored->degraded()) out->degraded = true;
    out->retries += stored->retries();
    if (out->status.ok() && !stored->status().ok()) {
      // kFailFast sticky append failure: the report would outrun its log —
      // fail the job rather than return labels the store never saw.
      out->status = stored->status();
    }
  }
}

namespace {

/// Per-group output slot for everything one group task writes beyond the
/// job outcomes, padded to a cache line so two workers finishing adjacent
/// groups never ping-pong a line between their stores (the false-sharing
/// fix for the batch-stats accumulators; the per-worker HPD counters are
/// already thread_local and the pool's shard counters carry their own
/// padding).
struct alignas(64) GroupSlot {
  HpdSolveStats hpd;
  double run_seconds = 0.0;
};

}  // namespace

EvaluationBatchResult EvaluationService::RunBatch(
    const std::vector<EvaluationJob>& jobs) {
  EvaluationBatchResult batch;
  batch.outcomes.resize(jobs.size());
  ServiceBatchStats& stats = batch.stats;
  if (!spawn_charged_) {
    // The pool is persistent across batches; spin-up is paid exactly once,
    // at construction, and charged to the first batch's split so short
    // cells cannot hide it inside throughput.
    stats.spawn_seconds = pool_.spawn_seconds();
    spawn_charged_ = true;
  }

  // Snapshot group-commit telemetry for every distinct store the batch
  // references, so the stats below report the *batch's* fsync bill and
  // coalescing factor as deltas, independent of the stores' prior history.
  std::vector<AnnotationStore*> stores;
  std::vector<GroupCommitStats> stores_before;
  for (const EvaluationJob& job : jobs) {
    if (job.store == nullptr) continue;
    if (std::find(stores.begin(), stores.end(), job.store) != stores.end()) {
      continue;
    }
    stores.push_back(job.store);
    stores_before.push_back(job.store->group_commit_stats());
  }

  const auto start = std::chrono::steady_clock::now();
  // One slot per pool task: a task runs start-to-finish on one thread, so
  // resetting the thread-local HPD counters at task start and snapshotting
  // at task end yields exact per-task deltas, summed into the batch stats
  // below regardless of which worker the task landed on.
  std::vector<GroupSlot> slots;
  const uint64_t stolen_before = pool_.stolen_tasks();
  if (options_.reuse_contexts && !jobs.empty()) {
    // Deterministic pinning: job i belongs to group i % G, where G caps at
    // threads x groups_per_thread and floors at min_jobs_per_group jobs
    // per group. Each group is one whole task handed to its home worker's
    // ring (group g -> worker g % threads); a worker finishing its ring
    // early steals a complete group from a neighbour — stealing never
    // splits a group, so every group's jobs run sequentially on a single
    // thread against one warm context.
    const size_t max_groups = static_cast<size_t>(pool_.num_threads()) *
                              static_cast<size_t>(options_.groups_per_thread);
    const size_t floored_groups = std::max<size_t>(
        jobs.size() / static_cast<size_t>(options_.min_jobs_per_group), 1);
    const size_t groups = std::min({jobs.size(), max_groups, floored_groups});
    while (contexts_.size() < groups) {
      contexts_.push_back(std::make_unique<WorkerContext>());
    }
    // Group membership. Untenanted batches keep the classic stride
    // (group g owns jobs g, g+G, ...). When jobs carry tenants, the G
    // groups are first partitioned among the tenants (first-appearance
    // order, shares proportional to job counts, at least one group each)
    // and each tenant round-robins its own jobs over its own slice — one
    // tenant's jobs never share a context with another's, so per-tenant
    // cache churn stays inside its slice. Membership is a pure function of
    // the job list, and grouping affects locality only, never results.
    std::vector<std::vector<size_t>> members(groups);
    bool tenanted = false;
    for (const EvaluationJob& job : jobs) {
      if (!job.tenant.empty()) {
        tenanted = true;
        break;
      }
    }
    if (tenanted && groups > 1) {
      std::vector<std::string> order;
      std::vector<std::vector<size_t>> per_tenant;
      for (size_t i = 0; i < jobs.size(); ++i) {
        size_t t = 0;
        while (t < order.size() && order[t] != jobs[i].tenant) ++t;
        if (t == order.size()) {
          order.push_back(jobs[i].tenant);
          per_tenant.emplace_back();
        }
        per_tenant[t].push_back(i);
      }
      // Largest-remainder split of the groups, floor 1 per tenant; when
      // there are more tenants than groups the surplus tenants fold into
      // the last slice (locality degrades gracefully, correctness holds).
      const size_t tenants = order.size();
      std::vector<size_t> share(tenants, 0);
      size_t assigned = 0;
      for (size_t t = 0; t < tenants && assigned < groups; ++t) {
        share[t] = std::max<size_t>(
            1, per_tenant[t].size() * groups / jobs.size());
        share[t] = std::min(share[t], groups - assigned);
        assigned += share[t];
      }
      for (size_t t = 0; assigned < groups; t = (t + 1) % tenants) {
        ++share[t];
        ++assigned;
      }
      size_t base = 0;
      for (size_t t = 0; t < tenants; ++t) {
        const size_t slice = std::max<size_t>(share[t], 1);
        const size_t start = std::min(base, groups - 1);
        for (size_t k = 0; k < per_tenant[t].size(); ++k) {
          members[start + k % std::min(slice, groups - start)].push_back(
              per_tenant[t][k]);
        }
        base += share[t];
      }
    } else {
      for (size_t i = 0; i < jobs.size(); ++i) {
        members[i % groups].push_back(i);
      }
    }
    slots.resize(groups);
    const int num_threads = pool_.num_threads();
    for (size_t g = 0; g < groups; ++g) {
      pool_.SubmitTo(static_cast<int>(g % num_threads), [&, g] {
        const auto task_start = std::chrono::steady_clock::now();
        ResetThreadHpdStats();
        WorkerContext& context = *contexts_[g];
        for (size_t i : members[g]) {
          RunJob(jobs[i], &context, &batch.outcomes[i]);
        }
        context.ReleaseSamplers(registered_prototypes_);
        GroupSlot& slot = slots[g];
        slot.hpd = ThreadHpdStatsSnapshot();
        slot.run_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - task_start)
                               .count();
      });
    }
    const auto submitted = std::chrono::steady_clock::now();
    pool_.Wait();
    const auto finished = std::chrono::steady_clock::now();
    stats.submit_seconds =
        std::chrono::duration<double>(submitted - start).count();
    stats.barrier_seconds =
        std::chrono::duration<double>(finished - submitted).count();
  } else {
    slots.resize(jobs.size());
    ParallelFor(pool_, jobs.size(), [&](size_t i) {
      const auto task_start = std::chrono::steady_clock::now();
      ResetThreadHpdStats();
      RunJob(jobs[i], nullptr, &batch.outcomes[i]);
      GroupSlot& slot = slots[i];
      slot.hpd = ThreadHpdStatsSnapshot();
      slot.run_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - task_start)
                             .count();
    });
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  stats.num_threads = pool_.num_threads();
  stats.jobs = jobs.size();
  stats.groups = slots.size();
  stats.stolen_groups =
      static_cast<size_t>(pool_.stolen_tasks() - stolen_before);
  stats.wall_seconds = elapsed.count();
  for (const GroupSlot& slot : slots) {
    stats.hpd += slot.hpd;
    stats.run_seconds += slot.run_seconds;
  }
  for (const EvaluationJobOutcome& out : batch.outcomes) {
    if (out.degraded) ++stats.degraded_jobs;
    stats.total_retries += out.retries;
    if (out.deadline_exceeded) ++stats.deadline_hits;
    stats.store_hits += out.store_hits;
    stats.store_oracle_calls += out.store_oracle_calls;
    if (!out.status.ok()) {
      ++stats.failed;
      continue;
    }
    stats.annotated_triples += out.result.annotated_triples;
  }
  for (size_t s = 0; s < stores.size(); ++s) {
    const GroupCommitStats after = stores[s]->group_commit_stats();
    stats.store_commit_batches += after.batches - stores_before[s].batches;
    stats.store_commit_frames += after.frames - stores_before[s].frames;
    stats.store_commit_syncs += after.syncs - stores_before[s].syncs;
  }
  if (stats.wall_seconds > 0.0) {
    stats.audits_per_second =
        static_cast<double>(stats.jobs - stats.failed) / stats.wall_seconds;
    stats.triples_per_second =
        static_cast<double>(stats.annotated_triples) / stats.wall_seconds;
  }
  return batch;
}

}  // namespace kgacc
