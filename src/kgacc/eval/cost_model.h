#ifndef KGACC_EVAL_COST_MODEL_H_
#define KGACC_EVAL_COST_MODEL_H_

#include "kgacc/sampling/sample.h"

/// \file cost_model.h
/// The annotation cost function of Eq. 12 (Gao et al., adopted by the
/// paper): cost(G_S) = |E_S| * c1 + |T_S| * c2, where identifying an entity
/// (c1 = 45 s) is paid once per *distinct* entity and verifying a fact
/// (c2 = 25 s) once per *distinct* triple. This is what makes cluster
/// sampling cheaper per annotated triple than SRS.

namespace kgacc {

/// Per-action average manual effort, in seconds.
struct CostModel {
  /// c1: linking an entity to its real-world concept.
  double entity_identification_seconds = 45.0;
  /// c2: collecting evidence and auditing one fact.
  double fact_verification_seconds = 25.0;
  /// Judgments collected per triple (multi-annotator protocols multiply the
  /// verification effort; 1 reproduces the paper's single-annotator cost).
  int annotators_per_triple = 1;
};

/// Total manual effort for `sample` in seconds.
double AnnotationCostSeconds(const CostModel& model,
                             const AnnotatedSample& sample);

/// Total manual effort in hours (the unit of Tables 3-4 and Fig. 4).
double AnnotationCostHours(const CostModel& model,
                           const AnnotatedSample& sample);

}  // namespace kgacc

#endif  // KGACC_EVAL_COST_MODEL_H_
