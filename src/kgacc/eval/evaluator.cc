#include "kgacc/eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "kgacc/eval/session.h"

namespace kgacc {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kTripleCapReached:
      return "triple-cap";
    case StopReason::kBudgetExhausted:
      return "budget-exhausted";
    case StopReason::kPopulationExhausted:
      return "population-exhausted";
  }
  return "unknown";
}

const char* IntervalMethodName(IntervalMethod method) {
  switch (method) {
    case IntervalMethod::kWald:
      return "Wald";
    case IntervalMethod::kWilson:
      return "Wilson";
    case IntervalMethod::kAgrestiCoull:
      return "Agresti-Coull";
    case IntervalMethod::kClopperPearson:
      return "Clopper-Pearson";
    case IntervalMethod::kEqualTailed:
      return "ET";
    case IntervalMethod::kHpd:
      return "HPD";
    case IntervalMethod::kAhpd:
      return "aHPD";
  }
  return "Unknown";
}

Result<Interval> BuildInterval(const EvaluationConfig& config,
                               EstimatorKind kind,
                               const AccuracyEstimate& estimate,
                               size_t* winning_prior, double* deff_out,
                               AhpdWarmState* warm) {
  // Effective sample for the methods parameterized by (tau, n) rather than
  // a variance: identity under SRS, Kish-adjusted under complex designs
  // (Alg. 1 lines 11-13).
  double n_eff = static_cast<double>(estimate.n);
  double tau_eff = static_cast<double>(estimate.tau);
  double deff = 1.0;
  if (kind != EstimatorKind::kSrs) {
    const EffectiveSample eff =
        ComputeEffectiveSample(estimate, config.design_effect);
    n_eff = eff.n_eff;
    tau_eff = eff.tau_eff;
    deff = eff.deff;
  } else if (estimate.population != 0) {
    // Finite-population correction as a design effect below 1: at full
    // census the effective sample diverges and every interval collapses.
    const double fpc = 1.0 - static_cast<double>(estimate.n) /
                                 static_cast<double>(estimate.population);
    deff = std::max(fpc, 1e-9);
    n_eff = static_cast<double>(estimate.n) / deff;
    tau_eff = estimate.mu * n_eff;
  }
  if (deff_out != nullptr) *deff_out = deff;
  if (winning_prior != nullptr) *winning_prior = 0;

  switch (config.method) {
    case IntervalMethod::kWald:
      return WaldInterval(estimate, config.alpha);
    case IntervalMethod::kWilson:
      return WilsonInterval(estimate.mu, n_eff, config.alpha);
    case IntervalMethod::kAgrestiCoull:
      return AgrestiCoullInterval(estimate.mu, n_eff, config.alpha);
    case IntervalMethod::kClopperPearson: {
      // Round the effective sample to integers and clamp: rounding tau and
      // n independently can yield tau > n under design effects.
      const uint64_t n_round = static_cast<uint64_t>(std::llround(n_eff));
      const uint64_t tau_round = std::min(
          static_cast<uint64_t>(std::llround(tau_eff)), n_round);
      return ClopperPearsonInterval(tau_round, n_round, config.alpha);
    }
    case IntervalMethod::kEqualTailed: {
      if (config.priors.empty()) {
        return Status::InvalidArgument("ET CrI requires a prior");
      }
      KGACC_ASSIGN_OR_RETURN(const BetaDistribution posterior,
                             config.priors[0].Posterior(tau_eff, n_eff));
      return EqualTailedInterval(posterior, config.alpha);
    }
    case IntervalMethod::kHpd: {
      if (config.priors.empty()) {
        return Status::InvalidArgument("HPD CrI requires a prior");
      }
      KGACC_ASSIGN_OR_RETURN(const BetaDistribution posterior,
                             config.priors[0].Posterior(tau_eff, n_eff));
      AhpdWarmState::PriorState* state = nullptr;
      if (warm != nullptr) {
        warm->Sync(1);
        state = &warm->priors[0];
      }
      KGACC_ASSIGN_OR_RETURN(
          const HpdResult hpd,
          HpdIntervalWarm(posterior, tau_eff, n_eff, config.alpha, config.hpd,
                          state));
      return hpd.interval;
    }
    case IntervalMethod::kAhpd: {
      KGACC_ASSIGN_OR_RETURN(
          const AhpdChoice choice,
          AhpdSelect(config.priors, tau_eff, n_eff, config.alpha, config.hpd,
                     warm));
      if (winning_prior != nullptr) *winning_prior = choice.prior_index;
      return choice.interval;
    }
  }
  return Status::InvalidArgument("unknown interval method");
}

Result<EvaluationResult> RunEvaluation(Sampler& sampler, Annotator& annotator,
                                       const EvaluationConfig& config,
                                       uint64_t seed) {
  EvaluationSession session(sampler, annotator, config, seed);
  return session.Run();
}

}  // namespace kgacc
