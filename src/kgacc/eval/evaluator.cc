#include "kgacc/eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace kgacc {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kTripleCapReached:
      return "triple-cap";
    case StopReason::kBudgetExhausted:
      return "budget-exhausted";
    case StopReason::kPopulationExhausted:
      return "population-exhausted";
  }
  return "unknown";
}

const char* IntervalMethodName(IntervalMethod method) {
  switch (method) {
    case IntervalMethod::kWald:
      return "Wald";
    case IntervalMethod::kWilson:
      return "Wilson";
    case IntervalMethod::kAgrestiCoull:
      return "Agresti-Coull";
    case IntervalMethod::kClopperPearson:
      return "Clopper-Pearson";
    case IntervalMethod::kEqualTailed:
      return "ET";
    case IntervalMethod::kHpd:
      return "HPD";
    case IntervalMethod::kAhpd:
      return "aHPD";
  }
  return "Unknown";
}

Result<Interval> BuildInterval(const EvaluationConfig& config,
                               EstimatorKind kind,
                               const AccuracyEstimate& estimate,
                               size_t* winning_prior, double* deff_out) {
  // Effective sample for the methods parameterized by (tau, n) rather than
  // a variance: identity under SRS, Kish-adjusted under complex designs
  // (Alg. 1 lines 11-13).
  double n_eff = static_cast<double>(estimate.n);
  double tau_eff = static_cast<double>(estimate.tau);
  double deff = 1.0;
  if (kind != EstimatorKind::kSrs) {
    const EffectiveSample eff =
        ComputeEffectiveSample(estimate, config.design_effect);
    n_eff = eff.n_eff;
    tau_eff = eff.tau_eff;
    deff = eff.deff;
  } else if (estimate.population != 0) {
    // Finite-population correction as a design effect below 1: at full
    // census the effective sample diverges and every interval collapses.
    const double fpc = 1.0 - static_cast<double>(estimate.n) /
                                 static_cast<double>(estimate.population);
    deff = std::max(fpc, 1e-9);
    n_eff = static_cast<double>(estimate.n) / deff;
    tau_eff = estimate.mu * n_eff;
  }
  if (deff_out != nullptr) *deff_out = deff;
  if (winning_prior != nullptr) *winning_prior = 0;

  switch (config.method) {
    case IntervalMethod::kWald:
      return WaldInterval(estimate, config.alpha);
    case IntervalMethod::kWilson:
      return WilsonInterval(estimate.mu, n_eff, config.alpha);
    case IntervalMethod::kAgrestiCoull:
      return AgrestiCoullInterval(estimate.mu, n_eff, config.alpha);
    case IntervalMethod::kClopperPearson:
      return ClopperPearsonInterval(
          static_cast<uint64_t>(std::llround(tau_eff)),
          static_cast<uint64_t>(std::llround(n_eff)), config.alpha);
    case IntervalMethod::kEqualTailed: {
      if (config.priors.empty()) {
        return Status::InvalidArgument("ET CrI requires a prior");
      }
      KGACC_ASSIGN_OR_RETURN(const BetaDistribution posterior,
                             config.priors[0].Posterior(tau_eff, n_eff));
      return EqualTailedInterval(posterior, config.alpha);
    }
    case IntervalMethod::kHpd: {
      if (config.priors.empty()) {
        return Status::InvalidArgument("HPD CrI requires a prior");
      }
      KGACC_ASSIGN_OR_RETURN(const BetaDistribution posterior,
                             config.priors[0].Posterior(tau_eff, n_eff));
      KGACC_ASSIGN_OR_RETURN(const HpdResult hpd,
                             HpdInterval(posterior, config.alpha, config.hpd));
      return hpd.interval;
    }
    case IntervalMethod::kAhpd: {
      KGACC_ASSIGN_OR_RETURN(
          const AhpdChoice choice,
          AhpdSelect(config.priors, tau_eff, n_eff, config.alpha, config.hpd));
      if (winning_prior != nullptr) *winning_prior = choice.prior_index;
      return choice.interval;
    }
  }
  return Status::InvalidArgument("unknown interval method");
}

Result<EvaluationResult> RunEvaluation(Sampler& sampler, Annotator& annotator,
                                       const EvaluationConfig& config,
                                       uint64_t seed) {
  if (!(config.moe_threshold > 0.0)) {
    return Status::InvalidArgument("MoE threshold must be positive");
  }
  if (!(config.alpha > 0.0) || !(config.alpha < 1.0)) {
    return Status::OutOfRange("alpha must be in (0,1)");
  }

  sampler.Reset();
  Rng rng(seed);
  const KgView& kg = sampler.kg();
  AnnotatedSample sample;
  EvaluationResult out;

  CostModel cost_model = config.cost;
  cost_model.annotators_per_triple = annotator.JudgmentsPerTriple();

  for (;;) {
    // Phase 1: draw a batch according to the sampling design.
    KGACC_ASSIGN_OR_RETURN(const SampleBatch batch, sampler.NextBatch(&rng));
    if (batch.empty()) {
      out.stop_reason = StopReason::kPopulationExhausted;
      break;
    }
    ++out.iterations;

    // Phase 2: annotate the batch and merge into the running sample.
    for (const SampledUnit& unit : batch) {
      AnnotatedUnit annotated;
      annotated.cluster = unit.cluster;
      annotated.cluster_population = unit.cluster_population;
      annotated.stratum = unit.stratum;
      annotated.drawn = static_cast<uint32_t>(unit.offsets.size());
      for (uint64_t offset : unit.offsets) {
        const TripleRef ref{unit.cluster, offset};
        sample.MarkAnnotated(ref);
        annotated.correct += annotator.Annotate(kg, ref, &rng) ? 1 : 0;
      }
      sample.Add(annotated);
    }

    // Phase 3: estimate and build the configured 1-alpha interval.
    Result<AccuracyEstimate> estimate_result =
        (sampler.estimator() == EstimatorKind::kSrs &&
         config.finite_population_correction)
            ? EstimateSrs(sample, kg.num_triples())
            : Estimate(sampler.estimator(), sample,
                       sampler.stratum_weights());
    KGACC_ASSIGN_OR_RETURN(const AccuracyEstimate estimate,
                           std::move(estimate_result));
    KGACC_ASSIGN_OR_RETURN(
        out.interval, BuildInterval(config, sampler.estimator(), estimate,
                                    &out.winning_prior, &out.deff));
    out.mu = estimate.mu;
    const double moe = out.interval.Moe();
    if (config.record_trace) {
      out.trace.push_back(TracePoint{estimate.n, moe, estimate.mu});
    }

    // Phase 4: quality control against the MoE budget and resource caps.
    if (sample.num_triples() >= config.min_sample_triples &&
        moe <= config.moe_threshold) {
      out.converged = true;
      out.stop_reason = StopReason::kConverged;
      break;
    }
    if (sample.num_triples() >= config.max_triples) {
      out.stop_reason = StopReason::kTripleCapReached;
      break;
    }
    if (config.max_cost_seconds > 0.0 &&
        AnnotationCostSeconds(cost_model, sample) >=
            config.max_cost_seconds) {
      out.stop_reason = StopReason::kBudgetExhausted;
      break;
    }
  }

  if (sample.empty()) {
    return Status::FailedPrecondition(
        "sampler produced no units; population may be empty");
  }
  out.annotated_triples = sample.num_triples();
  out.distinct_triples = sample.num_distinct_triples();
  out.distinct_entities = sample.num_distinct_entities();
  out.cost_seconds = AnnotationCostSeconds(cost_model, sample);
  out.cost_hours = out.cost_seconds / 3600.0;
  return out;
}

}  // namespace kgacc
