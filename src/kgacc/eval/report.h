#ifndef KGACC_EVAL_REPORT_H_
#define KGACC_EVAL_REPORT_H_

#include <string>

#include "kgacc/eval/evaluator.h"

/// \file report.h
/// Renders an audit outcome as a human-readable report or a JSON record —
/// the artifact an analyst files after running the evaluation framework.
/// Shared by the `kgacc_audit` CLI and the examples.

namespace kgacc {

/// Context lines included at the top of a report.
struct ReportContext {
  std::string dataset_name = "knowledge graph";
  std::string design_name = "SRS";
};

/// Multi-line plain-text audit report: estimate, interval with its
/// post-data interpretation, annotation effort and the stopping condition.
std::string RenderTextReport(const ReportContext& context,
                             const EvaluationConfig& config,
                             const EvaluationResult& result);

/// Single-line JSON record of the same content (stable key order; numbers
/// rendered with enough digits to round-trip).
std::string RenderJsonReport(const ReportContext& context,
                             const EvaluationConfig& config,
                             const EvaluationResult& result);

}  // namespace kgacc

#endif  // KGACC_EVAL_REPORT_H_
