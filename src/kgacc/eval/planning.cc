#include "kgacc/eval/planning.h"

#include <cmath>

#include "kgacc/intervals/ahpd.h"
#include "kgacc/intervals/frequentist.h"

namespace kgacc {

namespace {

constexpr uint64_t kPlanCap = 100000000;  // 100M: larger asks are config bugs.

Status ValidatePlanArgs(double mu_guess, double alpha, double epsilon) {
  if (!(mu_guess >= 0.0) || !(mu_guess <= 1.0)) {
    return Status::OutOfRange("mu_guess must be in [0,1]");
  }
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::OutOfRange("alpha must be in (0,1)");
  }
  if (!(epsilon > 0.0) || !(epsilon < 0.5)) {
    return Status::OutOfRange("epsilon must be in (0, 0.5)");
  }
  return Status::OK();
}

/// Exponential-then-binary search for the smallest n >= n_min satisfying
/// `small_enough(n)`, which must be monotone in n.
template <typename Fn>
Result<uint64_t> SmallestSatisfying(uint64_t n_min, Fn small_enough) {
  uint64_t hi = std::max<uint64_t>(n_min, 1);
  while (true) {
    KGACC_ASSIGN_OR_RETURN(const bool ok, small_enough(hi));
    if (ok) break;
    if (hi >= kPlanCap) {
      return Status::OutOfRange("required sample size exceeds 100M");
    }
    hi *= 2;
  }
  uint64_t lo = hi / 2 < n_min ? n_min : hi / 2;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    KGACC_ASSIGN_OR_RETURN(const bool ok, small_enough(mid));
    if (ok) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace

Result<uint64_t> WilsonRequiredSampleSize(double mu_guess, double alpha,
                                          double epsilon) {
  KGACC_RETURN_IF_ERROR(ValidatePlanArgs(mu_guess, alpha, epsilon));
  return SmallestSatisfying(1, [&](uint64_t n) -> Result<bool> {
    KGACC_ASSIGN_OR_RETURN(
        const Interval interval,
        WilsonInterval(mu_guess, static_cast<double>(n), alpha));
    return interval.Moe() <= epsilon;
  });
}

Result<uint64_t> AhpdRequiredSampleSize(const std::vector<BetaPrior>& priors,
                                        double mu_guess, double alpha,
                                        double epsilon) {
  KGACC_RETURN_IF_ERROR(ValidatePlanArgs(mu_guess, alpha, epsilon));
  if (priors.empty()) {
    return Status::InvalidArgument("planning requires at least one prior");
  }
  return SmallestSatisfying(1, [&](uint64_t n) -> Result<bool> {
    const double nd = static_cast<double>(n);
    KGACC_ASSIGN_OR_RETURN(
        const AhpdChoice choice,
        AhpdSelect(priors, mu_guess * nd, nd, alpha));
    return choice.interval.Moe() <= epsilon;
  });
}

Result<SamplePlan> PlanAhpdAudit(const std::vector<BetaPrior>& priors,
                                 double mu_guess, double alpha,
                                 double epsilon, double tau, double n,
                                 double entities_per_triple,
                                 const CostModel& cost) {
  KGACC_RETURN_IF_ERROR(ValidatePlanArgs(mu_guess, alpha, epsilon));
  if (tau < 0.0 || n < 0.0 || tau > n) {
    return Status::InvalidArgument("need 0 <= tau <= n");
  }
  if (!(entities_per_triple > 0.0) || entities_per_triple > 1.0) {
    return Status::OutOfRange("entities_per_triple must be in (0, 1]");
  }

  // Project the data path: future annotations arrive at mu_guess, past ones
  // are fixed at (tau, n).
  KGACC_ASSIGN_OR_RETURN(
      const uint64_t total,
      SmallestSatisfying(
          static_cast<uint64_t>(std::ceil(n)),
          [&](uint64_t total_n) -> Result<bool> {
            const double extra = static_cast<double>(total_n) - n;
            const double proj_tau = tau + mu_guess * extra;
            KGACC_ASSIGN_OR_RETURN(
                const AhpdChoice choice,
                AhpdSelect(priors, proj_tau, static_cast<double>(total_n),
                           alpha));
            return choice.interval.Moe() <= epsilon;
          }));

  SamplePlan plan;
  plan.total_triples = total;
  const double extra =
      std::max(0.0, static_cast<double>(total) - n);
  plan.additional_triples = static_cast<uint64_t>(std::llround(extra));
  plan.additional_cost_hours =
      extra *
      (entities_per_triple * cost.entity_identification_seconds +
       cost.fact_verification_seconds *
           static_cast<double>(cost.annotators_per_triple)) /
      3600.0;
  return plan;
}

}  // namespace kgacc
