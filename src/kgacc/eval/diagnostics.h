#ifndef KGACC_EVAL_DIAGNOSTICS_H_
#define KGACC_EVAL_DIAGNOSTICS_H_

#include <cstdint>

#include "kgacc/estimate/design_effect.h"
#include "kgacc/intervals/interval.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/stats/bootstrap.h"
#include "kgacc/util/status.h"

/// \file diagnostics.h
/// Post-audit per-unit diagnostics: a percentile-bootstrap interval on the
/// between-unit accuracy and a Kish design effect estimated from the same
/// unit history. The point of this module is the *source selection*: with
/// `retain_unit_history` on it replays the full `units()` record, and with
/// retention off — the O(1)-memory audit mode — it consumes the seeded
/// uniform reservoir (`AnnotatedSample::reservoir_units()`) that the
/// session maintains for exactly this purpose. Either way an audit that
/// held constant memory still gets distribution-level diagnostics at the
/// end, from an unbiased subsample instead of nothing.

namespace kgacc {

/// Per-unit diagnostics for one finished (or paused) annotated sample.
struct SampleDiagnostics {
  /// Units the diagnostics were computed from.
  uint64_t units_used = 0;
  /// Units the audit accumulated in total (`num_units()`); larger than
  /// `units_used` when the reservoir subsampled the stream.
  uint64_t units_total = 0;
  /// True when the reservoir (retention off) fed the diagnostics.
  bool from_reservoir = false;
  /// Mean of per-unit accuracies over the units used (the cluster-design
  /// point estimate of Eq. 3 restricted to this subsample).
  double unit_mean = 0.0;
  /// Percentile-bootstrap interval on that mean.
  Interval unit_mean_interval;
  /// Kish design effect from the between-unit variance of the units used.
  double deff = 1.0;
  /// Effective SRS-equivalent sample size for the *full* audit:
  /// `num_triples() / deff` (the subsample estimates the ratio; the full
  /// totals anchor the scale).
  double n_eff = 0.0;
  double tau_eff = 0.0;
};

/// Computes diagnostics from whichever per-unit record the sample holds:
/// the full history when retention is on, the reservoir otherwise.
/// FailedPrecondition when neither exists (retention off and no reservoir
/// armed) or fewer than two multi-triple-capable units are available.
Result<SampleDiagnostics> ComputeSampleDiagnostics(
    const AnnotatedSample& sample, const BootstrapOptions& bootstrap = {},
    const DesignEffectOptions& design_effect = {});

}  // namespace kgacc

#endif  // KGACC_EVAL_DIAGNOSTICS_H_
