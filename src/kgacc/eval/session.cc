#include "kgacc/eval/session.h"

#include <utility>

namespace kgacc {

Status ValidateEvaluationConfig(const EvaluationConfig& config) {
  if (!(config.moe_threshold > 0.0)) {
    return Status::InvalidArgument("MoE threshold must be positive");
  }
  if (!(config.alpha > 0.0) || !(config.alpha < 1.0)) {
    return Status::OutOfRange("alpha must be in (0,1)");
  }
  if (config.min_sample_triples > config.max_triples) {
    return Status::InvalidArgument(
        "min_sample_triples exceeds max_triples; the run could never "
        "converge before hitting the cap");
  }
  return Status::OK();
}

EvaluationSession::EvaluationSession(Sampler& sampler, Annotator& annotator,
                                     const EvaluationConfig& config,
                                     uint64_t seed, SessionScratch* scratch)
    : sampler_(sampler),
      annotator_(annotator),
      config_(config),
      cost_model_(config.cost),
      seed_(seed),
      rng_(seed),
      init_status_(ValidateEvaluationConfig(config)),
      accumulator_(sampler.estimator()) {
  if (scratch != nullptr) {
    scratch->sample.Clear();
    scratch->batch.Clear();
    sample_ = &scratch->sample;
    batch_ = &scratch->batch;
  } else {
    sample_ = &own_sample_;
    batch_ = &own_batch_;
  }
  cost_model_.annotators_per_triple = annotator_.JudgmentsPerTriple();
  sample_->set_retain_units(config_.retain_unit_history);
  if (init_status_.ok()) sampler_.Reset();
}

StepOutcome EvaluationSession::Snapshot() const {
  StepOutcome outcome;
  outcome.done = done_;
  outcome.stop_reason = result_.stop_reason;
  outcome.annotated_triples = sample_->num_triples();
  outcome.mu = result_.mu;
  outcome.moe = moe_;
  return outcome;
}

Result<StepOutcome> EvaluationSession::Step() {
  if (!init_status_.ok()) return init_status_;
  if (done_) return Snapshot();

  // Phase 1: draw a batch according to the sampling design, into the reused
  // batch buffers (no per-unit allocation; no allocation at all once the
  // buffers have grown to the design's batch footprint).
  SampleBatch& batch = *batch_;
  KGACC_RETURN_IF_ERROR(sampler_.NextBatch(&rng_, &batch));
  if (batch.empty()) {
    result_.stop_reason = StopReason::kPopulationExhausted;
    done_ = true;
    return Snapshot();
  }
  ++result_.iterations;

  // Phase 2: annotate the batch and fold it into the running sample and the
  // streaming estimator state (each unit is touched exactly once).
  const KgView& kg = sampler_.kg();
  for (size_t u = 0; u < batch.size(); ++u) {
    const SampledUnit& unit = batch.unit(u);
    const std::span<const uint64_t> offsets = batch.offsets(unit);
    AnnotatedUnit annotated;
    annotated.cluster = unit.cluster;
    annotated.cluster_population = unit.cluster_population;
    annotated.stratum = unit.stratum;
    annotated.drawn = unit.offset_count;
    for (uint64_t offset : offsets) {
      sample_->MarkAnnotated(TripleRef{unit.cluster, offset});
    }
    annotated.correct = annotator_.AnnotateUnit(kg, unit.cluster, offsets,
                                                &rng_);
    sample_->Add(annotated);
    accumulator_.Add(annotated);
  }

  // Phase 3: estimate from the accumulator — O(batch) per step where the
  // batch estimators re-walk the whole sample — and build the configured
  // 1-alpha interval. The warm state carries each prior's previous HPD
  // solution into the next solve (seeding the 2x2 Newton KKT path, and the
  // last SQP Hessian for its fallback), and serves unchanged (tau, n,
  // alpha) steps straight from the cache.
  Result<AccuracyEstimate> estimate_result =
      (sampler_.estimator() == EstimatorKind::kSrs &&
       config_.finite_population_correction)
          ? accumulator_.Estimate(nullptr, kg.num_triples())
          : accumulator_.Estimate(sampler_.stratum_weights());
  KGACC_ASSIGN_OR_RETURN(const AccuracyEstimate estimate,
                         std::move(estimate_result));
  KGACC_ASSIGN_OR_RETURN(
      result_.interval,
      BuildInterval(config_, sampler_.estimator(), estimate,
                    &result_.winning_prior, &result_.deff, &interval_warm_));
  result_.mu = estimate.mu;
  moe_ = result_.interval.Moe();
  if (config_.record_trace) {
    result_.trace.push_back(TracePoint{estimate.n, moe_, estimate.mu});
  }

  // Phase 4: quality control against the MoE budget and resource caps.
  if (sample_->num_triples() >= config_.min_sample_triples &&
      moe_ <= config_.moe_threshold) {
    result_.converged = true;
    result_.stop_reason = StopReason::kConverged;
    done_ = true;
  } else if (sample_->num_triples() >= config_.max_triples) {
    result_.stop_reason = StopReason::kTripleCapReached;
    done_ = true;
  } else if (config_.max_cost_seconds > 0.0 &&
             AnnotationCostSeconds(cost_model_, *sample_) >=
                 config_.max_cost_seconds) {
    result_.stop_reason = StopReason::kBudgetExhausted;
    done_ = true;
  }
  return Snapshot();
}

Result<EvaluationResult> EvaluationSession::Finish() {
  if (!init_status_.ok()) return init_status_;
  if (sample_->empty()) {
    return Status::FailedPrecondition(
        "sampler produced no units; population may be empty");
  }
  EvaluationResult out = result_;
  out.annotated_triples = sample_->num_triples();
  out.distinct_triples = sample_->num_distinct_triples();
  out.distinct_entities = sample_->num_distinct_entities();
  out.cost_seconds = AnnotationCostSeconds(cost_model_, *sample_);
  out.cost_hours = out.cost_seconds / 3600.0;
  return out;
}

Result<EvaluationResult> EvaluationSession::Run() {
  while (!done_) {
    KGACC_ASSIGN_OR_RETURN(const StepOutcome outcome, Step());
    (void)outcome;
  }
  return Finish();
}

}  // namespace kgacc
