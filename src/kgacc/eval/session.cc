#include "kgacc/eval/session.h"

#include <cstring>
#include <utility>

#include "kgacc/util/codec.h"

namespace kgacc {

namespace {

/// Bump when the snapshot layout changes; a restored payload of another
/// version is rejected outright (no cross-version migration — checkpoints
/// are working state, not archival data).
///
/// v1: original layout.
/// v2: adds `unit_reservoir_capacity` to the config fingerprint and the
///     reservoir subsample to the AnnotatedSample payload — fields shifted,
///     so a v1 payload must fail the version gate rather than misparse.
constexpr uint8_t kSessionSnapshotVersion = 2;

}  // namespace

Status ValidateEvaluationConfig(const EvaluationConfig& config) {
  if (!(config.moe_threshold > 0.0)) {
    return Status::InvalidArgument("MoE threshold must be positive");
  }
  if (!(config.alpha > 0.0) || !(config.alpha < 1.0)) {
    return Status::OutOfRange("alpha must be in (0,1)");
  }
  if (config.min_sample_triples > config.max_triples) {
    return Status::InvalidArgument(
        "min_sample_triples exceeds max_triples; the run could never "
        "converge before hitting the cap");
  }
  return Status::OK();
}

EvaluationSession::EvaluationSession(Sampler& sampler, Annotator& annotator,
                                     const EvaluationConfig& config,
                                     uint64_t seed, SessionScratch* scratch)
    : sampler_(sampler),
      annotator_(annotator),
      config_(config),
      cost_model_(config.cost),
      seed_(seed),
      rng_(seed),
      init_status_(ValidateEvaluationConfig(config)),
      accumulator_(sampler.estimator()) {
  if (scratch != nullptr) {
    scratch->sample.Clear();
    scratch->batch.Clear();
    sample_ = &scratch->sample;
    batch_ = &scratch->batch;
  } else {
    sample_ = &own_sample_;
    batch_ = &own_batch_;
  }
  cost_model_.annotators_per_triple = annotator_.JudgmentsPerTriple();
  sample_->set_retain_units(config_.retain_unit_history);
  if (!config_.retain_unit_history && config_.unit_reservoir_capacity > 0) {
    // The reservoir's stream is decorrelated from the session Rng (its own
    // seeded generator), so arming it never perturbs the audit's draws.
    sample_->EnableReservoir(config_.unit_reservoir_capacity,
                             Mix64(seed ^ 0x7265737672756e69ULL));
  }
  if (init_status_.ok()) sampler_.Reset();
}

StepOutcome EvaluationSession::Snapshot() const {
  StepOutcome outcome;
  outcome.done = done_;
  outcome.stop_reason = result_.stop_reason;
  outcome.annotated_triples = sample_->num_triples();
  outcome.mu = result_.mu;
  outcome.moe = moe_;
  return outcome;
}

Result<StepOutcome> EvaluationSession::Step() {
  if (!init_status_.ok()) return init_status_;
  if (done_) return Snapshot();

  // Phase 1: draw a batch according to the sampling design, into the reused
  // batch buffers (no per-unit allocation; no allocation at all once the
  // buffers have grown to the design's batch footprint).
  SampleBatch& batch = *batch_;
  KGACC_RETURN_IF_ERROR(sampler_.NextBatch(&rng_, &batch));
  if (batch.empty()) {
    result_.stop_reason = StopReason::kPopulationExhausted;
    done_ = true;
    return Snapshot();
  }
  ++result_.iterations;

  // Phase 2: annotate the batch and fold it into the running sample and the
  // streaming estimator state (each unit is touched exactly once).
  const KgView& kg = sampler_.kg();
  for (size_t u = 0; u < batch.size(); ++u) {
    const SampledUnit& unit = batch.unit(u);
    const std::span<const uint64_t> offsets = batch.offsets(unit);
    AnnotatedUnit annotated;
    annotated.cluster = unit.cluster;
    annotated.cluster_population = unit.cluster_population;
    annotated.stratum = unit.stratum;
    annotated.drawn = unit.offset_count;
    for (uint64_t offset : offsets) {
      sample_->MarkAnnotated(TripleRef{unit.cluster, offset});
    }
    annotated.correct = annotator_.AnnotateUnit(kg, unit.cluster, offsets,
                                                &rng_);
    sample_->Add(annotated);
    accumulator_.Add(annotated);
  }

  // Phase 3: estimate from the accumulator — O(batch) per step where the
  // batch estimators re-walk the whole sample — and build the configured
  // 1-alpha interval. The warm state carries each prior's previous HPD
  // solution into the next solve (seeding the 2x2 Newton KKT path, and the
  // last SQP Hessian for its fallback), and serves unchanged (tau, n,
  // alpha) steps straight from the cache.
  Result<AccuracyEstimate> estimate_result =
      (sampler_.estimator() == EstimatorKind::kSrs &&
       config_.finite_population_correction)
          ? accumulator_.Estimate(nullptr, kg.num_triples())
          : accumulator_.Estimate(sampler_.stratum_weights());
  KGACC_ASSIGN_OR_RETURN(const AccuracyEstimate estimate,
                         std::move(estimate_result));
  KGACC_ASSIGN_OR_RETURN(
      result_.interval,
      BuildInterval(config_, sampler_.estimator(), estimate,
                    &result_.winning_prior, &result_.deff, &interval_warm_));
  result_.mu = estimate.mu;
  moe_ = result_.interval.Moe();
  if (config_.record_trace) {
    result_.trace.push_back(TracePoint{estimate.n, moe_, estimate.mu});
  }

  // Phase 4: quality control against the MoE budget and resource caps.
  if (sample_->num_triples() >= config_.min_sample_triples &&
      moe_ <= config_.moe_threshold) {
    result_.converged = true;
    result_.stop_reason = StopReason::kConverged;
    done_ = true;
  } else if (sample_->num_triples() >= config_.max_triples) {
    result_.stop_reason = StopReason::kTripleCapReached;
    done_ = true;
  } else if (config_.max_cost_seconds > 0.0 &&
             AnnotationCostSeconds(cost_model_, *sample_) >=
                 config_.max_cost_seconds) {
    result_.stop_reason = StopReason::kBudgetExhausted;
    done_ = true;
  }
  return Snapshot();
}

Result<EvaluationResult> EvaluationSession::Finish() {
  if (!init_status_.ok()) return init_status_;
  if (sample_->empty()) {
    return Status::FailedPrecondition(
        "sampler produced no units; population may be empty");
  }
  EvaluationResult out = result_;
  out.annotated_triples = sample_->num_triples();
  out.distinct_triples = sample_->num_distinct_triples();
  out.distinct_entities = sample_->num_distinct_entities();
  out.cost_seconds = AnnotationCostSeconds(cost_model_, *sample_);
  out.cost_hours = out.cost_seconds / 3600.0;
  // Surface a degraded durable layer (e.g. a StoredAnnotator that stopped
  // persisting labels) so every driver — local, resumed, networked — reports
  // it uniformly.
  out.degraded = annotator_.degraded();
  out.degradation_note = annotator_.degradation_note();
  return out;
}

Result<EvaluationResult> EvaluationSession::Run() {
  while (!done_) {
    KGACC_ASSIGN_OR_RETURN(const StepOutcome outcome, Step());
    (void)outcome;
  }
  return Finish();
}

void EvaluationSession::SaveState(ByteWriter* w) const {
  w->PutU8(kSessionSnapshotVersion);
  // Identity fingerprint: the snapshot only replays correctly into a
  // session over the same design, configuration, and seed. LoadState
  // verifies every field below before touching any state.
  w->PutFixed64(seed_);
  w->PutString(sampler_.name());
  w->PutU8(static_cast<uint8_t>(config_.method));
  w->PutDouble(config_.alpha);
  w->PutDouble(config_.moe_threshold);
  w->PutVarint(config_.min_sample_triples);
  w->PutVarint(config_.max_triples);
  w->PutDouble(config_.max_cost_seconds);
  w->PutBool(config_.finite_population_correction);
  w->PutBool(config_.retain_unit_history);
  w->PutVarint(config_.unit_reservoir_capacity);
  w->PutBool(config_.record_trace);
  w->PutVarint(config_.priors.size());
  // The prior *parameters*, not just the count: a snapshot solved under
  // Beta(20, 2) must not restore into a session configured with Beta(5, 5).
  for (const BetaPrior& prior : config_.priors) {
    w->PutDouble(prior.a);
    w->PutDouble(prior.b);
  }

  rng_.SaveState(w);
  // Length-prefixed sampler sub-payload: designs with no across-batch state
  // write nothing, and the framing stays self-describing either way.
  ByteWriter sampler_state;
  sampler_.SaveState(&sampler_state);
  w->PutLengthPrefixed(sampler_state.span());
  accumulator_.SaveState(w);
  sample_->SaveState(w);
  SaveAhpdWarmState(interval_warm_, w);

  w->PutDouble(result_.mu);
  w->PutDouble(result_.interval.lower);
  w->PutDouble(result_.interval.upper);
  w->PutZigzag(result_.iterations);
  w->PutVarint(result_.winning_prior);
  w->PutDouble(result_.deff);
  w->PutBool(result_.converged);
  w->PutU8(static_cast<uint8_t>(result_.stop_reason));
  w->PutVarint(result_.trace.size());
  for (const TracePoint& point : result_.trace) {
    w->PutVarint(point.n);
    w->PutDouble(point.moe);
    w->PutDouble(point.mu);
  }
  w->PutBool(done_);
  w->PutDouble(moe_);
}

Status EvaluationSession::LoadState(ByteReader* r) {
  if (!init_status_.ok()) return init_status_;
  KGACC_ASSIGN_OR_RETURN(const uint8_t version, r->U8());
  if (version != kSessionSnapshotVersion) {
    return Status::InvalidArgument(
        "session snapshot version " + std::to_string(int(version)) +
        " is incompatible with this build (expects version " +
        std::to_string(int(kSessionSnapshotVersion)) +
        "); the audit must restart rather than resume");
  }
  KGACC_ASSIGN_OR_RETURN(const uint64_t seed, r->Fixed64());
  KGACC_ASSIGN_OR_RETURN(const std::string design, r->String());
  KGACC_ASSIGN_OR_RETURN(const uint8_t method, r->U8());
  KGACC_ASSIGN_OR_RETURN(const double alpha, r->Double());
  KGACC_ASSIGN_OR_RETURN(const double moe_threshold, r->Double());
  KGACC_ASSIGN_OR_RETURN(const uint64_t min_triples, r->Varint());
  KGACC_ASSIGN_OR_RETURN(const uint64_t max_triples, r->Varint());
  KGACC_ASSIGN_OR_RETURN(const double max_cost, r->Double());
  KGACC_ASSIGN_OR_RETURN(const bool fpc, r->Bool());
  KGACC_ASSIGN_OR_RETURN(const bool retain, r->Bool());
  KGACC_ASSIGN_OR_RETURN(const uint64_t reservoir_capacity, r->Varint());
  KGACC_ASSIGN_OR_RETURN(const bool record_trace, r->Bool());
  KGACC_ASSIGN_OR_RETURN(const uint64_t num_priors, r->Varint());
  bool priors_match = num_priors == config_.priors.size();
  for (uint64_t i = 0; i < num_priors; ++i) {
    KGACC_ASSIGN_OR_RETURN(const double a, r->Double());
    KGACC_ASSIGN_OR_RETURN(const double b, r->Double());
    priors_match = priors_match && i < config_.priors.size() &&
                   a == config_.priors[i].a && b == config_.priors[i].b;
  }
  if (seed != seed_ || design != sampler_.name() ||
      method != static_cast<uint8_t>(config_.method) ||
      alpha != config_.alpha || moe_threshold != config_.moe_threshold ||
      min_triples != config_.min_sample_triples ||
      max_triples != config_.max_triples ||
      max_cost != config_.max_cost_seconds ||
      fpc != config_.finite_population_correction ||
      retain != config_.retain_unit_history ||
      reservoir_capacity != config_.unit_reservoir_capacity ||
      record_trace != config_.record_trace || !priors_match) {
    return Status::InvalidArgument(
        "session snapshot fingerprint does not match this session's design, "
        "configuration, or seed");
  }

  KGACC_RETURN_IF_ERROR(rng_.LoadState(r));
  KGACC_ASSIGN_OR_RETURN(const std::span<const uint8_t> sampler_payload,
                         r->LengthPrefixed());
  sampler_.Reset();
  ByteReader sampler_reader(sampler_payload);
  KGACC_RETURN_IF_ERROR(sampler_.LoadState(&sampler_reader));
  KGACC_RETURN_IF_ERROR(accumulator_.LoadState(r));
  KGACC_RETURN_IF_ERROR(sample_->LoadState(r));
  KGACC_RETURN_IF_ERROR(LoadAhpdWarmState(r, &interval_warm_));

  KGACC_ASSIGN_OR_RETURN(result_.mu, r->Double());
  KGACC_ASSIGN_OR_RETURN(result_.interval.lower, r->Double());
  KGACC_ASSIGN_OR_RETURN(result_.interval.upper, r->Double());
  KGACC_ASSIGN_OR_RETURN(const int64_t iterations, r->Zigzag());
  result_.iterations = static_cast<int>(iterations);
  KGACC_ASSIGN_OR_RETURN(result_.winning_prior, r->Varint());
  KGACC_ASSIGN_OR_RETURN(result_.deff, r->Double());
  KGACC_ASSIGN_OR_RETURN(result_.converged, r->Bool());
  KGACC_ASSIGN_OR_RETURN(const uint8_t stop_reason, r->U8());
  result_.stop_reason = static_cast<StopReason>(stop_reason);
  KGACC_ASSIGN_OR_RETURN(const uint64_t trace_size, r->Varint());
  result_.trace.clear();
  result_.trace.reserve(trace_size);
  for (uint64_t i = 0; i < trace_size; ++i) {
    TracePoint point;
    KGACC_ASSIGN_OR_RETURN(point.n, r->Varint());
    KGACC_ASSIGN_OR_RETURN(point.moe, r->Double());
    KGACC_ASSIGN_OR_RETURN(point.mu, r->Double());
    result_.trace.push_back(point);
  }
  KGACC_ASSIGN_OR_RETURN(done_, r->Bool());
  KGACC_ASSIGN_OR_RETURN(moe_, r->Double());
  return Status::OK();
}

}  // namespace kgacc
