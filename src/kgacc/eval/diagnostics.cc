#include "kgacc/eval/diagnostics.h"

#include <vector>

namespace kgacc {

Result<SampleDiagnostics> ComputeSampleDiagnostics(
    const AnnotatedSample& sample, const BootstrapOptions& bootstrap,
    const DesignEffectOptions& design_effect) {
  const bool from_reservoir = !sample.retain_units();
  const std::vector<AnnotatedUnit>& units =
      from_reservoir ? sample.reservoir_units() : sample.units();
  if (units.empty()) {
    return Status::FailedPrecondition(
        from_reservoir
            ? "no per-unit history: unit retention is off and no reservoir "
              "was armed (set unit_reservoir_capacity > 0)"
            : "no per-unit history: the sample is empty");
  }

  std::vector<double> accuracies;
  accuracies.reserve(units.size());
  uint64_t subsample_triples = 0;
  for (const AnnotatedUnit& unit : units) {
    if (unit.drawn == 0) continue;
    accuracies.push_back(static_cast<double>(unit.correct) /
                         static_cast<double>(unit.drawn));
    subsample_triples += unit.drawn;
  }
  if (accuracies.size() < 2) {
    return Status::FailedPrecondition(
        "per-unit diagnostics need at least two annotated units");
  }

  double mean = 0.0;
  for (double a : accuracies) mean += a;
  mean /= static_cast<double>(accuracies.size());
  double ss = 0.0;
  for (double a : accuracies) ss += (a - mean) * (a - mean);
  const double m = static_cast<double>(accuracies.size());

  SampleDiagnostics diag;
  diag.units_used = accuracies.size();
  diag.units_total = sample.num_units();
  diag.from_reservoir = from_reservoir;
  diag.unit_mean = mean;

  KGACC_ASSIGN_OR_RETURN(
      diag.unit_mean_interval,
      BootstrapInterval(
          accuracies,
          [](const std::vector<double>& xs) {
            double sum = 0.0;
            for (double x : xs) sum += x;
            return sum / static_cast<double>(xs.size());
          },
          bootstrap));

  // Design effect on the subsample: both the between-unit variance of the
  // mean and the SRS reference variance are computed over the same units,
  // so the ratio is a consistent estimate of the full stream's deff (the
  // reservoir is a uniform subsample). The effective sizes then anchor to
  // the audit's full totals.
  AccuracyEstimate estimate;
  estimate.mu = mean;
  estimate.variance = ss / (m * (m - 1.0));
  estimate.n = subsample_triples;
  estimate.num_units = accuracies.size();
  const EffectiveSample eff = ComputeEffectiveSample(estimate, design_effect);
  diag.deff = eff.deff;
  diag.n_eff = static_cast<double>(sample.num_triples()) / eff.deff;
  const double full_mu =
      sample.num_triples() == 0
          ? 0.0
          : static_cast<double>(sample.num_correct()) /
                static_cast<double>(sample.num_triples());
  diag.tau_eff = full_mu * diag.n_eff;
  return diag;
}

}  // namespace kgacc
