#ifndef KGACC_EVAL_PLANNING_H_
#define KGACC_EVAL_PLANNING_H_

#include "kgacc/eval/cost_model.h"
#include "kgacc/intervals/priors.h"
#include "kgacc/util/status.h"

/// \file planning.h
/// Pre-audit and mid-audit planning: how many annotations will this
/// evaluation need? The paper's framework stops adaptively; analysts still
/// need a *forecast* to size budgets and annotator pools (§6.5). These
/// routines answer that with the same machinery the intervals use —
/// Wilson's closed form for the frequentist baseline, and the aHPD
/// posterior-mean lookahead for the Bayesian path.

namespace kgacc {

/// Forecast of the remaining annotation effort.
struct SamplePlan {
  /// Total annotations projected (already-annotated + additional).
  uint64_t total_triples = 0;
  /// Additional annotations beyond the current sample.
  uint64_t additional_triples = 0;
  /// Projected manual effort for the additional annotations, in hours,
  /// assuming the given entity-sharing ratio.
  double additional_cost_hours = 0.0;
};

/// Smallest n with a Wilson MoE <= epsilon at the anticipated accuracy
/// `mu_guess` (closed form inverted numerically; exact to +-1).
Result<uint64_t> WilsonRequiredSampleSize(double mu_guess, double alpha,
                                          double epsilon);

/// Smallest n whose aHPD interval at the posterior-mean data path —
/// tau(n) = mu_guess * n — has MoE <= epsilon under the given priors.
/// This is the expected stopping point of Algorithm 1 when the estimate
/// stabilizes near mu_guess.
Result<uint64_t> AhpdRequiredSampleSize(const std::vector<BetaPrior>& priors,
                                        double mu_guess, double alpha,
                                        double epsilon);

/// Full plan starting from an existing annotation state (tau, n); pass
/// (0, 0) for a fresh audit. `entities_per_triple` is the expected fraction
/// of sampled triples introducing a new entity (1.0 for SRS on entity-rich
/// KGs, ~1/min(m, avg cluster) for TWCS).
Result<SamplePlan> PlanAhpdAudit(const std::vector<BetaPrior>& priors,
                                 double mu_guess, double alpha,
                                 double epsilon, double tau, double n,
                                 double entities_per_triple = 1.0,
                                 const CostModel& cost = {});

}  // namespace kgacc

#endif  // KGACC_EVAL_PLANNING_H_
