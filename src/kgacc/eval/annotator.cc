#include "kgacc/eval/annotator.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "kgacc/util/check.h"

namespace kgacc {

bool OracleAnnotator::Annotate(const KgView& kg, const TripleRef& ref,
                               Rng* rng) {
  (void)rng;
  return kg.label(ref.cluster, ref.offset);
}

uint32_t OracleAnnotator::AnnotateUnit(const KgView& kg, uint64_t cluster,
                                       std::span<const uint64_t> offsets,
                                       Rng* rng) {
  (void)rng;
  uint32_t correct = 0;
  for (uint64_t offset : offsets) {
    correct += kg.label(cluster, offset) ? 1 : 0;
  }
  return correct;
}

NoisyAnnotator::NoisyAnnotator(double error_rate) : error_rate_(error_rate) {
  KGACC_CHECK(error_rate >= 0.0 && error_rate < 0.5);
}

bool NoisyAnnotator::Annotate(const KgView& kg, const TripleRef& ref,
                              Rng* rng) {
  const bool truth = kg.label(ref.cluster, ref.offset);
  return rng->Bernoulli(error_rate_) ? !truth : truth;
}

void NoisyAnnotator::BurnRngDraws(Rng* rng) {
  (void)rng->Bernoulli(error_rate_);
}

MajorityVoteAnnotator::MajorityVoteAnnotator(int num_annotators,
                                             double per_annotator_error_rate)
    : num_annotators_(num_annotators), worker_(per_annotator_error_rate) {
  KGACC_CHECK(num_annotators >= 1 && num_annotators % 2 == 1);
}

bool MajorityVoteAnnotator::Annotate(const KgView& kg, const TripleRef& ref,
                                     Rng* rng) {
  int votes_correct = 0;
  for (int i = 0; i < num_annotators_; ++i) {
    votes_correct += worker_.Annotate(kg, ref, rng) ? 1 : 0;
  }
  return votes_correct * 2 > num_annotators_;
}

void MajorityVoteAnnotator::BurnRngDraws(Rng* rng) {
  for (int i = 0; i < num_annotators_; ++i) worker_.BurnRngDraws(rng);
}

InteractiveAnnotator::InteractiveAnnotator(std::istream* in,
                                           std::ostream* out)
    : in_(in), out_(out) {
  KGACC_CHECK(in != nullptr && out != nullptr);
}

bool InteractiveAnnotator::Annotate(const KgView& kg, const TripleRef& ref,
                                    Rng* rng) {
  (void)rng;
  ++prompts_issued_;
  // Show the real triple when the view carries one; coordinates otherwise.
  if (const auto* materialized = dynamic_cast<const KnowledgeGraph*>(&kg)) {
    const Triple& t = materialized->triple(ref.cluster, ref.offset);
    const Vocabulary& vocab = materialized->vocabulary();
    *out_ << "Is this fact correct?  (" << vocab.TermOf(t.subject) << ", "
          << vocab.TermOf(t.predicate) << ", " << vocab.TermOf(t.object)
          << ")  [y/n] ";
  } else {
    *out_ << "Is triple (cluster " << ref.cluster << ", offset " << ref.offset
          << ") correct? [y/n] ";
  }
  std::string line;
  while (std::getline(*in_, line)) {
    std::transform(line.begin(), line.end(), line.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (line == "y" || line == "yes" || line == "1") return true;
    if (line == "n" || line == "no" || line == "0") return false;
    *out_ << "Please answer y or n: ";
  }
  *out_ << "(end of input; recording as incorrect)\n";
  return false;
}

}  // namespace kgacc
