#ifndef KGACC_EVAL_SESSION_H_
#define KGACC_EVAL_SESSION_H_

#include <cstdint>
#include <limits>

#include "kgacc/estimate/accumulator.h"
#include "kgacc/eval/evaluator.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/sampling/sampler.h"
#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file session.h
/// Incremental form of the iterative evaluation framework (Fig. 1 /
/// Algorithm 1). `EvaluationSession` exposes the monolithic loop of
/// `RunEvaluation` as explicit, resumable steps:
///
///   phase 1  draw a batch        \
///   phase 2  annotate it          |  one Step()
///   phase 3  estimate + interval  |
///   phase 4  stop-rule check     /
///
/// so callers can interleave audits, inspect convergence mid-flight, or
/// schedule many sessions on a thread pool (`EvaluationService`). Driving a
/// session to completion reproduces `RunEvaluation` bit for bit: the same
/// seed yields the identical `EvaluationResult`.
///
/// Per-step cost is O(batch), independent of the accumulated sample size:
/// phase 3 estimates from a streaming `EstimatorAccumulator` rather than
/// re-walking the sample, and the HPD solvers warm-start from the previous
/// step's solution (`AhpdWarmState`).

namespace kgacc {

class ByteWriter;
class ByteReader;

/// Validates the stop-rule parameters shared by `RunEvaluation` and
/// `EvaluationSession`: positive MoE budget, alpha in (0,1), and a minimum
/// sample that does not exceed the annotation cap (a configuration that
/// previously looped past the cap check silently).
Status ValidateEvaluationConfig(const EvaluationConfig& config);

/// Snapshot of a session after one step.
struct StepOutcome {
  /// True once a stop rule has fired; further Step() calls are no-ops.
  bool done = false;
  /// The stop rule that fired (meaningful only when `done`).
  StopReason stop_reason = StopReason::kConverged;
  /// Annotated triples n_S so far.
  uint64_t annotated_triples = 0;
  /// Current accuracy estimate mu-hat (0 before the first estimate).
  double mu = 0.0;
  /// Current margin of error (infinity before the first interval).
  double moe = std::numeric_limits<double>::infinity();
};

/// Reusable storage for running many sessions back to back on one worker
/// (the per-context scratch of `EvaluationService`). A session built on a
/// scratch draws into its `SampleBatch` and accumulates into its
/// `AnnotatedSample`, so consecutive audits inherit warm buffer capacity —
/// in particular the distinct-set tables, which otherwise re-grow from 16
/// slots on every job. One scratch serves one session at a time; it must
/// outlive any session built on it.
struct SessionScratch {
  SampleBatch batch;
  AnnotatedSample sample;
};

/// One in-flight evaluation: a sampler bound to a population, an annotation
/// oracle, a configuration, and the RNG stream derived from `seed`.
///
/// The sampler and annotator must outlive the session. The sampler is
/// Reset() on construction and mutated by Step(); it must not be shared
/// with a concurrently running session (clone it via `Sampler::Clone`).
class EvaluationSession {
 public:
  /// `scratch`, when given, supplies the batch and sample storage (cleared
  /// on construction) instead of session-owned members; results are
  /// identical either way.
  EvaluationSession(Sampler& sampler, Annotator& annotator,
                    const EvaluationConfig& config, uint64_t seed,
                    SessionScratch* scratch = nullptr);

  /// Runs one framework iteration: draw + annotate one batch, re-estimate,
  /// rebuild the 1-alpha interval, and evaluate the stop rules. Returns the
  /// post-step snapshot; once `done`, further calls return the same
  /// snapshot without drawing. Errors (invalid config, estimator or solver
  /// failure) are returned as statuses, exactly as `RunEvaluation` would.
  Result<StepOutcome> Step();

  /// True once a stop rule has fired.
  bool done() const { return done_; }

  /// Finalizes and returns the result accumulated so far: fills in the
  /// distinct-triple/entity tallies and the cost-model charges. Fails with
  /// FailedPrecondition when no units were ever drawn (empty population).
  /// May be called mid-run for a partial-result snapshot; the session can
  /// keep stepping afterwards.
  Result<EvaluationResult> Finish();

  /// Drives the session to completion (Step until done) and finalizes —
  /// the full `RunEvaluation` semantics.
  Result<EvaluationResult> Run();

  /// The accumulated annotated sample (Algorithm 1's `sample` variable).
  /// Its `units()` history is empty when the config opted out of
  /// `retain_unit_history`; totals and distinct counts are always live.
  const AnnotatedSample& sample() const { return *sample_; }

  /// The streaming estimator state Step() estimates from — every batch is
  /// folded in once, so phase 3 costs O(batch), not O(sample).
  const EstimatorAccumulator& accumulator() const { return accumulator_; }

  /// The cross-step HPD warm carry threaded through `BuildInterval`: the
  /// per-prior previous solutions that seed the Newton KKT solver each
  /// step, plus the last SQP BFGS curvature for its fallback.
  const AhpdWarmState& interval_warm() const { return interval_warm_; }

  /// The seed this session's stochastic path is derived from.
  uint64_t seed() const { return seed_; }

  /// Batches drawn so far.
  int iterations() const { return result_.iterations; }

  /// Serializes the complete resumable state — RNG stream position, sampler
  /// bookkeeping, streaming estimator, annotated sample (totals, distinct
  /// sets, retained history), HPD warm carry, and the partial result — as
  /// one snapshot payload (the checkpoint frames `CheckpointManager` writes
  /// into the annotation WAL). All doubles travel bit-exact: a restored
  /// session replays the identical stochastic and floating-point path, so
  /// resuming mid-audit reproduces the uninterrupted report byte for byte.
  void SaveState(ByteWriter* w) const;

  /// Restores a snapshot into a session constructed over the *same* design,
  /// population, configuration, and seed (a fingerprint is verified; a
  /// mismatched snapshot is rejected, not half-applied). The sampler is
  /// Reset() and its serialized bookkeeping reloaded.
  Status LoadState(ByteReader* r);

 private:
  /// Builds the snapshot for the current state.
  StepOutcome Snapshot() const;

  Sampler& sampler_;
  Annotator& annotator_;
  EvaluationConfig config_;
  CostModel cost_model_;
  uint64_t seed_;
  Rng rng_;
  Status init_status_;
  /// Session-owned storage, used when no external scratch is supplied.
  AnnotatedSample own_sample_;
  SampleBatch own_batch_;
  /// Active storage: the scratch's buffers or the members above.
  AnnotatedSample* sample_ = nullptr;
  SampleBatch* batch_ = nullptr;
  EstimatorAccumulator accumulator_;
  AhpdWarmState interval_warm_;
  EvaluationResult result_;
  bool done_ = false;
  double moe_ = std::numeric_limits<double>::infinity();
};

}  // namespace kgacc

#endif  // KGACC_EVAL_SESSION_H_
