#include "kgacc/eval/cost_model.h"

namespace kgacc {

double AnnotationCostSeconds(const CostModel& model,
                             const AnnotatedSample& sample) {
  const double entities =
      static_cast<double>(sample.num_distinct_entities());
  const double triples = static_cast<double>(sample.num_distinct_triples());
  return entities * model.entity_identification_seconds +
         triples * model.fact_verification_seconds *
             static_cast<double>(model.annotators_per_triple);
}

double AnnotationCostHours(const CostModel& model,
                           const AnnotatedSample& sample) {
  return AnnotationCostSeconds(model, sample) / 3600.0;
}

}  // namespace kgacc
