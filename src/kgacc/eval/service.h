#ifndef KGACC_EVAL_SERVICE_H_
#define KGACC_EVAL_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kgacc/eval/evaluator.h"
#include "kgacc/eval/session.h"
#include "kgacc/intervals/credible.h"
#include "kgacc/sampling/sampler.h"
#include "kgacc/store/annotation_store.h"
#include "kgacc/util/status.h"
#include "kgacc/util/thread_pool.h"

/// \file service.h
/// Multi-audit evaluation service: accepts a batch of independent
/// evaluation jobs (population x sampling design x configuration x seed)
/// and executes them concurrently on a thread pool, one `EvaluationSession`
/// per job. Every "compare N interval methods on M KGs under R repetitions"
/// scenario in the experiment harness is one such batch; the service turns
/// it into a single parallel pass.
///
/// Execution model: shard-per-core. Jobs are pinned deterministically to
/// *execution contexts* (`job_index % groups`), each context owning a cache
/// of cloned samplers keyed by job prototype plus reusable session scratch
/// (batch buffers and annotated-sample storage). At submit time every group
/// is handed — whole — to its home worker's private job ring
/// (`group % num_threads` via `ThreadPool::SubmitTo`), so the steady state
/// runs with no shared mutable state: each worker drains its own ring and
/// writes job outcomes to disjoint slots. Work-stealing exists only at the
/// group granularity — a worker that runs dry takes a complete group off a
/// neighbour's ring, never individual jobs — which keeps per-context
/// caches hot and a single-group batch on a single thread for its whole
/// life. `Options::reuse_contexts = false` selects the legacy
/// fresh-state-per-job path (same results, used as a cross-check).
///
/// Determinism: each job's stochastic path is fully determined by its own
/// seed (jobs clone their sampler prototypes and own their RNGs; a context
/// Reset()s its cached clone before every job), so batch results are
/// byte-identical regardless of worker count, pinning, or scheduling
/// order, and are returned in submission order.

namespace kgacc {

/// Robustness telemetry one job's durable machinery reports back to the
/// service (collected via `EvaluationJob::robustness` after the job ran).
struct JobRobustness {
  /// The job finished in degraded mode (store writes were abandoned; see
  /// `StoredAnnotator`/`CheckpointManager` degradation semantics).
  bool degraded = false;
  /// Store-write retries the job's backoff loops performed.
  uint64_t retries = 0;
};

/// One audit to execute.
struct EvaluationJob {
  /// Sampler prototype bound to the job's population. The service clones
  /// it (`Sampler::Clone`) so concurrent jobs never share mutable sampler
  /// state; the prototype itself is not touched. Must outlive RunBatch.
  const Sampler* sampler = nullptr;
  /// Annotation oracle, possibly shared across jobs: `Annotate` must then
  /// be safe to call concurrently. The simulation annotators (Oracle,
  /// Noisy, MajorityVote) qualify — all their randomness flows through the
  /// per-job Rng argument. `InteractiveAnnotator` does not; route human
  /// audits through a single-job batch or `RunEvaluation`.
  Annotator* annotator = nullptr;
  /// Optional durable label store. When set, the worker wraps `annotator`
  /// in a per-job `StoredAnnotator` over `(store, audit_id)`: stored
  /// triples answer from the index at zero oracle cost and fresh judgments
  /// are appended through the store's group-commit queue — so any number
  /// of jobs in one batch may point at the *same* store and share one
  /// label pool (concurrent appends coalesce under shared fsyncs). The
  /// store must outlive RunBatch. A sticky store-write failure fails the
  /// job (kFailFast) or degrades it (kDegrade, surfaced in the outcome).
  AnnotationStore* store = nullptr;
  /// Audit id for the job's store writes and checkpoints. Concurrent jobs
  /// sharing a store must use distinct ids.
  uint64_t audit_id = 0;
  /// Policy for the wrapping `StoredAnnotator` (retry/degradation, Rng
  /// burning). Ignored when `store` is null.
  StoredAnnotator::Options store_options;
  EvaluationConfig config;
  /// Seed of the job's stochastic path. Use `DeriveJobSeed` to split one
  /// base seed into independent per-job streams, or assign sequential
  /// seeds to reproduce the paper's base_seed + i repetition protocol.
  uint64_t seed = 0;
  /// Free-form tag copied verbatim to the job's outcome (dataset name,
  /// method name, ...).
  std::string label;
  /// Tenant the job bills to (empty = untenanted); copied verbatim to the
  /// outcome. When any job in a batch carries a tenant, pinning groups are
  /// partitioned by tenant — one tenant's jobs share execution contexts
  /// instead of interleaving round-robin with everyone else's — so a
  /// multi-tenant batch keeps per-tenant sampler caches warm and a noisy
  /// tenant's cache churn stays inside its own groups. Like all grouping,
  /// this affects locality only, never results.
  std::string tenant;
  /// Optional per-step hook, invoked after every successful `Step()` of
  /// this job's session — the durable-audit integration point: bind a
  /// `CheckpointManager::OnStep` here and the job snapshots itself into
  /// the annotation WAL as it progresses. A non-OK return aborts the job
  /// with that status (fail the audit rather than outrun its log). Runs on
  /// the worker thread; per-job state only, unless externally synchronized.
  std::function<Status(const EvaluationSession&)> on_step;
  /// Hard step budget (0 = unlimited): the job is cancelled with
  /// DeadlineExceeded once its session has run this many steps without
  /// converging — the backstop against a mis-specified design spinning a
  /// worker forever.
  uint64_t max_steps = 0;
  /// Wall-clock budget in seconds (0 = none), measured from the job's
  /// start and checked on every step boundary; a job past its deadline is
  /// cancelled with DeadlineExceeded. Step-granular by design: the check
  /// costs one clock read and never interrupts a step mid-flight.
  double deadline_seconds = 0.0;
  /// Optional robustness collector, called once on the worker thread after
  /// the job's session finished (success or failure). Bind it to the job's
  /// `StoredAnnotator`/`CheckpointManager` so degradation and retry counts
  /// surface in the outcome; leave empty for plain in-memory jobs.
  std::function<JobRobustness()> robustness;
};

/// Outcome of one job: a result or the error that stopped it. Job failures
/// are reported per slot; they never abort the rest of the batch.
struct EvaluationJobOutcome {
  /// OK iff `result` is meaningful.
  Status status;
  EvaluationResult result;
  std::string label;
  /// Tenant tag copied from the job (empty = untenanted).
  std::string tenant;
  uint64_t seed = 0;
  /// The job completed but its durable layer degraded (labels or
  /// checkpoints stopped persisting); `status` is still OK.
  bool degraded = false;
  /// Store-write retries performed by the job (see `JobRobustness`).
  uint64_t retries = 0;
  /// The job was cancelled at its step or wall-clock budget (`status` is
  /// then DeadlineExceeded).
  bool deadline_exceeded = false;
  /// Store-backed jobs only: triples answered from the shared store's
  /// index (no oracle call) and triples delegated to the inner annotator.
  uint64_t store_hits = 0;
  uint64_t store_oracle_calls = 0;
};

/// Aggregate throughput accounting for one RunBatch call.
struct ServiceBatchStats {
  /// Worker threads in the pool.
  int num_threads = 0;
  /// Jobs submitted / jobs that returned a non-OK status.
  size_t jobs = 0;
  size_t failed = 0;
  /// Annotated triples summed over the successful jobs.
  uint64_t annotated_triples = 0;
  /// Wall-clock time of the batch.
  double wall_seconds = 0.0;
  /// Successful audits and annotated triples per wall-clock second.
  double audits_per_second = 0.0;
  double triples_per_second = 0.0;
  /// Timing split of the batch, the diagnosis the thread-scaling work
  /// started from (short cells were dominated by everything *but* run):
  /// * `spawn_seconds` — worker spin-up attributed to this batch. Non-zero
  ///   only for the first batch after construction; the pool is persistent,
  ///   so every later batch reports 0 here.
  /// * `submit_seconds` — main-thread time handing whole groups to their
  ///   home workers' rings.
  /// * `run_seconds` — group task execution time summed across workers
  ///   (aggregate CPU, so > wall_seconds when scaling works).
  /// * `barrier_seconds` — main-thread time blocked between the last
  ///   handoff and batch completion.
  double spawn_seconds = 0.0;
  double submit_seconds = 0.0;
  double run_seconds = 0.0;
  double barrier_seconds = 0.0;
  /// Pinning groups the batch was split into (1 task per group), and how
  /// many of them ran on a worker other than their home shard. Zero stolen
  /// groups is the balanced steady state.
  size_t groups = 0;
  size_t stolen_groups = 0;
  /// HPD solver counters aggregated across every worker thread of the
  /// batch (per-path solve/eval tallies plus warm-cache hits). The
  /// thread-local `ThreadHpdStatsSnapshot` counters are captured around
  /// each pinning-group task and summed, so solver efficiency
  /// (beta evals per solve, Newton share) is observable — and gateable —
  /// under parallel load, not just in the single-threaded step bench.
  HpdSolveStats hpd;
  /// Robustness aggregates across the batch — all three are zero in the
  /// healthy, unarmed default (the invariant the throughput bench records):
  /// jobs that finished degraded, store-write retries summed over all jobs,
  /// and jobs cancelled at a step/wall-clock budget.
  size_t degraded_jobs = 0;
  uint64_t total_retries = 0;
  size_t deadline_hits = 0;
  /// Store-backed batch aggregates. Hits/oracle-calls are summed over the
  /// jobs; the commit counters are deltas of `group_commit_stats()` across
  /// the batch for every distinct store the jobs referenced — so
  /// `store_commit_syncs` is the batch's total fsync bill and
  /// `store_commit_frames / store_commit_batches` the group-commit
  /// coalescing factor (frames settled per leader round). All zero for
  /// store-less batches.
  uint64_t store_hits = 0;
  uint64_t store_oracle_calls = 0;
  uint64_t store_commit_batches = 0;
  uint64_t store_commit_frames = 0;
  uint64_t store_commit_syncs = 0;
};

/// Ordered per-job outcomes plus the batch throughput stats.
struct EvaluationBatchResult {
  /// outcomes[i] corresponds to jobs[i] of the RunBatch call.
  std::vector<EvaluationJobOutcome> outcomes;
  ServiceBatchStats stats;
};

/// Executes evaluation-job batches on a fixed worker pool. One service can
/// be reused across many batches; construction cost is the pool spawn.
class EvaluationService {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency()
    /// (at least 1).
    int num_threads = 0;
    /// Pin jobs to per-group execution contexts that reuse cloned samplers
    /// and session scratch across the batch (the fast path). Disable to run
    /// every job with fresh state — results are byte-identical either way;
    /// the slow path exists as the reference for determinism tests.
    bool reuse_contexts = true;
    /// Pinning groups per worker thread (>= 1). More groups mean
    /// finer-grained stealing when job durations are uneven, at the price
    /// of colder per-context caches.
    int groups_per_thread = 4;
    /// Minimum jobs per pinning group (>= 1). Small batches used to shred
    /// into `threads x groups_per_thread` near-empty groups — at 32 jobs on
    /// 4 threads that is 16 two-job tasks, all cold contexts and queue
    /// traffic (the measured thread-degradation cliff). The floor caps the
    /// group count at `jobs / min_jobs_per_group`, so a small batch becomes
    /// a few substantial whole-group handoffs instead. Group membership
    /// never affects results, only locality.
    int min_jobs_per_group = 8;
  };

  /// Default: one worker per hardware thread.
  EvaluationService();
  explicit EvaluationService(const Options& options);
  ~EvaluationService();

  /// Runs every job to completion and returns outcomes in submission
  /// order. Blocks until the whole batch is done. Not reentrant: one
  /// RunBatch at a time per service — the execution contexts are service
  /// state, so a second concurrent call would share scratch with live
  /// sessions (submit one combined batch instead). Job sampler prototypes
  /// only need to outlive the call: cached clones are dropped before it
  /// returns (scratch buffers persist across batches and hold no
  /// population references).
  EvaluationBatchResult RunBatch(const std::vector<EvaluationJob>& jobs);

  int num_threads() const { return pool_.num_threads(); }

  /// Registers a long-lived sampler prototype: worker contexts keep their
  /// cached clones for it across `RunBatch` calls instead of dropping them
  /// at batch end, so a stream of batches over the same population pays
  /// each context's clone once ever. The caller guarantees the prototype
  /// (and its population) outlives the registration — that lifetime
  /// promise is exactly what registration asserts. Must not be called
  /// while a batch is running (the service is not reentrant).
  void RegisterPrototype(const Sampler* prototype);

  /// Ends the lifetime promise: drops the registration and every cached
  /// clone of `prototype` from all contexts.
  void UnregisterPrototype(const Sampler* prototype);

  /// Unregisters everything (bulk generation bump between workloads).
  void ClearPrototypes();

  /// Sampler clones created by worker contexts so far (service lifetime).
  /// Registration is observable here: repeated batches over a registered
  /// prototype stop minting new clones. Call between batches only.
  uint64_t sampler_clones_created() const;

  /// Splits `base_seed` into the `job_index`-th independent seed stream
  /// (SplitMix64 over the pair), so one user-facing seed can fan out into
  /// any number of decorrelated per-job RNGs.
  static uint64_t DeriveJobSeed(uint64_t base_seed, uint64_t job_index);

 private:
  struct WorkerContext;

  /// Runs one job into `*out`, drawing the sampler clone and scratch from
  /// `context` when non-null.
  static void RunJob(const EvaluationJob& job, WorkerContext* context,
                     EvaluationJobOutcome* out);

  Options options_;
  ThreadPool pool_;
  /// Whether a batch already reported the pool's one-time spawn cost in
  /// its stats (the pool itself is persistent across RunBatch calls).
  bool spawn_charged_ = false;
  /// One context per pinning group, grown on demand and reused across
  /// batches (warm scratch capacity).
  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  /// Prototypes whose clone caches survive across batches. Read-only while
  /// a batch runs; mutated only between batches.
  std::vector<const Sampler*> registered_prototypes_;
};

}  // namespace kgacc

#endif  // KGACC_EVAL_SERVICE_H_
