#ifndef KGACC_EVAL_EVALUATOR_H_
#define KGACC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kgacc/estimate/design_effect.h"
#include "kgacc/estimate/estimators.h"
#include "kgacc/eval/annotator.h"
#include "kgacc/eval/cost_model.h"
#include "kgacc/intervals/ahpd.h"
#include "kgacc/intervals/frequentist.h"
#include "kgacc/sampling/sampler.h"
#include "kgacc/util/status.h"

/// \file evaluator.h
/// The iterative KG accuracy evaluation framework of Fig. 1 / §2.3 and the
/// full Algorithm 1: sample a batch -> annotate -> estimate -> build the
/// 1-alpha interval -> stop when MoE <= epsilon. All interval methods (the
/// frequentist baselines and the Bayesian CrIs, including aHPD) run through
/// the same loop, so efficiency comparisons isolate the interval choice.

namespace kgacc {

/// Interval construction strategies selectable in the loop.
enum class IntervalMethod {
  kWald,
  kWilson,
  kAgrestiCoull,
  kClopperPearson,
  kEqualTailed,  ///< ET CrI under priors[0].
  kHpd,          ///< HPD CrI under priors[0].
  kAhpd,         ///< Adaptive HPD over the whole prior set (Algorithm 1).
};

/// Human-readable method name ("aHPD", "Wilson", ...).
const char* IntervalMethodName(IntervalMethod method);

/// Configuration of one evaluation run.
struct EvaluationConfig {
  IntervalMethod method = IntervalMethod::kAhpd;
  /// Significance level alpha (paper default 0.05).
  double alpha = 0.05;
  /// MoE upper bound epsilon (paper default 0.05).
  double moe_threshold = 0.05;
  /// Prior set: all priors compete under kAhpd; kEqualTailed / kHpd use the
  /// first entry. Ignored by the frequentist methods.
  std::vector<BetaPrior> priors = DefaultUninformativePriors();
  HpdOptions hpd;
  /// Minimum annotated triples before the stop rule may fire — the usual
  /// n >= 30 normal-approximation floor; also what makes the earliest Wald
  /// zero-width halt occur at n = 30 (Example 1).
  uint64_t min_sample_triples = 30;
  /// Safety cap on annotations; exceeding it reports convergence failure.
  uint64_t max_triples = 1000000;
  /// Manual-effort budget in seconds (0 = unlimited). When the accumulated
  /// annotation cost reaches it the evaluation stops early — the
  /// budget-exhaustion regime §6.5 discusses: the cheaper the interval
  /// method, the more audits finish inside a fixed budget.
  double max_cost_seconds = 0.0;
  /// Apply the finite-population correction (1 - n/N) to SRS estimates.
  /// Only meaningful with a without-replacement sampler on small KGs, where
  /// it lets the interval shrink to zero at full census (§2.2). Off by
  /// default to match the paper's with-replacement protocol.
  bool finite_population_correction = false;
  CostModel cost;
  DesignEffectOptions design_effect;
  /// When true, records (n, MoE) after every batch for plotting.
  bool record_trace = false;
  /// Keep the per-unit history in the session's `AnnotatedSample`. The
  /// streaming `EstimatorAccumulator` the session estimates from never
  /// replays units, so long-running audits can opt out and hold O(1)
  /// sample memory; keep it on (default) when `session.sample().units()`
  /// is inspected afterwards (diagnostics, bootstrap, custom estimators).
  bool retain_unit_history = true;
  /// With retention off, keep a seeded uniform reservoir of this many units
  /// instead (0 = nothing): post-run bootstrap/design-effect diagnostics
  /// read `sample().reservoir_units()` while the audit itself stays O(1) in
  /// sample memory. Ignored while `retain_unit_history` is on.
  uint64_t unit_reservoir_capacity = 256;
};

/// One point of the convergence trace.
struct TracePoint {
  uint64_t n = 0;
  double moe = 0.0;
  double mu = 0.0;
};

/// Why an evaluation run ended.
enum class StopReason {
  /// MoE <= epsilon with the minimum sample satisfied (success).
  kConverged,
  /// Hit the max_triples safety cap.
  kTripleCapReached,
  /// Exhausted the manual-effort budget (max_cost_seconds).
  kBudgetExhausted,
  /// A without-replacement design consumed the whole population.
  kPopulationExhausted,
};

/// Stable name for a stop reason ("converged", ...).
const char* StopReasonName(StopReason reason);

/// Outcome of one evaluation run.
struct EvaluationResult {
  /// Final accuracy estimate mu-hat.
  double mu = 0.0;
  /// The reported 1-alpha interval.
  Interval interval;
  /// Annotated triples n_S (estimator sample size, duplicates included).
  uint64_t annotated_triples = 0;
  /// Distinct triples manually verified.
  uint64_t distinct_triples = 0;
  /// Distinct entities identified.
  uint64_t distinct_entities = 0;
  /// Manual effort per the cost model.
  double cost_seconds = 0.0;
  double cost_hours = 0.0;
  /// Batches drawn (framework iterations).
  int iterations = 0;
  /// Winning prior index (aHPD only; 0 otherwise).
  size_t winning_prior = 0;
  /// Design effect in force at the final iteration (1 for SRS).
  double deff = 1.0;
  /// True when the MoE criterion was met before hitting a cap.
  bool converged = false;
  /// Why the run ended (kConverged iff `converged`).
  StopReason stop_reason = StopReason::kConverged;
  /// The annotator reported a degraded durable layer (labels judged after
  /// the downgrade were served but no longer persisted). The estimate is
  /// still exact; only durability was lost. Resumed and networked runs
  /// surface this uniformly in the rendered report.
  bool degraded = false;
  /// Human-readable cause of the degradation (empty when healthy).
  std::string degradation_note;
  /// Convergence trace (only when record_trace).
  std::vector<TracePoint> trace;
};

/// Runs the full iterative procedure with the given sampler (already bound
/// to a population), annotator, and configuration. `seed` determines the
/// entire stochastic path; rerunning with the same arguments reproduces the
/// result bit for bit.
///
/// This is a convenience wrapper that drives an `EvaluationSession`
/// (eval/session.h) to completion; use the session directly for stepwise
/// control, or `EvaluationService` (eval/service.h) to fan many evaluations
/// out over a thread pool.
Result<EvaluationResult> RunEvaluation(Sampler& sampler, Annotator& annotator,
                                       const EvaluationConfig& config,
                                       uint64_t seed);

/// Builds the configured 1-alpha interval from an estimate (one pass of
/// phase 3). Exposed separately so callers can construct intervals from
/// pre-collected samples; `RunEvaluation` uses this internally. The Kish
/// design-effect adjustment is applied for every non-SRS estimator kind.
///
/// `warm`, when given, carries the per-prior HPD solutions across
/// successive calls of one iterative run (kHpd / kAhpd only): each step's
/// SQP then starts from the previous step's interval instead of the ET
/// interval, and an unchanged effective (tau, n) skips the solve outright.
Result<Interval> BuildInterval(const EvaluationConfig& config,
                               EstimatorKind kind,
                               const AccuracyEstimate& estimate,
                               size_t* winning_prior = nullptr,
                               double* deff_out = nullptr,
                               AhpdWarmState* warm = nullptr);

}  // namespace kgacc

#endif  // KGACC_EVAL_EVALUATOR_H_
