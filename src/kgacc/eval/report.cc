#include "kgacc/eval/report.h"

#include <cstdio>

namespace kgacc {

namespace {

std::string Escaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Num(double v, const char* fmt = "%.6f") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

std::string RenderTextReport(const ReportContext& context,
                             const EvaluationConfig& config,
                             const EvaluationResult& result) {
  std::string out;
  out += "KG accuracy audit: " + context.dataset_name + "\n";
  out += "  method: " + std::string(IntervalMethodName(config.method)) +
         " under " + context.design_name + " sampling\n";
  out += "  estimated accuracy: " + Num(result.mu, "%.4f") + "\n";
  char interval[96];
  std::snprintf(interval, sizeof(interval),
                "  %.0f%% interval: [%.4f, %.4f]  (MoE %.4f, budget %.4f)\n",
                100.0 * (1.0 - config.alpha), result.interval.lower,
                result.interval.upper, result.interval.Moe(),
                config.moe_threshold);
  out += interval;
  if (config.method == IntervalMethod::kAhpd ||
      config.method == IntervalMethod::kHpd ||
      config.method == IntervalMethod::kEqualTailed) {
    out += "  interpretation: the accuracy lies in this interval with " +
           Num(100.0 * (1.0 - config.alpha), "%.0f") +
           "% probability (credible interval)\n";
    if (config.method == IntervalMethod::kAhpd &&
        result.winning_prior < config.priors.size()) {
      out += "  winning prior: " + config.priors[result.winning_prior].name +
             "\n";
    }
  } else {
    out += "  interpretation: across repeated audits, " +
           Num(100.0 * (1.0 - config.alpha), "%.0f") +
           "% of intervals built this way cover the true accuracy "
           "(confidence interval)\n";
  }
  char effort[128];
  std::snprintf(effort, sizeof(effort),
                "  effort: %llu annotations over %llu facts / %llu entities "
                "in %d rounds (%.2f h)\n",
                static_cast<unsigned long long>(result.annotated_triples),
                static_cast<unsigned long long>(result.distinct_triples),
                static_cast<unsigned long long>(result.distinct_entities),
                result.iterations, result.cost_hours);
  out += effort;
  out += "  stop reason: " + std::string(StopReasonName(result.stop_reason)) +
         "\n";
  if (result.deff != 1.0) {
    out += "  design effect: " + Num(result.deff, "%.3f") + "\n";
  }
  if (result.degraded) {
    out += "  DEGRADED: durable layer went read-only";
    if (!result.degradation_note.empty()) {
      out += " (" + result.degradation_note + ")";
    }
    out += "; labels after the downgrade were not persisted\n";
  }
  return out;
}

std::string RenderJsonReport(const ReportContext& context,
                             const EvaluationConfig& config,
                             const EvaluationResult& result) {
  std::string out = "{";
  out += "\"dataset\":\"" + Escaped(context.dataset_name) + "\"";
  out += ",\"design\":\"" + Escaped(context.design_name) + "\"";
  out += ",\"method\":\"" +
         std::string(IntervalMethodName(config.method)) + "\"";
  out += ",\"alpha\":" + Num(config.alpha, "%.17g");
  out += ",\"epsilon\":" + Num(config.moe_threshold, "%.17g");
  out += ",\"mu\":" + Num(result.mu, "%.17g");
  out += ",\"lower\":" + Num(result.interval.lower, "%.17g");
  out += ",\"upper\":" + Num(result.interval.upper, "%.17g");
  out += ",\"moe\":" + Num(result.interval.Moe(), "%.17g");
  out += ",\"annotated_triples\":" +
         std::to_string(result.annotated_triples);
  out += ",\"distinct_triples\":" + std::to_string(result.distinct_triples);
  out += ",\"distinct_entities\":" +
         std::to_string(result.distinct_entities);
  out += ",\"iterations\":" + std::to_string(result.iterations);
  out += ",\"cost_hours\":" + Num(result.cost_hours, "%.17g");
  out += ",\"design_effect\":" + Num(result.deff, "%.17g");
  out += ",\"converged\":" + std::string(result.converged ? "true" : "false");
  out += ",\"stop_reason\":\"" +
         std::string(StopReasonName(result.stop_reason)) + "\"";
  if (config.method == IntervalMethod::kAhpd &&
      result.winning_prior < config.priors.size()) {
    out += ",\"winning_prior\":\"" +
           Escaped(config.priors[result.winning_prior].name) + "\"";
  }
  // Unconditional so byte-identical diffs between healthy runs (the CI
  // crash-recovery gate) keep holding; the note only appears degraded.
  out += ",\"degraded\":" + std::string(result.degraded ? "true" : "false");
  if (result.degraded) {
    out += ",\"degradation_note\":\"" + Escaped(result.degradation_note) +
           "\"";
  }
  out += "}";
  return out;
}

}  // namespace kgacc
