#ifndef KGACC_EVAL_ANNOTATOR_H_
#define KGACC_EVAL_ANNOTATOR_H_

#include <iosfwd>
#include <memory>

#include "kgacc/kg/kg_view.h"
#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/util/random.h"

/// \file annotator.h
/// Annotation oracles (phase 2 of the evaluation framework, Fig. 1). In
/// production these calls are manual judgments; the simulators replay the
/// population's gold labels, optionally through a noisy multi-annotator
/// model (the 3-5 annotators + aggregation setting discussed in §6.5).

namespace kgacc {

/// Produces a correctness judgment for one triple.
class Annotator {
 public:
  virtual ~Annotator() = default;

  /// Returns the judged label 1(t) for the triple at `ref`.
  virtual bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) = 0;

  /// How many elementary human judgments one call consumes (1 for a single
  /// annotator, k for a k-way majority vote). Reported by the cost model
  /// extensions.
  virtual int JudgmentsPerTriple() const { return 1; }
};

/// Reads the ground-truth label — a perfect annotator.
class OracleAnnotator final : public Annotator {
 public:
  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
};

/// Flips the ground-truth label with probability `error_rate` (layman
/// annotator with imperfect quality).
class NoisyAnnotator final : public Annotator {
 public:
  explicit NoisyAnnotator(double error_rate);

  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;

  double error_rate() const { return error_rate_; }

 private:
  double error_rate_;
};

/// Aggregates an odd number of independent noisy judgments by majority
/// vote — the real-world protocol of the DBPEDIA dataset (§5).
class MajorityVoteAnnotator final : public Annotator {
 public:
  /// `num_annotators` must be odd and >= 1.
  MajorityVoteAnnotator(int num_annotators, double per_annotator_error_rate);

  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
  int JudgmentsPerTriple() const override { return num_annotators_; }

 private:
  int num_annotators_;
  NoisyAnnotator worker_;
};

/// A genuine human-in-the-loop annotator: prints each sampled triple (when
/// the view is a materialized `KnowledgeGraph`, the actual subject /
/// predicate / object strings) and reads a y/n judgment from an input
/// stream. This is the annotator the `kgacc_audit` CLI uses in
/// `--annotator=human` mode; tests drive it with string streams.
class InteractiveAnnotator final : public Annotator {
 public:
  /// Judgments are read from `in`; prompts go to `out`. Both must outlive
  /// the annotator.
  InteractiveAnnotator(std::istream* in, std::ostream* out);

  /// Prompts for one triple. Accepts y/yes/1/n/no/0 (case-insensitive) and
  /// re-prompts on anything else; end-of-input defaults to "incorrect" so a
  /// truncated session fails conservative.
  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;

  /// Triples judged so far.
  int prompts_issued() const { return prompts_issued_; }

 private:
  std::istream* in_;
  std::ostream* out_;
  int prompts_issued_ = 0;
};

}  // namespace kgacc

#endif  // KGACC_EVAL_ANNOTATOR_H_
