#ifndef KGACC_EVAL_ANNOTATOR_H_
#define KGACC_EVAL_ANNOTATOR_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>

#include "kgacc/kg/kg_view.h"
#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/util/random.h"

/// \file annotator.h
/// Annotation oracles (phase 2 of the evaluation framework, Fig. 1). In
/// production these calls are manual judgments; the simulators replay the
/// population's gold labels, optionally through a noisy multi-annotator
/// model (the 3-5 annotators + aggregation setting discussed in §6.5).

namespace kgacc {

/// Produces a correctness judgment for one triple.
class Annotator {
 public:
  virtual ~Annotator() = default;

  /// Returns the judged label 1(t) for the triple at `ref`.
  virtual bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) = 0;

  /// Judges one sampled unit's triples — `offsets` within `cluster`, the
  /// span layout of the flat `SampleBatch` — and returns how many were
  /// judged correct. The default loops `Annotate` in offset order (one
  /// virtual call per triple); simulation annotators on the service hot
  /// path override it with a tight loop. Overrides must consume the Rng
  /// exactly as the per-triple loop would, so both paths replay the same
  /// stochastic stream.
  virtual uint32_t AnnotateUnit(const KgView& kg, uint64_t cluster,
                                std::span<const uint64_t> offsets, Rng* rng) {
    uint32_t correct = 0;
    for (uint64_t offset : offsets) {
      correct += Annotate(kg, TripleRef{cluster, offset}, rng) ? 1 : 0;
    }
    return correct;
  }

  /// How many elementary human judgments one call consumes (1 for a single
  /// annotator, k for a k-way majority vote). Reported by the cost model
  /// extensions.
  virtual int JudgmentsPerTriple() const { return 1; }

  /// True when the annotator's durable layer downgraded to read-only
  /// operation (judgments still served, no longer persisted). Plain
  /// annotators have no durable layer and are never degraded; decorators
  /// like `StoredAnnotator` override this so sessions can surface the
  /// downgrade uniformly in `EvaluationResult` / rendered reports.
  virtual bool degraded() const { return false; }

  /// Human-readable cause of the degradation; empty when healthy.
  virtual std::string degradation_note() const { return {}; }

  /// Consumes exactly the Rng draws one `Annotate` call would, judging
  /// nothing. `StoredAnnotator`'s opt-in `burn_rng_on_hits` calls this on
  /// store hits so a store-backed run of a *stochastic* simulation
  /// annotator follows a bitwise-identical random path to a bare run. The
  /// default is correct for every annotator that never touches the Rng
  /// (Oracle, Interactive); stochastic annotators must override it in
  /// lockstep with `Annotate`.
  virtual void BurnRngDraws(Rng* rng) { (void)rng; }
};

/// Reads the ground-truth label — a perfect annotator.
class OracleAnnotator final : public Annotator {
 public:
  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
  /// One virtual call per unit instead of per triple; rng is untouched
  /// either way.
  uint32_t AnnotateUnit(const KgView& kg, uint64_t cluster,
                        std::span<const uint64_t> offsets, Rng* rng) override;
};

/// Flips the ground-truth label with probability `error_rate` (layman
/// annotator with imperfect quality).
class NoisyAnnotator final : public Annotator {
 public:
  explicit NoisyAnnotator(double error_rate);

  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
  /// One Bernoulli (one raw word), matching Annotate's single error flip.
  void BurnRngDraws(Rng* rng) override;

  double error_rate() const { return error_rate_; }

 private:
  double error_rate_;
};

/// Aggregates an odd number of independent noisy judgments by majority
/// vote — the real-world protocol of the DBPEDIA dataset (§5).
class MajorityVoteAnnotator final : public Annotator {
 public:
  /// `num_annotators` must be odd and >= 1.
  MajorityVoteAnnotator(int num_annotators, double per_annotator_error_rate);

  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;
  int JudgmentsPerTriple() const override { return num_annotators_; }
  /// One draw per voter — Annotate always polls the full panel.
  void BurnRngDraws(Rng* rng) override;

 private:
  int num_annotators_;
  NoisyAnnotator worker_;
};

/// A genuine human-in-the-loop annotator: prints each sampled triple (when
/// the view is a materialized `KnowledgeGraph`, the actual subject /
/// predicate / object strings) and reads a y/n judgment from an input
/// stream. This is the annotator the `kgacc_audit` CLI uses in
/// `--annotator=human` mode; tests drive it with string streams.
class InteractiveAnnotator final : public Annotator {
 public:
  /// Judgments are read from `in`; prompts go to `out`. Both must outlive
  /// the annotator.
  InteractiveAnnotator(std::istream* in, std::ostream* out);

  /// Prompts for one triple. Accepts y/yes/1/n/no/0 (case-insensitive) and
  /// re-prompts on anything else; end-of-input defaults to "incorrect" so a
  /// truncated session fails conservative.
  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override;

  /// Triples judged so far.
  int prompts_issued() const { return prompts_issued_; }

 private:
  std::istream* in_;
  std::ostream* out_;
  int prompts_issued_ = 0;
};

}  // namespace kgacc

#endif  // KGACC_EVAL_ANNOTATOR_H_
