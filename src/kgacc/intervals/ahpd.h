#ifndef KGACC_INTERVALS_AHPD_H_
#define KGACC_INTERVALS_AHPD_H_

#include <vector>

#include "kgacc/intervals/credible.h"
#include "kgacc/intervals/priors.h"
#include "kgacc/util/status.h"
#include "kgacc/util/thread_pool.h"

/// \file ahpd.h
/// The interval-selection core of the adaptive HPD algorithm (Algorithm 1,
/// lines 14-23): given the current annotation outcome, build one 1-alpha
/// HPD interval per competing prior and keep the shortest. The surrounding
/// sample-annotate-estimate loop lives in `eval/evaluator.h`.

namespace kgacc {

/// Outcome of one aHPD selection round.
struct AhpdChoice {
  /// The winning (shortest) 1-alpha HPD interval.
  Interval interval;
  /// Index into the prior set of the winner.
  size_t prior_index = 0;
  /// Posterior shape branch taken for the winner.
  BetaShape shape = BetaShape::kUnimodal;
  /// All competing intervals, parallel to the prior set (for diagnostics
  /// and the prior-selection experiments of §6.2).
  std::vector<Interval> candidates;
};

/// Computes the per-prior posteriors Beta(a_i + tau, b_i + n - tau), their
/// 1-alpha HPD intervals, and returns the shortest (Alg. 1 line 23).
///
/// `tau` / `n` may be fractional: complex sampling designs pass the
/// design-effect-adjusted effective sample (Alg. 1 lines 11-13). The prior
/// set must be non-empty; there is no upper limit on its size.
Result<AhpdChoice> AhpdSelect(const std::vector<BetaPrior>& priors,
                              double tau, double n, double alpha,
                              const HpdOptions& options = {});

/// Parallel variant of `AhpdSelect`: one task per prior on `pool` (the
/// parallelization §4.5 points out keeps aHPD efficient "regardless of the
/// number of considered priors"). Bitwise-identical results to the serial
/// version; worthwhile from a handful of priors upward.
Result<AhpdChoice> AhpdSelectParallel(const std::vector<BetaPrior>& priors,
                                      double tau, double n, double alpha,
                                      ThreadPool* pool,
                                      const HpdOptions& options = {});

}  // namespace kgacc

#endif  // KGACC_INTERVALS_AHPD_H_
