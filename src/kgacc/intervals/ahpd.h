#ifndef KGACC_INTERVALS_AHPD_H_
#define KGACC_INTERVALS_AHPD_H_

#include <array>
#include <vector>

#include "kgacc/intervals/credible.h"
#include "kgacc/intervals/priors.h"
#include "kgacc/util/status.h"
#include "kgacc/util/thread_pool.h"

/// \file ahpd.h
/// The interval-selection core of the adaptive HPD algorithm (Algorithm 1,
/// lines 14-23): given the current annotation outcome, build one 1-alpha
/// HPD interval per competing prior and keep the shortest. The surrounding
/// sample-annotate-estimate loop lives in `eval/evaluator.h`.

namespace kgacc {

class ByteWriter;
class ByteReader;

/// Outcome of one aHPD selection round.
struct AhpdChoice {
  /// The winning (shortest) 1-alpha HPD interval.
  Interval interval;
  /// Index into the prior set of the winner.
  size_t prior_index = 0;
  /// Posterior shape branch taken for the winner.
  BetaShape shape = BetaShape::kUnimodal;
  /// All competing intervals, parallel to the prior set (for diagnostics
  /// and the prior-selection experiments of §6.2).
  std::vector<Interval> candidates;
};

/// Cross-step warm-start carry for iterative interval construction: the
/// previous step's per-prior HPD solutions and the inputs they solved.
/// Thread one instance through the successive `AhpdSelect` (or
/// `BuildInterval`) calls of one evaluation run; each step then warm-starts
/// the SQP from the last interval instead of paying two ET quantile solves
/// per prior, and skips the solve entirely when `(tau, n, alpha)` did not
/// move. Do not share one state across interleaved runs.
struct AhpdWarmState {
  struct PriorState {
    /// True once `hpd` holds a solution for (tau, n, alpha).
    bool valid = false;
    double tau = 0.0;
    double n = 0.0;
    double alpha = 0.0;
    HpdResult hpd;
    /// Last BFGS Lagrangian-Hessian model produced by an SQP solve for
    /// this prior. Seeds the *fallback* SQP of later steps (via
    /// `HpdOptions::warm_hessian`) so it does not restart from identity;
    /// kept across Newton-path steps, which build no BFGS model.
    bool has_hessian = false;
    std::array<double, 4> hessian{};
  };
  /// Parallel to the prior set; resized (and invalidated) on size change.
  std::vector<PriorState> priors;

  /// Aligns the carry with a prior set of `num_priors` entries, dropping
  /// every stale solution when the set changed shape.
  void Sync(size_t num_priors) {
    if (priors.size() != num_priors) {
      priors.assign(num_priors, PriorState{});
    }
  }
};

/// Serializes / restores the warm carry for checkpoint/resume: every
/// per-prior solution — inputs, interval, shape, path, the Newton residual
/// certificate, and the carried BFGS Hessian — with bit-exact doubles, so a
/// resumed audit's next `BuildInterval` sees the identical cache (including
/// the unchanged-(tau, n, alpha) skip) as the uninterrupted run.
void SaveAhpdWarmState(const AhpdWarmState& state, ByteWriter* w);
Status LoadAhpdWarmState(ByteReader* r, AhpdWarmState* state);

/// One prior's HPD with warm-start carry: returns the cached solution when
/// `state` matches `(tau, n, alpha)` exactly, otherwise solves — seeding
/// the SQP from the carried interval when one is available — and refreshes
/// `state`. A null `state` degrades to a plain `HpdInterval` call.
Result<HpdResult> HpdIntervalWarm(const BetaDistribution& posterior,
                                  double tau, double n, double alpha,
                                  const HpdOptions& options,
                                  AhpdWarmState::PriorState* state);

/// Computes the per-prior posteriors Beta(a_i + tau, b_i + n - tau), their
/// 1-alpha HPD intervals, and returns the shortest (Alg. 1 line 23).
///
/// `tau` / `n` may be fractional: complex sampling designs pass the
/// design-effect-adjusted effective sample (Alg. 1 lines 11-13). The prior
/// set must be non-empty; there is no upper limit on its size. `warm`, when
/// given, carries the per-prior solutions across successive calls.
Result<AhpdChoice> AhpdSelect(const std::vector<BetaPrior>& priors,
                              double tau, double n, double alpha,
                              const HpdOptions& options = {},
                              AhpdWarmState* warm = nullptr);

/// Parallel variant of `AhpdSelect`: one task per prior on `pool` (the
/// parallelization §4.5 points out keeps aHPD efficient "regardless of the
/// number of considered priors"). Bitwise-identical results to the serial
/// version; worthwhile from a handful of priors upward.
///
/// Waits only on its own tasks (per-task futures), so it is safe to call
/// while unrelated work is in flight on the same pool. It must still not be
/// called from *inside* a pool task: the waiting thread would occupy a
/// worker slot, which deadlocks a fully busy pool.
Result<AhpdChoice> AhpdSelectParallel(const std::vector<BetaPrior>& priors,
                                      double tau, double n, double alpha,
                                      ThreadPool* pool,
                                      const HpdOptions& options = {},
                                      AhpdWarmState* warm = nullptr);

}  // namespace kgacc

#endif  // KGACC_INTERVALS_AHPD_H_
