#ifndef KGACC_INTERVALS_FREQUENTIST_H_
#define KGACC_INTERVALS_FREQUENTIST_H_

#include "kgacc/estimate/estimators.h"
#include "kgacc/intervals/interval.h"
#include "kgacc/util/status.h"

/// \file frequentist.h
/// Frequentist confidence-interval baselines (§3): the Wald interval used
/// by Gao et al. VLDB'19 and the Wilson interval used by Marchesin &
/// Silvello VLDB'24 (the state of the art this paper improves on), plus
/// Agresti-Coull and exact Clopper-Pearson for the comparison appendix.

namespace kgacc {

/// 1-alpha Wald interval (Eq. 5): mu +- z_{alpha/2} sqrt(V(mu)).
/// Design-agnostic — the estimated variance is taken from the estimate, so
/// TWCS estimates plug in directly. May overshoot [0, 1] and collapses to
/// zero width when the estimated variance is zero (the §3.3 fallacies).
Result<Interval> WaldInterval(const AccuracyEstimate& estimate, double alpha);

/// 1-alpha Wilson interval (Eq. 7) from an (effective) sample: relocated
/// center plus corrected deviation. `n` may be fractional — complex designs
/// pass the design-effect-adjusted n_eff (§3.2).
Result<Interval> WilsonInterval(double mu, double n, double alpha);

/// 1-alpha Agresti-Coull interval: Wald on the pseudo-sample
/// (tau + z^2/2, n + z^2). Additional baseline.
Result<Interval> AgrestiCoullInterval(double mu, double n, double alpha);

/// Exact 1-alpha Clopper-Pearson interval from integer counts, via beta
/// quantiles. Additional (conservative) baseline.
Result<Interval> ClopperPearsonInterval(uint64_t tau, uint64_t n,
                                        double alpha);

}  // namespace kgacc

#endif  // KGACC_INTERVALS_FREQUENTIST_H_
