#ifndef KGACC_INTERVALS_PRIORS_H_
#define KGACC_INTERVALS_PRIORS_H_

#include <string>
#include <vector>

#include "kgacc/math/beta.h"
#include "kgacc/util/status.h"

/// \file priors.h
/// Beta priors for the beta-binomial model of the annotation process
/// (§4.1) and the three standard uninformative priors of §4.4 — Kerman,
/// Jeffreys, Uniform — that aHPD races against each other.

namespace kgacc {

/// A named Beta(a, b) prior on the KG accuracy.
struct BetaPrior {
  std::string name;
  double a = 1.0;
  double b = 1.0;

  /// Uninformative in the paper's sense: a == b <= 1.
  bool IsUninformative() const { return a == b && a <= 1.0; }

  /// Conjugate update (§4.1): Beta(a + tau, b + n - tau). Counts may be
  /// fractional when design-effect-adjusted effective samples are used.
  Result<BetaDistribution> Posterior(double tau, double n) const;
};

/// Kerman's neutral prior Beta(1/3, 1/3): shortest HPD widths in the
/// extreme accuracy regions.
BetaPrior KermanPrior();

/// Jeffreys' invariant prior Beta(1/2, 1/2): the common default, never the
/// shortest (§4.4).
BetaPrior JeffreysPrior();

/// Bayes-Laplace uniform prior Beta(1, 1): shortest in the central region.
BetaPrior UniformPrior();

/// An informative prior encoding `accuracy` worth `weight` pseudo-triples
/// of prior knowledge (e.g., from an earlier audit of a similar KG;
/// Example 2 uses {0.80, 100} and {0.90, 100}).
Result<BetaPrior> InformativePrior(double accuracy, double weight,
                                   std::string name = "");

/// The {Kerman, Jeffreys, Uniform} trio the paper feeds to aHPD.
std::vector<BetaPrior> DefaultUninformativePriors();

}  // namespace kgacc

#endif  // KGACC_INTERVALS_PRIORS_H_
