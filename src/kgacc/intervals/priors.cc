#include "kgacc/intervals/priors.h"

namespace kgacc {

Result<BetaDistribution> BetaPrior::Posterior(double tau, double n) const {
  if (!(n >= 0.0) || !(tau >= 0.0) || tau > n) {
    return Status::InvalidArgument(
        "posterior update requires 0 <= tau <= n");
  }
  return BetaDistribution::Create(a + tau, b + (n - tau));
}

BetaPrior KermanPrior() { return BetaPrior{"Kerman", 1.0 / 3.0, 1.0 / 3.0}; }

BetaPrior JeffreysPrior() { return BetaPrior{"Jeffreys", 0.5, 0.5}; }

BetaPrior UniformPrior() { return BetaPrior{"Uniform", 1.0, 1.0}; }

Result<BetaPrior> InformativePrior(double accuracy, double weight,
                                   std::string name) {
  if (!(accuracy > 0.0) || !(accuracy < 1.0)) {
    return Status::OutOfRange("informative prior accuracy must be in (0,1)");
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument("informative prior weight must be > 0");
  }
  BetaPrior prior;
  prior.a = accuracy * weight;
  prior.b = (1.0 - accuracy) * weight;
  prior.name = name.empty()
                   ? "Informative(" + std::to_string(accuracy) + "," +
                         std::to_string(weight) + ")"
                   : std::move(name);
  return prior;
}

std::vector<BetaPrior> DefaultUninformativePriors() {
  return {KermanPrior(), JeffreysPrior(), UniformPrior()};
}

}  // namespace kgacc
