#include "kgacc/intervals/ahpd.h"

#include <future>
#include <utility>

namespace kgacc {

namespace {

/// Reduces per-prior HPD results (interval or error) to the final choice.
Result<AhpdChoice> ReduceCandidates(
    const std::vector<Result<HpdResult>>& results) {
  AhpdChoice choice;
  choice.candidates.reserve(results.size());
  double best_width = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    const HpdResult& hpd = *results[i];
    choice.candidates.push_back(hpd.interval);
    if (i == 0 || hpd.interval.Width() < best_width) {
      best_width = hpd.interval.Width();
      choice.interval = hpd.interval;
      choice.prior_index = i;
      choice.shape = hpd.shape;
    }
  }
  return choice;
}

}  // namespace

namespace {

/// A carried interval seeds the SQP only when the previous solve was the
/// standard unimodal case and the posterior has not moved out from under
/// it (its mean still falls inside). A far-off start can park the solver
/// at a merit-stationary point in the near-flat width valley around the
/// optimum; the ET start remains the fallback for those jumps.
bool CarryIsUsable(const AhpdWarmState::PriorState& state,
                   const BetaDistribution& posterior) {
  return state.valid && state.hpd.shape == BetaShape::kUnimodal &&
         state.hpd.interval.Contains(posterior.Mean());
}

}  // namespace

Result<HpdResult> HpdIntervalWarm(const BetaDistribution& posterior,
                                  double tau, double n, double alpha,
                                  const HpdOptions& options,
                                  AhpdWarmState::PriorState* state) {
  if (state == nullptr) return HpdInterval(posterior, alpha, options);
  if (state->valid && state->tau == tau && state->n == n &&
      state->alpha == alpha) {
    return state->hpd;
  }
  HpdOptions local = options;
  if (CarryIsUsable(*state, posterior)) {
    local.warm_start = &state->hpd.interval;
  }
  Result<HpdResult> result = HpdInterval(posterior, alpha, local);
  if (result.ok()) {
    state->valid = true;
    state->tau = tau;
    state->n = n;
    state->alpha = alpha;
    state->hpd = *result;
  } else {
    state->valid = false;
  }
  return result;
}

Result<AhpdChoice> AhpdSelect(const std::vector<BetaPrior>& priors,
                              double tau, double n, double alpha,
                              const HpdOptions& options,
                              AhpdWarmState* warm) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (warm != nullptr) warm->Sync(priors.size());
  std::vector<Result<HpdResult>> results;
  results.reserve(priors.size());
  for (size_t i = 0; i < priors.size(); ++i) {
    const Result<BetaDistribution> posterior = priors[i].Posterior(tau, n);
    if (!posterior.ok()) return posterior.status();
    results.push_back(HpdIntervalWarm(*posterior, tau, n, alpha, options,
                                      warm ? &warm->priors[i] : nullptr));
  }
  return ReduceCandidates(results);
}

Result<AhpdChoice> AhpdSelectParallel(const std::vector<BetaPrior>& priors,
                                      double tau, double n, double alpha,
                                      ThreadPool* pool,
                                      const HpdOptions& options,
                                      AhpdWarmState* warm) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (pool == nullptr) return AhpdSelect(priors, tau, n, alpha, options, warm);
  if (warm != nullptr) warm->Sync(priors.size());

  // One future per prior: the call waits on exactly its own tasks, never on
  // unrelated work sharing the pool (pool.Wait() would block on — and, from
  // inside a worker, could deadlock with — the whole queue). Each task runs
  // the same `HpdIntervalWarm` protocol as the serial loop on its own
  // PriorState slot — distinct vector elements, never resized while tasks
  // are in flight, so the carry updates are race-free.
  std::vector<Result<HpdResult>> results(
      priors.size(), Result<HpdResult>(Status::Internal("task not run")));
  std::vector<std::future<Result<HpdResult>>> futures(priors.size());
  for (size_t i = 0; i < priors.size(); ++i) {
    AhpdWarmState::PriorState* state = warm ? &warm->priors[i] : nullptr;
    futures[i] = pool->SubmitWithResult(
        [&priors, i, tau, n, alpha, options, state]() -> Result<HpdResult> {
          const Result<BetaDistribution> posterior =
              priors[i].Posterior(tau, n);
          if (!posterior.ok()) return posterior.status();
          return HpdIntervalWarm(*posterior, tau, n, alpha, options, state);
        });
  }
  for (size_t i = 0; i < priors.size(); ++i) {
    results[i] = futures[i].get();
  }
  return ReduceCandidates(results);
}

}  // namespace kgacc
