#include "kgacc/intervals/ahpd.h"

namespace kgacc {

namespace {

/// Reduces per-prior HPD results (interval or error) to the final choice.
Result<AhpdChoice> ReduceCandidates(
    const std::vector<Result<HpdResult>>& results) {
  AhpdChoice choice;
  choice.candidates.reserve(results.size());
  double best_width = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    const HpdResult& hpd = *results[i];
    choice.candidates.push_back(hpd.interval);
    if (i == 0 || hpd.interval.Width() < best_width) {
      best_width = hpd.interval.Width();
      choice.interval = hpd.interval;
      choice.prior_index = i;
      choice.shape = hpd.shape;
    }
  }
  return choice;
}

}  // namespace

Result<AhpdChoice> AhpdSelect(const std::vector<BetaPrior>& priors,
                              double tau, double n, double alpha,
                              const HpdOptions& options) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  std::vector<Result<HpdResult>> results;
  results.reserve(priors.size());
  for (const BetaPrior& prior : priors) {
    const Result<BetaDistribution> posterior = prior.Posterior(tau, n);
    if (!posterior.ok()) return posterior.status();
    results.push_back(HpdInterval(*posterior, alpha, options));
  }
  return ReduceCandidates(results);
}

Result<AhpdChoice> AhpdSelectParallel(const std::vector<BetaPrior>& priors,
                                      double tau, double n, double alpha,
                                      ThreadPool* pool,
                                      const HpdOptions& options) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (pool == nullptr) return AhpdSelect(priors, tau, n, alpha, options);

  std::vector<Result<HpdResult>> results(
      priors.size(), Result<HpdResult>(Status::Internal("task not run")));
  for (size_t i = 0; i < priors.size(); ++i) {
    pool->Submit([&, i] {
      const Result<BetaDistribution> posterior = priors[i].Posterior(tau, n);
      if (!posterior.ok()) {
        results[i] = posterior.status();
        return;
      }
      results[i] = HpdInterval(*posterior, alpha, options);
    });
  }
  pool->Wait();
  return ReduceCandidates(results);
}

}  // namespace kgacc
