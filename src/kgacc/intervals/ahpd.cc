#include "kgacc/intervals/ahpd.h"

#include <future>
#include <utility>

namespace kgacc {

namespace {

/// Reduces per-prior HPD results (interval or error) to the final choice.
Result<AhpdChoice> ReduceCandidates(
    const std::vector<Result<HpdResult>>& results) {
  AhpdChoice choice;
  choice.candidates.reserve(results.size());
  double best_width = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    const HpdResult& hpd = *results[i];
    choice.candidates.push_back(hpd.interval);
    if (i == 0 || hpd.interval.Width() < best_width) {
      best_width = hpd.interval.Width();
      choice.interval = hpd.interval;
      choice.prior_index = i;
      choice.shape = hpd.shape;
    }
  }
  return choice;
}

}  // namespace

namespace {

/// A carried interval seeds the solvers whenever the previous solve was
/// the standard unimodal case. The posterior-mean safety gate that used to
/// guard against far-off starts (SLSQP could park merit-stationary in the
/// near-flat width valley) is gone: the SQP now requires KKT stationarity
/// to declare convergence, and the primary Newton path reports a basin
/// exit instead of stalling — so the carry is usable unconditionally.
bool CarryIsUsable(const AhpdWarmState::PriorState& state) {
  return state.valid && state.hpd.shape == BetaShape::kUnimodal;
}

}  // namespace

Result<HpdResult> HpdIntervalWarm(const BetaDistribution& posterior,
                                  double tau, double n, double alpha,
                                  const HpdOptions& options,
                                  AhpdWarmState::PriorState* state) {
  if (state == nullptr) return HpdInterval(posterior, alpha, options);
  if (state->valid && state->tau == tau && state->n == n &&
      state->alpha == alpha) {
    NoteHpdWarmCacheHit();
    // This call ran no solver: report zero marginal work. The interval,
    // path, certificate, and curvature are the cached solve's.
    HpdResult cached = state->hpd;
    cached.solver_iterations = 0;
    cached.cdf_evals = 0;
    cached.pdf_evals = 0;
    cached.quantile_evals = 0;
    return cached;
  }
  HpdOptions local = options;
  if (CarryIsUsable(*state)) {
    local.warm_start = &state->hpd.interval;
  }
  if (state->has_hessian) {
    local.warm_hessian = &state->hessian;
  }
  Result<HpdResult> result = HpdInterval(posterior, alpha, local);
  if (result.ok()) {
    state->valid = true;
    state->tau = tau;
    state->n = n;
    state->alpha = alpha;
    state->hpd = *result;
    // Keep the carried curvature across Newton-path steps (which build no
    // BFGS model); refresh it whenever an SQP ran.
    if (result->has_hessian) {
      state->has_hessian = true;
      state->hessian = result->hessian;
    }
  } else {
    state->valid = false;
    state->has_hessian = false;
  }
  return result;
}

Result<AhpdChoice> AhpdSelect(const std::vector<BetaPrior>& priors,
                              double tau, double n, double alpha,
                              const HpdOptions& options,
                              AhpdWarmState* warm) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (warm != nullptr) warm->Sync(priors.size());
  std::vector<Result<HpdResult>> results;
  results.reserve(priors.size());
  for (size_t i = 0; i < priors.size(); ++i) {
    const Result<BetaDistribution> posterior = priors[i].Posterior(tau, n);
    if (!posterior.ok()) return posterior.status();
    results.push_back(HpdIntervalWarm(*posterior, tau, n, alpha, options,
                                      warm ? &warm->priors[i] : nullptr));
  }
  return ReduceCandidates(results);
}

Result<AhpdChoice> AhpdSelectParallel(const std::vector<BetaPrior>& priors,
                                      double tau, double n, double alpha,
                                      ThreadPool* pool,
                                      const HpdOptions& options,
                                      AhpdWarmState* warm) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (pool == nullptr) return AhpdSelect(priors, tau, n, alpha, options, warm);
  if (warm != nullptr) warm->Sync(priors.size());

  // One future per prior: the call waits on exactly its own tasks, never on
  // unrelated work sharing the pool (pool.Wait() would block on — and, from
  // inside a worker, could deadlock with — the whole queue). Each task runs
  // the same `HpdIntervalWarm` protocol as the serial loop on its own
  // PriorState slot — distinct vector elements, never resized while tasks
  // are in flight, so the carry updates are race-free.
  std::vector<Result<HpdResult>> results(
      priors.size(), Result<HpdResult>(Status::Internal("task not run")));
  std::vector<std::future<Result<HpdResult>>> futures(priors.size());
  for (size_t i = 0; i < priors.size(); ++i) {
    AhpdWarmState::PriorState* state = warm ? &warm->priors[i] : nullptr;
    futures[i] = pool->SubmitWithResult(
        [&priors, i, tau, n, alpha, options, state]() -> Result<HpdResult> {
          const Result<BetaDistribution> posterior =
              priors[i].Posterior(tau, n);
          if (!posterior.ok()) return posterior.status();
          return HpdIntervalWarm(*posterior, tau, n, alpha, options, state);
        });
  }
  for (size_t i = 0; i < priors.size(); ++i) {
    results[i] = futures[i].get();
  }
  return ReduceCandidates(results);
}

}  // namespace kgacc
