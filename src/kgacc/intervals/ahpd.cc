#include "kgacc/intervals/ahpd.h"

#include <future>
#include <utility>

#include "kgacc/util/codec.h"

namespace kgacc {

namespace {

void SaveHpdResult(const HpdResult& hpd, ByteWriter* w) {
  w->PutDouble(hpd.interval.lower);
  w->PutDouble(hpd.interval.upper);
  w->PutU8(static_cast<uint8_t>(hpd.shape));
  w->PutZigzag(hpd.solver_iterations);
  w->PutU8(static_cast<uint8_t>(hpd.path));
  w->PutZigzag(hpd.cdf_evals);
  w->PutZigzag(hpd.pdf_evals);
  w->PutZigzag(hpd.quantile_evals);
  w->PutDouble(hpd.kkt_coverage_residual);
  w->PutDouble(hpd.kkt_density_residual);
  w->PutBool(hpd.has_hessian);
  for (const double h : hpd.hessian) w->PutDouble(h);
}

Status LoadHpdResult(ByteReader* r, HpdResult* hpd) {
  KGACC_ASSIGN_OR_RETURN(hpd->interval.lower, r->Double());
  KGACC_ASSIGN_OR_RETURN(hpd->interval.upper, r->Double());
  KGACC_ASSIGN_OR_RETURN(const uint8_t shape, r->U8());
  hpd->shape = static_cast<BetaShape>(shape);
  KGACC_ASSIGN_OR_RETURN(const int64_t iterations, r->Zigzag());
  hpd->solver_iterations = static_cast<int>(iterations);
  KGACC_ASSIGN_OR_RETURN(const uint8_t path, r->U8());
  hpd->path = static_cast<HpdPath>(path);
  KGACC_ASSIGN_OR_RETURN(const int64_t cdf, r->Zigzag());
  KGACC_ASSIGN_OR_RETURN(const int64_t pdf, r->Zigzag());
  KGACC_ASSIGN_OR_RETURN(const int64_t quantile, r->Zigzag());
  hpd->cdf_evals = static_cast<int>(cdf);
  hpd->pdf_evals = static_cast<int>(pdf);
  hpd->quantile_evals = static_cast<int>(quantile);
  KGACC_ASSIGN_OR_RETURN(hpd->kkt_coverage_residual, r->Double());
  KGACC_ASSIGN_OR_RETURN(hpd->kkt_density_residual, r->Double());
  KGACC_ASSIGN_OR_RETURN(hpd->has_hessian, r->Bool());
  for (double& h : hpd->hessian) {
    KGACC_ASSIGN_OR_RETURN(h, r->Double());
  }
  return Status::OK();
}

}  // namespace

void SaveAhpdWarmState(const AhpdWarmState& state, ByteWriter* w) {
  w->PutVarint(state.priors.size());
  for (const AhpdWarmState::PriorState& prior : state.priors) {
    w->PutBool(prior.valid);
    w->PutDouble(prior.tau);
    w->PutDouble(prior.n);
    w->PutDouble(prior.alpha);
    SaveHpdResult(prior.hpd, w);
    w->PutBool(prior.has_hessian);
    for (const double h : prior.hessian) w->PutDouble(h);
  }
}

Status LoadAhpdWarmState(ByteReader* r, AhpdWarmState* state) {
  KGACC_ASSIGN_OR_RETURN(const uint64_t count, r->Varint());
  state->priors.assign(count, AhpdWarmState::PriorState{});
  for (AhpdWarmState::PriorState& prior : state->priors) {
    KGACC_ASSIGN_OR_RETURN(prior.valid, r->Bool());
    KGACC_ASSIGN_OR_RETURN(prior.tau, r->Double());
    KGACC_ASSIGN_OR_RETURN(prior.n, r->Double());
    KGACC_ASSIGN_OR_RETURN(prior.alpha, r->Double());
    KGACC_RETURN_IF_ERROR(LoadHpdResult(r, &prior.hpd));
    KGACC_ASSIGN_OR_RETURN(prior.has_hessian, r->Bool());
    for (double& h : prior.hessian) {
      KGACC_ASSIGN_OR_RETURN(h, r->Double());
    }
  }
  return Status::OK();
}

namespace {

/// Reduces per-prior HPD results (interval or error) to the final choice.
Result<AhpdChoice> ReduceCandidates(
    const std::vector<Result<HpdResult>>& results) {
  AhpdChoice choice;
  choice.candidates.reserve(results.size());
  double best_width = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    const HpdResult& hpd = *results[i];
    choice.candidates.push_back(hpd.interval);
    if (i == 0 || hpd.interval.Width() < best_width) {
      best_width = hpd.interval.Width();
      choice.interval = hpd.interval;
      choice.prior_index = i;
      choice.shape = hpd.shape;
    }
  }
  return choice;
}

}  // namespace

namespace {

/// A carried interval seeds the solvers whenever the previous solve was
/// the standard unimodal case. The posterior-mean safety gate that used to
/// guard against far-off starts (SLSQP could park merit-stationary in the
/// near-flat width valley) is gone: the SQP now requires KKT stationarity
/// to declare convergence, and the primary Newton path reports a basin
/// exit instead of stalling — so the carry is usable unconditionally.
bool CarryIsUsable(const AhpdWarmState::PriorState& state) {
  return state.valid && state.hpd.shape == BetaShape::kUnimodal;
}

}  // namespace

Result<HpdResult> HpdIntervalWarm(const BetaDistribution& posterior,
                                  double tau, double n, double alpha,
                                  const HpdOptions& options,
                                  AhpdWarmState::PriorState* state) {
  if (state == nullptr) return HpdInterval(posterior, alpha, options);
  if (state->valid && state->tau == tau && state->n == n &&
      state->alpha == alpha) {
    NoteHpdWarmCacheHit();
    // This call ran no solver: report zero marginal work. The interval,
    // path, certificate, and curvature are the cached solve's.
    HpdResult cached = state->hpd;
    cached.solver_iterations = 0;
    cached.cdf_evals = 0;
    cached.pdf_evals = 0;
    cached.quantile_evals = 0;
    return cached;
  }
  HpdOptions local = options;
  if (CarryIsUsable(*state)) {
    local.warm_start = &state->hpd.interval;
  }
  if (state->has_hessian) {
    local.warm_hessian = &state->hessian;
  }
  Result<HpdResult> result = HpdInterval(posterior, alpha, local);
  if (result.ok()) {
    state->valid = true;
    state->tau = tau;
    state->n = n;
    state->alpha = alpha;
    state->hpd = *result;
    // Keep the carried curvature across Newton-path steps (which build no
    // BFGS model); refresh it whenever an SQP ran.
    if (result->has_hessian) {
      state->has_hessian = true;
      state->hessian = result->hessian;
    }
  } else {
    state->valid = false;
    state->has_hessian = false;
  }
  return result;
}

Result<AhpdChoice> AhpdSelect(const std::vector<BetaPrior>& priors,
                              double tau, double n, double alpha,
                              const HpdOptions& options,
                              AhpdWarmState* warm) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (warm != nullptr) warm->Sync(priors.size());
  std::vector<Result<HpdResult>> results;
  results.reserve(priors.size());
  for (size_t i = 0; i < priors.size(); ++i) {
    const Result<BetaDistribution> posterior = priors[i].Posterior(tau, n);
    if (!posterior.ok()) return posterior.status();
    results.push_back(HpdIntervalWarm(*posterior, tau, n, alpha, options,
                                      warm ? &warm->priors[i] : nullptr));
  }
  return ReduceCandidates(results);
}

Result<AhpdChoice> AhpdSelectParallel(const std::vector<BetaPrior>& priors,
                                      double tau, double n, double alpha,
                                      ThreadPool* pool,
                                      const HpdOptions& options,
                                      AhpdWarmState* warm) {
  if (priors.empty()) {
    return Status::InvalidArgument("aHPD requires at least one prior");
  }
  if (pool == nullptr) return AhpdSelect(priors, tau, n, alpha, options, warm);
  if (warm != nullptr) warm->Sync(priors.size());

  // One future per prior: the call waits on exactly its own tasks, never on
  // unrelated work sharing the pool (pool.Wait() would block on — and, from
  // inside a worker, could deadlock with — the whole queue). Each task runs
  // the same `HpdIntervalWarm` protocol as the serial loop on its own
  // PriorState slot — distinct vector elements, never resized while tasks
  // are in flight, so the carry updates are race-free.
  std::vector<Result<HpdResult>> results(
      priors.size(), Result<HpdResult>(Status::Internal("task not run")));
  std::vector<std::future<Result<HpdResult>>> futures(priors.size());
  for (size_t i = 0; i < priors.size(); ++i) {
    AhpdWarmState::PriorState* state = warm ? &warm->priors[i] : nullptr;
    futures[i] = pool->SubmitWithResult(
        [&priors, i, tau, n, alpha, options, state]() -> Result<HpdResult> {
          const Result<BetaDistribution> posterior =
              priors[i].Posterior(tau, n);
          if (!posterior.ok()) return posterior.status();
          return HpdIntervalWarm(*posterior, tau, n, alpha, options, state);
        });
  }
  for (size_t i = 0; i < priors.size(); ++i) {
    results[i] = futures[i].get();
  }
  return ReduceCandidates(results);
}

}  // namespace kgacc
