#include "kgacc/intervals/credible.h"

#include <algorithm>
#include <cmath>

#include "kgacc/opt/brent.h"
#include "kgacc/opt/slsqp.h"

namespace kgacc {

namespace {

Status ValidateAlpha(double alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::OutOfRange("significance level alpha must be in (0,1)");
  }
  return Status::OK();
}

/// Standard-case HPD via the SQP solver: minimize (u - l) subject to
/// F(u) - F(l) = 1 - alpha with (l, u) in [0, 1]^2 (§4.3).
Result<HpdResult> HpdViaSlsqp(const BetaDistribution& posterior, double alpha,
                              const Interval& warm_start) {
  SlsqpProblem problem;
  problem.objective = [](const std::vector<double>& x) { return x[1] - x[0]; };
  problem.gradient = [](const std::vector<double>&) {
    return std::vector<double>{-1.0, 1.0};
  };
  problem.eq_constraints.push_back(
      [&posterior, alpha](const std::vector<double>& x) {
        return posterior.Cdf(x[1]) - posterior.Cdf(x[0]) - (1.0 - alpha);
      });
  problem.eq_gradients.push_back(
      [&posterior](const std::vector<double>& x) {
        return std::vector<double>{-posterior.Pdf(x[0]), posterior.Pdf(x[1])};
      });
  problem.lower = {0.0, 0.0};
  problem.upper = {1.0, 1.0};

  SlsqpOptions options;
  options.max_iterations = 80;
  options.constraint_tol = 1e-10;
  // Endpoint precision: intervals live on [0,1] and the stop rule compares
  // the MoE against thresholds around 5e-2, so 1e-9 endpoints are already
  // six orders of magnitude past any statistical meaning. The previous
  // 1e-11 bought nothing but 2-4 extra SQP iterations (~2 CDF evaluations
  // each) per solve on the evaluation hot path.
  options.step_tol = 1e-9;

  KGACC_ASSIGN_OR_RETURN(
      SlsqpSolve solve,
      MinimizeSlsqp(problem, {warm_start.lower, warm_start.upper}, options));
  if (!solve.converged && solve.max_violation > 1e-6) {
    return Status::NumericError("HPD SQP failed to satisfy the coverage "
                                "constraint");
  }
  HpdResult out;
  out.interval = Interval{solve.x[0], solve.x[1]};
  out.shape = BetaShape::kUnimodal;
  out.solver_iterations = solve.iterations;
  return out;
}

/// Standard-case HPD via 1-D reduction: for each candidate lower bound l,
/// the matching upper bound is u(l) = F^{-1}(F(l) + 1 - alpha); the width
/// u(l) - l is unimodal in l for a unimodal posterior, so Brent's method
/// finds the global minimum.
Result<HpdResult> HpdViaOneDim(const BetaDistribution& posterior,
                               double alpha) {
  KGACC_ASSIGN_OR_RETURN(const double l_max, posterior.Quantile(alpha));
  Status failure = Status::OK();
  auto width = [&](double l) {
    const double target = posterior.Cdf(l) + (1.0 - alpha);
    Result<double> u = posterior.Quantile(std::min(target, 1.0));
    if (!u.ok()) {
      failure = u.status();
      return 1.0;  // Poison the search; reported below.
    }
    return *u - l;
  };
  KGACC_ASSIGN_OR_RETURN(
      ScalarSolve solve,
      MinimizeBrent(width, 0.0, std::max(l_max, 1e-300), 1e-12));
  KGACC_RETURN_IF_ERROR(failure);

  HpdResult out;
  const double l = solve.x;
  KGACC_ASSIGN_OR_RETURN(
      const double u,
      posterior.Quantile(std::min(posterior.Cdf(l) + (1.0 - alpha), 1.0)));
  out.interval = Interval{l, u};
  out.shape = BetaShape::kUnimodal;
  out.solver_iterations = solve.iterations;
  return out;
}

}  // namespace

Result<Interval> EqualTailedInterval(const BetaDistribution& posterior,
                                     double alpha) {
  KGACC_RETURN_IF_ERROR(ValidateAlpha(alpha));
  KGACC_ASSIGN_OR_RETURN(const double lower, posterior.Quantile(alpha / 2.0));
  KGACC_ASSIGN_OR_RETURN(const double upper,
                         posterior.Quantile(1.0 - alpha / 2.0));
  return Interval{lower, upper};
}

Result<HpdResult> HpdInterval(const BetaDistribution& posterior, double alpha,
                              const HpdOptions& options) {
  KGACC_RETURN_IF_ERROR(ValidateAlpha(alpha));
  HpdResult out;
  out.shape = posterior.Shape();

  switch (out.shape) {
    case BetaShape::kDecreasing: {
      // Limiting case (2), Eq. 11: density peaks at 0.
      KGACC_ASSIGN_OR_RETURN(const double u, posterior.Quantile(1.0 - alpha));
      out.interval = Interval{0.0, u};
      return out;
    }
    case BetaShape::kIncreasing: {
      // Limiting case (1), Eq. 10: density peaks at 1.
      KGACC_ASSIGN_OR_RETURN(const double l, posterior.Quantile(alpha));
      out.interval = Interval{l, 1.0};
      return out;
    }
    case BetaShape::kUShaped: {
      // Both endpoints are modes; the highest-density *region* is a union
      // of two disjoint pieces and no single interval is HPD. Report the ET
      // interval, which remains a valid 1-alpha CrI.
      KGACC_ASSIGN_OR_RETURN(out.interval,
                             EqualTailedInterval(posterior, alpha));
      return out;
    }
    case BetaShape::kUnimodal:
      break;
  }

  if (options.solver == HpdSolver::kOneDim) {
    return HpdViaOneDim(posterior, alpha);
  }

  Interval start;
  bool have_start = false;
  if (options.warm_start != nullptr) {
    // Clip the carried-over interval into the domain; limiting-case
    // endpoints (exact 0 or 1) are nudged inward so the constraint
    // gradient stays nonzero at the start.
    const double lo =
        std::clamp(options.warm_start->lower, 1e-9, 1.0 - 1e-9);
    const double hi =
        std::clamp(options.warm_start->upper, 1e-9, 1.0 - 1e-9);
    if (hi - lo > 1e-9) {
      start = Interval{lo, hi};
      have_start = true;
    }
  }
  if (!have_start && options.warm_start_at_et) {
    KGACC_ASSIGN_OR_RETURN(start, EqualTailedInterval(posterior, alpha));
    have_start = true;
  }
  if (!have_start) {
    // Cold start: a symmetric interval about the mode, clipped to [0, 1].
    const double mode = posterior.Mode();
    start = Interval{std::max(0.0, mode - 0.25), std::min(1.0, mode + 0.25)};
  }
  Result<HpdResult> sqp = HpdViaSlsqp(posterior, alpha, start);
  if (sqp.ok()) return sqp;
  // Extremely peaked or otherwise ill-conditioned posteriors can defeat the
  // SQP line search; the 1-D reduction is slower but unconditionally robust
  // for unimodal shapes.
  return HpdViaOneDim(posterior, alpha);
}

}  // namespace kgacc
