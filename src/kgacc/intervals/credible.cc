#include "kgacc/intervals/credible.h"

#include <algorithm>
#include <cmath>

#include "kgacc/opt/brent.h"
#include "kgacc/opt/newton_kkt.h"
#include "kgacc/opt/slsqp.h"

namespace kgacc {

namespace {

/// Safeguarding box for the Newton KKT iterate. Interior unimodal optima
/// live strictly inside (0, 1); an iterate pinned here has left the basin
/// and is handed to the globalized SQP.
constexpr double kNewtonBoxEps = 1e-12;

thread_local HpdSolveStats t_hpd_stats;

HpdPathTally& TallyFor(HpdPath path) {
  switch (path) {
    case HpdPath::kLimiting:
      return t_hpd_stats.limiting;
    case HpdPath::kNewton:
      return t_hpd_stats.newton;
    case HpdPath::kSlsqp:
      return t_hpd_stats.slsqp;
    case HpdPath::kSlsqpFallback:
      return t_hpd_stats.slsqp_fallback;
    case HpdPath::kOneDim:
      return t_hpd_stats.onedim;
  }
  return t_hpd_stats.limiting;
}

void TallySolve(const HpdResult& result) {
  HpdPathTally& tally = TallyFor(result.path);
  ++tally.solves;
  tally.iterations += static_cast<uint64_t>(result.solver_iterations);
  tally.cdf_evals += static_cast<uint64_t>(result.cdf_evals);
  tally.pdf_evals += static_cast<uint64_t>(result.pdf_evals);
  tally.quantile_evals += static_cast<uint64_t>(result.quantile_evals);
}

Status ValidateAlpha(double alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::OutOfRange("significance level alpha must be in (0,1)");
  }
  return Status::OK();
}

/// The standard-case first-order system (Thm. 1): coverage on probability
/// scale, density equality on log scale — both O(1) on the basin, so the
/// Newton merit treats them evenly. The log form also keeps the second
/// equation well-conditioned for extreme-peaked posteriors, where raw
/// densities overflow the merit long before the endpoints degrade.
/// One evaluation costs 2 CDF + 2 PDF calls (the Jacobian's density row is
/// shared with the coverage gradient; the log-density slopes are rational).
bool TryHpdNewton(const BetaDistribution& posterior, double alpha,
                  const Interval& start, int max_iterations, HpdResult* out) {
  const double a = posterior.a();
  const double b = posterior.b();
  // Plain lambda, not a KktSystem2Fn: the solver is templated over the
  // callable, so the system inlines and the solve allocates nothing — the
  // per-solve type-erasure allocation was the last heap traffic on the
  // warm kHpd step path.
  const auto system = [&posterior, a, b, alpha, out](
                          double l, double u, double* r, double* jac) {
    out->cdf_evals += 2;
    out->pdf_evals += 2;
    r[0] = posterior.Cdf(u) - posterior.Cdf(l) - (1.0 - alpha);
    r[1] = (a - 1.0) * (std::log(l) - std::log(u)) +
           (b - 1.0) * (std::log1p(-l) - std::log1p(-u));
    jac[0] = -posterior.Pdf(l);
    jac[1] = posterior.Pdf(u);
    jac[2] = (a - 1.0) / l - (b - 1.0) / (1.0 - l);
    jac[3] = -((a - 1.0) / u - (b - 1.0) / (1.0 - u));
  };

  NewtonKkt2Options options;
  options.max_iterations = max_iterations;
  options.lo = kNewtonBoxEps;
  options.hi = 1.0 - kNewtonBoxEps;
  // Residual certificate thresholds: 1e-12 coverage mass and 1e-9 relative
  // density mismatch bound the endpoint error well below the 1e-9 the
  // equivalence tests demand against the SQP reference.
  options.r0_tol = 1e-12;
  options.r1_tol = 1e-9;

  const Result<NewtonKkt2Solve> solve =
      SolveNewtonKkt2(system, start.lower, start.upper, options);
  if (!solve.ok() || !solve->converged) {
    if (solve.ok()) out->solver_iterations += solve->iterations;
    return false;
  }
  out->interval = Interval{solve->x0, solve->x1};
  out->solver_iterations += solve->iterations;
  out->path = HpdPath::kNewton;
  out->kkt_coverage_residual = solve->r0;
  out->kkt_density_residual = solve->r1;
  return true;
}

/// Standard-case HPD via the SQP solver: minimize (u - l) subject to
/// F(u) - F(l) = 1 - alpha with (l, u) in [0, 1]^2 (§4.3). `warm_hessian`,
/// when given, seeds the BFGS Lagrangian model (the carried curvature of
/// the previous solve) instead of identity.
Status HpdViaSlsqp(const BetaDistribution& posterior, double alpha,
                   const Interval& warm_start,
                   const std::array<double, 4>* warm_hessian,
                   HpdResult* out) {
  SlsqpProblem problem;
  problem.objective = [](const std::vector<double>& x) { return x[1] - x[0]; };
  problem.gradient = [](const std::vector<double>&) {
    return std::vector<double>{-1.0, 1.0};
  };
  problem.eq_constraints.push_back(
      [&posterior, alpha, out](const std::vector<double>& x) {
        out->cdf_evals += 2;
        return posterior.Cdf(x[1]) - posterior.Cdf(x[0]) - (1.0 - alpha);
      });
  problem.eq_gradients.push_back(
      [&posterior, out](const std::vector<double>& x) {
        out->pdf_evals += 2;
        return std::vector<double>{-posterior.Pdf(x[0]), posterior.Pdf(x[1])};
      });
  problem.lower = {0.0, 0.0};
  problem.upper = {1.0, 1.0};

  SlsqpOptions options;
  options.max_iterations = 80;
  options.constraint_tol = 1e-10;
  // Endpoint precision: intervals live on [0,1] and the stop rule compares
  // the MoE against thresholds around 5e-2, so 1e-9 endpoints are already
  // six orders of magnitude past any statistical meaning. The previous
  // 1e-11 bought nothing but 2-4 extra SQP iterations (~2 CDF evaluations
  // each) per solve on the evaluation hot path.
  options.step_tol = 1e-9;
  // KKT stationarity: a short first step from a carried warm start is not
  // a solution certificate (the carry gate at 1e-9 width sits exactly on
  // step_tol); demand a stationary projected Lagrangian gradient, whose
  // natural scale here is O(1) (the objective gradient is (-1, 1)).
  options.stationarity_tol = 1e-6;
  std::vector<double> initial_hessian;
  if (warm_hessian != nullptr) {
    initial_hessian.assign(warm_hessian->begin(), warm_hessian->end());
    options.initial_hessian = &initial_hessian;
  }

  KGACC_ASSIGN_OR_RETURN(
      SlsqpSolve solve,
      MinimizeSlsqp(problem, {warm_start.lower, warm_start.upper}, options));
  if (!solve.converged &&
      (solve.max_violation > 1e-6 || solve.kkt_residual > 1e-6)) {
    return Status::NumericError("HPD SQP failed to satisfy the coverage "
                                "constraint at a stationary point");
  }
  out->interval = Interval{solve.x[0], solve.x[1]};
  out->solver_iterations += solve.iterations;
  if (solve.hessian.size() == 4) {
    out->has_hessian = true;
    std::copy(solve.hessian.begin(), solve.hessian.end(),
              out->hessian.begin());
  }
  return Status::OK();
}

/// Standard-case HPD via 1-D reduction: for each candidate lower bound l,
/// the matching upper bound is u(l) = F^{-1}(F(l) + 1 - alpha); the width
/// u(l) - l is unimodal in l for a unimodal posterior, so Brent's method
/// finds the global minimum.
Status HpdViaOneDim(const BetaDistribution& posterior, double alpha,
                    HpdResult* out) {
  ++out->quantile_evals;
  KGACC_ASSIGN_OR_RETURN(const double l_max, posterior.Quantile(alpha));
  Status failure = Status::OK();
  auto width = [&](double l) {
    const double target = posterior.Cdf(l) + (1.0 - alpha);
    ++out->cdf_evals;
    ++out->quantile_evals;
    Result<double> u = posterior.Quantile(std::min(target, 1.0));
    if (!u.ok()) {
      if (failure.ok()) failure = u.status();
      // Poison value strictly wider than any feasible interval (widths on
      // [0, 1] never exceed 1), so a failed evaluation can never be
      // *selected* as the minimum; the failure itself is surfaced below.
      return 2.0;
    }
    return *u - l;
  };
  // Bracket floor: Quantile(alpha) can land arbitrarily close to 0 for
  // posteriors concentrated near the origin, and a denormal upper bracket
  // degenerates Brent's interval arithmetic. Flooring the bracket *up* is
  // safe — the optimal l satisfies F(l) <= alpha, so it stays inside.
  KGACC_ASSIGN_OR_RETURN(
      ScalarSolve solve,
      MinimizeBrent(width, 0.0, std::max(l_max, 1e-12), 1e-12));
  // Any quantile failure poisons the search; surface it instead of
  // accepting a minimizer chosen against poisoned widths.
  KGACC_RETURN_IF_ERROR(failure);

  const double l = solve.x;
  ++out->cdf_evals;
  ++out->quantile_evals;
  KGACC_ASSIGN_OR_RETURN(
      const double u,
      posterior.Quantile(std::min(posterior.Cdf(l) + (1.0 - alpha), 1.0)));
  out->interval = Interval{l, u};
  out->solver_iterations += solve.iterations;
  out->path = HpdPath::kOneDim;
  return Status::OK();
}

Result<HpdResult> HpdIntervalImpl(const BetaDistribution& posterior,
                                  double alpha, const HpdOptions& options) {
  KGACC_RETURN_IF_ERROR(ValidateAlpha(alpha));
  HpdResult out;
  out.shape = posterior.Shape();

  switch (out.shape) {
    case BetaShape::kDecreasing: {
      // Limiting case (2), Eq. 11: density peaks at 0.
      ++out.quantile_evals;
      KGACC_ASSIGN_OR_RETURN(const double u, posterior.Quantile(1.0 - alpha));
      out.interval = Interval{0.0, u};
      return out;
    }
    case BetaShape::kIncreasing: {
      // Limiting case (1), Eq. 10: density peaks at 1.
      ++out.quantile_evals;
      KGACC_ASSIGN_OR_RETURN(const double l, posterior.Quantile(alpha));
      out.interval = Interval{l, 1.0};
      return out;
    }
    case BetaShape::kUShaped: {
      // Both endpoints are modes; the highest-density *region* is a union
      // of two disjoint pieces and no single interval is HPD. Report the ET
      // interval, which remains a valid 1-alpha CrI.
      out.quantile_evals += 2;
      KGACC_ASSIGN_OR_RETURN(out.interval,
                             EqualTailedInterval(posterior, alpha));
      return out;
    }
    case BetaShape::kUnimodal:
      break;
  }

  if (options.solver == HpdSolver::kOneDim) {
    KGACC_RETURN_IF_ERROR(HpdViaOneDim(posterior, alpha, &out));
    return out;
  }

  Interval start;
  bool have_start = false;
  if (options.warm_start != nullptr) {
    // Clip the carried-over interval into the domain; limiting-case
    // endpoints (exact 0 or 1) are nudged inward so the constraint
    // gradient stays nonzero at the start.
    const double lo =
        std::clamp(options.warm_start->lower, 1e-9, 1.0 - 1e-9);
    const double hi =
        std::clamp(options.warm_start->upper, 1e-9, 1.0 - 1e-9);
    if (hi - lo > 1e-9) {
      start = Interval{lo, hi};
      have_start = true;
    }
  }
  if (!have_start && options.warm_start_at_et) {
    out.quantile_evals += 2;
    KGACC_ASSIGN_OR_RETURN(start, EqualTailedInterval(posterior, alpha));
    have_start = true;
  }
  if (!have_start) {
    // Cold start: a symmetric interval about the mode, clipped to [0, 1].
    const double mode = posterior.Mode();
    start = Interval{std::max(0.0, mode - 0.25), std::min(1.0, mode + 0.25)};
  }

  // Primary unimodal path: the dedicated 2x2 Newton. A basin exit (pinned
  // endpoint, residual growth, singular or non-finite system) falls through
  // to the globalized SQP, seeded identically — plus the carried Hessian.
  bool newton_attempted = false;
  if (options.use_newton && options.newton_max_iterations > 0) {
    newton_attempted = true;
    if (TryHpdNewton(posterior, alpha, start, options.newton_max_iterations,
                     &out)) {
      return out;
    }
  }

  const Status sqp =
      HpdViaSlsqp(posterior, alpha, start, options.warm_hessian, &out);
  if (sqp.ok()) {
    out.path = newton_attempted ? HpdPath::kSlsqpFallback : HpdPath::kSlsqp;
    return out;
  }
  // Extremely peaked or otherwise ill-conditioned posteriors can defeat the
  // SQP line search; the 1-D reduction is slower but unconditionally robust
  // for unimodal shapes.
  KGACC_RETURN_IF_ERROR(HpdViaOneDim(posterior, alpha, &out));
  return out;
}

}  // namespace

const char* HpdPathName(HpdPath path) {
  switch (path) {
    case HpdPath::kLimiting:
      return "limiting";
    case HpdPath::kNewton:
      return "newton";
    case HpdPath::kSlsqp:
      return "slsqp";
    case HpdPath::kSlsqpFallback:
      return "slsqp-fallback";
    case HpdPath::kOneDim:
      return "onedim";
  }
  return "unknown";
}

HpdSolveStats ThreadHpdStatsSnapshot() { return t_hpd_stats; }

void ResetThreadHpdStats() { t_hpd_stats = HpdSolveStats{}; }

void NoteHpdWarmCacheHit() { ++t_hpd_stats.warm_cache_hits; }

Result<Interval> EqualTailedInterval(const BetaDistribution& posterior,
                                     double alpha) {
  KGACC_RETURN_IF_ERROR(ValidateAlpha(alpha));
  KGACC_ASSIGN_OR_RETURN(const double lower, posterior.Quantile(alpha / 2.0));
  KGACC_ASSIGN_OR_RETURN(const double upper,
                         posterior.Quantile(1.0 - alpha / 2.0));
  return Interval{lower, upper};
}

Result<HpdResult> HpdInterval(const BetaDistribution& posterior, double alpha,
                              const HpdOptions& options) {
  Result<HpdResult> result = HpdIntervalImpl(posterior, alpha, options);
  if (result.ok()) TallySolve(*result);
  return result;
}

}  // namespace kgacc
