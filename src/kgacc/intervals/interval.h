#ifndef KGACC_INTERVALS_INTERVAL_H_
#define KGACC_INTERVALS_INTERVAL_H_

#include <algorithm>

/// \file interval.h
/// The 1-alpha interval value type shared by every frequentist and Bayesian
/// constructor in the library, together with the Margin of Error (MoE =
/// half width) that drives the stopping rule of the evaluation framework.

namespace kgacc {

/// A closed interval [lower, upper] for the KG accuracy.
struct Interval {
  double lower = 0.0;
  double upper = 0.0;

  double Width() const { return upper - lower; }

  /// Margin of Error: half the interval width (§2.2).
  double Moe() const { return 0.5 * Width(); }

  /// True when `x` lies inside the interval (inclusive).
  bool Contains(double x) const { return x >= lower && x <= upper; }

  /// The interval clipped to the [0, 1] accuracy domain. Wald intervals can
  /// overshoot the domain (§3.1); clipping is presentational only — the MoE
  /// stopping rule always uses the raw width.
  Interval ClampedToUnit() const {
    Interval out;
    out.lower = std::clamp(lower, 0.0, 1.0);
    out.upper = std::clamp(upper, 0.0, 1.0);
    return out;
  }
};

}  // namespace kgacc

#endif  // KGACC_INTERVALS_INTERVAL_H_
