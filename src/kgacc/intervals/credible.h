#ifndef KGACC_INTERVALS_CREDIBLE_H_
#define KGACC_INTERVALS_CREDIBLE_H_

#include <array>
#include <cstdint>

#include "kgacc/intervals/interval.h"
#include "kgacc/math/beta.h"
#include "kgacc/util/status.h"

/// \file credible.h
/// Bayesian credible intervals on a beta posterior — the paper's core
/// contribution (§4): Equal-Tailed intervals (Eq. 9) and Highest Posterior
/// Density intervals, which Theorems 1-2 prove to be the shortest and
/// unique 1-alpha interval for every annotation scenario.

namespace kgacc {

/// Which algorithm computes the standard-case (interior unimodal) HPD.
enum class HpdSolver {
  /// The standard path: a dedicated 2x2 damped Newton on the KKT system
  /// {F(u) - F(l) = 1 - alpha, f(l) = f(u)} (§4.3's first-order
  /// characterization; `opt/newton_kkt.h`), falling back to the SLSQP-style
  /// SQP when the Newton iterate leaves the basin. `HpdOptions::use_newton`
  /// = false forces the pure SQP formulation (the paper's prescription).
  kSlsqp,
  /// Independent 1-D reduction: u(l) = F^{-1}(F(l) + 1 - alpha), Brent
  /// width minimization over l. Used for cross-validation and ablation.
  kOneDim,
};

/// Options for `HpdInterval`.
struct HpdOptions {
  HpdSolver solver = HpdSolver::kSlsqp;
  /// Warm-start the solver at the ET interval (Alg. 1 line 20). Disabling
  /// this (cold start at a central interval) is Ablation B.
  bool warm_start_at_et = true;
  /// Externally supplied start — typically the previous step's HPD
  /// interval in an iterative audit, where the posterior moves only a
  /// little per batch. Takes precedence over `warm_start_at_et` when it
  /// describes a usable interval (positive width inside [0, 1]); the ET
  /// quantile solves it replaces are the bulk of the standard-case cost.
  /// Not owned; must outlive the call.
  const Interval* warm_start = nullptr;
  /// Try the 2x2 Newton KKT solver first on the unimodal standard case
  /// (4-6 iterations of 2 CDF + 2 PDF evaluations each versus the SQP's
  /// ~25 constraint evaluations). False forces the SQP reference path.
  bool use_newton = true;
  /// Iteration cap for the Newton attempt; 0 skips straight to the SQP
  /// (handy for exercising the fallback in tests).
  int newton_max_iterations = 32;
  /// Warm start for the fallback SQP's BFGS Lagrangian-Hessian model
  /// (row-major 2x2), typically the carried `AhpdWarmState` Hessian of the
  /// previous solve so the fallback does not restart from identity. Not
  /// owned; must outlive the call.
  const std::array<double, 4>* warm_hessian = nullptr;
};

/// Which code path produced an HPD interval.
enum class HpdPath {
  /// Monotone / U-shaped closed forms (no numeric solve).
  kLimiting,
  /// 2x2 Newton on the KKT system — the standard unimodal path.
  kNewton,
  /// SQP directly (Newton disabled or capped to 0 iterations).
  kSlsqp,
  /// SQP after a Newton basin exit.
  kSlsqpFallback,
  /// Brent 1-D reduction (explicit choice, or last-resort fallback).
  kOneDim,
};

const char* HpdPathName(HpdPath path);

/// An HPD computation result with solver diagnostics.
struct HpdResult {
  Interval interval;
  /// Which posterior-shape branch produced the interval.
  BetaShape shape = BetaShape::kUnimodal;
  /// Outer iterations used by the numeric solver (0 for limiting cases);
  /// for a fallback solve this is Newton iterations + SQP iterations.
  int solver_iterations = 0;
  /// Solver path taken.
  HpdPath path = HpdPath::kLimiting;
  /// Beta-function evaluations this solve spent, across every path tried.
  /// A quantile counts as one evaluation even though the inverse-CDF solve
  /// internally iterates the incomplete beta several times, so these are
  /// lower bounds on incomplete-beta work — comparable across solvers.
  int cdf_evals = 0;
  int pdf_evals = 0;
  int quantile_evals = 0;
  /// Newton convergence certificate: the residuals of the two KKT
  /// equations (coverage, log-density equality) at the returned endpoints.
  /// Zero for non-Newton paths.
  double kkt_coverage_residual = 0.0;
  double kkt_density_residual = 0.0;
  /// Final BFGS Lagrangian-Hessian model when an SQP ran; feed it back via
  /// `HpdOptions::warm_hessian` on the next nearby solve.
  bool has_hessian = false;
  std::array<double, 4> hessian{};
};

/// Per-path tallies of the thread-local HPD solve statistics.
struct HpdPathTally {
  uint64_t solves = 0;
  uint64_t iterations = 0;
  uint64_t cdf_evals = 0;
  uint64_t pdf_evals = 0;
  uint64_t quantile_evals = 0;

  HpdPathTally& operator+=(const HpdPathTally& other) {
    solves += other.solves;
    iterations += other.iterations;
    cdf_evals += other.cdf_evals;
    pdf_evals += other.pdf_evals;
    quantile_evals += other.quantile_evals;
    return *this;
  }
};

/// Aggregate HPD solver counters for the calling thread, accumulated by
/// every successful `HpdInterval` on that thread (the warm-state cache hits
/// of `HpdIntervalWarm` are counted separately — they run no solver).
/// Read/reset them around a measurement region to attribute incomplete-beta
/// work to solver paths; used by `bench_step_latency` to report per-solve
/// evaluation counts in BENCH_step.json.
struct HpdSolveStats {
  HpdPathTally limiting;
  HpdPathTally newton;
  HpdPathTally slsqp;
  HpdPathTally slsqp_fallback;
  HpdPathTally onedim;
  uint64_t warm_cache_hits = 0;

  uint64_t total_solves() const {
    return limiting.solves + newton.solves + slsqp.solves +
           slsqp_fallback.solves + onedim.solves;
  }
  uint64_t total_beta_evals() const {
    uint64_t evals = 0;
    for (const HpdPathTally* t :
         {&limiting, &newton, &slsqp, &slsqp_fallback, &onedim}) {
      evals += t->cdf_evals + t->pdf_evals + t->quantile_evals;
    }
    return evals;
  }

  /// Merges another snapshot in (e.g. combining measurement windows);
  /// lives next to the tallies so a new field or path cannot silently
  /// drop out of aggregations.
  HpdSolveStats& operator+=(const HpdSolveStats& other) {
    limiting += other.limiting;
    newton += other.newton;
    slsqp += other.slsqp;
    slsqp_fallback += other.slsqp_fallback;
    onedim += other.onedim;
    warm_cache_hits += other.warm_cache_hits;
    return *this;
  }
};

/// Snapshot of this thread's counters since the last reset.
HpdSolveStats ThreadHpdStatsSnapshot();

/// Zeroes this thread's counters.
void ResetThreadHpdStats();

/// Records a warm-state cache hit (called by `HpdIntervalWarm`).
void NoteHpdWarmCacheHit();

/// 1-alpha Equal-Tailed credible interval (Eq. 9):
/// [qBeta(alpha/2), qBeta(1 - alpha/2)] on the posterior.
Result<Interval> EqualTailedInterval(const BetaDistribution& posterior,
                                     double alpha);

/// 1-alpha Highest Posterior Density credible interval.
///
/// Dispatches on the posterior shape:
/// * interior unimodal — 2x2 Newton KKT solve with SQP fallback, or the
///   solver selected by `options` (Thm. 1/2);
/// * monotone decreasing (tau = 0 under an uninformative prior) —
///   [0, qBeta(1 - alpha)] (Eq. 11, Corollary 1/2);
/// * monotone increasing (tau = n) — [qBeta(alpha), 1] (Eq. 10);
/// * U-shaped (no data under a sub-uniform prior) — the density has no
///   single HPD *interval*; falls back to the ET interval.
Result<HpdResult> HpdInterval(const BetaDistribution& posterior, double alpha,
                              const HpdOptions& options = {});

}  // namespace kgacc

#endif  // KGACC_INTERVALS_CREDIBLE_H_
