#ifndef KGACC_INTERVALS_CREDIBLE_H_
#define KGACC_INTERVALS_CREDIBLE_H_

#include "kgacc/intervals/interval.h"
#include "kgacc/math/beta.h"
#include "kgacc/util/status.h"

/// \file credible.h
/// Bayesian credible intervals on a beta posterior — the paper's core
/// contribution (§4): Equal-Tailed intervals (Eq. 9) and Highest Posterior
/// Density intervals, which Theorems 1-2 prove to be the shortest and
/// unique 1-alpha interval for every annotation scenario.

namespace kgacc {

/// Which algorithm computes the standard-case (interior unimodal) HPD.
enum class HpdSolver {
  /// Minimize u - l s.t. F(u) - F(l) = 1 - alpha with the SLSQP-style SQP
  /// solver, warm-started at the ET interval (§4.3; the paper's method).
  kSlsqp,
  /// Independent 1-D reduction: u(l) = F^{-1}(F(l) + 1 - alpha), Brent
  /// width minimization over l. Used for cross-validation and ablation.
  kOneDim,
};

/// Options for `HpdInterval`.
struct HpdOptions {
  HpdSolver solver = HpdSolver::kSlsqp;
  /// Warm-start the SQP at the ET interval (Alg. 1 line 20). Disabling
  /// this (cold start at a central interval) is Ablation B.
  bool warm_start_at_et = true;
  /// Externally supplied SQP start — typically the previous step's HPD
  /// interval in an iterative audit, where the posterior moves only a
  /// little per batch. Takes precedence over `warm_start_at_et` when it
  /// describes a usable interval (positive width inside [0, 1]); the ET
  /// quantile solves it replaces are the bulk of the standard-case cost.
  /// Not owned; must outlive the call.
  const Interval* warm_start = nullptr;
};

/// An HPD computation result with solver diagnostics.
struct HpdResult {
  Interval interval;
  /// Which posterior-shape branch produced the interval.
  BetaShape shape = BetaShape::kUnimodal;
  /// Outer iterations used by the numeric solver (0 for limiting cases).
  int solver_iterations = 0;
};

/// 1-alpha Equal-Tailed credible interval (Eq. 9):
/// [qBeta(alpha/2), qBeta(1 - alpha/2)] on the posterior.
Result<Interval> EqualTailedInterval(const BetaDistribution& posterior,
                                     double alpha);

/// 1-alpha Highest Posterior Density credible interval.
///
/// Dispatches on the posterior shape:
/// * interior unimodal — numeric minimization per `options` (Thm. 1/2);
/// * monotone decreasing (tau = 0 under an uninformative prior) —
///   [0, qBeta(1 - alpha)] (Eq. 11, Corollary 1/2);
/// * monotone increasing (tau = n) — [qBeta(alpha), 1] (Eq. 10);
/// * U-shaped (no data under a sub-uniform prior) — the density has no
///   single HPD *interval*; falls back to the ET interval.
Result<HpdResult> HpdInterval(const BetaDistribution& posterior, double alpha,
                              const HpdOptions& options = {});

}  // namespace kgacc

#endif  // KGACC_INTERVALS_CREDIBLE_H_
