#include "kgacc/intervals/frequentist.h"

#include <cmath>

#include "kgacc/math/beta.h"
#include "kgacc/math/normal.h"

namespace kgacc {

Result<Interval> WaldInterval(const AccuracyEstimate& estimate, double alpha) {
  if (estimate.n == 0) {
    return Status::FailedPrecondition("Wald interval needs a non-empty sample");
  }
  if (estimate.variance < 0.0) {
    return Status::InvalidArgument("negative variance estimate");
  }
  KGACC_ASSIGN_OR_RETURN(const double z, TwoSidedZ(alpha));
  const double half = z * std::sqrt(estimate.variance);
  return Interval{estimate.mu - half, estimate.mu + half};
}

Result<Interval> WilsonInterval(double mu, double n, double alpha) {
  if (!(n > 0.0)) {
    return Status::FailedPrecondition("Wilson interval needs n > 0");
  }
  if (!(mu >= 0.0) || !(mu <= 1.0)) {
    return Status::OutOfRange("estimate must be in [0,1]");
  }
  KGACC_ASSIGN_OR_RETURN(const double z, TwoSidedZ(alpha));
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (mu + z2 / (2.0 * n)) / denom;
  const double spread =
      z / denom * std::sqrt(mu * (1.0 - mu) / n + z2 / (4.0 * n * n));
  return Interval{center - spread, center + spread};
}

Result<Interval> AgrestiCoullInterval(double mu, double n, double alpha) {
  if (!(n > 0.0)) {
    return Status::FailedPrecondition("Agresti-Coull interval needs n > 0");
  }
  if (!(mu >= 0.0) || !(mu <= 1.0)) {
    return Status::OutOfRange("estimate must be in [0,1]");
  }
  KGACC_ASSIGN_OR_RETURN(const double z, TwoSidedZ(alpha));
  const double z2 = z * z;
  const double n_tilde = n + z2;
  const double p_tilde = (mu * n + z2 / 2.0) / n_tilde;
  const double half = z * std::sqrt(p_tilde * (1.0 - p_tilde) / n_tilde);
  return Interval{p_tilde - half, p_tilde + half};
}

Result<Interval> ClopperPearsonInterval(uint64_t tau, uint64_t n,
                                        double alpha) {
  if (n == 0) {
    return Status::FailedPrecondition(
        "Clopper-Pearson interval needs a non-empty sample");
  }
  if (tau > n) return Status::InvalidArgument("tau exceeds n");
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::OutOfRange("alpha must be in (0,1)");
  }
  Interval out;
  if (tau == 0) {
    out.lower = 0.0;
  } else {
    KGACC_ASSIGN_OR_RETURN(
        auto lo_dist, BetaDistribution::Create(static_cast<double>(tau),
                                               static_cast<double>(n - tau + 1)));
    KGACC_ASSIGN_OR_RETURN(out.lower, lo_dist.Quantile(alpha / 2.0));
  }
  if (tau == n) {
    out.upper = 1.0;
  } else {
    KGACC_ASSIGN_OR_RETURN(
        auto hi_dist, BetaDistribution::Create(static_cast<double>(tau + 1),
                                               static_cast<double>(n - tau)));
    KGACC_ASSIGN_OR_RETURN(out.upper, hi_dist.Quantile(1.0 - alpha / 2.0));
  }
  return out;
}

}  // namespace kgacc
