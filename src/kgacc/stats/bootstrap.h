#ifndef KGACC_STATS_BOOTSTRAP_H_
#define KGACC_STATS_BOOTSTRAP_H_

#include <functional>
#include <vector>

#include "kgacc/intervals/interval.h"
#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file bootstrap.h
/// Percentile bootstrap for the experiment harness. The paper annotates
/// Fig. 4 with point reduction ratios; the bootstrap quantifies their
/// uncertainty (a reduction of -8% over 1,000 noisy runs needs an interval
/// before it can be called real), and provides a distribution-free
/// complement to the t-tests used for the significance marks.

namespace kgacc {

/// Options for the bootstrap routines.
struct BootstrapOptions {
  /// Resamples drawn; 2,000 gives percentile endpoints stable to ~1%.
  int resamples = 2000;
  /// Two-sided coverage of the reported interval.
  double confidence = 0.95;
  /// Seed for the resampling RNG.
  uint64_t seed = 1;
};

/// Percentile bootstrap interval for a statistic of one sample.
/// `statistic` maps a resampled vector to a scalar (e.g. the mean).
Result<Interval> BootstrapInterval(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    const BootstrapOptions& options = {});

/// Percentile bootstrap interval for the *ratio of means* mean(x)/mean(y)
/// of two independent samples — the reduction-ratio statistic of Fig. 4.
Result<Interval> BootstrapRatioOfMeans(const std::vector<double>& x,
                                       const std::vector<double>& y,
                                       const BootstrapOptions& options = {});

/// Percentile bootstrap interval for the difference of means
/// mean(x) - mean(y) of two independent samples.
Result<Interval> BootstrapMeanDifference(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         const BootstrapOptions& options = {});

}  // namespace kgacc

#endif  // KGACC_STATS_BOOTSTRAP_H_
