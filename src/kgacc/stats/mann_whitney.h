#ifndef KGACC_STATS_MANN_WHITNEY_H_
#define KGACC_STATS_MANN_WHITNEY_H_

#include <vector>

#include "kgacc/util/status.h"

/// \file mann_whitney.h
/// Mann-Whitney U (Wilcoxon rank-sum) test. The paper relies on t-tests for
/// its significance marks; annotation-count distributions are however
/// right-skewed and occasionally degenerate (FACTBENCH's +-3 triples), so
/// the harness cross-checks the marks with this distribution-free test.

namespace kgacc {

/// Outcome of a Mann-Whitney U test.
struct MannWhitneyResult {
  /// U statistic of the first sample.
  double u = 0.0;
  /// Standardized statistic under the normal approximation with tie
  /// correction and continuity correction.
  double z = 0.0;
  /// Two-sided p-value (normal approximation; accurate for n >= ~10).
  double p_two_sided = 1.0;

  bool SignificantAt(double level) const { return p_two_sided < level; }
};

/// Two-sided Mann-Whitney U test of xs vs ys. Requires at least two
/// observations per sample; handles ties via mid-ranks and the variance
/// tie correction. All-tied inputs yield p = 1.
Result<MannWhitneyResult> MannWhitneyUTest(const std::vector<double>& xs,
                                           const std::vector<double>& ys);

}  // namespace kgacc

#endif  // KGACC_STATS_MANN_WHITNEY_H_
