#include "kgacc/stats/bootstrap.h"

#include <algorithm>
#include <cmath>

namespace kgacc {

namespace {

Status ValidateOptions(const BootstrapOptions& options) {
  if (options.resamples < 10) {
    return Status::InvalidArgument("bootstrap needs at least 10 resamples");
  }
  if (!(options.confidence > 0.0) || !(options.confidence < 1.0)) {
    return Status::OutOfRange("confidence must be in (0,1)");
  }
  return Status::OK();
}

/// Percentile endpoints of a (sorted in place) replicate vector.
Interval PercentileInterval(std::vector<double>* replicates,
                            double confidence) {
  std::sort(replicates->begin(), replicates->end());
  const double alpha = 1.0 - confidence;
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(replicates->size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, replicates->size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return (*replicates)[lo] * (1.0 - frac) + (*replicates)[hi] * frac;
  };
  return Interval{at(alpha / 2.0), at(1.0 - alpha / 2.0)};
}

double MeanOf(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

void Resample(const std::vector<double>& from, std::vector<double>* to,
              Rng* rng) {
  to->resize(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    (*to)[i] = from[rng->UniformInt(from.size())];
  }
}

}  // namespace

Result<Interval> BootstrapInterval(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    const BootstrapOptions& options) {
  KGACC_RETURN_IF_ERROR(ValidateOptions(options));
  if (sample.size() < 2) {
    return Status::FailedPrecondition("bootstrap needs at least two values");
  }
  if (!statistic) {
    return Status::InvalidArgument("bootstrap statistic is required");
  }
  Rng rng(options.seed);
  std::vector<double> replicates(options.resamples);
  std::vector<double> scratch;
  for (int r = 0; r < options.resamples; ++r) {
    Resample(sample, &scratch, &rng);
    replicates[r] = statistic(scratch);
  }
  return PercentileInterval(&replicates, options.confidence);
}

Result<Interval> BootstrapRatioOfMeans(const std::vector<double>& x,
                                       const std::vector<double>& y,
                                       const BootstrapOptions& options) {
  KGACC_RETURN_IF_ERROR(ValidateOptions(options));
  if (x.size() < 2 || y.size() < 2) {
    return Status::FailedPrecondition("bootstrap needs at least two values");
  }
  if (MeanOf(y) == 0.0) {
    return Status::NumericError("denominator sample has zero mean");
  }
  Rng rng(options.seed);
  std::vector<double> replicates;
  replicates.reserve(options.resamples);
  std::vector<double> sx, sy;
  for (int r = 0; r < options.resamples; ++r) {
    Resample(x, &sx, &rng);
    Resample(y, &sy, &rng);
    const double denom = MeanOf(sy);
    if (denom == 0.0) continue;  // Degenerate resample; skip.
    replicates.push_back(MeanOf(sx) / denom);
  }
  if (replicates.size() < 10) {
    return Status::NumericError("too many degenerate bootstrap resamples");
  }
  return PercentileInterval(&replicates, options.confidence);
}

Result<Interval> BootstrapMeanDifference(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         const BootstrapOptions& options) {
  KGACC_RETURN_IF_ERROR(ValidateOptions(options));
  if (x.size() < 2 || y.size() < 2) {
    return Status::FailedPrecondition("bootstrap needs at least two values");
  }
  Rng rng(options.seed);
  std::vector<double> replicates(options.resamples);
  std::vector<double> sx, sy;
  for (int r = 0; r < options.resamples; ++r) {
    Resample(x, &sx, &rng);
    Resample(y, &sy, &rng);
    replicates[r] = MeanOf(sx) - MeanOf(sy);
  }
  return PercentileInterval(&replicates, options.confidence);
}

}  // namespace kgacc
