#include "kgacc/stats/mann_whitney.h"

#include <algorithm>
#include <cmath>

#include "kgacc/math/normal.h"

namespace kgacc {

Result<MannWhitneyResult> MannWhitneyUTest(const std::vector<double>& xs,
                                           const std::vector<double>& ys) {
  if (xs.size() < 2 || ys.size() < 2) {
    return Status::FailedPrecondition(
        "Mann-Whitney needs at least two observations per sample");
  }
  const size_t nx = xs.size();
  const size_t ny = ys.size();
  const size_t n = nx + ny;

  // Pool, sort, assign mid-ranks.
  struct Tagged {
    double value;
    bool from_x;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(n);
  for (double x : xs) pooled.push_back({x, true});
  for (double y : ys) pooled.push_back({y, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& a, const Tagged& b) { return a.value < b.value; });

  double rank_sum_x = 0.0;
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && pooled[j].value == pooled[i].value) ++j;
    const double tied = static_cast<double>(j - i);
    // Mid-rank of the tied block (ranks are 1-based).
    const double mid_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (pooled[k].from_x) rank_sum_x += mid_rank;
    }
    tie_correction += tied * tied * tied - tied;
    i = j;
  }

  MannWhitneyResult out;
  const double nxd = static_cast<double>(nx);
  const double nyd = static_cast<double>(ny);
  out.u = rank_sum_x - nxd * (nxd + 1.0) / 2.0;

  const double mean_u = nxd * nyd / 2.0;
  const double nd = static_cast<double>(n);
  const double var_u = nxd * nyd / 12.0 *
                       ((nd + 1.0) - tie_correction / (nd * (nd - 1.0)));
  if (var_u <= 0.0) {
    // Every pooled value tied: the samples are indistinguishable.
    out.z = 0.0;
    out.p_two_sided = 1.0;
    return out;
  }
  // Continuity correction toward the null.
  const double diff = out.u - mean_u;
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  out.z = corrected / std::sqrt(var_u);
  out.p_two_sided = 2.0 * StdNormalCdf(-std::fabs(out.z));
  if (out.p_two_sided > 1.0) out.p_two_sided = 1.0;
  return out;
}

}  // namespace kgacc
