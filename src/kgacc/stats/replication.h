#ifndef KGACC_STATS_REPLICATION_H_
#define KGACC_STATS_REPLICATION_H_

#include <vector>

#include "kgacc/eval/evaluator.h"
#include "kgacc/eval/service.h"
#include "kgacc/stats/descriptive.h"
#include "kgacc/util/status.h"

/// \file replication.h
/// The repetition protocol of §5: every (dataset, design, method, alpha)
/// configuration is evaluated `reps` times with seeds base_seed + i, and
/// reported as mean +- std of annotated triples and annotation cost. Raw
/// per-repetition vectors are retained for the significance tests.

namespace kgacc {

/// Aggregated outcome of repeated evaluation runs.
struct ReplicationSummary {
  /// Raw per-repetition values (for t-tests and percentiles).
  std::vector<double> triples;
  std::vector<double> cost_hours;
  std::vector<double> mu;
  std::vector<double> interval_widths;
  /// Summaries of the above.
  SampleSummary triples_summary;
  SampleSummary cost_summary;
  SampleSummary mu_summary;
  /// Runs that hit the annotation cap without satisfying the MoE budget.
  int unconverged = 0;
  /// Runs ending with a zero-width interval (the Example 1 pathology).
  int zero_width = 0;
  /// How often each prior index won (aHPD diagnostics).
  std::vector<int> prior_wins;
};

/// Runs `RunEvaluation` `reps` times (seed = base_seed + i) and aggregates.
/// The sampler is Reset() by each run; the bound population is reused.
Result<ReplicationSummary> RunReplications(Sampler& sampler,
                                           Annotator& annotator,
                                           const EvaluationConfig& config,
                                           int reps, uint64_t base_seed);

/// Parallel form of the same protocol: fans the `reps` runs out as
/// `EvaluationService` jobs (seed = base_seed + i, one sampler clone per
/// job) and aggregates in repetition order. Produces the identical
/// `ReplicationSummary` as the serial version for every thread count; the
/// annotator must be safe for concurrent `Annotate` calls (the simulation
/// annotators are).
Result<ReplicationSummary> RunReplicationsParallel(
    EvaluationService& service, const Sampler& sampler, Annotator& annotator,
    const EvaluationConfig& config, int reps, uint64_t base_seed);

}  // namespace kgacc

#endif  // KGACC_STATS_REPLICATION_H_
