#ifndef KGACC_STATS_TTEST_H_
#define KGACC_STATS_TTEST_H_

#include <vector>

#include "kgacc/util/status.h"

/// \file ttest.h
/// Independent two-sample t-tests. The paper marks performance differences
/// significant via "standard independent t-tests with p < 0.01" (Tables
/// 3-4); we provide both the pooled-variance Student test (the "standard"
/// one) and Welch's unequal-variance variant.

namespace kgacc {

/// Outcome of a two-sample t-test.
struct TTestResult {
  double t = 0.0;            ///< Test statistic.
  double df = 0.0;           ///< Degrees of freedom.
  double p_two_sided = 1.0;  ///< Two-sided p-value.

  bool SignificantAt(double level) const { return p_two_sided < level; }
};

/// Pooled-variance (Student) independent two-sample t-test. Each sample
/// needs at least two observations. Degenerate zero-variance inputs yield
/// p = 1 when the means coincide and p = 0 otherwise.
Result<TTestResult> PooledTTest(const std::vector<double>& xs,
                                const std::vector<double>& ys);

/// Welch's unequal-variance t-test with Satterthwaite degrees of freedom.
Result<TTestResult> WelchTTest(const std::vector<double>& xs,
                               const std::vector<double>& ys);

}  // namespace kgacc

#endif  // KGACC_STATS_TTEST_H_
