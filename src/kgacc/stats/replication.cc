#include "kgacc/stats/replication.h"

namespace kgacc {

Result<ReplicationSummary> RunReplications(Sampler& sampler,
                                           Annotator& annotator,
                                           const EvaluationConfig& config,
                                           int reps, uint64_t base_seed) {
  if (reps < 1) {
    return Status::InvalidArgument("need at least one repetition");
  }
  ReplicationSummary summary;
  summary.triples.reserve(reps);
  summary.cost_hours.reserve(reps);
  summary.mu.reserve(reps);
  summary.interval_widths.reserve(reps);
  summary.prior_wins.assign(std::max<size_t>(config.priors.size(), 1), 0);

  for (int rep = 0; rep < reps; ++rep) {
    KGACC_ASSIGN_OR_RETURN(
        const EvaluationResult result,
        RunEvaluation(sampler, annotator, config, base_seed + rep));
    summary.triples.push_back(static_cast<double>(result.annotated_triples));
    summary.cost_hours.push_back(result.cost_hours);
    summary.mu.push_back(result.mu);
    summary.interval_widths.push_back(result.interval.Width());
    if (!result.converged) ++summary.unconverged;
    if (result.interval.Width() == 0.0) ++summary.zero_width;
    if (result.winning_prior < summary.prior_wins.size()) {
      ++summary.prior_wins[result.winning_prior];
    }
  }
  KGACC_ASSIGN_OR_RETURN(summary.triples_summary, Summarize(summary.triples));
  KGACC_ASSIGN_OR_RETURN(summary.cost_summary, Summarize(summary.cost_hours));
  KGACC_ASSIGN_OR_RETURN(summary.mu_summary, Summarize(summary.mu));
  return summary;
}

}  // namespace kgacc
