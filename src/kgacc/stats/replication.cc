#include "kgacc/stats/replication.h"

namespace kgacc {

namespace {

void InitSummary(ReplicationSummary& summary, int reps,
                 const EvaluationConfig& config) {
  summary.triples.reserve(reps);
  summary.cost_hours.reserve(reps);
  summary.mu.reserve(reps);
  summary.interval_widths.reserve(reps);
  summary.prior_wins.assign(std::max<size_t>(config.priors.size(), 1), 0);
}

void Accumulate(ReplicationSummary& summary, const EvaluationResult& result) {
  summary.triples.push_back(static_cast<double>(result.annotated_triples));
  summary.cost_hours.push_back(result.cost_hours);
  summary.mu.push_back(result.mu);
  summary.interval_widths.push_back(result.interval.Width());
  if (!result.converged) ++summary.unconverged;
  if (result.interval.Width() == 0.0) ++summary.zero_width;
  if (result.winning_prior < summary.prior_wins.size()) {
    ++summary.prior_wins[result.winning_prior];
  }
}

Status FinalizeSummaries(ReplicationSummary& summary) {
  KGACC_ASSIGN_OR_RETURN(summary.triples_summary, Summarize(summary.triples));
  KGACC_ASSIGN_OR_RETURN(summary.cost_summary, Summarize(summary.cost_hours));
  KGACC_ASSIGN_OR_RETURN(summary.mu_summary, Summarize(summary.mu));
  return Status::OK();
}

}  // namespace

Result<ReplicationSummary> RunReplications(Sampler& sampler,
                                           Annotator& annotator,
                                           const EvaluationConfig& config,
                                           int reps, uint64_t base_seed) {
  if (reps < 1) {
    return Status::InvalidArgument("need at least one repetition");
  }
  ReplicationSummary summary;
  InitSummary(summary, reps, config);
  for (int rep = 0; rep < reps; ++rep) {
    KGACC_ASSIGN_OR_RETURN(
        const EvaluationResult result,
        RunEvaluation(sampler, annotator, config, base_seed + rep));
    Accumulate(summary, result);
  }
  KGACC_RETURN_IF_ERROR(FinalizeSummaries(summary));
  return summary;
}

Result<ReplicationSummary> RunReplicationsParallel(
    EvaluationService& service, const Sampler& sampler, Annotator& annotator,
    const EvaluationConfig& config, int reps, uint64_t base_seed) {
  if (reps < 1) {
    return Status::InvalidArgument("need at least one repetition");
  }
  std::vector<EvaluationJob> jobs(reps);
  for (int rep = 0; rep < reps; ++rep) {
    jobs[rep].sampler = &sampler;
    jobs[rep].annotator = &annotator;
    jobs[rep].config = config;
    jobs[rep].seed = base_seed + rep;
  }
  const EvaluationBatchResult batch = service.RunBatch(jobs);

  ReplicationSummary summary;
  InitSummary(summary, reps, config);
  for (const EvaluationJobOutcome& outcome : batch.outcomes) {
    KGACC_RETURN_IF_ERROR(outcome.status);
    Accumulate(summary, outcome.result);
  }
  KGACC_RETURN_IF_ERROR(FinalizeSummaries(summary));
  return summary;
}

}  // namespace kgacc
