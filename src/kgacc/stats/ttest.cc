#include "kgacc/stats/ttest.h"

#include <cmath>

#include "kgacc/math/student_t.h"
#include "kgacc/stats/descriptive.h"

namespace kgacc {

namespace {

Status ValidateInputs(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  if (xs.size() < 2 || ys.size() < 2) {
    return Status::FailedPrecondition(
        "t-test needs at least two observations per sample");
  }
  return Status::OK();
}

Result<TTestResult> FinishTest(double mean_diff, double se, double df) {
  TTestResult out;
  out.df = df;
  if (se <= 0.0) {
    // Degenerate zero-variance samples: identical means are indistinguish-
    // able, different means are trivially separated.
    out.t = mean_diff == 0.0 ? 0.0
                             : std::numeric_limits<double>::infinity() *
                                   (mean_diff > 0 ? 1.0 : -1.0);
    out.p_two_sided = mean_diff == 0.0 ? 1.0 : 0.0;
    return out;
  }
  out.t = mean_diff / se;
  KGACC_ASSIGN_OR_RETURN(out.p_two_sided, StudentTTwoSidedP(out.t, df));
  return out;
}

}  // namespace

Result<TTestResult> PooledTTest(const std::vector<double>& xs,
                                const std::vector<double>& ys) {
  KGACC_RETURN_IF_ERROR(ValidateInputs(xs, ys));
  const double nx = static_cast<double>(xs.size());
  const double ny = static_cast<double>(ys.size());
  KGACC_ASSIGN_OR_RETURN(const double mx, Mean(xs));
  KGACC_ASSIGN_OR_RETURN(const double my, Mean(ys));
  KGACC_ASSIGN_OR_RETURN(const double vx, SampleVariance(xs));
  KGACC_ASSIGN_OR_RETURN(const double vy, SampleVariance(ys));
  const double df = nx + ny - 2.0;
  const double pooled = ((nx - 1.0) * vx + (ny - 1.0) * vy) / df;
  const double se = std::sqrt(pooled * (1.0 / nx + 1.0 / ny));
  return FinishTest(mx - my, se, df);
}

Result<TTestResult> WelchTTest(const std::vector<double>& xs,
                               const std::vector<double>& ys) {
  KGACC_RETURN_IF_ERROR(ValidateInputs(xs, ys));
  const double nx = static_cast<double>(xs.size());
  const double ny = static_cast<double>(ys.size());
  KGACC_ASSIGN_OR_RETURN(const double mx, Mean(xs));
  KGACC_ASSIGN_OR_RETURN(const double my, Mean(ys));
  KGACC_ASSIGN_OR_RETURN(const double vx, SampleVariance(xs));
  KGACC_ASSIGN_OR_RETURN(const double vy, SampleVariance(ys));
  const double ax = vx / nx;
  const double ay = vy / ny;
  const double se = std::sqrt(ax + ay);
  double df = 1.0;
  if (ax + ay > 0.0) {
    const double denom =
        ax * ax / (nx - 1.0) + ay * ay / (ny - 1.0);
    df = denom > 0.0 ? (ax + ay) * (ax + ay) / denom : nx + ny - 2.0;
  }
  return FinishTest(mx - my, se, df);
}

}  // namespace kgacc
