#include "kgacc/stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace kgacc {

Result<double> Mean(const std::vector<double>& xs) {
  if (xs.empty()) return Status::FailedPrecondition("mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Result<double> SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return Status::FailedPrecondition("variance needs at least two values");
  }
  KGACC_ASSIGN_OR_RETURN(const double m, Mean(xs));
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

Result<SampleSummary> Summarize(const std::vector<double>& xs) {
  if (xs.empty()) {
    return Status::FailedPrecondition("summary of empty sample");
  }
  SampleSummary s;
  s.n = xs.size();
  KGACC_ASSIGN_OR_RETURN(s.mean, Mean(xs));
  if (xs.size() >= 2) {
    KGACC_ASSIGN_OR_RETURN(const double var, SampleVariance(xs));
    s.stddev = std::sqrt(var);
  }
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  return s;
}

}  // namespace kgacc
