#ifndef KGACC_STATS_DESCRIPTIVE_H_
#define KGACC_STATS_DESCRIPTIVE_H_

#include <vector>

#include "kgacc/util/status.h"

/// \file descriptive.h
/// Descriptive statistics for experiment reporting (the "mean +- std over
/// 1,000 repetitions" protocol of §5).

namespace kgacc {

/// Summary of a univariate sample.
struct SampleSummary {
  size_t n = 0;
  double mean = 0.0;
  /// Sample standard deviation (n - 1 denominator); 0 for n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Arithmetic mean; requires a non-empty input.
Result<double> Mean(const std::vector<double>& xs);

/// Sample variance with the n-1 denominator; requires n >= 2.
Result<double> SampleVariance(const std::vector<double>& xs);

/// Full summary of `xs`; requires a non-empty input.
Result<SampleSummary> Summarize(const std::vector<double>& xs);

}  // namespace kgacc

#endif  // KGACC_STATS_DESCRIPTIVE_H_
