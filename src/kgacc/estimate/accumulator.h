#ifndef KGACC_ESTIMATE_ACCUMULATOR_H_
#define KGACC_ESTIMATE_ACCUMULATOR_H_

#include <cstdint>
#include <vector>

#include "kgacc/estimate/estimators.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/sampling/sampler.h"
#include "kgacc/util/status.h"

/// \file accumulator.h
/// Streaming form of the estimators in estimators.h. The iterative
/// framework re-estimates after *every* batch (Algorithm 1 line 10); the
/// batch functions re-walk the whole accumulated sample, so a full audit
/// costs O(n^2) in annotated units. `EstimatorAccumulator` ingests each
/// `AnnotatedUnit` once and reproduces the same `AccuracyEstimate` from
/// running sufficient statistics, making phase 3 O(batch) per step:
///
/// * SRS          — running (n, tau).
/// * Cluster      — running sum of per-cluster accuracies (arrival order,
///                  so the mean is bit-identical to the batch estimator)
///                  plus a Welford-style M2 for the between-cluster
///                  sum-of-squares.
/// * RCS          — exact integer power sums (sum tau_i, sum M_i,
///                  sum tau_i^2, sum tau_i M_i, sum M_i^2), from which the
///                  linearized ratio variance sum (tau_i - r M_i)^2 is
///                  recoverable in O(1) at any ratio r.
/// * Stratified   — per-stratum (n_h, tau_h) count arrays.
///
/// The batch functions remain the reference implementation;
/// tests/estimate/accumulator_test.cc verifies agreement on randomized
/// streams (bit-exact where the summation order is preserved, <= 1e-12
/// otherwise).

namespace kgacc {

class ByteWriter;
class ByteReader;

/// Ingests annotated units incrementally and produces the matching
/// design-based accuracy estimate from O(1) state (O(#strata) for
/// stratified designs). One accumulator serves one evaluation run; pair it
/// with the same `EstimatorKind` the sampler advertises.
class EstimatorAccumulator {
 public:
  explicit EstimatorAccumulator(EstimatorKind kind) : kind_(kind) {}

  EstimatorKind kind() const { return kind_; }

  /// Folds one annotated unit into the running statistics. O(1).
  void Add(const AnnotatedUnit& unit);

  /// Folds a whole batch. O(batch).
  void AddBatch(const std::vector<AnnotatedUnit>& units) {
    for (const AnnotatedUnit& unit : units) Add(unit);
  }

  /// Restores the freshly constructed state.
  void Reset();

  /// Annotated triples n_S folded in so far.
  uint64_t num_triples() const { return n_; }
  /// Correct annotations tau_S.
  uint64_t num_correct() const { return tau_; }
  /// Units (first-stage clusters, or triples for SRS-like designs).
  uint64_t num_units() const { return units_; }

  /// Produces the estimate for the current state — the same value (and the
  /// same error statuses) the matching batch function would return for the
  /// sample accumulated so far. `stratum_weights` is required for
  /// kStratified and ignored otherwise; a nonzero `population_size` applies
  /// the finite-population correction for kSrs, exactly as `EstimateSrs`.
  Result<AccuracyEstimate> Estimate(
      const std::vector<double>* stratum_weights = nullptr,
      uint64_t population_size = 0) const;

  /// Serializes every running statistic (all variants, not just the active
  /// kind's) with bit-exact doubles, so a restored accumulator produces the
  /// identical estimate stream. The kind is written for validation: a
  /// snapshot restored into an accumulator of a different kind is rejected.
  void SaveState(ByteWriter* w) const;
  Status LoadState(ByteReader* r);

 private:
  EstimatorKind kind_;

  // Shared totals.
  uint64_t n_ = 0;
  uint64_t tau_ = 0;
  uint64_t units_ = 0;

  // Cluster: sum of mu_i in arrival order (matches the batch mean bit for
  // bit) and Welford running mean / M2 for the between-cluster SS.
  double sum_mu_ = 0.0;
  double welford_mean_ = 0.0;
  double welford_m2_ = 0.0;

  // RCS: integer power sums, exact up to 2^64 (tau_i, M_i < 2^24 by the
  // TripleKey packing invariant, so overflow needs > 2^16 max-size
  // clusters — far beyond any audit's annotation budget).
  uint64_t sum_tau_ = 0;
  uint64_t sum_m_ = 0;
  uint64_t sum_tau2_ = 0;
  uint64_t sum_taum_ = 0;
  uint64_t sum_m2_ = 0;

  // Stratified: per-stratum triple and correct counts, grown on demand.
  std::vector<uint64_t> n_h_;
  std::vector<uint64_t> tau_h_;
};

}  // namespace kgacc

#endif  // KGACC_ESTIMATE_ACCUMULATOR_H_
