#ifndef KGACC_ESTIMATE_DESIGN_EFFECT_H_
#define KGACC_ESTIMATE_DESIGN_EFFECT_H_

#include "kgacc/estimate/estimators.h"

/// \file design_effect.h
/// Kish design-effect machinery (Kish 1965/1995), applied exactly as in
/// Marchesin & Silvello VLDB'24 and Algorithm 1 lines 11-13: when a complex
/// design (TWCS) is in play, the interval constructors — Wilson and the
/// beta-posterior CrIs — receive an *effective* sample (n_eff, tau_eff)
/// whose SRS variance matches the design's estimated variance.

namespace kgacc {

/// Effective SRS-equivalent sample for a complex-design estimate.
struct EffectiveSample {
  /// Design effect deff = V_design / V_srs.
  double deff = 1.0;
  /// Effective sample size n / deff.
  double n_eff = 0.0;
  /// Effective correct count mu * n_eff.
  double tau_eff = 0.0;
};

/// Tuning for the design-effect computation.
struct DesignEffectOptions {
  /// Lower clamp for deff: protects against pathological near-zero variance
  /// estimates in early iterations inflating n_eff without bound.
  double min_deff = 0.25;
  /// Upper clamp, symmetric protection for tiny samples.
  double max_deff = 20.0;
};

/// Computes the effective sample for `estimate`. Falls back to deff = 1
/// when the SRS reference variance mu(1-mu)/n is zero (degenerate
/// all-correct / all-incorrect samples) or fewer than two first-stage units
/// have been observed.
EffectiveSample ComputeEffectiveSample(const AccuracyEstimate& estimate,
                                       const DesignEffectOptions& options = {});

}  // namespace kgacc

#endif  // KGACC_ESTIMATE_DESIGN_EFFECT_H_
