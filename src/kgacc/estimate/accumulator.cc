#include "kgacc/estimate/accumulator.h"

#include <algorithm>
#include <cmath>

#include "kgacc/util/codec.h"

namespace kgacc {

void EstimatorAccumulator::SaveState(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind_));
  w->PutVarint(n_);
  w->PutVarint(tau_);
  w->PutVarint(units_);
  w->PutDouble(sum_mu_);
  w->PutDouble(welford_mean_);
  w->PutDouble(welford_m2_);
  w->PutVarint(sum_tau_);
  w->PutVarint(sum_m_);
  w->PutVarint(sum_tau2_);
  w->PutVarint(sum_taum_);
  w->PutVarint(sum_m2_);
  w->PutVarint(n_h_.size());
  for (size_t h = 0; h < n_h_.size(); ++h) {
    w->PutVarint(n_h_[h]);
    w->PutVarint(tau_h_[h]);
  }
}

Status EstimatorAccumulator::LoadState(ByteReader* r) {
  KGACC_ASSIGN_OR_RETURN(const uint8_t kind, r->U8());
  if (kind != static_cast<uint8_t>(kind_)) {
    return Status::InvalidArgument(
        "accumulator snapshot was taken under a different estimator kind");
  }
  KGACC_ASSIGN_OR_RETURN(n_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(tau_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(units_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(sum_mu_, r->Double());
  KGACC_ASSIGN_OR_RETURN(welford_mean_, r->Double());
  KGACC_ASSIGN_OR_RETURN(welford_m2_, r->Double());
  KGACC_ASSIGN_OR_RETURN(sum_tau_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(sum_m_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(sum_tau2_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(sum_taum_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(sum_m2_, r->Varint());
  KGACC_ASSIGN_OR_RETURN(const uint64_t strata, r->Varint());
  n_h_.assign(strata, 0);
  tau_h_.assign(strata, 0);
  for (uint64_t h = 0; h < strata; ++h) {
    KGACC_ASSIGN_OR_RETURN(n_h_[h], r->Varint());
    KGACC_ASSIGN_OR_RETURN(tau_h_[h], r->Varint());
  }
  return Status::OK();
}

void EstimatorAccumulator::Add(const AnnotatedUnit& unit) {
  n_ += unit.drawn;
  tau_ += unit.correct;
  ++units_;
  switch (kind_) {
    case EstimatorKind::kSrs:
      break;
    case EstimatorKind::kCluster: {
      const double mu_i =
          static_cast<double>(unit.correct) / static_cast<double>(unit.drawn);
      sum_mu_ += mu_i;
      // Welford: M2 accumulates sum (mu_i - mean)^2 about the running mean,
      // algebraically equal to the batch two-pass sum about the final mean.
      const double delta = mu_i - welford_mean_;
      welford_mean_ += delta / static_cast<double>(units_);
      welford_m2_ += delta * (mu_i - welford_mean_);
      break;
    }
    case EstimatorKind::kRcs: {
      const uint64_t t = unit.correct;
      const uint64_t m = unit.drawn;
      sum_tau_ += t;
      sum_m_ += m;
      sum_tau2_ += t * t;
      sum_taum_ += t * m;
      sum_m2_ += m * m;
      break;
    }
    case EstimatorKind::kStratified: {
      if (unit.stratum >= n_h_.size()) {
        n_h_.resize(unit.stratum + 1, 0);
        tau_h_.resize(unit.stratum + 1, 0);
      }
      n_h_[unit.stratum] += unit.drawn;
      tau_h_[unit.stratum] += unit.correct;
      break;
    }
  }
}

void EstimatorAccumulator::Reset() {
  n_ = tau_ = units_ = 0;
  sum_mu_ = welford_mean_ = welford_m2_ = 0.0;
  sum_tau_ = sum_m_ = sum_tau2_ = sum_taum_ = sum_m2_ = 0;
  n_h_.clear();
  tau_h_.clear();
}

Result<AccuracyEstimate> EstimatorAccumulator::Estimate(
    const std::vector<double>* stratum_weights,
    uint64_t population_size) const {
  switch (kind_) {
    case EstimatorKind::kSrs: {
      if (n_ == 0) {
        return Status::FailedPrecondition(
            "cannot estimate from an empty sample");
      }
      if (population_size != 0 && n_ > population_size) {
        return Status::InvalidArgument(
            "sample larger than the declared population");
      }
      AccuracyEstimate est;
      est.n = n_;
      est.tau = tau_;
      est.num_units = n_;
      est.mu = static_cast<double>(tau_) / static_cast<double>(n_);
      est.variance = est.mu * (1.0 - est.mu) / static_cast<double>(n_);
      if (population_size != 0) {
        const double fpc = 1.0 - static_cast<double>(n_) /
                                     static_cast<double>(population_size);
        est.variance *= std::max(fpc, 0.0);
        est.population = population_size;
      }
      return est;
    }
    case EstimatorKind::kCluster: {
      if (units_ == 0) {
        return Status::FailedPrecondition(
            "cannot estimate from an empty sample");
      }
      AccuracyEstimate est;
      est.n = n_;
      est.tau = tau_;
      est.num_units = units_;
      const double nc = static_cast<double>(units_);
      est.mu = sum_mu_ / nc;
      if (units_ < 2) {
        est.variance = 0.25 / static_cast<double>(n_);
        return est;
      }
      est.variance = welford_m2_ / (nc * (nc - 1.0));
      return est;
    }
    case EstimatorKind::kRcs: {
      if (units_ == 0) {
        return Status::FailedPrecondition(
            "cannot estimate from an empty sample");
      }
      AccuracyEstimate est;
      est.n = n_;
      est.tau = tau_;
      est.num_units = units_;
      const double sum_tau = static_cast<double>(sum_tau_);
      const double sum_m = static_cast<double>(sum_m_);
      const double ratio = sum_tau / sum_m;
      est.mu = ratio;
      if (units_ < 2) {
        est.variance = 0.25 / static_cast<double>(n_);
        return est;
      }
      // sum (tau_i - r M_i)^2 expanded over the exact integer power sums;
      // the subtraction can go epsilon-negative when the residuals vanish.
      const double ss = std::max(
          0.0, static_cast<double>(sum_tau2_) -
                   2.0 * ratio * static_cast<double>(sum_taum_) +
                   ratio * ratio * static_cast<double>(sum_m2_));
      const double nc = static_cast<double>(units_);
      const double mbar = sum_m / nc;
      est.variance = ss / (nc * (nc - 1.0) * mbar * mbar);
      return est;
    }
    case EstimatorKind::kStratified: {
      if (n_ == 0) {
        return Status::FailedPrecondition(
            "cannot estimate from an empty sample");
      }
      if (stratum_weights == nullptr) {
        return Status::InvalidArgument(
            "stratified estimation requires stratum weights");
      }
      if (stratum_weights->empty()) {
        return Status::InvalidArgument("stratified estimator needs weights");
      }
      const size_t num_strata = stratum_weights->size();
      if (n_h_.size() > num_strata) {
        return Status::InvalidArgument("unit stratum out of range");
      }
      AccuracyEstimate est;
      est.n = n_;
      est.tau = tau_;
      est.num_units = units_;
      const double pooled =
          static_cast<double>(tau_) / static_cast<double>(n_);
      double mu = 0.0, var = 0.0;
      for (size_t h = 0; h < num_strata; ++h) {
        const double w = (*stratum_weights)[h];
        const double n_h =
            h < n_h_.size() ? static_cast<double>(n_h_[h]) : 0.0;
        if (n_h > 0.0) {
          const double mu_h = static_cast<double>(tau_h_[h]) / n_h;
          mu += w * mu_h;
          var += w * w * mu_h * (1.0 - mu_h) / n_h;
        } else {
          // Unobserved stratum: impute the pooled mean, charge worst-case
          // Bernoulli variance against a single pseudo-observation.
          mu += w * pooled;
          var += w * w * 0.25;
        }
      }
      est.mu = mu;
      est.variance = var;
      return est;
    }
  }
  return Status::InvalidArgument("unknown estimator kind");
}

}  // namespace kgacc
