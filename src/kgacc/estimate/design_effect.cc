#include "kgacc/estimate/design_effect.h"

#include <algorithm>

namespace kgacc {

EffectiveSample ComputeEffectiveSample(const AccuracyEstimate& estimate,
                                       const DesignEffectOptions& options) {
  EffectiveSample eff;
  const double n = static_cast<double>(estimate.n);
  const double srs_var = estimate.mu * (1.0 - estimate.mu) / n;
  if (srs_var <= 0.0 || estimate.variance <= 0.0 || estimate.num_units < 2) {
    eff.deff = 1.0;
  } else {
    eff.deff =
        std::clamp(estimate.variance / srs_var, options.min_deff,
                   options.max_deff);
  }
  eff.n_eff = n / eff.deff;
  eff.tau_eff = estimate.mu * eff.n_eff;
  return eff;
}

}  // namespace kgacc
