#include "kgacc/estimate/estimators.h"

#include <cmath>

namespace kgacc {

Result<AccuracyEstimate> EstimateSrs(const AnnotatedSample& sample,
                                     uint64_t population_size) {
  if (sample.num_triples() == 0) {
    return Status::FailedPrecondition("cannot estimate from an empty sample");
  }
  if (population_size != 0 && sample.num_triples() > population_size) {
    return Status::InvalidArgument(
        "sample larger than the declared population");
  }
  AccuracyEstimate est;
  est.n = sample.num_triples();
  est.tau = sample.num_correct();
  est.num_units = est.n;
  est.mu = static_cast<double>(est.tau) / static_cast<double>(est.n);
  est.variance = est.mu * (1.0 - est.mu) / static_cast<double>(est.n);
  if (population_size != 0) {
    const double fpc = 1.0 - static_cast<double>(est.n) /
                                 static_cast<double>(population_size);
    est.variance *= std::max(fpc, 0.0);
    est.population = population_size;
  }
  return est;
}

Result<AccuracyEstimate> EstimateCluster(const AnnotatedSample& sample) {
  const auto& units = sample.units();
  if (units.empty()) {
    return Status::FailedPrecondition("cannot estimate from an empty sample");
  }
  AccuracyEstimate est;
  est.n = sample.num_triples();
  est.tau = sample.num_correct();
  est.num_units = units.size();

  const double nc = static_cast<double>(units.size());
  double mean = 0.0;
  for (const AnnotatedUnit& u : units) {
    mean += static_cast<double>(u.correct) / static_cast<double>(u.drawn);
  }
  mean /= nc;
  est.mu = mean;

  if (units.size() < 2) {
    // No between-cluster information yet; report the worst-case Bernoulli
    // variance so downstream intervals stay conservative.
    est.variance = 0.25 / static_cast<double>(est.n);
    return est;
  }
  double ss = 0.0;
  for (const AnnotatedUnit& u : units) {
    const double mu_i =
        static_cast<double>(u.correct) / static_cast<double>(u.drawn);
    ss += (mu_i - mean) * (mu_i - mean);
  }
  est.variance = ss / (nc * (nc - 1.0));
  return est;
}

Result<AccuracyEstimate> EstimateRcs(const AnnotatedSample& sample) {
  const auto& units = sample.units();
  if (units.empty()) {
    return Status::FailedPrecondition("cannot estimate from an empty sample");
  }
  AccuracyEstimate est;
  est.n = sample.num_triples();
  est.tau = sample.num_correct();
  est.num_units = units.size();

  double sum_tau = 0.0, sum_m = 0.0;
  for (const AnnotatedUnit& u : units) {
    sum_tau += static_cast<double>(u.correct);
    sum_m += static_cast<double>(u.drawn);
  }
  const double ratio = sum_tau / sum_m;
  est.mu = ratio;

  if (units.size() < 2) {
    est.variance = 0.25 / static_cast<double>(est.n);
    return est;
  }
  // Linearized (Taylor) ratio variance: V = sum (tau_i - r M_i)^2 /
  // (n_C (n_C - 1) Mbar^2), Mbar the mean sampled-cluster size.
  const double nc = static_cast<double>(units.size());
  const double mbar = sum_m / nc;
  double ss = 0.0;
  for (const AnnotatedUnit& u : units) {
    const double resid =
        static_cast<double>(u.correct) - ratio * static_cast<double>(u.drawn);
    ss += resid * resid;
  }
  est.variance = ss / (nc * (nc - 1.0) * mbar * mbar);
  return est;
}

Result<AccuracyEstimate> EstimateStratified(
    const AnnotatedSample& sample,
    const std::vector<double>& stratum_weights) {
  if (sample.num_triples() == 0) {
    return Status::FailedPrecondition("cannot estimate from an empty sample");
  }
  if (stratum_weights.empty()) {
    return Status::InvalidArgument("stratified estimator needs weights");
  }
  const size_t num_strata = stratum_weights.size();
  std::vector<double> n_h(num_strata, 0.0), tau_h(num_strata, 0.0);
  for (const AnnotatedUnit& u : sample.units()) {
    if (u.stratum >= num_strata) {
      return Status::InvalidArgument("unit stratum out of range");
    }
    n_h[u.stratum] += static_cast<double>(u.drawn);
    tau_h[u.stratum] += static_cast<double>(u.correct);
  }

  AccuracyEstimate est;
  est.n = sample.num_triples();
  est.tau = sample.num_correct();
  est.num_units = sample.units().size();
  const double pooled =
      static_cast<double>(est.tau) / static_cast<double>(est.n);

  double mu = 0.0, var = 0.0;
  for (size_t h = 0; h < num_strata; ++h) {
    const double w = stratum_weights[h];
    if (n_h[h] > 0.0) {
      const double mu_h = tau_h[h] / n_h[h];
      mu += w * mu_h;
      var += w * w * mu_h * (1.0 - mu_h) / n_h[h];
    } else {
      // Unobserved stratum: impute the pooled mean, charge worst-case
      // Bernoulli variance against a single pseudo-observation.
      mu += w * pooled;
      var += w * w * 0.25;
    }
  }
  est.mu = mu;
  est.variance = var;
  return est;
}

Result<AccuracyEstimate> Estimate(EstimatorKind kind,
                                  const AnnotatedSample& sample,
                                  const std::vector<double>* stratum_weights) {
  switch (kind) {
    case EstimatorKind::kSrs:
      return EstimateSrs(sample);
    case EstimatorKind::kCluster:
      return EstimateCluster(sample);
    case EstimatorKind::kRcs:
      return EstimateRcs(sample);
    case EstimatorKind::kStratified:
      if (stratum_weights == nullptr) {
        return Status::InvalidArgument(
            "stratified estimation requires stratum weights");
      }
      return EstimateStratified(sample, *stratum_weights);
  }
  return Status::InvalidArgument("unknown estimator kind");
}

}  // namespace kgacc
