#ifndef KGACC_ESTIMATE_ESTIMATORS_H_
#define KGACC_ESTIMATE_ESTIMATORS_H_

#include "kgacc/sampling/sample.h"
#include "kgacc/sampling/sampler.h"
#include "kgacc/util/status.h"

/// \file estimators.h
/// Unbiased point estimators of the KG accuracy mu and their estimated
/// variances (§2.4). The (mu, variance, n) triple produced here is the sole
/// input to every interval constructor.

namespace kgacc {

/// A point estimate of the KG accuracy with its sampling uncertainty.
struct AccuracyEstimate {
  /// Point estimate of mu.
  double mu = 0.0;
  /// Estimated variance of the estimator.
  double variance = 0.0;
  /// Annotated triples n_S backing the estimate.
  uint64_t n = 0;
  /// Correct annotations tau_S.
  uint64_t tau = 0;
  /// First-stage units (clusters for cluster designs, triples for SRS).
  uint64_t num_units = 0;
  /// Population size N when a finite-population correction was applied;
  /// 0 otherwise. Interval constructors use it to inflate the effective
  /// sample as the census nears.
  uint64_t population = 0;
};

/// Sample proportion under SRS (Eq. 2):
///   mu = tau_S / n_S,  V = mu (1 - mu) / n_S.
///
/// When `population_size` is nonzero the variance carries the finite-
/// population correction (1 - n/N) of without-replacement sampling; this
/// is what makes the interval "reach zero width when the sample is
/// equivalent to G" (§2.2). Leave it 0 for with-replacement designs.
Result<AccuracyEstimate> EstimateSrs(const AnnotatedSample& sample,
                                     uint64_t population_size = 0);

/// Mean of estimated cluster accuracies under PPS cluster designs
/// (TWCS/WCS, Eq. 3):
///   mu = (1/n_C) sum mu_i,  V = sum (mu_i - mu)^2 / (n_C (n_C - 1)).
/// Requires at least two first-stage units for the variance; with a single
/// unit the variance is conservatively reported as mu may take (0.25 / n).
Result<AccuracyEstimate> EstimateCluster(const AnnotatedSample& sample);

/// Ratio estimator for *uniform* whole-cluster sampling (RCS):
///   mu = sum tau_i / sum M_i, with the standard linearized ratio variance.
/// Consistent (slightly biased in small samples); what `RcsSampler`
/// advertises (`EstimatorKind::kRcs`) and the additional-designs appendix
/// experiments use.
Result<AccuracyEstimate> EstimateRcs(const AnnotatedSample& sample);

/// Stratified estimator: mu = sum_h W_h mu_h with
/// V = sum_h W_h^2 mu_h (1 - mu_h) / n_h. `stratum_weights` are the
/// population shares W_h (summing to 1); units carry their stratum index.
/// Strata not yet observed contribute their weight at the pooled mean with
/// the worst-case Bernoulli variance, keeping early iterations conservative.
Result<AccuracyEstimate> EstimateStratified(
    const AnnotatedSample& sample, const std::vector<double>& stratum_weights);

/// Dispatches on the estimator family advertised by the sampler (kSrs,
/// kCluster, kRcs, or kStratified).
/// `stratum_weights` is required for kStratified and ignored otherwise.
Result<AccuracyEstimate> Estimate(
    EstimatorKind kind, const AnnotatedSample& sample,
    const std::vector<double>* stratum_weights = nullptr);

}  // namespace kgacc

#endif  // KGACC_ESTIMATE_ESTIMATORS_H_
