#ifndef KGACC_MATH_NORMAL_H_
#define KGACC_MATH_NORMAL_H_

#include "kgacc/util/status.h"

/// \file normal.h
/// Standard normal CDF and quantile. The quantile (`z_{alpha/2}`) is the
/// critical value entering the Wald (Eq. 5) and Wilson (Eq. 7) intervals.

namespace kgacc {

/// Standard normal CDF Phi(x), accurate to ~1e-15 via erfc.
double StdNormalCdf(double x);

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1).
///
/// Acklam's rational approximation (~1.15e-9 relative error) refined with a
/// single Halley step, giving near machine precision.
Result<double> StdNormalQuantile(double p);

/// Two-sided critical value z_{alpha/2}: the (1 - alpha/2) normal quantile.
/// Requires alpha in (0, 1).
Result<double> TwoSidedZ(double alpha);

}  // namespace kgacc

#endif  // KGACC_MATH_NORMAL_H_
