#ifndef KGACC_MATH_STUDENT_T_H_
#define KGACC_MATH_STUDENT_T_H_

#include "kgacc/util/status.h"

/// \file student_t.h
/// Student's t distribution, needed by the independent two-sample t-tests
/// the paper uses to mark significant differences (Tables 3-4, p < 0.01).

namespace kgacc {

/// CDF of Student's t with `nu` degrees of freedom at `t`. Requires nu > 0.
/// Computed through the incomplete-beta identity
/// P(T <= t) = 1 - I_{nu/(nu+t^2)}(nu/2, 1/2) / 2 for t >= 0.
Result<double> StudentTCdf(double t, double nu);

/// Two-sided tail probability P(|T| >= |t|).
Result<double> StudentTTwoSidedP(double t, double nu);

/// Quantile F^{-1}(p) of Student's t with `nu` degrees of freedom.
Result<double> StudentTQuantile(double p, double nu);

}  // namespace kgacc

#endif  // KGACC_MATH_STUDENT_T_H_
