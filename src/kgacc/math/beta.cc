#include "kgacc/math/beta.h"

#include <cmath>
#include <limits>

#include "kgacc/math/special.h"

namespace kgacc {

Result<BetaDistribution> BetaDistribution::Create(double a, double b) {
  if (!(a > 0.0) || !(b > 0.0) || !std::isfinite(a) || !std::isfinite(b)) {
    return Status::InvalidArgument(
        "Beta distribution requires finite a > 0 and b > 0");
  }
  return BetaDistribution(a, b, LogBeta(a, b));
}

double BetaDistribution::Mode() const {
  KGACC_DCHECK(Shape() == BetaShape::kUnimodal);
  return (a_ - 1.0) / (a_ + b_ - 2.0);
}

BetaShape BetaDistribution::Shape() const {
  const bool a_gt1 = a_ > 1.0;
  const bool b_gt1 = b_ > 1.0;
  if (a_gt1 && b_gt1) return BetaShape::kUnimodal;
  if (!a_gt1 && b_gt1) return BetaShape::kDecreasing;
  if (a_gt1 && !b_gt1) return BetaShape::kIncreasing;
  return BetaShape::kUShaped;
}

double BetaDistribution::LogPdf(double x) const {
  if (x < 0.0 || x > 1.0) return -std::numeric_limits<double>::infinity();
  if (x == 0.0) {
    if (a_ > 1.0) return -std::numeric_limits<double>::infinity();
    if (a_ == 1.0) return (b_ - 1.0) * 0.0 - log_beta_;  // log f(0) = -log B.
    return std::numeric_limits<double>::infinity();
  }
  if (x == 1.0) {
    if (b_ > 1.0) return -std::numeric_limits<double>::infinity();
    if (b_ == 1.0) return -log_beta_;
    return std::numeric_limits<double>::infinity();
  }
  return (a_ - 1.0) * std::log(x) + (b_ - 1.0) * std::log1p(-x) - log_beta_;
}

double BetaDistribution::Pdf(double x) const {
  const double lp = LogPdf(x);
  if (std::isinf(lp)) {
    return lp > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return std::exp(lp);
}

double BetaDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // Parameters were validated at construction, so this cannot fail; the
  // cached log B(a, b) spares the three lgamma calls per evaluation that
  // dominate a cold call (the HPD solvers evaluate this CDF hundreds of
  // times per interval at fixed (a, b)).
  return RegularizedIncompleteBeta(x, a_, b_, log_beta_).value();
}

Result<double> BetaDistribution::Quantile(double p) const {
  return InverseRegularizedIncompleteBeta(p, a_, b_, log_beta_);
}

}  // namespace kgacc
