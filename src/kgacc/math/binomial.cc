#include "kgacc/math/binomial.h"

#include <cmath>

#include "kgacc/math/special.h"

namespace kgacc {

namespace {

Status ValidateBinomial(int64_t k, int64_t n, double p, bool check_k) {
  if (n < 0) return Status::InvalidArgument("binomial n must be >= 0");
  if (!(p >= 0.0) || !(p <= 1.0)) {
    return Status::OutOfRange("binomial p must be in [0,1]");
  }
  if (check_k && (k < 0 || k > n)) {
    return Status::OutOfRange("binomial k must be in [0,n]");
  }
  return Status::OK();
}

}  // namespace

Result<double> BinomialLogPmf(int64_t k, int64_t n, double p) {
  KGACC_RETURN_IF_ERROR(ValidateBinomial(k, n, p, /*check_k=*/true));
  if (p == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  if (p == 1.0) {
    return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n);
  const double log_choose = std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) -
                            std::lgamma(nd - kd + 1.0);
  return log_choose + kd * std::log(p) + (nd - kd) * std::log1p(-p);
}

Result<double> BinomialPmf(int64_t k, int64_t n, double p) {
  KGACC_ASSIGN_OR_RETURN(const double lp, BinomialLogPmf(k, n, p));
  return std::exp(lp);
}

Result<double> BinomialCdf(int64_t k, int64_t n, double p) {
  KGACC_RETURN_IF_ERROR(ValidateBinomial(k, n, p, /*check_k=*/false));
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n here.
  // P(X <= k) = I_{1-p}(n-k, k+1).
  return RegularizedIncompleteBeta(1.0 - p, static_cast<double>(n - k),
                                   static_cast<double>(k + 1));
}

int64_t BinomialSample(int64_t n, double p, Rng* rng) {
  KGACC_CHECK(n >= 0 && p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Exploit symmetry so the waiting-time path below sees p <= 1/2.
  if (p > 0.5) return n - BinomialSample(n, 1.0 - p, rng);

  if (n <= 64) {
    int64_t count = 0;
    for (int64_t i = 0; i < n; ++i) count += rng->Bernoulli(p) ? 1 : 0;
    return count;
  }
  if (static_cast<double>(n) * p < 32.0) {
    // Geometric waiting-time (BG) method: skip ahead by Geom(p) gaps.
    const double log_q = std::log1p(-p);
    int64_t count = 0;
    double skipped = 0.0;
    for (;;) {
      const double g = std::floor(std::log(1.0 - rng->Uniform()) / log_q) + 1;
      skipped += g;
      if (skipped > static_cast<double>(n)) return count;
      ++count;
    }
  }
  // Inversion from the mode, walking outward. Expected O(sqrt(n p (1-p))).
  const int64_t mode = static_cast<int64_t>((n + 1) * p);
  const double log_pmf_mode = BinomialLogPmf(mode, n, p).value();
  const double pmf_mode = std::exp(log_pmf_mode);
  // Accumulate total mass outward from the mode until u is consumed.
  double u = rng->Uniform();
  // Subtract the mode's own mass first.
  if (u < pmf_mode) return mode;
  u -= pmf_mode;
  double lo_pmf = pmf_mode, hi_pmf = pmf_mode;
  int64_t lo = mode, hi = mode;
  while (lo > 0 || hi < n) {
    if (hi < n) {
      // p(k+1) = p(k) * (n-k)/(k+1) * p/(1-p).
      hi_pmf *= static_cast<double>(n - hi) / static_cast<double>(hi + 1) * p /
                (1.0 - p);
      ++hi;
      if (u < hi_pmf) return hi;
      u -= hi_pmf;
    }
    if (lo > 0) {
      // p(k-1) = p(k) * k/(n-k+1) * (1-p)/p.
      lo_pmf *= static_cast<double>(lo) / static_cast<double>(n - lo + 1) *
                (1.0 - p) / p;
      --lo;
      if (u < lo_pmf) return lo;
      u -= lo_pmf;
    }
  }
  return mode;  // Numerically exhausted the mass; return the center.
}

}  // namespace kgacc
