#ifndef KGACC_MATH_BETA_BINOMIAL_H_
#define KGACC_MATH_BETA_BINOMIAL_H_

#include <cstdint>

#include "kgacc/math/beta.h"
#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file beta_binomial.h
/// The beta-binomial distribution — the posterior predictive of the
/// beta-binomial model of §4.1: having observed (tau, n) under a Beta(a, b)
/// prior, the number of correct triples among the next k annotations is
/// BetaBin(k, a + tau, b + n - tau). This powers the planning module's
/// lookahead ("what will the interval look like after the next batch?").

namespace kgacc {

/// BetaBin(k, a, b): the distribution of successes in k exchangeable
/// Bernoulli trials whose common probability is Beta(a, b) distributed.
class BetaBinomial {
 public:
  /// Creates the distribution; requires k >= 0 and a, b > 0.
  static Result<BetaBinomial> Create(int64_t k, double a, double b);

  int64_t k() const { return k_; }
  double a() const { return a_; }
  double b() const { return b_; }

  /// E[X] = k a / (a + b).
  double Mean() const { return static_cast<double>(k_) * a_ / (a_ + b_); }

  /// Var[X] = k ab (a + b + k) / ((a+b)^2 (a+b+1)).
  double Variance() const {
    const double s = a_ + b_;
    const double kd = static_cast<double>(k_);
    return kd * a_ * b_ * (s + kd) / (s * s * (s + 1.0));
  }

  /// log P(X = x); -inf outside [0, k].
  double LogPmf(int64_t x) const;

  /// P(X = x).
  double Pmf(int64_t x) const;

  /// P(X <= x) by pmf summation from the nearer tail.
  double Cdf(int64_t x) const;

  /// Draws X by compounding: p ~ Beta(a, b), X ~ Bin(k, p).
  int64_t Sample(Rng* rng) const;

 private:
  BetaBinomial(int64_t k, double a, double b) : k_(k), a_(a), b_(b) {}

  int64_t k_;
  double a_;
  double b_;
};

}  // namespace kgacc

#endif  // KGACC_MATH_BETA_BINOMIAL_H_
