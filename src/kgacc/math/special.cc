#include "kgacc/math/special.h"

#include <cmath>

namespace kgacc {

namespace {

constexpr int kMaxCfIterations = 400;
constexpr double kCfEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

}  // namespace

double LogBeta(double a, double b) {
  KGACC_DCHECK(a > 0.0 && b > 0.0);
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

namespace internal {

double BetaContinuedFraction(double x, double a, double b) {
  // Modified Lentz evaluation of the continued fraction for I_x(a,b)
  // (Abramowitz & Stegun 26.5.8 / DLMF 8.17.22).
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;

  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;

  for (int m = 1; m <= kMaxCfIterations; ++m) {
    const double m2 = 2.0 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kCfEpsilon) break;
  }
  return h;
}

}  // namespace internal

Result<double> RegularizedIncompleteBeta(double x, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("beta parameters must be positive");
  }
  return RegularizedIncompleteBeta(x, a, b, LogBeta(a, b));
}

Result<double> RegularizedIncompleteBeta(double x, double a, double b,
                                         double log_beta) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("beta parameters must be positive");
  }
  if (!(x >= 0.0) || !(x <= 1.0)) {
    return Status::OutOfRange("incomplete beta argument x must be in [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  double result;
  if (x < (a + 1.0) / (a + b + 2.0)) {
    // Front factor x^a (1-x)^b / (a B(a,b)), evaluated in log space.
    const double log_front =
        a * std::log(x) + b * std::log1p(-x) - std::log(a) - log_beta;
    result = std::exp(log_front) * internal::BetaContinuedFraction(x, a, b);
  } else {
    // Symmetry: the mirrored fraction converges faster here. The mirrored
    // front factor uses (b, a) at 1-x, which differs from the direct one
    // only through the 1/a vs 1/b term (LogBeta is symmetric).
    const double log_front_mirror = b * std::log1p(-x) + a * std::log(x) -
                                    std::log(b) - log_beta;
    result = 1.0 - std::exp(log_front_mirror) *
                       internal::BetaContinuedFraction(1.0 - x, b, a);
  }
  // Clamp tiny negative / >1 excursions from the final subtraction.
  if (result < 0.0) result = 0.0;
  if (result > 1.0) result = 1.0;
  return result;
}

Result<double> InverseRegularizedIncompleteBeta(double p, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("beta parameters must be positive");
  }
  return InverseRegularizedIncompleteBeta(p, a, b, LogBeta(a, b));
}

Result<double> InverseRegularizedIncompleteBeta(double p, double a, double b,
                                                double log_beta) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("beta parameters must be positive");
  }
  if (!(p >= 0.0) || !(p <= 1.0)) {
    return Status::OutOfRange("probability must be in [0,1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Always solve in the lower tail: the quantile there may be a tiny number
  // (e.g. 1e-18 for sub-uniform shapes) that needs *relative* precision,
  // which the mirrored upper-tail representation 1 - x cannot hold.
  if (p > 0.5) {
    KGACC_ASSIGN_OR_RETURN(
        const double y,
        InverseRegularizedIncompleteBeta(1.0 - p, b, a, log_beta));
    return 1.0 - y;
  }

  // Initial guess. Near the lower tail the leading term of the series gives
  // I_x(a, b) ~ x^a / (a B(a, b)), inverted in closed form; otherwise start
  // from the mean with a crude probit nudge.
  double x;
  {
    const double x_tail =
        std::exp((std::log(p) + std::log(a) + log_beta) / a);
    const double mean = a / (a + b);
    if (x_tail < 0.5 * mean) {
      x = x_tail;
    } else {
      const double sd =
          std::sqrt(a * b / ((a + b) * (a + b) * (a + b + 1.0)));
      const double z = std::log(p / (1.0 - p)) / 1.702;
      x = mean + z * sd;
      if (!(x > 1e-12) || !(x < 1.0 - 1e-12)) x = mean;
    }
  }

  // Safeguarded Newton with a maintained bracket. Bisection between the
  // bracket ends is geometric (sqrt of the product) while the lower end is
  // far from the upper, so tiny quantiles are located in O(log log) steps.
  double lo = 0.0, hi = 1.0;
  double err = 0.0;
  for (int iter = 0; iter < 300; ++iter) {
    KGACC_ASSIGN_OR_RETURN(const double cdf,
                           RegularizedIncompleteBeta(x, a, b, log_beta));
    err = cdf - p;
    if (err > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Relative convergence: either the CDF matches to ~3 ulps of p or the
    // bracket has collapsed to relative machine width.
    if (std::fabs(err) <= 4e-16 * p || hi - lo <= 4e-16 * hi) return x;

    double next = 0.0;
    bool have_newton = false;
    if (x > 0.0 && x < 1.0) {
      const double log_pdf =
          (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta;
      const double pdf = std::exp(log_pdf);
      if (pdf > kTiny && std::isfinite(pdf)) {
        next = x - err / pdf;
        have_newton = true;
      }
    }
    if (!have_newton || !(next > lo) || !(next < hi)) {
      // Geometric bisection reaches tiny magnitudes quickly; fall back to
      // arithmetic bisection once the bracket is balanced.
      next = (lo > 0.0 && hi / lo > 4.0) ? std::sqrt(lo * hi)
                                         : 0.5 * (lo + hi);
      if (lo == 0.0) next = hi / 16.0;
    }
    if (next == x) return x;
    x = next;
  }
  return x;
}

}  // namespace kgacc
