#include "kgacc/math/student_t.h"

#include <cmath>

#include "kgacc/math/special.h"

namespace kgacc {

Result<double> StudentTCdf(double t, double nu) {
  if (!(nu > 0.0)) {
    return Status::InvalidArgument("degrees of freedom must be positive");
  }
  if (std::isnan(t)) return Status::NumericError("t statistic is NaN");
  const double x = nu / (nu + t * t);
  KGACC_ASSIGN_OR_RETURN(const double ib,
                         RegularizedIncompleteBeta(x, nu / 2.0, 0.5));
  return t >= 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

Result<double> StudentTTwoSidedP(double t, double nu) {
  if (!(nu > 0.0)) {
    return Status::InvalidArgument("degrees of freedom must be positive");
  }
  if (std::isnan(t)) return Status::NumericError("t statistic is NaN");
  const double x = nu / (nu + t * t);
  return RegularizedIncompleteBeta(x, nu / 2.0, 0.5);
}

Result<double> StudentTQuantile(double p, double nu) {
  if (!(nu > 0.0)) {
    return Status::InvalidArgument("degrees of freedom must be positive");
  }
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::OutOfRange("t quantile requires p in (0,1)");
  }
  if (p == 0.5) return 0.0;
  // For p > 1/2: t = sqrt(nu (1-x)/x) with x = I^{-1}(2(1-p); nu/2, 1/2).
  const bool upper = p > 0.5;
  const double tail = upper ? 2.0 * (1.0 - p) : 2.0 * p;
  KGACC_ASSIGN_OR_RETURN(const double x,
                         InverseRegularizedIncompleteBeta(tail, nu / 2.0, 0.5));
  if (x <= 0.0) return Status::NumericError("t quantile underflow");
  const double t = std::sqrt(nu * (1.0 - x) / x);
  return upper ? t : -t;
}

}  // namespace kgacc
