#ifndef KGACC_MATH_SPECIAL_H_
#define KGACC_MATH_SPECIAL_H_

#include "kgacc/util/status.h"

/// \file special.h
/// Scalar special functions underpinning every distribution in the library.
/// Implemented from scratch (no Boost/Eigen): log-beta via lgamma, the
/// regularized incomplete beta function via the modified Lentz continued
/// fraction, and its inverse via a bracketed Newton iteration.

namespace kgacc {

/// Natural log of the complete beta function B(a, b). Requires a, b > 0.
double LogBeta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) = P(X <= x) for
/// X ~ Beta(a, b). Requires a, b > 0 and x in [0, 1].
///
/// Uses the continued-fraction expansion (modified Lentz algorithm) with the
/// symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the
/// fast-converging regime. Absolute accuracy is ~1e-14 over the full domain.
Result<double> RegularizedIncompleteBeta(double x, double a, double b);

/// Overload taking the precomputed `log_beta = LogBeta(a, b)`. Evaluating
/// the front factor costs three lgamma calls per invocation otherwise —
/// pure overhead for callers like `BetaDistribution`, which fix (a, b) once
/// and evaluate the CDF hundreds of times per HPD solve. Bit-identical to
/// the two-parameter overload (LogBeta is symmetric down to the last ulp,
/// so even the mirrored branch reuses the value).
Result<double> RegularizedIncompleteBeta(double x, double a, double b,
                                         double log_beta);

/// Inverse of the regularized incomplete beta function: the unique x in
/// [0, 1] with I_x(a, b) = p. Requires a, b > 0 and p in [0, 1].
///
/// Newton iteration on the CDF with a maintained bisection bracket; falls
/// back to pure bisection whenever a Newton step leaves the bracket.
Result<double> InverseRegularizedIncompleteBeta(double p, double a, double b);

/// Overload taking the precomputed `log_beta = LogBeta(a, b)`; every Newton
/// iteration evaluates the CDF and the log-PDF, both of which reuse it.
Result<double> InverseRegularizedIncompleteBeta(double p, double a, double b,
                                                double log_beta);

namespace internal {

/// Continued-fraction kernel used by RegularizedIncompleteBeta; exposed for
/// targeted testing. Assumes x < (a+1)/(a+b+2) (the convergent region).
double BetaContinuedFraction(double x, double a, double b);

}  // namespace internal

}  // namespace kgacc

#endif  // KGACC_MATH_SPECIAL_H_
