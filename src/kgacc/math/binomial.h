#ifndef KGACC_MATH_BINOMIAL_H_
#define KGACC_MATH_BINOMIAL_H_

#include <cstdint>

#include "kgacc/util/random.h"
#include "kgacc/util/status.h"

/// \file binomial.h
/// Binomial distribution utilities. The paper models the annotation process
/// as tau_S ~ Bin(n_S, mu) (§4.1); these routines support the synthetic
/// workload generators, the Clopper-Pearson baseline, and the test suite.

namespace kgacc {

/// log P(X = k) for X ~ Bin(n, p). Requires 0 <= k <= n and p in [0, 1].
Result<double> BinomialLogPmf(int64_t k, int64_t n, double p);

/// P(X = k) for X ~ Bin(n, p).
Result<double> BinomialPmf(int64_t k, int64_t n, double p);

/// P(X <= k) for X ~ Bin(n, p), computed via the regularized incomplete
/// beta identity P(X <= k) = I_{1-p}(n-k, k+1).
Result<double> BinomialCdf(int64_t k, int64_t n, double p);

/// Draws X ~ Bin(n, p).
///
/// Exact for all inputs: a Bernoulli sum for small n, otherwise the BG
/// (geometric waiting-time) method when n*p is small, otherwise inversion
/// from the mode. All paths are exact samplers, chosen only for speed.
int64_t BinomialSample(int64_t n, double p, Rng* rng);

}  // namespace kgacc

#endif  // KGACC_MATH_BINOMIAL_H_
