#include "kgacc/math/beta_binomial.h"

#include <cmath>
#include <limits>

#include "kgacc/math/binomial.h"
#include "kgacc/math/special.h"

namespace kgacc {

Result<BetaBinomial> BetaBinomial::Create(int64_t k, double a, double b) {
  if (k < 0) return Status::InvalidArgument("beta-binomial k must be >= 0");
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("beta-binomial shape parameters must be "
                                   "positive");
  }
  return BetaBinomial(k, a, b);
}

double BetaBinomial::LogPmf(int64_t x) const {
  if (x < 0 || x > k_) return -std::numeric_limits<double>::infinity();
  const double xd = static_cast<double>(x);
  const double kd = static_cast<double>(k_);
  // log C(k, x) + log B(x + a, k - x + b) - log B(a, b).
  const double log_choose = std::lgamma(kd + 1.0) - std::lgamma(xd + 1.0) -
                            std::lgamma(kd - xd + 1.0);
  return log_choose + LogBeta(xd + a_, kd - xd + b_) - LogBeta(a_, b_);
}

double BetaBinomial::Pmf(int64_t x) const {
  const double lp = LogPmf(x);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

double BetaBinomial::Cdf(int64_t x) const {
  if (x < 0) return 0.0;
  if (x >= k_) return 1.0;
  // Sum the smaller tail for accuracy and speed.
  if (x <= k_ / 2) {
    double total = 0.0;
    for (int64_t i = 0; i <= x; ++i) total += Pmf(i);
    return std::min(total, 1.0);
  }
  double upper = 0.0;
  for (int64_t i = x + 1; i <= k_; ++i) upper += Pmf(i);
  return std::max(1.0 - upper, 0.0);
}

int64_t BetaBinomial::Sample(Rng* rng) const {
  const double p = rng->Beta(a_, b_);
  return BinomialSample(k_, p, rng);
}

}  // namespace kgacc
