#ifndef KGACC_MATH_BETA_H_
#define KGACC_MATH_BETA_H_

#include "kgacc/util/status.h"

/// \file beta.h
/// The Beta(a, b) distribution — the conjugate prior/posterior family at the
/// heart of the paper's Bayesian interval machinery (§4.1).

namespace kgacc {

/// Shape classification of a Beta density on (0, 1). The HPD interval
/// construction branches on this (§4.3 "Limiting Cases").
enum class BetaShape {
  /// a > 1 and b > 1: interior mode, unimodal (standard HPD case).
  kUnimodal,
  /// a <= 1 and b > 1: monotonically decreasing, density peak at 0.
  kDecreasing,
  /// a > 1 and b <= 1: monotonically increasing, density peak at 1.
  kIncreasing,
  /// a <= 1 and b <= 1: U-shaped or flat (both endpoints are modes).
  kUShaped,
};

/// An immutable Beta(a, b) distribution with full density/CDF/quantile
/// support. Construction validates parameters once; all subsequent queries
/// are infallible except the quantile, which surfaces numeric failures.
class BetaDistribution {
 public:
  /// Creates a Beta(a, b); fails unless a > 0 and b > 0.
  static Result<BetaDistribution> Create(double a, double b);

  double a() const { return a_; }
  double b() const { return b_; }

  /// E[X] = a / (a + b).
  double Mean() const { return a_ / (a_ + b_); }

  /// Var[X] = ab / ((a+b)^2 (a+b+1)).
  double Variance() const {
    const double s = a_ + b_;
    return a_ * b_ / (s * s * (s + 1.0));
  }

  /// The interior mode (a-1)/(a+b-2); only meaningful for kUnimodal shapes.
  double Mode() const;

  /// Shape class of the density; drives the HPD limiting-case logic.
  BetaShape Shape() const;

  /// True iff the density is symmetric about 1/2 (a == b).
  bool IsSymmetric() const { return a_ == b_; }

  /// Density f(x); 0 outside [0, 1]. Edge values follow the continuous
  /// extension (may be +inf when a < 1 at x=0 or b < 1 at x=1).
  double Pdf(double x) const;

  /// log f(x); -inf outside the support.
  double LogPdf(double x) const;

  /// F(x) = P(X <= x), clamped to [0, 1] outside the support.
  double Cdf(double x) const;

  /// F^{-1}(p) for p in [0, 1].
  Result<double> Quantile(double p) const;

 private:
  BetaDistribution(double a, double b, double log_beta)
      : a_(a), b_(b), log_beta_(log_beta) {}

  double a_;
  double b_;
  double log_beta_;  // Cached log B(a, b).
};

}  // namespace kgacc

#endif  // KGACC_MATH_BETA_H_
