#ifndef KGACC_KGACC_H_
#define KGACC_KGACC_H_

/// \file kgacc.h
/// Umbrella header for the kgacc library — credible intervals for knowledge
/// graph accuracy estimation (Marchesin & Silvello, SIGMOD 2025).
///
/// Quickstart:
///
///     #include "kgacc/kgacc.h"
///
///     kgacc::KnowledgeGraph kg = ...;          // or SyntheticKg / TSV load
///     kgacc::TwcsSampler sampler(kg, {});      // TWCS, m = 3
///     kgacc::OracleAnnotator annotator;        // or your human loop
///     kgacc::EvaluationConfig config;          // aHPD, alpha = eps = 0.05
///     auto result = kgacc::RunEvaluation(sampler, annotator, config, seed);
///     // result->mu, result->interval, result->cost_hours ...

#include "kgacc/estimate/accumulator.h"
#include "kgacc/estimate/design_effect.h"
#include "kgacc/estimate/estimators.h"
#include "kgacc/eval/annotator.h"
#include "kgacc/eval/cost_model.h"
#include "kgacc/eval/evaluator.h"
#include "kgacc/eval/planning.h"
#include "kgacc/eval/report.h"
#include "kgacc/eval/service.h"
#include "kgacc/eval/session.h"
#include "kgacc/intervals/ahpd.h"
#include "kgacc/intervals/credible.h"
#include "kgacc/intervals/frequentist.h"
#include "kgacc/intervals/interval.h"
#include "kgacc/intervals/priors.h"
#include "kgacc/kg/kg_view.h"
#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/kg/kg_stats.h"
#include "kgacc/kg/profiles.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/kg/triple.h"
#include "kgacc/kg/tsv_loader.h"
#include "kgacc/math/beta.h"
#include "kgacc/math/beta_binomial.h"
#include "kgacc/math/binomial.h"
#include "kgacc/math/normal.h"
#include "kgacc/math/special.h"
#include "kgacc/math/student_t.h"
#include "kgacc/opt/brent.h"
#include "kgacc/opt/slsqp.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/sampling/sampler.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"
#include "kgacc/store/annotation_store.h"
#include "kgacc/store/checkpoint.h"
#include "kgacc/store/wal.h"
#include "kgacc/stats/bootstrap.h"
#include "kgacc/stats/descriptive.h"
#include "kgacc/stats/mann_whitney.h"
#include "kgacc/stats/replication.h"
#include "kgacc/stats/ttest.h"
#include "kgacc/util/arg_parser.h"
#include "kgacc/util/backoff.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"
#include "kgacc/util/flat_set.h"
#include "kgacc/util/random.h"
#include "kgacc/util/thread_pool.h"
#include "kgacc/util/status.h"

#endif  // KGACC_KGACC_H_
