#ifndef KGACC_NET_CLIENT_H_
#define KGACC_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "kgacc/net/frame.h"
#include "kgacc/net/protocol.h"
#include "kgacc/net/socket.h"
#include "kgacc/util/backoff.h"

/// \file client.h
/// `AuditClient` — the resilient counterpart of `AuditDaemon`. One call,
/// `RunAudit`, drives an audit to its final report while absorbing every
/// failure the daemon's robustness model emits:
///
/// * `Busy` (admission control) → seeded jittered backoff, retry;
/// * transport death — daemon SIGKILL, torn frame, dropped connection,
///   heartbeat silence — → reconnect and reopen with `resume = true`; the
///   session continues from the daemon's durable checkpoint, so the final
///   report is byte-identical to an uninterrupted run and already-labeled
///   triples are never re-paid;
/// * `Drain` → treated as a transport death: back off, reconnect, resume
///   against the restarted daemon;
/// * session-fatal `Error` frames (deadline, step budget, WAL failure) →
///   surfaced to the caller as the carried Status;
/// * `QuotaExceeded` (tenant budget or cap spent) → surfaced *immediately*
///   as `kQuotaExceeded` — unlike `Busy`, retrying cannot help until an
///   operator raises the quota, so the client never burns its backoff
///   budget on it. The one exception is a non-fatal store-quota notice,
///   which merely announces degraded read-only persistence while the
///   audit keeps progressing.
///
/// The client heartbeats whenever the daemon goes quiet and counts the
/// acks; consecutive misses are a liveness verdict, not a hang.

namespace kgacc {

/// Client behavior knobs.
struct AuditClientOptions {
  /// Daemon port on 127.0.0.1.
  uint16_t port = 0;
  /// When set, called before every connection attempt to (re)discover the
  /// daemon's port, overriding `port`. This is how a client survives a
  /// daemon that restarts on a fresh ephemeral port: point the resolver at
  /// the daemon's --port-file and each reconnect chases the current port.
  std::function<Result<uint16_t>()> resolve_port;
  /// Steps requested per StepBatch frame.
  uint64_t batch_steps = 4;
  /// Blocking-read timeout; also the heartbeat probe cadence when the
  /// daemon is quiet. 0 = use the daemon's advertised interval.
  uint64_t recv_timeout_ms = 2000;
  /// Consecutive unanswered heartbeats before the connection is declared
  /// dead and rebuilt.
  int heartbeat_miss_limit = 3;
  /// Reconnect-and-resume attempts after transport failures before the
  /// audit is abandoned.
  int max_reconnects = 8;
  /// Backoff schedule for Busy frames, connect failures, and reconnects.
  BackoffPolicy backoff;
  /// Tenant id announced in Hello (empty = the daemon's "default" tenant).
  std::string tenant;
};

/// Counters describing how eventful one RunAudit call was.
struct AuditClientStats {
  uint64_t updates_received = 0;
  uint64_t busy_retries = 0;
  uint64_t reconnects = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeat_acks = 0;
  /// The daemon reported the session degraded to read-only persistence.
  bool degraded_seen = false;
  /// QuotaExceeded frames received (admission rejections and mid-audit
  /// budget exhaustion alike).
  uint64_t quota_exceeded_frames = 0;
  /// The most recent QuotaExceeded frame (which quota, how much remains).
  QuotaExceededMsg last_quota_exceeded;
  /// The last AuditOpened reply (resume diagnostics).
  AuditOpenedMsg opened;
};

/// Drives audits against one daemon. Not thread-safe; one client per
/// thread.
class AuditClient {
 public:
  explicit AuditClient(const AuditClientOptions& options)
      : options_(options) {}

  /// Runs `open` to completion: handshake, open (resuming when the daemon
  /// holds a checkpoint), stream StepBatch frames, deliver every
  /// IntervalUpdate to `on_update` (when given), and return the final
  /// report. Reconnects and resumes transparently on transport failure.
  Result<AuditReportMsg> RunAudit(
      const OpenAuditMsg& open,
      const std::function<void(const IntervalUpdateMsg&)>& on_update = {});

  const AuditClientStats& stats() const { return stats_; }

 private:
  /// Connects, handshakes, opens the audit. Fills `stats_.opened`.
  Status Establish(OpenAuditMsg open);
  /// Blocking read of the next complete frame (assembler-buffered).
  /// kDeadlineExceeded = the daemon is quiet (heartbeat opportunity).
  Result<NetFrame> ReadFrame();
  Status SendFrame(const std::vector<uint8_t>& frame);
  void Disconnect();

  AuditClientOptions options_;
  AuditClientStats stats_;
  OwnedFd fd_;
  FrameAssembler assembler_{kDefaultMaxFrameBytes};
  uint64_t effective_timeout_ms_ = 2000;
  uint64_t next_heartbeat_nonce_ = 1;
};

}  // namespace kgacc

#endif  // KGACC_NET_CLIENT_H_
