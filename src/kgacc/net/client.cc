#include "kgacc/net/client.h"

#include <chrono>
#include <thread>

namespace kgacc {

namespace {

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

void AuditClient::Disconnect() {
  fd_.Reset();
  assembler_ = FrameAssembler(kDefaultMaxFrameBytes);
}

Status AuditClient::SendFrame(const std::vector<uint8_t>& frame) {
  if (!fd_.valid()) return Status::IoError("not connected");
  return SendAll(fd_.get(), {frame.data(), frame.size()});
}

Result<NetFrame> AuditClient::ReadFrame() {
  NetFrame frame;
  while (true) {
    KGACC_ASSIGN_OR_RETURN(const bool have, assembler_.Next(&frame));
    if (have) return frame;
    uint8_t buf[4096];
    KGACC_ASSIGN_OR_RETURN(const size_t n,
                           RecvSome(fd_.get(), buf, sizeof(buf)));
    if (n == 0) {
      return Status::IoError("daemon closed the connection");
    }
    assembler_.Feed({buf, n});
  }
}

Status AuditClient::Establish(OpenAuditMsg open) {
  ExponentialBackoff backoff(options_.backoff);
  Status last = Status::IoError("never attempted");
  for (int attempt = 0; attempt < options_.backoff.max_attempts; ++attempt) {
    if (attempt > 0) SleepMs(backoff.NextDelayMs());
    Disconnect();
    uint16_t port = options_.port;
    if (options_.resolve_port) {
      auto resolved = options_.resolve_port();
      if (!resolved.ok()) {
        last = resolved.status();
        continue;
      }
      port = *resolved;
    }
    auto connected = ConnectTcp(port);
    if (!connected.ok()) {
      last = connected.status();
      continue;
    }
    fd_ = std::move(*connected);
    effective_timeout_ms_ = options_.recv_timeout_ms != 0
                                ? options_.recv_timeout_ms
                                : 2000;
    KGACC_RETURN_IF_ERROR(SetRecvTimeoutMs(fd_.get(), effective_timeout_ms_));

    HelloMsg hello;
    hello.tenant = options_.tenant;
    KGACC_RETURN_IF_ERROR(
        SendFrame(FrameOf(MessageType::kHello, EncodeHello, hello)));
    auto reply = ReadFrame();
    if (!reply.ok()) {
      last = reply.status();
      continue;
    }
    if (reply->type == static_cast<uint8_t>(MessageType::kBusy)) {
      ++stats_.busy_retries;
      last = Status::IoError("daemon busy at Hello");
      continue;
    }
    if (reply->type == static_cast<uint8_t>(MessageType::kError)) {
      KGACC_ASSIGN_OR_RETURN(
          const ErrorMsg err,
          DecodeError({reply->payload.data(), reply->payload.size()}));
      last = err.ToStatus();
      Disconnect();
      if (last.code() == StatusCode::kNotFound) {
        // The registry rejected our tenant: no reconnect fixes that until
        // an operator amends the tenants file. Surface it verbatim.
        return last;
      }
      // Anything else here is connection-scoped (e.g. the daemon saw our
      // Hello arrive torn) — rebuild and retry.
      continue;
    }
    if (reply->type != static_cast<uint8_t>(MessageType::kHelloAck)) {
      return Status::FailedPrecondition(
          std::string("handshake: expected HelloAck, got ") +
          MessageTypeName(reply->type));
    }
    KGACC_ASSIGN_OR_RETURN(
        const HelloAckMsg ack,
        DecodeHelloAck({reply->payload.data(), reply->payload.size()}));
    if (options_.recv_timeout_ms == 0 && ack.heartbeat_interval_ms != 0) {
      effective_timeout_ms_ = ack.heartbeat_interval_ms;
      KGACC_RETURN_IF_ERROR(
          SetRecvTimeoutMs(fd_.get(), effective_timeout_ms_));
    }
    if (ack.draining) {
      last = Status::IoError("daemon is draining");
      Disconnect();
      continue;
    }

    KGACC_RETURN_IF_ERROR(
        SendFrame(FrameOf(MessageType::kOpenAudit, EncodeOpenAudit, open)));
    auto opened = ReadFrame();
    if (!opened.ok()) {
      last = opened.status();
      continue;
    }
    if (opened->type == static_cast<uint8_t>(MessageType::kBusy)) {
      ++stats_.busy_retries;
      KGACC_ASSIGN_OR_RETURN(
          const BusyMsg busy,
          DecodeBusy({opened->payload.data(), opened->payload.size()}));
      last = Status::IoError("daemon busy at OpenAudit: " + busy.reason);
      Disconnect();
      continue;
    }
    if (opened->type == static_cast<uint8_t>(MessageType::kQuotaExceeded)) {
      // A spent quota is not load: no amount of backoff admits this audit
      // until an operator raises the budget. Surface it immediately.
      KGACC_ASSIGN_OR_RETURN(
          const QuotaExceededMsg exceeded,
          DecodeQuotaExceeded(
              {opened->payload.data(), opened->payload.size()}));
      ++stats_.quota_exceeded_frames;
      stats_.last_quota_exceeded = exceeded;
      return exceeded.ToStatus();
    }
    if (opened->type == static_cast<uint8_t>(MessageType::kError)) {
      KGACC_ASSIGN_OR_RETURN(
          const ErrorMsg err,
          DecodeError({opened->payload.data(), opened->payload.size()}));
      if (err.fatal_to_connection) {
        // Stream-level failure (e.g. our OpenAudit arrived torn): the
        // connection is dead but the request is fine — rebuild and retry.
        last = err.ToStatus();
        Disconnect();
        continue;
      }
      return err.ToStatus();  // open rejections are not transient
    }
    if (opened->type != static_cast<uint8_t>(MessageType::kAuditOpened)) {
      return Status::FailedPrecondition(
          std::string("open: expected AuditOpened, got ") +
          MessageTypeName(opened->type));
    }
    KGACC_ASSIGN_OR_RETURN(
        stats_.opened,
        DecodeAuditOpened({opened->payload.data(), opened->payload.size()}));
    return Status::OK();
  }
  return Status::IoError("could not establish audit session: " +
                         last.ToString());
}

Result<AuditReportMsg> AuditClient::RunAudit(
    const OpenAuditMsg& open,
    const std::function<void(const IntervalUpdateMsg&)>& on_update) {
  OpenAuditMsg request = open;
  KGACC_RETURN_IF_ERROR(Establish(request));
  // Every re-establishment after a transport failure resumes: the daemon's
  // durable checkpoint carries the session across our reconnects.
  request.resume = true;

  int reconnects_left = options_.max_reconnects;
  ExponentialBackoff reconnect_backoff(options_.backoff);
  bool batch_outstanding = false;
  uint64_t updates_this_batch = 0;
  int heartbeat_misses = 0;
  bool heartbeat_outstanding = false;

  auto transport_failure = [&](const Status& cause) -> Status {
    Disconnect();
    if (reconnects_left <= 0) {
      return Status::IoError("audit abandoned after " +
                             std::to_string(options_.max_reconnects) +
                             " reconnects; last failure: " +
                             cause.ToString());
    }
    --reconnects_left;
    ++stats_.reconnects;
    SleepMs(reconnect_backoff.NextDelayMs());
    const Status re = Establish(request);
    if (re.ok()) {
      batch_outstanding = false;
      updates_this_batch = 0;
      heartbeat_misses = 0;
      heartbeat_outstanding = false;
    }
    return re;
  };

  while (true) {
    if (!batch_outstanding) {
      StepBatchMsg batch;
      batch.audit_id = request.audit_id;
      batch.steps = options_.batch_steps;
      const Status sent = SendFrame(
          FrameOf(MessageType::kStepBatch, EncodeStepBatch, batch));
      if (!sent.ok()) {
        KGACC_RETURN_IF_ERROR(transport_failure(sent));
        continue;
      }
      batch_outstanding = true;
      updates_this_batch = 0;
    }

    auto frame = ReadFrame();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        // Quiet daemon: probe liveness instead of hanging forever.
        if (heartbeat_outstanding) ++heartbeat_misses;
        if (heartbeat_misses >= options_.heartbeat_miss_limit) {
          KGACC_RETURN_IF_ERROR(transport_failure(Status::DeadlineExceeded(
              "daemon unresponsive: " +
              std::to_string(heartbeat_misses) + " heartbeats unanswered")));
          continue;
        }
        HeartbeatMsg probe;
        probe.nonce = next_heartbeat_nonce_++;
        ++stats_.heartbeats_sent;
        heartbeat_outstanding = true;
        const Status sent = SendFrame(
            FrameOf(MessageType::kHeartbeat, EncodeHeartbeat, probe));
        if (!sent.ok()) KGACC_RETURN_IF_ERROR(transport_failure(sent));
        continue;
      }
      // Torn/corrupt stream or dropped connection: rebuild and resume.
      KGACC_RETURN_IF_ERROR(transport_failure(frame.status()));
      continue;
    }

    const std::span<const uint8_t> payload(frame->payload.data(),
                                           frame->payload.size());
    switch (static_cast<MessageType>(frame->type)) {
      case MessageType::kIntervalUpdate: {
        KGACC_ASSIGN_OR_RETURN(const IntervalUpdateMsg update,
                               DecodeIntervalUpdate(payload));
        ++stats_.updates_received;
        ++updates_this_batch;
        if (update.degraded) stats_.degraded_seen = true;
        if (on_update) on_update(update);
        if (!update.done && updates_this_batch >= options_.batch_steps) {
          batch_outstanding = false;  // batch fully acknowledged
        }
        break;
      }
      case MessageType::kAuditReport: {
        KGACC_ASSIGN_OR_RETURN(AuditReportMsg report,
                               DecodeAuditReport(payload));
        if (report.degraded) stats_.degraded_seen = true;
        return report;
      }
      case MessageType::kHeartbeatAck: {
        ++stats_.heartbeat_acks;
        heartbeat_misses = 0;
        heartbeat_outstanding = false;
        break;
      }
      case MessageType::kBusy: {
        KGACC_ASSIGN_OR_RETURN(const BusyMsg busy, DecodeBusy(payload));
        // Admission push-back mid-stream: back off, re-request the batch.
        ++stats_.busy_retries;
        batch_outstanding = false;
        SleepMs(std::max<double>(static_cast<double>(busy.retry_after_ms),
                                 reconnect_backoff.NextDelayMs()));
        break;
      }
      case MessageType::kQuotaExceeded: {
        KGACC_ASSIGN_OR_RETURN(const QuotaExceededMsg exceeded,
                               DecodeQuotaExceeded(payload));
        ++stats_.quota_exceeded_frames;
        stats_.last_quota_exceeded = exceeded;
        if (!exceeded.fatal_to_session && exceeded.quota == "store_quota") {
          // Informational: the audit keeps progressing under degraded
          // read-only persistence; the final report will say so.
          stats_.degraded_seen = true;
          break;
        }
        // Exhausted oracle budget (or an admission-grade rejection): the
        // session is checkpointed daemon-side and resumes once the budget
        // grows, but no retry loop here can make progress now.
        return exceeded.ToStatus();
      }
      case MessageType::kError: {
        KGACC_ASSIGN_OR_RETURN(const ErrorMsg err, DecodeError(payload));
        if (err.fatal_to_session) return err.ToStatus();
        if (err.fatal_to_connection) {
          KGACC_RETURN_IF_ERROR(transport_failure(err.ToStatus()));
        }
        break;
      }
      case MessageType::kDrain: {
        // The daemon is going down gracefully; our session is
        // checkpointed. Reconnect against the restarted daemon.
        KGACC_RETURN_IF_ERROR(transport_failure(
            Status::IoError("daemon drained mid-audit")));
        break;
      }
      default:
        return Status::FailedPrecondition(
            std::string("unexpected frame from daemon: ") +
            MessageTypeName(frame->type));
    }
  }
}

}  // namespace kgacc
