#ifndef KGACC_NET_SERVER_H_
#define KGACC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kgacc/eval/session.h"
#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/net/frame.h"
#include "kgacc/net/protocol.h"
#include "kgacc/net/socket.h"
#include "kgacc/store/annotation_store.h"
#include "kgacc/store/checkpoint.h"
#include "kgacc/tenant/drr.h"
#include "kgacc/tenant/tenant.h"
#include "kgacc/util/thread_pool.h"

/// \file server.h
/// `AuditDaemon` — the crash-tolerant networked audit service behind the
/// `kgaccd` tool. One poll()-loop thread owns every socket; audit steps
/// execute on a `ThreadPool` sharded by audit id (`SubmitTo(audit_id %
/// workers)`, the shard-per-core discipline of `EvaluationService`);
/// workers hand encoded reply frames back to the poll thread through an
/// event queue + self-pipe, so sockets are never touched off-thread.
///
/// Robustness model, in one paragraph: the *session* (audit id + durable
/// `AnnotationStore` file) is the unit that survives; the *connection* is
/// the unit that fails. A torn frame, dead peer, idle timeout, or client
/// crash costs exactly one connection — the session checkpoints and waits
/// to be re-adopted by a reconnect (`OpenAudit{resume}` with the same audit
/// id). A daemon SIGKILL costs every connection but no labels: stores
/// replay on restart and sessions resume from their last checkpoint to the
/// byte-identical report. Overload is an explicit `Busy` frame (admission
/// control), never a silent hang; budget and wall-clock exhaustion are
/// explicit `Error` frames (`kDeadlineExceeded`); a degraded store demotes
/// the session to read-only persistence and tells the client; a sticky WAL
/// failure kills the session, never the daemon.
///
/// Fault-injection sites (`util/failpoint`): `net.accept` drops a freshly
/// accepted connection, `net.read.torn` flips one bit in a received chunk
/// (the frame CRC catches it downstream), `net.write` fails a connection
/// flush, `net.heartbeat.drop` suppresses one HeartbeatAck. All four map
/// injected faults to client-visible statuses and robustness counters.

namespace kgacc {

/// The audit daemon. Construct, `RegisterKg` the populations it may audit,
/// `Start()`, and eventually `Stop()` (or deliver SIGTERM to `kgaccd`,
/// which calls `RequestDrain`).
class AuditDaemon {
 public:
  struct Options {
    /// Listen port (0 = ephemeral; read back with `port()`).
    uint16_t port = 0;
    /// Directory for per-KG annotation stores (`kg_<name>-<hash>.wal`). Every
    /// session auditing the same registered KG shares one store — labels
    /// bought by any audit serve every later audit of that KG, and
    /// concurrent sessions append through the store's group-commit queue.
    std::string store_dir;
    /// Step-execution workers (0 = hardware concurrency).
    int workers = 0;
    /// Admission control: live (unfinished) sessions the daemon holds.
    size_t max_sessions = 64;
    /// Admission control: unacknowledged StepBatch frames per connection.
    size_t max_inflight_batches_per_conn = 4;
    /// Admission control: simultaneous connections.
    size_t max_connections = 64;
    /// Liveness advertisement to clients (HelloAck).
    uint64_t heartbeat_interval_ms = 5000;
    /// Connections silent this long are reaped (their sessions checkpoint
    /// and detach; nothing is lost).
    uint64_t idle_timeout_ms = 30000;
    /// Step budget applied when OpenAudit asks for none (0 = unlimited).
    uint64_t default_max_steps = 0;
    /// Largest frame accepted from a peer.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// fsync checkpoint frames (the daemon's whole point is surviving
    /// kill -9, so default on).
    bool sync_checkpoints = true;
    /// Session snapshot cadence floor; OpenAudit may ask for coarser.
    uint64_t checkpoint_every = 1;
    /// Chaos: SIGKILL the process after this many total steps, *between* a
    /// step and its checkpoint — the hard recovery case (0 = never).
    uint64_t crash_after_steps = 0;
    /// Auto-compaction threshold handed to every per-KG store (0 = manual
    /// only; drain always compacts). See
    /// `AnnotationStore::Options::auto_compact_garbage_ratio`.
    double auto_compact_garbage_ratio = 0.0;
    /// Tenant id -> quota/weight table. The default (open) registry admits
    /// every tenant with unlimited budgets — single-tenant compatibility
    /// mode. Load a tenants file (`TenantRegistry::LoadFile`) to enforce
    /// per-tenant oracle budgets, store-byte quotas, scheduling weights,
    /// and session/inflight caps. Spend is metered durably in
    /// `store_dir/tenant_ledger.wal`, so budgets survive SIGKILL.
    TenantRegistry tenants;
    /// Per-visit DRR credit for a weight-1 tenant, in steps. Pick the
    /// typical StepBatch size so one scheduler visit serves about
    /// `weight` batches.
    uint64_t drr_quantum = 8;
  };

  /// Monotone robustness counters, readable concurrently with operation.
  struct Stats {
    std::atomic<uint64_t> connections_accepted{0};
    /// Connections failed for cause (torn frame, protocol error, net.write).
    std::atomic<uint64_t> connections_failed{0};
    /// Connections reaped by the idle timeout.
    std::atomic<uint64_t> idle_reaped{0};
    /// Admission-control rejections (Busy frames sent).
    std::atomic<uint64_t> busy_rejections{0};
    /// Sessions stopped by a wall-clock deadline or step budget.
    std::atomic<uint64_t> deadline_exceeded{0};
    std::atomic<uint64_t> sessions_opened{0};
    /// Sessions restored from a durable checkpoint (or re-adopted live).
    std::atomic<uint64_t> sessions_resumed{0};
    /// Sessions failed by a sticky store/evaluation error.
    std::atomic<uint64_t> sessions_failed{0};
    /// Sessions that dropped to degraded read-only persistence.
    std::atomic<uint64_t> sessions_degraded{0};
    std::atomic<uint64_t> steps_executed{0};
    /// Admissions refused with a QuotaExceeded frame (tenant budget or cap
    /// already spent — distinct from transient `busy_rejections`).
    std::atomic<uint64_t> quota_rejections{0};
    /// Sessions whose tenant exhausted its oracle budget mid-audit (the
    /// session checkpoints and idles instead of dying).
    std::atomic<uint64_t> quota_exhaustions{0};
    /// Sessions demoted to degraded read-only annotation by a store-byte
    /// quota overrun.
    std::atomic<uint64_t> quota_degraded{0};
    std::atomic<uint64_t> heartbeats_acked{0};
    /// HeartbeatAcks suppressed by the net.heartbeat.drop failpoint.
    std::atomic<uint64_t> heartbeat_acks_dropped{0};
    /// net.* failpoint activations observed.
    std::atomic<uint64_t> faults_injected{0};
  };

  explicit AuditDaemon(const Options& options);
  ~AuditDaemon();

  AuditDaemon(const AuditDaemon&) = delete;
  AuditDaemon& operator=(const AuditDaemon&) = delete;

  /// Registers a population under a client-addressable name. All
  /// registrations must happen before `Start()`; `kg` must outlive the
  /// daemon.
  void RegisterKg(const std::string& name, const KnowledgeGraph* kg);

  /// Binds the listener, spawns the worker pool and the poll thread.
  Status Start();

  /// Initiates graceful drain: stop admitting, notify clients, checkpoint
  /// every live session, flush stores, exit the poll loop. Callable from a
  /// signal handler path (sets a flag and writes the wake pipe).
  void RequestDrain();

  /// Blocks until the poll loop has exited (i.e. drain completed).
  void Wait();

  /// RequestDrain + Wait.
  void Stop();

  /// The bound listen port (valid after Start()).
  uint16_t port() const { return port_; }

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  const Stats& stats() const { return stats_; }

  /// The durable tenant spend ledger (valid after Start()). Exposed for
  /// tests and the kgaccd stats path; budget checks live in the daemon.
  QuotaLedger* ledger() { return ledger_.get(); }
  const QuotaLedger* ledger() const { return ledger_.get(); }

  /// Renders the robustness counters as one log line.
  std::string StatsLine() const;

 private:
  struct Connection;
  struct Session;

  /// A worker-to-poll-thread handoff: frames to queue on a connection
  /// and/or session lifecycle transitions to apply.
  struct Event {
    int conn_fd = -1;
    uint64_t conn_gen = 0;
    uint64_t audit_id = 0;
    /// Worker whose DRR slot this batch held (-1 = none); freed on
    /// batch_done so the poll thread can pump the next queued batch.
    int worker = -1;
    /// Steps this batch reserved against its tenant's inflight cap.
    uint64_t steps = 0;
    /// Tenant the reservation belongs to.
    std::string tenant;
    /// Encoded frames to append to the connection's outbox.
    std::vector<uint8_t> frames;
    /// The batch the worker was running completed (dispatch next).
    bool batch_done = false;
    /// The session sticky-failed (evict after flushing frames).
    bool session_failed = false;
    /// The session finished (report already in `frames`).
    bool session_finished = false;
  };

  void PollLoop();
  void DoAccept();
  /// Reads whatever the socket has, feeds the assembler, dispatches every
  /// complete frame. Returns false when the connection must be closed.
  bool ServiceReadable(Connection& conn);
  bool HandleFrame(Connection& conn, const NetFrame& frame);
  void HandleOpenAudit(Connection& conn, const OpenAuditMsg& msg);
  void HandleStepBatch(Connection& conn, const StepBatchMsg& msg);
  /// Runs one batch of steps on a pool worker; posts events back. The
  /// session pointer stays valid for the batch's duration: sessions are
  /// only evicted by the poll thread after the batch_done event.
  void RunBatch(Session* session, uint64_t steps, int conn_fd,
                uint64_t conn_gen, int worker);
  /// If `worker` is idle, pops its DRR scheduler and dispatches the next
  /// queued batch (weighted fairness across tenants).
  void PumpWorker(int worker);
  /// Removes a session's still-queued batches from its worker's scheduler,
  /// returning the admission slots (connection inflight counter, tenant
  /// inflight steps) they held.
  void DropQueuedBatches(Session& session);
  /// Flushes as much outbox as the socket accepts. False = failed.
  bool FlushOutbox(Connection& conn);
  void QueueFrame(Connection& conn, std::vector<uint8_t> frame);
  void QueueError(Connection& conn, StatusCode code, uint64_t audit_id,
                  bool fatal_to_session, bool fatal_to_connection,
                  const std::string& message);
  void QueueBusy(Connection& conn, const std::string& reason);
  /// Admission-path quota rejection: a fatal-to-session QuotaExceeded
  /// frame naming the spent quota and the remaining allowance.
  void QueueQuotaExceeded(Connection& conn, uint64_t audit_id,
                          const std::string& quota, uint64_t remaining,
                          const std::string& message);
  /// Closes a connection, detaching (and checkpointing) its sessions.
  void CloseConnection(int fd, const Status& cause);
  /// Detaches one session from its connection; checkpoints unless busy.
  void DetachSession(Session& session);
  void DrainEvents();
  void ReapIdle();
  void WakePoll();
  void DoDrain();
  /// The shared annotation store for a registered KG, opened on first use
  /// (`store_dir/kg_<sanitized-name>-<crc32-of-raw-name>.wal`; the hash
  /// suffix keeps distinct names from aliasing one file) and kept for the
  /// daemon's life.
  Result<std::shared_ptr<AnnotationStore>> StoreForKg(const std::string& name);
  /// Builds the final AuditReport frame for a finished session.
  std::vector<uint8_t> BuildReportFrame(Session& session,
                                        const EvaluationResult& result);

  Options options_;
  Stats stats_;
  std::map<std::string, const KnowledgeGraph*> kgs_;
  /// One shared store per KG name (poll-thread-opened; the store itself is
  /// thread-safe, so worker-side sessions append concurrently).
  std::map<std::string, std::shared_ptr<AnnotationStore>> stores_;
  /// Resolved store path -> raw KG name that owns it; `StoreForKg` refuses
  /// a second name resolving to an already-claimed path (two stores over
  /// one WAL would corrupt it).
  std::map<std::string, std::string> store_paths_;

  OwnedFd listener_;
  uint16_t port_ = 0;
  OwnedFd wake_read_;
  OwnedFd wake_write_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread poll_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  /// Durable per-tenant spend; opened in Start() at
  /// `store_dir/tenant_ledger.wal`. Thread-safe — workers charge it
  /// directly from RunBatch.
  std::unique_ptr<QuotaLedger> ledger_;

  /// Poll-thread-owned state (workers never touch it).
  std::map<int, std::unique_ptr<Connection>> conns_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  uint64_t next_conn_gen_ = 1;
  /// Per-worker weighted DRR queues replacing FIFO dispatch: batches queue
  /// here (cost = steps) and `PumpWorker` serves them one-at-a-time per
  /// worker in tenant-weighted shares. Poll-thread-owned.
  std::vector<DrrScheduler> worker_sched_;
  /// 1 while a batch is executing on that worker (DRR serves the next item
  /// only when the slot frees — the fairness grain is one batch).
  std::vector<uint8_t> worker_busy_;
  /// Steps queued or running per tenant, against
  /// `TenantConfig::max_inflight_steps` (breach is a transient Busy).
  std::map<std::string, uint64_t> tenant_inflight_steps_;

  /// Worker -> poll thread event queue.
  std::mutex events_mu_;
  std::deque<Event> events_;
};

/// Builds the sampler for a protocol design string ("srs", "twcs", ...) —
/// the same vocabulary the `kgacc_audit` CLI accepts.
Result<std::unique_ptr<Sampler>> MakeSamplerForDesign(
    const KnowledgeGraph& kg, const std::string& design, int twcs_m);

}  // namespace kgacc

#endif  // KGACC_NET_SERVER_H_
