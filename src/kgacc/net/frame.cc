#include "kgacc/net/frame.h"

#include <string>

#include "kgacc/util/codec.h"

namespace kgacc {

void AppendNetFrame(uint8_t type, std::span<const uint8_t> payload,
                    std::vector<uint8_t>* out) {
  ByteWriter w;
  w.PutU8(type);
  w.PutVarint(payload.size());
  w.PutBytes(payload.data(), payload.size());
  const uint32_t crc = Crc32c(w.bytes().data(), w.size());
  w.PutFixed32(crc);
  out->insert(out->end(), w.bytes().begin(), w.bytes().end());
}

std::vector<uint8_t> EncodeNetFrame(uint8_t type,
                                    std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  AppendNetFrame(type, payload, &out);
  return out;
}

void FrameAssembler::Feed(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameAssembler::Compact() {
  if (consumed_ == 0) return;
  // Compact when the dead prefix dominates: each byte is moved O(1) times
  // amortized, and steady-state small frames stay in a small buffer.
  if (consumed_ >= 4096 || consumed_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

Result<bool> FrameAssembler::Next(NetFrame* frame) {
  if (!stream_error_.ok()) return stream_error_;
  const uint8_t* base = buf_.data() + consumed_;
  const size_t avail = buf_.size() - consumed_;
  if (avail < 2) return false;  // type byte + at least one length byte

  // Parse the varint length prefix by hand: the reader cannot distinguish
  // "truncated because the peer is mid-send" (wait) from "structurally
  // impossible" (fail), and that distinction is the whole read loop.
  uint64_t payload_len = 0;
  size_t len_bytes = 0;
  for (int shift = 0;; shift += 7, ++len_bytes) {
    if (1 + len_bytes >= avail) return false;  // prefix still in flight
    const uint8_t byte = base[1 + len_bytes];
    if (shift >= 63 && (byte & 0x7f) > 1) {
      stream_error_ = Status::OutOfRange(
          "net: frame length prefix overflows 64 bits");
      return stream_error_;
    }
    payload_len |= uint64_t(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      ++len_bytes;
      break;
    }
    if (len_bytes + 1 >= 10) {
      stream_error_ = Status::OutOfRange(
          "net: frame length prefix longer than 10 bytes");
      return stream_error_;
    }
  }
  if (payload_len > max_frame_bytes_) {
    stream_error_ = Status::OutOfRange(
        "net: frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes_) +
        "-byte limit");
    return stream_error_;
  }
  const size_t framed = 1 + len_bytes + size_t(payload_len);
  if (avail < framed + 4) return false;  // payload or CRC still in flight

  uint32_t expect = 0;
  for (int i = 0; i < 4; ++i) expect |= uint32_t(base[framed + i]) << (8 * i);
  const uint32_t actual = Crc32c(base, framed);
  if (actual != expect) {
    stream_error_ = Status::IoError(
        "net: frame checksum mismatch (torn or bit-flipped frame)");
    return stream_error_;
  }

  frame->type = base[0];
  frame->payload.assign(base + 1 + len_bytes, base + framed);
  consumed_ += framed + 4;
  Compact();
  return true;
}

}  // namespace kgacc
