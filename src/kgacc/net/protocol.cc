#include "kgacc/net/protocol.h"

#include "kgacc/util/codec.h"

namespace kgacc {

namespace {

/// Decode postlude: a conforming payload is consumed exactly.
Status ExpectDrained(const ByteReader& r, const char* what) {
  if (!r.empty()) {
    return Status::InvalidArgument(std::string("net: trailing bytes after ") +
                                   what + " payload");
  }
  return Status::OK();
}

void PutResult(ByteWriter* w, const EvaluationResult& result) {
  w->PutDouble(result.mu);
  w->PutDouble(result.interval.lower);
  w->PutDouble(result.interval.upper);
  w->PutVarint(result.annotated_triples);
  w->PutVarint(result.distinct_triples);
  w->PutVarint(result.distinct_entities);
  w->PutDouble(result.cost_seconds);
  w->PutDouble(result.cost_hours);
  w->PutZigzag(result.iterations);
  w->PutVarint(result.winning_prior);
  w->PutDouble(result.deff);
  w->PutBool(result.converged);
  w->PutU8(static_cast<uint8_t>(result.stop_reason));
  w->PutBool(result.degraded);
  w->PutString(result.degradation_note);
  w->PutVarint(result.trace.size());
  for (const TracePoint& p : result.trace) {
    w->PutVarint(p.n);
    w->PutDouble(p.moe);
    w->PutDouble(p.mu);
  }
}

Status GetResult(ByteReader* r, EvaluationResult* result) {
  KGACC_ASSIGN_OR_RETURN(result->mu, r->Double());
  KGACC_ASSIGN_OR_RETURN(result->interval.lower, r->Double());
  KGACC_ASSIGN_OR_RETURN(result->interval.upper, r->Double());
  KGACC_ASSIGN_OR_RETURN(result->annotated_triples, r->Varint());
  KGACC_ASSIGN_OR_RETURN(result->distinct_triples, r->Varint());
  KGACC_ASSIGN_OR_RETURN(result->distinct_entities, r->Varint());
  KGACC_ASSIGN_OR_RETURN(result->cost_seconds, r->Double());
  KGACC_ASSIGN_OR_RETURN(result->cost_hours, r->Double());
  KGACC_ASSIGN_OR_RETURN(const int64_t iterations, r->Zigzag());
  result->iterations = static_cast<int>(iterations);
  KGACC_ASSIGN_OR_RETURN(const uint64_t winning, r->Varint());
  result->winning_prior = static_cast<size_t>(winning);
  KGACC_ASSIGN_OR_RETURN(result->deff, r->Double());
  KGACC_ASSIGN_OR_RETURN(result->converged, r->Bool());
  KGACC_ASSIGN_OR_RETURN(const uint8_t reason, r->U8());
  result->stop_reason = static_cast<StopReason>(reason);
  KGACC_ASSIGN_OR_RETURN(result->degraded, r->Bool());
  KGACC_ASSIGN_OR_RETURN(result->degradation_note, r->String());
  KGACC_ASSIGN_OR_RETURN(const uint64_t trace_points, r->Varint());
  result->trace.clear();
  result->trace.reserve(static_cast<size_t>(trace_points));
  for (uint64_t i = 0; i < trace_points; ++i) {
    TracePoint p;
    KGACC_ASSIGN_OR_RETURN(p.n, r->Varint());
    KGACC_ASSIGN_OR_RETURN(p.moe, r->Double());
    KGACC_ASSIGN_OR_RETURN(p.mu, r->Double());
    result->trace.push_back(p);
  }
  return Status::OK();
}

}  // namespace

const char* MessageTypeName(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello: return "Hello";
    case MessageType::kHelloAck: return "HelloAck";
    case MessageType::kOpenAudit: return "OpenAudit";
    case MessageType::kAuditOpened: return "AuditOpened";
    case MessageType::kStepBatch: return "StepBatch";
    case MessageType::kIntervalUpdate: return "IntervalUpdate";
    case MessageType::kAuditReport: return "AuditReport";
    case MessageType::kCloseAudit: return "CloseAudit";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kHeartbeatAck: return "HeartbeatAck";
    case MessageType::kBusy: return "Busy";
    case MessageType::kError: return "Error";
    case MessageType::kDrain: return "Drain";
    case MessageType::kQuotaExceeded: return "QuotaExceeded";
  }
  return "Unknown";
}

std::vector<uint8_t> EncodeHello(const HelloMsg& m) {
  ByteWriter w;
  w.PutFixed32(m.magic);
  w.PutVarint(m.version);
  w.PutString(m.tenant);
  return w.bytes();
}

Result<HelloMsg> DecodeHello(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  HelloMsg m;
  KGACC_ASSIGN_OR_RETURN(m.magic, r.Fixed32());
  KGACC_ASSIGN_OR_RETURN(m.version, r.Varint());
  // v1 Hellos end here; the tenant string is a v2 addition and its absence
  // means the default tenant.
  if (!r.empty()) {
    KGACC_ASSIGN_OR_RETURN(m.tenant, r.String());
  }
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "Hello"));
  return m;
}

std::vector<uint8_t> EncodeHelloAck(const HelloAckMsg& m) {
  ByteWriter w;
  w.PutVarint(m.version);
  w.PutBool(m.draining);
  w.PutVarint(m.heartbeat_interval_ms);
  w.PutVarint(m.idle_timeout_ms);
  return w.bytes();
}

Result<HelloAckMsg> DecodeHelloAck(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  HelloAckMsg m;
  KGACC_ASSIGN_OR_RETURN(m.version, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.draining, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.heartbeat_interval_ms, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.idle_timeout_ms, r.Varint());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "HelloAck"));
  return m;
}

std::vector<uint8_t> EncodeOpenAudit(const OpenAuditMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  w.PutString(m.kg_name);
  w.PutString(m.design);
  w.PutString(m.method);
  w.PutDouble(m.alpha);
  w.PutDouble(m.epsilon);
  w.PutVarint(m.seed);
  w.PutVarint(m.twcs_m);
  w.PutVarint(m.checkpoint_every);
  w.PutVarint(m.max_steps);
  w.PutDouble(m.deadline_seconds);
  w.PutBool(m.resume);
  return w.bytes();
}

Result<OpenAuditMsg> DecodeOpenAudit(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  OpenAuditMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.kg_name, r.String());
  KGACC_ASSIGN_OR_RETURN(m.design, r.String());
  KGACC_ASSIGN_OR_RETURN(m.method, r.String());
  KGACC_ASSIGN_OR_RETURN(m.alpha, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.epsilon, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.seed, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.twcs_m, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.checkpoint_every, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.max_steps, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.deadline_seconds, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.resume, r.Bool());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "OpenAudit"));
  return m;
}

std::vector<uint8_t> EncodeAuditOpened(const AuditOpenedMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  w.PutBool(m.resumed);
  w.PutVarint(m.start_step);
  w.PutVarint(m.labels_on_file);
  w.PutString(m.design_name);
  w.PutString(m.dataset_name);
  return w.bytes();
}

Result<AuditOpenedMsg> DecodeAuditOpened(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  AuditOpenedMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.resumed, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.start_step, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.labels_on_file, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.design_name, r.String());
  KGACC_ASSIGN_OR_RETURN(m.dataset_name, r.String());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "AuditOpened"));
  return m;
}

std::vector<uint8_t> EncodeStepBatch(const StepBatchMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  w.PutVarint(m.steps);
  return w.bytes();
}

Result<StepBatchMsg> DecodeStepBatch(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  StepBatchMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.steps, r.Varint());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "StepBatch"));
  return m;
}

std::vector<uint8_t> EncodeIntervalUpdate(const IntervalUpdateMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  w.PutVarint(m.step);
  w.PutVarint(m.annotated_triples);
  w.PutDouble(m.mu);
  w.PutDouble(m.lower);
  w.PutDouble(m.upper);
  w.PutDouble(m.moe);
  w.PutBool(m.done);
  w.PutU8(m.stop_reason);
  w.PutBool(m.degraded);
  return w.bytes();
}

Result<IntervalUpdateMsg> DecodeIntervalUpdate(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  IntervalUpdateMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.step, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.annotated_triples, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.mu, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.lower, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.upper, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.moe, r.Double());
  KGACC_ASSIGN_OR_RETURN(m.done, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.stop_reason, r.U8());
  KGACC_ASSIGN_OR_RETURN(m.degraded, r.Bool());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "IntervalUpdate"));
  return m;
}

std::vector<uint8_t> EncodeAuditReport(const AuditReportMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  w.PutString(m.design_name);
  w.PutString(m.dataset_name);
  PutResult(&w, m.result);
  w.PutVarint(m.store_hits);
  w.PutVarint(m.oracle_calls);
  w.PutVarint(m.checkpoints_written);
  w.PutVarint(m.store_retries);
  w.PutBool(m.degraded);
  w.PutString(m.degradation_note);
  return w.bytes();
}

Result<AuditReportMsg> DecodeAuditReport(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  AuditReportMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.design_name, r.String());
  KGACC_ASSIGN_OR_RETURN(m.dataset_name, r.String());
  KGACC_RETURN_IF_ERROR(GetResult(&r, &m.result));
  KGACC_ASSIGN_OR_RETURN(m.store_hits, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.oracle_calls, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.checkpoints_written, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.store_retries, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.degraded, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.degradation_note, r.String());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "AuditReport"));
  return m;
}

std::vector<uint8_t> EncodeCloseAudit(const CloseAuditMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  return w.bytes();
}

Result<CloseAuditMsg> DecodeCloseAudit(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  CloseAuditMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "CloseAudit"));
  return m;
}

std::vector<uint8_t> EncodeHeartbeat(const HeartbeatMsg& m) {
  ByteWriter w;
  w.PutVarint(m.nonce);
  return w.bytes();
}

std::vector<uint8_t> EncodeHeartbeatAck(const HeartbeatMsg& m) {
  return EncodeHeartbeat(m);
}

Result<HeartbeatMsg> DecodeHeartbeat(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  HeartbeatMsg m;
  KGACC_ASSIGN_OR_RETURN(m.nonce, r.Varint());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "Heartbeat"));
  return m;
}

std::vector<uint8_t> EncodeBusy(const BusyMsg& m) {
  ByteWriter w;
  w.PutVarint(m.retry_after_ms);
  w.PutString(m.reason);
  return w.bytes();
}

Result<BusyMsg> DecodeBusy(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  BusyMsg m;
  KGACC_ASSIGN_OR_RETURN(m.retry_after_ms, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.reason, r.String());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "Busy"));
  return m;
}

std::vector<uint8_t> EncodeError(const ErrorMsg& m) {
  ByteWriter w;
  w.PutU8(m.code);
  w.PutVarint(m.audit_id);
  w.PutBool(m.fatal_to_session);
  w.PutBool(m.fatal_to_connection);
  w.PutString(m.message);
  return w.bytes();
}

Result<ErrorMsg> DecodeError(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ErrorMsg m;
  KGACC_ASSIGN_OR_RETURN(m.code, r.U8());
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.fatal_to_session, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.fatal_to_connection, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.message, r.String());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "Error"));
  return m;
}

std::vector<uint8_t> EncodeDrain(const DrainMsg& m) {
  ByteWriter w;
  w.PutString(m.message);
  return w.bytes();
}

Result<DrainMsg> DecodeDrain(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  DrainMsg m;
  KGACC_ASSIGN_OR_RETURN(m.message, r.String());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "Drain"));
  return m;
}

std::vector<uint8_t> EncodeQuotaExceeded(const QuotaExceededMsg& m) {
  ByteWriter w;
  w.PutVarint(m.audit_id);
  w.PutString(m.quota);
  w.PutVarint(m.remaining);
  w.PutBool(m.fatal_to_session);
  w.PutString(m.message);
  return w.bytes();
}

Result<QuotaExceededMsg> DecodeQuotaExceeded(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  QuotaExceededMsg m;
  KGACC_ASSIGN_OR_RETURN(m.audit_id, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.quota, r.String());
  KGACC_ASSIGN_OR_RETURN(m.remaining, r.Varint());
  KGACC_ASSIGN_OR_RETURN(m.fatal_to_session, r.Bool());
  KGACC_ASSIGN_OR_RETURN(m.message, r.String());
  KGACC_RETURN_IF_ERROR(ExpectDrained(r, "QuotaExceeded"));
  return m;
}

}  // namespace kgacc
