#ifndef KGACC_NET_SOCKET_H_
#define KGACC_NET_SOCKET_H_

#include <cstdint>
#include <span>
#include <string>

#include "kgacc/util/status.h"

/// \file socket.h
/// Thin POSIX TCP wrappers with Status-based error reporting — the only
/// file in the net layer that touches socket syscalls directly, so the
/// server and client stay readable and every errno has one translation
/// point. All helpers are loopback/IPv4 (the daemon is an intra-host
/// sidecar, not an internet service).

namespace kgacc {

/// An owned file descriptor: closes on destruction, moves like unique_ptr.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port; read it back with `LocalPort`). The listener is nonblocking and
/// SO_REUSEADDR so a drained daemon restarts on its old port immediately.
Result<OwnedFd> ListenTcp(uint16_t port, int backlog = 64);

/// The locally bound port of a socket (getsockname).
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to 127.0.0.1:`port`, TCP_NODELAY enabled (the protocol
/// is small request/reply frames; Nagle would serialize them).
Result<OwnedFd> ConnectTcp(uint16_t port);

/// Accepts one pending connection from a nonblocking listener: the new fd
/// (nonblocking, TCP_NODELAY), or an invalid OwnedFd when no connection is
/// pending (EAGAIN), or an error status.
Result<OwnedFd> AcceptTcp(int listener_fd);

/// Switches a descriptor to nonblocking mode.
Status SetNonBlocking(int fd);

/// Sets SO_RCVTIMEO so blocking reads fail with kDeadlineExceeded instead
/// of hanging on a dead peer (client-side liveness).
Status SetRecvTimeoutMs(int fd, uint64_t timeout_ms);

/// Sends the whole span on a *blocking* socket (EINTR-retrying loop,
/// MSG_NOSIGNAL so a dead peer surfaces as a status, not SIGPIPE).
Status SendAll(int fd, std::span<const uint8_t> bytes);

/// One recv on a blocking socket. Returns the bytes read; 0 means the peer
/// closed cleanly. A receive timeout maps to kDeadlineExceeded.
Result<size_t> RecvSome(int fd, uint8_t* buf, size_t len);

}  // namespace kgacc

#endif  // KGACC_NET_SOCKET_H_
