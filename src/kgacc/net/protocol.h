#ifndef KGACC_NET_PROTOCOL_H_
#define KGACC_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kgacc/eval/evaluator.h"
#include "kgacc/net/frame.h"
#include "kgacc/util/status.h"

/// \file protocol.h
/// Message vocabulary of the kgaccd audit protocol, one struct per frame
/// type with bidirectional codec (Encode into a payload, Decode from one).
/// All integers travel as varints, all doubles as IEEE-754 bit patterns —
/// the same bit-exact discipline as the checkpoint codec, because the
/// final-report frame must render byte-identically on the client to what
/// an uninterrupted local run would have printed.
///
/// Conversation shape:
///
///   client                          daemon
///   ------                          ------
///   Hello                     -->
///                             <--   HelloAck (or Busy and close)
///   OpenAudit                 -->
///                             <--   AuditOpened | Busy | Error
///   StepBatch(n)              -->
///                             <--   IntervalUpdate   (after every step)
///                             <--   ...
///                             <--   AuditReport      (once done)
///   Heartbeat                 -->
///                             <--   HeartbeatAck
///
/// The daemon may interleave `Error` (session- or connection-scoped) and
/// `Drain` (shutting down; reconnect later) at any point. Every reply
/// carries the audit id it concerns, so one connection can multiplex
/// several audits.

namespace kgacc {

/// First four payload bytes of a Hello frame.
inline constexpr uint32_t kNetMagic = 0x4b474143;  // "KGAC"
/// Protocol revision; bumped on incompatible changes. v2 added the tenant
/// id to Hello and the QuotaExceeded frame; a v1 Hello (no tenant field)
/// still decodes — the daemon maps it to the default tenant.
inline constexpr uint64_t kNetVersion = 2;

/// Frame type bytes. Values are wire format — append only, never renumber.
enum class MessageType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOpenAudit = 3,
  kAuditOpened = 4,
  kStepBatch = 5,
  kIntervalUpdate = 6,
  kAuditReport = 7,
  kCloseAudit = 8,
  kHeartbeat = 9,
  kHeartbeatAck = 10,
  kBusy = 11,
  kError = 12,
  kDrain = 13,
  kQuotaExceeded = 14,
};

/// Stable name for a frame type ("OpenAudit"), for diagnostics.
const char* MessageTypeName(uint8_t type);

/// Client greeting: proves the peer speaks this protocol before anything
/// else is interpreted.
struct HelloMsg {
  uint32_t magic = kNetMagic;
  uint64_t version = kNetVersion;
  /// Tenant this connection bills against. Empty (a v1 client, or one that
  /// never asked) maps to the daemon's default tenant.
  std::string tenant;
};

/// Server reply to Hello: advertised liveness parameters the client should
/// honor (send a heartbeat at least every `heartbeat_interval_ms` of idle
/// time; the server reaps peers silent for `idle_timeout_ms`).
struct HelloAckMsg {
  uint64_t version = kNetVersion;
  bool draining = false;
  uint64_t heartbeat_interval_ms = 5000;
  uint64_t idle_timeout_ms = 30000;
};

/// Opens (or reattaches/resumes) one audit session on the daemon.
struct OpenAuditMsg {
  /// Session key: the unit of sharding, durability, and reconnection.
  uint64_t audit_id = 0;
  /// Registered population to audit (daemon-side `--kg` name).
  std::string kg_name;
  /// Sampling design: srs|twcs|wcs|rcs|ssrs|sys.
  std::string design = "srs";
  /// Interval method: ahpd|hpd|et|wilson|wald|cp.
  std::string method = "ahpd";
  double alpha = 0.05;
  double epsilon = 0.05;
  uint64_t seed = 42;
  /// TWCS second-stage size.
  uint64_t twcs_m = 3;
  /// Session snapshot cadence in steps (>= 1).
  uint64_t checkpoint_every = 1;
  /// Hard per-session step budget (0 = server default / unlimited).
  uint64_t max_steps = 0;
  /// Wall-clock budget in seconds from open/resume (0 = none).
  double deadline_seconds = 0.0;
  /// Resume from the store's checkpoint when one exists (a fresh audit id
  /// simply starts at step 0 either way).
  bool resume = true;
};

/// Reply to OpenAudit.
struct AuditOpenedMsg {
  uint64_t audit_id = 0;
  /// The session was restored from a durable checkpoint (or reattached to
  /// a live session another connection abandoned).
  bool resumed = false;
  /// Step count the session continues from (0 for a fresh audit).
  uint64_t start_step = 0;
  /// Labels already in this audit's store.
  uint64_t labels_on_file = 0;
  /// Sampler and dataset names, for client-side report rendering.
  std::string design_name;
  std::string dataset_name;
};

/// Runs up to `steps` framework iterations of one audit. The daemon pushes
/// an IntervalUpdate after every completed step (the subscription — no
/// polling), then an AuditReport if the session converged or stopped.
struct StepBatchMsg {
  uint64_t audit_id = 0;
  uint64_t steps = 1;
};

/// Per-step convergence push: the point estimate and the current 1-alpha
/// interval after folding in one annotation batch.
struct IntervalUpdateMsg {
  uint64_t audit_id = 0;
  uint64_t step = 0;
  uint64_t annotated_triples = 0;
  double mu = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double moe = 0.0;
  bool done = false;
  uint8_t stop_reason = 0;
  /// The session's durable layer degraded to read-only persistence — the
  /// audit continues, but labels/checkpoints may no longer be persisted.
  bool degraded = false;
};

/// Final outcome of one audit: the full EvaluationResult (bit-exact) plus
/// the store accounting a durable client wants to display.
struct AuditReportMsg {
  uint64_t audit_id = 0;
  std::string design_name;
  std::string dataset_name;
  EvaluationResult result;
  /// Store accounting for this session's lifetime (on the daemon).
  uint64_t store_hits = 0;
  uint64_t oracle_calls = 0;
  uint64_t checkpoints_written = 0;
  uint64_t store_retries = 0;
  bool degraded = false;
  std::string degradation_note;
};

/// Detaches the connection from an audit (the session and its store stay
/// resumable on the daemon).
struct CloseAuditMsg {
  uint64_t audit_id = 0;
};

/// Liveness probe; the ack echoes the nonce.
struct HeartbeatMsg {
  uint64_t nonce = 0;
};

/// Explicit overload push-back — the admission-control answer that replaces
/// a silent hang. The client backs off and retries.
struct BusyMsg {
  uint64_t retry_after_ms = 50;
  std::string reason;
};

/// An error scoped to one audit (`fatal_to_session`) or to the whole
/// connection (`fatal_to_connection`; the daemon closes after sending).
struct ErrorMsg {
  uint8_t code = 0;  // StatusCode
  uint64_t audit_id = 0;
  bool fatal_to_session = false;
  bool fatal_to_connection = false;
  std::string message;

  Status ToStatus() const {
    return Status(static_cast<StatusCode>(code), message);
  }
};

/// Graceful-drain notice: the daemon stops admitting work, checkpoints
/// every live session, and exits. Clients reconnect to the restarted
/// daemon and resume.
struct DrainMsg {
  std::string message;
};

/// Hard quota rejection — the *non-retryable* counterpart of Busy. Busy
/// means "capacity will free up, back off and retry"; QuotaExceeded means
/// "this tenant's allowance is spent — retrying cannot help until an
/// operator raises the budget". Sent at OpenAudit admission (session cap,
/// exhausted budget) and mid-audit when the oracle budget runs out
/// (`fatal_to_session=false`: the session stays open, degraded to
/// store-hit-only annotation, and resumable).
struct QuotaExceededMsg {
  uint64_t audit_id = 0;  // 0 when the rejection is connection-scoped.
  /// Which quota tripped: "oracle_budget", "store_quota", "max_sessions".
  std::string quota;
  /// Remaining allowance under that quota at rejection time.
  uint64_t remaining = 0;
  /// The session was ended by this rejection (admission); false for the
  /// mid-audit budget-exhaustion push, where the session stays resumable.
  bool fatal_to_session = true;
  std::string message;

  Status ToStatus() const {
    return Status::QuotaExceeded(message.empty()
                                     ? "tenant quota exceeded: " + quota
                                     : message);
  }
};

/// Payload codecs. Encode appends to a fresh payload vector; Decode
/// consumes a payload span and rejects truncated or trailing bytes.
std::vector<uint8_t> EncodeHello(const HelloMsg& m);
std::vector<uint8_t> EncodeHelloAck(const HelloAckMsg& m);
std::vector<uint8_t> EncodeOpenAudit(const OpenAuditMsg& m);
std::vector<uint8_t> EncodeAuditOpened(const AuditOpenedMsg& m);
std::vector<uint8_t> EncodeStepBatch(const StepBatchMsg& m);
std::vector<uint8_t> EncodeIntervalUpdate(const IntervalUpdateMsg& m);
std::vector<uint8_t> EncodeAuditReport(const AuditReportMsg& m);
std::vector<uint8_t> EncodeCloseAudit(const CloseAuditMsg& m);
std::vector<uint8_t> EncodeHeartbeat(const HeartbeatMsg& m);
std::vector<uint8_t> EncodeHeartbeatAck(const HeartbeatMsg& m);
std::vector<uint8_t> EncodeBusy(const BusyMsg& m);
std::vector<uint8_t> EncodeError(const ErrorMsg& m);
std::vector<uint8_t> EncodeDrain(const DrainMsg& m);
std::vector<uint8_t> EncodeQuotaExceeded(const QuotaExceededMsg& m);

Result<HelloMsg> DecodeHello(std::span<const uint8_t> payload);
Result<HelloAckMsg> DecodeHelloAck(std::span<const uint8_t> payload);
Result<OpenAuditMsg> DecodeOpenAudit(std::span<const uint8_t> payload);
Result<AuditOpenedMsg> DecodeAuditOpened(std::span<const uint8_t> payload);
Result<StepBatchMsg> DecodeStepBatch(std::span<const uint8_t> payload);
Result<IntervalUpdateMsg> DecodeIntervalUpdate(
    std::span<const uint8_t> payload);
Result<AuditReportMsg> DecodeAuditReport(std::span<const uint8_t> payload);
Result<CloseAuditMsg> DecodeCloseAudit(std::span<const uint8_t> payload);
Result<HeartbeatMsg> DecodeHeartbeat(std::span<const uint8_t> payload);
Result<BusyMsg> DecodeBusy(std::span<const uint8_t> payload);
Result<ErrorMsg> DecodeError(std::span<const uint8_t> payload);
Result<DrainMsg> DecodeDrain(std::span<const uint8_t> payload);
Result<QuotaExceededMsg> DecodeQuotaExceeded(std::span<const uint8_t> payload);

/// Encodes a complete frame (header + payload + CRC) for a message.
template <typename EncodeFn, typename Msg>
std::vector<uint8_t> FrameOf(MessageType type, EncodeFn encode,
                             const Msg& m) {
  const std::vector<uint8_t> payload = encode(m);
  return EncodeNetFrame(static_cast<uint8_t>(type),
                        {payload.data(), payload.size()});
}

}  // namespace kgacc

#endif  // KGACC_NET_PROTOCOL_H_
