#ifndef KGACC_NET_FRAME_H_
#define KGACC_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kgacc/util/status.h"

/// \file frame.h
/// Wire framing for the kgaccd protocol — the WAL's typed-frame discipline
/// (store/wal.h) reused as a stream format. Every message travels as
///
///   [type u8][payload_len varint][payload bytes][crc32c fixed32]
///
/// with the checksum covering the type byte, the length prefix, and the
/// payload, so a bit flipped anywhere in transit — or a peer speaking a
/// different protocol — is detected at the frame boundary. The failure
/// unit is the *connection*, never the process: a torn or corrupt frame
/// fails `FrameAssembler::Next` with a descriptive status, the daemon
/// closes that connection, and the session behind it resumes from its
/// durable checkpoint over a fresh connection.
///
/// `FrameAssembler` is the read side: feed it whatever byte chunks the
/// socket hands you (a frame may arrive in many reads, or many frames in
/// one) and pull complete frames out. It enforces a maximum frame length,
/// so a malicious or corrupt length prefix cannot make the daemon buffer
/// unbounded memory.

namespace kgacc {

/// Upper bound a conforming peer never exceeds; the assembler rejects
/// anything larger before buffering its payload.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// One decoded frame: the type byte and its payload (owned copy, valid
/// independently of the assembler's buffer).
struct NetFrame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

/// Appends one encoded frame (type + length prefix + payload + CRC32C) to
/// `out` — the write side of the protocol.
void AppendNetFrame(uint8_t type, std::span<const uint8_t> payload,
                    std::vector<uint8_t>* out);

/// Convenience: a freshly allocated encoded frame.
std::vector<uint8_t> EncodeNetFrame(uint8_t type,
                                    std::span<const uint8_t> payload);

/// Incremental frame extractor over a byte stream. Not thread-safe; one
/// assembler per connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends received bytes to the internal buffer.
  void Feed(std::span<const uint8_t> bytes);

  /// Extracts the next complete frame into `*frame`.
  ///   * ok, true  — one frame extracted; call again, more may be buffered.
  ///   * ok, false — the buffer holds only a partial frame; feed more bytes.
  ///   * error     — the stream is corrupt (truncated-impossible length
  ///     prefix, overlong frame, CRC mismatch). The error is sticky: the
  ///     stream has no recoverable frame boundary, so the connection must
  ///     be failed, not resynchronized.
  Result<bool> Next(NetFrame* frame);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

  /// The sticky stream error, OK while the stream is healthy.
  const Status& stream_error() const { return stream_error_; }

 private:
  /// Drops the consumed prefix once it dominates the buffer (amortized
  /// compaction keeps Feed/Next O(bytes) overall).
  void Compact();

  size_t max_frame_bytes_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
  Status stream_error_;
};

}  // namespace kgacc

#endif  // KGACC_NET_FRAME_H_
