#include "kgacc/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace kgacc {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenTcp(uint16_t port, int backlog) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (listen(fd.get(), backlog) != 0) return Errno("listen");
  KGACC_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<OwnedFd> ConnectTcp(uint16_t port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  KGACC_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

Result<OwnedFd> AcceptTcp(int listener_fd) {
  int raw;
  do {
    raw = accept(listener_fd, nullptr, nullptr);
  } while (raw < 0 && errno == EINTR);
  if (raw < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return OwnedFd();
    return Errno("accept");
  }
  OwnedFd fd(raw);
  KGACC_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  KGACC_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetRecvTimeoutMs(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, uint8_t* buf, size_t len) {
  ssize_t n;
  do {
    n = recv(fd, buf, len, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timed out (peer unresponsive)");
    }
    return Errno("recv");
  }
  return static_cast<size_t>(n);
}

}  // namespace kgacc
