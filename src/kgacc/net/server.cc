#include "kgacc/net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

namespace kgacc {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Result<IntervalMethod> ParseMethodName(const std::string& name) {
  if (name == "ahpd") return IntervalMethod::kAhpd;
  if (name == "hpd") return IntervalMethod::kHpd;
  if (name == "et") return IntervalMethod::kEqualTailed;
  if (name == "wilson") return IntervalMethod::kWilson;
  if (name == "wald") return IntervalMethod::kWald;
  if (name == "cp") return IntervalMethod::kClopperPearson;
  return Status::InvalidArgument("unknown interval method: " + name);
}

}  // namespace

Result<std::unique_ptr<Sampler>> MakeSamplerForDesign(
    const KnowledgeGraph& kg, const std::string& design, int twcs_m) {
  if (design == "srs") {
    return std::unique_ptr<Sampler>(
        std::make_unique<SrsSampler>(kg, SrsConfig{}));
  }
  if (design == "twcs") {
    return std::unique_ptr<Sampler>(std::make_unique<TwcsSampler>(
        kg, TwcsConfig{.second_stage_size = twcs_m}));
  }
  if (design == "wcs") {
    return std::unique_ptr<Sampler>(
        std::make_unique<WcsSampler>(kg, ClusterConfig{}));
  }
  if (design == "rcs") {
    return std::unique_ptr<Sampler>(
        std::make_unique<RcsSampler>(kg, ClusterConfig{}));
  }
  if (design == "ssrs") {
    return std::unique_ptr<Sampler>(
        std::make_unique<StratifiedSampler>(kg, StratifiedConfig{}));
  }
  if (design == "sys") {
    return std::unique_ptr<Sampler>(
        std::make_unique<SystematicSampler>(kg, SystematicConfig{}));
  }
  return Status::InvalidArgument("unknown sampling design: " + design);
}

/// One TCP peer. Owned and touched exclusively by the poll thread.
struct AuditDaemon::Connection {
  OwnedFd fd;
  /// Generation stamp: events from workers target (fd, gen), so a recycled
  /// descriptor never receives a dead connection's frames.
  uint64_t gen = 0;
  FrameAssembler assembler;
  /// Bytes queued for the peer; [outbox_off, size) is still unsent.
  std::vector<uint8_t> outbox;
  size_t outbox_off = 0;
  bool hello_done = false;
  /// Flush the outbox, then close cleanly (used for courtesy replies on
  /// connections the daemon is rejecting or draining).
  bool close_after_flush = false;
  Clock::time_point last_activity = Clock::now();
  /// StepBatch frames admitted but not yet completed by a worker.
  size_t inflight_batches = 0;
  /// Audit ids attached to this connection.
  std::vector<uint64_t> audits;
  /// Normalized tenant id from Hello and its registry config (points into
  /// the daemon's immutable Options::tenants; set once Hello succeeds).
  std::string tenant;
  const TenantConfig* tenant_config = nullptr;

  explicit Connection(OwnedFd sock, uint64_t generation)
      : fd(std::move(sock)), gen(generation) {}
};

/// One audit session: the durable unit that outlives connections. The poll
/// thread owns the registry and all metadata; while `busy` is set, the
/// evaluation members (session/annotator/ckpt/store) belong to the worker
/// running the batch and the poll thread must not touch them.
struct AuditDaemon::Session {
  uint64_t audit_id = 0;
  std::string kg_name;
  std::string design_name;
  /// The KG's shared store (co-owned with the daemon registry and any
  /// sibling session auditing the same KG; appends group-commit).
  std::shared_ptr<AnnotationStore> store;
  std::unique_ptr<Sampler> sampler;
  OracleAnnotator inner;
  std::unique_ptr<StoredAnnotator> annotator;
  std::unique_ptr<EvaluationSession> session;
  std::unique_ptr<CheckpointManager> ckpt;
  EvaluationConfig config;
  /// Step budget (0 = unlimited) and wall-clock deadline from open/adopt.
  uint64_t max_steps = 0;
  double deadline_seconds = 0.0;
  Clock::time_point opened_at = Clock::now();
  /// Owning connection (-1 = detached, awaiting re-adoption).
  int conn_fd = -1;
  uint64_t conn_gen = 0;
  int home_worker = 0;
  /// Owning tenant (from the opening connection's Hello) and its config —
  /// a pointer into the daemon's immutable Options::tenants, stable for
  /// the daemon's life.
  std::string tenant;
  const TenantConfig* tenant_config = nullptr;
  /// A batch is executing on the pool (poll thread sets before SubmitTo,
  /// clears on the batch_done event).
  bool busy = false;
  /// Written by the worker while busy; read by the poll thread after.
  bool failed = false;
  bool finished = false;
  bool degraded_notified = false;
  /// The tenant's oracle budget ran out mid-audit: the session idles at
  /// its checkpoint (each further batch re-answers with a non-fatal
  /// QuotaExceeded) instead of dying. Worker-written, like `failed`.
  bool quota_exhausted = false;
  /// Spend already charged to the ledger — advanced only on a successful
  /// Charge, so a failed append leaves the delta pending for the next
  /// step (never lost, never double-counted).
  uint64_t metered_oracle_calls = 0;
  uint64_t metered_store_bytes = 0;
  /// Steps completed, atomically mirrored for the poll thread (AuditOpened
  /// on re-adoption reads it while a batch may be running).
  std::atomic<uint64_t> steps_done{0};
};

AuditDaemon::AuditDaemon(const Options& options) : options_(options) {}

AuditDaemon::~AuditDaemon() {
  if (started_.load(std::memory_order_acquire)) Stop();
}

void AuditDaemon::RegisterKg(const std::string& name,
                             const KnowledgeGraph* kg) {
  kgs_[name] = kg;
}

Status AuditDaemon::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("daemon already started");
  }
  if (options_.store_dir.empty()) {
    return Status::InvalidArgument("AuditDaemon requires a store_dir");
  }
  if (mkdir(options_.store_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir(" + options_.store_dir +
                           "): " + std::strerror(errno));
  }
  KGACC_ASSIGN_OR_RETURN(OwnedFd listener, ListenTcp(options_.port));
  KGACC_ASSIGN_OR_RETURN(port_, LocalPort(listener.get()));
  listener_ = std::move(listener);
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = OwnedFd(pipe_fds[0]);
  wake_write_ = OwnedFd(pipe_fds[1]);
  KGACC_RETURN_IF_ERROR(SetNonBlocking(wake_read_.get()));
  KGACC_RETURN_IF_ERROR(SetNonBlocking(wake_write_.get()));
  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (workers <= 0) workers = 1;
  pool_ = std::make_unique<ThreadPool>(workers);
  worker_sched_.assign(static_cast<size_t>(workers),
                       DrrScheduler(options_.drr_quantum));
  worker_busy_.assign(static_cast<size_t>(workers), 0);
  // The tenant ledger shares the store directory but never a KG store's
  // filename (those carry a `kg_` prefix). Appends flush to the OS per
  // frame — enough to survive the SIGKILL the daemon is built around —
  // and the drain epilogue fsyncs.
  AnnotationStore::Options ledger_options;
  auto ledger =
      QuotaLedger::Open(options_.store_dir + "/tenant_ledger.wal",
                        ledger_options);
  if (!ledger.ok()) return ledger.status();
  ledger_ = std::move(*ledger);
  started_.store(true, std::memory_order_release);
  poll_thread_ = std::thread(&AuditDaemon::PollLoop, this);
  return Status::OK();
}

void AuditDaemon::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  WakePoll();
}

void AuditDaemon::Wait() {
  if (poll_thread_.joinable()) poll_thread_.join();
}

void AuditDaemon::Stop() {
  RequestDrain();
  Wait();
  pool_.reset();
}

void AuditDaemon::WakePoll() {
  if (!wake_write_.valid()) return;
  const uint8_t byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  (void)!write(wake_write_.get(), &byte, 1);
}

void AuditDaemon::QueueFrame(Connection& conn, std::vector<uint8_t> frame) {
  if (conn.outbox.empty()) {
    conn.outbox = std::move(frame);
  } else {
    conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
  }
}

void AuditDaemon::QueueError(Connection& conn, StatusCode code,
                             uint64_t audit_id, bool fatal_to_session,
                             bool fatal_to_connection,
                             const std::string& message) {
  ErrorMsg err;
  err.code = static_cast<uint8_t>(code);
  err.audit_id = audit_id;
  err.fatal_to_session = fatal_to_session;
  err.fatal_to_connection = fatal_to_connection;
  err.message = message;
  QueueFrame(conn, FrameOf(MessageType::kError, EncodeError, err));
  if (fatal_to_connection) conn.close_after_flush = true;
}

void AuditDaemon::QueueBusy(Connection& conn, const std::string& reason) {
  stats_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
  BusyMsg busy;
  busy.reason = reason;
  QueueFrame(conn, FrameOf(MessageType::kBusy, EncodeBusy, busy));
}

void AuditDaemon::QueueQuotaExceeded(Connection& conn, uint64_t audit_id,
                                     const std::string& quota,
                                     uint64_t remaining,
                                     const std::string& message) {
  stats_.quota_rejections.fetch_add(1, std::memory_order_relaxed);
  QuotaExceededMsg exceeded;
  exceeded.audit_id = audit_id;
  exceeded.quota = quota;
  exceeded.remaining = remaining;
  exceeded.fatal_to_session = true;
  exceeded.message = message;
  QueueFrame(conn, FrameOf(MessageType::kQuotaExceeded, EncodeQuotaExceeded,
                           exceeded));
}

bool AuditDaemon::FlushOutbox(Connection& conn) {
  if (conn.outbox_off >= conn.outbox.size()) return true;
  if (FailpointHit("net.write")) {
    stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (conn.outbox_off < conn.outbox.size()) {
    const ssize_t n =
        send(conn.fd.get(), conn.outbox.data() + conn.outbox_off,
             conn.outbox.size() - conn.outbox_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // POLLOUT
      return false;
    }
    conn.outbox_off += static_cast<size_t>(n);
  }
  conn.outbox.clear();
  conn.outbox_off = 0;
  return true;
}

void AuditDaemon::DropQueuedBatches(Session& session) {
  if (session.home_worker < 0 ||
      static_cast<size_t>(session.home_worker) >= worker_sched_.size()) {
    return;
  }
  const DrrRemoved removed =
      worker_sched_[session.home_worker].RemoveId(session.audit_id);
  if (removed.items == 0) return;
  auto tit = tenant_inflight_steps_.find(session.tenant);
  if (tit != tenant_inflight_steps_.end()) {
    tit->second -= std::min(tit->second, removed.cost);
    if (tit->second == 0) tenant_inflight_steps_.erase(tit);
  }
  auto cit = conns_.find(session.conn_fd);
  if (cit != conns_.end() && cit->second->gen == session.conn_gen) {
    Connection& conn = *cit->second;
    conn.inflight_batches -= std::min(conn.inflight_batches, removed.items);
  }
}

void AuditDaemon::DetachSession(Session& session) {
  DropQueuedBatches(session);
  session.conn_fd = -1;
  session.conn_gen = 0;
  if (!session.busy && !session.finished && !session.failed) {
    // Bound the reconnect replay: a detached session re-adopts from its
    // freshest possible snapshot. Best effort — every label is already in
    // the WAL regardless.
    (void)session.ckpt->Checkpoint(*session.session);
  }
}

void AuditDaemon::CloseConnection(int fd, const Status& cause) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (!cause.ok()) {
    stats_.connections_failed.fetch_add(1, std::memory_order_relaxed);
  }
  for (uint64_t audit_id : it->second->audits) {
    auto sit = sessions_.find(audit_id);
    if (sit != sessions_.end() && sit->second->conn_fd == fd) {
      DetachSession(*sit->second);
    }
  }
  conns_.erase(it);
}

void AuditDaemon::DoAccept() {
  while (true) {
    auto accepted = AcceptTcp(listener_.get());
    if (!accepted.ok()) return;  // transient; the loop retries next wake
    if (!accepted->valid()) return;
    if (FailpointHit("net.accept")) {
      // Injected accept fault: the peer sees an immediate close and
      // retries with backoff — never a hang, never a daemon crash.
      stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    if (conns_.size() >= options_.max_connections || draining()) {
      // Courtesy push-back for a connection the daemon will not serve:
      // a Busy frame (best effort into the socket buffer), then close.
      stats_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
      BusyMsg busy;
      busy.reason = draining() ? "daemon is draining" : "connection limit";
      const std::vector<uint8_t> frame =
          FrameOf(MessageType::kBusy, EncodeBusy, busy);
      (void)!send(accepted->get(), frame.data(), frame.size(), MSG_NOSIGNAL);
      continue;
    }
    const int fd = accepted->get();
    conns_.emplace(fd, std::make_unique<Connection>(std::move(*accepted),
                                                    next_conn_gen_++));
  }
}

bool AuditDaemon::ServiceReadable(Connection& conn) {
  uint8_t buf[4096];
  while (true) {
    ssize_t n = recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn.fd.get(),
                      Status::IoError(std::string("recv: ") +
                                      std::strerror(errno)));
      return false;
    }
    if (n == 0) {
      // Clean close by the peer; its sessions checkpoint and detach.
      CloseConnection(conn.fd.get(), Status::OK());
      return false;
    }
    conn.last_activity = Clock::now();
    if (FailpointHit("net.read.torn")) {
      // Injected torn read: flip one bit mid-chunk. The frame CRC turns
      // this into a descriptive connection failure downstream.
      stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      buf[static_cast<size_t>(n) / 2] ^= 0x40;
    }
    conn.assembler.Feed({buf, static_cast<size_t>(n)});
    while (true) {
      NetFrame frame;
      const auto next = conn.assembler.Next(&frame);
      if (!next.ok()) {
        // Corrupt stream: tell the peer why (best effort — its read side
        // usually still works), then fail the connection, not the daemon.
        ErrorMsg err;
        err.code = static_cast<uint8_t>(next.status().code());
        err.fatal_to_connection = true;
        err.message = next.status().message();
        const std::vector<uint8_t> bytes =
            FrameOf(MessageType::kError, EncodeError, err);
        (void)!send(conn.fd.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
        CloseConnection(conn.fd.get(), next.status());
        return false;
      }
      if (!*next) break;
      if (!HandleFrame(conn, frame)) return false;
    }
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  return true;
}

bool AuditDaemon::HandleFrame(Connection& conn, const NetFrame& frame) {
  const auto type = static_cast<MessageType>(frame.type);
  const std::span<const uint8_t> payload(frame.payload.data(),
                                         frame.payload.size());
  if (!conn.hello_done && type != MessageType::kHello) {
    const Status cause = Status::FailedPrecondition(
        std::string("protocol violation: expected Hello, got ") +
        MessageTypeName(frame.type));
    QueueError(conn, cause.code(), 0, false, true, cause.message());
    return true;  // close_after_flush delivers the error, then closes
  }
  switch (type) {
    case MessageType::kHello: {
      const auto msg = DecodeHello(payload);
      if (!msg.ok()) {
        QueueError(conn, msg.status().code(), 0, false, true,
                   msg.status().message());
        return true;
      }
      if (msg->magic != kNetMagic || msg->version != kNetVersion) {
        QueueError(conn, StatusCode::kInvalidArgument, 0, false, true,
                   "protocol mismatch: peer speaks magic " +
                       std::to_string(msg->magic) + " v" +
                       std::to_string(msg->version));
        return true;
      }
      const std::string tenant = TenantRegistry::Normalize(msg->tenant);
      const TenantConfig* tenant_config = options_.tenants.Lookup(tenant);
      if (tenant_config == nullptr) {
        QueueError(conn, StatusCode::kNotFound, 0, false, true,
                   "unknown tenant '" + tenant +
                       "' (closed registry with no '*' fallback)");
        return true;
      }
      conn.tenant = tenant;
      conn.tenant_config = tenant_config;
      conn.hello_done = true;
      HelloAckMsg ack;
      ack.draining = draining();
      ack.heartbeat_interval_ms = options_.heartbeat_interval_ms;
      ack.idle_timeout_ms = options_.idle_timeout_ms;
      QueueFrame(conn, FrameOf(MessageType::kHelloAck, EncodeHelloAck, ack));
      return true;
    }
    case MessageType::kOpenAudit: {
      const auto msg = DecodeOpenAudit(payload);
      if (!msg.ok()) {
        QueueError(conn, msg.status().code(), 0, false, true,
                   msg.status().message());
        return true;
      }
      HandleOpenAudit(conn, *msg);
      return true;
    }
    case MessageType::kStepBatch: {
      const auto msg = DecodeStepBatch(payload);
      if (!msg.ok()) {
        QueueError(conn, msg.status().code(), 0, false, true,
                   msg.status().message());
        return true;
      }
      HandleStepBatch(conn, *msg);
      return true;
    }
    case MessageType::kCloseAudit: {
      const auto msg = DecodeCloseAudit(payload);
      if (!msg.ok()) {
        QueueError(conn, msg.status().code(), 0, false, true,
                   msg.status().message());
        return true;
      }
      auto sit = sessions_.find(msg->audit_id);
      if (sit != sessions_.end() &&
          sit->second->conn_fd == conn.fd.get()) {
        DetachSession(*sit->second);
        std::erase(conn.audits, msg->audit_id);
      }
      return true;
    }
    case MessageType::kHeartbeat: {
      const auto msg = DecodeHeartbeat(payload);
      if (!msg.ok()) {
        QueueError(conn, msg.status().code(), 0, false, true,
                   msg.status().message());
        return true;
      }
      if (FailpointHit("net.heartbeat.drop")) {
        // Injected dead-air: the ack vanishes; the client's miss counter
        // and the idle reaper are the detectors under test.
        stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
        stats_.heartbeat_acks_dropped.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      stats_.heartbeats_acked.fetch_add(1, std::memory_order_relaxed);
      QueueFrame(conn, FrameOf(MessageType::kHeartbeatAck, EncodeHeartbeatAck,
                               *msg));
      return true;
    }
    default: {
      QueueError(conn, StatusCode::kInvalidArgument, 0, false, true,
                 std::string("unexpected frame from client: ") +
                     MessageTypeName(frame.type));
      return true;
    }
  }
}

Result<std::shared_ptr<AnnotationStore>> AuditDaemon::StoreForKg(
    const std::string& name) {
  auto it = stores_.find(name);
  if (it != stores_.end()) return it->second;
  AnnotationStore::Options store_options;
  store_options.sync_checkpoints = options_.sync_checkpoints;
  store_options.auto_compact_garbage_ratio =
      options_.auto_compact_garbage_ratio;
  // Registered names are client-chosen; keep the filename shell-safe, and
  // make it injective by suffixing a hash of the *raw* name — sanitization
  // alone would alias distinct KGs ("a b" and "a_b") onto one WAL file,
  // and two AnnotationStore instances over one log corrupt it (interleaved
  // frames through separate stdio buffers, conflicting truncation).
  std::string sanitized;
  sanitized.reserve(name.size());
  for (const char c : name) {
    sanitized.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0
                            ? c
                            : '_');
  }
  char tag[16];
  std::snprintf(tag, sizeof(tag), "%08x", Crc32c(name.data(), name.size()));
  const std::string path =
      options_.store_dir + "/kg_" + sanitized + "-" + tag + ".wal";
  // Belt over the hash: if two live names ever resolve to one path, refuse
  // the second instead of silently sharing the file.
  const auto claimed = store_paths_.emplace(path, name);
  if (!claimed.second && claimed.first->second != name) {
    return Status::FailedPrecondition(
        "KG '" + name + "' resolves to store file '" + path +
        "' already in use by KG '" + claimed.first->second + "'");
  }
  auto store = AnnotationStore::Open(path, store_options);
  if (!store.ok()) return store.status();
  std::shared_ptr<AnnotationStore> shared = std::move(*store);
  stores_.emplace(name, shared);
  return shared;
}

void AuditDaemon::HandleOpenAudit(Connection& conn, const OpenAuditMsg& msg) {
  if (draining()) {
    QueueBusy(conn, "daemon is draining; reconnect after restart");
    return;
  }
  auto sit = sessions_.find(msg.audit_id);
  if (sit != sessions_.end()) {
    Session& session = *sit->second;
    if (session.conn_fd >= 0 && session.conn_fd != conn.fd.get() &&
        conns_.count(session.conn_fd) != 0) {
      QueueError(conn, StatusCode::kFailedPrecondition, msg.audit_id, false,
                 false,
                 "audit " + std::to_string(msg.audit_id) +
                     " is attached to another live connection");
      return;
    }
    if (session.tenant != conn.tenant) {
      QueueError(conn, StatusCode::kFailedPrecondition, msg.audit_id, false,
                 false,
                 "audit " + std::to_string(msg.audit_id) +
                     " belongs to tenant '" + session.tenant + "'");
      return;
    }
    // Re-adoption: the session survived its connection. Budgets restart
    // from the adopt point; the evaluation state continues untouched.
    // Tenant quota admission is deliberately skipped — a live session
    // reattaching is not new work, and an exhausted budget already stops
    // its steps.
    session.conn_fd = conn.fd.get();
    session.conn_gen = conn.gen;
    if (!session.busy) {
      session.max_steps =
          msg.max_steps != 0 ? msg.max_steps : options_.default_max_steps;
      session.deadline_seconds = msg.deadline_seconds;
      session.opened_at = Clock::now();
    }
    if (std::find(conn.audits.begin(), conn.audits.end(), msg.audit_id) ==
        conn.audits.end()) {
      conn.audits.push_back(msg.audit_id);
    }
    stats_.sessions_resumed.fetch_add(1, std::memory_order_relaxed);
    AuditOpenedMsg opened;
    opened.audit_id = msg.audit_id;
    opened.resumed = true;
    opened.start_step = session.steps_done.load(std::memory_order_relaxed);
    opened.labels_on_file = session.store->num_labeled();
    opened.design_name = session.design_name;
    opened.dataset_name = session.kg_name;
    QueueFrame(conn,
               FrameOf(MessageType::kAuditOpened, EncodeAuditOpened, opened));
    return;
  }

  if (sessions_.size() >= options_.max_sessions) {
    QueueBusy(conn, "session limit (" +
                        std::to_string(options_.max_sessions) + ") reached");
    return;
  }
  // Tenant quota admission. Exhausted budgets *reject* new audits (even
  // resumable ones — an operator must raise the budget first); a live
  // session hitting the budget mid-run degrades instead (see RunBatch).
  // QuotaExceeded is not Busy: retrying cannot help until the quota grows.
  const TenantConfig& tenant_config = *conn.tenant_config;
  if (tenant_config.max_sessions != 0) {
    size_t live = 0;
    for (const auto& [id, s] : sessions_) {
      if (s->tenant == conn.tenant) ++live;
    }
    if (live >= tenant_config.max_sessions) {
      QueueQuotaExceeded(
          conn, msg.audit_id, "max_sessions", 0,
          "tenant '" + conn.tenant + "' session cap (" +
              std::to_string(tenant_config.max_sessions) + ") reached");
      return;
    }
  }
  const TenantBalance spent = ledger_->Balance(conn.tenant);
  if (tenant_config.oracle_budget != 0 &&
      spent.oracle_spent >= tenant_config.oracle_budget) {
    QueueQuotaExceeded(
        conn, msg.audit_id, "oracle_budget",
        RemainingAllowance(tenant_config.oracle_budget, spent.oracle_spent),
        "tenant '" + conn.tenant + "' oracle-call budget (" +
            std::to_string(tenant_config.oracle_budget) + ") exhausted");
    return;
  }
  if (tenant_config.store_byte_quota != 0 &&
      spent.store_bytes >= tenant_config.store_byte_quota) {
    QueueQuotaExceeded(
        conn, msg.audit_id, "store_quota",
        RemainingAllowance(tenant_config.store_byte_quota, spent.store_bytes),
        "tenant '" + conn.tenant + "' store-byte quota (" +
            std::to_string(tenant_config.store_byte_quota) + ") exhausted");
    return;
  }
  const auto kg_it = kgs_.find(msg.kg_name);
  if (kg_it == kgs_.end()) {
    QueueError(conn, StatusCode::kNotFound, msg.audit_id, true, false,
               "no registered knowledge graph named '" + msg.kg_name + "'");
    return;
  }
  const auto method = ParseMethodName(msg.method);
  if (!method.ok()) {
    QueueError(conn, method.status().code(), msg.audit_id, true, false,
               method.status().message());
    return;
  }
  auto sampler = MakeSamplerForDesign(*kg_it->second, msg.design,
                                      static_cast<int>(msg.twcs_m));
  if (!sampler.ok()) {
    QueueError(conn, sampler.status().code(), msg.audit_id, true, false,
               sampler.status().message());
    return;
  }

  auto session = std::make_unique<Session>();
  session->audit_id = msg.audit_id;
  session->kg_name = msg.kg_name;
  session->tenant = conn.tenant;
  session->tenant_config = conn.tenant_config;
  session->sampler = std::move(*sampler);
  session->design_name = session->sampler->name();
  session->config.method = *method;
  session->config.alpha = msg.alpha;
  session->config.moe_threshold = msg.epsilon;

  auto store = StoreForKg(msg.kg_name);
  if (!store.ok()) {
    QueueError(conn, store.status().code(), msg.audit_id, true, false,
               "cannot open annotation store: " + store.status().message());
    return;
  }
  session->store = std::move(*store);
  session->annotator = std::make_unique<StoredAnnotator>(
      &session->inner, session->store.get(), msg.audit_id,
      StoredAnnotator::Options{});
  session->session = std::make_unique<EvaluationSession>(
      *session->sampler, *session->annotator, session->config, msg.seed);
  CheckpointOptions ckpt_options;
  ckpt_options.every_steps =
      std::max<uint64_t>(msg.checkpoint_every, options_.checkpoint_every);
  session->ckpt = std::make_unique<CheckpointManager>(
      session->store.get(), msg.audit_id, ckpt_options);

  bool resumed = false;
  if (msg.resume && session->ckpt->CanResume()) {
    const Status restored = session->ckpt->Resume(session->session.get());
    if (!restored.ok()) {
      QueueError(conn, restored.code(), msg.audit_id, true, false,
                 "cannot resume audit " + std::to_string(msg.audit_id) +
                     ": " + restored.message());
      return;
    }
    resumed = true;
    session->steps_done.store(
        static_cast<uint64_t>(session->session->iterations()),
        std::memory_order_relaxed);
    stats_.sessions_resumed.fetch_add(1, std::memory_order_relaxed);
  }

  session->max_steps =
      msg.max_steps != 0 ? msg.max_steps : options_.default_max_steps;
  session->deadline_seconds = msg.deadline_seconds;
  session->opened_at = Clock::now();
  session->conn_fd = conn.fd.get();
  session->conn_gen = conn.gen;
  session->home_worker = static_cast<int>(
      msg.audit_id % static_cast<uint64_t>(pool_->num_threads()));
  conn.audits.push_back(msg.audit_id);
  stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);

  AuditOpenedMsg opened;
  opened.audit_id = msg.audit_id;
  opened.resumed = resumed;
  opened.start_step = session->steps_done.load(std::memory_order_relaxed);
  opened.labels_on_file = session->store->num_labeled();
  opened.design_name = session->design_name;
  opened.dataset_name = session->kg_name;
  sessions_.emplace(msg.audit_id, std::move(session));
  QueueFrame(conn,
             FrameOf(MessageType::kAuditOpened, EncodeAuditOpened, opened));
}

void AuditDaemon::HandleStepBatch(Connection& conn, const StepBatchMsg& msg) {
  auto sit = sessions_.find(msg.audit_id);
  if (sit == sessions_.end() || sit->second->conn_fd != conn.fd.get()) {
    QueueError(conn, StatusCode::kFailedPrecondition, msg.audit_id, true,
               false,
               "audit " + std::to_string(msg.audit_id) +
                   " is not open on this connection");
    return;
  }
  if (draining()) {
    QueueBusy(conn, "daemon is draining; reconnect after restart");
    return;
  }
  if (msg.steps == 0) return;
  if (conn.inflight_batches >= options_.max_inflight_batches_per_conn) {
    QueueBusy(conn, "in-flight batch limit (" +
                        std::to_string(
                            options_.max_inflight_batches_per_conn) +
                        ") reached");
    return;
  }
  Session& session = *sit->second;
  const TenantConfig& tenant_config = *session.tenant_config;
  if (tenant_config.max_inflight_steps != 0) {
    uint64_t inflight = 0;
    auto tit = tenant_inflight_steps_.find(session.tenant);
    if (tit != tenant_inflight_steps_.end()) inflight = tit->second;
    if (inflight + msg.steps > tenant_config.max_inflight_steps) {
      // Transient back-pressure, not a budget violation: the cap frees as
      // batches complete, so Busy (retry-later) is the honest answer.
      QueueBusy(conn, "tenant '" + session.tenant +
                          "' in-flight step cap (" +
                          std::to_string(tenant_config.max_inflight_steps) +
                          ") reached");
      return;
    }
  }
  ++conn.inflight_batches;
  tenant_inflight_steps_[session.tenant] += msg.steps;
  // Weighted fairness: batches queue per worker in tenant DRR queues
  // (cost = steps) instead of running FIFO, so a heavy tenant's backlog
  // cannot starve a light tenant sharing the worker.
  worker_sched_[session.home_worker].Push(
      session.tenant, tenant_config.weight,
      DrrItem{session.audit_id, msg.steps});
  PumpWorker(session.home_worker);
}

void AuditDaemon::PumpWorker(int worker) {
  if (worker < 0 || static_cast<size_t>(worker) >= worker_sched_.size()) {
    return;
  }
  if (worker_busy_[worker] != 0) return;
  DrrScheduler& sched = worker_sched_[worker];
  while (!sched.empty()) {
    const std::optional<DrrItem> item = sched.Pop();
    if (!item.has_value()) break;
    auto sit = sessions_.find(item->id);
    if (sit == sessions_.end()) continue;  // evicted with work still queued
    Session& session = *sit->second;
    session.busy = true;
    worker_busy_[worker] = 1;
    Session* sp = &session;
    const uint64_t steps = item->cost;
    const int fd = session.conn_fd;
    const uint64_t gen = session.conn_gen;
    pool_->SubmitTo(worker, [this, sp, steps, fd, gen, worker] {
      RunBatch(sp, steps, fd, gen, worker);
    });
    return;
  }
}

std::vector<uint8_t> AuditDaemon::BuildReportFrame(
    Session& session, const EvaluationResult& result) {
  AuditReportMsg report;
  report.audit_id = session.audit_id;
  report.design_name = session.design_name;
  report.dataset_name = session.kg_name;
  report.result = result;
  report.store_hits = session.annotator->store_hits();
  report.oracle_calls = session.annotator->oracle_calls();
  report.checkpoints_written = session.ckpt->checkpoints_written();
  report.store_retries = session.annotator->retries() +
                         session.ckpt->retries();
  report.degraded =
      session.annotator->degraded() || session.ckpt->degraded();
  if (session.annotator->degraded()) {
    report.degradation_note = session.annotator->degradation_note();
  } else if (session.ckpt->degraded()) {
    report.degradation_note = session.ckpt->degraded_cause().ToString();
  }
  return FrameOf(MessageType::kAuditReport, EncodeAuditReport, report);
}

void AuditDaemon::RunBatch(Session* session, uint64_t steps, int conn_fd,
                           uint64_t conn_gen, int worker) {
  Event ev;
  ev.conn_fd = conn_fd;
  ev.conn_gen = conn_gen;
  ev.audit_id = session->audit_id;
  ev.worker = worker;
  ev.steps = steps;
  ev.tenant = session->tenant;
  auto fail_session = [&](StatusCode code, const std::string& message,
                          bool count_failed) {
    ErrorMsg err;
    err.code = static_cast<uint8_t>(code);
    err.audit_id = session->audit_id;
    err.fatal_to_session = true;
    err.message = message;
    const std::vector<uint8_t> frame =
        FrameOf(MessageType::kError, EncodeError, err);
    ev.frames.insert(ev.frames.end(), frame.begin(), frame.end());
    ev.session_failed = true;
    session->failed = true;
    if (count_failed) {
      stats_.sessions_failed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto push_quota_exceeded = [&](const std::string& quota, uint64_t remaining,
                                 const std::string& message) {
    QuotaExceededMsg exceeded;
    exceeded.audit_id = session->audit_id;
    exceeded.quota = quota;
    exceeded.remaining = remaining;
    exceeded.fatal_to_session = false;
    exceeded.message = message;
    const std::vector<uint8_t> frame =
        FrameOf(MessageType::kQuotaExceeded, EncodeQuotaExceeded, exceeded);
    ev.frames.insert(ev.frames.end(), frame.begin(), frame.end());
  };
  const TenantConfig& tenant_config = *session->tenant_config;

  for (uint64_t i = 0; i < steps; ++i) {
    if (session->failed || session->finished) break;
    if (session->max_steps != 0 &&
        session->steps_done.load(std::memory_order_relaxed) >=
            session->max_steps) {
      stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      fail_session(StatusCode::kDeadlineExceeded,
                   "session step budget (" +
                       std::to_string(session->max_steps) +
                       " steps) exhausted; reopen with a larger budget to "
                       "continue from the checkpoint",
                   /*count_failed=*/false);
      break;
    }
    if (session->deadline_seconds > 0.0 &&
        SecondsSince(session->opened_at) > session->deadline_seconds) {
      stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      fail_session(StatusCode::kDeadlineExceeded,
                   "session wall-clock deadline (" +
                       std::to_string(session->deadline_seconds) +
                       "s) exceeded; reopen to continue from the checkpoint",
                   /*count_failed=*/false);
      break;
    }
    if (tenant_config.oracle_budget != 0) {
      // Pre-step budget gate: stop at a step boundary once the tenant's
      // durable spend (plus any delta a failed charge left pending) meets
      // the budget. The session checkpoints and idles — a non-fatal
      // QuotaExceeded per batch, never a kill — so the audit resumes the
      // moment the budget grows. Overshoot is bounded by one step's calls.
      const uint64_t unmetered = session->annotator->oracle_calls() -
                                 session->metered_oracle_calls;
      const uint64_t durable =
          ledger_->Balance(session->tenant).oracle_spent;
      if (durable + unmetered >= tenant_config.oracle_budget) {
        if (!session->quota_exhausted) {
          session->quota_exhausted = true;
          stats_.quota_exhaustions.fetch_add(1, std::memory_order_relaxed);
        }
        (void)session->ckpt->Checkpoint(*session->session);
        push_quota_exceeded(
            "oracle_budget",
            RemainingAllowance(tenant_config.oracle_budget,
                               durable + unmetered),
            "tenant '" + session->tenant + "' oracle-call budget (" +
                std::to_string(tenant_config.oracle_budget) +
                ") exhausted at step " +
                std::to_string(
                    session->steps_done.load(std::memory_order_relaxed)) +
                "; session checkpointed — reopen once the budget grows");
        break;
      }
    }

    const auto outcome = session->session->Step();
    if (!outcome.ok()) {
      std::string message = "evaluation step failed: " +
                            outcome.status().ToString();
      if (!session->store->wal_error().ok()) {
        message += " (annotation WAL sticky-failed: " +
                   session->store->wal_error().ToString() + ")";
      }
      fail_session(outcome.status().code(), message, /*count_failed=*/true);
      break;
    }
    session->steps_done.fetch_add(1, std::memory_order_relaxed);
    const uint64_t total =
        stats_.steps_executed.fetch_add(1, std::memory_order_relaxed) + 1;
    // Chaos hook: die between the step and its checkpoint — the hard
    // recovery case, where the tail step's labels are durable but its
    // snapshot is not. Recovery replays them from the store for free.
    if (options_.crash_after_steps != 0 &&
        total >= options_.crash_after_steps) {
      std::raise(SIGKILL);
    }
    if (!session->annotator->status().ok()) {
      fail_session(session->annotator->status().code(),
                   "annotation store append failed: " +
                       session->annotator->status().ToString(),
                   /*count_failed=*/true);
      break;
    }
    const Status checkpointed = session->ckpt->OnStep(*session->session);
    if (!checkpointed.ok()) {
      std::string message =
          "checkpoint failed: " + checkpointed.ToString();
      if (!session->store->wal_error().ok()) {
        message += " (annotation WAL sticky-failed: " +
                   session->store->wal_error().ToString() + ")";
      }
      fail_session(checkpointed.code(), message, /*count_failed=*/true);
      break;
    }

    // Meter the step's spend durably. Deltas are computed against the
    // last *successfully charged* totals, so a failed append simply rolls
    // the delta into the next step's charge — acknowledged spend is never
    // lost and never double-counted (Charge acks only after the durable
    // cumulative frame settles).
    const uint64_t oracle_now = session->annotator->oracle_calls();
    const uint64_t bytes_now = session->annotator->bytes_appended() +
                               session->ckpt->bytes_appended();
    const uint64_t oracle_delta = oracle_now - session->metered_oracle_calls;
    const uint64_t bytes_delta = bytes_now - session->metered_store_bytes;
    if (oracle_delta != 0 || bytes_delta != 0) {
      const Status charged =
          ledger_->Charge(session->tenant, oracle_delta, bytes_delta);
      if (charged.ok()) {
        session->metered_oracle_calls = oracle_now;
        session->metered_store_bytes = bytes_now;
      }
    }
    if (tenant_config.store_byte_quota != 0 &&
        !session->annotator->degraded()) {
      const uint64_t durable_bytes =
          ledger_->Balance(session->tenant).store_bytes;
      const uint64_t unmetered_bytes =
          bytes_now - session->metered_store_bytes;
      if (durable_bytes + unmetered_bytes >=
          tenant_config.store_byte_quota) {
        // Soft quota: the audit keeps running, but new oracle labels stop
        // being persisted (store hits keep serving) — the same degraded
        // read-only mode a sticky WAL failure drops into. Checkpoints
        // still append so the session stays resumable.
        session->annotator->ForceDegrade(Status::QuotaExceeded(
            "tenant '" + session->tenant + "' store-byte quota (" +
            std::to_string(tenant_config.store_byte_quota) + ") exhausted"));
        stats_.quota_degraded.fetch_add(1, std::memory_order_relaxed);
        push_quota_exceeded(
            "store_quota", 0,
            "tenant '" + session->tenant + "' store-byte quota (" +
                std::to_string(tenant_config.store_byte_quota) +
                ") exhausted; annotation persistence degraded to read-only");
      }
    }

    const bool degraded =
        session->annotator->degraded() || session->ckpt->degraded();
    if (degraded && !session->degraded_notified) {
      session->degraded_notified = true;
      stats_.sessions_degraded.fetch_add(1, std::memory_order_relaxed);
    }

    // The per-step interval push. Finish() mid-run snapshots the partial
    // result — the only place the asymmetric HPD bounds live.
    const auto partial = session->session->Finish();
    IntervalUpdateMsg update;
    update.audit_id = session->audit_id;
    update.step = session->steps_done.load(std::memory_order_relaxed);
    update.annotated_triples = outcome->annotated_triples;
    update.mu = outcome->mu;
    if (partial.ok()) {
      update.lower = partial->interval.lower;
      update.upper = partial->interval.upper;
      update.moe = partial->interval.Moe();
    } else {
      update.moe = outcome->moe;
    }
    update.done = outcome->done;
    update.stop_reason = static_cast<uint8_t>(outcome->stop_reason);
    update.degraded = degraded;
    const std::vector<uint8_t> frame =
        FrameOf(MessageType::kIntervalUpdate, EncodeIntervalUpdate, update);
    ev.frames.insert(ev.frames.end(), frame.begin(), frame.end());

    if (outcome->done) {
      const auto result = session->session->Finish();
      if (!result.ok()) {
        fail_session(result.status().code(),
                     "finalization failed: " + result.status().ToString(),
                     /*count_failed=*/true);
        break;
      }
      // Final snapshot: a reopened finished audit restores directly to
      // done and regenerates this identical report.
      (void)session->ckpt->Checkpoint(*session->session);
      (void)session->store->Flush();
      const std::vector<uint8_t> report_frame =
          BuildReportFrame(*session, *result);
      ev.frames.insert(ev.frames.end(), report_frame.begin(),
                       report_frame.end());
      ev.session_finished = true;
      session->finished = true;
      break;
    }
  }

  ev.batch_done = true;
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    events_.push_back(std::move(ev));
  }
  WakePoll();
}

void AuditDaemon::DrainEvents() {
  std::deque<Event> events;
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    events.swap(events_);
  }
  for (Event& ev : events) {
    Connection* conn = nullptr;
    auto cit = conns_.find(ev.conn_fd);
    if (cit != conns_.end() && cit->second->gen == ev.conn_gen) {
      conn = cit->second.get();
    }
    if (conn != nullptr && !ev.frames.empty()) {
      QueueFrame(*conn, std::move(ev.frames));
    }
    if (!ev.batch_done) continue;
    if (conn != nullptr && conn->inflight_batches > 0) {
      --conn->inflight_batches;
    }
    // Return the batch's reservations before any early-out: the worker
    // slot frees, and the tenant's inflight-step account shrinks.
    if (ev.worker >= 0 &&
        static_cast<size_t>(ev.worker) < worker_busy_.size()) {
      worker_busy_[ev.worker] = 0;
    }
    auto tit = tenant_inflight_steps_.find(ev.tenant);
    if (tit != tenant_inflight_steps_.end()) {
      tit->second -= std::min(tit->second, ev.steps);
      if (tit->second == 0) tenant_inflight_steps_.erase(tit);
    }
    auto sit = sessions_.find(ev.audit_id);
    if (sit != sessions_.end()) {
      Session& session = *sit->second;
      session.busy = false;
      if (ev.session_finished || ev.session_failed) {
        // The session leaves the registry; its store (flushed WAL +
        // checkpoints) remains the durable artifact a reopen resumes from.
        if (ev.session_failed && !session.finished) {
          (void)session.ckpt->Checkpoint(*session.session);
        }
        if (conn != nullptr) std::erase(conn->audits, ev.audit_id);
        DropQueuedBatches(session);
        sessions_.erase(sit);
      } else if (session.conn_fd < 0) {
        // Detached mid-batch: checkpoint now that the worker is done.
        (void)session.ckpt->Checkpoint(*session.session);
      }
    }
    // The freed worker serves its next queued batch (DRR order).
    if (ev.worker >= 0) PumpWorker(ev.worker);
  }
}

void AuditDaemon::ReapIdle() {
  std::vector<int> stale;
  for (const auto& [fd, conn] : conns_) {
    const double idle_ms =
        SecondsSince(conn->last_activity) * 1000.0;
    if (idle_ms > static_cast<double>(options_.idle_timeout_ms)) {
      stale.push_back(fd);
    }
  }
  for (int fd : stale) {
    stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
    // A reaped peer is not a protocol failure: sessions checkpoint and
    // detach, and the client resumes on reconnect.
    CloseConnection(fd, Status::OK());
  }
}

void AuditDaemon::DoDrain() {
  // Stop admitting: the listener closes (new connects are refused by the
  // kernel), live clients get a Drain notice, pending batches are shed.
  listener_.Reset();
  DrainMsg notice;
  notice.message = "daemon draining; sessions checkpointed, reconnect to "
                   "resume";
  for (auto& [fd, conn] : conns_) {
    QueueFrame(*conn, FrameOf(MessageType::kDrain, EncodeDrain, notice));
    conn->close_after_flush = true;
  }
  for (DrrScheduler& sched : worker_sched_) sched.Clear();
  tenant_inflight_steps_.clear();
}

void AuditDaemon::PollLoop() {
  bool drain_started = false;
  while (true) {
    if (draining() && !drain_started) {
      drain_started = true;
      DoDrain();
    }
    if (drain_started) {
      bool any_busy = false;
      for (const auto& [id, session] : sessions_) {
        if (session->busy) any_busy = true;
      }
      bool events_pending;
      {
        std::lock_guard<std::mutex> lock(events_mu_);
        events_pending = !events_.empty();
      }
      if (!any_busy && !events_pending) break;
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_read_.get(), POLLIN, 0});
    if (listener_.valid()) fds.push_back({listener_.get(), POLLIN, 0});
    std::vector<int> conn_fds;
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (conn->outbox_off < conn->outbox.size()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }
    const int timeout_ms = drain_started ? 10 : 100;
    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed; bail out

    // Drain the wake pipe (level-triggered; one read clears any backlog).
    uint8_t scratch[256];
    while (read(wake_read_.get(), scratch, sizeof(scratch)) > 0) {
    }

    DrainEvents();

    size_t index = 1;
    if (listener_.valid()) {
      if ((fds[index].revents & POLLIN) != 0) DoAccept();
      ++index;
    }
    for (size_t i = 0; i < conn_fds.size(); ++i) {
      const int fd = conn_fds[i];
      const short revents = fds[index + i].revents;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed by an earlier handler
      Connection& conn = *it->second;
      if ((revents & (POLLERR | POLLHUP)) != 0) {
        CloseConnection(fd, Status::OK());
        continue;
      }
      if ((revents & POLLIN) != 0 && !ServiceReadable(conn)) continue;
      if (!FlushOutbox(conn)) {
        CloseConnection(fd, Status::IoError("connection write failed"));
        continue;
      }
      if (conn.close_after_flush &&
          conn.outbox_off >= conn.outbox.size()) {
        CloseConnection(fd, Status::OK());
      }
    }
    if (!drain_started) ReapIdle();
  }

  // Drain epilogue: every live session checkpoints, then every per-KG
  // store settles once — flush, fsync, and a final compaction so a restart
  // replays a minimal log (the checkpoints just written superseded their
  // predecessors; compacting here also heals a sticky WAL, since the index
  // holds only acknowledged records). A compaction failure is harmless:
  // whichever log it left installed is complete and durable.
  for (auto& [id, session] : sessions_) {
    if (!session->finished && !session->failed) {
      (void)session->ckpt->Checkpoint(*session->session);
    }
  }
  for (auto& [name, store] : stores_) {
    (void)store->Flush();
    (void)store->Sync();
    (void)store->Compact();
  }
  if (ledger_ != nullptr) {
    // Same settle for the tenant ledger: fsync the balances and fold each
    // tenant's history to its single live frame.
    (void)ledger_->Flush();
    (void)ledger_->Sync();
    (void)ledger_->Compact();
  }
  for (auto& [fd, conn] : conns_) {
    (void)FlushOutbox(*conn);
  }
  conns_.clear();
  sessions_.clear();
}

std::string AuditDaemon::StatsLine() const {
  auto v = [](const std::atomic<uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  return "accepted=" + v(stats_.connections_accepted) +
         " conn_failed=" + v(stats_.connections_failed) +
         " idle_reaped=" + v(stats_.idle_reaped) +
         " busy=" + v(stats_.busy_rejections) +
         " deadline=" + v(stats_.deadline_exceeded) +
         " opened=" + v(stats_.sessions_opened) +
         " resumed=" + v(stats_.sessions_resumed) +
         " failed=" + v(stats_.sessions_failed) +
         " degraded=" + v(stats_.sessions_degraded) +
         " steps=" + v(stats_.steps_executed) +
         " quota_rejected=" + v(stats_.quota_rejections) +
         " quota_exhausted=" + v(stats_.quota_exhaustions) +
         " quota_degraded=" + v(stats_.quota_degraded) +
         " hb_acked=" + v(stats_.heartbeats_acked) +
         " hb_dropped=" + v(stats_.heartbeat_acks_dropped) +
         " faults=" + v(stats_.faults_injected);
}

}  // namespace kgacc
