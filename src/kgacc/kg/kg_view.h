#ifndef KGACC_KG_KG_VIEW_H_
#define KGACC_KG_KG_VIEW_H_

#include <cstdint>

#include "kgacc/kg/triple.h"

/// \file kg_view.h
/// The abstract clustered-population interface every sampler, estimator and
/// the evaluation framework are written against. Implemented by the
/// in-memory `KnowledgeGraph` (small real-data-like KGs) and the procedural
/// `SyntheticKg` (the 100M-triple scalability workload), so the same bench
/// code runs unchanged at both scales.

namespace kgacc {

/// Read-only view of a KG as a population of entity clusters of triples.
///
/// Ground-truth correctness labels are exposed through `label()`. In a real
/// deployment these would come from human annotators; here the simulation
/// oracle (`OracleAnnotator`) reads them on demand, exactly mirroring how
/// the paper replays fixed gold labels during its 1,000-run protocols.
class KgView {
 public:
  virtual ~KgView() = default;

  /// Total number of triples M = |T|.
  virtual uint64_t num_triples() const = 0;

  /// Number of entity clusters (distinct subjects).
  virtual uint64_t num_clusters() const = 0;

  /// Size M_i of cluster `cluster`; always >= 1.
  virtual uint64_t cluster_size(uint64_t cluster) const = 0;

  /// Ground-truth correctness 1(t) of the triple at (cluster, offset).
  virtual bool label(uint64_t cluster, uint64_t offset) const = 0;

  /// Maps a global triple index in [0, num_triples) to its coordinates.
  /// Global indices enumerate triples cluster by cluster.
  virtual TripleRef TripleAt(uint64_t global_index) const = 0;

  /// True KG accuracy mu (Eq. 1). Exposed for experiment ground truth;
  /// production estimation code never reads it.
  virtual double TrueAccuracy() const = 0;
};

}  // namespace kgacc

#endif  // KGACC_KG_KG_VIEW_H_
