#ifndef KGACC_KG_SYNTHETIC_H_
#define KGACC_KG_SYNTHETIC_H_

#include <vector>

#include "kgacc/kg/kg_view.h"
#include "kgacc/util/status.h"

/// \file synthetic.h
/// Procedural synthetic KG populations. Labels are *not* materialized:
/// the correctness of triple (c, o) is a pure function of (seed, c, o),
/// derived with counter-based hashing, so a 101M-triple SYN 100M instance
/// costs O(#clusters) memory (the cluster-size prefix array) instead of
/// O(#triples). This reproduces the paper's SYN 100M scalability workload
/// (§5, Table 1) without multi-GB materialization.

namespace kgacc {

/// How correctness labels are distributed across clusters.
enum class LabelModel {
  /// Labels are iid Bernoulli(mu) regardless of cluster — the SYN 100M
  /// setting ("the probability of a triple being true is a fixed rate").
  kIid,
  /// Each cluster draws its own accuracy p_c ~ Beta(mu*k, (1-mu)*k) with
  /// k = (1-rho)/rho; labels are iid Bernoulli(p_c) within the cluster.
  /// Produces intra-cluster correlation ICC ~= rho, the regime of real
  /// curated KGs (errors concentrate in some entities) where the TWCS
  /// design effect exceeds 1.
  kBetaMixture,
  /// Each cluster contains (a stochastic rounding of) mu * M_i correct
  /// triples, i.e., cluster compositions are balanced. Mimics FACTBENCH,
  /// whose negatives are perturbed copies of positives inside the same
  /// entity, driving the design effect *below* 1.
  kBalanced,
};

/// How cluster sizes M_i are generated.
enum class ClusterSizeModel {
  /// All clusters share the same size (rounded mean).
  kFixed,
  /// M_i = 1 + Geometric; matches the small-cluster skew of entity KGs.
  kGeometric,
  /// M_i ~ truncated Zipf: P(M = k) proportional to k^-s, k = 1..cap. The
  /// exponent s is solved numerically so the mean matches
  /// `mean_cluster_size`; models the heavy-tailed entity degrees of
  /// encyclopedic KGs (a few hub entities with thousands of facts).
  kZipf,
};

/// Generation parameters for a `SyntheticKg`.
struct SyntheticKgConfig {
  uint64_t num_clusters = 0;
  /// Target mean cluster size (>= 1).
  double mean_cluster_size = 1.0;
  ClusterSizeModel size_model = ClusterSizeModel::kGeometric;
  /// Largest cluster size for the kZipf model.
  uint64_t zipf_max_size = 10000;
  /// Target accuracy mu in [0, 1].
  double accuracy = 0.5;
  LabelModel label_model = LabelModel::kIid;
  /// Intra-cluster correlation in [0, 1) for kBetaMixture.
  double intra_cluster_rho = 0.0;
  /// Base seed; the whole population is a deterministic function of it.
  uint64_t seed = 0;
  /// If nonzero, cluster sizes are adjusted (+-1 spread across clusters) so
  /// the total triple count matches exactly — used to hit the fact counts
  /// of Table 1 to the digit.
  uint64_t exact_total_triples = 0;
};

/// Procedurally labeled clustered population (see file comment).
class SyntheticKg final : public KgView {
 public:
  /// Validates the config and generates the cluster-size prefix array.
  static Result<SyntheticKg> Create(const SyntheticKgConfig& config);

  // KgView interface.
  uint64_t num_triples() const override { return prefix_.back(); }
  uint64_t num_clusters() const override { return prefix_.size() - 1; }
  uint64_t cluster_size(uint64_t cluster) const override {
    return prefix_[cluster + 1] - prefix_[cluster];
  }
  bool label(uint64_t cluster, uint64_t offset) const override;
  TripleRef TripleAt(uint64_t global_index) const override;

  /// Exact realized accuracy for populations up to 32M triples (computed
  /// once and cached); the analytic expectation `config.accuracy` beyond
  /// that, where the realized value deviates by < 1e-4 anyway.
  double TrueAccuracy() const override;

  const SyntheticKgConfig& config() const { return config_; }

  /// Cluster-level accuracy p_c used by the label model (exposed for tests).
  double ClusterAccuracy(uint64_t cluster) const;

 private:
  explicit SyntheticKg(SyntheticKgConfig config) : config_(config) {}

  SyntheticKgConfig config_;
  std::vector<uint64_t> prefix_;  // Size num_clusters + 1.
  mutable bool accuracy_cached_ = false;
  mutable double cached_accuracy_ = 0.0;
};

}  // namespace kgacc

#endif  // KGACC_KG_SYNTHETIC_H_
