#ifndef KGACC_KG_PROFILES_H_
#define KGACC_KG_PROFILES_H_

#include <string>
#include <vector>

#include "kgacc/kg/synthetic.h"
#include "kgacc/util/status.h"

/// \file profiles.h
/// Dataset profiles matching Table 1 of the paper. The original datasets
/// carry hand-collected human annotations we cannot redistribute or
/// regenerate, so each profile drives the synthetic generator to a
/// population with the *same* fact count, cluster count, mean cluster size,
/// ground-truth accuracy, and (qualitatively) the same intra-cluster label
/// correlation — the quantities the estimators and intervals actually
/// respond to. See DESIGN.md §2 for the substitution argument.

namespace kgacc {

/// Declarative description of one evaluation dataset.
struct DatasetProfile {
  std::string name;
  uint64_t num_facts = 0;
  uint64_t num_clusters = 0;
  double accuracy = 0.0;
  LabelModel label_model = LabelModel::kIid;
  /// Intra-cluster correlation for kBetaMixture profiles.
  double intra_cluster_rho = 0.0;
  /// Recommended TWCS second-stage size m (per Gao et al.: 3 for small
  /// clusters, 5 for large).
  int twcs_second_stage = 3;

  double AvgClusterSize() const {
    return static_cast<double>(num_facts) / static_cast<double>(num_clusters);
  }
};

/// YAGO sample of Ojha & Talukdar: 1,386 facts, 822 clusters, mu = 0.99.
DatasetProfile YagoProfile();

/// NELL sports sample of Ojha & Talukdar: 1,860 facts, 817 clusters,
/// mu = 0.91.
DatasetProfile NellProfile();

/// DBPEDIA sample of Marchesin et al.: 9,344 facts, 2,936 clusters,
/// mu = 0.85.
DatasetProfile DbpediaProfile();

/// FACTBENCH benchmark of Gerber et al.: 2,800 facts, 1,157 clusters,
/// mu = 0.54, balanced negatives (quasi-symmetric regime).
DatasetProfile FactbenchProfile();

/// SYN 100M of Marchesin & Silvello: 101,415,011 facts, 5M clusters,
/// configurable mu in {0.9, 0.5, 0.1}.
DatasetProfile Syn100MProfile(double accuracy);

/// The four small profiles in paper order (YAGO, NELL, DBPEDIA, FACTBENCH).
std::vector<DatasetProfile> SmallProfiles();

/// Instantiates the synthetic population for a profile.
Result<SyntheticKg> MakeKg(const DatasetProfile& profile, uint64_t seed);

}  // namespace kgacc

#endif  // KGACC_KG_PROFILES_H_
