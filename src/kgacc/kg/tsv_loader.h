#ifndef KGACC_KG_TSV_LOADER_H_
#define KGACC_KG_TSV_LOADER_H_

#include <string>

#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/util/status.h"

/// \file tsv_loader.h
/// Plain-text interchange for labeled KGs. One fact per line:
///
///     subject<TAB>predicate<TAB>object<TAB>label
///
/// where label is `1` (correct) or `0` (incorrect). Lines starting with `#`
/// and blank lines are skipped. This is the format used by the example
/// programs and by users bringing their own annotated samples.

namespace kgacc {

/// Parses a labeled TSV file into an entity-clustered KnowledgeGraph.
Result<KnowledgeGraph> LoadKgFromTsv(const std::string& path);

/// Parses labeled TSV content from a string (same grammar as the file
/// loader; used for tests and embedded fixtures).
Result<KnowledgeGraph> LoadKgFromTsvString(const std::string& content);

/// Serializes a KnowledgeGraph back to the TSV format.
Status WriteKgToTsv(const KnowledgeGraph& kg, const std::string& path);

}  // namespace kgacc

#endif  // KGACC_KG_TSV_LOADER_H_
