#ifndef KGACC_KG_TRIPLE_H_
#define KGACC_KG_TRIPLE_H_

#include <cstdint>
#include <string>

/// \file triple.h
/// The (s, p, o) fact representation of §2.1. Inside the library triples are
/// referenced by (cluster, offset) coordinates — a cluster is the set of
/// triples sharing a subject entity (C_e in the paper) — which is the
/// granularity every sampling design and the cost model operate on.

namespace kgacc {

/// A fully materialized triple with interned vocabulary ids.
struct Triple {
  uint32_t subject = 0;    ///< Entity id (also the cluster key).
  uint32_t predicate = 0;  ///< Relationship id.
  uint32_t object = 0;     ///< Entity or attribute id.
};

/// Coordinates of one triple inside a clustered population: cluster index
/// and offset within that cluster. This is the unit the samplers return and
/// the annotators consume.
struct TripleRef {
  uint64_t cluster = 0;
  uint64_t offset = 0;

  friend bool operator==(const TripleRef& a, const TripleRef& b) {
    return a.cluster == b.cluster && a.offset == b.offset;
  }
};

/// A triple annotated with its correctness label 1(t) (§2.2).
struct AnnotatedTriple {
  TripleRef ref;
  bool correct = false;
};

}  // namespace kgacc

#endif  // KGACC_KG_TRIPLE_H_
