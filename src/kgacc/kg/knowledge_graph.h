#ifndef KGACC_KG_KNOWLEDGE_GRAPH_H_
#define KGACC_KG_KNOWLEDGE_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kgacc/kg/kg_view.h"
#include "kgacc/kg/triple.h"
#include "kgacc/util/status.h"

/// \file knowledge_graph.h
/// In-memory ground RDF graph G = (V, R, T, eta) per §2.1, stored as
/// entity-clustered triples with an interned vocabulary. This is the
/// materialized implementation of `KgView` used for the small, real-life
/// style datasets (YAGO / NELL / DBPEDIA / FACTBENCH profiles and TSV
/// loads).

namespace kgacc {

/// Interned string vocabulary shared by subjects, predicates and objects.
class Vocabulary {
 public:
  /// Returns the id for `term`, interning it on first sight.
  uint32_t Intern(std::string_view term);

  /// Looks up an existing term; NotFound if absent.
  Result<uint32_t> Find(std::string_view term) const;

  /// The term for `id`; id must have been produced by Intern.
  const std::string& TermOf(uint32_t id) const;

  size_t size() const { return terms_.size(); }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// Immutable, entity-clustered in-memory KG. Build instances with
/// `KnowledgeGraphBuilder`.
class KnowledgeGraph final : public KgView {
 public:
  // KgView interface.
  uint64_t num_triples() const override { return triples_.size(); }
  uint64_t num_clusters() const override { return cluster_begin_.size() - 1; }
  uint64_t cluster_size(uint64_t cluster) const override {
    return cluster_begin_[cluster + 1] - cluster_begin_[cluster];
  }
  bool label(uint64_t cluster, uint64_t offset) const override {
    return labels_[cluster_begin_[cluster] + offset] != 0;
  }
  TripleRef TripleAt(uint64_t global_index) const override;
  double TrueAccuracy() const override;

  /// The materialized triple at (cluster, offset).
  const Triple& triple(uint64_t cluster, uint64_t offset) const {
    return triples_[cluster_begin_[cluster] + offset];
  }

  /// Subject entity id of a cluster.
  uint32_t cluster_subject(uint64_t cluster) const {
    return triples_[cluster_begin_[cluster]].subject;
  }

  /// Shared vocabulary for rendering triples back to strings.
  const Vocabulary& vocabulary() const { return vocab_; }

  /// Average cluster size M / |clusters|.
  double AvgClusterSize() const {
    return static_cast<double>(num_triples()) /
           static_cast<double>(num_clusters());
  }

 private:
  friend class KnowledgeGraphBuilder;
  KnowledgeGraph() = default;

  Vocabulary vocab_;
  std::vector<Triple> triples_;        // Grouped by subject.
  std::vector<uint8_t> labels_;        // Parallel to triples_.
  std::vector<uint64_t> cluster_begin_;  // Size num_clusters + 1.
};

/// Accumulates labeled triples and produces an entity-clustered
/// `KnowledgeGraph`. Duplicate (s, p, o) triples are rejected at Build time.
class KnowledgeGraphBuilder {
 public:
  /// Adds one labeled fact. Terms are interned; order is irrelevant.
  void Add(std::string_view subject, std::string_view predicate,
           std::string_view object, bool correct);

  /// Number of facts added so far.
  size_t size() const { return triples_.size(); }

  /// Finalizes the graph: groups triples by subject and checks for
  /// duplicates. The builder is left empty afterwards.
  Result<KnowledgeGraph> Build();

 private:
  Vocabulary vocab_;
  std::vector<Triple> triples_;
  std::vector<uint8_t> labels_;
};

}  // namespace kgacc

#endif  // KGACC_KG_KNOWLEDGE_GRAPH_H_
