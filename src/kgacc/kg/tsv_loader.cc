#include "kgacc/kg/tsv_loader.h"

#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace kgacc {

namespace {

/// Splits `line` on tabs into exactly four fields; empty fields are errors.
Status ParseLine(std::string_view line, size_t line_no,
                 KnowledgeGraphBuilder* builder) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (start <= line.size()) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  if (fields.size() != 4) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": expected 4 tab-separated fields, got " +
                                   std::to_string(fields.size()));
  }
  for (int i = 0; i < 3; ++i) {
    if (fields[i].empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty term");
    }
  }
  bool label;
  if (fields[3] == "1") {
    label = true;
  } else if (fields[3] == "0") {
    label = false;
  } else {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": label must be 0 or 1, got '" +
                                   std::string(fields[3]) + "'");
  }
  builder->Add(fields[0], fields[1], fields[2], label);
  return Status::OK();
}

Result<KnowledgeGraph> LoadFromStream(std::istream& in) {
  KnowledgeGraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    KGACC_RETURN_IF_ERROR(ParseLine(line, line_no, &builder));
  }
  if (builder.size() == 0) {
    return Status::InvalidArgument("TSV input contained no facts");
  }
  return builder.Build();
}

}  // namespace

Result<KnowledgeGraph> LoadKgFromTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open TSV file: " + path);
  }
  return LoadFromStream(in);
}

Result<KnowledgeGraph> LoadKgFromTsvString(const std::string& content) {
  std::istringstream in(content);
  return LoadFromStream(in);
}

Status WriteKgToTsv(const KnowledgeGraph& kg, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open TSV file for writing: " + path);
  }
  out << "# subject\tpredicate\tobject\tlabel\n";
  const Vocabulary& vocab = kg.vocabulary();
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    for (uint64_t o = 0; o < kg.cluster_size(c); ++o) {
      const Triple& t = kg.triple(c, o);
      out << vocab.TermOf(t.subject) << '\t' << vocab.TermOf(t.predicate)
          << '\t' << vocab.TermOf(t.object) << '\t' << (kg.label(c, o) ? 1 : 0)
          << '\n';
    }
  }
  if (!out) {
    return Status::IoError("write failure on TSV file: " + path);
  }
  return Status::OK();
}

}  // namespace kgacc
