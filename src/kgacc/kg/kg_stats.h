#ifndef KGACC_KG_KG_STATS_H_
#define KGACC_KG_KG_STATS_H_

#include "kgacc/kg/kg_view.h"
#include "kgacc/util/status.h"

/// \file kg_stats.h
/// Structural and label diagnostics for a clustered KG population. These
/// are the quantities an analyst inspects *before* choosing a sampling
/// design: heavy-tailed cluster sizes favor TWCS's PPS first stage; a high
/// intra-cluster label correlation warns that the TWCS design effect will
/// exceed 1 (more triples, but still cheaper per Eq. 12).

namespace kgacc {

/// Summary of a KG population's cluster structure and labels.
struct KgStatistics {
  uint64_t num_triples = 0;
  uint64_t num_clusters = 0;
  double avg_cluster_size = 0.0;
  double cluster_size_stddev = 0.0;
  uint64_t max_cluster_size = 0;
  /// Gini coefficient of the cluster-size distribution in [0, 1): 0 for
  /// uniform sizes, large for heavy-tailed ones.
  double cluster_size_gini = 0.0;
  /// Exact population accuracy mu.
  double accuracy = 0.0;
  /// ANOVA estimate of the intra-cluster correlation of correctness labels
  /// (clusters of size 1 contribute nothing); roughly the rho of the
  /// beta-mixture label model. Near 0 for iid labels, negative for
  /// balanced-composition clusters.
  double intra_cluster_correlation = 0.0;
  /// Predicted TWCS design effect 1 + (m_bar - 1) * icc for a second-stage
  /// size m (Kish), using m_bar = E[min(M_i, m)] under PPS.
  double predicted_design_effect = 1.0;
};

/// Computes the full diagnostics by one pass over the population. O(M)
/// label reads — intended for the in-memory datasets and tests, not for
/// SYN-100M-scale populations (cap: 64M triples).
Result<KgStatistics> ComputeKgStatistics(const KgView& kg,
                                         int twcs_second_stage = 3);

}  // namespace kgacc

#endif  // KGACC_KG_KG_STATS_H_
