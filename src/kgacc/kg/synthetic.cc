#include "kgacc/kg/synthetic.h"

#include <algorithm>
#include <cmath>

#include "kgacc/util/check.h"
#include "kgacc/util/random.h"

namespace kgacc {

namespace {

// Domain-separation constants for the independent hash streams.
constexpr uint64_t kSizeStream = 0x5a17e5a17e5a17e5ULL;
constexpr uint64_t kClusterSalt = 0xc1a5c1a5c1a5c1a5ULL;
constexpr uint64_t kLabelSalt = 0x1abe11abe11abe1ULL;
constexpr uint64_t kRoundSalt = 0x20a4d20a4d20a4dULL;
constexpr uint64_t kExactAccuracyLimit = 32ull * 1000 * 1000;

}  // namespace

Result<SyntheticKg> SyntheticKg::Create(const SyntheticKgConfig& config) {
  if (config.num_clusters == 0) {
    return Status::InvalidArgument("synthetic KG needs at least one cluster");
  }
  if (!(config.mean_cluster_size >= 1.0)) {
    return Status::InvalidArgument("mean cluster size must be >= 1");
  }
  if (!(config.accuracy >= 0.0) || !(config.accuracy <= 1.0)) {
    return Status::OutOfRange("accuracy must be in [0,1]");
  }
  if (config.label_model == LabelModel::kBetaMixture &&
      (!(config.intra_cluster_rho > 0.0) || !(config.intra_cluster_rho < 1.0))) {
    return Status::OutOfRange(
        "beta-mixture label model requires intra_cluster_rho in (0,1)");
  }
  if (config.exact_total_triples != 0 &&
      config.exact_total_triples < config.num_clusters) {
    return Status::InvalidArgument(
        "exact_total_triples smaller than num_clusters (clusters are "
        "non-empty)");
  }

  SyntheticKg kg(config);
  const uint64_t n = config.num_clusters;
  std::vector<uint64_t> sizes(n, 1);

  if (config.size_model == ClusterSizeModel::kFixed) {
    const uint64_t fixed = static_cast<uint64_t>(
        std::max<int64_t>(1, std::llround(config.mean_cluster_size)));
    std::fill(sizes.begin(), sizes.end(), fixed);
  } else if (config.size_model == ClusterSizeModel::kZipf) {
    if (config.zipf_max_size < 2) {
      return Status::InvalidArgument("zipf_max_size must be >= 2");
    }
    // Solve for the exponent s with mean(k^-s over 1..cap) matching the
    // target. The mean is decreasing in s; bisect on [1.01, 12].
    const uint64_t cap = config.zipf_max_size;
    auto mean_for = [cap](double s) {
      double mass = 0.0, weighted = 0.0;
      for (uint64_t k = 1; k <= cap; ++k) {
        const double w = std::pow(static_cast<double>(k), -s);
        mass += w;
        weighted += w * static_cast<double>(k);
      }
      return weighted / mass;
    };
    double lo_s = 1.01, hi_s = 12.0;
    if (config.mean_cluster_size >= mean_for(lo_s)) {
      return Status::InvalidArgument(
          "zipf mean_cluster_size unreachable; raise zipf_max_size");
    }
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo_s + hi_s);
      (mean_for(mid) > config.mean_cluster_size ? lo_s : hi_s) = mid;
    }
    const double s = 0.5 * (lo_s + hi_s);
    // Precompute the CDF and invert per-cluster hashes against it.
    std::vector<double> cdf(cap);
    double mass = 0.0;
    for (uint64_t k = 1; k <= cap; ++k) {
      mass += std::pow(static_cast<double>(k), -s);
      cdf[k - 1] = mass;
    }
    for (double& v : cdf) v /= mass;
    for (uint64_t c = 0; c < n; ++c) {
      const double u =
          ToUnitDouble(Mix64(config.seed ^ kSizeStream ^ (c * 2 + 1)));
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      sizes[c] = static_cast<uint64_t>(it - cdf.begin()) + 1;
    }
  } else {
    // Shifted geometric: size = 1 + G, E[G] = mean - 1, via inversion from
    // a per-cluster hash so regeneration is O(1)-seekable in principle.
    const double mean_extra = config.mean_cluster_size - 1.0;
    if (mean_extra > 0.0) {
      const double p = 1.0 / (mean_extra + 1.0);  // success prob of geometric
      const double log_q = std::log1p(-p);
      for (uint64_t c = 0; c < n; ++c) {
        const double u =
            ToUnitDouble(Mix64(config.seed ^ kSizeStream ^ (c * 2 + 1)));
        const uint64_t extra = static_cast<uint64_t>(
            std::floor(std::log1p(-u) / log_q));
        sizes[c] = 1 + extra;
      }
    }
  }

  if (config.exact_total_triples != 0) {
    // Spread the discrepancy in +-1 steps across clusters.
    uint64_t total = 0;
    for (uint64_t s : sizes) total += s;
    uint64_t c = 0;
    while (total < config.exact_total_triples) {
      ++sizes[c % n];
      ++total;
      ++c;
    }
    while (total > config.exact_total_triples) {
      if (sizes[c % n] > 1) {
        --sizes[c % n];
        --total;
      }
      ++c;
    }
  }

  kg.prefix_.resize(n + 1);
  kg.prefix_[0] = 0;
  for (uint64_t c = 0; c < n; ++c) kg.prefix_[c + 1] = kg.prefix_[c] + sizes[c];
  return kg;
}

double SyntheticKg::ClusterAccuracy(uint64_t cluster) const {
  switch (config_.label_model) {
    case LabelModel::kIid:
      return config_.accuracy;
    case LabelModel::kBetaMixture: {
      const double mu = config_.accuracy;
      if (mu <= 0.0) return 0.0;
      if (mu >= 1.0) return 1.0;
      const double rho = config_.intra_cluster_rho;
      const double k = (1.0 - rho) / rho;
      Rng rng(Mix64(config_.seed ^ kClusterSalt ^ (cluster * 2 + 1)));
      return rng.Beta(mu * k, (1.0 - mu) * k);
    }
    case LabelModel::kBalanced: {
      const uint64_t m = cluster_size(cluster);
      const double exact = config_.accuracy * static_cast<double>(m);
      uint64_t tau = static_cast<uint64_t>(std::floor(exact));
      const double frac = exact - static_cast<double>(tau);
      const double u =
          ToUnitDouble(Mix64(config_.seed ^ kRoundSalt ^ (cluster * 2 + 1)));
      if (u < frac) ++tau;
      return static_cast<double>(tau) / static_cast<double>(m);
    }
  }
  return config_.accuracy;
}

bool SyntheticKg::label(uint64_t cluster, uint64_t offset) const {
  KGACC_DCHECK(cluster < num_clusters());
  KGACC_DCHECK(offset < cluster_size(cluster));
  switch (config_.label_model) {
    case LabelModel::kIid: {
      const uint64_t id = prefix_[cluster] + offset;
      return ToUnitDouble(Mix64(config_.seed ^ kLabelSalt ^ (id * 2 + 1))) <
             config_.accuracy;
    }
    case LabelModel::kBetaMixture: {
      const double pc = ClusterAccuracy(cluster);
      const uint64_t id = prefix_[cluster] + offset;
      return ToUnitDouble(Mix64(config_.seed ^ kLabelSalt ^ (id * 2 + 1))) < pc;
    }
    case LabelModel::kBalanced: {
      const uint64_t m = cluster_size(cluster);
      const uint64_t tau = static_cast<uint64_t>(
          std::llround(ClusterAccuracy(cluster) * static_cast<double>(m)));
      // Rotate offsets by a per-cluster hash so correct triples are not
      // always the low offsets; (o + h) mod m is a permutation of 0..m-1.
      const uint64_t h =
          Mix64(config_.seed ^ kLabelSalt ^ (cluster * 2 + 1)) % m;
      return ((offset + h) % m) < tau;
    }
  }
  return false;
}

TripleRef SyntheticKg::TripleAt(uint64_t global_index) const {
  KGACC_DCHECK(global_index < num_triples());
  const auto it =
      std::upper_bound(prefix_.begin(), prefix_.end(), global_index);
  const uint64_t cluster = static_cast<uint64_t>(it - prefix_.begin()) - 1;
  return TripleRef{cluster, global_index - prefix_[cluster]};
}

double SyntheticKg::TrueAccuracy() const {
  if (accuracy_cached_) return cached_accuracy_;
  if (num_triples() > kExactAccuracyLimit) return config_.accuracy;
  uint64_t correct = 0;
  for (uint64_t c = 0; c < num_clusters(); ++c) {
    const uint64_t m = cluster_size(c);
    for (uint64_t o = 0; o < m; ++o) correct += label(c, o) ? 1 : 0;
  }
  cached_accuracy_ =
      static_cast<double>(correct) / static_cast<double>(num_triples());
  accuracy_cached_ = true;
  return cached_accuracy_;
}

}  // namespace kgacc
