#include "kgacc/kg/profiles.h"

namespace kgacc {

DatasetProfile YagoProfile() {
  DatasetProfile p;
  p.name = "YAGO";
  p.num_facts = 1386;
  p.num_clusters = 822;
  p.accuracy = 0.99;
  // Near-perfect accuracy leaves little room for clustering of errors; a
  // small rho keeps the handful of wrong facts mildly concentrated.
  p.label_model = LabelModel::kBetaMixture;
  p.intra_cluster_rho = 0.05;
  p.twcs_second_stage = 3;
  return p;
}

DatasetProfile NellProfile() {
  DatasetProfile p;
  p.name = "NELL";
  p.num_facts = 1860;
  p.num_clusters = 817;
  p.accuracy = 0.91;
  // Automatically extracted KG: extraction errors concentrate per entity.
  p.label_model = LabelModel::kBetaMixture;
  p.intra_cluster_rho = 0.20;
  p.twcs_second_stage = 3;
  return p;
}

DatasetProfile DbpediaProfile() {
  DatasetProfile p;
  p.name = "DBPEDIA";
  p.num_facts = 9344;
  p.num_clusters = 2936;
  p.accuracy = 0.85;
  p.label_model = LabelModel::kBetaMixture;
  p.intra_cluster_rho = 0.20;
  p.twcs_second_stage = 3;
  return p;
}

DatasetProfile FactbenchProfile() {
  DatasetProfile p;
  p.name = "FACTBENCH";
  p.num_facts = 2800;
  p.num_clusters = 1157;
  p.accuracy = 0.54;
  // FACTBENCH negatives are perturbed copies of positives within the same
  // entities, so cluster compositions are balanced around mu (design effect
  // below 1 under cluster sampling).
  p.label_model = LabelModel::kBalanced;
  p.twcs_second_stage = 3;
  return p;
}

DatasetProfile Syn100MProfile(double accuracy) {
  DatasetProfile p;
  p.name = "SYN 100M";
  p.num_facts = 101415011;
  p.num_clusters = 5000000;
  p.accuracy = accuracy;
  p.label_model = LabelModel::kIid;  // "fixed rate" per §5.
  p.twcs_second_stage = 5;
  return p;
}

std::vector<DatasetProfile> SmallProfiles() {
  return {YagoProfile(), NellProfile(), DbpediaProfile(), FactbenchProfile()};
}

Result<SyntheticKg> MakeKg(const DatasetProfile& profile, uint64_t seed) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = profile.num_clusters;
  cfg.mean_cluster_size = profile.AvgClusterSize();
  cfg.size_model = ClusterSizeModel::kGeometric;
  cfg.accuracy = profile.accuracy;
  cfg.label_model = profile.label_model;
  cfg.intra_cluster_rho = profile.intra_cluster_rho;
  cfg.seed = seed;
  cfg.exact_total_triples = profile.num_facts;
  return SyntheticKg::Create(cfg);
}

}  // namespace kgacc
