#include "kgacc/kg/knowledge_graph.h"

#include <algorithm>
#include <numeric>

#include "kgacc/util/check.h"

namespace kgacc {

uint32_t Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

Result<uint32_t> Vocabulary::Find(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) {
    return Status::NotFound("term not in vocabulary: " + std::string(term));
  }
  return it->second;
}

const std::string& Vocabulary::TermOf(uint32_t id) const {
  KGACC_CHECK(id < terms_.size());
  return terms_[id];
}

TripleRef KnowledgeGraph::TripleAt(uint64_t global_index) const {
  KGACC_DCHECK(global_index < num_triples());
  // cluster_begin_ is sorted; find the cluster containing global_index.
  const auto it = std::upper_bound(cluster_begin_.begin(),
                                   cluster_begin_.end(), global_index);
  const uint64_t cluster =
      static_cast<uint64_t>(it - cluster_begin_.begin()) - 1;
  return TripleRef{cluster, global_index - cluster_begin_[cluster]};
}

double KnowledgeGraph::TrueAccuracy() const {
  if (labels_.empty()) return 0.0;
  const uint64_t correct =
      std::accumulate(labels_.begin(), labels_.end(), uint64_t{0});
  return static_cast<double>(correct) / static_cast<double>(labels_.size());
}

void KnowledgeGraphBuilder::Add(std::string_view subject,
                                std::string_view predicate,
                                std::string_view object, bool correct) {
  Triple t;
  t.subject = vocab_.Intern(subject);
  t.predicate = vocab_.Intern(predicate);
  t.object = vocab_.Intern(object);
  triples_.push_back(t);
  labels_.push_back(correct ? 1 : 0);
}

Result<KnowledgeGraph> KnowledgeGraphBuilder::Build() {
  if (triples_.empty()) {
    return Status::FailedPrecondition("cannot build an empty knowledge graph");
  }
  // Sort triples (with their labels) by subject, then predicate/object for a
  // canonical order and duplicate detection.
  std::vector<uint32_t> order(triples_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Triple& ta = triples_[a];
    const Triple& tb = triples_[b];
    if (ta.subject != tb.subject) return ta.subject < tb.subject;
    if (ta.predicate != tb.predicate) return ta.predicate < tb.predicate;
    return ta.object < tb.object;
  });

  KnowledgeGraph kg;
  kg.vocab_ = std::move(vocab_);
  kg.triples_.reserve(triples_.size());
  kg.labels_.reserve(labels_.size());
  kg.cluster_begin_.push_back(0);

  uint32_t prev_subject = 0;
  bool first = true;
  for (size_t i = 0; i < order.size(); ++i) {
    const Triple& t = triples_[order[i]];
    if (!first && t.subject == kg.triples_.back().subject &&
        t.predicate == kg.triples_.back().predicate &&
        t.object == kg.triples_.back().object) {
      return Status::InvalidArgument(
          "duplicate triple: " + kg.vocab_.TermOf(t.subject) + " " +
          kg.vocab_.TermOf(t.predicate) + " " + kg.vocab_.TermOf(t.object));
    }
    if (!first && t.subject != prev_subject) {
      kg.cluster_begin_.push_back(kg.triples_.size());
    }
    prev_subject = t.subject;
    first = false;
    kg.triples_.push_back(t);
    kg.labels_.push_back(labels_[order[i]]);
  }
  kg.cluster_begin_.push_back(kg.triples_.size());

  triples_.clear();
  labels_.clear();
  return kg;
}

}  // namespace kgacc
