#include "kgacc/kg/kg_stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace kgacc {

Result<KgStatistics> ComputeKgStatistics(const KgView& kg,
                                         int twcs_second_stage) {
  constexpr uint64_t kMaxTriples = 64ull * 1000 * 1000;
  if (kg.num_triples() == 0) {
    return Status::FailedPrecondition("empty population");
  }
  if (kg.num_triples() > kMaxTriples) {
    return Status::InvalidArgument(
        "population too large for exact diagnostics; sample it instead");
  }
  if (twcs_second_stage < 1) {
    return Status::InvalidArgument("second-stage size must be >= 1");
  }

  KgStatistics stats;
  stats.num_triples = kg.num_triples();
  stats.num_clusters = kg.num_clusters();
  stats.avg_cluster_size = static_cast<double>(stats.num_triples) /
                           static_cast<double>(stats.num_clusters);

  // Cluster-size moments and Gini (via the sorted-sizes identity).
  std::vector<uint64_t> sizes(stats.num_clusters);
  double size_ss = 0.0;
  for (uint64_t c = 0; c < stats.num_clusters; ++c) {
    sizes[c] = kg.cluster_size(c);
    stats.max_cluster_size = std::max(stats.max_cluster_size, sizes[c]);
    const double d = static_cast<double>(sizes[c]) - stats.avg_cluster_size;
    size_ss += d * d;
  }
  stats.cluster_size_stddev =
      stats.num_clusters > 1
          ? std::sqrt(size_ss / static_cast<double>(stats.num_clusters - 1))
          : 0.0;
  std::sort(sizes.begin(), sizes.end());
  double weighted = 0.0;
  for (uint64_t i = 0; i < sizes.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sizes[i]);
  }
  const double n_c = static_cast<double>(stats.num_clusters);
  const double total = static_cast<double>(stats.num_triples);
  stats.cluster_size_gini = (2.0 * weighted) / (n_c * total) - (n_c + 1) / n_c;

  // Label pass: accuracy + one-way ANOVA components for the ICC.
  uint64_t correct = 0;
  double between_ss = 0.0;   // sum_i M_i (p_i - mu)^2, filled after mu known.
  std::vector<double> cluster_means(stats.num_clusters);
  for (uint64_t c = 0; c < stats.num_clusters; ++c) {
    const uint64_t m = kg.cluster_size(c);
    uint64_t tau = 0;
    for (uint64_t o = 0; o < m; ++o) tau += kg.label(c, o) ? 1 : 0;
    correct += tau;
    cluster_means[c] = static_cast<double>(tau) / static_cast<double>(m);
  }
  stats.accuracy = static_cast<double>(correct) / total;

  // One-way ANOVA ICC with unequal cluster sizes (Donner's n0 correction):
  //   n0 = (N - sum M_i^2 / N) / (k - 1)
  //   MSB = sum M_i (p_i - mu)^2 / (k - 1);  MSW = within SS / (N - k)
  //   icc = (MSB - MSW) / (MSB + (n0 - 1) MSW)
  double within_ss = 0.0;
  double sum_m_sq = 0.0;
  for (uint64_t c = 0; c < stats.num_clusters; ++c) {
    const double m = static_cast<double>(kg.cluster_size(c));
    const double p = cluster_means[c];
    between_ss += m * (p - stats.accuracy) * (p - stats.accuracy);
    within_ss += m * p * (1.0 - p);  // sum over triples of (x - p_i)^2.
    sum_m_sq += m * m;
  }
  if (stats.num_clusters > 1 && total > n_c) {
    const double msb = between_ss / (n_c - 1.0);
    const double msw = within_ss / (total - n_c);
    const double n0 = (total - sum_m_sq / total) / (n_c - 1.0);
    const double denom = msb + (n0 - 1.0) * msw;
    stats.intra_cluster_correlation = denom > 0.0 ? (msb - msw) / denom : 0.0;
  }

  // Kish's deff approximation for TWCS with cap m: deff = 1 + (m_bar-1) icc
  // where m_bar is the expected take per sampled cluster under PPS.
  double expected_take = 0.0;
  for (uint64_t c = 0; c < stats.num_clusters; ++c) {
    const double m = static_cast<double>(kg.cluster_size(c));
    expected_take += (m / total) *
                     std::min(m, static_cast<double>(twcs_second_stage));
  }
  stats.predicted_design_effect =
      1.0 + (expected_take - 1.0) * stats.intra_cluster_correlation;
  return stats;
}

}  // namespace kgacc
