#include "kgacc/sampling/sample.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(AnnotatedSampleTest, StartsEmpty) {
  AnnotatedSample sample;
  EXPECT_TRUE(sample.empty());
  EXPECT_EQ(sample.num_triples(), 0u);
  EXPECT_EQ(sample.num_correct(), 0u);
  EXPECT_EQ(sample.num_distinct_entities(), 0u);
  EXPECT_EQ(sample.num_distinct_triples(), 0u);
}

TEST(AnnotatedSampleTest, AccumulatesUnits) {
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 5, .drawn = 3,
                           .correct = 2});
  sample.Add(AnnotatedUnit{.cluster = 1, .cluster_population = 2, .drawn = 2,
                           .correct = 0});
  EXPECT_EQ(sample.num_triples(), 5u);
  EXPECT_EQ(sample.num_correct(), 2u);
  EXPECT_EQ(sample.units().size(), 2u);
}

TEST(AnnotatedSampleTest, MarkAnnotatedTracksDistinctTriples) {
  AnnotatedSample sample;
  EXPECT_TRUE(sample.MarkAnnotated(TripleRef{3, 1}));
  EXPECT_TRUE(sample.MarkAnnotated(TripleRef{3, 2}));
  EXPECT_FALSE(sample.MarkAnnotated(TripleRef{3, 1}));  // Re-draw is free.
  EXPECT_EQ(sample.num_distinct_triples(), 2u);
  EXPECT_EQ(sample.num_distinct_entities(), 1u);
}

TEST(AnnotatedSampleTest, DistinctEntitiesAcrossClusters) {
  AnnotatedSample sample;
  sample.MarkAnnotated(TripleRef{0, 0});
  sample.MarkAnnotated(TripleRef{1, 0});
  sample.MarkAnnotated(TripleRef{2, 0});
  sample.MarkAnnotated(TripleRef{1, 1});
  EXPECT_EQ(sample.num_distinct_entities(), 3u);
  EXPECT_EQ(sample.num_distinct_triples(), 4u);
}

TEST(AnnotatedSampleTest, KeysDistinguishClusterAndOffset) {
  // (1, 0) and (0, 1) must not collide in the distinct-triple set.
  AnnotatedSample sample;
  EXPECT_TRUE(sample.MarkAnnotated(TripleRef{1, 0}));
  EXPECT_TRUE(sample.MarkAnnotated(TripleRef{0, 1}));
  EXPECT_EQ(sample.num_distinct_triples(), 2u);
}

TEST(AnnotatedSampleTest, LargeClusterIdsSupported) {
  AnnotatedSample sample;
  // SYN 100M scale: cluster ids in the millions.
  EXPECT_TRUE(sample.MarkAnnotated(TripleRef{4999999, 19}));
  EXPECT_FALSE(sample.MarkAnnotated(TripleRef{4999999, 19}));
  EXPECT_EQ(sample.num_distinct_entities(), 1u);
}

}  // namespace
}  // namespace kgacc
