#include "kgacc/sampling/stratified.h"

#include <cmath>

#include "kgacc/estimate/estimators.h"
#include "kgacc/eval/annotator.h"
#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(uint64_t clusters = 1000, uint64_t seed = 13) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.8;
  cfg.seed = seed;
  return *SyntheticKg::Create(cfg);
}

SampleBatch Draw(Sampler& sampler, Rng* rng) {
  SampleBatch batch;
  EXPECT_TRUE(sampler.NextBatch(rng, &batch).ok());
  return batch;
}

TEST(StratifiedSamplerTest, WeightsSumToOne) {
  const auto kg = MakeKg();
  StratifiedSampler sampler(kg, StratifiedConfig{});
  const auto* weights = sampler.stratum_weights();
  ASSERT_NE(weights, nullptr);
  double total = 0.0;
  for (double w : *weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(weights->size(), sampler.num_strata());
}

TEST(StratifiedSamplerTest, UnitsCarryTheirStratum) {
  const auto kg = MakeKg();
  StratifiedConfig config;
  config.size_boundaries = {1, 3};
  StratifiedSampler sampler(kg, config);
  Rng rng(1);
  for (int b = 0; b < 20; ++b) {
    const SampleBatch batch = Draw(sampler, &rng);
    for (const SampledUnit& unit : batch.units()) {
      const uint64_t size = kg.cluster_size(unit.cluster);
      // Recover the expected stratum from the boundaries (non-empty strata
      // here cover all three buckets).
      uint32_t expected = size <= 1 ? 0 : (size <= 3 ? 1 : 2);
      EXPECT_EQ(unit.stratum, expected) << "size " << size;
      EXPECT_EQ(unit.offset_count, 1u);
      EXPECT_LT(batch.offsets(unit)[0], size);
    }
  }
}

TEST(StratifiedSamplerTest, ProportionalAllocationLongRun) {
  const auto kg = MakeKg();
  StratifiedSampler sampler(kg, StratifiedConfig{.batch_size = 10});
  const auto weights = *sampler.stratum_weights();
  Rng rng(2);
  std::vector<double> counts(weights.size(), 0.0);
  double total = 0.0;
  for (int b = 0; b < 2000; ++b) {
    const SampleBatch batch = Draw(sampler, &rng);
    for (const SampledUnit& unit : batch.units()) {
      counts[unit.stratum] += 1.0;
      total += 1.0;
    }
  }
  for (size_t h = 0; h < weights.size(); ++h) {
    EXPECT_NEAR(counts[h] / total, weights[h], 0.01) << "stratum " << h;
  }
}

TEST(StratifiedSamplerTest, EstimatorIsUnbiased) {
  const auto kg = MakeKg(1500, 99);
  StratifiedSampler sampler(kg, StratifiedConfig{.batch_size = 30});
  OracleAnnotator annotator;
  double sum = 0.0;
  const int reps = 300;
  for (int r = 0; r < reps; ++r) {
    Rng rng(500 + r);
    sampler.Reset();
    AnnotatedSample sample;
    for (int b = 0; b < 3; ++b) {
      const SampleBatch batch = Draw(sampler, &rng);
      for (size_t i = 0; i < batch.size(); ++i) {
        const SampledUnit& unit = batch.unit(i);
        AnnotatedUnit annotated;
        annotated.cluster = unit.cluster;
        annotated.cluster_population = unit.cluster_population;
        annotated.stratum = unit.stratum;
        annotated.drawn = 1;
        annotated.correct = annotator.Annotate(
            kg, TripleRef{unit.cluster, batch.offsets(i)[0]}, &rng) ? 1 : 0;
        sample.Add(annotated);
      }
    }
    sum += (*EstimateStratified(sample, *sampler.stratum_weights())).mu;
  }
  EXPECT_NEAR(sum / reps, kg.TrueAccuracy(), 0.015);
}

TEST(EstimateStratifiedTest, WeightedHandComputation) {
  // Two strata with W = {0.25, 0.75}: mu = 0.25*1.0 + 0.75*0.5 = 0.625.
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 1,
                           .stratum = 0, .drawn = 4, .correct = 4});
  sample.Add(AnnotatedUnit{.cluster = 1, .cluster_population = 1,
                           .stratum = 1, .drawn = 4, .correct = 2});
  const auto est = *EstimateStratified(sample, {0.25, 0.75});
  EXPECT_DOUBLE_EQ(est.mu, 0.625);
  // V = 0.25^2 * 0 + 0.75^2 * (0.25 / 4).
  EXPECT_DOUBLE_EQ(est.variance, 0.5625 * 0.0625);
}

TEST(EstimateStratifiedTest, UnobservedStratumImputesPooledMean) {
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 1,
                           .stratum = 0, .drawn = 10, .correct = 8});
  const auto est = *EstimateStratified(sample, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(est.mu, 0.8);  // 0.5*0.8 (observed) + 0.5*0.8 (imputed).
  EXPECT_GT(est.variance, 0.25 * 0.25 * 0.9);  // Worst-case term present.
}

TEST(EstimateStratifiedTest, RejectsBadInputs) {
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 1,
                           .stratum = 3, .drawn = 1, .correct = 1});
  EXPECT_FALSE(EstimateStratified(sample, {0.5, 0.5}).ok());  // Stratum oob.
  AnnotatedSample empty;
  EXPECT_FALSE(EstimateStratified(empty, {1.0}).ok());
  EXPECT_FALSE(Estimate(EstimatorKind::kStratified, sample, nullptr).ok());
}

TEST(StratifiedSamplerTest, StratificationNeverHurtsVersusSrsVariance) {
  // With proportional allocation the stratified variance is at most the
  // SRS variance (up to noise) — check on a population whose accuracy is
  // correlated with cluster size (beta-mixture labels).
  SyntheticKgConfig cfg;
  cfg.num_clusters = 2000;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.8;
  cfg.label_model = LabelModel::kBetaMixture;
  cfg.intra_cluster_rho = 0.3;
  cfg.seed = 7;
  const auto kg = *SyntheticKg::Create(cfg);

  StratifiedSampler sampler(kg, StratifiedConfig{.batch_size = 60});
  OracleAnnotator annotator;
  double strat_ss = 0.0, srs_ss = 0.0;
  const double truth = kg.TrueAccuracy();
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    Rng rng(3000 + r);
    sampler.Reset();
    AnnotatedSample sample;
    const SampleBatch batch = Draw(sampler, &rng);
    uint32_t srs_tau = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      const SampledUnit& unit = batch.unit(i);
      AnnotatedUnit annotated;
      annotated.stratum = unit.stratum;
      annotated.drawn = 1;
      annotated.correct = annotator.Annotate(
          kg, TripleRef{unit.cluster, batch.offsets(i)[0]}, &rng) ? 1 : 0;
      srs_tau += annotated.correct;
      sample.Add(annotated);
    }
    const double strat_mu =
        (*EstimateStratified(sample, *sampler.stratum_weights())).mu;
    const double srs_mu = static_cast<double>(srs_tau) / batch.size();
    strat_ss += (strat_mu - truth) * (strat_mu - truth);
    srs_ss += (srs_mu - truth) * (srs_mu - truth);
  }
  EXPECT_LE(strat_ss, srs_ss * 1.1);
}

}  // namespace
}  // namespace kgacc
