// Round-trip tests for the flat (structure-of-arrays) SampleBatch: every
// sampler must emit well-formed spans over the shared offset buffer, the
// same seed must reproduce the same draws through fresh instances, clones,
// and reused batch objects, and the appending second-stage draw must match
// the allocating reference stream for stream.

#include <memory>
#include <vector>

#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"
#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(uint64_t clusters = 400) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 4.0;
  cfg.accuracy = 0.85;
  cfg.seed = 33;
  return *SyntheticKg::Create(cfg);
}

/// Every design under test, bound to `kg`.
std::vector<std::unique_ptr<Sampler>> AllSamplers(const KgView& kg) {
  std::vector<std::unique_ptr<Sampler>> out;
  out.push_back(std::make_unique<SrsSampler>(kg, SrsConfig{.batch_size = 25}));
  out.push_back(std::make_unique<SrsSampler>(
      kg, SrsConfig{.batch_size = 25, .without_replacement = true}));
  out.push_back(std::make_unique<SystematicSampler>(
      kg, SystematicConfig{.batch_size = 25, .skip = 13}));
  out.push_back(std::make_unique<StratifiedSampler>(
      kg, StratifiedConfig{.batch_size = 25}));
  out.push_back(std::make_unique<TwcsSampler>(
      kg, TwcsConfig{.batch_clusters = 9, .second_stage_size = 3}));
  out.push_back(std::make_unique<WcsSampler>(
      kg, ClusterConfig{.batch_clusters = 6}));
  out.push_back(std::make_unique<RcsSampler>(
      kg, ClusterConfig{.batch_clusters = 6}));
  return out;
}

/// The SoA structural invariant: unit spans tile the shared offset buffer
/// exactly — contiguous, in order, no gaps, no overlap.
void ExpectSpansTileBuffer(const SampleBatch& batch) {
  uint64_t expected_begin = 0;
  for (const SampledUnit& unit : batch.units()) {
    EXPECT_EQ(unit.offset_begin, expected_begin);
    EXPECT_GE(unit.offset_count, 1u);
    expected_begin += unit.offset_count;
  }
  EXPECT_EQ(expected_begin, batch.offset_buffer().size());
}

void ExpectSameBatch(const SampleBatch& a, const SampleBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.unit(i).cluster, b.unit(i).cluster);
    EXPECT_EQ(a.unit(i).cluster_population, b.unit(i).cluster_population);
    EXPECT_EQ(a.unit(i).stratum, b.unit(i).stratum);
    EXPECT_EQ(a.unit(i).offset_begin, b.unit(i).offset_begin);
    EXPECT_EQ(a.unit(i).offset_count, b.unit(i).offset_count);
  }
  EXPECT_EQ(a.offset_buffer(), b.offset_buffer());
}

TEST(SampleBatchSoaTest, EverySamplerEmitsWellFormedSpans) {
  const auto kg = MakeKg();
  for (const auto& sampler : AllSamplers(kg)) {
    SCOPED_TRACE(sampler->name());
    Rng rng(7);
    SampleBatch batch;
    for (int b = 0; b < 5; ++b) {
      ASSERT_TRUE(sampler->NextBatch(&rng, &batch).ok());
      ASSERT_FALSE(batch.empty());
      ExpectSpansTileBuffer(batch);
      for (size_t i = 0; i < batch.size(); ++i) {
        const SampledUnit& unit = batch.unit(i);
        EXPECT_EQ(batch.offsets(i).size(), unit.offset_count);
        for (uint64_t offset : batch.offsets(i)) {
          EXPECT_LT(offset, kg.cluster_size(unit.cluster));
        }
      }
    }
  }
}

TEST(SampleBatchSoaTest, SameSeedSameDrawsThroughReusedAndFreshBatches) {
  // A reused batch object (the session hot path) must replay exactly what
  // fresh per-step batches produce: Clear() semantics may not leak state.
  const auto kg = MakeKg();
  for (const auto& sampler : AllSamplers(kg)) {
    SCOPED_TRACE(sampler->name());
    Rng rng_reused(11), rng_fresh(11);
    sampler->Reset();
    SampleBatch reused;
    std::vector<SampleBatch> fresh_batches;
    std::vector<SampleBatch> reused_batches;
    for (int b = 0; b < 4; ++b) {
      ASSERT_TRUE(sampler->NextBatch(&rng_reused, &reused).ok());
      reused_batches.push_back(reused);  // Copy of the reused object.
    }
    sampler->Reset();
    for (int b = 0; b < 4; ++b) {
      SampleBatch fresh;
      ASSERT_TRUE(sampler->NextBatch(&rng_fresh, &fresh).ok());
      fresh_batches.push_back(std::move(fresh));
    }
    for (int b = 0; b < 4; ++b) {
      SCOPED_TRACE(b);
      ExpectSameBatch(reused_batches[b], fresh_batches[b]);
    }
  }
}

TEST(SampleBatchSoaTest, ClonesReplayThePrototypeStream) {
  const auto kg = MakeKg();
  for (const auto& sampler : AllSamplers(kg)) {
    SCOPED_TRACE(sampler->name());
    auto clone = sampler->Clone();
    ASSERT_NE(clone, nullptr);
    Rng rng_a(21), rng_b(21);
    sampler->Reset();
    SampleBatch a, b;
    for (int step = 0; step < 3; ++step) {
      ASSERT_TRUE(sampler->NextBatch(&rng_a, &a).ok());
      ASSERT_TRUE(clone->NextBatch(&rng_b, &b).ok());
      ExpectSameBatch(a, b);
    }
  }
}

TEST(SampleBatchSoaTest, AppendingFloydDrawMatchesAllocatingReference) {
  // SampleWithoutReplacementAppend must consume the identical Rng stream —
  // and land the identical draw — as the allocating reference, regardless
  // of what already sits in the output buffer.
  for (const uint64_t n : {5ull, 40ull, 1000ull}) {
    for (const uint64_t k : {1ull, 3ull, 5ull}) {
      Rng rng_ref(n * 100 + k), rng_app(n * 100 + k);
      const std::vector<uint64_t> reference =
          SampleWithoutReplacement(n, k, &rng_ref);
      std::vector<uint64_t> appended = {777, 888};  // Pre-existing tail.
      FlatSet64 scratch;
      SampleWithoutReplacementAppend(n, k, &rng_app, &appended, &scratch);
      ASSERT_EQ(appended.size(), 2 + reference.size());
      EXPECT_EQ(appended[0], 777u);
      EXPECT_EQ(appended[1], 888u);
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(appended[2 + i], reference[i]) << n << " " << k;
      }
      // Streams advanced identically.
      EXPECT_EQ(rng_ref.Next(), rng_app.Next());
    }
  }
}

TEST(SampleBatchSoaTest, SecondStageAppendMatchesInto) {
  for (const int m : {0, 2, 3, 10}) {
    Rng rng_into(400 + m), rng_append(400 + m);
    std::vector<uint64_t> into;
    FlatSet64 scratch_into, scratch_append;
    internal::DrawSecondStageInto(7, m, &rng_into, &into, &scratch_into);
    std::vector<uint64_t> appended = {42};
    internal::DrawSecondStageAppend(7, m, &rng_append, &appended,
                                    &scratch_append);
    ASSERT_EQ(appended.size(), 1 + into.size());
    for (size_t i = 0; i < into.size(); ++i) {
      EXPECT_EQ(appended[1 + i], into[i]) << "m=" << m;
    }
    EXPECT_EQ(rng_into.Next(), rng_append.Next());
  }
}

TEST(SampleBatchSoaTest, ProducerApiSealsSpans) {
  SampleBatch batch;
  batch.AddSingleton(3, 9, 1, 4);
  batch.OpenUnit(5, 6, 0);
  batch.AppendOffset(2);
  batch.AppendOffset(0);
  batch.CloseUnit();
  batch.OpenUnit(8, 4, 2);
  batch.AppendIota(4);
  batch.CloseUnit();

  ASSERT_EQ(batch.size(), 3u);
  ExpectSpansTileBuffer(batch);
  EXPECT_EQ(batch.unit(0).cluster, 3u);
  EXPECT_EQ(batch.unit(0).stratum, 1u);
  ASSERT_EQ(batch.offsets(0).size(), 1u);
  EXPECT_EQ(batch.offsets(0)[0], 4u);
  ASSERT_EQ(batch.offsets(1).size(), 2u);
  EXPECT_EQ(batch.offsets(1)[0], 2u);
  EXPECT_EQ(batch.offsets(1)[1], 0u);
  ASSERT_EQ(batch.offsets(2).size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch.offsets(2)[i], i);

  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.offset_buffer().empty());
}

}  // namespace
}  // namespace kgacc
