#include "kgacc/sampling/srs.h"

#include <cmath>
#include <set>

#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(double accuracy = 0.8, uint64_t clusters = 500) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.seed = 9;
  return *SyntheticKg::Create(cfg);
}

TEST(SrsSamplerTest, BatchSizeIsHonored) {
  const auto kg = MakeKg();
  SrsSampler sampler(kg, SrsConfig{.batch_size = 7});
  Rng rng(1);
  const auto batch = *sampler.NextBatch(&rng);
  EXPECT_EQ(batch.size(), 7u);
  for (const SampledUnit& unit : batch) {
    EXPECT_EQ(unit.offsets.size(), 1u);
    EXPECT_LT(unit.cluster, kg.num_clusters());
    EXPECT_LT(unit.offsets[0], kg.cluster_size(unit.cluster));
    EXPECT_EQ(unit.cluster_population, kg.cluster_size(unit.cluster));
  }
}

TEST(SrsSamplerTest, EstimatorKindIsSrs) {
  const auto kg = MakeKg();
  SrsSampler sampler(kg, SrsConfig{});
  EXPECT_EQ(sampler.estimator(), EstimatorKind::kSrs);
  EXPECT_STREQ(sampler.name(), "SRS");
}

TEST(SrsSamplerTest, WithoutReplacementNeverRepeats) {
  const auto kg = MakeKg(0.8, 50);
  SrsSampler sampler(kg,
                     SrsConfig{.batch_size = 10, .without_replacement = true});
  Rng rng(2);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int b = 0; b < 10; ++b) {
    const auto batch = *sampler.NextBatch(&rng);
    for (const SampledUnit& unit : batch) {
      const auto key = std::make_pair(unit.cluster, unit.offsets[0]);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate draw";
    }
  }
}

TEST(SrsSamplerTest, WithoutReplacementExhaustsPopulation) {
  const auto kg = MakeKg(0.8, 20);
  SrsSampler sampler(kg,
                     SrsConfig{.batch_size = 1000, .without_replacement = true});
  Rng rng(3);
  const auto first = *sampler.NextBatch(&rng);
  EXPECT_EQ(first.size(), kg.num_triples());
  const auto second = *sampler.NextBatch(&rng);
  EXPECT_TRUE(second.empty());
}

TEST(SrsSamplerTest, ResetForgetsDrawHistory) {
  const auto kg = MakeKg(0.8, 20);
  SrsSampler sampler(kg,
                     SrsConfig{.batch_size = 1000, .without_replacement = true});
  Rng rng(4);
  ASSERT_FALSE((*sampler.NextBatch(&rng)).empty());
  ASSERT_TRUE((*sampler.NextBatch(&rng)).empty());
  sampler.Reset();
  EXPECT_FALSE((*sampler.NextBatch(&rng)).empty());
}

TEST(SrsSamplerTest, DrawsAreUniformOverTriples) {
  const auto kg = MakeKg(0.8, 50);
  SrsSampler sampler(kg, SrsConfig{.batch_size = 100});
  Rng rng(5);
  // Count hits per cluster; expectation is proportional to cluster size.
  std::vector<double> hits(kg.num_clusters(), 0.0);
  const int batches = 2000;
  for (int b = 0; b < batches; ++b) {
    const SampleBatch batch_ = *sampler.NextBatch(&rng);
    for (const SampledUnit& unit : batch_) {
      hits[unit.cluster] += 1.0;
    }
  }
  const double total = 100.0 * batches;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    const double expected =
        total * static_cast<double>(kg.cluster_size(c)) /
        static_cast<double>(kg.num_triples());
    EXPECT_NEAR(hits[c], expected, 5.0 * std::sqrt(expected) + 10.0)
        << "cluster " << c;
  }
}

TEST(SrsSamplerTest, SameSeedSameDraws) {
  const auto kg = MakeKg();
  SrsSampler sampler(kg, SrsConfig{.batch_size = 20});
  Rng rng1(77), rng2(77);
  const auto a = *sampler.NextBatch(&rng1);
  const auto b = *sampler.NextBatch(&rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cluster, b[i].cluster);
    EXPECT_EQ(a[i].offsets[0], b[i].offsets[0]);
  }
}

}  // namespace
}  // namespace kgacc
