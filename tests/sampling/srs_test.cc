#include "kgacc/sampling/srs.h"

#include <cmath>
#include <set>

#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SampleBatch Draw(Sampler& sampler, Rng* rng) {
  SampleBatch batch;
  EXPECT_TRUE(sampler.NextBatch(rng, &batch).ok());
  return batch;
}

SyntheticKg MakeKg(double accuracy = 0.8, uint64_t clusters = 500) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.seed = 9;
  return *SyntheticKg::Create(cfg);
}

TEST(SrsSamplerTest, BatchSizeIsHonored) {
  const auto kg = MakeKg();
  SrsSampler sampler(kg, SrsConfig{.batch_size = 7});
  Rng rng(1);
  const SampleBatch batch = Draw(sampler, &rng);
  EXPECT_EQ(batch.size(), 7u);
  for (const SampledUnit& unit : batch.units()) {
    EXPECT_EQ(unit.offset_count, 1u);
    EXPECT_LT(unit.cluster, kg.num_clusters());
    EXPECT_LT(batch.offsets(unit)[0], kg.cluster_size(unit.cluster));
    EXPECT_EQ(unit.cluster_population, kg.cluster_size(unit.cluster));
  }
}

TEST(SrsSamplerTest, EstimatorKindIsSrs) {
  const auto kg = MakeKg();
  SrsSampler sampler(kg, SrsConfig{});
  EXPECT_EQ(sampler.estimator(), EstimatorKind::kSrs);
  EXPECT_STREQ(sampler.name(), "SRS");
}

TEST(SrsSamplerTest, WithoutReplacementNeverRepeats) {
  const auto kg = MakeKg(0.8, 50);
  SrsSampler sampler(kg,
                     SrsConfig{.batch_size = 10, .without_replacement = true});
  Rng rng(2);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int b = 0; b < 10; ++b) {
    const SampleBatch batch = Draw(sampler, &rng);
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto key =
          std::make_pair(batch.unit(i).cluster, batch.offsets(i)[0]);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate draw";
    }
  }
}

TEST(SrsSamplerTest, WithoutReplacementExhaustsPopulation) {
  const auto kg = MakeKg(0.8, 20);
  SrsSampler sampler(kg,
                     SrsConfig{.batch_size = 1000, .without_replacement = true});
  Rng rng(3);
  const SampleBatch first = Draw(sampler, &rng);
  EXPECT_EQ(first.size(), kg.num_triples());
  const SampleBatch second = Draw(sampler, &rng);
  EXPECT_TRUE(second.empty());
}

TEST(SrsSamplerTest, ResetForgetsDrawHistory) {
  const auto kg = MakeKg(0.8, 20);
  SrsSampler sampler(kg,
                     SrsConfig{.batch_size = 1000, .without_replacement = true});
  Rng rng(4);
  ASSERT_FALSE(Draw(sampler, &rng).empty());
  ASSERT_TRUE(Draw(sampler, &rng).empty());
  sampler.Reset();
  EXPECT_FALSE(Draw(sampler, &rng).empty());
}

TEST(SrsSamplerTest, DrawsAreUniformOverTriples) {
  const auto kg = MakeKg(0.8, 50);
  SrsSampler sampler(kg, SrsConfig{.batch_size = 100});
  Rng rng(5);
  // Count hits per cluster; expectation is proportional to cluster size.
  std::vector<double> hits(kg.num_clusters(), 0.0);
  const int batches = 2000;
  for (int b = 0; b < batches; ++b) {
    const SampleBatch batch_ = Draw(sampler, &rng);
    for (const SampledUnit& unit : batch_.units()) {
      hits[unit.cluster] += 1.0;
    }
  }
  const double total = 100.0 * batches;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    const double expected =
        total * static_cast<double>(kg.cluster_size(c)) /
        static_cast<double>(kg.num_triples());
    EXPECT_NEAR(hits[c], expected, 5.0 * std::sqrt(expected) + 10.0)
        << "cluster " << c;
  }
}

TEST(SrsSamplerTest, SameSeedSameDraws) {
  const auto kg = MakeKg();
  SrsSampler sampler(kg, SrsConfig{.batch_size = 20});
  Rng rng1(77), rng2(77);
  const SampleBatch a = Draw(sampler, &rng1);
  const SampleBatch b = Draw(sampler, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.unit(i).cluster, b.unit(i).cluster);
    EXPECT_EQ(a.offsets(i)[0], b.offsets(i)[0]);
  }
}

}  // namespace
}  // namespace kgacc
