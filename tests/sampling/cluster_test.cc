#include "kgacc/sampling/cluster.h"

#include <cmath>
#include <set>

#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SampleBatch Draw(Sampler& sampler, Rng* rng) {
  SampleBatch batch;
  EXPECT_TRUE(sampler.NextBatch(rng, &batch).ok());
  return batch;
}

SyntheticKg MakeKg(uint64_t clusters = 300, double mean_size = 4.0) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = mean_size;
  cfg.accuracy = 0.85;
  cfg.seed = 21;
  return *SyntheticKg::Create(cfg);
}

TEST(TwcsSamplerTest, SecondStageCapsAtM) {
  const auto kg = MakeKg();
  TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = 50,
                                     .second_stage_size = 3});
  Rng rng(1);
  const SampleBatch batch = Draw(sampler, &rng);
  ASSERT_EQ(batch.size(), 50u);
  for (const SampledUnit& unit : batch.units()) {
    const uint64_t m_i = kg.cluster_size(unit.cluster);
    const auto offsets = batch.offsets(unit);
    EXPECT_EQ(offsets.size(), std::min<uint64_t>(m_i, 3));
    EXPECT_EQ(unit.cluster_population, m_i);
    // Offsets are distinct and in range (second stage is SRS-WOR).
    std::set<uint64_t> distinct(offsets.begin(), offsets.end());
    EXPECT_EQ(distinct.size(), offsets.size());
    for (uint64_t o : offsets) EXPECT_LT(o, m_i);
  }
}

TEST(TwcsSamplerTest, FirstStageIsPps) {
  // Empirical first-stage frequencies must be proportional to cluster size.
  const auto kg = MakeKg(100, 5.0);
  TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = 100,
                                     .second_stage_size = 3});
  Rng rng(2);
  std::vector<double> hits(kg.num_clusters(), 0.0);
  const int batches = 3000;
  for (int b = 0; b < batches; ++b) {
    const SampleBatch batch_ = Draw(sampler, &rng);
    for (const SampledUnit& unit : batch_.units()) {
      hits[unit.cluster] += 1.0;
    }
  }
  const double total = 100.0 * batches;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    const double expected = total * static_cast<double>(kg.cluster_size(c)) /
                            static_cast<double>(kg.num_triples());
    EXPECT_NEAR(hits[c], expected, 5.0 * std::sqrt(expected) + 20.0)
        << "cluster " << c;
  }
}

TEST(TwcsSamplerTest, EstimatorKindIsCluster) {
  const auto kg = MakeKg();
  TwcsSampler sampler(kg, TwcsConfig{});
  EXPECT_EQ(sampler.estimator(), EstimatorKind::kCluster);
  EXPECT_STREQ(sampler.name(), "TWCS");
}

TEST(TwcsSamplerTest, SingletonClustersContributeOneTriple) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 50;
  cfg.mean_cluster_size = 1.0;  // All singleton clusters.
  cfg.accuracy = 0.5;
  cfg.seed = 5;
  const auto kg = *SyntheticKg::Create(cfg);
  TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = 10,
                                     .second_stage_size = 3});
  Rng rng(3);
  const SampleBatch batch_ = Draw(sampler, &rng);
  for (const SampledUnit& unit : batch_.units()) {
    EXPECT_EQ(unit.offset_count, 1u);
    EXPECT_EQ(batch_.offsets(unit)[0], 0u);
  }
}

TEST(WcsSamplerTest, AnnotatesWholeClusters) {
  const auto kg = MakeKg();
  WcsSampler sampler(kg, ClusterConfig{.batch_clusters = 20});
  Rng rng(4);
  const SampleBatch batch_ = Draw(sampler, &rng);
  for (const SampledUnit& unit : batch_.units()) {
    EXPECT_EQ(unit.offset_count, kg.cluster_size(unit.cluster));
  }
  EXPECT_STREQ(sampler.name(), "WCS");
}

TEST(RcsSamplerTest, UniformOverClusters) {
  const auto kg = MakeKg(50, 4.0);
  RcsSampler sampler(kg, ClusterConfig{.batch_clusters = 100});
  Rng rng(5);
  std::vector<double> hits(kg.num_clusters(), 0.0);
  const int batches = 2000;
  for (int b = 0; b < batches; ++b) {
    const SampleBatch batch_ = Draw(sampler, &rng);
    for (const SampledUnit& unit : batch_.units()) {
      hits[unit.cluster] += 1.0;
    }
  }
  const double expected = 100.0 * batches / static_cast<double>(kg.num_clusters());
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    EXPECT_NEAR(hits[c], expected, 5.0 * std::sqrt(expected)) << c;
  }
  EXPECT_STREQ(sampler.name(), "RCS");
}

TEST(SecondStageTest, DrawsExactlyMinOfSizeAndM) {
  Rng rng(6);
  EXPECT_EQ(internal::DrawSecondStage(10, 3, &rng).size(), 3u);
  EXPECT_EQ(internal::DrawSecondStage(2, 3, &rng).size(), 2u);
  EXPECT_EQ(internal::DrawSecondStage(3, 3, &rng).size(), 3u);
  EXPECT_EQ(internal::DrawSecondStage(5, 0, &rng).size(), 5u);  // Whole.
}

TEST(SecondStageTest, WholeClusterIsIdentityRange) {
  Rng rng(7);
  const auto offsets = internal::DrawSecondStage(4, 0, &rng);
  ASSERT_EQ(offsets.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(offsets[i], i);
}

TEST(SecondStageTest, SecondStageOffsetsAreUnbiased) {
  // Every offset of a size-6 cluster should be drawn equally often at m=2.
  Rng rng(8);
  std::vector<int> counts(6, 0);
  const int reps = 30000;
  for (int r = 0; r < reps; ++r) {
    for (uint64_t o : internal::DrawSecondStage(6, 2, &rng)) ++counts[o];
  }
  const double expected = reps * 2.0 / 6.0;
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(counts[i], expected, 0.05 * expected) << i;
  }
}

TEST(BuildSizeAliasTableTest, ProbabilitiesMatchSizes) {
  const auto kg = MakeKg(10, 3.0);
  const auto table = internal::BuildSizeAliasTable(kg);
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    EXPECT_NEAR(table->probability(c),
                static_cast<double>(kg.cluster_size(c)) /
                    static_cast<double>(kg.num_triples()),
                1e-12);
  }
}

}  // namespace
}  // namespace kgacc
