#include "kgacc/sampling/systematic.h"

#include <set>

#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(uint64_t clusters = 500) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.8;
  cfg.seed = 17;
  return *SyntheticKg::Create(cfg);
}

SampleBatch Draw(Sampler& sampler, Rng* rng) {
  SampleBatch batch;
  EXPECT_TRUE(sampler.NextBatch(rng, &batch).ok());
  return batch;
}

TEST(SystematicSamplerTest, EmitsFixedIntervalDraws) {
  const auto kg = MakeKg();
  SystematicSampler sampler(kg, SystematicConfig{.batch_size = 5, .skip = 7});
  Rng rng(1);
  const SampleBatch batch = Draw(sampler, &rng);
  ASSERT_EQ(batch.size(), 5u);
  // Recover global indices and check the skip spacing within the pass.
  std::vector<uint64_t> globals;
  for (size_t i = 0; i < batch.size(); ++i) {
    const SampledUnit& unit = batch.unit(i);
    uint64_t global = batch.offsets(i)[0];
    for (uint64_t c = 0; c < unit.cluster; ++c) global += kg.cluster_size(c);
    globals.push_back(global);
  }
  for (size_t i = 1; i < globals.size(); ++i) {
    EXPECT_EQ(globals[i] - globals[i - 1], 7u) << i;
  }
}

TEST(SystematicSamplerTest, WrapsWithFreshPhase) {
  const auto kg = MakeKg(10);  // ~30 triples; skip sweeps fast.
  SystematicSampler sampler(kg,
                            SystematicConfig{.batch_size = 50, .skip = 7});
  Rng rng(2);
  const SampleBatch batch = Draw(sampler, &rng);
  EXPECT_EQ(batch.size(), 50u);  // Wrapping keeps batches full.
  for (const SampledUnit& unit : batch.units()) {
    EXPECT_LT(unit.cluster, kg.num_clusters());
    EXPECT_LT(batch.offsets(unit)[0], kg.cluster_size(unit.cluster));
  }
}

TEST(SystematicSamplerTest, LongRunFrequenciesAreUniform) {
  const auto kg = MakeKg(50);
  SystematicSampler sampler(kg,
                            SystematicConfig{.batch_size = 40, .skip = 11});
  Rng rng(3);
  std::vector<double> hits(kg.num_clusters(), 0.0);
  double total = 0.0;
  for (int b = 0; b < 2000; ++b) {
    const SampleBatch batch = Draw(sampler, &rng);
    for (const SampledUnit& unit : batch.units()) {
      hits[unit.cluster] += 1.0;
      total += 1.0;
    }
  }
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    const double expected = total * kg.cluster_size(c) / kg.num_triples();
    EXPECT_NEAR(hits[c], expected, 0.15 * expected + 25.0) << c;
  }
}

TEST(SystematicSamplerTest, ResetDrawsNewStart) {
  const auto kg = MakeKg();
  SystematicSampler sampler(kg, SystematicConfig{.batch_size = 1, .skip = 5});
  Rng rng(4);
  const SampleBatch first = Draw(sampler, &rng);
  sampler.Reset();
  const SampleBatch second = Draw(sampler, &rng);
  // Different random phases with overwhelming probability (skip = 5).
  // We only require both to be valid draws.
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
}

TEST(SystematicSamplerTest, UsesSrsEstimator) {
  const auto kg = MakeKg();
  SystematicSampler sampler(kg, SystematicConfig{});
  EXPECT_EQ(sampler.estimator(), EstimatorKind::kSrs);
  EXPECT_STREQ(sampler.name(), "SYS");
  EXPECT_EQ(sampler.stratum_weights(), nullptr);
}

}  // namespace
}  // namespace kgacc
