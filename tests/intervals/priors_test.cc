#include "kgacc/intervals/priors.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(PriorsTest, StandardUninformativeParameters) {
  EXPECT_NEAR(KermanPrior().a, 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(KermanPrior().b, 1.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(JeffreysPrior().a, 0.5);
  EXPECT_DOUBLE_EQ(JeffreysPrior().b, 0.5);
  EXPECT_DOUBLE_EQ(UniformPrior().a, 1.0);
  EXPECT_DOUBLE_EQ(UniformPrior().b, 1.0);
}

TEST(PriorsTest, UninformativeFlag) {
  EXPECT_TRUE(KermanPrior().IsUninformative());
  EXPECT_TRUE(JeffreysPrior().IsUninformative());
  EXPECT_TRUE(UniformPrior().IsUninformative());
  EXPECT_FALSE((*InformativePrior(0.8, 100)).IsUninformative());
  EXPECT_FALSE((BetaPrior{"asym", 0.5, 1.0}).IsUninformative());
}

TEST(PriorsTest, DefaultTrioOrderAndNames) {
  const auto priors = DefaultUninformativePriors();
  ASSERT_EQ(priors.size(), 3u);
  EXPECT_EQ(priors[0].name, "Kerman");
  EXPECT_EQ(priors[1].name, "Jeffreys");
  EXPECT_EQ(priors[2].name, "Uniform");
}

TEST(PriorsTest, ConjugateUpdate) {
  // Beta(1,1) + (tau=8, n=10) -> Beta(9, 3).
  const auto posterior = *UniformPrior().Posterior(8, 10);
  EXPECT_DOUBLE_EQ(posterior.a(), 9.0);
  EXPECT_DOUBLE_EQ(posterior.b(), 3.0);
}

TEST(PriorsTest, FractionalEffectiveCountsSupported) {
  const auto posterior = *JeffreysPrior().Posterior(12.7, 17.3);
  EXPECT_DOUBLE_EQ(posterior.a(), 13.2);
  EXPECT_NEAR(posterior.b(), 5.1, 1e-12);
}

TEST(PriorsTest, PosteriorRejectsInconsistentCounts) {
  EXPECT_FALSE(UniformPrior().Posterior(11, 10).ok());
  EXPECT_FALSE(UniformPrior().Posterior(-1, 10).ok());
}

TEST(PriorsTest, ZeroDataPosteriorIsThePrior) {
  const auto posterior = *KermanPrior().Posterior(0, 0);
  EXPECT_NEAR(posterior.a(), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(posterior.b(), 1.0 / 3.0, 1e-15);
}

TEST(InformativePriorTest, EncodesAccuracyTimesWeight) {
  // Example 2: accuracy 0.80, weight 100 -> Beta(80, 20).
  const auto prior = *InformativePrior(0.80, 100.0);
  EXPECT_DOUBLE_EQ(prior.a, 80.0);
  EXPECT_DOUBLE_EQ(prior.b, 20.0);
  const auto prior2 = *InformativePrior(0.90, 100.0);
  EXPECT_DOUBLE_EQ(prior2.a, 90.0);
  EXPECT_DOUBLE_EQ(prior2.b, 10.0);
}

TEST(InformativePriorTest, PriorMeanMatchesAccuracy) {
  const auto prior = *InformativePrior(0.73, 50.0);
  const auto dist = *BetaDistribution::Create(prior.a, prior.b);
  EXPECT_NEAR(dist.Mean(), 0.73, 1e-12);
}

TEST(InformativePriorTest, CustomNameIsKept) {
  const auto prior = *InformativePrior(0.8, 10.0, "sister-kg");
  EXPECT_EQ(prior.name, "sister-kg");
}

TEST(InformativePriorTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(InformativePrior(0.0, 10.0).ok());
  EXPECT_FALSE(InformativePrior(1.0, 10.0).ok());
  EXPECT_FALSE(InformativePrior(0.5, 0.0).ok());
  EXPECT_FALSE(InformativePrior(0.5, -5.0).ok());
}

}  // namespace
}  // namespace kgacc
