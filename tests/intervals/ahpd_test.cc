#include "kgacc/intervals/ahpd.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(AhpdTest, RequiresAtLeastOnePrior) {
  EXPECT_FALSE(AhpdSelect({}, 10, 20, 0.05).ok());
}

TEST(AhpdTest, SinglePriorEqualsPlainHpd) {
  const std::vector<BetaPrior> priors = {UniformPrior()};
  const auto choice = *AhpdSelect(priors, 25, 30, 0.05);
  const auto posterior = *UniformPrior().Posterior(25, 30);
  const auto hpd = *HpdInterval(posterior, 0.05);
  EXPECT_DOUBLE_EQ(choice.interval.lower, hpd.interval.lower);
  EXPECT_DOUBLE_EQ(choice.interval.upper, hpd.interval.upper);
  EXPECT_EQ(choice.prior_index, 0u);
}

TEST(AhpdTest, PicksTheShortestCandidate) {
  const auto priors = DefaultUninformativePriors();
  const auto choice = *AhpdSelect(priors, 28, 30, 0.05);
  ASSERT_EQ(choice.candidates.size(), 3u);
  for (const Interval& candidate : choice.candidates) {
    EXPECT_LE(choice.interval.Width(), candidate.Width() + 1e-12);
  }
  EXPECT_DOUBLE_EQ(choice.interval.Width(),
                   choice.candidates[choice.prior_index].Width());
}

TEST(AhpdTest, KermanWinsInExtremeRegion) {
  // All-correct outcome (tau = n): extreme accuracy region — Kerman's
  // Beta(1/3,1/3) yields the shortest HPD (§4.4 / Fig. 3).
  const auto priors = DefaultUninformativePriors();
  const auto choice = *AhpdSelect(priors, 30, 30, 0.05);
  EXPECT_EQ(priors[choice.prior_index].name, "Kerman");
}

TEST(AhpdTest, UniformWinsInCentralRegion) {
  // Balanced outcome: central region — the Uniform prior is optimal.
  const auto priors = DefaultUninformativePriors();
  const auto choice = *AhpdSelect(priors, 15, 30, 0.05);
  EXPECT_EQ(priors[choice.prior_index].name, "Uniform");
}

TEST(AhpdTest, JeffreysNeverWinsAcrossOutcomeSweep) {
  // §4.4: Jeffreys is a trade-off and is never the most efficient choice.
  const auto priors = DefaultUninformativePriors();
  int jeffreys_wins = 0;
  for (int tau = 0; tau <= 30; ++tau) {
    const auto choice = *AhpdSelect(priors, tau, 30, 0.05);
    if (priors[choice.prior_index].name == "Jeffreys") ++jeffreys_wins;
  }
  EXPECT_EQ(jeffreys_wins, 0);
}

TEST(AhpdTest, LimitingCasesAreHandled) {
  const auto priors = DefaultUninformativePriors();
  const auto all_correct = *AhpdSelect(priors, 30, 30, 0.05);
  EXPECT_EQ(all_correct.shape, BetaShape::kIncreasing);
  EXPECT_DOUBLE_EQ(all_correct.interval.upper, 1.0);

  const auto none_correct = *AhpdSelect(priors, 0, 30, 0.05);
  EXPECT_EQ(none_correct.shape, BetaShape::kDecreasing);
  EXPECT_DOUBLE_EQ(none_correct.interval.lower, 0.0);
}

TEST(AhpdTest, InformativePriorsShrinkTheInterval) {
  // Example 2 regime: a well-placed informative prior beats the trio.
  const std::vector<BetaPrior> informative = {*InformativePrior(0.85, 100.0)};
  const auto inf = *AhpdSelect(informative, 17, 20, 0.05);
  const auto uninf = *AhpdSelect(DefaultUninformativePriors(), 17, 20, 0.05);
  EXPECT_LT(inf.interval.Width(), uninf.interval.Width());
}

TEST(AhpdTest, MixedPriorSetSelectsBestOverall) {
  // aHPD with uninformative + informative priors picks the informative one
  // when the data agree with it.
  std::vector<BetaPrior> priors = DefaultUninformativePriors();
  priors.push_back(*InformativePrior(0.9, 100.0));
  const auto choice = *AhpdSelect(priors, 27, 30, 0.05);
  EXPECT_EQ(choice.prior_index, 3u);
}

TEST(AhpdTest, FractionalEffectiveSamplesWork) {
  const auto choice = AhpdSelect(DefaultUninformativePriors(), 24.6, 31.2,
                                 0.05);
  ASSERT_TRUE(choice.ok());
  EXPECT_GT(choice->interval.Width(), 0.0);
}

TEST(AhpdParallelTest, MatchesSerialExactly) {
  ThreadPool pool(4);
  const auto priors = DefaultUninformativePriors();
  for (const double tau : {0.0, 12.0, 27.5, 30.0}) {
    const auto serial = *AhpdSelect(priors, tau, 30, 0.05);
    const auto parallel = *AhpdSelectParallel(priors, tau, 30, 0.05, &pool);
    EXPECT_DOUBLE_EQ(parallel.interval.lower, serial.interval.lower) << tau;
    EXPECT_DOUBLE_EQ(parallel.interval.upper, serial.interval.upper) << tau;
    EXPECT_EQ(parallel.prior_index, serial.prior_index) << tau;
    EXPECT_EQ(parallel.candidates.size(), serial.candidates.size());
  }
}

TEST(AhpdParallelTest, NullPoolFallsBackToSerial) {
  const auto priors = DefaultUninformativePriors();
  const auto choice = AhpdSelectParallel(priors, 20, 30, 0.05, nullptr);
  ASSERT_TRUE(choice.ok());
  const auto serial = *AhpdSelect(priors, 20, 30, 0.05);
  EXPECT_DOUBLE_EQ(choice->interval.lower, serial.interval.lower);
}

TEST(AhpdParallelTest, ManyPriorsAllEvaluated) {
  ThreadPool pool(3);
  std::vector<BetaPrior> priors = DefaultUninformativePriors();
  for (int i = 1; i <= 12; ++i) {
    priors.push_back(*InformativePrior(i / 13.0, 20.0));
  }
  const auto choice = *AhpdSelectParallel(priors, 25, 30, 0.05, &pool);
  EXPECT_EQ(choice.candidates.size(), priors.size());
  for (const Interval& candidate : choice.candidates) {
    EXPECT_GE(choice.interval.Width(), 0.0);
    EXPECT_LE(choice.interval.Width(), candidate.Width() + 1e-12);
  }
}

TEST(AhpdParallelTest, RejectsEmptyPriorSet) {
  ThreadPool pool(2);
  EXPECT_FALSE(AhpdSelectParallel({}, 10, 20, 0.05, &pool).ok());
}

TEST(AhpdTest, WidthShrinksMonotonicallyWithData) {
  const auto priors = DefaultUninformativePriors();
  double prev = 1.0;
  for (const double n : {10.0, 30.0, 100.0, 300.0}) {
    const auto choice = *AhpdSelect(priors, 0.9 * n, n, 0.05);
    EXPECT_LT(choice.interval.Width(), prev) << n;
    prev = choice.interval.Width();
  }
}

}  // namespace
}  // namespace kgacc
