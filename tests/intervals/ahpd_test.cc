#include "kgacc/intervals/ahpd.h"

#include <future>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(AhpdTest, RequiresAtLeastOnePrior) {
  EXPECT_FALSE(AhpdSelect({}, 10, 20, 0.05).ok());
}

TEST(AhpdTest, SinglePriorEqualsPlainHpd) {
  const std::vector<BetaPrior> priors = {UniformPrior()};
  const auto choice = *AhpdSelect(priors, 25, 30, 0.05);
  const auto posterior = *UniformPrior().Posterior(25, 30);
  const auto hpd = *HpdInterval(posterior, 0.05);
  EXPECT_DOUBLE_EQ(choice.interval.lower, hpd.interval.lower);
  EXPECT_DOUBLE_EQ(choice.interval.upper, hpd.interval.upper);
  EXPECT_EQ(choice.prior_index, 0u);
}

TEST(AhpdTest, PicksTheShortestCandidate) {
  const auto priors = DefaultUninformativePriors();
  const auto choice = *AhpdSelect(priors, 28, 30, 0.05);
  ASSERT_EQ(choice.candidates.size(), 3u);
  for (const Interval& candidate : choice.candidates) {
    EXPECT_LE(choice.interval.Width(), candidate.Width() + 1e-12);
  }
  EXPECT_DOUBLE_EQ(choice.interval.Width(),
                   choice.candidates[choice.prior_index].Width());
}

TEST(AhpdTest, KermanWinsInExtremeRegion) {
  // All-correct outcome (tau = n): extreme accuracy region — Kerman's
  // Beta(1/3,1/3) yields the shortest HPD (§4.4 / Fig. 3).
  const auto priors = DefaultUninformativePriors();
  const auto choice = *AhpdSelect(priors, 30, 30, 0.05);
  EXPECT_EQ(priors[choice.prior_index].name, "Kerman");
}

TEST(AhpdTest, UniformWinsInCentralRegion) {
  // Balanced outcome: central region — the Uniform prior is optimal.
  const auto priors = DefaultUninformativePriors();
  const auto choice = *AhpdSelect(priors, 15, 30, 0.05);
  EXPECT_EQ(priors[choice.prior_index].name, "Uniform");
}

TEST(AhpdTest, JeffreysNeverWinsAcrossOutcomeSweep) {
  // §4.4: Jeffreys is a trade-off and is never the most efficient choice.
  const auto priors = DefaultUninformativePriors();
  int jeffreys_wins = 0;
  for (int tau = 0; tau <= 30; ++tau) {
    const auto choice = *AhpdSelect(priors, tau, 30, 0.05);
    if (priors[choice.prior_index].name == "Jeffreys") ++jeffreys_wins;
  }
  EXPECT_EQ(jeffreys_wins, 0);
}

TEST(AhpdTest, LimitingCasesAreHandled) {
  const auto priors = DefaultUninformativePriors();
  const auto all_correct = *AhpdSelect(priors, 30, 30, 0.05);
  EXPECT_EQ(all_correct.shape, BetaShape::kIncreasing);
  EXPECT_DOUBLE_EQ(all_correct.interval.upper, 1.0);

  const auto none_correct = *AhpdSelect(priors, 0, 30, 0.05);
  EXPECT_EQ(none_correct.shape, BetaShape::kDecreasing);
  EXPECT_DOUBLE_EQ(none_correct.interval.lower, 0.0);
}

TEST(AhpdTest, InformativePriorsShrinkTheInterval) {
  // Example 2 regime: a well-placed informative prior beats the trio.
  const std::vector<BetaPrior> informative = {*InformativePrior(0.85, 100.0)};
  const auto inf = *AhpdSelect(informative, 17, 20, 0.05);
  const auto uninf = *AhpdSelect(DefaultUninformativePriors(), 17, 20, 0.05);
  EXPECT_LT(inf.interval.Width(), uninf.interval.Width());
}

TEST(AhpdTest, MixedPriorSetSelectsBestOverall) {
  // aHPD with uninformative + informative priors picks the informative one
  // when the data agree with it.
  std::vector<BetaPrior> priors = DefaultUninformativePriors();
  priors.push_back(*InformativePrior(0.9, 100.0));
  const auto choice = *AhpdSelect(priors, 27, 30, 0.05);
  EXPECT_EQ(choice.prior_index, 3u);
}

TEST(AhpdTest, FractionalEffectiveSamplesWork) {
  const auto choice = AhpdSelect(DefaultUninformativePriors(), 24.6, 31.2,
                                 0.05);
  ASSERT_TRUE(choice.ok());
  EXPECT_GT(choice->interval.Width(), 0.0);
}

TEST(AhpdParallelTest, MatchesSerialExactly) {
  ThreadPool pool(4);
  const auto priors = DefaultUninformativePriors();
  for (const double tau : {0.0, 12.0, 27.5, 30.0}) {
    const auto serial = *AhpdSelect(priors, tau, 30, 0.05);
    const auto parallel = *AhpdSelectParallel(priors, tau, 30, 0.05, &pool);
    EXPECT_DOUBLE_EQ(parallel.interval.lower, serial.interval.lower) << tau;
    EXPECT_DOUBLE_EQ(parallel.interval.upper, serial.interval.upper) << tau;
    EXPECT_EQ(parallel.prior_index, serial.prior_index) << tau;
    EXPECT_EQ(parallel.candidates.size(), serial.candidates.size());
  }
}

TEST(AhpdParallelTest, NullPoolFallsBackToSerial) {
  const auto priors = DefaultUninformativePriors();
  const auto choice = AhpdSelectParallel(priors, 20, 30, 0.05, nullptr);
  ASSERT_TRUE(choice.ok());
  const auto serial = *AhpdSelect(priors, 20, 30, 0.05);
  EXPECT_DOUBLE_EQ(choice->interval.lower, serial.interval.lower);
}

TEST(AhpdParallelTest, ManyPriorsAllEvaluated) {
  ThreadPool pool(3);
  std::vector<BetaPrior> priors = DefaultUninformativePriors();
  for (int i = 1; i <= 12; ++i) {
    priors.push_back(*InformativePrior(i / 13.0, 20.0));
  }
  const auto choice = *AhpdSelectParallel(priors, 25, 30, 0.05, &pool);
  EXPECT_EQ(choice.candidates.size(), priors.size());
  for (const Interval& candidate : choice.candidates) {
    EXPECT_GE(choice.interval.Width(), 0.0);
    EXPECT_LE(choice.interval.Width(), candidate.Width() + 1e-12);
  }
}

TEST(AhpdParallelTest, RejectsEmptyPriorSet) {
  ThreadPool pool(2);
  EXPECT_FALSE(AhpdSelectParallel({}, 10, 20, 0.05, &pool).ok());
}

TEST(AhpdParallelTest, DoesNotWaitForUnrelatedTasksOnTheSamePool) {
  // Regression: the old implementation used pool->Wait(), which blocks on
  // *everything* in flight — here an unrelated task that only finishes
  // after we let it. With per-task futures the selection returns first;
  // with Wait() this test would hang.
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([gate] { gate.wait(); });

  const auto priors = DefaultUninformativePriors();
  const auto serial = *AhpdSelect(priors, 25, 30, 0.05);
  const auto parallel = AhpdSelectParallel(priors, 25, 30, 0.05, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_DOUBLE_EQ(parallel->interval.lower, serial.interval.lower);
  EXPECT_DOUBLE_EQ(parallel->interval.upper, serial.interval.upper);
  EXPECT_EQ(parallel->prior_index, serial.prior_index);

  release.set_value();  // Only now may the unrelated task finish.
  pool.Wait();
}

TEST(AhpdWarmTest, WarmStartedSelectionTracksColdSelection) {
  // Simulate an iterative audit: tau/n grow batch by batch; the warm state
  // carries each step's solution into the next solve.
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState warm;
  for (int step = 1; step <= 12; ++step) {
    const double n = 10.0 * step;
    const double tau = 0.87 * n;
    const auto cold = *AhpdSelect(priors, tau, n, 0.05);
    const auto warmed = *AhpdSelect(priors, tau, n, 0.05, {}, &warm);
    EXPECT_NEAR(warmed.interval.lower, cold.interval.lower, 5e-7) << step;
    EXPECT_NEAR(warmed.interval.upper, cold.interval.upper, 5e-7) << step;
    EXPECT_EQ(warmed.prior_index, cold.prior_index) << step;
  }
}

TEST(AhpdWarmTest, UnchangedInputsAreServedFromTheCarry) {
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState warm;
  const auto first = *AhpdSelect(priors, 26, 30, 0.05, {}, &warm);
  ASSERT_EQ(warm.priors.size(), priors.size());
  for (const auto& state : warm.priors) EXPECT_TRUE(state.valid);
  // Same (tau, n, alpha): the carried solutions are returned bit for bit.
  const auto second = *AhpdSelect(priors, 26, 30, 0.05, {}, &warm);
  EXPECT_EQ(second.interval.lower, first.interval.lower);
  EXPECT_EQ(second.interval.upper, first.interval.upper);
  EXPECT_EQ(second.prior_index, first.prior_index);
}

TEST(AhpdWarmTest, CarryCrossesLimitingCaseBoundaries) {
  // tau = n (kIncreasing) then an interior outcome: the carried interval
  // touches 1.0 and must still seed a successful unimodal solve.
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState warm;
  const auto extreme = *AhpdSelect(priors, 30, 30, 0.05, {}, &warm);
  EXPECT_DOUBLE_EQ(extreme.interval.upper, 1.0);
  const auto interior = AhpdSelect(priors, 55, 70, 0.05, {}, &warm);
  ASSERT_TRUE(interior.ok());
  const auto cold = *AhpdSelect(priors, 55, 70, 0.05);
  EXPECT_NEAR(interior->interval.lower, cold.interval.lower, 5e-7);
  EXPECT_NEAR(interior->interval.upper, cold.interval.upper, 5e-7);
}

TEST(AhpdWarmTest, PriorSetSizeChangeInvalidatesTheCarry) {
  AhpdWarmState warm;
  auto priors = DefaultUninformativePriors();
  ASSERT_TRUE(AhpdSelect(priors, 20, 30, 0.05, {}, &warm).ok());
  EXPECT_EQ(warm.priors.size(), 3u);
  priors.push_back(*InformativePrior(0.9, 50.0));
  ASSERT_TRUE(AhpdSelect(priors, 22, 33, 0.05, {}, &warm).ok());
  EXPECT_EQ(warm.priors.size(), 4u);
  for (const auto& state : warm.priors) EXPECT_TRUE(state.valid);
}

TEST(AhpdWarmTest, ParallelWarmMatchesSerialWarm) {
  ThreadPool pool(3);
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState serial_warm, parallel_warm;
  for (int step = 1; step <= 6; ++step) {
    const double n = 15.0 * step;
    const double tau = 0.8 * n;
    const auto serial =
        *AhpdSelect(priors, tau, n, 0.05, {}, &serial_warm);
    const auto parallel = *AhpdSelectParallel(priors, tau, n, 0.05, &pool, {},
                                              &parallel_warm);
    EXPECT_DOUBLE_EQ(parallel.interval.lower, serial.interval.lower) << step;
    EXPECT_DOUBLE_EQ(parallel.interval.upper, serial.interval.upper) << step;
    EXPECT_EQ(parallel.prior_index, serial.prior_index) << step;
  }
}

TEST(AhpdWarmTest, CarriedHessianMatchesIdentityRestart) {
  // Force the SQP path (Newton disabled) through an iterative audit: the
  // warm state then carries each solve's BFGS Lagrangian model into the
  // next step's solver. Carried-Hessian solves must land on the same
  // intervals as identity-restart (cold) solves.
  const auto priors = DefaultUninformativePriors();
  HpdOptions sqp_only;
  sqp_only.use_newton = false;
  AhpdWarmState warm;
  for (int step = 1; step <= 10; ++step) {
    const double n = 12.0 * step;
    const double tau = 0.82 * n;
    const auto cold = *AhpdSelect(priors, tau, n, 0.05, sqp_only);
    const auto warmed = *AhpdSelect(priors, tau, n, 0.05, sqp_only, &warm);
    EXPECT_NEAR(warmed.interval.lower, cold.interval.lower, 1e-9) << step;
    EXPECT_NEAR(warmed.interval.upper, cold.interval.upper, 1e-9) << step;
    EXPECT_EQ(warmed.prior_index, cold.prior_index) << step;
  }
  // The carry actually holds curvature after SQP solves.
  for (const auto& state : warm.priors) {
    EXPECT_TRUE(state.valid);
    EXPECT_TRUE(state.has_hessian);
  }
}

TEST(AhpdWarmTest, HessianCarrySurvivesNewtonSteps) {
  // Default path: Newton solves build no BFGS model, but a previously
  // carried SQP Hessian must survive them so a later fallback does not
  // restart from identity.
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState warm;
  HpdOptions sqp_only;
  sqp_only.use_newton = false;
  ASSERT_TRUE(AhpdSelect(priors, 20, 30, 0.05, sqp_only, &warm).ok());
  for (const auto& state : warm.priors) ASSERT_TRUE(state.has_hessian);
  // Two default (Newton-path) steps.
  ASSERT_TRUE(AhpdSelect(priors, 28, 40, 0.05, {}, &warm).ok());
  ASSERT_TRUE(AhpdSelect(priors, 36, 50, 0.05, {}, &warm).ok());
  for (const auto& state : warm.priors) {
    EXPECT_TRUE(state.has_hessian);
    EXPECT_EQ(state.hpd.path, HpdPath::kNewton);
  }
}

TEST(AhpdWarmTest, CarryIsUsedUnconditionallyAcrossPosteriorJumps) {
  // The posterior-mean safety gate is gone: a carried interval seeds the
  // solvers even when the new posterior mean has left it (here the
  // accuracy rate jumps 0.9 -> 0.3 between steps), and the warm result
  // still matches the cold one.
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState warm;
  ASSERT_TRUE(AhpdSelect(priors, 90, 100, 0.05, {}, &warm).ok());
  const auto cold = *AhpdSelect(priors, 60, 200, 0.05);
  const auto warmed = *AhpdSelect(priors, 60, 200, 0.05, {}, &warm);
  EXPECT_NEAR(warmed.interval.lower, cold.interval.lower, 5e-7);
  EXPECT_NEAR(warmed.interval.upper, cold.interval.upper, 5e-7);
  EXPECT_EQ(warmed.prior_index, cold.prior_index);
}

TEST(AhpdWarmTest, CacheHitsAreCounted) {
  ResetThreadHpdStats();
  const auto priors = DefaultUninformativePriors();
  AhpdWarmState warm;
  ASSERT_TRUE(AhpdSelect(priors, 26, 30, 0.05, {}, &warm).ok());
  EXPECT_EQ(ThreadHpdStatsSnapshot().warm_cache_hits, 0u);
  ASSERT_TRUE(AhpdSelect(priors, 26, 30, 0.05, {}, &warm).ok());
  EXPECT_EQ(ThreadHpdStatsSnapshot().warm_cache_hits, priors.size());
  ResetThreadHpdStats();
}

TEST(AhpdTest, WidthShrinksMonotonicallyWithData) {
  const auto priors = DefaultUninformativePriors();
  double prev = 1.0;
  for (const double n : {10.0, 30.0, 100.0, 300.0}) {
    const auto choice = *AhpdSelect(priors, 0.9 * n, n, 0.05);
    EXPECT_LT(choice.interval.Width(), prev) << n;
    prev = choice.interval.Width();
  }
}

}  // namespace
}  // namespace kgacc
