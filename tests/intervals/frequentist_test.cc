#include "kgacc/intervals/frequentist.h"

#include <cmath>

#include "kgacc/math/binomial.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

AccuracyEstimate SrsEstimate(double mu, uint64_t n) {
  AccuracyEstimate est;
  est.mu = mu;
  est.n = n;
  est.tau = static_cast<uint64_t>(std::llround(mu * n));
  est.num_units = n;
  est.variance = mu * (1.0 - mu) / static_cast<double>(n);
  return est;
}

TEST(WaldIntervalTest, MatchesHandComputedValue) {
  // n=100, mu=0.5: 0.5 +- 1.96 * 0.05.
  const auto ci = *WaldInterval(SrsEstimate(0.5, 100), 0.05);
  EXPECT_NEAR(ci.lower, 0.5 - 1.959963984540054 * 0.05, 1e-9);
  EXPECT_NEAR(ci.upper, 0.5 + 1.959963984540054 * 0.05, 1e-9);
}

TEST(WaldIntervalTest, ZeroVarianceCollapsesToPoint) {
  // The Example 1 pathology: all-correct sample gives a zero-width CI.
  const auto ci = *WaldInterval(SrsEstimate(1.0, 30), 0.05);
  EXPECT_DOUBLE_EQ(ci.lower, 1.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
  EXPECT_DOUBLE_EQ(ci.Width(), 0.0);
  EXPECT_DOUBLE_EQ(ci.Moe(), 0.0);
}

TEST(WaldIntervalTest, OvershootsNearBoundary) {
  // mu = 0.95, n = 20: the upper bound exceeds 1 — the documented Wald flaw.
  const auto ci = *WaldInterval(SrsEstimate(0.95, 20), 0.05);
  EXPECT_GT(ci.upper, 1.0);
  const auto clamped = ci.ClampedToUnit();
  EXPECT_DOUBLE_EQ(clamped.upper, 1.0);
}

TEST(WaldIntervalTest, UsesDesignVarianceDirectly) {
  AccuracyEstimate est = SrsEstimate(0.5, 100);
  est.variance = 0.01;  // Cluster-design variance, larger than SRS.
  const auto ci = *WaldInterval(est, 0.05);
  EXPECT_NEAR(ci.Width(), 2.0 * 1.959963984540054 * 0.1, 1e-9);
}

TEST(WaldIntervalTest, RejectsEmptySample) {
  AccuracyEstimate empty;
  EXPECT_FALSE(WaldInterval(empty, 0.05).ok());
}

TEST(WilsonIntervalTest, MatchesHandComputedValue) {
  // n=100, mu=0.5, alpha=0.05: [0.40383, 0.59617].
  const auto ci = *WilsonInterval(0.5, 100, 0.05);
  EXPECT_NEAR(ci.lower, 0.40383, 2e-5);
  EXPECT_NEAR(ci.upper, 0.59617, 2e-5);
}

TEST(WilsonIntervalTest, NeverDegenerateAtBoundary) {
  // Unlike Wald, Wilson keeps positive width at mu = 1.
  const auto ci = *WilsonInterval(1.0, 30, 0.05);
  EXPECT_GT(ci.Width(), 0.0);
  EXPECT_LE(ci.upper, 1.0 + 1e-12);
}

TEST(WilsonIntervalTest, StaysInsideUnitInterval) {
  for (const double mu : {0.0, 0.05, 0.5, 0.95, 1.0}) {
    for (const double n : {5.0, 30.0, 1000.0}) {
      const auto ci = *WilsonInterval(mu, n, 0.05);
      EXPECT_GE(ci.lower, -1e-12) << mu << " " << n;
      EXPECT_LE(ci.upper, 1.0 + 1e-12) << mu << " " << n;
    }
  }
}

TEST(WilsonIntervalTest, CenterRelocatedTowardHalf) {
  const auto ci = *WilsonInterval(0.95, 50, 0.05);
  const double center = 0.5 * (ci.lower + ci.upper);
  EXPECT_LT(center, 0.95);
}

TEST(WilsonIntervalTest, WidthShrinksWithN) {
  double prev = 1.0;
  for (const double n : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    const double w = (*WilsonInterval(0.8, n, 0.05)).Width();
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(WilsonIntervalTest, AcceptsFractionalEffectiveSamples) {
  const auto ci = WilsonInterval(0.8, 57.3, 0.05);
  ASSERT_TRUE(ci.ok());
  EXPECT_GT(ci->Width(), 0.0);
}

TEST(WilsonIntervalTest, RejectsInvalidInputs) {
  EXPECT_FALSE(WilsonInterval(0.5, 0.0, 0.05).ok());
  EXPECT_FALSE(WilsonInterval(1.5, 10.0, 0.05).ok());
}

TEST(AgrestiCoullIntervalTest, ContainsWilsonInterval) {
  // Agresti-Coull is known to contain the Wilson interval for the same data.
  for (const double mu : {0.1, 0.5, 0.9}) {
    const auto ac = *AgrestiCoullInterval(mu, 40, 0.05);
    const auto wi = *WilsonInterval(mu, 40, 0.05);
    EXPECT_LE(ac.lower, wi.lower + 1e-12) << mu;
    EXPECT_GE(ac.upper, wi.upper - 1e-12) << mu;
  }
}

TEST(ClopperPearsonIntervalTest, ExactTailCoverageConditions) {
  // By construction P(Bin(n, upper) <= tau) = alpha/2 and
  // P(Bin(n, lower) >= tau) = alpha/2.
  const uint64_t n = 40, tau = 31;
  const double alpha = 0.05;
  const auto ci = *ClopperPearsonInterval(tau, n, alpha);
  EXPECT_NEAR(*BinomialCdf(tau, n, ci.upper), alpha / 2.0, 1e-9);
  EXPECT_NEAR(1.0 - *BinomialCdf(tau - 1, n, ci.lower), alpha / 2.0, 1e-9);
}

TEST(ClopperPearsonIntervalTest, EdgeCounts) {
  const auto zero = *ClopperPearsonInterval(0, 20, 0.05);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  // tau = 0: upper = 1 - (alpha/2)^(1/n).
  EXPECT_NEAR(zero.upper, 1.0 - std::pow(0.025, 1.0 / 20.0), 1e-9);

  const auto full = *ClopperPearsonInterval(20, 20, 0.05);
  EXPECT_DOUBLE_EQ(full.upper, 1.0);
  EXPECT_NEAR(full.lower, std::pow(0.025, 1.0 / 20.0), 1e-9);
}

TEST(ClopperPearsonIntervalTest, ConservativeWiderThanWilson) {
  const auto cp = *ClopperPearsonInterval(30, 40, 0.05);
  const auto wi = *WilsonInterval(0.75, 40, 0.05);
  EXPECT_GT(cp.Width(), wi.Width());
}

TEST(ClopperPearsonIntervalTest, RejectsInvalidInputs) {
  EXPECT_FALSE(ClopperPearsonInterval(5, 0, 0.05).ok());
  EXPECT_FALSE(ClopperPearsonInterval(6, 5, 0.05).ok());
  EXPECT_FALSE(ClopperPearsonInterval(3, 5, 0.0).ok());
}

TEST(IntervalTest, MoeIsHalfWidth) {
  const Interval i{0.2, 0.5};
  EXPECT_DOUBLE_EQ(i.Width(), 0.3);
  EXPECT_DOUBLE_EQ(i.Moe(), 0.15);
  EXPECT_TRUE(i.Contains(0.35));
  EXPECT_FALSE(i.Contains(0.55));
}

}  // namespace
}  // namespace kgacc
