#include "kgacc/intervals/credible.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

BetaDistribution MakeBeta(double a, double b) {
  return *BetaDistribution::Create(a, b);
}

TEST(EqualTailedTest, QuantileDefinition) {
  const auto d = MakeBeta(9.0, 3.0);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_NEAR(d.Cdf(et.lower), 0.025, 1e-10);
  EXPECT_NEAR(d.Cdf(et.upper), 0.975, 1e-10);
}

TEST(EqualTailedTest, CoversExactlyOneMinusAlpha) {
  for (const double alpha : {0.01, 0.05, 0.10, 0.25}) {
    const auto d = MakeBeta(25.0, 8.0);
    const auto et = *EqualTailedInterval(d, alpha);
    EXPECT_NEAR(d.Cdf(et.upper) - d.Cdf(et.lower), 1.0 - alpha, 1e-10)
        << alpha;
  }
}

TEST(EqualTailedTest, RejectsBadAlpha) {
  const auto d = MakeBeta(2.0, 2.0);
  EXPECT_FALSE(EqualTailedInterval(d, 0.0).ok());
  EXPECT_FALSE(EqualTailedInterval(d, 1.0).ok());
}

TEST(HpdTest, SatisfiesCoverageConstraint) {
  const auto d = MakeBeta(28.0, 4.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_NEAR(d.Cdf(hpd.interval.upper) - d.Cdf(hpd.interval.lower), 0.95,
              1e-7);
}

TEST(HpdTest, EqualDensityAtInteriorEndpoints) {
  // Theorem 1's first-order condition: f(l) = f(u).
  const auto d = MakeBeta(10.0, 4.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kUnimodal);
  EXPECT_NEAR(d.Pdf(hpd.interval.lower), d.Pdf(hpd.interval.upper), 1e-4);
}

TEST(HpdTest, ContainsTheMode) {
  const auto d = MakeBeta(7.0, 3.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_TRUE(hpd.interval.Contains(d.Mode()));
}

TEST(HpdTest, NeverWiderThanEqualTailed) {
  // Theorem 1: HPD is the smallest 1-alpha interval.
  for (const double a : {1.5, 3.0, 9.0, 30.0}) {
    for (const double b : {1.5, 4.0, 12.0}) {
      const auto d = MakeBeta(a, b);
      const auto hpd = *HpdInterval(d, 0.05);
      const auto et = *EqualTailedInterval(d, 0.05);
      EXPECT_LE(hpd.interval.Width(), et.Width() + 1e-8)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HpdTest, SymmetricPosteriorMatchesEqualTailed) {
  // Theorem 3: for a symmetric unimodal posterior, HPD == ET.
  for (const double a : {2.0, 5.0, 40.0}) {
    const auto d = MakeBeta(a, a);
    const auto hpd = *HpdInterval(d, 0.05);
    const auto et = *EqualTailedInterval(d, 0.05);
    EXPECT_NEAR(hpd.interval.lower, et.lower, 1e-6) << a;
    EXPECT_NEAR(hpd.interval.upper, et.upper, 1e-6) << a;
  }
}

TEST(HpdTest, SkewedPosteriorShiftsTowardMode) {
  // For a right-skewed-mass posterior (a >> b) the HPD sits closer to 1
  // than the ET interval on both ends.
  const auto d = MakeBeta(28.0, 2.0);
  const auto hpd = *HpdInterval(d, 0.05);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_GT(hpd.interval.lower, et.lower);
  EXPECT_GT(hpd.interval.upper, et.upper);
  EXPECT_LT(hpd.interval.Width(), et.Width());
}

TEST(HpdTest, DecreasingLimitingCase) {
  // tau = 0 under an uninformative prior: Beta(a<=1, b+n) decreasing;
  // Eq. 11 gives [0, qBeta(1-alpha)].
  const auto d = MakeBeta(0.5, 30.5);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kDecreasing);
  EXPECT_DOUBLE_EQ(hpd.interval.lower, 0.0);
  EXPECT_NEAR(hpd.interval.upper, *d.Quantile(0.95), 1e-12);
  EXPECT_EQ(hpd.solver_iterations, 0);
}

TEST(HpdTest, IncreasingLimitingCase) {
  // tau = n: Beta(a+n, b<=1) increasing; Eq. 10 gives [qBeta(alpha), 1].
  const auto d = MakeBeta(30.5, 0.5);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kIncreasing);
  EXPECT_DOUBLE_EQ(hpd.interval.upper, 1.0);
  EXPECT_NEAR(hpd.interval.lower, *d.Quantile(0.05), 1e-12);
}

TEST(HpdTest, LimitingCaseIsShorterThanEqualTailed) {
  // Corollary 1: the one-sided interval beats the two-sided ET under the
  // monotone posterior.
  const auto d = MakeBeta(31.0 / 3.0 + 20.0, 1.0 / 3.0);
  const auto hpd = *HpdInterval(d, 0.05);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_LT(hpd.interval.Width(), et.Width());
}

TEST(HpdTest, UShapedFallsBackToEqualTailed) {
  const auto d = MakeBeta(0.5, 0.5);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kUShaped);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_DOUBLE_EQ(hpd.interval.lower, et.lower);
  EXPECT_DOUBLE_EQ(hpd.interval.upper, et.upper);
}

TEST(HpdTest, SolversAgree) {
  // The SQP and the independent 1-D reduction must find the same interval.
  for (const double a : {2.0, 6.5, 28.0, 170.0}) {
    for (const double b : {1.7, 5.0, 30.0}) {
      const auto d = MakeBeta(a, b);
      HpdOptions sqp_opts;
      sqp_opts.solver = HpdSolver::kSlsqp;
      HpdOptions oned_opts;
      oned_opts.solver = HpdSolver::kOneDim;
      const auto sqp = *HpdInterval(d, 0.05, sqp_opts);
      const auto oned = *HpdInterval(d, 0.05, oned_opts);
      EXPECT_NEAR(sqp.interval.lower, oned.interval.lower, 5e-6)
          << "a=" << a << " b=" << b;
      EXPECT_NEAR(sqp.interval.upper, oned.interval.upper, 5e-6)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HpdTest, ColdStartReachesSameSolution) {
  const auto d = MakeBeta(12.0, 5.0);
  HpdOptions warm;
  HpdOptions cold;
  cold.warm_start_at_et = false;
  const auto w = *HpdInterval(d, 0.05, warm);
  const auto c = *HpdInterval(d, 0.05, cold);
  EXPECT_NEAR(w.interval.lower, c.interval.lower, 1e-5);
  EXPECT_NEAR(w.interval.upper, c.interval.upper, 1e-5);
}

TEST(HpdTest, RejectsBadAlpha) {
  const auto d = MakeBeta(3.0, 3.0);
  EXPECT_FALSE(HpdInterval(d, -0.1).ok());
  EXPECT_FALSE(HpdInterval(d, 1.0).ok());
}

/// Parameterized sweep of the minimality property: no interval of the same
/// coverage may be shorter. We verify against a fine grid of alternative
/// intervals built from the CDF.
class HpdMinimality
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(HpdMinimality, NoEqualCoverageIntervalIsShorter) {
  const auto [a, b, alpha] = GetParam();
  const auto d = MakeBeta(a, b);
  const auto hpd = *HpdInterval(d, alpha);
  // Slide the lower CDF mass point across [0, alpha] and compare widths.
  for (int i = 0; i <= 40; ++i) {
    const double p_lo = alpha * i / 40.0;
    const double l = *d.Quantile(p_lo);
    const double u = *d.Quantile(std::min(p_lo + 1.0 - alpha, 1.0));
    EXPECT_GE(u - l, hpd.interval.Width() - 1e-6)
        << "a=" << a << " b=" << b << " alpha=" << alpha << " p_lo=" << p_lo;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Posteriors, HpdMinimality,
    ::testing::Values(std::make_tuple(5.0, 2.0, 0.05),
                      std::make_tuple(2.0, 5.0, 0.05),
                      std::make_tuple(28.0, 4.0, 0.05),
                      std::make_tuple(28.0, 4.0, 0.01),
                      std::make_tuple(28.0, 4.0, 0.10),
                      std::make_tuple(170.0, 31.0, 0.05),
                      std::make_tuple(1.5, 1.5, 0.05),
                      std::make_tuple(0.5, 12.0, 0.05),   // limiting case
                      std::make_tuple(12.0, 0.5, 0.05),   // limiting case
                      std::make_tuple(350.0, 300.0, 0.01)));

}  // namespace
}  // namespace kgacc
