#include "kgacc/intervals/credible.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

BetaDistribution MakeBeta(double a, double b) {
  return *BetaDistribution::Create(a, b);
}

TEST(EqualTailedTest, QuantileDefinition) {
  const auto d = MakeBeta(9.0, 3.0);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_NEAR(d.Cdf(et.lower), 0.025, 1e-10);
  EXPECT_NEAR(d.Cdf(et.upper), 0.975, 1e-10);
}

TEST(EqualTailedTest, CoversExactlyOneMinusAlpha) {
  for (const double alpha : {0.01, 0.05, 0.10, 0.25}) {
    const auto d = MakeBeta(25.0, 8.0);
    const auto et = *EqualTailedInterval(d, alpha);
    EXPECT_NEAR(d.Cdf(et.upper) - d.Cdf(et.lower), 1.0 - alpha, 1e-10)
        << alpha;
  }
}

TEST(EqualTailedTest, RejectsBadAlpha) {
  const auto d = MakeBeta(2.0, 2.0);
  EXPECT_FALSE(EqualTailedInterval(d, 0.0).ok());
  EXPECT_FALSE(EqualTailedInterval(d, 1.0).ok());
}

TEST(HpdTest, SatisfiesCoverageConstraint) {
  const auto d = MakeBeta(28.0, 4.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_NEAR(d.Cdf(hpd.interval.upper) - d.Cdf(hpd.interval.lower), 0.95,
              1e-7);
}

TEST(HpdTest, EqualDensityAtInteriorEndpoints) {
  // Theorem 1's first-order condition: f(l) = f(u).
  const auto d = MakeBeta(10.0, 4.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kUnimodal);
  EXPECT_NEAR(d.Pdf(hpd.interval.lower), d.Pdf(hpd.interval.upper), 1e-4);
}

TEST(HpdTest, ContainsTheMode) {
  const auto d = MakeBeta(7.0, 3.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_TRUE(hpd.interval.Contains(d.Mode()));
}

TEST(HpdTest, NeverWiderThanEqualTailed) {
  // Theorem 1: HPD is the smallest 1-alpha interval.
  for (const double a : {1.5, 3.0, 9.0, 30.0}) {
    for (const double b : {1.5, 4.0, 12.0}) {
      const auto d = MakeBeta(a, b);
      const auto hpd = *HpdInterval(d, 0.05);
      const auto et = *EqualTailedInterval(d, 0.05);
      EXPECT_LE(hpd.interval.Width(), et.Width() + 1e-8)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HpdTest, SymmetricPosteriorMatchesEqualTailed) {
  // Theorem 3: for a symmetric unimodal posterior, HPD == ET.
  for (const double a : {2.0, 5.0, 40.0}) {
    const auto d = MakeBeta(a, a);
    const auto hpd = *HpdInterval(d, 0.05);
    const auto et = *EqualTailedInterval(d, 0.05);
    EXPECT_NEAR(hpd.interval.lower, et.lower, 1e-6) << a;
    EXPECT_NEAR(hpd.interval.upper, et.upper, 1e-6) << a;
  }
}

TEST(HpdTest, SkewedPosteriorShiftsTowardMode) {
  // For a right-skewed-mass posterior (a >> b) the HPD sits closer to 1
  // than the ET interval on both ends.
  const auto d = MakeBeta(28.0, 2.0);
  const auto hpd = *HpdInterval(d, 0.05);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_GT(hpd.interval.lower, et.lower);
  EXPECT_GT(hpd.interval.upper, et.upper);
  EXPECT_LT(hpd.interval.Width(), et.Width());
}

TEST(HpdTest, DecreasingLimitingCase) {
  // tau = 0 under an uninformative prior: Beta(a<=1, b+n) decreasing;
  // Eq. 11 gives [0, qBeta(1-alpha)].
  const auto d = MakeBeta(0.5, 30.5);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kDecreasing);
  EXPECT_DOUBLE_EQ(hpd.interval.lower, 0.0);
  EXPECT_NEAR(hpd.interval.upper, *d.Quantile(0.95), 1e-12);
  EXPECT_EQ(hpd.solver_iterations, 0);
}

TEST(HpdTest, IncreasingLimitingCase) {
  // tau = n: Beta(a+n, b<=1) increasing; Eq. 10 gives [qBeta(alpha), 1].
  const auto d = MakeBeta(30.5, 0.5);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kIncreasing);
  EXPECT_DOUBLE_EQ(hpd.interval.upper, 1.0);
  EXPECT_NEAR(hpd.interval.lower, *d.Quantile(0.05), 1e-12);
}

TEST(HpdTest, LimitingCaseIsShorterThanEqualTailed) {
  // Corollary 1: the one-sided interval beats the two-sided ET under the
  // monotone posterior.
  const auto d = MakeBeta(31.0 / 3.0 + 20.0, 1.0 / 3.0);
  const auto hpd = *HpdInterval(d, 0.05);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_LT(hpd.interval.Width(), et.Width());
}

TEST(HpdTest, UShapedFallsBackToEqualTailed) {
  const auto d = MakeBeta(0.5, 0.5);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.shape, BetaShape::kUShaped);
  const auto et = *EqualTailedInterval(d, 0.05);
  EXPECT_DOUBLE_EQ(hpd.interval.lower, et.lower);
  EXPECT_DOUBLE_EQ(hpd.interval.upper, et.upper);
}

TEST(HpdTest, SolversAgree) {
  // The SQP and the independent 1-D reduction must find the same interval.
  for (const double a : {2.0, 6.5, 28.0, 170.0}) {
    for (const double b : {1.7, 5.0, 30.0}) {
      const auto d = MakeBeta(a, b);
      HpdOptions sqp_opts;
      sqp_opts.solver = HpdSolver::kSlsqp;
      HpdOptions oned_opts;
      oned_opts.solver = HpdSolver::kOneDim;
      const auto sqp = *HpdInterval(d, 0.05, sqp_opts);
      const auto oned = *HpdInterval(d, 0.05, oned_opts);
      EXPECT_NEAR(sqp.interval.lower, oned.interval.lower, 5e-6)
          << "a=" << a << " b=" << b;
      EXPECT_NEAR(sqp.interval.upper, oned.interval.upper, 5e-6)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HpdTest, ColdStartReachesSameSolution) {
  const auto d = MakeBeta(12.0, 5.0);
  HpdOptions warm;
  HpdOptions cold;
  cold.warm_start_at_et = false;
  const auto w = *HpdInterval(d, 0.05, warm);
  const auto c = *HpdInterval(d, 0.05, cold);
  EXPECT_NEAR(w.interval.lower, c.interval.lower, 1e-5);
  EXPECT_NEAR(w.interval.upper, c.interval.upper, 1e-5);
}

TEST(HpdTest, RejectsBadAlpha) {
  const auto d = MakeBeta(3.0, 3.0);
  EXPECT_FALSE(HpdInterval(d, -0.1).ok());
  EXPECT_FALSE(HpdInterval(d, 1.0).ok());
}

/// Parameterized sweep of the minimality property: no interval of the same
/// coverage may be shorter. We verify against a fine grid of alternative
/// intervals built from the CDF.
class HpdMinimality
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(HpdMinimality, NoEqualCoverageIntervalIsShorter) {
  const auto [a, b, alpha] = GetParam();
  const auto d = MakeBeta(a, b);
  const auto hpd = *HpdInterval(d, alpha);
  // Slide the lower CDF mass point across [0, alpha] and compare widths.
  for (int i = 0; i <= 40; ++i) {
    const double p_lo = alpha * i / 40.0;
    const double l = *d.Quantile(p_lo);
    const double u = *d.Quantile(std::min(p_lo + 1.0 - alpha, 1.0));
    EXPECT_GE(u - l, hpd.interval.Width() - 1e-6)
        << "a=" << a << " b=" << b << " alpha=" << alpha << " p_lo=" << p_lo;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Posteriors, HpdMinimality,
    ::testing::Values(std::make_tuple(5.0, 2.0, 0.05),
                      std::make_tuple(2.0, 5.0, 0.05),
                      std::make_tuple(28.0, 4.0, 0.05),
                      std::make_tuple(28.0, 4.0, 0.01),
                      std::make_tuple(28.0, 4.0, 0.10),
                      std::make_tuple(170.0, 31.0, 0.05),
                      std::make_tuple(1.5, 1.5, 0.05),
                      std::make_tuple(0.5, 12.0, 0.05),   // limiting case
                      std::make_tuple(12.0, 0.5, 0.05),   // limiting case
                      std::make_tuple(350.0, 300.0, 0.01)));

TEST(HpdNewtonTest, NewtonIsThePrimaryUnimodalPath) {
  const auto d = MakeBeta(28.0, 4.0);
  const auto hpd = *HpdInterval(d, 0.05);
  EXPECT_EQ(hpd.path, HpdPath::kNewton);
  EXPECT_GT(hpd.solver_iterations, 0);
  EXPECT_GT(hpd.cdf_evals, 0);
  EXPECT_GT(hpd.pdf_evals, 0);
  // Convergence certificate: the reported residuals meet the solver's
  // advertised tolerances and independently verify on the endpoints.
  EXPECT_LE(std::fabs(hpd.kkt_coverage_residual), 1e-12);
  EXPECT_LE(std::fabs(hpd.kkt_density_residual), 1e-9);
  EXPECT_NEAR(d.Cdf(hpd.interval.upper) - d.Cdf(hpd.interval.lower), 0.95,
              1e-11);
  EXPECT_NEAR(d.LogPdf(hpd.interval.lower), d.LogPdf(hpd.interval.upper),
              1e-8);
}

TEST(HpdNewtonTest, UsesFewerBetaEvaluationsThanSqp) {
  // The specialization's point: ~4-6 Newton iterations of 2 CDF + 2 PDF
  // evaluations versus the SQP's ~20-70 constraint/gradient evaluations.
  // Every single solve must be cheaper, and in aggregate (the hot-path
  // mix of shapes and levels) Newton must cost under half the SQP.
  int newton_total = 0;
  int sqp_total = 0;
  for (const double a : {6.5, 28.0, 170.0, 900.0, 3000.0}) {
    for (const double alpha : {0.01, 0.05, 0.1}) {
      const auto d = MakeBeta(a, 0.2 * a + 1.0);
      const auto newton = *HpdInterval(d, alpha);
      HpdOptions sqp_opts;
      sqp_opts.use_newton = false;
      const auto sqp = *HpdInterval(d, alpha, sqp_opts);
      ASSERT_EQ(newton.path, HpdPath::kNewton) << a;
      ASSERT_EQ(sqp.path, HpdPath::kSlsqp) << a;
      const int newton_evals = newton.cdf_evals + newton.pdf_evals;
      const int sqp_evals = sqp.cdf_evals + sqp.pdf_evals;
      EXPECT_LT(newton_evals, sqp_evals) << "a=" << a << " alpha=" << alpha;
      newton_total += newton_evals;
      sqp_total += sqp_evals;
    }
  }
  EXPECT_LT(2 * newton_total, sqp_total);
}

/// Cross-check grid of the Newton path against both references across
/// near-degenerate (a or b near 1), central, skewed, and extreme-peaked
/// posteriors, including the limiting shapes (a or b <= 1) where all
/// paths must agree on the closed forms.
TEST(HpdNewtonTest, GridCrossCheckAgainstSqpAndOneDim) {
  const double shapes[] = {0.5, 1.5, 2.0, 5.0, 20.0, 80.0,
                           300.0, 1200.0, 5000.0};
  for (const double a : shapes) {
    for (const double b : shapes) {
      for (const double alpha : {0.01, 0.05, 0.1}) {
        const auto d = MakeBeta(a, b);
        const auto hpd = HpdInterval(d, alpha);
        ASSERT_TRUE(hpd.ok()) << "a=" << a << " b=" << b << " alpha=" << alpha;
        HpdOptions sqp_opts;
        sqp_opts.use_newton = false;
        const auto sqp = HpdInterval(d, alpha, sqp_opts);
        ASSERT_TRUE(sqp.ok()) << "a=" << a << " b=" << b;
        // Newton endpoints within 1e-9 of the SQP reference.
        EXPECT_NEAR(hpd->interval.lower, sqp->interval.lower, 1e-9)
            << "a=" << a << " b=" << b << " alpha=" << alpha;
        EXPECT_NEAR(hpd->interval.upper, sqp->interval.upper, 1e-9)
            << "a=" << a << " b=" << b << " alpha=" << alpha;
        if (d.Shape() != BetaShape::kUnimodal) continue;
        EXPECT_EQ(hpd->path, HpdPath::kNewton)
            << "a=" << a << " b=" << b << " alpha=" << alpha;
        // Coverage certificate.
        EXPECT_NEAR(d.Cdf(hpd->interval.upper) - d.Cdf(hpd->interval.lower),
                    1.0 - alpha, 1e-10)
            << "a=" << a << " b=" << b;
        // Agreement with the independent 1-D reduction (whose Brent
        // minimizer is the loosest of the three).
        HpdOptions oned_opts;
        oned_opts.solver = HpdSolver::kOneDim;
        const auto oned = HpdInterval(d, alpha, oned_opts);
        ASSERT_TRUE(oned.ok()) << "a=" << a << " b=" << b;
        EXPECT_NEAR(hpd->interval.lower, oned->interval.lower, 5e-6)
            << "a=" << a << " b=" << b << " alpha=" << alpha;
        EXPECT_NEAR(hpd->interval.upper, oned->interval.upper, 5e-6)
            << "a=" << a << " b=" << b << " alpha=" << alpha;
      }
    }
  }
}

TEST(HpdNewtonTest, CappedNewtonFallsBackToSqpWithSameInterval) {
  // One Newton iteration cannot reach the residual tolerances, so the
  // solve must take the SQP fallback — and land on the same interval.
  const auto d = MakeBeta(96.0, 11.0);
  HpdOptions capped;
  capped.newton_max_iterations = 1;
  const auto fallback = *HpdInterval(d, 0.05, capped);
  EXPECT_EQ(fallback.path, HpdPath::kSlsqpFallback);
  const auto primary = *HpdInterval(d, 0.05);
  EXPECT_EQ(primary.path, HpdPath::kNewton);
  EXPECT_NEAR(fallback.interval.lower, primary.interval.lower, 1e-9);
  EXPECT_NEAR(fallback.interval.upper, primary.interval.upper, 1e-9);
  // The fallback's counters include the wasted Newton attempt.
  EXPECT_GT(fallback.cdf_evals, 0);
}

TEST(HpdNewtonTest, DisabledNewtonIsThePureSqpPath) {
  const auto d = MakeBeta(12.0, 5.0);
  HpdOptions opts;
  opts.use_newton = false;
  const auto hpd = *HpdInterval(d, 0.05, opts);
  EXPECT_EQ(hpd.path, HpdPath::kSlsqp);
  EXPECT_TRUE(hpd.has_hessian);

  HpdOptions zero_cap;
  zero_cap.newton_max_iterations = 0;
  const auto capped = *HpdInterval(d, 0.05, zero_cap);
  EXPECT_EQ(capped.path, HpdPath::kSlsqp);
}

TEST(HpdNewtonTest, ThreadStatsAttributeSolvesToPaths) {
  ResetThreadHpdStats();
  const auto d = MakeBeta(28.0, 4.0);
  ASSERT_TRUE(HpdInterval(d, 0.05).ok());
  HpdOptions sqp_opts;
  sqp_opts.use_newton = false;
  ASSERT_TRUE(HpdInterval(d, 0.05, sqp_opts).ok());
  ASSERT_TRUE(HpdInterval(MakeBeta(0.5, 30.5), 0.05).ok());  // Limiting.
  const HpdSolveStats stats = ThreadHpdStatsSnapshot();
  EXPECT_EQ(stats.newton.solves, 1u);
  EXPECT_EQ(stats.slsqp.solves, 1u);
  EXPECT_EQ(stats.limiting.solves, 1u);
  EXPECT_EQ(stats.total_solves(), 3u);
  EXPECT_GT(stats.newton.cdf_evals, 0u);
  EXPECT_LT(stats.newton.cdf_evals + stats.newton.pdf_evals,
            stats.slsqp.cdf_evals + stats.slsqp.pdf_evals);
  ResetThreadHpdStats();
  EXPECT_EQ(ThreadHpdStatsSnapshot().total_solves(), 0u);
}

TEST(HpdOneDimTest, TinyAlphaKeepsABoundedBracket) {
  // Regression for the denormal bracket floor: a near-degenerate lower
  // quantile must not collapse Brent's interval arithmetic.
  const auto d = MakeBeta(1.2, 2000.0);
  HpdOptions oned;
  oned.solver = HpdSolver::kOneDim;
  const auto hpd = HpdInterval(d, 1e-6, oned);
  ASSERT_TRUE(hpd.ok());
  EXPECT_GT(hpd->interval.Width(), 0.0);
  EXPECT_NEAR(d.Cdf(hpd->interval.upper) - d.Cdf(hpd->interval.lower),
              1.0 - 1e-6, 1e-7);
  const auto newton = HpdInterval(d, 1e-6);
  ASSERT_TRUE(newton.ok());
  EXPECT_NEAR(hpd->interval.upper, newton->interval.upper, 5e-5);
}

TEST(HpdOneDimTest, WidePosteriorNeverSelectsThePoisonWidth) {
  // Near-flat posterior at small alpha: feasible widths approach 1, the
  // regime where the old `return 1.0` failure poison was indistinguishable
  // from a genuine candidate. The solve must return a real interval whose
  // width beats 1 and satisfies coverage.
  const auto d = MakeBeta(1.05, 1.1);
  HpdOptions oned;
  oned.solver = HpdSolver::kOneDim;
  const auto hpd = HpdInterval(d, 0.005, oned);
  ASSERT_TRUE(hpd.ok());
  EXPECT_LT(hpd->interval.Width(), 1.0);
  EXPECT_NEAR(d.Cdf(hpd->interval.upper) - d.Cdf(hpd->interval.lower), 0.995,
              1e-6);
}

}  // namespace
}  // namespace kgacc
