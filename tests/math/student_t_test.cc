#include "kgacc/math/student_t.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(StudentTCdfTest, CenterIsHalf) {
  for (const double nu : {1.0, 2.0, 5.0, 30.0, 500.0}) {
    EXPECT_NEAR(*StudentTCdf(0.0, nu), 0.5, 1e-13) << nu;
  }
}

TEST(StudentTCdfTest, MatchesCauchyClosedFormForNu1) {
  // nu = 1 is the Cauchy distribution: F(t) = 1/2 + atan(t)/pi.
  for (double t = -5.0; t <= 5.0; t += 0.5) {
    EXPECT_NEAR(*StudentTCdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-12) << t;
  }
}

TEST(StudentTCdfTest, MatchesClosedFormForNu2) {
  // nu = 2: F(t) = 1/2 + t / (2 sqrt(2 + t^2)).
  for (double t = -5.0; t <= 5.0; t += 0.5) {
    EXPECT_NEAR(*StudentTCdf(t, 2.0),
                0.5 + t / (2.0 * std::sqrt(2.0 + t * t)), 1e-12)
        << t;
  }
}

TEST(StudentTCdfTest, ApproachesNormalForLargeNu) {
  // At nu = 1e6 the t CDF should match the normal CDF to ~1e-6.
  const double values[] = {-2.0, -1.0, 0.5, 1.96};
  const double normal[] = {0.022750131948179195, 0.15865525393145707,
                           0.6914624612740131, 0.9750021048517795};
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(*StudentTCdf(values[i], 1e6), normal[i], 1e-5) << values[i];
  }
}

TEST(StudentTCdfTest, SymmetryAboutZero) {
  for (const double nu : {3.0, 8.0, 25.0}) {
    for (double t = 0.25; t < 4.0; t += 0.5) {
      EXPECT_NEAR(*StudentTCdf(t, nu) + *StudentTCdf(-t, nu), 1.0, 1e-12);
    }
  }
}

TEST(StudentTCdfTest, RejectsInvalidInputs) {
  EXPECT_FALSE(StudentTCdf(1.0, 0.0).ok());
  EXPECT_FALSE(StudentTCdf(1.0, -3.0).ok());
  EXPECT_FALSE(StudentTCdf(std::nan(""), 3.0).ok());
}

TEST(StudentTTwoSidedPTest, MatchesTailSumOfCdf) {
  for (const double nu : {2.0, 7.0, 40.0}) {
    for (double t = 0.5; t < 4.0; t += 0.5) {
      const double from_cdf =
          2.0 * (1.0 - *StudentTCdf(std::fabs(t), nu));
      EXPECT_NEAR(*StudentTTwoSidedP(t, nu), from_cdf, 1e-12)
          << "nu=" << nu << " t=" << t;
      EXPECT_NEAR(*StudentTTwoSidedP(-t, nu), from_cdf, 1e-12);
    }
  }
}

TEST(StudentTTwoSidedPTest, ZeroStatisticGivesPOne) {
  EXPECT_NEAR(*StudentTTwoSidedP(0.0, 10.0), 1.0, 1e-14);
}

TEST(StudentTQuantileTest, RoundTripsThroughCdf) {
  for (const double nu : {1.0, 2.0, 5.0, 20.0, 200.0}) {
    for (const double p : {0.005, 0.05, 0.25, 0.5, 0.75, 0.95, 0.995}) {
      const auto q = StudentTQuantile(p, nu);
      ASSERT_TRUE(q.ok()) << "nu=" << nu << " p=" << p;
      EXPECT_NEAR(*StudentTCdf(*q, nu), p, 1e-9) << "nu=" << nu << " p=" << p;
    }
  }
}

TEST(StudentTQuantileTest, MatchesCauchyClosedForm) {
  // nu = 1: Q(p) = tan(pi (p - 1/2)).
  for (const double p : {0.1, 0.25, 0.6, 0.9}) {
    EXPECT_NEAR(*StudentTQuantile(p, 1.0), std::tan(M_PI * (p - 0.5)), 1e-8)
        << p;
  }
}

TEST(StudentTQuantileTest, MedianIsZero) {
  EXPECT_DOUBLE_EQ(*StudentTQuantile(0.5, 7.0), 0.0);
}

TEST(StudentTQuantileTest, RejectsInvalidInputs) {
  EXPECT_FALSE(StudentTQuantile(0.0, 5.0).ok());
  EXPECT_FALSE(StudentTQuantile(1.0, 5.0).ok());
  EXPECT_FALSE(StudentTQuantile(0.5, -1.0).ok());
}

}  // namespace
}  // namespace kgacc
