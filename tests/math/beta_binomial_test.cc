#include "kgacc/math/beta_binomial.h"

#include <cmath>

#include "kgacc/math/binomial.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(BetaBinomialTest, RejectsBadParameters) {
  EXPECT_FALSE(BetaBinomial::Create(-1, 1.0, 1.0).ok());
  EXPECT_FALSE(BetaBinomial::Create(5, 0.0, 1.0).ok());
  EXPECT_FALSE(BetaBinomial::Create(5, 1.0, -2.0).ok());
}

TEST(BetaBinomialTest, UniformMixingGivesDiscreteUniform) {
  // BetaBin(k, 1, 1) is uniform on {0, ..., k}.
  const auto d = *BetaBinomial::Create(10, 1.0, 1.0);
  for (int64_t x = 0; x <= 10; ++x) {
    EXPECT_NEAR(d.Pmf(x), 1.0 / 11.0, 1e-12) << x;
  }
}

TEST(BetaBinomialTest, PmfSumsToOne) {
  const auto d = *BetaBinomial::Create(25, 2.5, 7.0);
  double total = 0.0;
  for (int64_t x = 0; x <= 25; ++x) total += d.Pmf(x);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BetaBinomialTest, MeanAndVarianceFormulas) {
  const auto d = *BetaBinomial::Create(20, 3.0, 5.0);
  // E = 20 * 3/8 = 7.5; Var = 20*15*(8+20)/(64*9) = 8400/576.
  EXPECT_DOUBLE_EQ(d.Mean(), 7.5);
  EXPECT_NEAR(d.Variance(), 8400.0 / 576.0, 1e-12);
  // Cross-check against the pmf moments.
  double mean = 0.0, second = 0.0;
  for (int64_t x = 0; x <= 20; ++x) {
    mean += x * d.Pmf(x);
    second += x * x * d.Pmf(x);
  }
  EXPECT_NEAR(mean, d.Mean(), 1e-10);
  EXPECT_NEAR(second - mean * mean, d.Variance(), 1e-9);
}

TEST(BetaBinomialTest, ConcentratedPriorApproachesBinomial) {
  // As a, b -> inf with a/(a+b) = p fixed, BetaBin -> Bin(k, p).
  const auto d = *BetaBinomial::Create(12, 7000.0, 3000.0);
  for (int64_t x = 0; x <= 12; ++x) {
    EXPECT_NEAR(d.Pmf(x), *BinomialPmf(x, 12, 0.7), 2e-3) << x;
  }
}

TEST(BetaBinomialTest, CdfMatchesPmfSummation) {
  const auto d = *BetaBinomial::Create(30, 1.5, 4.5);
  double running = 0.0;
  for (int64_t x = 0; x <= 30; ++x) {
    running += d.Pmf(x);
    EXPECT_NEAR(d.Cdf(x), running, 1e-10) << x;
  }
  EXPECT_DOUBLE_EQ(d.Cdf(-1), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(31), 1.0);
}

TEST(BetaBinomialTest, PmfOutsideSupportIsZero) {
  const auto d = *BetaBinomial::Create(5, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(d.Pmf(-1), 0.0);
  EXPECT_DOUBLE_EQ(d.Pmf(6), 0.0);
  EXPECT_TRUE(std::isinf(d.LogPmf(-1)));
}

TEST(BetaBinomialTest, SampleMomentsMatch) {
  const auto d = *BetaBinomial::Create(15, 2.0, 6.0);
  Rng rng(77);
  double sum = 0.0, sum_sq = 0.0;
  const int reps = 60000;
  for (int i = 0; i < reps; ++i) {
    const double x = static_cast<double>(d.Sample(&rng));
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 15.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / reps;
  EXPECT_NEAR(mean, d.Mean(), 0.05);
  EXPECT_NEAR(sum_sq / reps - mean * mean, d.Variance(), 0.25);
}

TEST(BetaBinomialTest, PosteriorPredictiveOfAnnotationProcess) {
  // Observed (tau=27, n=30) under Jeffreys: the next batch of 10 should be
  // mostly correct — P(X >= 8) well above 1/2.
  const auto posterior_predictive =
      *BetaBinomial::Create(10, 0.5 + 27.0, 0.5 + 3.0);
  const double p_ge_8 = 1.0 - posterior_predictive.Cdf(7);
  EXPECT_GT(p_ge_8, 0.6);
  EXPECT_NEAR(posterior_predictive.Mean(), 10.0 * 27.5 / 31.0, 1e-12);
}

}  // namespace
}  // namespace kgacc
