#include "kgacc/math/binomial.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(BinomialPmfTest, MatchesHandComputedValues) {
  // Bin(4, 0.5): pmf = {1, 4, 6, 4, 1} / 16.
  for (int k = 0; k <= 4; ++k) {
    const double expected[] = {1.0, 4.0, 6.0, 4.0, 1.0};
    EXPECT_NEAR(*BinomialPmf(k, 4, 0.5), expected[k] / 16.0, 1e-14) << k;
  }
}

TEST(BinomialPmfTest, SumsToOne) {
  const int n = 23;
  const double p = 0.31;
  double total = 0.0;
  for (int k = 0; k <= n; ++k) total += *BinomialPmf(k, n, p);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BinomialPmfTest, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(*BinomialPmf(0, 5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*BinomialPmf(3, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(*BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(*BinomialPmf(4, 5, 1.0), 0.0);
}

TEST(BinomialPmfTest, RejectsInvalidInputs) {
  EXPECT_FALSE(BinomialPmf(-1, 5, 0.5).ok());
  EXPECT_FALSE(BinomialPmf(6, 5, 0.5).ok());
  EXPECT_FALSE(BinomialPmf(2, 5, 1.5).ok());
  EXPECT_FALSE(BinomialPmf(2, -1, 0.5).ok());
}

TEST(BinomialCdfTest, MatchesDirectSummation) {
  const int n = 15;
  const double p = 0.42;
  double running = 0.0;
  for (int k = 0; k <= n; ++k) {
    running += *BinomialPmf(k, n, p);
    EXPECT_NEAR(*BinomialCdf(k, n, p), running, 1e-11) << k;
  }
}

TEST(BinomialCdfTest, BoundaryCases) {
  EXPECT_DOUBLE_EQ(*BinomialCdf(-1, 10, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(*BinomialCdf(10, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(*BinomialCdf(15, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(*BinomialCdf(3, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*BinomialCdf(3, 10, 1.0), 0.0);
}

TEST(BinomialSampleTest, DegenerateCases) {
  Rng rng(1);
  EXPECT_EQ(BinomialSample(0, 0.5, &rng), 0);
  EXPECT_EQ(BinomialSample(10, 0.0, &rng), 0);
  EXPECT_EQ(BinomialSample(10, 1.0, &rng), 10);
}

TEST(BinomialSampleTest, StaysInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = BinomialSample(20, 0.7, &rng);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 20);
  }
}

/// Parameterized moment check across all three sampler paths (Bernoulli
/// sum, waiting time, inversion-from-mode).
struct BinomialCase {
  int64_t n;
  double p;
};

class BinomialSampleMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialSampleMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(1234);
  const int reps = 60000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double x = static_cast<double>(BinomialSample(n, p, &rng));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / reps;
  const double var = sum_sq / reps - mean * mean;
  const double expected_mean = static_cast<double>(n) * p;
  const double expected_var = static_cast<double>(n) * p * (1.0 - p);
  EXPECT_NEAR(mean, expected_mean,
              5.0 * std::sqrt(expected_var / reps) + 1e-9);
  EXPECT_NEAR(var, expected_var, 0.08 * expected_var + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, BinomialSampleMoments,
    ::testing::Values(BinomialCase{10, 0.3},     // Bernoulli-sum path
                      BinomialCase{50, 0.5},     // Bernoulli-sum path
                      BinomialCase{500, 0.01},   // waiting-time path
                      BinomialCase{2000, 0.004}, // waiting-time path
                      BinomialCase{300, 0.4},    // inversion path
                      BinomialCase{10000, 0.8},  // symmetry + inversion
                      BinomialCase{100000, 0.37}));

}  // namespace
}  // namespace kgacc
