#include "kgacc/math/normal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(StdNormalCdfTest, KnownValues) {
  EXPECT_DOUBLE_EQ(StdNormalCdf(0.0), 0.5);
  EXPECT_NEAR(StdNormalCdf(1.0), 0.8413447460685429, 1e-14);
  EXPECT_NEAR(StdNormalCdf(-1.0), 0.15865525393145707, 1e-14);
  EXPECT_NEAR(StdNormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(StdNormalCdf(2.0), 0.9772498680518208, 1e-14);
  EXPECT_NEAR(StdNormalCdf(-3.0), 0.0013498980316300933, 1e-15);
}

TEST(StdNormalCdfTest, Symmetry) {
  for (double x = 0.0; x < 5.0; x += 0.25) {
    EXPECT_NEAR(StdNormalCdf(x) + StdNormalCdf(-x), 1.0, 1e-14) << x;
  }
}

TEST(StdNormalQuantileTest, KnownCriticalValues) {
  EXPECT_NEAR(*StdNormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(*StdNormalQuantile(0.95), 1.6448536269514722, 1e-10);
  EXPECT_NEAR(*StdNormalQuantile(0.995), 2.5758293035489004, 1e-10);
  EXPECT_NEAR(*StdNormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(*StdNormalQuantile(0.9), 1.2815515655446004, 1e-10);
}

TEST(StdNormalQuantileTest, SymmetricTails) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(*StdNormalQuantile(p), -*StdNormalQuantile(1.0 - p), 1e-10)
        << p;
  }
}

TEST(StdNormalQuantileTest, RoundTripsThroughCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(StdNormalCdf(*StdNormalQuantile(p)), p, 1e-12) << p;
  }
}

TEST(StdNormalQuantileTest, DeepTailsRemainFinite) {
  const auto lo = StdNormalQuantile(1e-12);
  ASSERT_TRUE(lo.ok());
  // Reference: Phi^{-1}(1e-12) = -7.034482502... (verified by erfc round
  // trip: Phi(*lo) must reproduce 1e-12 to full relative precision).
  EXPECT_NEAR(*lo, -7.0344838, 1e-5);
  EXPECT_NEAR(StdNormalCdf(*lo), 1e-12, 1e-17);
  const auto hi = StdNormalQuantile(1.0 - 1e-12);
  ASSERT_TRUE(hi.ok());
  // The *input* 1 - 1e-12 is only representable to ~5.5e-17 absolute, which
  // is worth ~8e-6 in x at this depth; the quantile is exact for the double
  // actually received.
  EXPECT_NEAR(*hi, -*lo, 1e-4);
}

TEST(StdNormalQuantileTest, RejectsBoundaries) {
  EXPECT_FALSE(StdNormalQuantile(0.0).ok());
  EXPECT_FALSE(StdNormalQuantile(1.0).ok());
  EXPECT_FALSE(StdNormalQuantile(-0.5).ok());
}

TEST(TwoSidedZTest, StandardLevels) {
  EXPECT_NEAR(*TwoSidedZ(0.05), 1.959963984540054, 1e-10);
  EXPECT_NEAR(*TwoSidedZ(0.10), 1.6448536269514722, 1e-10);
  EXPECT_NEAR(*TwoSidedZ(0.01), 2.5758293035489004, 1e-10);
}

TEST(TwoSidedZTest, RejectsInvalidAlpha) {
  EXPECT_FALSE(TwoSidedZ(0.0).ok());
  EXPECT_FALSE(TwoSidedZ(1.0).ok());
  EXPECT_FALSE(TwoSidedZ(-0.05).ok());
}

}  // namespace
}  // namespace kgacc
