#include "kgacc/math/special.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(LogBetaTest, MatchesClosedFormsForIntegers) {
  // B(1,1) = 1, B(2,3) = 1/12, B(5,5) = 1/630.
  EXPECT_NEAR(LogBeta(1, 1), 0.0, 1e-14);
  EXPECT_NEAR(LogBeta(2, 3), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(LogBeta(5, 5), std::log(1.0 / 630.0), 1e-12);
}

TEST(LogBetaTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(LogBeta(2.5, 7.1), LogBeta(7.1, 2.5));
}

TEST(LogBetaTest, HalfHalfIsPi) {
  // B(1/2, 1/2) = pi.
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(IncompleteBetaTest, EndpointValues) {
  EXPECT_DOUBLE_EQ(*RegularizedIncompleteBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(*RegularizedIncompleteBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(IncompleteBetaTest, UniformCaseIsIdentity) {
  for (double x = 0.05; x < 1.0; x += 0.05) {
    EXPECT_NEAR(*RegularizedIncompleteBeta(x, 1.0, 1.0), x, 1e-13);
  }
}

TEST(IncompleteBetaTest, PowerLawWhenBIsOne) {
  // I_x(a, 1) = x^a.
  for (const double a : {0.3, 1.0, 2.0, 7.5}) {
    for (double x = 0.1; x < 1.0; x += 0.2) {
      EXPECT_NEAR(*RegularizedIncompleteBeta(x, a, 1.0), std::pow(x, a), 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteBetaTest, ComplementPowerLawWhenAIsOne) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (const double b : {0.3, 1.0, 2.0, 7.5}) {
    for (double x = 0.1; x < 1.0; x += 0.2) {
      EXPECT_NEAR(*RegularizedIncompleteBeta(x, 1.0, b),
                  1.0 - std::pow(1.0 - x, b), 1e-12)
          << "b=" << b << " x=" << x;
    }
  }
}

TEST(IncompleteBetaTest, SymmetricAtHalf) {
  // I_{1/2}(a, a) = 1/2 for any a.
  for (const double a : {0.2, 0.5, 1.0, 3.0, 30.0, 300.0}) {
    EXPECT_NEAR(*RegularizedIncompleteBeta(0.5, a, a), 0.5, 1e-12) << a;
  }
}

TEST(IncompleteBetaTest, ReflectionIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (const double a : {0.4, 1.7, 12.0}) {
    for (const double b : {0.9, 3.3, 25.0}) {
      for (double x = 0.05; x < 1.0; x += 0.1) {
        const double lhs = *RegularizedIncompleteBeta(x, a, b);
        const double rhs = 1.0 - *RegularizedIncompleteBeta(1.0 - x, b, a);
        EXPECT_NEAR(lhs, rhs, 1e-12) << a << " " << b << " " << x;
      }
    }
  }
}

TEST(IncompleteBetaTest, RecurrenceIdentity) {
  // I_x(a, b) = x I_x(a-1, b) + (1-x) I_x(a, b-1)  [DLMF 8.17.20/21 combo]
  // holds in the equivalent form I_x(a,b) = I_x(a+1,b) + x^a (1-x)^b /
  // (a B(a,b)).
  for (const double a : {1.5, 4.0}) {
    for (const double b : {2.5, 6.0}) {
      for (double x = 0.1; x < 1.0; x += 0.2) {
        const double lhs = *RegularizedIncompleteBeta(x, a, b);
        const double rhs =
            *RegularizedIncompleteBeta(x, a + 1.0, b) +
            std::exp(a * std::log(x) + b * std::log1p(-x) - std::log(a) -
                     LogBeta(a, b));
        EXPECT_NEAR(lhs, rhs, 1e-12) << a << " " << b << " " << x;
      }
    }
  }
}

TEST(IncompleteBetaTest, MatchesBinomialTailSum) {
  // I_p(k, n-k+1) = P(Bin(n, p) >= k), computed by direct summation.
  const int n = 12;
  const double p = 0.37;
  for (int k = 1; k <= n; ++k) {
    double tail = 0.0;
    for (int j = k; j <= n; ++j) {
      double choose = 1.0;
      for (int i = 0; i < j; ++i) {
        choose *= static_cast<double>(n - i) / static_cast<double>(i + 1);
      }
      tail += choose * std::pow(p, j) * std::pow(1.0 - p, n - j);
    }
    const double ib =
        *RegularizedIncompleteBeta(p, k, static_cast<double>(n - k + 1));
    EXPECT_NEAR(ib, tail, 1e-10) << "k=" << k;
  }
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.01; x < 1.0; x += 0.01) {
    const double v = *RegularizedIncompleteBeta(x, 3.3, 0.7);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(IncompleteBetaTest, ExtremeParametersStayInRange) {
  for (const double a : {1e-3, 1.0, 500.0}) {
    for (const double b : {1e-3, 1.0, 500.0}) {
      for (const double x : {1e-9, 0.25, 0.5, 0.75, 1.0 - 1e-9}) {
        const auto r = RegularizedIncompleteBeta(x, a, b);
        ASSERT_TRUE(r.ok());
        EXPECT_GE(*r, 0.0);
        EXPECT_LE(*r, 1.0);
      }
    }
  }
}

TEST(IncompleteBetaTest, RejectsInvalidArguments) {
  EXPECT_FALSE(RegularizedIncompleteBeta(0.5, 0.0, 1.0).ok());
  EXPECT_FALSE(RegularizedIncompleteBeta(0.5, 1.0, -1.0).ok());
  EXPECT_FALSE(RegularizedIncompleteBeta(-0.1, 1.0, 1.0).ok());
  EXPECT_FALSE(RegularizedIncompleteBeta(1.1, 1.0, 1.0).ok());
}

TEST(InverseIncompleteBetaTest, EndpointValues) {
  EXPECT_DOUBLE_EQ(*InverseRegularizedIncompleteBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(*InverseRegularizedIncompleteBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(InverseIncompleteBetaTest, UniformCaseIsIdentity) {
  for (double p = 0.05; p < 1.0; p += 0.05) {
    EXPECT_NEAR(*InverseRegularizedIncompleteBeta(p, 1.0, 1.0), p, 1e-12);
  }
}

TEST(InverseIncompleteBetaTest, MedianOfSymmetricIsHalf) {
  for (const double a : {0.3, 1.0, 5.0, 50.0}) {
    EXPECT_NEAR(*InverseRegularizedIncompleteBeta(0.5, a, a), 0.5, 1e-10) << a;
  }
}

TEST(InverseIncompleteBetaTest, RejectsInvalidArguments) {
  EXPECT_FALSE(InverseRegularizedIncompleteBeta(0.5, -1.0, 2.0).ok());
  EXPECT_FALSE(InverseRegularizedIncompleteBeta(-0.01, 1.0, 2.0).ok());
  EXPECT_FALSE(InverseRegularizedIncompleteBeta(1.01, 1.0, 2.0).ok());
}

/// Property sweep: quantile/CDF round trips across a parameter grid,
/// including the sub-uniform shapes used by the Kerman/Jeffreys priors and
/// the razor-sharp posteriors arising late in evaluation runs.
class BetaRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BetaRoundTrip, QuantileInvertsCdf) {
  const auto [a, b] = GetParam();
  for (const double p :
       {1e-6, 0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999,
        1.0 - 1e-6}) {
    const auto x = InverseRegularizedIncompleteBeta(p, a, b);
    ASSERT_TRUE(x.ok());
    const auto back = RegularizedIncompleteBeta(*x, a, b);
    ASSERT_TRUE(back.ok());
    // Tolerance: a handful of CDF ulps, widened by the local derivative —
    // one ulp of x moves the CDF by ~pdf(x) * ulp(x), which is the hard
    // representability floor near x ~ 1 for b < 1 (exploding density).
    if (*x == 0.0 || *x == 1.0) {
      // The true quantile is closer to the endpoint than one double ulp
      // (e.g. 1 - 5e-18 for Beta(1/3, 1/3) at p = 1 - 1e-6); returning the
      // endpoint is the correctly rounded answer. Verify that claim: the
      // CDF one representable step inside must already overshoot p.
      if (*x == 1.0) {
        const double inside = std::nextafter(1.0, 0.0);
        EXPECT_LE(*RegularizedIncompleteBeta(inside, a, b), p)
            << "a=" << a << " b=" << b << " p=" << p;
      } else {
        const double inside = std::nextafter(0.0, 1.0);
        EXPECT_GE(*RegularizedIncompleteBeta(inside, a, b), p)
            << "a=" << a << " b=" << b << " p=" << p;
      }
      continue;
    }
    const double log_pdf = (a - 1.0) * std::log(*x) +
                           (b - 1.0) * std::log1p(-*x) - LogBeta(a, b);
    const double derivative_floor = std::exp(log_pdf) * (*x) * 4e-16;
    const double tol = std::max(5e-10, derivative_floor);
    EXPECT_NEAR(*back, p, tol) << "a=" << a << " b=" << b << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, BetaRoundTrip,
    ::testing::Values(
        std::make_tuple(1.0 / 3.0, 1.0 / 3.0),   // Kerman prior
        std::make_tuple(0.5, 0.5),               // Jeffreys prior
        std::make_tuple(1.0, 1.0),               // Uniform prior
        std::make_tuple(0.3333, 30.3333),        // tau=0 limiting posterior
        std::make_tuple(30.3333, 0.3333),        // tau=n limiting posterior
        std::make_tuple(2.0, 2.0), std::make_tuple(5.0, 1.5),
        std::make_tuple(1.5, 5.0), std::make_tuple(28.0, 4.0),
        std::make_tuple(170.5, 30.5),            // DBPEDIA-scale posterior
        std::make_tuple(350.0, 300.0),           // FACTBENCH-scale posterior
        std::make_tuple(1000.0, 12.0),           // very peaked, skewed
        std::make_tuple(5000.0, 5000.0)));       // very peaked, symmetric

}  // namespace
}  // namespace kgacc
