#include "kgacc/math/beta.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(BetaDistributionTest, RejectsBadParameters) {
  EXPECT_FALSE(BetaDistribution::Create(0.0, 1.0).ok());
  EXPECT_FALSE(BetaDistribution::Create(1.0, -2.0).ok());
  EXPECT_FALSE(BetaDistribution::Create(std::nan(""), 1.0).ok());
  EXPECT_FALSE(
      BetaDistribution::Create(std::numeric_limits<double>::infinity(), 1.0)
          .ok());
}

TEST(BetaDistributionTest, MeanAndVariance) {
  const auto d = *BetaDistribution::Create(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.25);
  EXPECT_NEAR(d.Variance(), 2.0 * 6.0 / (64.0 * 9.0), 1e-15);
}

TEST(BetaDistributionTest, ModeOfUnimodal) {
  const auto d = *BetaDistribution::Create(3.0, 5.0);
  EXPECT_DOUBLE_EQ(d.Mode(), 2.0 / 6.0);
}

TEST(BetaDistributionTest, ShapeClassification) {
  EXPECT_EQ((*BetaDistribution::Create(2.0, 2.0)).Shape(),
            BetaShape::kUnimodal);
  EXPECT_EQ((*BetaDistribution::Create(0.5, 2.0)).Shape(),
            BetaShape::kDecreasing);
  EXPECT_EQ((*BetaDistribution::Create(1.0, 2.0)).Shape(),
            BetaShape::kDecreasing);
  EXPECT_EQ((*BetaDistribution::Create(2.0, 0.5)).Shape(),
            BetaShape::kIncreasing);
  EXPECT_EQ((*BetaDistribution::Create(2.0, 1.0)).Shape(),
            BetaShape::kIncreasing);
  EXPECT_EQ((*BetaDistribution::Create(0.5, 0.5)).Shape(),
            BetaShape::kUShaped);
  EXPECT_EQ((*BetaDistribution::Create(1.0, 1.0)).Shape(),
            BetaShape::kUShaped);
}

TEST(BetaDistributionTest, SymmetryFlag) {
  EXPECT_TRUE((*BetaDistribution::Create(3.0, 3.0)).IsSymmetric());
  EXPECT_FALSE((*BetaDistribution::Create(3.0, 3.1)).IsSymmetric());
}

TEST(BetaDistributionTest, PdfMatchesClosedFormBeta22) {
  // Beta(2,2): f(x) = 6 x (1-x).
  const auto d = *BetaDistribution::Create(2.0, 2.0);
  for (double x = 0.1; x < 1.0; x += 0.1) {
    EXPECT_NEAR(d.Pdf(x), 6.0 * x * (1.0 - x), 1e-12) << x;
  }
}

TEST(BetaDistributionTest, PdfOutsideSupportIsZero) {
  const auto d = *BetaDistribution::Create(2.0, 2.0);
  EXPECT_DOUBLE_EQ(d.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(1.1), 0.0);
  EXPECT_TRUE(std::isinf(d.LogPdf(-0.1)));
}

TEST(BetaDistributionTest, PdfEdgeBehaviour) {
  // a > 1: density vanishes at 0; a < 1: density diverges at 0.
  EXPECT_DOUBLE_EQ((*BetaDistribution::Create(2.0, 2.0)).Pdf(0.0), 0.0);
  EXPECT_TRUE(std::isinf((*BetaDistribution::Create(0.5, 2.0)).Pdf(0.0)));
  // Uniform: density 1 everywhere including edges.
  EXPECT_NEAR((*BetaDistribution::Create(1.0, 1.0)).Pdf(0.0), 1.0, 1e-12);
  EXPECT_NEAR((*BetaDistribution::Create(1.0, 1.0)).Pdf(1.0), 1.0, 1e-12);
}

TEST(BetaDistributionTest, PdfIntegratesToOne) {
  // Trapezoid integration as an independent check of the normalization.
  const auto d = *BetaDistribution::Create(3.5, 2.2);
  const int steps = 20000;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x0 = static_cast<double>(i) / steps;
    const double x1 = static_cast<double>(i + 1) / steps;
    integral += 0.5 * (d.Pdf(x0) + d.Pdf(x1)) * (x1 - x0);
  }
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(BetaDistributionTest, CdfMatchesClosedFormBeta22) {
  // Beta(2,2): F(x) = 3x^2 - 2x^3.
  const auto d = *BetaDistribution::Create(2.0, 2.0);
  for (double x = 0.1; x < 1.0; x += 0.1) {
    EXPECT_NEAR(d.Cdf(x), 3.0 * x * x - 2.0 * x * x * x, 1e-12) << x;
  }
}

TEST(BetaDistributionTest, CdfClampedOutsideSupport) {
  const auto d = *BetaDistribution::Create(2.0, 2.0);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 1.0);
}

TEST(BetaDistributionTest, CdfIsDerivativeConsistentWithPdf) {
  const auto d = *BetaDistribution::Create(4.0, 7.0);
  const double h = 1e-6;
  for (double x = 0.1; x < 1.0; x += 0.1) {
    const double numeric = (d.Cdf(x + h) - d.Cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(numeric, d.Pdf(x), 1e-5) << x;
  }
}

TEST(BetaDistributionTest, QuantileRoundTrip) {
  const auto d = *BetaDistribution::Create(30.33, 2.33);
  for (const double p : {0.01, 0.05, 0.5, 0.95, 0.99}) {
    EXPECT_NEAR(d.Cdf(*d.Quantile(p)), p, 1e-10) << p;
  }
}

TEST(BetaDistributionTest, QuantileRejectsOutOfRange) {
  const auto d = *BetaDistribution::Create(2.0, 2.0);
  EXPECT_FALSE(d.Quantile(-0.1).ok());
  EXPECT_FALSE(d.Quantile(1.5).ok());
}

}  // namespace
}  // namespace kgacc
