#include "kgacc/kgacc.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// Statistical properties claimed by the paper, verified end to end with
/// modest replication counts (the full 1,000-rep protocol runs in bench/).

constexpr int kReps = 60;

ReplicationSummary Replicate(const KgView& kg, IntervalMethod method,
                             double alpha, uint64_t seed,
                             bool twcs = false, int m = 3) {
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = method;
  config.alpha = alpha;
  if (twcs) {
    TwcsSampler sampler(kg, TwcsConfig{.second_stage_size = m});
    return *RunReplications(sampler, annotator, config, kReps, seed);
  }
  SrsSampler sampler(kg, SrsConfig{});
  return *RunReplications(sampler, annotator, config, kReps, seed);
}

TEST(PaperPropertiesTest, HpdBeatsEtOnSkewedAccuracy) {
  // Table 2 shape: fewer triples for HPD than ET at mu = 0.91.
  const auto kg = *MakeKg(NellProfile(), 1);
  OracleAnnotator annotator;

  EvaluationConfig et;
  et.method = IntervalMethod::kEqualTailed;
  et.priors = {KermanPrior()};
  SrsSampler s1(kg, SrsConfig{});
  const auto et_summary = *RunReplications(s1, annotator, et, kReps, 10);

  EvaluationConfig hpd;
  hpd.method = IntervalMethod::kHpd;
  hpd.priors = {KermanPrior()};
  SrsSampler s2(kg, SrsConfig{});
  const auto hpd_summary = *RunReplications(s2, annotator, hpd, kReps, 10);

  EXPECT_LE(hpd_summary.triples_summary.mean,
            et_summary.triples_summary.mean + 1.0);
}

TEST(PaperPropertiesTest, AhpdNeverWorseThanFixedPriorHpd) {
  // aHPD selects the shortest per-round interval, so its mean annotation
  // count cannot exceed a fixed-prior HPD by more than noise.
  const auto kg = *MakeKg(YagoProfile(), 2);
  OracleAnnotator annotator;

  for (const BetaPrior& prior : DefaultUninformativePriors()) {
    EvaluationConfig fixed;
    fixed.method = IntervalMethod::kHpd;
    fixed.priors = {prior};
    SrsSampler s1(kg, SrsConfig{});
    const auto fixed_summary =
        *RunReplications(s1, annotator, fixed, kReps, 20);

    EvaluationConfig adaptive;  // Default aHPD trio.
    SrsSampler s2(kg, SrsConfig{});
    const auto ahpd_summary =
        *RunReplications(s2, annotator, adaptive, kReps, 20);

    EXPECT_LE(ahpd_summary.triples_summary.mean,
              fixed_summary.triples_summary.mean + 1.0)
        << prior.name;
  }
}

TEST(PaperPropertiesTest, AhpdBeatsWilsonOnSkewedDatasets) {
  // Table 3 shape: aHPD needs fewer triples than Wilson when mu is skewed.
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    const auto kg = *MakeKg(YagoProfile(), seed);
    const auto wilson = Replicate(kg, IntervalMethod::kWilson, 0.05, 30);
    const auto ahpd = Replicate(kg, IntervalMethod::kAhpd, 0.05, 30);
    EXPECT_LT(ahpd.triples_summary.mean, wilson.triples_summary.mean)
        << "seed " << seed;
  }
}

TEST(PaperPropertiesTest, AhpdMatchesWilsonOnQuasiSymmetric) {
  // Table 3 / §6.3: at mu ~ 0.5 Wilson approximates the Uniform-prior ET
  // CrI and aHPD offers no further gains — but no losses either.
  const auto kg = *MakeKg(FactbenchProfile(), 3);
  const auto wilson = Replicate(kg, IntervalMethod::kWilson, 0.05, 40);
  const auto ahpd = Replicate(kg, IntervalMethod::kAhpd, 0.05, 40);
  EXPECT_NEAR(ahpd.triples_summary.mean, wilson.triples_summary.mean,
              0.03 * wilson.triples_summary.mean + 2.0);
}

TEST(PaperPropertiesTest, SymmetricAccuracyCostsAreSymmetric) {
  // §6.4: populations at mu and 1-mu need the same effort to audit.
  SyntheticKgConfig cfg;
  cfg.num_clusters = 3000;
  cfg.mean_cluster_size = 3.0;
  cfg.seed = 7;
  cfg.accuracy = 0.9;
  const auto hi = *SyntheticKg::Create(cfg);
  cfg.accuracy = 0.1;
  const auto lo = *SyntheticKg::Create(cfg);
  const auto hi_summary = Replicate(hi, IntervalMethod::kAhpd, 0.05, 50);
  const auto lo_summary = Replicate(lo, IntervalMethod::kAhpd, 0.05, 50);
  EXPECT_NEAR(hi_summary.triples_summary.mean, lo_summary.triples_summary.mean,
              0.15 * hi_summary.triples_summary.mean + 5.0);
}

TEST(PaperPropertiesTest, StricterAlphaNeedsMoreAnnotations) {
  // Fig. 4 shape: cost grows as alpha tightens, for every method.
  const auto kg = *MakeKg(NellProfile(), 4);
  const auto a10 = Replicate(kg, IntervalMethod::kAhpd, 0.10, 60);
  const auto a05 = Replicate(kg, IntervalMethod::kAhpd, 0.05, 60);
  const auto a01 = Replicate(kg, IntervalMethod::kAhpd, 0.01, 60);
  EXPECT_LT(a10.triples_summary.mean, a05.triples_summary.mean);
  EXPECT_LT(a05.triples_summary.mean, a01.triples_summary.mean);
}

TEST(PaperPropertiesTest, TwcsCostsLessPerTripleThanSrs) {
  // Table 3 economics: TWCS pays fewer entity identifications per triple.
  const auto kg = *MakeKg(DbpediaProfile(), 5);
  const auto srs = Replicate(kg, IntervalMethod::kAhpd, 0.05, 70, false);
  const auto twcs = Replicate(kg, IntervalMethod::kAhpd, 0.05, 70, true);
  const double srs_cost_per_triple =
      srs.cost_summary.mean / srs.triples_summary.mean;
  const double twcs_cost_per_triple =
      twcs.cost_summary.mean / twcs.triples_summary.mean;
  EXPECT_LT(twcs_cost_per_triple, srs_cost_per_triple);
}

TEST(PaperPropertiesTest, CredibleIntervalEmpiricalCoverage) {
  // The 1-alpha CrI should contain the true accuracy in ~95% of runs —
  // the one-shot guarantee CIs cannot give (§4).
  const auto kg = *MakeKg(DbpediaProfile(), 6);
  const double truth = kg.TrueAccuracy();
  OracleAnnotator annotator;
  EvaluationConfig config;  // aHPD, alpha = 0.05.
  SrsSampler sampler(kg, SrsConfig{});
  int covered = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    const auto result = *RunEvaluation(sampler, annotator, config, 9000 + r);
    covered += result.interval.Contains(truth) ? 1 : 0;
  }
  EXPECT_GE(covered / static_cast<double>(reps), 0.88);
}

TEST(PaperPropertiesTest, WaldZeroWidthFrequencyOnNellLikeData) {
  // Example 1: on NELL (mu = 0.91) Wald halts with a zero-width interval
  // in a nontrivial fraction of runs (the paper observed 7%).
  const auto kg = *MakeKg(NellProfile(), 7);
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = IntervalMethod::kWald;
  SrsSampler sampler(kg, SrsConfig{});
  const auto summary = *RunReplications(sampler, annotator, config, 200, 80);
  const double rate = summary.zero_width / 200.0;
  EXPECT_GT(rate, 0.005);
  EXPECT_LT(rate, 0.4);
}

TEST(PaperPropertiesTest, InformativePriorsCutCosts) {
  // Example 2: plugging (80,20) and (90,10) priors into aHPD on DBPEDIA
  // under TWCS converges with far fewer triples than the uninformative trio.
  const auto kg = *MakeKg(DbpediaProfile(), 8);
  OracleAnnotator annotator;

  EvaluationConfig informed;
  informed.priors = {*InformativePrior(0.80, 100.0),
                     *InformativePrior(0.90, 100.0)};
  TwcsSampler s1(kg, TwcsConfig{});
  const auto inf_summary = *RunReplications(s1, annotator, informed, kReps, 90);

  EvaluationConfig uninformed;  // Kerman/Jeffreys/Uniform.
  TwcsSampler s2(kg, TwcsConfig{});
  const auto uninf_summary =
      *RunReplications(s2, annotator, uninformed, kReps, 90);

  EXPECT_LT(inf_summary.triples_summary.mean,
            0.7 * uninf_summary.triples_summary.mean);
}

}  // namespace
}  // namespace kgacc
