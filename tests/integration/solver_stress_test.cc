#include <cmath>

#include "kgacc/kgacc.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// Randomized stress of the HPD machinery: across a wide cloud of
/// posteriors (including shapes far outside the curated test grids) both
/// solvers must satisfy the coverage constraint, agree with each other, and
/// never beat the theoretical minimality bound. Seeded, so failures are
/// reproducible.

TEST(HpdSolverStress, RandomPosteriorCloud) {
  Rng rng(20260612);
  int slsqp_checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // Log-uniform shapes spanning [1.05, ~2000): early-iteration to
    // deep-into-the-audit posteriors.
    const double a = 1.05 + std::exp(rng.Uniform(0.0, 7.6));
    const double b = 1.05 + std::exp(rng.Uniform(0.0, 5.5));
    const double alpha = rng.Uniform(0.005, 0.2);
    const auto d = *BetaDistribution::Create(a, b);

    HpdOptions sqp_opts;
    sqp_opts.solver = HpdSolver::kSlsqp;
    const auto sqp = HpdInterval(d, alpha, sqp_opts);
    ASSERT_TRUE(sqp.ok()) << "a=" << a << " b=" << b << " alpha=" << alpha;

    HpdOptions oned_opts;
    oned_opts.solver = HpdSolver::kOneDim;
    const auto oned = HpdInterval(d, alpha, oned_opts);
    ASSERT_TRUE(oned.ok()) << "a=" << a << " b=" << b;

    // Coverage holds for both.
    const double sqp_cov =
        d.Cdf(sqp->interval.upper) - d.Cdf(sqp->interval.lower);
    EXPECT_NEAR(sqp_cov, 1.0 - alpha, 1e-5)
        << "a=" << a << " b=" << b << " alpha=" << alpha;
    const double oned_cov =
        d.Cdf(oned->interval.upper) - d.Cdf(oned->interval.lower);
    EXPECT_NEAR(oned_cov, 1.0 - alpha, 1e-5);

    // Solver agreement (scaled by the interval magnitude).
    const double tol = 1e-4 * std::max(1e-2, sqp->interval.Width());
    EXPECT_NEAR(sqp->interval.lower, oned->interval.lower, tol)
        << "a=" << a << " b=" << b << " alpha=" << alpha;
    EXPECT_NEAR(sqp->interval.upper, oned->interval.upper, tol)
        << "a=" << a << " b=" << b << " alpha=" << alpha;
    ++slsqp_checked;
  }
  EXPECT_EQ(slsqp_checked, 400);
}

TEST(HpdSolverStress, ExtremeEffectiveSamplesFromDesignEffects) {
  // Design-effect-adjusted posteriors arrive with fractional, sometimes
  // strongly shrunken (deff up to 20) or inflated (deff down to 0.25)
  // effective samples. The interval machinery must stay well-behaved.
  const auto priors = DefaultUninformativePriors();
  for (const double n_eff : {1.5, 7.3, 150.0, 15000.0}) {
    for (const double rate : {0.02, 0.5, 0.93, 0.999}) {
      const double tau_eff = rate * n_eff;
      const auto choice = AhpdSelect(priors, tau_eff, n_eff, 0.05);
      ASSERT_TRUE(choice.ok()) << n_eff << " " << rate;
      EXPECT_GE(choice->interval.lower, 0.0);
      EXPECT_LE(choice->interval.upper, 1.0);
      EXPECT_GT(choice->interval.Width(), 0.0);
      // The point estimate region is always covered.
      EXPECT_TRUE(choice->interval.Contains(
          std::clamp(rate, choice->interval.lower,
                     choice->interval.upper)));
    }
  }
}

TEST(HpdSolverStress, TinyAlphaAndWideAlpha) {
  const auto d = *BetaDistribution::Create(40.0, 8.0);
  for (const double alpha : {0.001, 0.3, 0.6}) {
    const auto hpd = HpdInterval(d, alpha);
    ASSERT_TRUE(hpd.ok()) << alpha;
    EXPECT_NEAR(d.Cdf(hpd->interval.upper) - d.Cdf(hpd->interval.lower),
                1.0 - alpha, 1e-5)
        << alpha;
    const auto et = *EqualTailedInterval(d, alpha);
    EXPECT_LE(hpd->interval.Width(), et.Width() + 1e-7) << alpha;
  }
}

}  // namespace
}  // namespace kgacc
