#include <memory>
#include <string>
#include <tuple>

#include "kgacc/kgacc.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// Full configuration grid smoke suite: every (dataset profile x sampling
/// design x interval method) combination must run the complete iterative
/// framework to convergence with a sane estimate. This is the matrix the
/// benchmark harness spans; a regression anywhere in the stack surfaces
/// here as a named cell.

using GridParam = std::tuple<int /*profile*/, std::string /*design*/,
                             IntervalMethod>;

class EvaluationGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(EvaluationGrid, ConvergesWithSaneEstimate) {
  const auto [profile_idx, design, method] = GetParam();
  const DatasetProfile profile = SmallProfiles()[profile_idx];
  const auto kg = *MakeKg(profile, /*seed=*/4242);

  std::unique_ptr<Sampler> sampler;
  if (design == "SRS") {
    sampler = std::make_unique<SrsSampler>(kg, SrsConfig{});
  } else if (design == "TWCS") {
    sampler = std::make_unique<TwcsSampler>(
        kg, TwcsConfig{.second_stage_size = profile.twcs_second_stage});
  } else if (design == "SSRS") {
    sampler = std::make_unique<StratifiedSampler>(kg, StratifiedConfig{});
  } else {
    sampler = std::make_unique<SystematicSampler>(kg, SystematicConfig{});
  }

  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = method;
  const auto result = RunEvaluation(*sampler, annotator, config, 99);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged)
      << profile.name << "/" << design << "/" << IntervalMethodName(method);
  EXPECT_LE(result->interval.Moe(), config.moe_threshold + 1e-12);
  // A single run can stray ~2 MoE from the truth; beyond that something is
  // structurally wrong (estimator bias, label-model mismatch, ...).
  EXPECT_NEAR(result->mu, profile.accuracy, 0.13)
      << profile.name << "/" << design << "/" << IntervalMethodName(method);
  EXPECT_GT(result->cost_hours, 0.0);
  EXPECT_GE(result->annotated_triples, config.min_sample_triples);
}

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  const auto [profile_idx, design, method] = info.param;
  std::string name = SmallProfiles()[profile_idx].name + "_" + design + "_" +
                     IntervalMethodName(method);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, EvaluationGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::string("SRS"),
                                         std::string("TWCS"),
                                         std::string("SSRS"),
                                         std::string("SYS")),
                       ::testing::Values(IntervalMethod::kWilson,
                                         IntervalMethod::kHpd,
                                         IntervalMethod::kAhpd)),
    GridName);

}  // namespace
}  // namespace kgacc
