#include "kgacc/kgacc.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// End-to-end runs over the full stack: profile -> synthetic population ->
/// sampler -> oracle -> iterative evaluation -> interval, exercising the
/// exact paths the benchmark harness uses.

TEST(PipelineTest, YagoProfileEndToEndWithAhpdSrs) {
  const auto kg = *MakeKg(YagoProfile(), /*seed=*/1);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 123);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.interval.Moe(), 0.05);
  // YAGO converges fast: the paper reports ~32 triples for aHPD.
  EXPECT_LT(result.annotated_triples, 120u);
  EXPECT_TRUE(result.interval.Contains(result.mu));
}

TEST(PipelineTest, DbpediaProfileEndToEndWithAhpdTwcs) {
  const auto profile = DbpediaProfile();
  const auto kg = *MakeKg(profile, /*seed=*/2);
  TwcsSampler sampler(
      kg, TwcsConfig{.second_stage_size = profile.twcs_second_stage});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 456);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.interval.Moe(), 0.05);
  EXPECT_NEAR(result.mu, 0.85, 0.12);
  // Entity identification is amortized across second-stage triples.
  EXPECT_LT(result.distinct_entities, result.distinct_triples);
}

TEST(PipelineTest, TsvLoadedKgRunsTheFullLoop) {
  // A hand-written 60-triple KG in the interchange format.
  std::string content;
  for (int e = 0; e < 20; ++e) {
    for (int f = 0; f < 3; ++f) {
      const bool correct = (e * 3 + f) % 10 != 0;  // 90% accurate.
      content += "entity" + std::to_string(e) + "\tp" + std::to_string(f) +
                  "\to" + std::to_string(f) + "\t" + (correct ? "1" : "0") +
                  "\n";
    }
  }
  const auto kg = *LoadKgFromTsvString(content);
  ASSERT_EQ(kg.num_triples(), 60u);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 789);
  EXPECT_TRUE(result.converged);
}

TEST(PipelineTest, LargeSyntheticPopulationConvergesQuickly) {
  // SYN-100M-scale population: convergence cost must not grow with size
  // (the paper's scalability claim, Table 4).
  const auto kg = *MakeKg(Syn100MProfile(0.9), /*seed=*/3);
  ASSERT_EQ(kg.num_triples(), 101415011u);
  TwcsSampler sampler(kg, TwcsConfig{.second_stage_size = 5});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 1000);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.annotated_triples, 2000u);
}

TEST(PipelineTest, MajorityVotePanelEndToEnd) {
  const auto kg = *MakeKg(NellProfile(), /*seed=*/4);
  SrsSampler sampler(kg, SrsConfig{});
  MajorityVoteAnnotator panel(3, 0.1);
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, panel, config, 999);
  EXPECT_TRUE(result.converged);
  // Three judgments per triple multiply the verification cost.
  const double single_cost = result.distinct_entities * 45.0 +
                             result.distinct_triples * 25.0;
  EXPECT_GT(result.cost_seconds, single_cost);
}

TEST(PipelineTest, WilsonAndAhpdAgreeOnEstimate) {
  const auto kg = *MakeKg(FactbenchProfile(), /*seed=*/5);
  OracleAnnotator annotator;

  SrsSampler s1(kg, SrsConfig{});
  EvaluationConfig wilson;
  wilson.method = IntervalMethod::kWilson;
  const auto rw = *RunEvaluation(s1, annotator, wilson, 31337);

  SrsSampler s2(kg, SrsConfig{});
  EvaluationConfig ahpd;
  const auto ra = *RunEvaluation(s2, annotator, ahpd, 31337);

  // Same seed, same sampler stream: the point estimates track the truth.
  EXPECT_NEAR(rw.mu, kg.TrueAccuracy(), 0.08);
  EXPECT_NEAR(ra.mu, kg.TrueAccuracy(), 0.08);
}

}  // namespace
}  // namespace kgacc
