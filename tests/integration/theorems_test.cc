#include <cmath>
#include <tuple>

#include "kgacc/kgacc.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// Numerical verification of the paper's formal results (§4.3), each stated
/// over the posterior families that actually arise in KG accuracy
/// evaluation: Beta(a + tau, b + n - tau) for uninformative and informative
/// priors, all annotation outcomes tau in [0, n], and the three standard
/// significance levels.

// ---------------------------------------------------------------------------
// Theorem 1: for 0 < tau < n the 1-alpha HPD interval is the smallest
// interval with F(u) - F(l) = 1 - alpha.
// ---------------------------------------------------------------------------

class Theorem1 : public ::testing::TestWithParam<
                     std::tuple<double, int, int, double>> {};

TEST_P(Theorem1, HpdIsTheShortestValidInterval) {
  const auto [prior_ab, n, tau, alpha] = GetParam();
  const BetaPrior prior{"p", prior_ab, prior_ab};
  const auto posterior = *prior.Posterior(tau, n);
  const auto hpd = *HpdInterval(posterior, alpha);

  // (1) It is a valid 1-alpha credible interval.
  EXPECT_NEAR(posterior.Cdf(hpd.interval.upper) -
                  posterior.Cdf(hpd.interval.lower),
              1.0 - alpha, 1e-6);

  // (2) No interval of equal coverage is shorter: sweep the lower CDF mass.
  for (int i = 0; i <= 25; ++i) {
    const double p_lo = alpha * i / 25.0;
    const double l = *posterior.Quantile(p_lo);
    const double u = *posterior.Quantile(std::min(1.0, p_lo + 1.0 - alpha));
    EXPECT_GE((u - l) - hpd.interval.Width(), -1e-6)
        << "p_lo=" << p_lo;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AnnotationOutcomes, Theorem1,
    ::testing::Combine(::testing::Values(1.0 / 3.0, 0.5, 1.0, 10.0),
                       ::testing::Values(30, 120),
                       ::testing::Values(1, 8, 15, 27),
                       ::testing::Values(0.10, 0.05, 0.01)));

// ---------------------------------------------------------------------------
// Theorem 2: the HPD interval is unique — any distinct interval of the same
// width covers strictly less than 1 - alpha.
// ---------------------------------------------------------------------------

class Theorem2 : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Theorem2, EqualWidthShiftedIntervalsCoverLess) {
  const auto [prior_ab, tau] = GetParam();
  const int n = 30;
  const double alpha = 0.05;
  const BetaPrior prior{"p", prior_ab, prior_ab};
  const auto posterior = *prior.Posterior(tau, n);
  const auto hpd = *HpdInterval(posterior, alpha);
  const double width = hpd.interval.Width();
  const double covered = posterior.Cdf(hpd.interval.upper) -
                         posterior.Cdf(hpd.interval.lower);

  for (const double shift :
       {-0.05, -0.02, -0.005, 0.005, 0.02, 0.05}) {
    const double l = hpd.interval.lower + shift;
    const double u = l + width;
    if (l < 0.0 || u > 1.0) continue;
    const double alt = posterior.Cdf(u) - posterior.Cdf(l);
    EXPECT_LT(alt, covered + 1e-9) << "shift=" << shift;
    // Strictness for non-trivial shifts.
    if (std::fabs(shift) >= 0.005) {
      EXPECT_LT(alt, covered) << "shift=" << shift;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AnnotationOutcomes, Theorem2,
    ::testing::Combine(::testing::Values(1.0 / 3.0, 0.5, 1.0),
                       ::testing::Values(3, 15, 24, 28)));

// ---------------------------------------------------------------------------
// Corollaries 1-2: limiting cases tau = 0 and tau = n under uninformative
// priors — the one-sided interval of Eq. 10/11 is the shortest and unique.
// ---------------------------------------------------------------------------

class Corollaries : public ::testing::TestWithParam<std::tuple<double, int>> {
};

TEST_P(Corollaries, AllCorrectLimitingCase) {
  const auto [prior_ab, n] = GetParam();
  const double alpha = 0.05;
  const BetaPrior prior{"p", prior_ab, prior_ab};
  const auto posterior = *prior.Posterior(n, n);  // tau = n.
  const auto hpd = *HpdInterval(posterior, alpha);
  // Eq. 10: [qBeta(alpha), 1].
  EXPECT_DOUBLE_EQ(hpd.interval.upper, 1.0);
  EXPECT_NEAR(hpd.interval.lower, *posterior.Quantile(alpha), 1e-12);
  // Shortest: any interior interval of the same coverage is longer because
  // the density increases monotonically toward 1.
  for (int i = 1; i <= 10; ++i) {
    const double p_lo = alpha * (10 - i) / 10.0;
    const double l = *posterior.Quantile(p_lo);
    const double u = *posterior.Quantile(std::min(1.0, p_lo + 1.0 - alpha));
    EXPECT_GE(u - l, hpd.interval.Width() - 1e-9);
  }
}

TEST_P(Corollaries, NoneCorrectLimitingCase) {
  const auto [prior_ab, n] = GetParam();
  const double alpha = 0.05;
  const BetaPrior prior{"p", prior_ab, prior_ab};
  const auto posterior = *prior.Posterior(0, n);  // tau = 0.
  const auto hpd = *HpdInterval(posterior, alpha);
  // Eq. 11: [0, qBeta(1 - alpha)].
  EXPECT_DOUBLE_EQ(hpd.interval.lower, 0.0);
  EXPECT_NEAR(hpd.interval.upper, *posterior.Quantile(1.0 - alpha), 1e-12);
  // Symmetry with the all-correct case: same width for the mirrored
  // posterior.
  const auto mirrored = *prior.Posterior(n, n);
  const auto mirrored_hpd = *HpdInterval(mirrored, alpha);
  EXPECT_NEAR(hpd.interval.Width(), mirrored_hpd.interval.Width(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    UninformativePriors, Corollaries,
    ::testing::Combine(::testing::Values(1.0 / 3.0, 0.5, 1.0),
                       ::testing::Values(10, 30, 100)));

// ---------------------------------------------------------------------------
// Theorem 3: for a unimodal symmetric posterior the HPD and ET intervals
// coincide. Symmetry arises when a + tau = b + n - tau (§4.3).
// ---------------------------------------------------------------------------

class Theorem3 : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Theorem3, SymmetricPosteriorHpdEqualsEt) {
  const auto [prior_ab, n] = GetParam();
  const int tau = n / 2;  // With a = b this symmetrizes the posterior.
  const BetaPrior prior{"p", prior_ab, prior_ab};
  const auto posterior = *prior.Posterior(tau, n);
  ASSERT_TRUE(posterior.IsSymmetric());
  for (const double alpha : {0.10, 0.05, 0.01}) {
    const auto hpd = *HpdInterval(posterior, alpha);
    const auto et = *EqualTailedInterval(posterior, alpha);
    EXPECT_NEAR(hpd.interval.lower, et.lower, 1e-6) << alpha;
    EXPECT_NEAR(hpd.interval.upper, et.upper, 1e-6) << alpha;
    // Both are centered on 1/2.
    EXPECT_NEAR(hpd.interval.lower + hpd.interval.upper, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SymmetricOutcomes, Theorem3,
    ::testing::Combine(::testing::Values(1.0 / 3.0, 0.5, 1.0, 5.0),
                       ::testing::Values(10, 30, 200)));

// ---------------------------------------------------------------------------
// The first-order condition behind Theorem 1's Lagrangian argument:
// f(l) = f(u) at the interior optimum.
// ---------------------------------------------------------------------------

TEST(TheoremMachinery, EqualDensityEndpointsAcrossThePosteriorFamily) {
  for (const BetaPrior& prior : DefaultUninformativePriors()) {
    for (const int tau : {5, 12, 20, 25}) {
      const auto posterior = *prior.Posterior(tau, 30);
      if (posterior.Shape() != BetaShape::kUnimodal) continue;
      const auto hpd = *HpdInterval(posterior, 0.05);
      const double fl = posterior.Pdf(hpd.interval.lower);
      const double fu = posterior.Pdf(hpd.interval.upper);
      EXPECT_NEAR(fl, fu, 1e-3 * std::max(fl, fu))
          << prior.name << " tau=" << tau;
    }
  }
}

// ---------------------------------------------------------------------------
// Posterior contraction: the machinery behind the framework's guaranteed
// termination — HPD width is O(1/sqrt(n)) along a consistent data path.
// ---------------------------------------------------------------------------

TEST(TheoremMachinery, HpdWidthContractsAtRootNRate) {
  const BetaPrior prior = JeffreysPrior();
  double previous_scaled = 0.0;
  for (const int n : {25, 100, 400, 1600}) {
    const int tau = (n * 4) / 5;  // 80% accuracy path.
    const auto posterior = *prior.Posterior(tau, n);
    const auto hpd = *HpdInterval(posterior, 0.05);
    const double scaled = hpd.interval.Width() * std::sqrt(n);
    if (previous_scaled != 0.0) {
      EXPECT_NEAR(scaled, previous_scaled, 0.12 * previous_scaled) << n;
    }
    previous_scaled = scaled;
  }
}

}  // namespace
}  // namespace kgacc
