#include "kgacc/opt/brent.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(FindRootBrentTest, SolvesClassicFixedPoint) {
  // cos(x) = x has the unique root 0.7390851332151607 (the Dottie number).
  const auto r =
      FindRootBrent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 0.7390851332151607, 1e-10);
}

TEST(FindRootBrentTest, SolvesPolynomial) {
  // x^3 - 2x - 5 = 0 has the real root 2.0945514815423265.
  const auto r = FindRootBrent(
      [](double x) { return x * x * x - 2.0 * x - 5.0; }, 2.0, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 2.0945514815423265, 1e-10);
}

TEST(FindRootBrentTest, ExactRootAtBracketEndpoint) {
  const auto r = FindRootBrent([](double x) { return x - 2.0; }, 2.0, 5.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->x, 2.0);
  EXPECT_EQ(r->iterations, 0);
}

TEST(FindRootBrentTest, RejectsUnbracketedInterval) {
  const auto r =
      FindRootBrent([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.ok());
}

TEST(FindRootBrentTest, HandlesSteepFunctions) {
  // exp(20x) - 1 = 0 at x = 0; very steep on the right side.
  const auto r = FindRootBrent(
      [](double x) { return std::exp(20.0 * x) - 1.0; }, -1.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 0.0, 1e-9);
}

TEST(MinimizeBrentTest, QuadraticMinimum) {
  const auto r = MinimizeBrent(
      [](double x) { return (x - 2.0) * (x - 2.0) + 3.0; }, 0.0, 5.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 2.0, 1e-7);
  EXPECT_NEAR(r->fx, 3.0, 1e-12);
}

TEST(MinimizeBrentTest, NonQuadraticSmoothMinimum) {
  // f(x) = x - ln(x); minimum at x = 1 with f = 1.
  const auto r = MinimizeBrent(
      [](double x) { return x - std::log(x); }, 0.01, 10.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 1.0, 1e-6);
  EXPECT_NEAR(r->fx, 1.0, 1e-10);
}

TEST(MinimizeBrentTest, MinimumAtIntervalEdge) {
  // Monotone increasing on [1, 3]: minimizer pinned near the left edge.
  const auto r = MinimizeBrent([](double x) { return x * x; }, 1.0, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 1.0, 1e-4);
}

TEST(MinimizeBrentTest, FlatFunctionTerminates) {
  const auto r = MinimizeBrent([](double) { return 7.0; }, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->fx, 7.0);
}

TEST(MinimizeBrentTest, RejectsEmptyInterval) {
  EXPECT_FALSE(MinimizeBrent([](double x) { return x; }, 1.0, 1.0).ok());
  EXPECT_FALSE(MinimizeBrent([](double x) { return x; }, 2.0, 1.0).ok());
}

TEST(MinimizeBrentTest, AsymmetricValleyFoundPrecisely) {
  // f(x) = |x - 0.3|^1.5 is non-smooth at the minimizer; Brent still
  // converges via golden-section steps.
  const auto r = MinimizeBrent(
      [](double x) { return std::pow(std::fabs(x - 0.3), 1.5); }, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x, 0.3, 1e-5);
}

}  // namespace
}  // namespace kgacc
